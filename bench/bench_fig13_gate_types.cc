/**
 * @file
 * Figure 13 / O9-O10 reproduction: BER aggregated by gate type (A/B)
 * and victim charge state for RowPress and RowHammer.
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "bender/host.h"
#include "core/charact.h"
#include "dram/chip.h"
#include "util/table.h"

using namespace dramscope;

int
main()
{
    benchutil::header(
        "Figure 13 / O9-O10: BER by gate type and charge state",
        "RowHammer flips occur on BOTH gate types — charged cells "
        "through one, discharged cells through the other; RowPress "
        "flips only charged cells, through the opposite gate to "
        "RowHammer's charged case (so the physical passing/neighboring "
        "assignment cannot be decided, footnote 7)");

    const dram::DeviceConfig cfg = dram::makePreset("A_x4_2021");
    dram::Chip chip(cfg);
    bender::Host host(chip);
    benchutil::observeHost(host);
    core::CharactOptions opts;
    opts.rowRemap = cfg.rowRemap;
    opts.victimRows = benchutil::scaled(96, 16);
    core::Characterization charact(
        host,
        core::PhysMap::fromSwizzle(chip.swizzle(), cfg.columnsPerRow(),
                                   cfg.rdDataBits),
        opts);

    Table t({"Attack", "Victim state", "Gate A BER", "Gate B BER",
             "Susceptible gate"});
    for (const auto mech : {dram::AibMechanism::RowPress,
                            dram::AibMechanism::RowHammer}) {
        const auto r = charact.gateTypeBer(mech);
        const char *name =
            mech == dram::AibMechanism::RowHammer ? "RowHammer"
                                                  : "RowPress";
        t.addRow({name, "discharged", Table::num(r.dischargedGateA, 3),
                  Table::num(r.dischargedGateB, 3),
                  r.dischargedGateA > r.dischargedGateB * 2   ? "A"
                  : r.dischargedGateB > r.dischargedGateA * 2 ? "B"
                                                              : "-"});
        t.addRow({name, "charged", Table::num(r.chargedGateA, 3),
                  Table::num(r.chargedGateB, 3),
                  r.chargedGateA > r.chargedGateB * 2   ? "A"
                  : r.chargedGateB > r.chargedGateA * 2 ? "B"
                                                        : "-"});
    }
    t.print();
    benchutil::maybeWriteCsv(t, "fig13_gate_types");
    std::printf(
        "\nO9: RowHammer occurs at both gate types (A for charged, B "
        "for discharged victims).\nO10: each victim cell is "
        "susceptible through exactly one gate type at a time, and the "
        "type flips with the written value.\n");
    benchutil::printMetricsSummary();
    return 0;
}
