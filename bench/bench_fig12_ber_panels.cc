/**
 * @file
 * Figure 12 / O7-O8 reproduction: average BER per physical bit index
 * (mod 32) for the eight panels — RowPress/RowHammer x charged/
 * discharged victim x upper/lower aggressor — on a Mfr. A 2021 DDR4
 * x4 chip, plus the odd-wordline reversal check.
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "bender/host.h"
#include "core/charact.h"
#include "dram/chip.h"
#include "util/table.h"

using namespace dramscope;

namespace {

std::string
sparkline(const std::vector<double> &ber)
{
    double max = 0;
    for (double b : ber)
        max = std::max(max, b);
    std::string s;
    static const char *levels[] = {" ", ".", ":", "|", "#"};
    for (double b : ber) {
        const int lvl =
            max > 0 ? int(b / max * 4.0 + 0.5) : 0;
        s += levels[std::min(lvl, 4)];
    }
    return s;
}

} // namespace

int
main()
{
    benchutil::header(
        "Figure 12 / O7-O8: BER vs physically-remapped bit index",
        "alternating BER with bit index; the phase reverses with "
        "aggressor direction (upper/lower), written value (1/0) and "
        "victim wordline parity; RowPress flips charged cells only, "
        "on the opposite gate phase to RowHammer");

    benchutil::jobsBanner();

    const dram::DeviceConfig cfg = dram::makePreset("A_x4_2021");
    dram::Chip chip(cfg);
    bender::Host host(chip);
    benchutil::observeHost(host);
    core::CharactOptions opts;
    opts.rowRemap = cfg.rowRemap;
    opts.victimRows = benchutil::scaled(96, 16);
    core::Characterization charact(
        host,
        core::PhysMap::fromSwizzle(chip.swizzle(), cfg.columnsPerRow(),
                                   cfg.rdDataBits),
        opts);

    benchutil::WallTimer timer;

    struct Panel
    {
        const char *label;
        dram::AibMechanism mech;
        bool dataOne;
        bool upper;
    };
    const Panel panels[] = {
        {"(a) RowPress  discharged upper", dram::AibMechanism::RowPress,
         false, true},
        {"(b) RowPress  charged    upper", dram::AibMechanism::RowPress,
         true, true},
        {"(c) RowPress  discharged lower", dram::AibMechanism::RowPress,
         false, false},
        {"(d) RowPress  charged    lower", dram::AibMechanism::RowPress,
         true, false},
        {"(e) RowHammer discharged upper", dram::AibMechanism::RowHammer,
         false, true},
        {"(f) RowHammer charged    upper", dram::AibMechanism::RowHammer,
         true, true},
        {"(g) RowHammer discharged lower", dram::AibMechanism::RowHammer,
         false, false},
        {"(h) RowHammer charged    lower", dram::AibMechanism::RowHammer,
         true, false},
    };

    printBanner("Even-WL victim rows (paper's reported case)");
    Table t({"Panel", "BER profile (bit index mod 32)", "even-idx BER",
             "odd-idx BER"});
    for (const auto &p : panels) {
        const auto ber =
            charact.berVsPhysIndex(p.mech, p.dataOne, p.upper);
        double even = 0, odd = 0;
        for (size_t k = 0; k < ber.size(); ++k)
            ((k & 1) == 0 ? even : odd) += ber[k] / 16.0;
        t.addRow({p.label, sparkline(ber), Table::num(even, 3),
                  Table::num(odd, 3)});
    }
    t.print();
    benchutil::maybeWriteCsv(t, "fig12_even_wl");

    printBanner("Odd-WL victim rows: pattern reverses (O7/O8)");
    Table t2({"Panel", "BER profile (bit index mod 32)", "even-idx BER",
              "odd-idx BER"});
    for (const auto &p : {panels[1], panels[5]}) {
        const auto ber = charact.berVsPhysIndex(p.mech, p.dataOne,
                                                p.upper, 32,
                                                /*even_wl=*/false);
        double even = 0, odd = 0;
        for (size_t k = 0; k < ber.size(); ++k)
            ((k & 1) == 0 ? even : odd) += ber[k] / 16.0;
        t2.addRow({p.label, sparkline(ber), Table::num(even, 3),
                   Table::num(odd, 3)});
    }
    t2.print();
    benchutil::maybeWriteCsv(t2, "fig12_odd_wl");

    std::printf("\nRowPress discharged panels are empty (press flips "
                "charged cells only, SS II-D); hammer and press flip "
                "opposite phases (footnote 7 of the paper).\n");
    std::printf("panel sweep wall time: %.2f s at %u jobs\n",
                timer.seconds(), charact.sweepJobs());
    benchutil::printMetricsSummary();
    return 0;
}
