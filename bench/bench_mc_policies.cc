/**
 * @file
 * google-benchmark microbenchmarks of the memory-controller layer:
 * scheduling throughput per open-row policy (requests scheduled per
 * second) and the end-to-end schedule-plus-execute path.  The
 * scheduler's hit-window scan is the knob that keeps the per-decision
 * cost bounded; this file is where a regression in it shows up.
 */

#include <benchmark/benchmark.h>

#include "bender/host.h"
#include "dram/chip.h"
#include "dram/config.h"
#include "mc/mc.h"
#include "mc/workload.h"

using namespace dramscope;

namespace {

dram::DeviceConfig
benchConfig()
{
    return dram::makePreset("A_x4_2016");
}

std::vector<mc::Request>
benchWorkload(mc::WorkloadKind kind, size_t n)
{
    mc::WorkloadOptions opt;
    opt.requests = n;
    opt.seed = 0xbe7c;
    return mc::makeWorkload(kind, benchConfig(), opt);
}

void
scheduleOnly(benchmark::State &state, mc::WorkloadKind kind,
             mc::RowPolicy policy)
{
    const auto cfg = benchConfig();
    const auto reqs = benchWorkload(kind, size_t(state.range(0)));
    mc::SchedulerOptions opt;
    opt.policy = policy;
    for (auto _ : state)
        benchmark::DoNotOptimize(mc::schedule(reqs, cfg, opt));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_ScheduleStreamingOpen(benchmark::State &state)
{
    scheduleOnly(state, mc::WorkloadKind::Streaming,
                 mc::RowPolicy::Open);
}
BENCHMARK(BM_ScheduleStreamingOpen)->Arg(1000)->Arg(10000);

void
BM_ScheduleChaseClosed(benchmark::State &state)
{
    scheduleOnly(state, mc::WorkloadKind::PointerChase,
                 mc::RowPolicy::Closed);
}
BENCHMARK(BM_ScheduleChaseClosed)->Arg(1000)->Arg(10000);

void
BM_ScheduleZipfianCap(benchmark::State &state)
{
    scheduleOnly(state, mc::WorkloadKind::Zipfian,
                 mc::RowPolicy::HitCap);
}
BENCHMARK(BM_ScheduleZipfianCap)->Arg(1000)->Arg(10000);

/** The whole pipeline: generate, schedule, execute on a chip. */
void
BM_ScheduleAndExecuteZipfian(benchmark::State &state)
{
    const auto cfg = benchConfig();
    const auto reqs =
        benchWorkload(mc::WorkloadKind::Zipfian, size_t(state.range(0)));
    for (auto _ : state) {
        auto result = mc::schedule(reqs, cfg, {});
        dram::Chip chip(cfg);
        bender::Host host(chip);
        benchmark::DoNotOptimize(host.run(result.program));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScheduleAndExecuteZipfian)->Arg(1000);

} // namespace

BENCHMARK_MAIN();
