/**
 * @file
 * Figures 16/17 and O14 reproduction: the 16 x 16 sweep of 4-bit
 * repeating victim/aggressor data patterns (written in physical MAT
 * space), normalized to the (victim 0xFF, aggressor 0x00) baseline.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bender/host.h"
#include "core/charact.h"
#include "dram/chip.h"
#include "util/table.h"

using namespace dramscope;

int
main()
{
    benchutil::header(
        "Figures 16-17 / O14: adversarial data-pattern sweep",
        "worst case is victim 0x33 / aggressor 0xCC at ~1.69x the "
        "baseline BER: vertically opposite values repeating in 2-bit "
        "runs, which maximizes the distance-two victim influence");

    benchutil::jobsBanner();

    const dram::DeviceConfig cfg = dram::makePreset("A_x4_2021");
    dram::Chip chip(cfg);
    bender::Host host(chip);
    benchutil::observeHost(host);
    core::CharactOptions opts;
    opts.rowRemap = cfg.rowRemap;
    opts.victimRows = benchutil::scaled(24, 8);
    core::Characterization charact(
        host,
        core::PhysMap::fromSwizzle(chip.swizzle(), cfg.columnsPerRow(),
                                   cfg.rdDataBits),
        opts);

    benchutil::WallTimer timer;
    const double baseline = charact.patternBer(0xF, 0x0);
    std::printf("baseline BER (victim 0xFF, aggressor 0x00): %.4f\n\n",
                baseline);

    // Full 16 x 16 sweep; print the relative-BER matrix.
    std::vector<std::vector<double>> rel(16, std::vector<double>(16));
    struct Best
    {
        double value = 0;
        uint8_t vic = 0, aggr = 0;
    };
    std::vector<Best> top;
    std::printf("relative BER (rows: victim nibble, cols: aggressor "
                "nibble)\n     ");
    for (int a = 0; a < 16; ++a)
        std::printf("  %Xh ", a);
    std::printf("\n");
    for (int v = 0; v < 16; ++v) {
        std::printf("  %Xh ", v);
        for (int a = 0; a < 16; ++a) {
            rel[v][a] =
                charact.patternBer(uint8_t(v), uint8_t(a)) / baseline;
            std::printf("%5.2f", rel[v][a]);
            top.push_back({rel[v][a], uint8_t(v), uint8_t(a)});
        }
        std::printf("\n");
    }

    std::sort(top.begin(), top.end(),
              [](const Best &x, const Best &y) { return x.value > y.value; });
    printBanner("Figure 17: worst-case data patterns");
    Table t({"Rank", "Victim (byte view)", "Aggressor (byte view)",
             "Relative BER"});
    for (int k = 0; k < 5; ++k) {
        char vs[8], as[8];
        const uint8_t vn = top[k].vic, an = top[k].aggr;
        std::snprintf(vs, sizeof(vs), "0x%X%X", vn, vn);
        std::snprintf(as, sizeof(as), "0x%X%X", an, an);
        t.addRow({Table::num(int64_t(k + 1)), vs, as,
                  Table::num(top[k].value, 3)});
    }
    t.print();
    std::printf("\nO14 check: victim 0x33 / aggressor 0xCC relative "
                "BER = %.3f (paper: 1.69x); complementary 2-bit "
                "patterns dominate the top ranks.\n",
                rel[0x3][0xC]);
    std::printf("16x16 sweep wall time: %.2f s at %u jobs\n",
                timer.seconds(), charact.sweepJobs());
    benchutil::printMetricsSummary();
    return 0;
}
