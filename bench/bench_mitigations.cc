/**
 * @file
 * Mitigation cost/efficacy table and scheduling-throughput guard.
 *
 * One row per DRAMSCOPE_MITIGATIONS entry: FR-FCFS scheduling
 * throughput (requests/s of wall clock, schedule() only — no device
 * execution), injected-sequence counts, the exposure bound achieved
 * (max ACTs any row collected in one refresh window), and the span
 * overhead versus the unmitigated baseline.
 *
 * Like bench_fastforward this is a pass/fail tool, guarding the
 * byte-identity contract's performance half: wiring the mitigation
 * hooks into the scheduler must not tax the None path.  It exits
 * non-zero when None scheduling drops below an absolute throughput
 * floor, or when an armed-but-never-firing Graphene run costs more
 * than 2x the None wall clock (the hook overhead bound).
 */

#include <cinttypes>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/protect/mitigation.h"
#include "mc/mc.h"
#include "mc/workload.h"
#include "util/table.h"

using namespace dramscope;

namespace {

/** Best-of-reps schedule() wall clock; result stats from the last rep. */
double
scheduleSeconds(const std::vector<mc::Request> &reqs,
                const dram::DeviceConfig &cfg,
                const mc::SchedulerOptions &opt, int reps,
                mc::ScheduleStats *stats)
{
    double best = 1.0e30;
    for (int r = 0; r < reps; ++r) {
        benchutil::WallTimer timer;
        auto res = mc::schedule(reqs, cfg, opt);
        const double s = timer.seconds();
        if (s < best)
            best = s;
        if (stats)
            *stats = res.stats;
    }
    return best;
}

} // namespace

int
main()
{
    benchutil::header("mitigation cost under scheduled traffic",
                      "defense efficacy priced in delayed demand, not "
                      "free victim refreshes");

    const auto cfg = dram::makePreset("A_x8_2018");
    const size_t requests = benchutil::scaled(60000, 5000);
    mc::WorkloadOptions wopt;
    wopt.requests = requests;
    const auto reqs =
        mc::makeWorkload(mc::WorkloadKind::Zipfian, cfg, wopt);
    const int reps = 3;

    // The closed policy turns the Zipfian hot set into repeated
    // activations (FR-FCFS coalesces them under open), and the
    // thresholds are low enough that every kind fires on this stream.
    core::MitigationOptions knobs;
    knobs.graphene.threshold = 5;
    knobs.raaimt = 2000;
    knobs.drfmInterval = 4000;
    knobs.rowswap.threshold = 200;

    mc::SchedulerOptions base;
    base.policy = mc::RowPolicy::Closed;
    mc::ScheduleStats noneStats;
    const double noneSec = scheduleSeconds(reqs, cfg, base, reps,
                                           &noneStats);

    Table table({"mitigation", "reqs/s", "fired", "mit-cmds",
                 "max-row-acts", "span-overhead"});
    table.addRow({"none", Table::num(double(requests) / noneSec),
                  "0", "0", Table::num(double(noneStats.maxRowActsPerRefWindow)),
                  "1.00"});
    for (const auto &info : core::mitigationTable()) {
        if (info.kind == core::MitigationKind::None)
            continue;
        mc::SchedulerOptions opt = base;
        opt.mitigation = info.kind;
        opt.mitigationOptions = knobs;
        mc::ScheduleStats st;
        const double sec = scheduleSeconds(reqs, cfg, opt, reps, &st);
        table.addRow({info.id, Table::num(double(requests) / sec),
                      Table::num(double(st.mitFired)),
                      Table::num(double(st.mitCmds)),
                      Table::num(double(st.maxRowActsPerRefWindow)),
                      Table::num(double(st.spanPs) /
                                 double(noneStats.spanPs))});
    }
    table.print();
    benchutil::maybeWriteCsv(table, "mitigation_cost");

    // Guard 1: absolute throughput floor on the unmitigated path.
    const double noneRate = double(requests) / noneSec;
    std::printf("none scheduling: %.0f reqs/s (guard: >= 200000)\n",
                noneRate);
    if (noneRate < 200000.0) {
        std::printf("FAIL: None scheduling below the throughput floor\n");
        return 1;
    }

    // Guard 2: hook overhead.  An armed Graphene whose threshold is
    // never reached exercises every mitigation branch without ever
    // injecting a command — it must stay within 2x of None.
    mc::SchedulerOptions inert = base;
    inert.mitigation = core::MitigationKind::Graphene;
    inert.mitigationOptions.graphene.threshold = 1u << 30;
    const double inertSec =
        scheduleSeconds(reqs, cfg, inert, reps, nullptr);
    std::printf("inert graphene: %.2fx none wall clock (guard: <= 2x)\n",
                inertSec / noneSec);
    if (inertSec > 2.0 * noneSec) {
        std::printf("FAIL: mitigation hooks tax the scheduler\n");
        return 1;
    }
    std::printf("PASS\n");
    return 0;
}
