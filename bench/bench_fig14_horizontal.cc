/**
 * @file
 * Figure 14 / O11-O12 reproduction: relative BER when horizontally
 * adjacent victim cells (a) or aggressor cells (b) change value.
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "bender/host.h"
#include "core/charact.h"
#include "dram/chip.h"
#include "util/table.h"

using namespace dramscope;

int
main()
{
    benchutil::header(
        "Figure 14 / O11-O12: horizontal data-pattern dependence",
        "(a) opposite-valued victim neighbours raise BER, distance-2 "
        "more than distance-1 (paper: 1.12x/1.54x for Vic0=0, "
        "1.00x/1.35x for Vic0=1); (b) aggressor cells matching the "
        "victim suppress BER, strongest closest (paper: 0.58/0.46/0.38 "
        "for Vic0=0, 0.72/0.58/0.30 for Vic0=1)");

    const dram::DeviceConfig cfg = dram::makePreset("A_x4_2021");
    dram::Chip chip(cfg);
    bender::Host host(chip);
    benchutil::observeHost(host);
    core::CharactOptions opts;
    opts.rowRemap = cfg.rowRemap;
    opts.victimRows = benchutil::scaled(64, 16);
    core::Characterization charact(
        host,
        core::PhysMap::fromSwizzle(chip.swizzle(), cfg.columnsPerRow(),
                                   cfg.rdDataBits),
        opts);

    printBanner("(a) victim-row neighbours set opposite to Vic0");
    Table ta({"Changed cells", "Vic0 = 0", "paper", "Vic0 = 1",
              "paper"});
    struct VicRow
    {
        const char *label;
        bool d1, d2;
        const char *paper0, *paper1;
    };
    const VicRow vic_rows[] = {
        {"Vic-1,1 (distance one)", true, false, "1.12x", "1.00x"},
        {"Vic-2,2 (distance two)", false, true, "1.54x", "1.35x"},
        {"Vic-2,-1,1,2 (all four)", true, true, "1.72x*", "1.35x*"},
    };
    for (const auto &row : vic_rows) {
        const double r0 =
            charact.relativeBerVictimNeighbors(false, row.d1, row.d2);
        const double r1 =
            charact.relativeBerVictimNeighbors(true, row.d1, row.d2);
        ta.addRow({row.label, Table::num(r0, 3), row.paper0,
                   Table::num(r1, 3), row.paper1});
    }
    ta.print();
    benchutil::maybeWriteCsv(ta, "fig14a_victim");
    std::printf("(* worst case, compounding both distances)\n");

    printBanner("(b) aggressor cells set to the same value as Vic0");
    Table tb({"Changed cells", "Vic0 = 0", "paper", "Vic0 = 1",
              "paper"});
    struct AggrRow
    {
        const char *label;
        bool a0, a1, a2;
        const char *paper0, *paper1;
    };
    const AggrRow aggr_rows[] = {
        {"Aggr0 (directly adjacent)", true, false, false, "0.58x",
         "0.72x"},
        {"Aggr-1,1", false, true, false, "0.46x", "0.58x"},
        {"Aggr-2,2", false, false, true, "0.38x", "0.30x"},
    };
    for (const auto &row : aggr_rows) {
        const double r0 = charact.relativeBerAggrNeighbors(
            false, row.a0, row.a1, row.a2);
        const double r1 = charact.relativeBerAggrNeighbors(
            true, row.a0, row.a1, row.a2);
        tb.addRow({row.label, Table::num(r0, 3), row.paper0,
                   Table::num(r1, 3), row.paper1});
    }
    tb.print();
    benchutil::maybeWriteCsv(tb, "fig14b_aggressor");
    std::printf("\nO11: victim-side influence is strongest at distance "
                "two.\nO12: aggressor-side influence is strongest at "
                "distance zero and all suppress.\n");
    benchutil::printMetricsSummary();
    return 0;
}
