/**
 * @file
 * google-benchmark microbenchmarks of the resilience layer: what the
 * FaultyDevice decorator costs on the hot paths (the empty-spec
 * forwarding overhead must stay negligible — campaigns leave the
 * wrapper in place and toggle the spec), and what the fsync'd shard
 * journal adds per shard.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bender/host.h"
#include "core/sweep.h"
#include "dram/chip.h"
#include "dram/config.h"
#include "dram/faulty_device.h"

using namespace dramscope;

namespace {

dram::DeviceConfig
benchConfig()
{
    return dram::makePreset("A_x4_2016");
}

/** Baseline: the bulk hammer path on a bare chip. */
void
BM_HammerBareChip(benchmark::State &state)
{
    dram::Chip chip(benchConfig());
    bender::Host host(chip);
    host.writeRowPattern(0, 1001, ~0ULL);
    host.writeRowPattern(0, 1000, 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(host.hammer(0, 1000, 1000));
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_HammerBareChip);

/** The same path through an inject-nothing FaultyDevice. */
void
BM_HammerFaultyEmptySpec(benchmark::State &state)
{
    dram::Chip chip(benchConfig());
    dram::FaultyDevice faulty(chip, dram::FaultSpec{});
    bender::Host host(faulty);
    host.writeRowPattern(0, 1001, ~0ULL);
    host.writeRowPattern(0, 1000, 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(host.hammer(0, 1000, 1000));
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_HammerFaultyEmptySpec);

/** Row reads under an active per-bit flip stream (worst case: the
 *  per-bit hash draw on every RD burst). */
void
BM_ReadRowFlipStream(benchmark::State &state)
{
    dram::Chip chip(benchConfig());
    const auto spec = *dram::FaultSpec::parse("flip:1e-6");
    dram::FaultyDevice faulty(chip, spec);
    bender::Host host(faulty);
    host.writeRowPattern(0, 1000, 0xA5A5A5A5ULL);
    for (auto _ : state)
        benchmark::DoNotOptimize(host.readRowBits(0, 1000));
    state.SetItemsProcessed(state.iterations() *
                            chip.config().rowBits);
}
BENCHMARK(BM_ReadRowFlipStream);

/** One resilient shard (tiny unit), with and without the fsync'd
 *  journal: arg 0 = no checkpoint, 1 = checkpoint per shard. */
void
BM_ResilientShard(benchmark::State &state)
{
    const bool journal = state.range(0) != 0;
    dram::Chip chip(benchConfig());
    bender::Host host(chip);
    core::SweepRunner runner(host, core::SweepOptions(1, 0x5eedULL));
    const std::string path = "/tmp/dramscope_bench_journal.jsonl";
    const auto unit = [](core::ShardContext &ctx) {
        ctx.host.writeRowPattern(0, 100 + ctx.shard, 0);
        return std::to_string(ctx.shard);
    };
    uint64_t shards_run = 0;
    for (auto _ : state) {
        core::ResilienceOptions opts;
        if (journal) {
            std::remove(path.c_str());
            opts.checkpointPath = path;
        }
        const auto report = runner.runResilient(8, unit, opts);
        benchmark::DoNotOptimize(report.executed);
        shards_run += report.shards.size();
    }
    std::remove(path.c_str());
    state.SetItemsProcessed(int64_t(shards_run));
}
BENCHMARK(BM_ResilientShard)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
