/**
 * @file
 * Speedup guard for the analytical fast-forward engine: the paper's
 * 300K-activation hammer train through FastPathMode::Off (step-wise
 * reference), Exact (batched bit-identical replay) and Analytic
 * (aggregate-dose sampling).
 *
 * Unlike the google-benchmark microbenches this is a pass/fail tool:
 * it exits non-zero when BM_FastForward (Exact) is not at least 10x
 * faster than BM_Stepwise on the 300K train — the contract that makes
 * Hcnt searches and BER sweeps affordable at paper scale.
 */

#include <cinttypes>
#include <cstdio>

#include "bench/bench_common.h"
#include "bender/host.h"
#include "dram/chip.h"
#include "util/table.h"

using namespace dramscope;

namespace {

/** Seconds per full 300K-ACT hammer under @p mode (best of reps). */
double
hammerSeconds(dram::FastPathMode mode, uint64_t count, int reps)
{
    dram::Chip chip(dram::makePreset("A_x4_2016"));
    bender::Host host(chip);
    host.setFastPathMode(mode);
    host.writeRowPattern(0, 1000, ~0ULL);
    host.writeRowPattern(0, 1002, ~0ULL);
    double best = 1.0e30;
    for (int r = 0; r < reps; ++r) {
        benchutil::WallTimer timer;
        host.hammer(0, 1001, count);
        host.refresh();  // Reset accumulation between reps.
        const double s = timer.seconds();
        if (s < best)
            best = s;
    }
    return best;
}

} // namespace

int
main()
{
    benchutil::header("fast-forward engine speedup",
                      "batched hammer trains >= 10x step-wise issue");
    const uint64_t count = uint64_t(benchutil::scaled(300000, 10000));
    const int reps = 3;

    const double stepwise =
        hammerSeconds(dram::FastPathMode::Off, count, reps);
    const double exact =
        hammerSeconds(dram::FastPathMode::Exact, count, reps);
    const double analytic =
        hammerSeconds(dram::FastPathMode::Analytic, count, reps);

    Table table({"engine", "seconds/train", "speedup"});
    table.addRow({"BM_Stepwise (off)", Table::num(stepwise), "1.00"});
    table.addRow({"BM_FastForward (exact)", Table::num(exact),
                  Table::num(stepwise / exact)});
    table.addRow({"BM_FastForward (analytic)", Table::num(analytic),
                  Table::num(stepwise / analytic)});
    table.print();
    benchutil::maybeWriteCsv(table, "fastforward_speedup");

    const double speedup = stepwise / exact;
    std::printf("%" PRIu64 "-ACT train: exact fast path %.1fx step-wise "
                "(guard: >= 10x)\n",
                count, speedup);
    if (speedup < 10.0) {
        std::printf("FAIL: fast-forward speedup below the 10x guard\n");
        return 1;
    }
    std::printf("PASS\n");
    return 0;
}
