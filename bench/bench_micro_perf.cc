/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: command
 * throughput of the paths every experiment is built from.
 */

#include <benchmark/benchmark.h>

#include "bender/host.h"
#include "bender/trace.h"
#include "core/charact.h"
#include "core/re_subarray.h"
#include "dram/chip.h"
#include "util/metrics.h"

using namespace dramscope;

namespace {

dram::DeviceConfig
benchConfig()
{
    return dram::makePreset("A_x4_2016");
}

void
BM_RowWrite(benchmark::State &state)
{
    dram::Chip chip(benchConfig());
    bender::Host host(chip);
    dram::RowAddr row = 1000;
    for (auto _ : state) {
        host.writeRowPattern(0, row, 0xA5A5A5A5ULL);
        row = (row + 1) % 4096;
    }
    state.SetItemsProcessed(state.iterations() *
                            chip.config().rowBits);
}
BENCHMARK(BM_RowWrite);

void
BM_RowRead(benchmark::State &state)
{
    dram::Chip chip(benchConfig());
    bender::Host host(chip);
    host.writeRowPattern(0, 1000, 0xA5A5A5A5ULL);
    for (auto _ : state)
        benchmark::DoNotOptimize(host.readRow(0, 1000));
    state.SetItemsProcessed(state.iterations() *
                            chip.config().rowBits);
}
BENCHMARK(BM_RowRead);

void
BM_BulkHammer(benchmark::State &state)
{
    dram::Chip chip(benchConfig());
    bender::Host host(chip);
    host.writeRowPattern(0, 1000, ~0ULL);
    host.writeRowPattern(0, 1001, 0);
    const auto count = uint64_t(state.range(0));
    for (auto _ : state) {
        host.hammer(0, 1001, count);
        host.refresh();  // Reset accumulation between iterations.
    }
    state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_BulkHammer)->Arg(10000)->Arg(300000);

/**
 * Device-interface guard for the bulk fast path: the hammer loop via
 * a devirtualizable dram::Chip call against the same loop through a
 * dram::Device reference (what bender::Host actually holds).  actMany
 * folds the whole ACT-PRE train into ONE virtual call, so /interface
 * must stay within noise of /direct — a regression here means a
 * per-iteration virtual call crept back onto the fast path.
 */
void
BM_BulkHammerDevirt(benchmark::State &state)
{
    dram::Chip chip(benchConfig());
    bender::Host host(chip);
    host.writeRowPattern(0, 1000, ~0ULL);
    dram::ActTrain train;
    train.bank = 0;
    train.row = 1001;
    train.count = 100000;
    train.openPs = 35000;  // Whole-ns open/period: the batched path.
    train.periodPs = 50000;
    const uint64_t count = train.count;
    if (state.range(0) == 0) {
        // Direct call on the concrete type (static dispatch).
        for (auto _ : state) {
            train.startPs = int64_t(host.now()) * 1000;
            chip.actMany(train);
            chip.refresh(host.now());
        }
    } else {
        // Same loop through the abstract interface.  DoNotOptimize on
        // the pointer keeps the compiler from proving the dynamic
        // type and devirtualizing the call.
        dram::Device *dev = &chip;
        benchmark::DoNotOptimize(dev);
        for (auto _ : state) {
            train.startPs = int64_t(host.now()) * 1000;
            dev->actMany(train);
            dev->refresh(host.now());
        }
    }
    state.SetLabel(state.range(0) ? "interface" : "direct");
    state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_BulkHammerDevirt)->Arg(0)->Arg(1);

void
BM_IteratedHammer(benchmark::State &state)
{
    // The slow path: an unrolled ACT-PRE program (no loop detection).
    dram::Chip chip(benchConfig());
    bender::Host host(chip);
    host.writeRowPattern(0, 1000, ~0ULL);
    bender::Program p;
    for (int k = 0; k < 1000; ++k)
        p.act(0, 1001).sleepNs(33.75).pre(0).sleepNs(13.75);
    for (auto _ : state)
        host.run(p);
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_IteratedHammer);

void
BM_DisturbCommit(benchmark::State &state)
{
    // Cost of evaluating a victim row's accumulated dose (the hot
    // path of every characterization experiment).
    dram::Chip chip(benchConfig());
    bender::Host host(chip);
    host.writeRowPattern(0, 1000, ~0ULL);
    for (auto _ : state) {
        host.hammer(0, 1001, 100000);
        benchmark::DoNotOptimize(host.readRowBits(0, 1000));
    }
    state.SetItemsProcessed(state.iterations() *
                            chip.config().rowBits);
}
BENCHMARK(BM_DisturbCommit);

void
BM_RowCopy(benchmark::State &state)
{
    dram::Chip chip(benchConfig());
    bender::Host host(chip);
    host.writeRowPattern(0, 1000, 0x12345678ULL);
    for (auto _ : state)
        host.rowCopy(0, 1000, 1010);
    state.SetItemsProcessed(state.iterations() *
                            chip.config().rowBits);
}
BENCHMARK(BM_RowCopy);

void
BM_ProbeCopyClassification(benchmark::State &state)
{
    // One boundary probe of the Table III scan.
    dram::Chip chip(benchConfig());
    bender::Host host(chip);
    core::SubarrayMapper mapper(host);
    for (auto _ : state)
        benchmark::DoNotOptimize(mapper.probeCopy(1000, 1001));
}
BENCHMARK(BM_ProbeCopyClassification);

/**
 * Sweep-routed figure workload: one Figure 12 BER panel through the
 * parallel sweep engine.  The Arg is the job count — compare
 * /1 vs /4 real time for the parallel speedup (results are
 * bit-identical at every job count; see core/sweep.h).
 */
void
BM_SweepBerPanel(benchmark::State &state)
{
    dram::Chip chip(benchConfig());
    bender::Host host(chip);
    core::CharactOptions opts;
    opts.victimRows = 64;
    opts.baseRow = 1024;
    opts.jobs = unsigned(state.range(0));
    core::Characterization charact(
        host,
        core::PhysMap::fromSwizzle(chip.swizzle(),
                                   chip.config().columnsPerRow(),
                                   chip.config().rdDataBits),
        opts);
    for (auto _ : state) {
        benchmark::DoNotOptimize(charact.berVsPhysIndex(
            dram::AibMechanism::RowHammer, true, true));
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            opts.victimRows);
}
BENCHMARK(BM_SweepBerPanel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/** Sweep-routed Figure 16 pattern cell (two wordline parities). */
void
BM_SweepPatternBer(benchmark::State &state)
{
    dram::Chip chip(benchConfig());
    bender::Host host(chip);
    core::CharactOptions opts;
    opts.victimRows = 32;
    opts.baseRow = 1024;
    opts.jobs = unsigned(state.range(0));
    core::Characterization charact(
        host,
        core::PhysMap::fromSwizzle(chip.swizzle(),
                                   chip.config().columnsPerRow(),
                                   chip.config().rdDataBits),
        opts);
    for (auto _ : state)
        benchmark::DoNotOptimize(charact.patternBer(0x3, 0xC));
    state.SetItemsProcessed(int64_t(state.iterations()) * 2 *
                            opts.victimRows);
}
BENCHMARK(BM_SweepPatternBer)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Observability overhead on the bulk hammer path: /0 runs with the
 * metrics registry detached (the disabled-check baseline every sweep
 * benchmark above also pays), /1 with per-command metrics enabled.
 * The bulk path folds a whole ACT-PRE loop into O(1) metric updates,
 * so both should be within noise of BM_BulkHammer.
 */
void
BM_BulkHammerMetrics(benchmark::State &state)
{
    dram::Chip chip(benchConfig());
    bender::Host host(chip);
    obs::MetricsRegistry metrics;
    if (state.range(0))
        host.setMetrics(&metrics);
    host.writeRowPattern(0, 1000, ~0ULL);
    for (auto _ : state) {
        host.hammer(0, 1001, 100000);
        host.refresh();
    }
    state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_BulkHammerMetrics)->Arg(0)->Arg(1);

/** Per-command cost of the slot path with metrics + ring tracing. */
void
BM_SlotPathObserved(benchmark::State &state)
{
    dram::Chip chip(benchConfig());
    bender::Host host(chip);
    obs::MetricsRegistry metrics;
    obs::CommandTracer tracer(4096);
    if (state.range(0)) {
        host.setMetrics(&metrics);
        host.setTrace(&tracer);
    }
    host.writeRowPattern(0, 1000, 0xA5A5A5A5ULL);
    for (auto _ : state)
        benchmark::DoNotOptimize(host.readRow(0, 1000));
    state.SetItemsProcessed(state.iterations() *
                            chip.config().columnsPerRow());
}
BENCHMARK(BM_SlotPathObserved)->Arg(0)->Arg(1);

void
BM_RetentionScan(benchmark::State &state)
{
    dram::Chip chip(benchConfig());
    bender::Host host(chip);
    for (auto _ : state) {
        host.writeRowPattern(0, 1000, ~0ULL);
        host.waitMs(4000.0);
        benchmark::DoNotOptimize(host.readRowBits(0, 1000));
    }
    state.SetItemsProcessed(state.iterations() *
                            chip.config().rowBits);
}
BENCHMARK(BM_RetentionScan);

} // namespace

BENCHMARK_MAIN();
