/**
 * @file
 * SS VI-A (memory massaging) and SS VI-B (ECC) reproduction:
 * coupled-row activation raises the templating success probability,
 * and SECDED ECC handles sparse flips but loses to the adversarial
 * data pattern unless scrambling randomizes it first.
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "bender/host.h"
#include "core/attack/templating.h"
#include "core/patterns.h"
#include "core/protect/ecc.h"
#include "core/protect/scramble.h"
#include "dram/chip.h"
#include "util/table.h"

using namespace dramscope;

namespace {

void
templating()
{
    printBanner("Memory templating reach (SS VI-A)");
    Table t({"Preset", "Attacker share", "Reach w/o coupling",
             "Reach with coupling", "Gain"});
    for (const char *preset : {"B_x4_2019", "HBM2_A", "A_x4_2018"}) {
        const dram::DeviceConfig cfg = dram::makePreset(preset);
        for (const double share : {0.02, 0.05, 0.10}) {
            core::TemplatingOptions opts;
            opts.attackerShare = share;
            opts.trials = benchutil::scaled(20000, 2000);
            opts.useCoupling = false;
            const double without =
                core::simulateTemplating(cfg, opts).probability();
            opts.useCoupling = true;
            const double with =
                core::simulateTemplating(cfg, opts).probability();
            t.addRow({preset, Table::num(share, 3),
                      Table::num(without, 3), Table::num(with, 3),
                      Table::num(without > 0 ? with / without : 0, 3)});
        }
    }
    t.print();
    benchutil::maybeWriteCsv(t, "templating_reach");
    std::printf("-> coupled presets nearly double the probability that "
                "a random victim page is attackable (each attacker row "
                "reaches two wordlines); uncoupled parts are "
                "unchanged.\n");
}

void
eccStudy()
{
    printBanner("SECDED ECC vs AIB flips (SS VI-B)");
    const dram::DeviceConfig cfg = dram::makePreset("B_x4_2019");
    const uint32_t rows = benchutil::scaled(48, 16);

    struct Case
    {
        const char *label;
        bool adversarial;
        bool scrambled;
        uint64_t count;
    };
    const Case cases[] = {
        {"mild attack, solid data", false, false, 30000},
        {"mild attack, adversarial data", true, false, 30000},
        {"strong attack, solid data", false, false, 300000},
        {"strong attack, adversarial data", true, false, 300000},
        {"strong attack, adversarial + scrambling", true, true,
         300000},
    };

    Table t({"Scenario", "Raw BER", "Post-ECC BER", "DUE words",
             "Corrected"});
    for (const auto &c : cases) {
        dram::Chip chip(cfg);
        bender::Host host(chip);
        core::EccMemory ecc(host);
        core::Scrambler scrambler(host, 0xEC0DEULL);
        const auto map = core::PhysMap::fromSwizzle(
            chip.swizzle(), cfg.columnsPerRow(), cfg.rdDataBits);

        const BitVec victim =
            c.adversarial
                ? core::AdversarialPatterns::worstBerVictimRow(map)
                : BitVec(cfg.rowBits, true);
        const BitVec aggr =
            c.adversarial
                ? core::AdversarialPatterns::worstBerAggressorRow(map)
                : BitVec(cfg.rowBits, false);

        uint64_t raw_flips = 0, post_flips = 0, due = 0, cells = 0;
        for (uint32_t g = 0; g < rows; ++g) {
            const dram::RowAddr v = 1024 + 4 * g, a = v + 1;
            // The ECC layer sits above the (optional) scrambler.
            const BitVec stored =
                c.scrambled ? [&] {
                    BitVec masked = victim;
                    masked ^= scrambler.mask(v);
                    return masked;
                }()
                            : victim;
            ecc.writeRowBits(0, v, stored);
            host.writeRowBits(0, a, c.scrambled ? [&] {
                BitVec masked = aggr;
                masked ^= scrambler.mask(a);
                return masked;
            }()
                                                : aggr);
            host.hammer(0, a, c.count);

            const BitVec raw = host.readRowBits(0, v);
            raw_flips += raw.hammingDistance(stored);
            std::vector<bool> uncorrectable;
            const BitVec corrected =
                ecc.readRowBits(0, v, &uncorrectable);
            post_flips += corrected.hammingDistance(stored);
            for (const bool bad : uncorrectable)
                due += bad ? 1 : 0;
            cells += cfg.rowBits;
        }
        t.addRow({c.label, Table::num(double(raw_flips) / cells, 3),
                  Table::num(double(post_flips) / cells, 3),
                  Table::num(due),
                  Table::num(ecc.stats().corrected)});
    }
    t.print();
    benchutil::maybeWriteCsv(t, "ecc_study");
    std::printf("-> SECDED absorbs sparse flips; the adversarial "
                "pattern concentrates flips into words and defeats "
                "plain SECDED (DUE/SDC), while scrambling restores "
                "its effectiveness — the pattern-aware ECC direction "
                "the paper points to.\n");
}

} // namespace

int
main()
{
    benchutil::header(
        "SS VI extensions: templating reach and ECC behaviour",
        "coupled rows raise massaging success probability; ECC alone "
        "is insufficient against the adversarial data pattern");
    templating();
    eccStudy();
    return 0;
}
