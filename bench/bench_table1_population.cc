/**
 * @file
 * Table I reproduction: the tested DRAM population.
 *
 * Prints the preset registry — vendor, chip type, density, year and
 * chip count — matching the paper's Table I, plus the structural
 * ground truth each preset carries (used by every other bench).
 */

#include <cstdio>

#include "dram/config.h"
#include "util/table.h"

using namespace dramscope;

int
main()
{
    printBanner("Table I: tested DRAM population (simulated presets)");
    Table t({"Preset", "DRAM type", "Vendor", "Chip type", "Density",
             "Year", "# chips"});
    int total_ddr4 = 0, total_hbm2 = 0;
    for (const auto &info : dram::presetTable()) {
        const dram::DeviceConfig cfg = dram::makePreset(info.id);
        const bool hbm = cfg.type == dram::DramType::HBM2;
        (hbm ? total_hbm2 : total_ddr4) += info.chipCount;
        t.addRow({info.id, dram::toString(cfg.type),
                  dram::toString(cfg.vendor),
                  hbm ? "4-Hi stack" : dram::toString(cfg.width),
                  hbm ? "4GB/stack" : "8Gb",
                  cfg.year ? Table::num(int64_t(cfg.year)) : "N/A",
                  Table::num(int64_t(info.chipCount))});
    }
    t.print();
    std::printf("\nTotal DDR4 chips: %d (paper: 376)\n", total_ddr4);
    std::printf("Total HBM2 stacks: %d (paper: 4)\n", total_hbm2);
    return 0;
}
