/**
 * @file
 * SS VI-B reproduction: data scrambling as a countermeasure against
 * the adversarial data pattern (O13/O14).
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "bender/host.h"
#include "core/patterns.h"
#include "core/protect/scramble.h"
#include "dram/chip.h"
#include "util/table.h"

using namespace dramscope;

namespace {

/** BER of the worst-case pattern through a given write path. */
double
attackBer(const dram::DeviceConfig &cfg, bool scrambled,
          bool row_col_keyed, uint32_t rows)
{
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::Scrambler scrambler(host, 0x5EEDC0DEULL, row_col_keyed);
    const auto map = core::PhysMap::fromSwizzle(
        chip.swizzle(), cfg.columnsPerRow(), cfg.rdDataBits);
    const BitVec victim = core::AdversarialPatterns::worstBerVictimRow(map);
    const BitVec aggr =
        core::AdversarialPatterns::worstBerAggressorRow(map);

    size_t flips = 0, cells = 0;
    for (uint32_t g = 0; g < rows; ++g) {
        const dram::RowAddr v = 1000 + 4 * g, a = v + 1;
        if (scrambled) {
            scrambler.writeRowBits(0, v, victim);
            scrambler.writeRowBits(0, a, aggr);
        } else {
            host.writeRowBits(0, v, victim);
            host.writeRowBits(0, a, aggr);
        }
        host.hammer(0, a, 300000);
        const BitVec read = scrambled ? scrambler.readRowBits(0, v)
                                      : host.readRowBits(0, v);
        flips += read.hammingDistance(victim);
        cells += cfg.rowBits;
    }
    return double(flips) / double(cells);
}

/** Baseline: solid victim, solid-opposite aggressor, raw path. */
double
baselineBer(const dram::DeviceConfig &cfg, uint32_t rows)
{
    dram::Chip chip(cfg);
    bender::Host host(chip);
    size_t flips = 0, cells = 0;
    for (uint32_t g = 0; g < rows; ++g) {
        const dram::RowAddr v = 1000 + 4 * g, a = v + 1;
        host.writeRowPattern(0, v, ~0ULL);
        host.writeRowPattern(0, a, 0);
        host.hammer(0, a, 300000);
        const BitVec read = host.readRowBits(0, v);
        flips += read.size() - read.popcount();
        cells += cfg.rowBits;
    }
    return double(flips) / double(cells);
}

} // namespace

int
main()
{
    benchutil::header(
        "SS VI-B: scrambling vs the adversarial data pattern",
        "the 0x33/0xCC pattern raises BER ~1.69x over the solid "
        "baseline; MC-side scrambling randomizes the stored pattern "
        "and removes the advantage (row+column keying also defeats "
        "row-aware pattern construction)");

    // Preset without internal remap so consecutive rows are adjacent.
    const dram::DeviceConfig cfg = dram::makePreset("B_x4_2019");
    const uint32_t rows = benchutil::scaled(48, 16);

    const double base = baselineBer(cfg, rows);
    const double raw = attackBer(cfg, false, true, rows);
    const double keyed = attackBer(cfg, true, true, rows);
    const double legacy = attackBer(cfg, true, false, rows);

    Table t({"Write path", "Victim BER", "Relative to solid baseline"});
    t.addRow({"solid baseline (0xFF / 0x00)", Table::num(base, 4),
              "1.00"});
    t.addRow({"adversarial 0x33 / 0xCC, raw", Table::num(raw, 4),
              Table::num(raw / base, 3)});
    t.addRow({"adversarial via row+col-keyed scrambler",
              Table::num(keyed, 4), Table::num(keyed / base, 3)});
    t.addRow({"adversarial via column-only scrambler",
              Table::num(legacy, 4), Table::num(legacy / base, 3)});
    t.print();
    benchutil::maybeWriteCsv(t, "protect_scramble");
    std::printf("\nScrambling returns the adversarial pattern to "
                "random-data behaviour; the paper recommends keying the "
                "mask by row and column (SS VI-B).\n");
    return 0;
}
