/**
 * @file
 * Ablations and robustness checks the paper reports in passing:
 *  - temperature does not change the key observations (footnote 3);
 *  - double-sided hammering flips strictly more than single-sided
 *    (footnote 6);
 *  - the DESIGN.md model choices matter: turning off the press onset
 *    or MAT isolation breaks the corresponding observations.
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "bender/host.h"
#include "core/physmap.h"
#include "dram/chip.h"
#include "util/table.h"

using namespace dramscope;

namespace {

struct ParityBer
{
    double even = 0, odd = 0;
};

/** Single-sided charged-victim hammer, BER split by BL parity. */
ParityBer
hammerParityBer(const dram::DeviceConfig &cfg, uint32_t rows)
{
    dram::Chip chip(cfg);
    bender::Host host(chip);
    const auto map = core::PhysMap::fromSwizzle(
        chip.swizzle(), cfg.columnsPerRow(), cfg.rdDataBits);
    auto logical = [&](dram::RowAddr phys) {
        return dram::remapRow(cfg.rowRemap, phys);
    };
    ParityBer out;
    uint64_t cells = 0;
    for (uint32_t g = 0; g < rows; ++g) {
        const dram::RowAddr victim = 1024 + 4 * g;  // Even physical.
        host.writeRowPattern(0, logical(victim), ~0ULL);
        host.writeRowPattern(0, logical(victim + 1), 0);
        host.hammer(0, logical(victim + 1), 300000);
        BitVec read = host.readRowBits(0, logical(victim));
        read = read.inverted();  // Flip positions.
        const BitVec phys = map.toPhysical(read);
        for (size_t p = 0; p < phys.size(); ++p) {
            if (phys.get(p))
                ((p & 1) == 0 ? out.even : out.odd) += 1.0;
        }
        cells += cfg.rowBits;
    }
    out.even /= double(cells) / 2.0;
    out.odd /= double(cells) / 2.0;
    return out;
}

void
temperatureSweep()
{
    printBanner("Temperature sweep (paper footnote 3)");
    Table t({"Temperature", "On-phase BER", "Off-phase BER",
             "Alternation contrast"});
    const uint32_t rows = benchutil::scaled(32, 8);
    for (const double temp : {50.0, 75.0, 95.0}) {
        dram::DeviceConfig cfg = dram::makePreset("A_x4_2021");
        cfg.temperatureC = temp;
        const auto ber = hammerParityBer(cfg, rows);
        t.addRow({Table::num(temp, 3) + " C", Table::num(ber.even, 3),
                  Table::num(ber.odd, 3),
                  Table::num(ber.even / std::max(ber.odd, 1e-9), 3)});
    }
    t.print();
    std::printf("-> absolute BER scales with temperature, but the "
                "alternating structure (the key observation) is "
                "unchanged, matching the paper's footnote 3.\n");
}

void
doubleSided()
{
    printBanner("Single- vs double-sided RowHammer (footnote 6)");
    dram::DeviceConfig cfg = dram::makePreset("A_x4_2021");
    dram::Chip chip(cfg);
    bender::Host host(chip);
    auto logical = [&](dram::RowAddr phys) {
        return dram::remapRow(cfg.rowRemap, phys);
    };
    Table t({"Attack", "Activations per aggressor", "Victim flips"});
    const uint32_t rows = benchutil::scaled(16, 8);
    for (const bool double_sided : {false, true}) {
        size_t flips = 0;
        for (uint32_t g = 0; g < rows; ++g) {
            const dram::RowAddr victim = 2048 + 4 * g + 1;
            host.writeRowPattern(0, logical(victim), ~0ULL);
            host.writeRowPattern(0, logical(victim - 1), 0);
            host.writeRowPattern(0, logical(victim + 1), 0);
            host.hammer(0, logical(victim + 1), 150000);
            if (double_sided)
                host.hammer(0, logical(victim - 1), 150000);
            const BitVec read = host.readRowBits(0, logical(victim));
            flips += read.size() - read.popcount();
        }
        t.addRow({double_sided ? "double-sided" : "single-sided",
                  "150000", Table::num(uint64_t(flips))});
    }
    t.print();
    std::printf("-> the same per-aggressor budget flips more cells "
                "double-sided (both gate phases active), which is why "
                "the paper uses single-sided attacks only to keep the "
                "characterization clean.\n");
}

void
modelAblations()
{
    printBanner("Model ablations (DESIGN.md design choices)");
    Table t({"Configuration", "Off-phase flips under RowHammer",
             "Observation preserved"});
    const uint32_t rows = benchutil::scaled(16, 8);

    for (const bool onset : {true, false}) {
        dram::DeviceConfig cfg = dram::makePreset("A_x4_2021");
        if (!onset)
            cfg.disturb.pressOnsetNs = 0.0;
        dram::Chip chip(cfg);
        bender::Host host(chip);
        const auto map = core::PhysMap::fromSwizzle(
            chip.swizzle(), cfg.columnsPerRow(), cfg.rdDataBits);
        auto logical = [&](dram::RowAddr phys) {
            return dram::remapRow(cfg.rowRemap, phys);
        };
        // RowHammer (short opens) on even victims: flips should stay
        // on the hammer phase; without the press onset the open time
        // of every ACT leaks RowPress dose onto the other phase.
        size_t off_phase = 0;
        for (uint32_t g = 0; g < rows; ++g) {
            const dram::RowAddr victim = 1024 + 4 * g;
            host.writeRowPattern(0, logical(victim), ~0ULL);
            host.writeRowPattern(0, logical(victim + 1), 0);
            host.hammer(0, logical(victim + 1), 400000);
            BitVec read = host.readRowBits(0, logical(victim));
            read = read.inverted();
            const BitVec phys = map.toPhysical(read);
            for (size_t p = 1; p < phys.size(); p += 2)
                off_phase += phys.get(p);
        }
        t.addRow({onset ? "press onset 200ns (default)"
                        : "press onset disabled",
                  Table::num(uint64_t(off_phase)),
                  onset ? "yes (phases disjoint, SS V-B)"
                        : "NO (hammer bleeds into the press phase)"});
    }
    t.print();
}

} // namespace

int
main()
{
    benchutil::header(
        "Ablations: temperature, sidedness, model choices",
        "key observations are temperature-invariant (footnote 3); "
        "double-sided flips more (footnote 6); the press-onset design "
        "choice is what keeps hammer and press populations disjoint");
    temperatureSweep();
    doubleSided();
    modelAblations();
    return 0;
}
