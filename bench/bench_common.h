/**
 * @file
 * Shared helpers for the bench harness.
 */

#ifndef DRAMSCOPE_BENCH_BENCH_COMMON_H
#define DRAMSCOPE_BENCH_BENCH_COMMON_H

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/sweep.h"
#include "util/metrics.h"
#include "util/table.h"

namespace dramscope {
namespace benchutil {

/** Environment knob: scale factor for workload sizes (default 1.0). */
inline double
scale()
{
    const char *env = std::getenv("DRAMSCOPE_BENCH_SCALE");
    if (!env)
        return 1.0;
    const double s = std::atof(env);
    return s > 0.0 ? s : 1.0;
}

/** Scaled count, at least @p min_value. */
inline uint32_t
scaled(uint32_t base, uint32_t min_value = 1)
{
    const auto v = uint32_t(double(base) * scale());
    return v < min_value ? min_value : v;
}

/** Prints the reproduction header every bench starts with. */
inline void
header(const char *experiment, const char *expectation)
{
    std::printf("DRAMScope reproduction — %s\n", experiment);
    std::printf("paper expectation: %s\n", expectation);
    std::printf("(simulated substrate; compare shapes, not absolute "
                "values)\n");
}

/**
 * Reports the effective sweep parallelism of this run (DRAMSCOPE_JOBS
 * knob; results are bit-identical at any job count, see core/sweep.h).
 */
inline void
jobsBanner()
{
    const unsigned jobs = core::resolveJobs();
    std::printf("sweep jobs: %u (DRAMSCOPE_JOBS; 1 = serial, output "
                "identical at any value)\n",
                jobs);
}

/**
 * Process-wide metrics registry for bench binaries.  Attach it to
 * every host a bench creates (observeHost) and print the roll-up once
 * at the end (printMetricsSummary); parallel sweeps drain per-replica
 * registries back into it (see core/sweep.h), so the summary is
 * complete and identical at any DRAMSCOPE_JOBS value.
 */
inline obs::MetricsRegistry &
metricsRegistry()
{
    static obs::MetricsRegistry registry;
    return registry;
}

/** Attaches the bench-wide metrics registry to @p host. */
inline void
observeHost(bender::Host &host)
{
    host.setMetrics(&metricsRegistry());
}

/** Prints the one-line command summary of the bench-wide registry. */
inline void
printMetricsSummary()
{
    std::printf("%s\n",
                metricsRegistry().snapshot().commandSummary().c_str());
}

/** Wall-clock stopwatch for reporting sweep throughput. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    /** Seconds since construction or the last reset(). */
    double
    seconds() const
    {
        const auto dt = std::chrono::steady_clock::now() - start_;
        return std::chrono::duration<double>(dt).count();
    }

    /** Restarts the stopwatch. */
    void reset() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Writes @p table as <DRAMSCOPE_CSV_DIR>/<name>.csv when the
 * environment variable is set (artifact-style CSV output).
 */
inline void
maybeWriteCsv(const Table &table, const std::string &name)
{
    const char *dir = std::getenv("DRAMSCOPE_CSV_DIR");
    if (!dir || !*dir)
        return;
    const std::string path = std::string(dir) + "/" + name + ".csv";
    table.writeCsv(path);
    std::printf("(csv written to %s)\n", path.c_str());
}

} // namespace benchutil
} // namespace dramscope

#endif // DRAMSCOPE_BENCH_BENCH_COMMON_H
