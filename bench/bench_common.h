/**
 * @file
 * Shared helpers for the bench harness.
 */

#ifndef DRAMSCOPE_BENCH_BENCH_COMMON_H
#define DRAMSCOPE_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/table.h"

namespace dramscope {
namespace benchutil {

/** Environment knob: scale factor for workload sizes (default 1.0). */
inline double
scale()
{
    const char *env = std::getenv("DRAMSCOPE_BENCH_SCALE");
    if (!env)
        return 1.0;
    const double s = std::atof(env);
    return s > 0.0 ? s : 1.0;
}

/** Scaled count, at least @p min_value. */
inline uint32_t
scaled(uint32_t base, uint32_t min_value = 1)
{
    const auto v = uint32_t(double(base) * scale());
    return v < min_value ? min_value : v;
}

/** Prints the reproduction header every bench starts with. */
inline void
header(const char *experiment, const char *expectation)
{
    std::printf("DRAMScope reproduction — %s\n", experiment);
    std::printf("paper expectation: %s\n", expectation);
    std::printf("(simulated substrate; compare shapes, not absolute "
                "values)\n");
}

/**
 * Writes @p table as <DRAMSCOPE_CSV_DIR>/<name>.csv when the
 * environment variable is set (artifact-style CSV output).
 */
inline void
maybeWriteCsv(const Table &table, const std::string &name)
{
    const char *dir = std::getenv("DRAMSCOPE_CSV_DIR");
    if (!dir || !*dir)
        return;
    const std::string path = std::string(dir) + "/" + name + ".csv";
    table.writeCsv(path);
    std::printf("(csv written to %s)\n", path.c_str());
}

} // namespace benchutil
} // namespace dramscope

#endif // DRAMSCOPE_BENCH_BENCH_COMMON_H
