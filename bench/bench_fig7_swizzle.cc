/**
 * @file
 * Figure 7 / O1 / O2 reproduction: reverse engineering the chip-
 * internal data swizzling and the MAT width through AIB horizontal
 * influence plus RowCopy bitline-parity classification.
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "bender/host.h"
#include "core/re_subarray.h"
#include "core/re_swizzle.h"
#include "dram/chip.h"
#include "util/table.h"

using namespace dramscope;

namespace {

void
reverseOne(const std::string &preset_id)
{
    printBanner("Data swizzling of " + preset_id);
    const dram::DeviceConfig cfg = dram::makePreset(preset_id);
    dram::Chip chip(cfg);
    bender::Host host(chip);
    benchutil::observeHost(host);

    // Boundary for the parity step comes from a quick RowCopy scan.
    core::SubarrayMapper subarrays(host);
    dram::RowAddr boundary = 0;
    for (dram::RowAddr r = 8; r < cfg.rowsPerBank; r += 8) {
        // Heights are multiples of 8: scan block boundaries only.
        if (subarrays.probeCopy(r - 1, r) != core::CopyOutcome::Full) {
            boundary = r;
            break;
        }
    }

    core::SwizzleOptions opts;
    opts.victimGroups = benchutil::scaled(220, 60);
    opts.baseRow = 1024;
    opts.subarrayBoundary = boundary;
    opts.rowRemap = cfg.rowRemap;  // From the adjacency step
                                   // (bench_table3_structure).
    core::SwizzleReverser reverser(host, opts);
    const auto d = reverser.discover();

    std::printf("RD_data bits: %u, influence edges: %zu\n", d.rdDataBits,
                d.edges.size());
    std::printf("MATs feeding one RD (O1): %u   measured MAT width "
                "(O2): %u bits (truth: %u)\n",
                d.matsPerRow, d.matWidth, cfg.matWidth);
    std::printf("residue-structured: %s   parity periodic across "
                "columns: %s\n",
                d.residueStructured ? "yes" : "no",
                d.periodic ? "yes" : "no");

    Table t({"RD bit", "MAT", "intra-group slot", "bitline parity"});
    const uint32_t show = std::min<uint32_t>(d.rdDataBits, 16);
    for (uint32_t i = 0; i < show; ++i) {
        const uint32_t intra = i / d.matsPerRow;
        const std::string slot =
            d.recoveredPerm.empty()
                ? "?"
                : Table::num(uint64_t(d.recoveredPerm[intra]));
        t.addRow({Table::num(uint64_t(i)),
                  Table::num(int64_t(d.matOfRdBit[i])), slot,
                  d.blParity[i] ? "odd" : "even"});
    }
    t.print();
    if (show < d.rdDataBits)
        std::printf("(first %u bits shown)\n", show);

    if (!d.recoveredPerm.empty()) {
        const bool match = d.recoveredPerm == cfg.swizzlePerm;
        std::printf("recovered intra-group permutation: {");
        for (size_t k = 0; k < d.recoveredPerm.size(); ++k)
            std::printf("%s%u", k ? "," : "", d.recoveredPerm[k]);
        std::printf("}  -> %s ground truth\n",
                    match ? "MATCHES" : "DIFFERS FROM");
    }
}

} // namespace

int
main()
{
    benchutil::header(
        "Figure 7 / O1-O2: data swizzling and MAT width",
        "one RD gathers bits from every MAT (8 x 4-bit for Mfr. A "
        "x4); MAT width 512 bits for Mfr. A/C and 1024 bits for "
        "Mfr. B");
    reverseOne("A_x4_2016");
    reverseOne("B_x4_2019");
    benchutil::printMetricsSummary();
    return 0;
}
