/**
 * @file
 * Figure 8 reproduction: how the commonly used ColStripe and
 * Checkered host patterns actually land in the MATs when the data
 * swizzling is ignored.
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "core/physmap.h"
#include "dram/swizzle.h"
#include "util/table.h"

using namespace dramscope;

namespace {

/** Renders the first cells of a physical row as a string. */
std::string
physPrefix(const BitVec &phys, size_t n)
{
    std::string s;
    for (size_t p = 0; p < n; ++p) {
        s.push_back(phys.get(p) ? '1' : '0');
        if (p % 4 == 3)
            s.push_back(' ');
    }
    return s;
}

/** Longest run of equal values in the physical layout. */
size_t
longestRun(const BitVec &phys)
{
    size_t best = 1, run = 1;
    for (size_t p = 1; p < phys.size(); ++p) {
        run = phys.get(p) == phys.get(p - 1) ? run + 1 : 1;
        best = std::max(best, run);
    }
    return best;
}

void
analyze(const std::string &label, const BitVec &host,
        const core::PhysMap &map)
{
    const BitVec phys = map.toPhysical(host);
    std::printf("%-34s cells 0..31: %s (longest solid run %zu)\n",
                label.c_str(), physPrefix(phys, 32).c_str(),
                longestRun(phys));
}

} // namespace

int
main()
{
    benchutil::header(
        "Figure 8: data patterns without the internal column mapping",
        "a host ColStripe degenerates into per-MAT solid runs and a "
        "Checkered pattern into RowStripe-like layouts; only mapping-"
        "aware patterns produce the intended physical stripes");

    const dram::DeviceConfig cfg = dram::makePreset("A_x4_2016");
    const dram::Swizzle swz(cfg);
    const auto map = core::PhysMap::fromSwizzle(swz, cfg.columnsPerRow(),
                                                cfg.rdDataBits);

    printBanner("Mfr. A x4: physical arrangement of host patterns");
    BitVec colstripe(cfg.rowBits);
    colstripe.fillPattern(0b01, 2);
    analyze("host ColStripe (0x55...)", colstripe, map);

    BitVec checkered(cfg.rowBits);
    checkered.fillPattern(0b01, 2);  // Even row of a checkered pair.
    analyze("host Checkered, even row", checkered, map);
    BitVec checkered_odd = checkered.inverted();
    analyze("host Checkered, odd row", checkered_odd, map);

    analyze("mapping-aware ColStripe",
            map.hostBitsForPhysicalPattern(0b01, 2), map);

    std::printf(
        "\nWithin each %u-cell MAT group the naive ColStripe holds a "
        "constant value (it acts as a Solid pattern), and the naive "
        "Checkered acts as RowStripe: consecutive RD bits are routed "
        "to different MATs (O1), so host-side alternation never "
        "reaches physically adjacent cells.\n",
        cfg.groupBits());
    return 0;
}
