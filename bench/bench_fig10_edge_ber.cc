/**
 * @file
 * Figure 10 / O6 reproduction: AIB-induced BER of typical vs edge
 * subarrays for (aggressor, victim) data (0,1) and (1,0), on DDR4 and
 * HBM2.
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "bender/host.h"
#include "core/charact.h"
#include "dram/chip.h"
#include "util/table.h"

using namespace dramscope;

namespace {

void
runDevice(const std::string &preset_id, Table &t)
{
    const dram::DeviceConfig cfg = dram::makePreset(preset_id);
    dram::Chip chip(cfg);
    bender::Host host(chip);
    benchutil::observeHost(host);

    core::CharactOptions opts;
    opts.rowRemap = cfg.rowRemap;
    core::Characterization charact(
        host,
        core::PhysMap::fromSwizzle(chip.swizzle(), cfg.columnsPerRow(),
                                   cfg.rdDataBits),
        opts);

    // Aggressor rows: interiors of edge vs typical subarrays, taken
    // from the structure recovered in bench_table3_structure (here:
    // the device map, which that bench verified identical).
    const auto &map = chip.subarrayMap();
    std::vector<dram::RowAddr> edge, typical;
    const uint32_t want = benchutil::scaled(24, 8);
    for (size_t k = 0; k < map.count(); ++k) {
        const auto &sub = map.subarray(k);
        auto &dst = sub.isEdge() ? edge : typical;
        if (dst.size() < want)
            dst.push_back(sub.firstRow + sub.height / 2);
    }

    const auto r = charact.edgeVsTypical(typical, edge);
    t.addRow({preset_id, "(0, 1)", Table::num(r.typicalAggr0Vic1),
              Table::num(r.edgeAggr0Vic1),
              Table::num(r.edgeAggr0Vic1 / r.typicalAggr0Vic1, 3)});
    t.addRow({preset_id, "(1, 0)", Table::num(r.typicalAggr1Vic0),
              Table::num(r.edgeAggr1Vic0),
              Table::num(r.edgeAggr1Vic0 / r.typicalAggr1Vic0, 3)});
}

} // namespace

int
main()
{
    benchutil::header(
        "Figure 10 / O5-O6: edge vs typical subarray BER",
        "edge subarrays show lower BER than typical subarrays for "
        "both data patterns, with a larger gap when the aggressor "
        "holds 1 (dummy bitlines hold the precharge state)");

    Table t({"Device", "(aggr, vic) data", "Typical BER", "Edge BER",
             "Edge / typical"});
    runDevice("A_x4_2016", t);
    runDevice("HBM2_A", t);
    t.print();
    benchutil::maybeWriteCsv(t, "fig10_edge_ber");
    std::printf("\nEdge subarrays use only half their bitlines; the "
                "dummy half damps the disturbance (O6).\n");
    benchutil::printMetricsSummary();
    return 0;
}
