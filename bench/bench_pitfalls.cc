/**
 * @file
 * Figure 5 / SS III-C reproduction: the three common reverse-
 * engineering pitfalls — RCD address inversion, internal row
 * remapping and DQ twisting — and the phantom effects they create
 * when ignored.
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "mapping/dimm.h"
#include "util/table.h"

using namespace dramscope;

namespace {

/**
 * 1->0 flips observed at a chip around a hammered row address.
 * Rows that read back as mostly zeros were never written from this
 * chip's point of view (the naive-host situation) and count nothing.
 */
size_t
chipFlipsNear(dram::Chip &chip, dram::RowAddr center, dram::NanoTime t)
{
    const auto &cfg = chip.config();
    size_t flips = 0;
    for (dram::RowAddr r = center - 2; r <= center + 2; ++r) {
        chip.act(0, r, t);
        t += 20;
        size_t ones = 0;
        for (dram::ColAddr c = 0; c < cfg.columnsPerRow(); ++c) {
            ones += size_t(
                __builtin_popcountll(chip.read(0, c, t)));
            t += 2;
        }
        t += 40;
        chip.pre(0, t);
        t += 20;
        if (ones >= cfg.rowBits / 2)
            flips += cfg.rowBits - ones;
    }
    return flips;
}

void
pitfall1RcdInversion()
{
    printBanner("Pitfall (1): RCD B-side address inversion");

    mapping::Dimm dimm(dram::makePreset("B_x4_2019"),
                       /*rcd_inversion=*/true, /*identity_twist=*/true);
    dram::NanoTime t = 1000;
    const dram::RowAddr aggr = 5000;

    // Arm rows around the aggressor *as the naive host sees them*.
    auto write_row = [&](dram::RowAddr host_row, uint64_t pattern) {
        dimm.act(0, host_row, t);
        t += 50;
        for (dram::ColAddr c = 0;
             c < dimm.chipConfig().columnsPerRow(); ++c) {
            dimm.writeChips(
                0, c, std::vector<uint64_t>(dimm.chipCount(), pattern),
                t);
            t += 2;
        }
        t += 50;
        dimm.pre(0, t);
        t += 20;
    };
    for (dram::RowAddr r = aggr - 2; r <= aggr + 2; ++r)
        write_row(r, r == aggr ? 0 : 0xFFFFFFFFULL);

    // Hammer the aggressor through the DIMM (broadcast).
    for (int k = 0; k < 300000; ++k) {
        dimm.act(0, aggr, t);
        t += 35;
        dimm.pre(0, t);
        t += 15;
    }

    // A-side chip 0 sees flips adjacent to the host address.  B-side
    // chip 15 received inverted rows: probing its *host-addressed*
    // neighbourhood finds nothing, which naive analyses report as
    // "non-adjacent RowHammer" at the inverted address instead.
    Table tab({"View", "Rows probed", "Flips found"});
    const size_t a_side = chipFlipsNear(dimm.chip(0), aggr, t);
    const dram::RowAddr inverted =
        dimm.rcd().chipRow(aggr, /*b_side=*/true);
    const size_t b_naive = chipFlipsNear(dimm.chip(15), aggr, t + 4000);
    const size_t b_aware =
        chipFlipsNear(dimm.chip(15), inverted, t + 8000);
    tab.addRow({"A-side chip, host address", "host row +-2",
                Table::num(uint64_t(a_side))});
    tab.addRow({"B-side chip, host address (naive)", "host row +-2",
                Table::num(uint64_t(b_naive))});
    tab.addRow({"B-side chip, inverted address (aware)",
                "inverted row +-2", Table::num(uint64_t(b_aware))});
    tab.print();
    std::printf("-> ignoring the inversion makes B-side bitflips appear "
                "at 'non-adjacent' rows (phantom distance-N effects)\n");
}

void
pitfall2InternalRemap()
{
    printBanner("Pitfall (2): internal row remapping (Mfr. A)");
    const dram::DeviceConfig cfg = dram::makePreset("A_x4_2016");
    Table tab({"Logical rows hammered", "Naive expectation",
               "Actual flipped rows (physical adjacency)"});
    for (dram::RowAddr aggr : {1020u, 1021u, 1022u}) {
        const dram::RowAddr phys = dram::remapRow(cfg.rowRemap, aggr);
        const dram::RowAddr lo = dram::remapRow(cfg.rowRemap, phys - 1);
        const dram::RowAddr hi = dram::remapRow(cfg.rowRemap, phys + 1);
        tab.addRow({Table::num(uint64_t(aggr)),
                    Table::num(uint64_t(aggr - 1)) + ", " +
                        Table::num(uint64_t(aggr + 1)),
                    Table::num(uint64_t(std::min(lo, hi))) + ", " +
                        Table::num(uint64_t(std::max(lo, hi)))});
    }
    tab.print();
    std::printf("-> single-sided RowHammer probes (SS III-C) recover this "
                "mapping; see bench_table3_structure's Remap column\n");
}

void
pitfall3DqTwist()
{
    printBanner("Pitfall (3): DQ twisting per chip");
    mapping::Dimm dimm(dram::makePreset("A_x4_2016"));
    Table tab({"Chip", "Host writes (byte view)", "Chip receives"});
    const uint64_t host_data = 0x55555555ULL;
    for (uint32_t c : {0u, 1u, 2u, 3u, 15u}) {
        const uint64_t chip_data =
            dimm.twist(c).toChip(host_data, 32);
        char host_s[16], chip_s[16];
        std::snprintf(host_s, sizeof(host_s), "0x%08llX",
                      (unsigned long long)host_data);
        std::snprintf(chip_s, sizeof(chip_s), "0x%08llX",
                      (unsigned long long)chip_data);
        tab.addRow({Table::num(uint64_t(c)), host_s, chip_s});
    }
    tab.print();
    std::printf("-> a '0x55 ColStripe' reaches different chips as "
                "different patterns; all DRAMScope tools compensate "
                "per chip\n");
}

} // namespace

int
main()
{
    benchutil::header("SS III-C: common pitfalls from address and data "
                      "mapping",
                      "naive hosts observe phantom non-adjacent flips "
                      "(RCD inversion), wrong neighbours (internal "
                      "remap) and wrong data patterns (DQ twist)");
    pitfall1RcdInversion();
    pitfall2InternalRemap();
    pitfall3DqTwist();
    return 0;
}
