/**
 * @file
 * Figure 15 / O13 reproduction: relative Hcnt (activation count of
 * the first bitflip at the target cell) as the other victim cells'
 * data changes.
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "bender/host.h"
#include "core/charact.h"
#include "dram/chip.h"
#include "util/table.h"

using namespace dramscope;

int
main()
{
    benchutil::header(
        "Figure 15 / O13: relative Hcnt under adversarial victim data",
        "setting victim neighbours opposite to Vic0 lowers Hcnt: "
        "paper reports 0.95x (0.91x) for Vic-1,1, 0.87x (0.91x) for "
        "Vic-2,2 and 0.81x (0.90x) for all four, Vic0 = 0 (1); the "
        "linear dose model reproduces the ordering with stronger "
        "magnitudes (see EXPERIMENTS.md)");

    const dram::DeviceConfig cfg = dram::makePreset("A_x4_2021");
    dram::Chip chip(cfg);
    bender::Host host(chip);
    benchutil::observeHost(host);
    core::CharactOptions opts;
    opts.rowRemap = cfg.rowRemap;
    opts.victimRows = benchutil::scaled(24, 8);
    core::Characterization charact(
        host,
        core::PhysMap::fromSwizzle(chip.swizzle(), cfg.columnsPerRow(),
                                   cfg.rdDataBits),
        opts);

    Table t({"Cells opposite to Vic0", "Vic0 = 0", "paper",
             "Vic0 = 1", "paper"});
    struct Row
    {
        const char *label;
        bool d1, d2;
        const char *paper0, *paper1;
    };
    const Row rows[] = {
        {"Vic-1,1", true, false, "0.95x", "0.91x"},
        {"Vic-2,2", false, true, "0.87x", "0.91x"},
        {"Vic-2,-1,1,2", true, true, "0.81x", "0.90x"},
    };
    for (const auto &row : rows) {
        const double r0 = charact.relativeHcnt(false, row.d1, row.d2);
        const double r1 = charact.relativeHcnt(true, row.d1, row.d2);
        t.addRow({row.label, Table::num(r0, 3), row.paper0,
                  Table::num(r1, 3), row.paper1});
    }
    t.print();
    benchutil::maybeWriteCsv(t, "fig15_hcnt");
    std::printf("\nO13: the adversarial data pattern lowers the "
                "first-flip activation count; Vic-2,2 contributes more "
                "than Vic-1,1, consistent with O11.\n");
    benchutil::printMetricsSummary();
    return 0;
}
