/**
 * @file
 * Table III reproduction: subarray composition, edge-subarray
 * interval and coupled-row distance for every preset, recovered
 * through memory commands only, cross-checked against ground truth.
 */

#include <cstdio>
#include <map>
#include <sstream>

#include "bench/bench_common.h"
#include "bender/host.h"
#include "core/re_adjacency.h"
#include "core/re_coupled.h"
#include "core/re_polarity.h"
#include "core/re_subarray.h"
#include "dram/chip.h"
#include "util/table.h"

using namespace dramscope;

namespace {

/** Compact "11x640 + 2x576" rendering of a height list. */
std::string
compactHeights(const std::vector<uint32_t> &heights)
{
    std::ostringstream os;
    size_t i = 0;
    bool first = true;
    // Render one pattern period: find the shortest repeating prefix.
    size_t period = heights.size();
    for (size_t p = 1; p <= heights.size() / 2; ++p) {
        if (heights.size() % p != 0)
            continue;
        bool repeats = true;
        for (size_t k = p; k < heights.size() && repeats; ++k)
            repeats = heights[k] == heights[k % p];
        if (repeats) {
            period = p;
            break;
        }
    }
    while (i < period) {
        size_t run = 1;
        while (i + run < period && heights[i + run] == heights[i])
            ++run;
        os << (first ? "" : " + ") << run << "x" << heights[i];
        first = false;
        i += run;
    }
    if (period != heights.size())
        os << " (x" << heights.size() / period << ")";
    return os.str();
}

} // namespace

int
main()
{
    benchutil::header(
        "Table III: subarray / row structures",
        "non-power-of-two heights, mixed heights per chip; edge "
        "sections every 4K-32K rows; coupled rows in x4 Mfr. A "
        "2016/17, Mfr. B x4 and HBM2 at Nrow/2");

    Table t({"Preset", "Subarray composition (RowCopy)",
             "Edge section", "Coupled distance", "Remap", "Polarity",
             "Matches truth"});

    for (const auto &id : dram::presetIds()) {
        const dram::DeviceConfig cfg = dram::makePreset(id);
        dram::Chip chip(cfg);
        bender::Host host(chip);

        core::SubarrayMapper mapper(host);
        const auto d = mapper.discoverFirstSection();
        Rng rng(0xBE7C);
        const bool periodic = mapper.verifyPeriodicity(d, 6, rng);

        core::CoupledOptions copts;
        copts.probeRow = 1200;
        core::CoupledRowDetector coupled(host, copts);
        const auto distance = coupled.detect();

        core::AdjacencyMapper adjacency(host);
        const auto scheme = adjacency.detectRemapScheme(1024);

        // One retention probe per subarray of the first three.
        core::CellTypeClassifier polarity(host);
        std::vector<dram::RowAddr> probes;
        uint32_t row = 0;
        for (const auto h : d.heights) {
            probes.push_back(row + h / 2);
            row += h;
            if (probes.size() == 3)
                break;
        }
        const auto pol = polarity.classify(probes);

        // Ground-truth comparison.
        std::vector<uint32_t> truth_heights;
        {
            const dram::SubarrayMap truth_map(cfg);
            for (size_t k = 0; k < truth_map.count(); ++k) {
                const auto &sub = truth_map.subarray(k);
                if (sub.firstRow + sub.height > cfg.edgeSectionRows)
                    break;
                truth_heights.push_back(sub.height);
            }
        }
        const bool heights_ok = d.heights == truth_heights;
        const bool section_ok = d.sectionRows == cfg.edgeSectionRows;
        const bool coupled_ok =
            (distance.has_value() == cfg.coupledRowDistance.has_value()) &&
            (!distance || *distance == *cfg.coupledRowDistance);
        const bool remap_ok = scheme == cfg.rowRemap;
        const bool polarity_ok =
            (cfg.polarityPolicy == dram::CellPolarityPolicy::AllTrue)
                ? pol.allTrue
                : pol.mixed;
        const bool all_ok = heights_ok && section_ok && coupled_ok &&
                            remap_ok && polarity_ok && periodic &&
                            d.edgePairConfirmed && d.openBitline;

        t.addRow({id, compactHeights(d.heights),
                  "per " + Table::num(uint64_t(d.sectionRows)) + " rows",
                  distance ? Table::num(uint64_t(*distance)) + " rows"
                           : "N/A",
                  scheme == dram::RowRemapScheme::None ? "none"
                                                       : "Mfr.A 8-blk",
                  pol.mixed ? "true/anti interleaved" : "all true",
                  all_ok ? "yes" : "NO"});
    }
    t.print();
    benchutil::maybeWriteCsv(t, "table3_structure");
    std::printf("\nAll structures recovered through ACT/PRE/RD/WR "
                "command sequences only (RowCopy scans, AIB probes and "
                "retention tests); 'Matches truth' compares against the "
                "hidden device configuration.\n");
    return 0;
}
