/**
 * @file
 * SS VI-A/VI-B reproduction: coupled-row activation vs existing AIB
 * protections — split-activation counter evasion, the row-swapping
 * bypass, the victim-refresh nuance, and DRFM as the fix.
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "bender/host.h"
#include "core/protect/drfm.h"
#include "core/protect/rfm.h"
#include "core/protect/rowswap.h"
#include "core/protect/tracker.h"
#include "dram/chip.h"
#include "util/table.h"

using namespace dramscope;

namespace {

constexpr uint64_t kThreshold = 6000;

struct Scenario
{
    std::string name;
    uint64_t mitigations = 0;
    size_t flips = 0;
};

/** Victim rows around both halves of a coupled pair. */
std::vector<dram::RowAddr>
victimRows(dram::RowAddr aggr, uint32_t distance)
{
    const dram::RowAddr partner = aggr ^ distance;
    return {aggr - 1, aggr + 1, partner - 1, partner + 1};
}

size_t
countFlips(bender::Host &host, dram::RowAddr aggr, uint32_t distance)
{
    size_t flips = 0;
    for (const auto v : victimRows(aggr, distance)) {
        const BitVec row = host.readRowBits(0, v);
        flips += row.size() - row.popcount();
    }
    return flips;
}

void
armVictims(bender::Host &host, dram::RowAddr aggr, uint32_t distance)
{
    for (const auto v : victimRows(aggr, distance))
        host.writeRowPattern(0, v, ~0ULL);
    host.writeRowPattern(0, aggr, 0);
    host.writeRowPattern(0, aggr ^ distance, 0);
}

} // namespace

int
main()
{
    benchutil::header(
        "SS VI-A/VI-B: coupled-row activation vs AIB protections",
        "split activations bypass coupled-unaware trackers; MC-side "
        "row swapping is neutralized (only row A is relocated); "
        "victim-refresh stays incidentally safe; coupled-aware "
        "tracking and DRFM stop the attack");

    // Mfr. B x4 2019: a real coupled preset without internal remap.
    const dram::DeviceConfig cfg = dram::makePreset("B_x4_2019");
    const uint32_t distance = *cfg.coupledRowDistance;
    const uint32_t pairs = benchutil::scaled(8, 4);

    std::vector<Scenario> results;

    // --- Scenario 1: split attack vs coupled-unaware tracker. ---
    {
        dram::Chip chip(cfg);
        bender::Host host(chip);
        core::TrackerOptions topts;
        topts.threshold = kThreshold;
        core::ProtectedMemory mem(host, topts);
        Scenario s{"split attack vs unaware tracker"};
        for (uint32_t k = 0; k < pairs; ++k) {
            const dram::RowAddr aggr = 1000 + 8 * k;
            armVictims(host, aggr, distance);
            mem.hammer(0, aggr, kThreshold - 100);
            mem.hammer(0, aggr ^ distance, kThreshold - 100);
            s.flips += countFlips(host, aggr, distance);
        }
        s.mitigations = mem.tracker().mitigations();
        results.push_back(s);
    }

    // --- Scenario 2: same attack vs coupled-aware tracker. ---
    {
        dram::Chip chip(cfg);
        bender::Host host(chip);
        core::TrackerOptions topts;
        topts.threshold = kThreshold;
        topts.coupledAware = true;
        topts.coupledDistance = distance;
        core::ProtectedMemory mem(host, topts);
        Scenario s{"split attack vs coupled-aware tracker"};
        for (uint32_t k = 0; k < pairs; ++k) {
            const dram::RowAddr aggr = 1000 + 8 * k;
            armVictims(host, aggr, distance);
            mem.hammer(0, aggr, kThreshold - 100);
            mem.hammer(0, aggr ^ distance, kThreshold - 100);
            s.flips += countFlips(host, aggr, distance);
        }
        s.mitigations = mem.tracker().mitigations();
        results.push_back(s);
    }

    // --- Scenario 3: row-swap defense, coupled-unaware. ---
    {
        dram::Chip chip(cfg);
        bender::Host host(chip);
        core::RowSwapOptions ropts;
        ropts.threshold = kThreshold;
        ropts.spareBase = 40000;
        core::RowSwapDefense defense(host, ropts);
        Scenario s{"swap-then-hammer-partner vs row swap"};
        for (uint32_t k = 0; k < pairs; ++k) {
            const dram::RowAddr aggr = 1000 + 8 * k;
            armVictims(host, aggr, distance);
            defense.hammer(0, aggr, kThreshold);  // Triggers the swap.
            defense.hammer(0, aggr ^ distance, kThreshold);
            s.flips += countFlips(host, aggr, distance);
        }
        s.mitigations = defense.swaps();
        results.push_back(s);
    }

    // --- Scenario 4: row-swap defense, coupled-aware. ---
    {
        dram::Chip chip(cfg);
        bender::Host host(chip);
        core::RowSwapOptions ropts;
        ropts.threshold = kThreshold;
        ropts.spareBase = 40000;
        ropts.coupledAware = true;
        ropts.coupledDistance = distance;
        core::RowSwapDefense defense(host, ropts);
        Scenario s{"same attack vs coupled-aware row swap"};
        for (uint32_t k = 0; k < pairs; ++k) {
            const dram::RowAddr aggr = 1000 + 8 * k;
            armVictims(host, aggr, distance);
            defense.hammer(0, aggr, kThreshold);
            defense.hammer(0, aggr ^ distance, kThreshold);
            s.flips += countFlips(host, aggr, distance);
        }
        s.mitigations = defense.swaps();
        results.push_back(s);
    }

    // --- Scenario 5: straight attack vs victim refresh (nuance). ---
    {
        dram::Chip chip(cfg);
        bender::Host host(chip);
        core::TrackerOptions topts;
        topts.threshold = kThreshold;
        core::ProtectedMemory mem(host, topts);
        Scenario s{"straight attack vs victim refresh (unaware)"};
        for (uint32_t k = 0; k < pairs; ++k) {
            const dram::RowAddr aggr = 1000 + 8 * k;
            armVictims(host, aggr, distance);
            mem.hammer(0, aggr, 10 * kThreshold);
            s.flips += countFlips(host, aggr, distance);
        }
        s.mitigations = mem.tracker().mitigations();
        results.push_back(s);
    }

    // --- Scenario 6: split attack vs DRFM. ---
    {
        dram::Chip chip(cfg);
        bender::Host host(chip);
        core::DrfmOptions dopts;
        dopts.interval = kThreshold / 2;
        core::DrfmController drfm(chip, dopts);
        Scenario s{"split attack vs DRFM (in-DRAM adjacency)"};
        for (uint32_t k = 0; k < pairs; ++k) {
            const dram::RowAddr aggr = 1000 + 8 * k;
            armVictims(host, aggr, distance);
            for (const dram::RowAddr a : {aggr, aggr ^ distance}) {
                for (int chunk = 0; chunk < 4; ++chunk) {
                    host.hammer(0, a, (kThreshold - 100) / 4);
                    drfm.onActivate(a, (kThreshold - 100) / 4,
                                    host.now());
                }
            }
            s.flips += countFlips(host, aggr, distance);
        }
        s.mitigations = drfm.drfmCount();
        results.push_back(s);
    }

    // --- Scenario 7: split attack vs RFM (in-DRAM tracking). ---
    {
        dram::Chip chip(cfg);
        bender::Host host(chip);
        core::RfmEngine engine(chip, 0);
        core::RfmController mc(engine, kThreshold / 2);
        Scenario s{"split attack vs RFM + in-DRAM tracker"};
        for (uint32_t k = 0; k < pairs; ++k) {
            const dram::RowAddr aggr = 1000 + 8 * k;
            armVictims(host, aggr, distance);
            for (const dram::RowAddr a : {aggr, aggr ^ distance}) {
                for (int chunk = 0; chunk < 4; ++chunk) {
                    host.hammer(0, a, (kThreshold - 100) / 4);
                    mc.onActivate(a, (kThreshold - 100) / 4,
                                  host.now());
                }
            }
            s.flips += countFlips(host, aggr, distance);
        }
        s.mitigations = mc.rfmCount();
        results.push_back(s);
    }

    Table t({"Scenario", "Mitigations issued", "Victim bitflips",
             "Attack outcome"});
    for (const auto &s : results) {
        t.addRow({s.name, Table::num(s.mitigations),
                  Table::num(uint64_t(s.flips)),
                  s.flips > 0 ? "SUCCEEDS" : "defeated"});
    }
    t.print();
    benchutil::maybeWriteCsv(t, "protect_coupled");
    std::printf("\nCoupled-row activation (O3) defeats MC-side trackers "
                "and row swapping unless they know the pair relation; "
                "victim-refresh is incidentally safe because its "
                "refresh ACT is coupled too; DRFM mitigates in-DRAM "
                "with true adjacency (SS VI-B).\n");
    return 0;
}
