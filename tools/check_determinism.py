#!/usr/bin/env python3
"""Determinism hazard checks (CI ``static-analysis`` job).

The repo's headline reproducibility contract is *byte-identical
output*: serial == parallel sweeps, checkpoint-resume == fresh run,
and the same figures from every shard count.  Three source-level
hazard classes silently break that contract long after the code that
introduced them merged:

1. **Unordered-container iteration feeding ordered output.**
   Iterating a ``std::unordered_map``/``std::unordered_set`` (range-
   for, ``begin()`` handed to an ``<algorithm>``) produces values in
   hash-table order, which varies across standard libraries and
   (for pointer keys) across runs.  Anything derived from such an
   iteration — a picked min/max with ties, a serialized list, a
   merged counter — is only deterministic by accident.

2. **Wall-clock or libc RNG seeding.**  ``rand()``/``srand()``,
   ``std::random_device`` and ``time(...)``-derived seeds make a run
   unreproducible by construction; every RNG in the repo must derive
   from an explicit seed (util/rng.h streams).

3. **Floating-point accumulation in merge paths.**  ``double``
   accumulation is not associative: a ``+=`` reduction inside a
   shard-merge/combine/reduce function yields different bits when the
   merge order changes (e.g. under work stealing).  Integer
   accumulators or fixed merge order are the deterministic options.

Findings are heuristic, so an inline suppression records the reviewed
exceptions::

    std::min_element(counts_.begin(), counts_.end(),
                     cmp);  // determinism-ok: comparator total-orders ties

A ``// determinism-ok: <reason>`` comment on the finding line or the
line directly above suppresses it; the reason is mandatory (a bare
``determinism-ok`` still fails, so suppressions stay reviewable).

Usage: ``check_determinism.py [paths...]`` — default scans ``src/``.
Exits non-zero with one ``file:line: [class] message`` per finding.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

SOURCE_SUFFIXES = {".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx"}

SUPPRESS_RE = re.compile(r"//\s*determinism-ok:\s*\S")
BARE_SUPPRESS_RE = re.compile(r"//\s*determinism-ok\s*(:\s*)?$")

# Class 2: libc RNG / wall-clock seeding.
RNG_RE = re.compile(
    r"(?<![\w:])(?:std::)?(?:s?rand)\s*\("
    r"|std::random_device"
    r"|(?<![\w:])time\s*\(\s*(?:NULL|0|nullptr)\s*\)")

# Class 1: declarations introducing unordered containers, capturing
# the variable name:  std::unordered_map<K, V> name;  (members and
# locals; templates with nested <> handled by the lazy [^;=({]*).
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:multi)?(?:map|set)\s*<[^;={(]*>\s*(\w+)\s*[;={(]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;)]*:\s*(\w+)\s*\)")
# Algorithm calls span lines (clang-format breaks after the paren),
# so this one is matched against the whole joined file.
ITER_ALGO_RE = re.compile(
    r"\b(?:std::)?(min_element|max_element|accumulate|for_each|copy|"
    r"transform|partial_sum)\s*\(\s*(\w+)\s*\.c?begin\s*\(", re.S)

# Class 3: float accumulation inside merge/combine/reduce functions.
MERGE_FN_RE = re.compile(r"^\s*\w[\w:<>&*\s]*\b(\w*(?:[Mm]erge|"
                         r"[Cc]ombine|[Rr]educe)\w*)\s*\(")
FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\b[^;=(]*?\b(\w+)\s*[;={]")
ACCUM_RE = re.compile(r"\b(\w+)\s*\+=")


def strip_strings_and_comments(line: str) -> str:
    """Blanks string/char literals and // comments, preserving length
    (so regex positions keep meaning and commented code never fires).
    """
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            out.append(" " * (n - i))
            break
        if c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and line[i] != quote:
                out.append(" ")
                i += 2 if line[i] == "\\" else 1
            out.append(" ")
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)[:n]


def suppressed(lines: list, idx: int) -> bool:
    """True when line idx (0-based) carries or follows determinism-ok."""
    if SUPPRESS_RE.search(lines[idx]):
        return True
    return idx > 0 and SUPPRESS_RE.search(lines[idx - 1]) is not None


def check_bare_suppressions(path: Path, lines: list, findings: list):
    for idx, line in enumerate(lines):
        if BARE_SUPPRESS_RE.search(line.rstrip()):
            findings.append((path, idx + 1, "suppression",
                             "determinism-ok without a reason "
                             "(write `// determinism-ok: <why>`)"))


def check_rng(path: Path, lines: list, code: list, findings: list):
    for idx, stripped in enumerate(code):
        m = RNG_RE.search(stripped)
        if m and not suppressed(lines, idx):
            findings.append((path, idx + 1, "rng",
                             f"nondeterministic seed source "
                             f"'{m.group(0).strip()}' (derive from an "
                             f"explicit util/rng.h seed instead)"))


def check_unordered_iteration(path: Path, lines: list, code: list,
                              names: set, findings: list):
    # @p names is collected per component stem (foo.h + foo.cc):
    # members are declared in a header and iterated in the matching
    # .cc, so per-file collection would miss exactly the interesting
    # cases, while a global pool would false-positive on unrelated
    # files reusing a name (Table::rows_ is a vector; Bank::rows_ is
    # an unordered_map).  A same-stem ordered container can still
    # false-positive; that is what the suppression comment is for.
    for idx, stripped in enumerate(code):
        m = RANGE_FOR_RE.search(stripped)
        if m and m.group(1) in names and not suppressed(lines, idx):
            findings.append((path, idx + 1, "unordered-iteration",
                             f"range-for over unordered container "
                             f"'{m.group(1)}': hash order is not "
                             f"deterministic across standard "
                             f"libraries; use an ordered container or "
                             f"total-order the selection"))
    joined = "\n".join(code)
    for m in ITER_ALGO_RE.finditer(joined):
        if m.group(2) not in names:
            continue
        idx = joined.count("\n", 0, m.start())
        if suppressed(lines, idx):
            continue
        findings.append((path, idx + 1, "unordered-iteration",
                         f"{m.group(1)} over unordered container "
                         f"'{m.group(2)}': hash order is not "
                         f"deterministic across standard libraries; "
                         f"use an ordered container or total-order "
                         f"the selection"))


def merge_function_bodies(code: list):
    """Yields (name, start_idx, end_idx) for merge-named functions,
    by brace matching from the definition line."""
    idx = 0
    while idx < len(code):
        m = MERGE_FN_RE.match(code[idx])
        if not m:
            idx += 1
            continue
        depth = 0
        opened = False
        end = idx
        for j in range(idx, len(code)):
            for c in code[j]:
                if c == "{":
                    depth += 1
                    opened = True
                elif c == "}":
                    depth -= 1
            if opened and depth <= 0:
                end = j
                break
            if not opened and ";" in code[j]:
                end = j  # Declaration only, no body.
                break
        else:
            end = len(code) - 1
        if opened:
            yield m.group(1), idx, end
        idx = end + 1


def check_float_merge(path: Path, lines: list, code: list,
                      findings: list):
    float_names = set()
    for stripped in code:
        float_names.update(FLOAT_DECL_RE.findall(stripped))
    if not float_names:
        return
    for fn, start, end in merge_function_bodies(code):
        for idx in range(start, end + 1):
            for name in ACCUM_RE.findall(code[idx]):
                if name not in float_names or suppressed(lines, idx):
                    continue
                findings.append(
                    (path, idx + 1, "float-merge",
                     f"floating-point accumulation '{name} +=' inside "
                     f"merge path '{fn}': += on doubles is not "
                     f"associative, so merge order changes the bits"))


def scan(path: Path, names: set, findings: list) -> None:
    lines = path.read_text(encoding="utf-8").splitlines()
    code = [strip_strings_and_comments(l) for l in lines]
    check_bare_suppressions(path, lines, findings)
    check_rng(path, lines, code, findings)
    check_unordered_iteration(path, lines, code, names, findings)
    check_float_merge(path, lines, code, findings)


def collect_unordered_names(files: list) -> dict:
    names = {}
    for path in files:
        found = set()
        for line in path.read_text(encoding="utf-8").splitlines():
            found.update(
                UNORDERED_DECL_RE.findall(strip_strings_and_comments(line)))
        if found:
            names.setdefault(path.stem, set()).update(found)
    return names


def main(argv: list) -> int:
    roots = [Path(a) for a in argv[1:]] or [REPO / "src"]
    files = []
    for root in roots:
        root = root if root.is_absolute() else REPO / root
        if root.is_file():
            files.append(root)
        else:
            files.extend(p for p in sorted(root.rglob("*"))
                         if p.suffix in SOURCE_SUFFIXES)
    names = collect_unordered_names(files)
    findings = []
    for path in files:
        scan(path, names.get(path.stem, set()), findings)

    for path, lineno, cls, msg in findings:
        try:
            rel = path.relative_to(REPO)
        except ValueError:
            rel = path
        print(f"check_determinism: {rel}:{lineno}: [{cls}] {msg}",
              file=sys.stderr)
    if findings:
        print(f"check_determinism: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"check_determinism: {len(files)} file(s) clean (unordered "
          f"iteration, RNG seeding, float merge accumulation)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
