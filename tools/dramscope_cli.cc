/**
 * @file
 * Command-line driver for the DRAMScope toolkit.
 *
 * Subcommands:
 *   list                         preset registry (Table I population)
 *   inspect <preset>             configuration and subarray layout
 *   hammer  <preset> <row> <n>   single-sided RowHammer, flip report
 *   press   <preset> <row> <n>   RowPress attack, flip report
 *   rowcopy <preset> <src> <dst> RowCopy probe with classification
 *   retention <preset>           retention survival curve
 *   report  <preset>             full reverse-engineering pipeline
 *   stats   <preset> [row] [n]   command metrics of a hammer workload
 *   lint    <preset> [name]      static analysis of built-in programs
 *   certify <preset> [name]      static exposure/energy certification
 *                                of built-in programs, or of the mc
 *                                sweep grid with --grid
 *   sweep   <preset> [shards] [n]  resilient BER sweep (checkpoint/
 *                                resume, fault injection, retry)
 *   mc      <preset>             scheduled traffic through the
 *                                memory-controller layer (docs/MC.md)
 *   mcsweep <preset>             resilient policy x workload mc sweep
 *
 * `lint` runs the bender::lint static analyzer (no device execution)
 * over every built-in command program — or just `name` — and prints
 * a diagnostics table.  Exit status 1 when any program has an
 * unexpected (unannotated) violation; expected violations such as
 * RowCopy's ACT inside tRP show as notes.
 *
 * `hammer`, `press` and `rowcopy` accept a trailing `--trace=FILE`
 * flag that streams every issued command as one JSONL record
 * ({ns, cmd, bank, row, col}) to FILE.
 *
 * Every device-driving subcommand accepts `--device=BACKEND` to pick
 * what sits behind the command interface:
 *   --device=chip        one chip (default)
 *   --device=dimm        a registered DIMM rank (RCD inversion + DQ
 *                        twist applied inside the device)
 *   --device=hbm[:N]     channel N of an HBM stack (default 0)
 *
 * Every device-driving subcommand also accepts `--faults=SPEC`
 * (docs/RESILIENCE.md): the device is wrapped in a deterministic
 * dram::FaultyDevice, e.g. `--faults=flip:1e-6,die:cmd=50000`.
 *
 * `sweep` and `mcsweep` additionally accept `--jobs=N`, `--seed=S`,
 * `--retries=K`, `--timeout-ms=T`, `--checkpoint=FILE` and
 * `--resume`; see docs/RESILIENCE.md for the journal format and
 * resume semantics.
 *
 * `mc` accepts `--workload=streaming|chase|zipfian`,
 * `--policy=open|closed|timeout|cap`,
 * `--mitigation=none|graphene|rfm|drfm|rowswap`,
 * `--refresh-interval-ns=T`, `--reqs=N`, `--seed=S`,
 * `--trace=FILE` (replay a JSONL *address* trace instead of a
 * generator) and `--dump-trace=FILE` (record the generated stream);
 * `mcsweep` accepts `--reqs=N` and `--mitigation=<kind>|all` (a
 * mitigation axis on the grid).  See docs/MC.md.
 *
 * `certify` runs the whole-program effect analyzer
 * (bender::lint::certify) — proven per-row activation bound per
 * refresh window, per-command energy and rolling-window power —
 * without executing a single command.  It accepts `--threshold=N`
 * (exposure; default the device's weakest-cell threshold),
 * `--power-budget-mw=X` and `--power-window-ns=X` (defaults from the
 * device's EnergyParams), and `--grid` to certify every program the
 * mc scheduler emits for the workload x policy x mitigation grid
 * (`--mitigation=<kind>|all`, `--reqs=N`, `--seed=S` as in mcsweep).
 * Exit status 1 when any program fails certification.
 *
 * Exit codes: 0 success; 1 a run that executed but failed (lint
 * errors, metrics mismatch, quarantined shards, failed AIB
 * validation, refused resume); 2 usage errors (unknown subcommand,
 * flag, --device or --faults value, malformed numbers).
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bender/host.h"
#include "bender/lint.h"
#include "bender/trace.h"
#include "core/programs.h"
#include "core/sweep.h"
#include "core/re_adjacency.h"
#include "core/re_coupled.h"
#include "core/re_polarity.h"
#include "core/re_retention.h"
#include "core/re_subarray.h"
#include "dram/chip.h"
#include "dram/faulty_device.h"
#include "dram/hbm_stack.h"
#include "mapping/dimm.h"
#include "mc/mc.h"
#include "mc/sweep.h"
#include "mc/workload.h"
#include "util/metrics.h"
#include "util/table.h"

using namespace dramscope;

namespace {

/** Parsed command-line flags (see the usage text). */
struct Flags
{
    std::string trace;       //!< --trace=FILE (JSONL trace; for `mc`
                             //!< an *address* trace to replay, else a
                             //!< command trace to write).
    std::string device;      //!< --device=chip|dimm|hbm[:N].
    std::string faults;      //!< --faults=SPEC (fault injection).
    std::string fastpath;    //!< --fastpath=off|exact|analytic.
    std::string checkpoint;  //!< --checkpoint=FILE (shard journal).
    std::string workload;    //!< --workload=streaming|chase|zipfian.
    std::string policy;      //!< --policy=open|closed|timeout|cap.
    std::string mitigation;  //!< --mitigation=none|graphene|rfm|drfm|
                             //!< rowswap (mcsweep also accepts "all").
    std::string dumpTrace;   //!< --dump-trace=FILE (address trace out).
    bool resume = false;     //!< --resume (skip journaled shards).
    unsigned jobs = 0;       //!< --jobs=N (0 = DRAMSCOPE_JOBS / hw).
    uint64_t seed = 0x5eedULL;  //!< --seed=S (shard RNG base seed).
    uint32_t retries = 3;    //!< --retries=K (attempts per shard).
    uint64_t timeoutMs = 0;  //!< --timeout-ms=T (shard watchdog).
    uint64_t reqs = 1000;    //!< --reqs=N (mc requests).

    /** --refresh-interval-ns=T: whole ns; <0 = config tREFI, 0 = off. */
    int64_t refreshIntervalNs = -1;

    bool grid = false;        //!< --grid (certify the mc sweep grid).
    uint64_t threshold = 0;   //!< --threshold=N (0 = device default).
    double powerBudgetMw = 0.0;  //!< --power-budget-mw (<=0 = device).
    double powerWindowNs = 0.0;  //!< --power-window-ns (<=0 = device).
};

/**
 * Parses a strictly unsigned decimal argument; exits with a
 * diagnostic on anything else (a silent atoll(...)=0 would turn a
 * typo into a plausible-looking run).
 */
uint64_t
parseU64OrExit(const std::string &arg, const char *what)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(arg.c_str(), &end, 10);
    if (arg.empty() || *end != '\0' || arg[0] == '-' || errno != 0) {
        std::fprintf(stderr, "error: bad %s '%s' (expected an "
                             "unsigned integer)\n",
                     what, arg.c_str());
        std::exit(2);
    }
    return uint64_t(v);
}

/**
 * Parses a strictly positive decimal floating-point argument (same
 * diagnose-and-exit contract as parseU64OrExit).
 */
double
parseF64OrExit(const std::string &arg, const char *what)
{
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(arg.c_str(), &end);
    if (arg.empty() || *end != '\0' || errno != 0 || !(v > 0.0)) {
        std::fprintf(stderr, "error: bad %s '%s' (expected a "
                             "positive number)\n",
                     what, arg.c_str());
        std::exit(2);
    }
    return v;
}

/**
 * Parses a strictly signed decimal argument (same contract as
 * parseU64OrExit, with a leading '-' allowed).
 */
int64_t
parseI64OrExit(const std::string &arg, const char *what)
{
    char *end = nullptr;
    errno = 0;
    const long long v = std::strtoll(arg.c_str(), &end, 10);
    if (arg.empty() || *end != '\0' || errno != 0) {
        std::fprintf(stderr,
                     "error: bad %s '%s' (expected an integer)\n",
                     what, arg.c_str());
        std::exit(2);
    }
    return int64_t(v);
}

/**
 * Parses the --faults spec; exits with a diagnostic on a malformed
 * clause.  The empty string yields an empty (inject-nothing) spec.
 */
dram::FaultSpec
parseFaultsOrExit(const std::string &spec)
{
    std::string error;
    auto parsed = dram::FaultSpec::parse(spec, &error);
    if (!parsed) {
        std::fprintf(stderr, "error: bad --faults: %s\n",
                     error.c_str());
        std::exit(2);
    }
    return *parsed;
}

/**
 * The device behind the command interface, owned by the subcommand:
 * built from a preset configuration, a `--device=` spec and an
 * optional `--faults=` wrap.
 */
struct DeviceUnderTest
{
    std::unique_ptr<dram::Chip> chip;
    std::unique_ptr<mapping::Dimm> dimm;
    std::unique_ptr<dram::HbmStack> hbm;
    std::unique_ptr<dram::FaultyDevice> faulty;
    dram::Device *dev = nullptr;
};

/**
 * Builds the backend selected by @p spec ("chip", "dimm",
 * "hbm[:channel]") for @p cfg, wrapped in a FaultyDevice when
 * @p faults injects anything.  Exits with a diagnostic on an unknown
 * spec or an out-of-range HBM channel.
 */
DeviceUnderTest
makeDevice(const dram::DeviceConfig &cfg, const std::string &spec,
           const dram::FaultSpec &faults = {})
{
    DeviceUnderTest d;
    if (spec.empty() || spec == "chip") {
        d.chip = std::make_unique<dram::Chip>(cfg);
        d.dev = d.chip.get();
    } else if (spec == "dimm") {
        d.dimm = std::make_unique<mapping::Dimm>(cfg);
        d.dev = d.dimm.get();
    } else if (spec.rfind("hbm", 0) == 0) {
        uint32_t channel = 0;
        if (spec.size() > 3) {
            if (spec[3] != ':') {
                std::fprintf(stderr, "error: bad --device spec '%s'\n",
                             spec.c_str());
                std::exit(2);
            }
            channel =
                uint32_t(parseU64OrExit(spec.substr(4), "HBM channel"));
        }
        d.hbm = std::make_unique<dram::HbmStack>(cfg);
        if (channel >= d.hbm->channelCount()) {
            std::fprintf(stderr,
                         "error: HBM channel %u out of range (0..%u)\n",
                         channel, d.hbm->channelCount() - 1);
            std::exit(2);
        }
        d.dev = &d.hbm->channel(channel);
    } else {
        std::fprintf(stderr,
                     "error: unknown --device '%s' (chip|dimm|hbm[:N])\n",
                     spec.c_str());
        std::exit(2);
    }
    if (!faults.empty()) {
        d.faulty = std::make_unique<dram::FaultyDevice>(*d.dev, faults);
        d.dev = d.faulty.get();
    }
    return d;
}

/**
 * Applies the --fastpath flag (when given) to a freshly built host;
 * exits with a diagnostic on an unknown mode keyword.  Without the
 * flag the host keeps the DRAMSCOPE_FASTPATH environment selection.
 */
void
applyFastPath(bender::Host &host, const Flags &flags)
{
    if (flags.fastpath.empty())
        return;
    const auto mode = dram::fastPathModeFromString(flags.fastpath);
    if (!mode) {
        std::fprintf(stderr,
                     "error: unknown --fastpath '%s' "
                     "(off|exact|analytic)\n",
                     flags.fastpath.c_str());
        std::exit(2);
    }
    host.setFastPathMode(*mode);
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: dramscope_cli <command> [args]\n"
        "  list                          preset registry\n"
        "  inspect <preset>              configuration summary\n"
        "  hammer <preset> <row> <n>     RowHammer attack report\n"
        "  press <preset> <row> <n>      RowPress attack report\n"
        "  rowcopy <preset> <src> <dst>  RowCopy probe\n"
        "  retention <preset>            retention survival curve\n"
        "  report <preset>               reverse-engineering pipeline\n"
        "  stats <preset> [row] [n]      command metrics of a hammer "
        "workload\n"
        "  lint <preset> [name]          static analysis of built-in "
        "programs\n"
        "  certify <preset> [name]       static exposure/energy "
        "certification (no execution)\n"
        "  sweep <preset> [shards] [n]   resilient BER sweep\n"
        "  mc <preset>                   scheduled traffic through the "
        "memory controller\n"
        "  mcsweep <preset>              resilient policy x workload "
        "mc sweep\n"
        "hammer/press/rowcopy accept --trace=FILE (JSONL command "
        "trace)\n"
        "device commands (hammer, press, rowcopy, retention, report, "
        "stats, sweep, mc, mcsweep) accept:\n"
        "  --device=chip|dimm|hbm[:channel]   backend (default chip; "
        "sweep/mcsweep: chip|dimm)\n"
        "  --faults=SPEC                      fault injection (see "
        "docs/RESILIENCE.md)\n"
        "  --fastpath=off|exact|analytic      loop engine (default "
        "from DRAMSCOPE_FASTPATH, else exact)\n"
        "sweep/mcsweep accept --jobs=N --seed=S --retries=K "
        "--timeout-ms=T --checkpoint=FILE --resume\n"
        "mc accepts --workload=streaming|chase|zipfian "
        "--policy=open|closed|timeout|cap --reqs=N --seed=S\n"
        "  --mitigation=none|graphene|rfm|drfm|rowswap "
        "--refresh-interval-ns=T (<0 config tREFI, 0 off)\n"
        "  --trace=FILE (replay a JSONL address trace) "
        "--dump-trace=FILE (record the stream); mcsweep accepts "
        "--reqs=N\n"
        "  and --mitigation=<kind>|all (adds a mitigation axis to the "
        "grid)\n"
        "certify accepts --threshold=N --power-budget-mw=X "
        "--power-window-ns=X (defaults from the device), and --grid\n"
        "  to certify the mc workload x policy x mitigation grid "
        "(--mitigation=<kind>|all, --reqs=N, --seed=S)\n"
        "see docs/MC.md for the policy and mitigation tables, "
        "docs/LINT_RULES.md for the rule registry\n");
    return 2;
}

/**
 * Opens a JSONL trace sink and attaches it to @p host when
 * @p trace_path is non-empty.  Returns nullptr (and leaves the host
 * untraced) when tracing is off; exits on an unopenable path.
 */
std::unique_ptr<obs::JsonlWriter>
maybeAttachTrace(bender::Host &host, const std::string &trace_path)
{
    if (trace_path.empty())
        return nullptr;
    auto writer = std::make_unique<obs::JsonlWriter>(trace_path);
    if (!writer->ok()) {
        std::fprintf(stderr, "error: cannot open trace file %s\n",
                     trace_path.c_str());
        std::exit(1);
    }
    host.setTrace(writer.get());
    return writer;
}

int
cmdList()
{
    Table t({"Preset", "Vendor", "Type", "Width", "Year", "Chips"});
    for (const auto &info : dram::presetTable()) {
        const auto cfg = dram::makePreset(info.id);
        t.addRow({info.id, dram::toString(cfg.vendor),
                  dram::toString(cfg.type), dram::toString(cfg.width),
                  cfg.year ? Table::num(int64_t(cfg.year)) : "N/A",
                  Table::num(int64_t(info.chipCount))});
    }
    t.print();
    return 0;
}

int
cmdInspect(const std::string &preset)
{
    const auto cfg = dram::makePreset(preset);
    std::printf("%s: %s %s %s (%d)\n", cfg.name.c_str(),
                dram::toString(cfg.vendor), dram::toString(cfg.type),
                dram::toString(cfg.width), cfg.year);
    std::printf("rows/bank %u, row bits %u, RD_data %u bits, "
                "columns %u\n",
                cfg.rowsPerBank, cfg.rowBits, cfg.rdDataBits,
                cfg.columnsPerRow());
    std::printf("MAT width %u (%u MATs per row), swizzle perm {",
                cfg.matWidth, cfg.matsPerRow());
    for (size_t k = 0; k < cfg.swizzlePerm.size(); ++k)
        std::printf("%s%u", k ? "," : "", cfg.swizzlePerm[k]);
    std::printf("}\n");
    std::printf("subarray pattern:");
    for (const auto &e : cfg.subarrayPattern)
        std::printf(" %ux%u", e.count, e.height);
    std::printf(" (repeats every %u rows)\n", cfg.patternRows());
    std::printf("edge sections every %u rows; coupled distance %s\n",
                cfg.edgeSectionRows,
                cfg.coupledRowDistance
                    ? Table::num(uint64_t(*cfg.coupledRowDistance))
                          .c_str()
                    : "none");
    std::printf("remap %s, polarity %s, temperature %.0fC\n",
                cfg.rowRemap == dram::RowRemapScheme::None
                    ? "none"
                    : "Mfr.A 8-blk",
                cfg.polarityPolicy == dram::CellPolarityPolicy::AllTrue
                    ? "all true-cells"
                    : "true/anti interleaved",
                cfg.temperatureC);
    return 0;
}

int
cmdAttack(const std::string &preset, dram::RowAddr aggr, uint64_t count,
          bool press, const Flags &flags)
{
    const auto cfg = dram::makePreset(preset);
    auto dut = makeDevice(cfg, flags.device,
                          parseFaultsOrExit(flags.faults));
    bender::Host host(*dut.dev);
    applyFastPath(host, flags);
    const auto trace = maybeAttachTrace(host, flags.trace);

    // Probe a wide window: internal remapping can place the physical
    // neighbours several logical rows away (common pitfall 2).
    for (int d = -4; d <= 4; ++d) {
        if (d != 0)
            host.writeRowPattern(0, dram::RowAddr(int64_t(aggr) + d),
                                 ~0ULL);
    }
    host.writeRowPattern(0, aggr, 0);
    if (press)
        host.press(0, aggr, count);
    else
        host.hammer(0, aggr, count);

    Table t({"Row", "Bitflips", "BER"});
    for (int d = -4; d <= 4; ++d) {
        if (d == 0)
            continue;
        const auto row = dram::RowAddr(int64_t(aggr) + d);
        const BitVec bits = host.readRowBits(0, row);
        const size_t flips = bits.size() - bits.popcount();
        t.addRow({Table::num(uint64_t(row)), Table::num(uint64_t(flips)),
                  Table::num(double(flips) / double(bits.size()), 3)});
    }
    t.print();
    std::printf("(%s, %llu activations, single-sided; victims held "
                "all-ones)\n",
                press ? "RowPress" : "RowHammer",
                (unsigned long long)count);
    if (trace) {
        std::printf("trace: %llu commands -> %s\n",
                    (unsigned long long)trace->written(),
                    flags.trace.c_str());
    }
    return trace && trace->failed() ? 1 : 0;
}

int
cmdRowCopy(const std::string &preset, dram::RowAddr src,
           dram::RowAddr dst, const Flags &flags)
{
    const auto cfg = dram::makePreset(preset);
    auto dut = makeDevice(cfg, flags.device,
                          parseFaultsOrExit(flags.faults));
    bender::Host host(*dut.dev);
    applyFastPath(host, flags);
    const auto trace = maybeAttachTrace(host, flags.trace);
    core::SubarrayMapper mapper(host);
    bool inverted = false;
    const auto outcome = mapper.probeCopy(src, dst, &inverted);
    const char *label = outcome == core::CopyOutcome::Full   ? "FULL"
                        : outcome == core::CopyOutcome::Half ? "HALF"
                                                             : "NONE";
    std::printf("RowCopy %u -> %u: %s copy%s\n", src, dst, label,
                outcome != core::CopyOutcome::None
                    ? (inverted ? " (data inverted)" : " (data as-is)")
                    : "");
    if (trace) {
        std::printf("trace: %llu commands -> %s\n",
                    (unsigned long long)trace->written(),
                    flags.trace.c_str());
    }
    return trace && trace->failed() ? 1 : 0;
}

int
cmdStats(const std::string &preset, dram::RowAddr aggr, uint64_t count,
         const Flags &flags)
{
    const auto cfg = dram::makePreset(preset);
    auto dut = makeDevice(cfg, flags.device,
                          parseFaultsOrExit(flags.faults));
    bender::Host host(*dut.dev);
    applyFastPath(host, flags);
    obs::MetricsRegistry metrics;
    host.setMetrics(&metrics);

    // A representative workload: prepare a victim/aggressor pair,
    // hammer, read the victim back.
    host.writeRowPattern(0, aggr + 1, ~0ULL);
    host.writeRowPattern(0, aggr, 0);
    const auto before = metrics.snapshot();
    const auto res = host.hammer(0, aggr, count);
    const auto after = metrics.snapshot();
    host.readRow(0, aggr + 1);

    const auto snap = metrics.snapshot();
    Table t({"Metric", "Value"});
    for (const auto &[name, value] : snap.counters)
        t.addRow({name, Table::num(value)});
    for (const auto &[name, hist] : snap.histograms) {
        t.addRow({name + " (samples)", Table::num(hist.total)});
    }
    t.print();

    // The counter deltas across the hammer must equal the commands
    // the executor reports — the cross-check the trace/metrics layer
    // is built to make possible.
    uint64_t delta = 0;
    for (const auto *key :
         {"cmd.act", "cmd.pre", "cmd.rd", "cmd.wr", "cmd.ref"}) {
        delta += after.counterOr0(key) - before.counterOr0(key);
    }
    std::printf("%s\n", snap.commandSummary().c_str());
    std::printf("hammer ACT delta %llu, commandsIssued %llu: %s\n",
                (unsigned long long)(after.counterOr0("cmd.act") -
                                     before.counterOr0("cmd.act")),
                (unsigned long long)res.commandsIssued,
                delta == res.commandsIssued ? "consistent"
                                            : "MISMATCH");
    return delta == res.commandsIssued ? 0 : 1;
}

int
cmdLint(const std::string &preset, const std::string &name)
{
    const auto cfg = dram::makePreset(preset);
    std::vector<core::NamedProgram> programs;
    if (name.empty())
        programs = core::builtinPrograms(cfg);
    else
        programs.push_back(core::builtinProgram(cfg, name));

    Table t({"Program", "Slot", "Rule", "Severity", "Message"});
    size_t unexpected_errors = 0;
    size_t clean = 0;
    for (const auto &entry : programs) {
        const auto report = bender::lint::lint(entry.prog, cfg);
        if (report.diags.empty())
            ++clean;
        for (const auto &d : report.diags) {
            t.addRow({entry.name, Table::num(uint64_t(d.slot)),
                      bender::lint::ruleId(d.rule),
                      std::string(bender::lint::toString(d.severity)) +
                          (d.expected ? " (expected)" : ""),
                      d.message});
            if (d.severity == bender::lint::Severity::Error)
                ++unexpected_errors;
        }
    }
    t.print();
    std::printf("%zu program(s): %zu with no diagnostics, %zu "
                "unexpected error(s)\n",
                programs.size(), clean, unexpected_errors);
    return unexpected_errors == 0 ? 0 : 1;
}

/**
 * Static exposure & energy certification: the whole-program effect
 * analyzer over the catalog (or one program by name), or — with
 * --grid — over every program the mc scheduler emits for the
 * workload x policy x mitigation grid, via the buildSweepCellSchedule
 * export path.  Nothing executes on a device.
 */
int
cmdCertify(const std::string &preset, const std::string &name,
           const Flags &flags)
{
    const auto cfg = dram::makePreset(preset);
    bender::lint::CertifyOptions copts;
    copts.exposureThreshold = flags.threshold;
    copts.powerBudgetMw = flags.powerBudgetMw;
    copts.powerWindowNs = flags.powerWindowNs;

    std::vector<core::NamedProgram> units;
    if (flags.grid) {
        // The same mitigation-axis parse as mcsweep, but defaulting
        // to the full registry: the point of pre-flight is covering
        // everything a later sweep could run.
        std::vector<core::MitigationKind> mitigations;
        if (flags.mitigation.empty() || flags.mitigation == "all") {
            for (const auto &info : core::mitigationTable())
                mitigations.push_back(info.kind);
        } else {
            const auto kind =
                core::mitigationFromString(flags.mitigation);
            if (!kind) {
                std::fprintf(
                    stderr,
                    "error: unknown --mitigation '%s' for certify "
                    "(none|graphene|rfm|drfm|rowswap|all)\n",
                    flags.mitigation.c_str());
                return 2;
            }
            mitigations = {*kind};
        }
        mc::McSweepOptions mopt;
        mopt.requests = flags.reqs;
        mopt.seed = flags.seed;
        const auto plan = mc::sweepPlan(mitigations);
        for (uint32_t shard = 0; shard < plan.size(); ++shard) {
            const auto &cell = plan[shard];
            auto result =
                mc::buildSweepCellSchedule(cell, shard, cfg, mopt);
            units.push_back(
                {std::string(mc::workloadId(cell.workload)) + "/" +
                     mc::policyId(cell.policy) + "/" +
                     core::mitigationId(cell.mitigation),
                 "mc", std::move(result.program)});
        }
    } else if (name.empty()) {
        units = core::builtinPrograms(cfg);
    } else {
        units.push_back(core::builtinProgram(cfg, name));
    }

    Table t({"Program", "Bound", "Hot bank/row", "Exact", "Energy (pJ)",
             "Avg mW", "Peak mW", "Status"});
    size_t failed = 0;
    std::vector<std::string> errors;
    for (const auto &u : units) {
        const auto cert = bender::lint::certify(u.prog, cfg, copts);
        if (!cert.certified())
            ++failed;
        t.addRow({u.name, Table::num(cert.maxRowActs),
                  Table::num(uint64_t(cert.hottestBank)) + "/" +
                      Table::num(uint64_t(cert.hottestRow)),
                  cert.exact ? "yes" : "upper",
                  Table::num(cert.totalEnergyPj(), 1),
                  Table::num(cert.avgPowerMw, 2),
                  Table::num(cert.peakWindowPowerMw, 2),
                  cert.certified() ? "certified" : "FAILED"});
        for (const auto &d : cert.report.diags) {
            if (d.severity == bender::lint::Severity::Error) {
                errors.push_back(u.name + ": " +
                                 bender::lint::ruleId(d.rule) + ": " +
                                 d.message);
            }
        }
    }
    t.print();
    for (const auto &e : errors)
        std::printf("error %s\n", e.c_str());
    std::printf("%zu program(s): %zu certified, %zu failed "
                "(threshold %llu ACTs, budget %.2f mW over %.0f ns)\n",
                units.size(), units.size() - failed, failed,
                (unsigned long long)(flags.threshold
                                         ? flags.threshold
                                         : uint64_t(cfg.disturb
                                                        .thresholdMin)),
                flags.powerBudgetMw > 0.0 ? flags.powerBudgetMw
                                          : cfg.energy.maxAvgPowerMw,
                flags.powerWindowNs > 0.0 ? flags.powerWindowNs
                                          : cfg.energy.powerWindowNs);
    return failed == 0 ? 0 : 1;
}

int
cmdRetention(const std::string &preset, const Flags &flags)
{
    const auto cfg = dram::makePreset(preset);
    auto dut = makeDevice(cfg, flags.device,
                          parseFaultsOrExit(flags.faults));
    bender::Host host(*dut.dev);
    applyFastPath(host, flags);
    core::RetentionProfiler profiler(host);
    const auto profile = profiler.profile();
    Table t({"Wait (ms)", "Decayed", "Tested", "Fraction"});
    for (const auto &p : profile.curve) {
        t.addRow({Table::num(p.waitMs, 5), Table::num(p.decayed),
                  Table::num(p.tested), Table::num(p.fraction(), 3)});
    }
    t.print();
    std::printf("median retention: %.0f ms; weak cells (<= %0.0f ms): "
                "%zu\n",
                profile.medianMs, 500.0, profile.weakCells.size());
    return 0;
}

int
cmdReport(const std::string &preset, const Flags &flags)
{
    const auto cfg = dram::makePreset(preset);
    auto dut = makeDevice(cfg, flags.device,
                          parseFaultsOrExit(flags.faults));
    bender::Host host(*dut.dev);
    applyFastPath(host, flags);

    std::printf("reverse-engineering %s ...\n", preset.c_str());
    core::AdjacencyMapper adjacency(host);
    const auto scheme = adjacency.detectRemapScheme(1024);
    std::printf("  remap: %s\n",
                scheme == dram::RowRemapScheme::None ? "none"
                                                     : "Mfr.A 8-blk");

    core::SubarrayOptions sopts;
    sopts.rowRemap = scheme;
    core::SubarrayMapper subarrays(host, sopts);
    const auto d = subarrays.discoverFirstSection();
    std::printf("  heights:");
    for (const auto h : d.heights)
        std::printf(" %u", h);
    std::printf("\n  edge section: %u rows; edge pair: %s; copies "
                "%sinverted\n",
                d.sectionRows, d.edgePairConfirmed ? "yes" : "no",
                d.copyInvertsData ? "" : "NOT ");
    const bool aib_ok = subarrays.aibCrossCheckBoundary(d.heights.at(0));
    std::printf("  AIB validation of first boundary: %s\n",
                aib_ok ? "confirmed" : "FAILED");

    core::CoupledOptions copts;
    copts.probeRow = 1200;
    core::CoupledRowDetector coupled(host, copts);
    const auto distance = coupled.detect();
    std::printf("  coupled distance: %s\n",
                distance ? Table::num(uint64_t(*distance)).c_str()
                         : "none");

    core::CellTypeClassifier polarity(host);
    const auto pol =
        polarity.classify({d.heights.at(0) / 2,
                           d.heights.at(0) + d.heights.at(1) / 2});
    std::printf("  polarity: %s\n",
                pol.mixed ? "true/anti interleaved" : "all true");
    // A failed AIB cross-check means the discovered layout is wrong —
    // scripted pipelines must see that as a failure, not exit 0.
    return aib_ok ? 0 : 1;
}

/**
 * Resilient BER sweep: every shard hammers one aggressor row and
 * reports the victim bit-flip count as its payload.  Exercises the
 * full robustness stack — per-shard retry/quarantine, watchdog,
 * checkpoint/resume and fault injection — and prints greppable
 * `result ...` lines (one per shard, shard order) so CI can diff an
 * interrupted-then-resumed run against an uninterrupted one.
 */
int
cmdSweep(const std::string &preset, uint64_t shards, uint64_t hammers,
         const Flags &flags)
{
    const auto cfg = dram::makePreset(preset);
    const auto faults = parseFaultsOrExit(flags.faults);
    if (!flags.device.empty() && flags.device != "chip" &&
        flags.device != "dimm") {
        // HBM channels are borrowed from a stack, which does not fit
        // the sweep's owning replica factory.
        std::fprintf(stderr,
                     "error: sweep supports --device=chip|dimm only\n");
        return 2;
    }
    // Shard s uses aggressor row 64 + 8*s; keep the probed window
    // inside the bank.
    const uint64_t top_row = 64 + 8 * (shards ? shards - 1 : 0) + 1;
    if (shards == 0 || top_row >= cfg.rowsPerBank) {
        std::fprintf(stderr,
                     "error: shard count %llu out of range for %s "
                     "(1..%u)\n",
                     (unsigned long long)shards, preset.c_str(),
                     (cfg.rowsPerBank - 66) / 8 + 1);
        return 2;
    }

    auto dut = makeDevice(cfg, flags.device, faults);
    bender::Host host(*dut.dev);
    applyFastPath(host, flags);
    obs::MetricsRegistry metrics;
    host.setMetrics(&metrics);

    core::SweepOptions sopts;
    sopts.jobs = flags.jobs;
    sopts.seed = flags.seed;
    const bool dimm = flags.device == "dimm";
    sopts.deviceFactory = [&faults, dimm](const dram::DeviceConfig &c)
        -> std::unique_ptr<dram::Device> {
        std::unique_ptr<dram::Device> dev;
        if (dimm)
            dev = std::make_unique<mapping::Dimm>(c);
        else
            dev = std::make_unique<dram::Chip>(c);
        if (!faults.empty())
            dev = std::make_unique<dram::FaultyDevice>(std::move(dev),
                                                       faults);
        return dev;
    };
    core::SweepRunner runner(host, sopts);

    core::ResilienceOptions ropts;
    ropts.retry.maxAttempts = flags.retries ? flags.retries : 1;
    ropts.shardTimeoutMs = flags.timeoutMs;
    ropts.checkpointPath = flags.checkpoint;
    ropts.resume = flags.resume;
    ropts.tag = preset + "/" + flags.device + "/h" +
                std::to_string(hammers) + "/" + faults.toString();

    const auto unit = [hammers](core::ShardContext &ctx) {
        auto &host = ctx.host;
        const auto aggr = dram::RowAddr(64 + 8 * ctx.shard);
        host.writeRowPattern(0, aggr - 1, ~0ULL);
        host.writeRowPattern(0, aggr + 1, ~0ULL);
        host.writeRowPattern(0, aggr, 0);
        host.hammer(0, aggr, hammers);
        uint64_t flips = 0;
        for (const auto victim : {aggr - 1, aggr + 1}) {
            const BitVec bits = host.readRowBits(0, victim);
            flips += bits.size() - bits.popcount();
        }
        char buf[64];
        std::snprintf(buf, sizeof(buf), "shard=%llu row=%u flips=%llu",
                      (unsigned long long)ctx.shard, unsigned(aggr),
                      (unsigned long long)flips);
        return std::string(buf);
    };

    core::SweepReport report;
    try {
        report = runner.runResilient(uint32_t(shards), unit, ropts);
    } catch (const core::ResumeError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    for (const auto &rec : report.shards) {
        if (rec.status == core::ShardStatus::Quarantined) {
            std::printf("result shard=%llu status=%s attempts=%u "
                        "error=\"%s\"\n",
                        (unsigned long long)rec.shard,
                        core::toString(rec.status), rec.attempts,
                        rec.error.c_str());
        } else {
            std::printf("result %s status=%s attempts=%u\n",
                        rec.payload.c_str(), core::toString(rec.status),
                        rec.attempts);
        }
    }
    std::printf("sweep %llu shards: %llu executed, %llu resumed, "
                "%llu retried, %llu quarantined, %llu timeout\n",
                (unsigned long long)report.shards.size(),
                (unsigned long long)report.executed,
                (unsigned long long)report.resumed,
                (unsigned long long)report.retries,
                (unsigned long long)report.quarantined,
                (unsigned long long)report.timeouts);
    const auto snap = metrics.snapshot();
    for (const auto &[name, value] : snap.counters) {
        if (name.rfind("faults.", 0) == 0 ||
            name.rfind("sweep.", 0) == 0)
            std::printf("metric %s %llu\n", name.c_str(),
                        (unsigned long long)value);
    }
    return report.complete() ? 0 : 1;
}

/**
 * Scheduled traffic through the memory-controller layer: generate (or
 * replay) a request stream, schedule it FR-FCFS under the selected
 * open-row policy, lint the emitted program, execute it on the
 * selected backend and print the row-buffer/exposure statistics.
 * Output is deterministic for fixed flags (CI diffs two runs).
 */
int
cmdMc(const std::string &preset, const Flags &flags)
{
    const auto cfg = dram::makePreset(preset);

    const std::string wl_id =
        flags.workload.empty() ? "zipfian" : flags.workload;
    const auto workload = mc::workloadFromString(wl_id);
    if (!workload) {
        std::fprintf(stderr,
                     "error: unknown --workload '%s' "
                     "(streaming|chase|zipfian)\n",
                     wl_id.c_str());
        return 2;
    }
    const std::string pol_id =
        flags.policy.empty() ? "open" : flags.policy;
    const auto policy = mc::policyFromString(pol_id);
    if (!policy) {
        std::fprintf(stderr,
                     "error: unknown --policy '%s' "
                     "(open|closed|timeout|cap)\n",
                     pol_id.c_str());
        return 2;
    }
    const std::string mit_id =
        flags.mitigation.empty() ? "none" : flags.mitigation;
    const auto mitigation = core::mitigationFromString(mit_id);
    if (!mitigation) {
        std::fprintf(stderr,
                     "error: unknown --mitigation '%s' for mc "
                     "(none|graphene|rfm|drfm|rowswap)\n",
                     mit_id.c_str());
        return 2;
    }

    std::vector<mc::Request> reqs;
    try {
        if (!flags.trace.empty()) {
            reqs = mc::readTrace(flags.trace);
        } else {
            mc::WorkloadOptions wopt;
            wopt.requests = flags.reqs;
            wopt.seed = flags.seed;
            reqs = mc::makeWorkload(*workload, cfg, wopt);
        }
        if (!flags.dumpTrace.empty())
            mc::writeTrace(flags.dumpTrace, reqs);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    mc::SchedulerOptions sopt;
    sopt.policy = *policy;
    sopt.mitigation = *mitigation;
    sopt.refreshIntervalNs = flags.refreshIntervalNs;
    const auto result = mc::schedule(reqs, cfg, sopt);

    const auto lint_report = bender::lint::lint(result.program, cfg);
    size_t unexpected = 0;
    for (const auto &d : lint_report.diags) {
        if (!d.expected) {
            ++unexpected;
            std::fprintf(stderr, "lint: %s\n", d.message.c_str());
        }
    }

    auto dut = makeDevice(cfg, flags.device,
                          parseFaultsOrExit(flags.faults));
    bender::Host host(*dut.dev);
    applyFastPath(host, flags);
    try {
        host.run(result.program);
    } catch (const std::exception &e) {
        std::printf("mc run aborted by the device: %s\n", e.what());
        return 1;
    }

    const auto &st = result.stats;
    // The mitigation field appears only when one is active, so
    // `--mitigation=none` output stays byte-identical to the
    // pre-mitigation CLI.
    std::string mit_field;
    if (*mitigation != core::MitigationKind::None)
        mit_field =
            std::string("mitigation=") + core::mitigationId(*mitigation) +
            " ";
    std::printf("mc %s workload=%s policy=%s %s%s\n", preset.c_str(),
                flags.trace.empty() ? mc::workloadId(*workload)
                                    : "trace",
                mc::policyId(*policy), mit_field.c_str(),
                st.summary().c_str());
    Table t({"Bank", "ACTs", "Hits", "Misses", "Conflicts"});
    for (size_t b = 0; b < st.bankActs.size(); ++b) {
        t.addRow({Table::num(uint64_t(b)), Table::num(st.bankActs[b]),
                  Table::num(st.bankHits[b]),
                  Table::num(st.bankMisses[b]),
                  Table::num(st.bankConflicts[b])});
    }
    t.print();
    std::printf("lint: %s; device violations: %llu\n",
                unexpected == 0 ? "clean"
                                : "UNEXPECTED DIAGNOSTICS",
                (unsigned long long)dut.dev->violationCount());
    if (!flags.dumpTrace.empty()) {
        std::printf("trace: %zu requests -> %s\n", reqs.size(),
                    flags.dumpTrace.c_str());
    }
    return unexpected == 0 ? 0 : 1;
}

/**
 * Resilient policy x workload sweep over the mc layer: one shard per
 * (workload, policy) cell, driven through SweepRunner::runResilient
 * so retry/quarantine, the watchdog, checkpoint/resume and fault
 * injection all apply.  Prints greppable `result ...` lines in shard
 * order, bit-identical for any --jobs.
 */
int
cmdMcSweep(const std::string &preset, const Flags &flags)
{
    const auto cfg = dram::makePreset(preset);
    const auto faults = parseFaultsOrExit(flags.faults);

    // The mitigation axis: one workload x policy block per kind.
    // "all" sweeps the full registry (None first, so the leading
    // block stays byte-identical to the unmitigated sweep).
    std::vector<core::MitigationKind> mitigations = {
        core::MitigationKind::None};
    if (flags.mitigation == "all") {
        mitigations.clear();
        for (const auto &info : core::mitigationTable())
            mitigations.push_back(info.kind);
    } else if (!flags.mitigation.empty()) {
        const auto kind = core::mitigationFromString(flags.mitigation);
        if (!kind) {
            std::fprintf(stderr,
                         "error: unknown --mitigation '%s' for mcsweep "
                         "(none|graphene|rfm|drfm|rowswap|all)\n",
                         flags.mitigation.c_str());
            return 2;
        }
        mitigations = {*kind};
    }

    if (!flags.device.empty() && flags.device != "chip" &&
        flags.device != "dimm") {
        // HBM channels are borrowed from a stack, which does not fit
        // the sweep's owning replica factory.
        std::fprintf(stderr,
                     "error: mcsweep supports --device=chip|dimm "
                     "only\n");
        return 2;
    }

    auto dut = makeDevice(cfg, flags.device, faults);
    bender::Host host(*dut.dev);
    applyFastPath(host, flags);
    obs::MetricsRegistry metrics;
    host.setMetrics(&metrics);

    core::SweepOptions sopts;
    sopts.jobs = flags.jobs;
    sopts.seed = flags.seed;
    const bool dimm = flags.device == "dimm";
    sopts.deviceFactory = [&faults, dimm](const dram::DeviceConfig &c)
        -> std::unique_ptr<dram::Device> {
        std::unique_ptr<dram::Device> dev;
        if (dimm)
            dev = std::make_unique<mapping::Dimm>(c);
        else
            dev = std::make_unique<dram::Chip>(c);
        if (!faults.empty())
            dev = std::make_unique<dram::FaultyDevice>(std::move(dev),
                                                       faults);
        return dev;
    };
    core::SweepRunner runner(host, sopts);

    core::ResilienceOptions ropts;
    ropts.retry.maxAttempts = flags.retries ? flags.retries : 1;
    ropts.shardTimeoutMs = flags.timeoutMs;
    ropts.checkpointPath = flags.checkpoint;
    ropts.resume = flags.resume;
    ropts.tag = "mc/" + preset + "/" + flags.device + "/r" +
                std::to_string(flags.reqs) + "/" + faults.toString();
    // Only non-default axes change the tag, so pre-mitigation
    // journals keep resuming.
    if (!flags.mitigation.empty() && flags.mitigation != "none")
        ropts.tag += "/mit=" + flags.mitigation;

    mc::McSweepOptions mopt;
    mopt.requests = flags.reqs;
    mopt.seed = flags.seed;
    mopt.mitigations = mitigations;

    core::SweepReport report;
    try {
        report = mc::runMcSweep(runner, mopt, ropts);
    } catch (const core::ResumeError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    for (const auto &rec : report.shards) {
        if (rec.status == core::ShardStatus::Quarantined) {
            std::printf("result shard=%llu status=%s attempts=%u "
                        "error=\"%s\"\n",
                        (unsigned long long)rec.shard,
                        core::toString(rec.status), rec.attempts,
                        rec.error.c_str());
        } else {
            std::printf("result %s status=%s attempts=%u\n",
                        rec.payload.c_str(), core::toString(rec.status),
                        rec.attempts);
        }
    }
    std::printf("mcsweep %llu shards: %llu executed, %llu resumed, "
                "%llu retried, %llu quarantined, %llu timeout\n",
                (unsigned long long)report.shards.size(),
                (unsigned long long)report.executed,
                (unsigned long long)report.resumed,
                (unsigned long long)report.retries,
                (unsigned long long)report.quarantined,
                (unsigned long long)report.timeouts);
    const auto snap = metrics.snapshot();
    for (const auto &[name, value] : snap.counters) {
        if (name.rfind("mc.", 0) == 0 ||
            name.rfind("faults.", 0) == 0 ||
            name.rfind("sweep.", 0) == 0)
            std::printf("metric %s %llu\n", name.c_str(),
                        (unsigned long long)value);
    }
    return report.complete() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    // Split flags from positional arguments.  Unknown flags are usage
    // errors: a mistyped --resune silently ignored would rerun every
    // shard of the checkpoint the user meant to resume.  The
    // diagnostic names the subcommand (first positional argument) so
    // a long scripted pipeline points at the offending invocation.
    std::string subcommand;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("--", 0) != 0) {
            subcommand = argv[i];
            break;
        }
    }
    std::vector<std::string> args;
    Flags flags;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            args.push_back(arg);
            continue;
        }
        if (arg.rfind("--trace=", 0) == 0)
            flags.trace = arg.substr(8);
        else if (arg.rfind("--device=", 0) == 0)
            flags.device = arg.substr(9);
        else if (arg.rfind("--faults=", 0) == 0)
            flags.faults = arg.substr(9);
        else if (arg.rfind("--fastpath=", 0) == 0)
            flags.fastpath = arg.substr(11);
        else if (arg.rfind("--checkpoint=", 0) == 0)
            flags.checkpoint = arg.substr(13);
        else if (arg == "--resume")
            flags.resume = true;
        else if (arg.rfind("--jobs=", 0) == 0)
            flags.jobs =
                unsigned(parseU64OrExit(arg.substr(7), "--jobs"));
        else if (arg.rfind("--seed=", 0) == 0)
            flags.seed = parseU64OrExit(arg.substr(7), "--seed");
        else if (arg.rfind("--retries=", 0) == 0)
            flags.retries =
                uint32_t(parseU64OrExit(arg.substr(10), "--retries"));
        else if (arg.rfind("--timeout-ms=", 0) == 0)
            flags.timeoutMs =
                parseU64OrExit(arg.substr(13), "--timeout-ms");
        else if (arg.rfind("--workload=", 0) == 0)
            flags.workload = arg.substr(11);
        else if (arg.rfind("--policy=", 0) == 0)
            flags.policy = arg.substr(9);
        else if (arg.rfind("--mitigation=", 0) == 0)
            flags.mitigation = arg.substr(13);
        else if (arg.rfind("--dump-trace=", 0) == 0)
            flags.dumpTrace = arg.substr(13);
        else if (arg.rfind("--reqs=", 0) == 0)
            flags.reqs = parseU64OrExit(arg.substr(7), "--reqs");
        else if (arg.rfind("--refresh-interval-ns=", 0) == 0)
            flags.refreshIntervalNs =
                parseI64OrExit(arg.substr(22), "--refresh-interval-ns");
        else if (arg == "--grid")
            flags.grid = true;
        else if (arg.rfind("--threshold=", 0) == 0)
            flags.threshold =
                parseU64OrExit(arg.substr(12), "--threshold");
        else if (arg.rfind("--power-budget-mw=", 0) == 0)
            flags.powerBudgetMw =
                parseF64OrExit(arg.substr(18), "--power-budget-mw");
        else if (arg.rfind("--power-window-ns=", 0) == 0)
            flags.powerWindowNs =
                parseF64OrExit(arg.substr(18), "--power-window-ns");
        else {
            if (subcommand.empty()) {
                std::fprintf(stderr, "error: unknown flag '%s'\n",
                             arg.c_str());
            } else {
                std::fprintf(stderr,
                             "error: unknown flag '%s' (subcommand "
                             "'%s')\n",
                             arg.c_str(), subcommand.c_str());
            }
            return usage();
        }
    }

    if (args.empty())
        return usage();
    const std::string &cmd = args[0];
    if (cmd == "list")
        return cmdList();
    if (args.size() >= 2) {
        const std::string &preset = args[1];
        if (cmd == "inspect")
            return cmdInspect(preset);
        if (cmd == "retention")
            return cmdRetention(preset, flags);
        if (cmd == "report")
            return cmdReport(preset, flags);
        if (cmd == "lint")
            return cmdLint(preset, args.size() > 2 ? args[2] : "");
        if (cmd == "certify")
            return cmdCertify(preset, args.size() > 2 ? args[2] : "",
                              flags);
        if (cmd == "stats") {
            const auto row =
                args.size() > 2
                    ? dram::RowAddr(parseU64OrExit(args[2], "row"))
                    : dram::RowAddr(1000);
            const auto n = args.size() > 3
                               ? parseU64OrExit(args[3], "count")
                               : uint64_t(10000);
            return cmdStats(preset, row, n, flags);
        }
        if ((cmd == "hammer" || cmd == "press") && args.size() == 4) {
            return cmdAttack(preset,
                             dram::RowAddr(parseU64OrExit(args[2], "row")),
                             parseU64OrExit(args[3], "count"),
                             cmd == "press", flags);
        }
        if (cmd == "rowcopy" && args.size() == 4) {
            return cmdRowCopy(
                preset, dram::RowAddr(parseU64OrExit(args[2], "src row")),
                dram::RowAddr(parseU64OrExit(args[3], "dst row")), flags);
        }
        if (cmd == "sweep") {
            const auto shards = args.size() > 2
                                    ? parseU64OrExit(args[2], "shards")
                                    : uint64_t(8);
            const auto n = args.size() > 3
                               ? parseU64OrExit(args[3], "count")
                               : uint64_t(200000);
            return cmdSweep(preset, shards, n, flags);
        }
        if (cmd == "mc")
            return cmdMc(preset, flags);
        if (cmd == "mcsweep")
            return cmdMcSweep(preset, flags);
    }
    return usage();
}
