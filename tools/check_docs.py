#!/usr/bin/env python3
"""Documentation consistency checks (CI `docs` job).

Eight checks:

1. Relative markdown links in README.md, EXPERIMENTS.md, DESIGN.md and
   docs/*.md must point at files that exist.
2. Every row of the observation table in docs/OBSERVATIONS.md must
   cite a model-source file and a test file that contain a literal
   ``O<n>`` tag comment, the cited bench file must exist, and the
   table must cover all of O1..O14.
3. The rule table in docs/LINT_RULES.md must list exactly the rules
   registered in the ``DRAMSCOPE_LINT_RULES`` X-macro of
   src/bender/lint.h, in registry order, with matching severities.
4. The fault-clause table in docs/RESILIENCE.md must list exactly the
   clauses registered in the ``DRAMSCOPE_FAULT_CLAUSES`` X-macro of
   src/dram/faulty_device.h, in registry order.
5. The ``DRAMSCOPE_FASTPATH`` mode table in README.md must list
   exactly the modes registered in the ``DRAMSCOPE_FASTPATH_MODES``
   X-macro of src/dram/device.h, in registry order.
6. The open-row policy table in docs/MC.md ("Open-row policies"
   section) must list exactly the policies registered in the
   ``DRAMSCOPE_MC_POLICIES`` X-macro of src/mc/mc.h, in registry
   order, with matching knob strings.
7. The mitigation table in docs/MC.md ("Mitigations" section) must
   list exactly the defenses registered in the
   ``DRAMSCOPE_MITIGATIONS`` X-macro of src/core/protect/mitigation.h,
   in registry order, with matching knob strings.
8. README.md's subsystem documentation index must link every file
   under docs/ (no undocumented doc can be added silently).

Exits non-zero with one line per problem.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

LINK_CHECKED = ["README.md", "EXPERIMENTS.md", "DESIGN.md"]
OBSERVATIONS = "docs/OBSERVATIONS.md"
LINT_HEADER = "src/bender/lint.h"
LINT_RULES_DOC = "docs/LINT_RULES.md"
FAULT_HEADER = "src/dram/faulty_device.h"
RESILIENCE_DOC = "docs/RESILIENCE.md"
ALL_TAGS = [f"O{n}" for n in range(1, 15)]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
ROW_RE = re.compile(r"^\|\s*(O\d+)\s*\|")
PATH_RE = re.compile(r"`([^`]+)`")
# One X-macro entry: X(Enumerator, "rule-id", Severity, "summary...").
RULE_ENTRY_RE = re.compile(
    r"X\(\s*(\w+)\s*,\s*\"([a-z0-9-]+)\"\s*,\s*(\w+)\s*,")
# One doc-table row: | `rule-id` | severity | description |
RULE_ROW_RE = re.compile(
    r"^\|\s*`([a-z0-9-]+)`\s*\|\s*(\w+)\s*\|\s*(.+?)\s*\|\s*$")
# One fault X-macro entry: X(Enumerator, "keyword", "summary...").
CLAUSE_ENTRY_RE = re.compile(r"X\(\s*(\w+)\s*,\s*\"([a-z]+)\"\s*,")
# One clause-table row: | `keyword` | `syntax` | description |
CLAUSE_ROW_RE = re.compile(
    r"^\|\s*`([a-z]+)`\s*\|\s*`([^`]+)`\s*\|\s*(.+?)\s*\|\s*$")
DEVICE_HEADER = "src/dram/device.h"
# One fast-path X-macro entry: X(Enumerator, "keyword", "summary...").
MODE_ENTRY_RE = re.compile(r"X\(\s*(\w+)\s*,\s*\"([a-z]+)\"\s*,")
# One mode-table row: | `keyword` | description |
MODE_ROW_RE = re.compile(r"^\|\s*`([a-z]+)`\s*\|\s*(.+?)\s*\|\s*$")
MC_HEADER = "src/mc/mc.h"
MC_DOC = "docs/MC.md"
# One policy X-macro entry: X(Enumerator, "keyword", "knobs", "sum...").
POLICY_ENTRY_RE = re.compile(
    r"X\(\s*(\w+)\s*,\s*\"([a-z]+)\"\s*,\s*\"([^\"]*)\"\s*,")
# One policy-table row: | `keyword` | `knobs` | description |
POLICY_ROW_RE = re.compile(
    r"^\|\s*`([a-z]+)`\s*\|\s*`([^`]+)`\s*\|\s*(.+?)\s*\|\s*$")
MITIGATION_HEADER = "src/core/protect/mitigation.h"


def check_links(md_path: Path, errors: list) -> None:
    text = md_path.read_text(encoding="utf-8")
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = (md_path.parent / target).resolve()
        if not resolved.exists():
            errors.append(f"{md_path.relative_to(REPO)}: broken link "
                          f"-> {target}")


def check_observations(errors: list) -> None:
    obs_path = REPO / OBSERVATIONS
    if not obs_path.exists():
        errors.append(f"{OBSERVATIONS}: missing")
        return

    seen = {}
    for line in obs_path.read_text(encoding="utf-8").splitlines():
        m = ROW_RE.match(line)
        if not m:
            continue
        tag = m.group(1)
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if len(cells) < 5:
            errors.append(f"{OBSERVATIONS}: {tag}: row has "
                          f"{len(cells)} cells, expected 5")
            continue
        paths = []
        for cell in cells[2:5]:
            cited = PATH_RE.findall(cell)
            if len(cited) != 1:
                errors.append(f"{OBSERVATIONS}: {tag}: expected one "
                              f"backticked path per cell, got: {cell}")
                paths.append(None)
            else:
                paths.append(cited[0])
        seen[tag] = paths

    for tag in ALL_TAGS:
        if tag not in seen:
            errors.append(f"{OBSERVATIONS}: no table row for {tag}")

    tag_re_cache = {}
    for tag, paths in sorted(seen.items()):
        source, test, bench = paths
        # Source and test must carry the literal tag; the bench is
        # only required to exist (figure benches cover tag ranges).
        for role, rel in (("source", source), ("test", test)):
            if rel is None:
                continue
            path = REPO / rel
            if not path.exists():
                errors.append(f"{OBSERVATIONS}: {tag}: {role} file "
                              f"missing: {rel}")
                continue
            pattern = tag_re_cache.setdefault(
                tag, re.compile(rf"\b{tag}\b"))
            if not pattern.search(path.read_text(encoding="utf-8")):
                errors.append(f"{OBSERVATIONS}: {tag}: {role} file "
                              f"{rel} has no literal {tag} tag")
        if bench is not None and not (REPO / bench).exists():
            errors.append(f"{OBSERVATIONS}: {tag}: bench file "
                          f"missing: {bench}")


def registered_lint_rules(errors: list) -> list:
    """(rule-id, severity) pairs from the X-macro, registry order."""
    header = REPO / LINT_HEADER
    if not header.exists():
        errors.append(f"{LINT_HEADER}: missing")
        return []
    text = header.read_text(encoding="utf-8")
    marker = "#define DRAMSCOPE_LINT_RULES(X)"
    start = text.find(marker)
    if start < 0:
        errors.append(f"{LINT_HEADER}: DRAMSCOPE_LINT_RULES macro "
                      f"not found")
        return []
    # The macro body is the run of backslash-continued lines.
    body_lines = []
    for line in text[start + len(marker):].splitlines()[1:]:
        body_lines.append(line)
        if not line.rstrip().endswith("\\"):
            break
    rules = [(rid, sev.lower())
             for _, rid, sev in RULE_ENTRY_RE.findall("\n".join(body_lines))]
    if not rules:
        errors.append(f"{LINT_HEADER}: no X(...) entries parsed from "
                      f"DRAMSCOPE_LINT_RULES")
    return rules


def check_lint_rules(errors: list) -> None:
    rules = registered_lint_rules(errors)
    doc_path = REPO / LINT_RULES_DOC
    if not doc_path.exists():
        errors.append(f"{LINT_RULES_DOC}: missing")
        return

    documented = []
    for line in doc_path.read_text(encoding="utf-8").splitlines():
        m = RULE_ROW_RE.match(line.strip())
        if not m:
            continue
        rid, sev, desc = m.group(1), m.group(2).lower(), m.group(3)
        documented.append((rid, sev))
        if not desc.strip():
            errors.append(f"{LINT_RULES_DOC}: {rid}: empty description")

    doc_ids = {rid for rid, _ in documented}
    reg_ids = {rid for rid, _ in rules}
    for rid, sev in rules:
        if rid not in doc_ids:
            errors.append(f"{LINT_RULES_DOC}: registered rule '{rid}' "
                          f"has no table row")
    for rid, sev in documented:
        if rid not in reg_ids:
            errors.append(f"{LINT_RULES_DOC}: documents unknown rule "
                          f"'{rid}' (not in {LINT_HEADER})")
    doc_sev = dict(documented)
    for rid, sev in rules:
        if rid in doc_sev and doc_sev[rid] != sev:
            errors.append(f"{LINT_RULES_DOC}: {rid}: documented "
                          f"severity '{doc_sev[rid]}' != registered "
                          f"'{sev}'")
    if doc_ids == reg_ids and \
            [r for r, _ in documented] != [r for r, _ in rules]:
        errors.append(f"{LINT_RULES_DOC}: table rows are not in "
                      f"registry order")


def registered_fault_clauses(errors: list) -> list:
    """Clause keywords from the X-macro, registry order."""
    header = REPO / FAULT_HEADER
    if not header.exists():
        errors.append(f"{FAULT_HEADER}: missing")
        return []
    text = header.read_text(encoding="utf-8")
    marker = "#define DRAMSCOPE_FAULT_CLAUSES(X)"
    start = text.find(marker)
    if start < 0:
        errors.append(f"{FAULT_HEADER}: DRAMSCOPE_FAULT_CLAUSES macro "
                      f"not found")
        return []
    body_lines = []
    for line in text[start + len(marker):].splitlines()[1:]:
        body_lines.append(line)
        if not line.rstrip().endswith("\\"):
            break
    clauses = [kw for _, kw
               in CLAUSE_ENTRY_RE.findall("\n".join(body_lines))]
    if not clauses:
        errors.append(f"{FAULT_HEADER}: no X(...) entries parsed from "
                      f"DRAMSCOPE_FAULT_CLAUSES")
    return clauses


def check_fault_clauses(errors: list) -> None:
    clauses = registered_fault_clauses(errors)
    doc_path = REPO / RESILIENCE_DOC
    if not doc_path.exists():
        errors.append(f"{RESILIENCE_DOC}: missing")
        return

    documented = []
    for line in doc_path.read_text(encoding="utf-8").splitlines():
        m = CLAUSE_ROW_RE.match(line.strip())
        if not m:
            continue
        keyword, syntax, desc = m.group(1), m.group(2), m.group(3)
        documented.append(keyword)
        if not syntax.startswith(keyword):
            errors.append(f"{RESILIENCE_DOC}: {keyword}: syntax "
                          f"'{syntax}' does not start with the clause "
                          f"keyword")
        if not desc.strip():
            errors.append(f"{RESILIENCE_DOC}: {keyword}: empty "
                          f"description")

    for keyword in clauses:
        if keyword not in documented:
            errors.append(f"{RESILIENCE_DOC}: registered fault clause "
                          f"'{keyword}' has no table row")
    for keyword in documented:
        if keyword not in clauses:
            errors.append(f"{RESILIENCE_DOC}: documents unknown fault "
                          f"clause '{keyword}' (not in {FAULT_HEADER})")
    if set(documented) == set(clauses) and documented != clauses:
        errors.append(f"{RESILIENCE_DOC}: clause table rows are not "
                      f"in registry order")


def registered_fastpath_modes(errors: list) -> list:
    """Mode keywords from the X-macro, registry order."""
    header = REPO / DEVICE_HEADER
    if not header.exists():
        errors.append(f"{DEVICE_HEADER}: missing")
        return []
    text = header.read_text(encoding="utf-8")
    marker = "#define DRAMSCOPE_FASTPATH_MODES(X)"
    start = text.find(marker)
    if start < 0:
        errors.append(f"{DEVICE_HEADER}: DRAMSCOPE_FASTPATH_MODES "
                      f"macro not found")
        return []
    body_lines = []
    for line in text[start + len(marker):].splitlines()[1:]:
        body_lines.append(line)
        if not line.rstrip().endswith("\\"):
            break
    modes = [kw for _, kw
             in MODE_ENTRY_RE.findall("\n".join(body_lines))]
    if not modes:
        errors.append(f"{DEVICE_HEADER}: no X(...) entries parsed from "
                      f"DRAMSCOPE_FASTPATH_MODES")
    return modes


def check_fastpath_modes(errors: list) -> None:
    """README's DRAMSCOPE_FASTPATH mode table vs the mode registry."""
    modes = registered_fastpath_modes(errors)
    readme = REPO / "README.md"
    if not readme.exists():
        return  # Reported by the link pass already.
    lines = readme.read_text(encoding="utf-8").splitlines()
    # The table lives in the section that introduces the env knob:
    # scan rows from the first DRAMSCOPE_FASTPATH mention to the next
    # heading, so unrelated two-column tables elsewhere can't match.
    documented = []
    in_section = False
    for line in lines:
        if "DRAMSCOPE_FASTPATH" in line and not in_section:
            in_section = True
            continue
        if in_section and line.startswith("## "):
            break
        if not in_section:
            continue
        # Header and separator rows have no backticked first cell, so
        # every match is a real mode row.
        m = MODE_ROW_RE.match(line.strip())
        if not m:
            continue
        keyword, desc = m.group(1), m.group(2)
        documented.append(keyword)
        if not desc.strip():
            errors.append(f"README.md: fast-path mode '{keyword}': "
                          f"empty description")
    for keyword in modes:
        if keyword not in documented:
            errors.append(f"README.md: registered fast-path mode "
                          f"'{keyword}' has no DRAMSCOPE_FASTPATH "
                          f"table row")
    for keyword in documented:
        if keyword not in modes:
            errors.append(f"README.md: documents unknown fast-path "
                          f"mode '{keyword}' (not in {DEVICE_HEADER})")
    if set(documented) == set(modes) and documented != modes:
        errors.append(f"README.md: DRAMSCOPE_FASTPATH table rows are "
                      f"not in registry order")


def registered_mc_policies(errors: list) -> list:
    """(keyword, knobs) pairs from the X-macro, registry order."""
    header = REPO / MC_HEADER
    if not header.exists():
        errors.append(f"{MC_HEADER}: missing")
        return []
    text = header.read_text(encoding="utf-8")
    marker = "#define DRAMSCOPE_MC_POLICIES(X)"
    start = text.find(marker)
    if start < 0:
        errors.append(f"{MC_HEADER}: DRAMSCOPE_MC_POLICIES macro "
                      f"not found")
        return []
    body_lines = []
    for line in text[start + len(marker):].splitlines()[1:]:
        body_lines.append(line)
        if not line.rstrip().endswith("\\"):
            break
    policies = [(kw, knobs) for _, kw, knobs
                in POLICY_ENTRY_RE.findall("\n".join(body_lines))]
    if not policies:
        errors.append(f"{MC_HEADER}: no X(...) entries parsed from "
                      f"DRAMSCOPE_MC_POLICIES")
    return policies


def mc_doc_table_rows(section: str, errors: list) -> list:
    """(keyword, knobs, desc) rows from one ``## <section>`` of MC.md.

    Both the policy and the mitigation table share the
    | `keyword` | `knobs` | description | shape, so each check must
    only see the rows of its own section.
    """
    doc_path = REPO / MC_DOC
    if not doc_path.exists():
        errors.append(f"{MC_DOC}: missing")
        return []
    rows = []
    in_section = False
    for line in doc_path.read_text(encoding="utf-8").splitlines():
        if line.strip() == f"## {section}":
            in_section = True
            continue
        if in_section and line.startswith("## "):
            break
        if not in_section:
            continue
        m = POLICY_ROW_RE.match(line.strip())
        if m:
            rows.append((m.group(1), m.group(2), m.group(3)))
    if not in_section:
        errors.append(f"{MC_DOC}: no '## {section}' section")
    return rows


def check_registry_table(doc_rows: list, registered: list, noun: str,
                         header: str, errors: list) -> None:
    """Shared id/knob/order comparison for the MC.md X-macro tables."""
    documented = [(kw, knobs) for kw, knobs, desc in doc_rows]
    for kw, knobs, desc in doc_rows:
        if not desc.strip():
            errors.append(f"{MC_DOC}: {kw}: empty description")
    doc_ids = {kw for kw, _ in documented}
    reg_ids = {kw for kw, _ in registered}
    for kw, _ in registered:
        if kw not in doc_ids:
            errors.append(f"{MC_DOC}: registered {noun} '{kw}' has no "
                          f"table row")
    for kw, _ in documented:
        if kw not in reg_ids:
            errors.append(f"{MC_DOC}: documents unknown {noun} '{kw}' "
                          f"(not in {header})")
    doc_knobs = dict(documented)
    for kw, knobs in registered:
        if kw in doc_knobs and doc_knobs[kw] != knobs:
            errors.append(f"{MC_DOC}: {kw}: documented knobs "
                          f"'{doc_knobs[kw]}' != registered '{knobs}'")
    if doc_ids == reg_ids and \
            [k for k, _ in documented] != [k for k, _ in registered]:
        errors.append(f"{MC_DOC}: {noun} table rows are not in "
                      f"registry order")


def check_mc_policies(errors: list) -> None:
    """docs/MC.md's policy table vs the DRAMSCOPE_MC_POLICIES macro."""
    policies = registered_mc_policies(errors)
    rows = mc_doc_table_rows("Open-row policies", errors)
    check_registry_table(rows, policies, "policy", MC_HEADER, errors)


def registered_mitigations(errors: list) -> list:
    """(keyword, knobs) pairs from the X-macro, registry order."""
    header = REPO / MITIGATION_HEADER
    if not header.exists():
        errors.append(f"{MITIGATION_HEADER}: missing")
        return []
    text = header.read_text(encoding="utf-8")
    marker = "#define DRAMSCOPE_MITIGATIONS(X)"
    start = text.find(marker)
    if start < 0:
        errors.append(f"{MITIGATION_HEADER}: DRAMSCOPE_MITIGATIONS "
                      f"macro not found")
        return []
    body_lines = []
    for line in text[start + len(marker):].splitlines()[1:]:
        body_lines.append(line)
        if not line.rstrip().endswith("\\"):
            break
    # Same X(Enumerator, "id", "knobs", "summary") shape as policies.
    mitigations = [(kw, knobs) for _, kw, knobs
                   in POLICY_ENTRY_RE.findall("\n".join(body_lines))]
    if not mitigations:
        errors.append(f"{MITIGATION_HEADER}: no X(...) entries parsed "
                      f"from DRAMSCOPE_MITIGATIONS")
    return mitigations


def check_mitigations(errors: list) -> None:
    """docs/MC.md's mitigation table vs DRAMSCOPE_MITIGATIONS."""
    mitigations = registered_mitigations(errors)
    rows = mc_doc_table_rows("Mitigations", errors)
    check_registry_table(rows, mitigations, "mitigation",
                         MITIGATION_HEADER, errors)


def check_readme_doc_index(errors: list) -> None:
    """README's subsystem index must link every docs/*.md file."""
    readme = REPO / "README.md"
    if not readme.exists():
        return  # Reported by the link pass already.
    text = readme.read_text(encoding="utf-8")
    for path in sorted((REPO / "docs").glob("*.md")):
        rel = f"docs/{path.name}"
        if rel not in text:
            errors.append(f"README.md: subsystem index does not link "
                          f"{rel}")


def main() -> int:
    errors = []
    for name in LINK_CHECKED:
        path = REPO / name
        if path.exists():
            check_links(path, errors)
        else:
            errors.append(f"{name}: missing")
    for path in sorted((REPO / "docs").glob("*.md")):
        check_links(path, errors)
    check_observations(errors)
    check_lint_rules(errors)
    check_fault_clauses(errors)
    check_fastpath_modes(errors)
    check_mc_policies(errors)
    check_mitigations(errors)
    check_readme_doc_index(errors)

    if errors:
        for err in errors:
            print(f"check_docs: {err}", file=sys.stderr)
        print(f"check_docs: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print("check_docs: all links resolve, O1..O14 all mapped and "
          "tagged, lint rule, fault clause, fast-path mode, mc policy "
          "and mitigation tables in sync, README indexes every docs/ "
          "file")
    return 0


if __name__ == "__main__":
    sys.exit(main())
