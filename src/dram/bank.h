/**
 * @file
 * One DRAM bank: sparse charge-level row storage plus the lazy
 * activate-induced-disturbance and retention physics.
 *
 * Disturbance bookkeeping uses dose accumulation with evaluation
 * barriers: aggressor activity increments per-victim-row pending
 * counters, and flips are committed whenever the data feeding the
 * dose computation is about to change (a write to the victim or an
 * adjacent row), the victim row is restored (ACT/REF), or the row is
 * observed.  Between barriers the victim and aggressor data are
 * constant, so evaluating count * rate at the barrier is exact.
 */

#ifndef DRAMSCOPE_DRAM_BANK_H
#define DRAMSCOPE_DRAM_BANK_H

#include <unordered_map>

#include "dram/config.h"
#include "dram/geometry.h"
#include "dram/types.h"
#include "util/bitvec.h"

namespace dramscope {
namespace dram {

/** Charge-level state and pending disturbance of one materialized row. */
struct RowState
{
    /** Capacitor state per bitline: true = charged. */
    BitVec charge;

    /**
     * Pending disturbance from the lower (index 0, row r-1) and
     * upper (index 1, row r+1) aggressor: ACT-PRE pair count and
     * accumulated aggressor open-row time.
     */
    double pendHammer[2] = {0.0, 0.0};
    double pendPressNs[2] = {0.0, 0.0};

    /** Last time this row's cells were fully restored (ACT or REF). */
    NanoTime lastRestoreNs = 0;

    /**
     * Last time the retention scan ran; re-scans within the minimum
     * evaluation window are redundant (the scan is monotone) and are
     * skipped to keep per-command barriers cheap.
     */
    NanoTime lastRetentionScanNs = 0;

    /**
     * Analytic-commit counter: part of the sampling hash key, so
     * successive sampled aggregate-dose commits of the same row draw
     * independent (but run-to-run reproducible) values.
     */
    uint64_t analyticEpoch = 0;
};

/** Counters exposed for tests and the power side-channel analysis. */
struct BankStats
{
    uint64_t activations = 0;        //!< ACT commands accepted.
    uint64_t wordlinesDriven = 0;    //!< Physical WLs driven (O3/O5).
    uint64_t rowCopyEvents = 0;      //!< Charge-share copies triggered.
    uint64_t disturbFlips = 0;       //!< Cells flipped by AIB.
    uint64_t retentionFlips = 0;     //!< Cells flipped by leakage.
};

/**
 * Storage and physics of a single bank.  The Chip drives it with
 * physical row addresses; this class never sees logical addresses.
 */
class Bank
{
  public:
    /**
     * Pending hammer-pair count at or above which an analytic commit
     * samples flips instead of replaying the exact per-cell
     * threshold comparison.  Below the floor the analytic path is
     * bit-identical to the step-wise engine by construction.
     */
    static constexpr double kAnalyticSampleMinActs = 4096.0;

    /**
     * @param cfg Device configuration (borrowed; must outlive Bank).
     * @param map Subarray map (borrowed, shared across banks).
     * @param id Bank index (part of the variation hash key).
     */
    Bank(const DeviceConfig &cfg, const SubarrayMap &map, BankId id);

    /**
     * Restores row @p row at time @p now: commits pending disturbance
     * and retention flips, clears pending, and refreshes the charge
     * timestamp.  Called on ACT of the row and on REF.
     */
    void restoreRow(RowAddr row, NanoTime now);

    /**
     * Evaluation barrier without a restore: commits pending
     * disturbance and retention flips of @p row but leaves the
     * retention clock running.  Called before data feeding the dose
     * computation changes.
     */
    void commitRow(RowAddr row, NanoTime now);

    /**
     * Registers one aggressor dwell of @p aggressor (ACT..PRE):
     * increments the hammer count and open-time of both AIB
     * neighbours.
     * @param act_count Number of ACT-PRE pairs (bulk hammering).
     * @param open_ns Open-row time per activation.
     */
    void registerAggressorDwell(RowAddr aggressor, double act_count,
                                double open_ns, NanoTime now);

    /**
     * Analytic fast-forward: registers @p act_count dwells of
     * @p aggressor (like registerAggressorDwell) and immediately
     * commits the disturbance of both victims.  Small pending doses
     * replay the exact per-cell threshold comparison (bit-identical
     * to the step-wise engine); doses at or above the sampling floor
     * draw each cell's flip as a Bernoulli trial of its closed-form
     * flip probability, on an independent hash stream keyed by the
     * row's analytic epoch.  Retention is untouched — it still
     * commits at the usual barriers.
     */
    void applyAggregateDose(RowAddr aggressor, double act_count,
                            double open_ns, NanoTime now);

    /**
     * Refreshes the restore timestamp of an already-committed row
     * without re-running the barriers.  The bulk train path uses it
     * to land the aggressor's last restore at the final ACT, exactly
     * where slot-by-slot execution leaves it.
     */
    void markRestored(RowAddr row, NanoTime now);

    /**
     * Applies the RowCopy charge transfer for an ACT of @p dst
     * arriving while the bitlines still hold @p src (out-of-spec
     * ACT-PRE-ACT).  Copies all, half (inverted) or no bits depending
     * on the stripe relation (SS IV-C).
     * @return true when any charge was transferred.
     */
    bool applyRowCopy(RowAddr src, RowAddr dst, NanoTime now);

    /** Reads the charge of one cell (materializing the row). */
    bool chargeAt(RowAddr row, BitlineIdx bl, NanoTime now);

    /**
     * Direct reference to a row's charge (materializing it).  Hot
     * path of the RD/WR burst loops; the caller must have applied
     * the usual barriers (an ACT of the row does).
     */
    BitVec &chargeRef(RowAddr row, NanoTime now);

    /**
     * Writes data bits [first_bl, first_bl + bits.size()) of @p row.
     * Caller must have applied commit barriers (Chip does).
     */
    void writeCharge(RowAddr row, BitlineIdx first_bl,
                     const std::vector<bool> &bits, NanoTime now);

    /** Writes one cell's charge (hot path of the RD/WR data path). */
    void setChargeCell(RowAddr row, BitlineIdx bl, bool charge,
                       NanoTime now);

    /** Data value of cell (charge interpreted through polarity). */
    bool dataAt(RowAddr row, BitlineIdx bl, NanoTime now);

    /** Converts a data bit to charge for @p row's polarity. */
    bool dataToCharge(RowAddr row, bool data) const;

    /** Converts a charge bit to data for @p row's polarity. */
    bool chargeToData(RowAddr row, bool charge) const;

    /**
     * Commits and restores every materialized row (REF semantics;
     * the model refreshes the whole bank per REF, see DESIGN.md).
     */
    void refreshAll(NanoTime now);

    /** Access to counters. */
    const BankStats &stats() const { return stats_; }

    /** Number of materialized rows (tests / memory accounting). */
    size_t materializedRows() const { return rows_.size(); }

    /** The subarray map (convenience for the Chip). */
    const SubarrayMap &subarrayMap() const { return map_; }

  private:
    /** Returns the row state, materializing discharged cells. */
    RowState &rowState(RowAddr row, NanoTime now);

    /** Commits retention flips of @p rs (idempotent discharge). */
    void commitRetention(RowAddr row, RowState &rs, NanoTime now);

    /**
     * Commits disturbance flips of @p rs and clears pending.  With
     * @p analytic set, large doses flip cells by sampling the
     * closed-form flip probability instead of replaying the exact
     * threshold comparison (see applyAggregateDose).
     */
    void commitDisturb(RowAddr row, RowState &rs, bool analytic = false);

    /** Per-cell disturbance dose factors common to both mechanisms. */
    double patternFactor(const BitVec &vic, const BitVec *aggr,
                         BitlineIdx bl, bool victim_charged) const;

    /** Uniform per-cell flip threshold for a mechanism. */
    double threshold(RowAddr row, BitlineIdx bl,
                     AibMechanism mech) const;

    /**
     * One Bernoulli trial of the closed-form flip probability
     * p = clamp((dose - thresholdMin) / (thresholdMax -
     * thresholdMin), 0, 1) — the exact flip rule marginalized over
     * the uniform threshold population (analytic sampling).
     */
    bool sampleFlip(RowAddr row, BitlineIdx bl, double dose,
                    uint64_t salt, uint64_t epoch) const;

    /** Per-cell retention time in ns at the configured temperature. */
    double retentionNs(RowAddr row, BitlineIdx bl) const;

    const DeviceConfig &cfg_;
    const SubarrayMap &map_;
    BankId id_;
    std::unordered_map<RowAddr, RowState> rows_;
    BankStats stats_;
    double tempDoseScale_ = 1.0;  //!< Precomputed temperature factor.
};

} // namespace dram
} // namespace dramscope

#endif // DRAMSCOPE_DRAM_BANK_H
