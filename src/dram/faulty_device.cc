/**
 * @file
 * Deterministic fault-injection decorator implementation.
 */

#include "dram/faulty_device.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/rng.h"

namespace dramscope {
namespace dram {

namespace {

/** Stream-tag constants keeping drop and flip draws independent. */
constexpr uint64_t kDropTag = 0xD40Full;
constexpr uint64_t kFlipTag = 0xF119ull;

/** Sets @p *error to @p msg (when requested) and returns nullopt. */
std::optional<FaultSpec>
parseFail(std::string *error, const std::string &msg)
{
    if (error)
        *error = msg;
    return std::nullopt;
}

/**
 * Parses an unsigned decimal at @p p; true on success with @p p
 * advanced past the digits.
 */
bool
parseU64(const char *&p, uint64_t &out)
{
    char *end = nullptr;
    if (*p == '-')
        return false;
    out = std::strtoull(p, &end, 10);
    if (end == p)
        return false;
    p = end;
    return true;
}

/** Parses a probability in [0, 1] at @p p. */
bool
parseRate(const char *&p, double &out)
{
    char *end = nullptr;
    out = std::strtod(p, &end);
    if (end == p || !(out >= 0.0) || out > 1.0)
        return false;
    p = end;
    return true;
}

} // namespace

std::string
FaultSpec::toString() const
{
    std::string out;
    const auto sep = [&out] {
        if (!out.empty())
            out += ',';
    };
    for (const auto &cell : stuck) {
        sep();
        char buf[96];
        std::snprintf(buf, sizeof(buf), "stuck@%u.%u.%u.%u=%d",
                      unsigned(cell.bank), unsigned(cell.row),
                      unsigned(cell.col), unsigned(cell.bit),
                      cell.value ? 1 : 0);
        out += buf;
    }
    if (flipRate > 0.0) {
        sep();
        char buf[48];
        std::snprintf(buf, sizeof(buf), "flip:%g", flipRate);
        out += buf;
    }
    if (dropRate > 0.0) {
        sep();
        char buf[48];
        std::snprintf(buf, sizeof(buf), "drop:%g", dropRate);
        out += buf;
    }
    if (dieAfterCommands > 0) {
        sep();
        out += "die:cmd=" + std::to_string(dieAfterCommands);
    }
    if (seed != 1) {
        sep();
        out += "seed:" + std::to_string(seed);
    }
    return out;
}

std::optional<FaultSpec>
FaultSpec::parse(const std::string &spec, std::string *error)
{
    FaultSpec out;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string clause = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (clause.empty())
            return parseFail(error, "empty fault clause");

        const char *p = clause.c_str();
        if (clause.rfind("stuck@", 0) == 0) {
            p += 6;
            StuckCell cell;
            uint64_t bank = 0, row = 0, col = 0, bit = 0, value = 0;
            if (!parseU64(p, bank) || *p++ != '.' ||
                !parseU64(p, row) || *p++ != '.' ||
                !parseU64(p, col) || *p++ != '.' ||
                !parseU64(p, bit) || *p++ != '=' ||
                !parseU64(p, value) || *p != '\0' ||
                bank > 0xFFFF || bit >= 64 || value > 1) {
                return parseFail(error,
                                 "bad stuck clause '" + clause +
                                     "' (stuck@B.R.C.BIT=V)");
            }
            cell.bank = BankId(bank);
            cell.row = RowAddr(row);
            cell.col = ColAddr(col);
            cell.bit = uint32_t(bit);
            cell.value = value != 0;
            out.stuck.push_back(cell);
        } else if (clause.rfind("flip:", 0) == 0) {
            p += 5;
            if (!parseRate(p, out.flipRate) || *p != '\0')
                return parseFail(error, "bad flip rate in '" + clause +
                                            "' (flip:RATE in [0,1])");
        } else if (clause.rfind("drop:", 0) == 0) {
            p += 5;
            if (!parseRate(p, out.dropRate) || *p != '\0')
                return parseFail(error, "bad drop rate in '" + clause +
                                            "' (drop:RATE in [0,1])");
        } else if (clause.rfind("die:cmd=", 0) == 0) {
            p += 8;
            if (!parseU64(p, out.dieAfterCommands) || *p != '\0' ||
                out.dieAfterCommands == 0) {
                return parseFail(error, "bad die clause '" + clause +
                                            "' (die:cmd=N, N > 0)");
            }
        } else if (clause.rfind("seed:", 0) == 0) {
            p += 5;
            if (!parseU64(p, out.seed) || *p != '\0')
                return parseFail(error,
                                 "bad seed in '" + clause + "'");
        } else {
            return parseFail(error,
                             "unknown fault clause '" + clause +
                                 "' (stuck@|flip:|drop:|die:cmd=|seed:)");
        }
    }
    return out;
}

FaultyDevice::FaultyDevice(Device &inner, FaultSpec spec)
    : inner_(&inner), spec_(std::move(spec))
{
    open_row_.resize(inner_->config().numBanks);
    beginShard(0, 1);
}

FaultyDevice::FaultyDevice(std::unique_ptr<Device> inner, FaultSpec spec)
    : inner_(inner.get()), owned_(std::move(inner)), spec_(std::move(spec))
{
    open_row_.resize(inner_->config().numBanks);
    beginShard(0, 1);
}

const DeviceConfig &
FaultyDevice::config() const
{
    return inner_->config();
}

void
FaultyDevice::beginShard(uint64_t shard, uint32_t attempt)
{
    stream_key_ = hashCombine(hashCombine(spec_.seed, shard), attempt);
    stream_commands_ = 0;
}

void
FaultyDevice::setMetrics(obs::MetricsRegistry *metrics)
{
    metrics_ = metrics;
    if (!metrics_) {
        flip_counter_ = stuck_counter_ = drop_counter_ = dead_counter_ =
            nullptr;
        return;
    }
    flip_counter_ = &metrics_->counter("faults.injected.flip");
    stuck_counter_ = &metrics_->counter("faults.injected.stuck");
    drop_counter_ = &metrics_->counter("faults.injected.drop");
    dead_counter_ = &metrics_->counter("faults.device.dead");
}

void
FaultyDevice::countFlip(uint64_t n)
{
    counts_.flips += n;
    if (flip_counter_)
        flip_counter_->add(n);
}

void
FaultyDevice::countStuck(uint64_t n)
{
    counts_.stuck += n;
    if (stuck_counter_)
        stuck_counter_->add(n);
}

uint64_t
FaultyDevice::onCommand()
{
    if (dead_)
        throw DeviceDeadError("device is dead (die:cmd=" +
                              std::to_string(spec_.dieAfterCommands) +
                              " reached)");
    const uint64_t cmd_seq = stream_commands_;
    ++stream_commands_;
    ++lifetime_commands_;
    if (spec_.dieAfterCommands > 0 &&
        lifetime_commands_ > spec_.dieAfterCommands) {
        dead_ = true;
        counts_.deaths = 1;
        if (dead_counter_ && dead_counter_->value == 0)
            dead_counter_->add(1);
        throw DeviceDeadError(
            "device died after " +
            std::to_string(spec_.dieAfterCommands) + " commands");
    }
    if (spec_.dropRate > 0.0) {
        if (hashUniform(hashCombine(stream_key_, kDropTag), cmd_seq) <
            spec_.dropRate) {
            ++counts_.drops;
            if (drop_counter_)
                drop_counter_->add(1);
            throw TransientFaultError("command dropped (injected)");
        }
    }
    return cmd_seq;
}

uint64_t
FaultyDevice::corruptRead(BankId b, ColAddr col, uint64_t data,
                          uint64_t cmd_seq)
{
    if (spec_.flipRate > 0.0) {
        const uint64_t key = hashCombine(stream_key_, kFlipTag);
        const uint32_t bits = inner_->config().rdDataBits;
        for (uint32_t i = 0; i < bits; ++i) {
            if (hashUniform(key, hashCombine(cmd_seq, i)) <
                spec_.flipRate) {
                data ^= 1ULL << i;
                countFlip(1);
            }
        }
    }
    if (!spec_.stuck.empty() && b < open_row_.size() && open_row_[b]) {
        const RowAddr row = *open_row_[b];
        for (const auto &cell : spec_.stuck) {
            if (cell.bank != b || cell.row != row || cell.col != col)
                continue;
            const uint64_t mask = 1ULL << cell.bit;
            const uint64_t forced =
                cell.value ? (data | mask) : (data & ~mask);
            if (forced != data) {
                data = forced;
                countStuck(1);
            }
        }
    }
    return data;
}

void
FaultyDevice::act(BankId b, RowAddr row, NanoTime now)
{
    onCommand();
    inner_->act(b, row, now);
    // Mirror the chip FSM: ACT to an already-open bank is a recorded
    // violation that leaves the open row unchanged.
    if (b < open_row_.size() && !open_row_[b])
        open_row_[b] = row;
}

void
FaultyDevice::pre(BankId b, NanoTime now)
{
    onCommand();
    inner_->pre(b, now);
    if (b < open_row_.size())
        open_row_[b].reset();
}

uint64_t
FaultyDevice::read(BankId b, ColAddr col, NanoTime now)
{
    const uint64_t cmd_seq = onCommand();
    return corruptRead(b, col, inner_->read(b, col, now), cmd_seq);
}

void
FaultyDevice::write(BankId b, ColAddr col, uint64_t data, NanoTime now)
{
    onCommand();
    inner_->write(b, col, data, now);
}

void
FaultyDevice::refresh(NanoTime now)
{
    onCommand();
    inner_->refresh(now);
}

void
FaultyDevice::actManyFaulted(const ActTrain &train, bool analytic)
{
    if (dead_)
        throw DeviceDeadError("device is dead (die:cmd=" +
                              std::to_string(spec_.dieAfterCommands) +
                              " reached)");
    const uint64_t total = 2 * train.count;

    // First faulting command offset within the train, decided exactly
    // as `total` step-wise onCommand() calls would decide it: death
    // checks precede drop draws at every index.
    uint64_t fault_at = total;
    bool death = false;
    if (spec_.dieAfterCommands > 0 &&
        lifetime_commands_ + total > spec_.dieAfterCommands) {
        fault_at = spec_.dieAfterCommands - lifetime_commands_;
        death = true;
    }
    if (spec_.dropRate > 0.0) {
        const uint64_t key = hashCombine(stream_key_, kDropTag);
        for (uint64_t j = 0; j < fault_at; ++j) {
            if (hashUniform(key, stream_commands_ + j) < spec_.dropRate) {
                fault_at = j;
                death = false;
                break;
            }
        }
    }

    if (fault_at == total) {
        stream_commands_ += total;
        lifetime_commands_ += total;
        if (analytic)
            inner_->actManyAnalytic(train);
        else
            inner_->actMany(train);
        return;
    }

    // Forward the fault-free prefix: complete pairs via the bulk
    // path, plus the lone ACT when the fault lands on a PRE (the
    // bank is left open, exactly as step-wise execution leaves it).
    const uint64_t pairs = fault_at / 2;
    if (pairs > 0) {
        ActTrain head = train;
        head.count = pairs;
        if (analytic)
            inner_->actManyAnalytic(head);
        else
            inner_->actMany(head);
    }
    if (fault_at % 2 == 1) {
        inner_->act(train.bank, train.row, train.actNs(pairs));
        if (train.bank < open_row_.size() && !open_row_[train.bank])
            open_row_[train.bank] = train.row;
    }
    // The faulting command itself advanced the counters step-wise.
    stream_commands_ += fault_at + 1;
    lifetime_commands_ += fault_at + 1;

    if (death) {
        dead_ = true;
        counts_.deaths = 1;
        if (dead_counter_ && dead_counter_->value == 0)
            dead_counter_->add(1);
        DeviceDeadError err(
            "device died after " +
            std::to_string(spec_.dieAfterCommands) + " commands");
        err.trainCommandsDone = fault_at;
        throw err;
    }
    ++counts_.drops;
    if (drop_counter_)
        drop_counter_->add(1);
    TransientFaultError err("command dropped (injected)");
    err.trainCommandsDone = fault_at;
    throw err;
}

void
FaultyDevice::actMany(const ActTrain &train)
{
    actManyFaulted(train, /*analytic=*/false);
}

void
FaultyDevice::actManyAnalytic(const ActTrain &train)
{
    actManyFaulted(train, /*analytic=*/true);
}

uint64_t
FaultyDevice::violationCount() const
{
    return inner_->violationCount();
}

std::vector<TimingViolation>
FaultyDevice::violationLog() const
{
    return inner_->violationLog();
}

uint32_t
FaultyDevice::refreshAggressorNeighbors(BankId b, RowAddr row,
                                        NanoTime now)
{
    onCommand();
    return inner_->refreshAggressorNeighbors(b, row, now);
}

} // namespace dram
} // namespace dramscope
