/**
 * @file
 * The abstract DRAM command interface: the exact surface the paper's
 * FPGA platform (DRAM Bender) exposes to experiments — ACT / PRE /
 * RD / WR / REF plus timing-violation reporting.
 *
 * Everything above this line (bender::Host, RE tools, the
 * characterization suite, the protection models) is written against
 * Device and therefore runs unchanged whether the commands land on a
 * single chip, a registered DIMM rank (RCD address inversion + DQ
 * twist applied inside), or one HBM channel.
 *
 * Implementations accept any command sequence, including out-of-spec
 * ones (RowCopy is an ACT inside tRP): violations are *recorded*, and
 * the analog consequences are modeled rather than rejected.
 */

#ifndef DRAMSCOPE_DRAM_DEVICE_H
#define DRAMSCOPE_DRAM_DEVICE_H

#include <string>
#include <vector>

#include "dram/config.h"
#include "dram/types.h"

namespace dramscope {
namespace dram {

/** One recorded command timing violation. */
struct TimingViolation
{
    std::string what;
    NanoTime when;
};

/** Abstract command/data interface of one device under test. */
class Device
{
  public:
    virtual ~Device();

    /** Host-visible geometry and timing of this device. */
    virtual const DeviceConfig &config() const = 0;

    /** Activates @p row in bank @p b at time @p now (ns). */
    virtual void act(BankId b, RowAddr row, NanoTime now) = 0;

    /** Precharges bank @p b. */
    virtual void pre(BankId b, NanoTime now) = 0;

    /**
     * Reads one RD_data burst (config().rdDataBits bits, LSB = bit 0)
     * from the open row of bank @p b at column @p col.
     */
    virtual uint64_t read(BankId b, ColAddr col, NanoTime now) = 0;

    /** Writes one RD_data burst to the open row. */
    virtual void write(BankId b, ColAddr col, uint64_t data,
                       NanoTime now) = 0;

    /** Refresh; all banks must be precharged. */
    virtual void refresh(NanoTime now) = 0;

    /**
     * Bulk hammering fast path: semantically identical to @p count
     * repetitions of ACT(row), wait @p open_ns, PRE, wait tRP, with
     * no other commands interleaved.  One virtual call covers the
     * whole loop, so the fast path never pays per-iteration dispatch.
     * The bank must start and end precharged.
     * @param start Time of the first ACT.
     * @param last_pre Time the last PRE command is issued.
     */
    virtual void actMany(BankId b, RowAddr row, uint64_t count,
                         double open_ns, NanoTime start,
                         NanoTime last_pre) = 0;

    /** Total timing violations recorded so far (never truncated). */
    virtual uint64_t violationCount() const = 0;

    /**
     * Recorded violation entries (implementations may cap the log;
     * violationCount() keeps the true total).
     */
    virtual std::vector<TimingViolation> violationLog() const = 0;

    /**
     * In-DRAM mitigation primitive (RFM / DRFM, SS VI-B): refreshes
     * the physically adjacent rows of @p row — resolved through the
     * device's *internal* knowledge (row remap, coupled-row relation,
     * subarray boundaries, and per-chip addressing on a DIMM).
     * @p row is a host/logical address.  Returns rows restored.
     */
    virtual uint32_t refreshAggressorNeighbors(BankId b, RowAddr row,
                                               NanoTime now) = 0;

  protected:
    Device() = default;
    Device(const Device &) = default;
    Device &operator=(const Device &) = default;
};

} // namespace dram
} // namespace dramscope

#endif // DRAMSCOPE_DRAM_DEVICE_H
