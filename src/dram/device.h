/**
 * @file
 * The abstract DRAM command interface: the exact surface the paper's
 * FPGA platform (DRAM Bender) exposes to experiments — ACT / PRE /
 * RD / WR / REF plus timing-violation reporting.
 *
 * Everything above this line (bender::Host, RE tools, the
 * characterization suite, the protection models) is written against
 * Device and therefore runs unchanged whether the commands land on a
 * single chip, a registered DIMM rank (RCD address inversion + DQ
 * twist applied inside), or one HBM channel.
 *
 * Implementations accept any command sequence, including out-of-spec
 * ones (RowCopy is an ACT inside tRP): violations are *recorded*, and
 * the analog consequences are modeled rather than rejected.
 */

#ifndef DRAMSCOPE_DRAM_DEVICE_H
#define DRAMSCOPE_DRAM_DEVICE_H

#include <optional>
#include <string>
#include <vector>

#include "dram/config.h"
#include "dram/types.h"

namespace dramscope {
namespace dram {

/** One recorded command timing violation. */
struct TimingViolation
{
    std::string what;
    NanoTime when;
};

/**
 * Fast-forward mode registry: X(Enumerator, keyword, summary).  The
 * README's DRAMSCOPE_FASTPATH mode table documents exactly these
 * keywords, in this order — tools/check_docs.py fails CI on drift.
 */
#define DRAMSCOPE_FASTPATH_MODES(X)                                     \
    X(Off, "off",                                                       \
      "hammer loops execute slot by slot (step-wise reference engine)") \
    X(Exact, "exact",                                                   \
      "certified loops batch into one train, bit-identical to off")     \
    X(Analytic, "analytic",                                             \
      "large trains commit one sampled aggregate dose per victim")

/** How bender::Host executes certified constant-duration loops. */
enum class FastPathMode : uint8_t
{
#define X(Enumerator, keyword, summary) Enumerator,
    DRAMSCOPE_FASTPATH_MODES(X)
#undef X
};

/** The spec keyword of a mode ("off", "exact", "analytic"). */
const char *toString(FastPathMode mode);

/** Parses a mode keyword; nullopt on an unknown string. */
std::optional<FastPathMode> fastPathModeFromString(const std::string &s);

/**
 * Mode selected by the DRAMSCOPE_FASTPATH environment variable, read
 * by bender::Host at construction.  Unset or unrecognized values
 * select Exact: the batched train is proven bit-identical to the
 * step-wise engine (tests/test_fastforward.cc), so it is the default.
 */
FastPathMode fastPathModeFromEnv();

/**
 * One certified bulk ACT train: @c count repetitions of ACT(row),
 * wait @c openPs, PRE, wait (periodPs - openPs - tCK)... with no
 * other commands interleaved and the bank starting precharged.
 *
 * All times are integer picoseconds of the host clock; the device
 * sees truncated-ns timestamps through the helpers below, exactly
 * the values a slot-by-slot execution would have produced.
 */
struct ActTrain
{
    BankId bank = 0;
    RowAddr row = 0;      //!< Logical (host) row address.
    uint64_t count = 0;   //!< ACT-PRE pairs.
    int64_t startPs = 0;  //!< Host clock at the first ACT.
    int64_t openPs = 0;   //!< ACT-to-PRE issue distance.
    int64_t periodPs = 0; //!< ACT-to-ACT distance (whole body).

    /** Open-row (ACT..PRE) time in ns. */
    double openNs() const { return double(openPs) / 1000.0; }

    /** Activation period in ns. */
    double periodNs() const { return double(periodPs) / 1000.0; }

    /** Issue time of the k-th ACT (truncated ns, like Host::now). */
    NanoTime actNs(uint64_t k) const
    {
        return NanoTime((startPs + int64_t(k) * periodPs) / 1000);
    }

    /** Issue time of the k-th PRE. */
    NanoTime preNs(uint64_t k) const
    {
        return NanoTime(
            (startPs + int64_t(k) * periodPs + openPs) / 1000);
    }

    NanoTime startNs() const { return NanoTime(startPs / 1000); }
    NanoTime lastActNs() const { return actNs(count ? count - 1 : 0); }
    NanoTime lastPreNs() const { return preNs(count ? count - 1 : 0); }
};

/** Abstract command/data interface of one device under test. */
class Device
{
  public:
    virtual ~Device();

    /** Host-visible geometry and timing of this device. */
    virtual const DeviceConfig &config() const = 0;

    /** Activates @p row in bank @p b at time @p now (ns). */
    virtual void act(BankId b, RowAddr row, NanoTime now) = 0;

    /** Precharges bank @p b. */
    virtual void pre(BankId b, NanoTime now) = 0;

    /**
     * Reads one RD_data burst (config().rdDataBits bits, LSB = bit 0)
     * from the open row of bank @p b at column @p col.
     */
    virtual uint64_t read(BankId b, ColAddr col, NanoTime now) = 0;

    /** Writes one RD_data burst to the open row. */
    virtual void write(BankId b, ColAddr col, uint64_t data,
                       NanoTime now) = 0;

    /** Refresh; all banks must be precharged. */
    virtual void refresh(NanoTime now) = 0;

    /**
     * Bulk hammering fast path, bit-exact: one virtual call replays
     * the whole certified train with the same state transitions,
     * violation records and physics bookkeeping as the equivalent
     * slot-by-slot ACT/PRE sequence — so it never pays per-iteration
     * dispatch but stays byte-identical to the step-wise engine.
     * The bank must start (and therefore end) precharged.
     */
    virtual void actMany(const ActTrain &train) = 0;

    /**
     * Bulk hammering fast path, analytic: like actMany() but the
     * accumulated disturbance dose of the train commits immediately
     * through Bank::applyAggregateDose — exact per-cell threshold
     * replay for small trains, Bernoulli sampling of the per-cell
     * flip probability for large ones.  Statistically equivalent to
     * the step-wise engine (see tests/test_fastforward.cc), and
     * deterministic for a fixed seed.
     */
    virtual void actManyAnalytic(const ActTrain &train) = 0;

    /** Total timing violations recorded so far (never truncated). */
    virtual uint64_t violationCount() const = 0;

    /**
     * Recorded violation entries (implementations may cap the log;
     * violationCount() keeps the true total).
     */
    virtual std::vector<TimingViolation> violationLog() const = 0;

    /**
     * In-DRAM mitigation primitive (RFM / DRFM, SS VI-B): refreshes
     * the physically adjacent rows of @p row — resolved through the
     * device's *internal* knowledge (row remap, coupled-row relation,
     * subarray boundaries, and per-chip addressing on a DIMM).
     * @p row is a host/logical address.  Returns rows restored.
     */
    virtual uint32_t refreshAggressorNeighbors(BankId b, RowAddr row,
                                               NanoTime now) = 0;

  protected:
    Device() = default;
    Device(const Device &) = default;
    Device &operator=(const Device &) = default;
};

} // namespace dram
} // namespace dramscope

#endif // DRAMSCOPE_DRAM_DEVICE_H
