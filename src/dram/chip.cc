/**
 * @file
 * Chip command FSM implementation.
 */

#include "dram/chip.h"

#include "util/log.h"

namespace dramscope {
namespace dram {

Chip::Chip(DeviceConfig cfg)
    : cfg_(std::move(cfg)),
      map_(std::make_unique<SubarrayMap>(cfg_)),
      swizzle_(cfg_)
{
    cfg_.validate();
    for (uint32_t b = 0; b < cfg_.numBanks; ++b)
        banks_.push_back(std::make_unique<Bank>(cfg_, *map_, BankId(b)));
    fsm_.resize(cfg_.numBanks);
}

Bank &
Chip::bank(BankId b)
{
    panicIf(b >= banks_.size(), "Chip::bank out of range");
    return *banks_[b];
}

RowAddr
Chip::toPhysical(RowAddr logical_row) const
{
    panicIf(logical_row >= cfg_.rowsPerBank, "row address out of range");
    return remapRow(cfg_.rowRemap, logical_row);
}

std::optional<RowAddr>
Chip::coupledPartner(RowAddr phys_row) const
{
    if (!cfg_.coupledRowDistance)
        return std::nullopt;
    // The distance is rowsPerBank / 2 (a power of two), so the pair
    // relation is an XOR with the distance.
    return phys_row ^ *cfg_.coupledRowDistance;
}

void
Chip::violate(const std::string &what, NanoTime now)
{
    ++violation_count_;
    if (violations_.size() < 1024)
        violations_.push_back({what, now});
}

uint64_t
Chip::wordlineCost(RowAddr phys_row) const
{
    // An edge-subarray access drives the tandem structure of the
    // paired edge subarray as well, doubling activation energy (O5,
    // SS VI-C).
    return map_->inEdgeSubarray(phys_row) ? 2 : 1;
}

void
Chip::act(BankId b, RowAddr logical_row, NanoTime now)
{
    BankFsm &f = fsm_.at(b);
    Bank &bk = *banks_[b];
    if (f.state == BankState::Open) {
        violate("ACT to open bank", now);
        return;
    }

    const RowAddr phys = toPhysical(logical_row);
    const auto partner = coupledPartner(phys);

    bk.restoreRow(phys, now);
    if (partner)
        bk.restoreRow(*partner, now);

    // Out-of-spec ACT-PRE-ACT: the bitlines still hold the previous
    // row, so its values charge-share into the new row (RowCopy).
    const double gap_ns = double(now - f.preTime);
    if (f.hasLastRow && gap_ns >= 0 &&
        gap_ns < cfg_.timing.rowCopyMaxGapNs) {
        violate("ACT within tRP (RowCopy)", now);
        bk.applyRowCopy(f.lastRow, phys, now);
        if (partner && f.lastHadPartner)
            bk.applyRowCopy(f.lastPartner, *partner, now);
    }

    f.state = BankState::Open;
    f.openRow = phys;
    f.hasPartner = partner.has_value();
    f.partnerRow = partner.value_or(0);
    f.actTime = now;
    f.wrBarrierDone = false;

    ++stats_.acts;
    stats_.wordlinesDriven += wordlineCost(phys);
    if (partner)
        stats_.wordlinesDriven += wordlineCost(*partner);
}

void
Chip::pre(BankId b, NanoTime now)
{
    BankFsm &f = fsm_.at(b);
    Bank &bk = *banks_[b];
    if (f.state != BankState::Open) {
        // Precharging an idle bank is a harmless NOP (PREA behaviour).
        ++stats_.pres;
        return;
    }
    const double dwell_ns = double(now - f.actTime);
    if (dwell_ns < cfg_.timing.tRasNs)
        violate("PRE within tRAS", now);

    bk.registerAggressorDwell(f.openRow, 1.0, dwell_ns, now);
    if (f.hasPartner)
        bk.registerAggressorDwell(f.partnerRow, 1.0, dwell_ns, now);

    f.hasLastRow = true;
    f.lastRow = f.openRow;
    f.lastHadPartner = f.hasPartner;
    f.lastPartner = f.partnerRow;
    f.preTime = now;
    f.state = BankState::Idle;
    ++stats_.pres;
}

uint64_t
Chip::read(BankId b, ColAddr col, NanoTime now)
{
    BankFsm &f = fsm_.at(b);
    Bank &bk = *banks_[b];
    if (f.state != BankState::Open) {
        violate("RD to closed bank", now);
        return 0;
    }
    if (double(now - f.actTime) < cfg_.timing.tRcdNs)
        violate("RD within tRCD", now);
    panicIf(col >= cfg_.columnsPerRow(), "RD: column out of range");

    uint64_t data = 0;
    const bool invert = !bk.chargeToData(f.openRow, true);
    const BitVec &charge = bk.chargeRef(f.openRow, now);
    for (uint32_t i = 0; i < cfg_.rdDataBits; ++i) {
        const BitlineIdx bl = swizzle_.physicalBl(col, i);
        if (charge.get(bl) != invert)
            data |= 1ULL << i;
    }
    ++stats_.reads;
    return data;
}

void
Chip::write(BankId b, ColAddr col, uint64_t data, NanoTime now)
{
    BankFsm &f = fsm_.at(b);
    Bank &bk = *banks_[b];
    if (f.state != BankState::Open) {
        violate("WR to closed bank", now);
        return;
    }
    if (double(now - f.actTime) < cfg_.timing.tRcdNs)
        violate("WR within tRCD", now);
    panicIf(col >= cfg_.columnsPerRow(), "WR: column out of range");

    // Barrier: the open row's data is an input to the pending dose of
    // its AIB neighbours, so commit them before changing it.  While
    // the row stays open the bank cannot activate, so one barrier per
    // activation covers every write of the session.
    if (!f.wrBarrierDone) {
        for (int dir = 0; dir < 2; ++dir) {
            if (auto nb = map_->neighbor(f.openRow, dir == 1))
                bk.commitRow(*nb, now);
        }
        f.wrBarrierDone = true;
    }

    const bool invert = !bk.dataToCharge(f.openRow, true);
    BitVec &charge = bk.chargeRef(f.openRow, now);
    for (uint32_t i = 0; i < cfg_.rdDataBits; ++i) {
        const BitlineIdx bl = swizzle_.physicalBl(col, i);
        const bool bit = (data >> i) & 1ULL;
        charge.set(bl, bit != invert);
    }
    ++stats_.writes;
}

void
Chip::refresh(NanoTime now)
{
    for (uint32_t b = 0; b < cfg_.numBanks; ++b) {
        if (fsm_[b].state != BankState::Idle)
            violate("REF with open bank", now);
    }
    for (auto &bk : banks_)
        bk->refreshAll(now);
    ++stats_.refs;
}

bool
Chip::trainBatchable(const ActTrain &t) const
{
    // Per-iteration dwell and gap are differences of truncated-ns
    // timestamps: they are only iteration-independent when the open
    // and period are whole nanoseconds (every in-tree kernel is).
    if (t.openPs % 1000 != 0 || t.periodPs % 1000 != 0)
        return false;
    // A period reaching the retention evaluation window would let
    // mid-train restores find decays the batched math skips.
    return t.periodNs() < cfg_.retention.minEvalElapsedMs * 1.0e6;
}

void
Chip::replayTrain(const ActTrain &t)
{
    for (uint64_t k = 0; k < t.count; ++k) {
        act(t.bank, t.row, t.actNs(k));
        pre(t.bank, t.preNs(k));
    }
}

void
Chip::runTrain(const ActTrain &t, bool analytic)
{
    if (t.count == 0)
        return;
    BankFsm &f = fsm_.at(t.bank);
    if (f.state == BankState::Open) {
        violate("actMany to open bank", t.startNs());
        return;
    }
    if (!trainBatchable(t)) {
        replayTrain(t);
        return;
    }

    Bank &bk = *banks_[t.bank];
    const RowAddr phys = toPhysical(t.row);
    const auto partner = coupledPartner(phys);
    const NanoTime first_act = t.actNs(0);
    const NanoTime first_pre = t.preNs(0);
    const NanoTime last_act = t.lastActNs();
    const double dwell_ns = double(t.openPs / 1000);
    const double gap_ns = double((t.periodPs - t.openPs) / 1000);

    // First ACT: restore, then the boundary RowCopy check against
    // the previous PRE — the exact act() sequence.
    bk.restoreRow(phys, first_act);
    if (partner)
        bk.restoreRow(*partner, first_act);
    const double gap0_ns = double(first_act - f.preTime);
    if (f.hasLastRow && gap0_ns >= 0 &&
        gap0_ns < cfg_.timing.rowCopyMaxGapNs) {
        violate("ACT within tRP (RowCopy)", first_act);
        bk.applyRowCopy(f.lastRow, phys, first_act);
        if (partner && f.lastHadPartner)
            bk.applyRowCopy(f.lastPartner, *partner, first_act);
    }

    // Per-iteration violations keep step-wise order and timestamps.
    // A mid-train ACT inside the RowCopy gap re-activates the row the
    // bitlines already hold: applyRowCopy(r, r) transfers nothing, so
    // only the violation record remains.
    const bool pre_violates = dwell_ns < cfg_.timing.tRasNs;
    const bool act_violates = gap_ns < cfg_.timing.rowCopyMaxGapNs;
    if (pre_violates || act_violates) {
        for (uint64_t k = 0; k < t.count; ++k) {
            if (k > 0 && act_violates)
                violate("ACT within tRP (RowCopy)", t.actNs(k));
            if (pre_violates)
                violate("PRE within tRAS", t.preNs(k));
        }
    }

    // Victims materialize at the first PRE (where the step-wise
    // engine first registers a dwell); pendings are integer sums, so
    // one batched addition is exact.
    if (analytic) {
        bk.applyAggregateDose(phys, double(t.count), dwell_ns, first_pre);
        if (partner)
            bk.applyAggregateDose(*partner, double(t.count), dwell_ns,
                                  first_pre);
    } else {
        bk.registerAggressorDwell(phys, double(t.count), dwell_ns,
                                  first_pre);
        if (partner)
            bk.registerAggressorDwell(*partner, double(t.count), dwell_ns,
                                      first_pre);
    }
    if (t.count > 1) {
        // Mid-train restores of the aggressor commit nothing (no
        // pending lands on a single-row train's own aggressor and the
        // retention window exceeds the period); only the final ACT's
        // restore timestamp survives.
        bk.markRestored(phys, last_act);
        if (partner)
            bk.markRestored(*partner, last_act);
    }

    // Leave every FSM field exactly where slot-by-slot execution
    // would: the last ACT wrote the open-row view, the last PRE
    // closed the bank.
    f.openRow = phys;
    f.hasPartner = partner.has_value();
    f.partnerRow = partner.value_or(0);
    f.actTime = last_act;
    f.wrBarrierDone = false;
    f.hasLastRow = true;
    f.lastRow = phys;
    f.lastHadPartner = partner.has_value();
    f.lastPartner = partner.value_or(0);
    f.preTime = t.lastPreNs();
    f.state = BankState::Idle;

    stats_.acts += t.count;
    stats_.pres += t.count;
    uint64_t per_act = wordlineCost(phys);
    if (partner)
        per_act += wordlineCost(*partner);
    stats_.wordlinesDriven += per_act * t.count;
}

void
Chip::actMany(const ActTrain &t)
{
    runTrain(t, /*analytic=*/false);
}

void
Chip::actManyAnalytic(const ActTrain &t)
{
    runTrain(t, /*analytic=*/true);
}

bool
Chip::isOpen(BankId b) const
{
    return fsm_.at(b).state == BankState::Open;
}

RowAddr
Chip::openPhysicalRow(BankId b) const
{
    const BankFsm &f = fsm_.at(b);
    panicIf(f.state != BankState::Open, "openPhysicalRow: bank closed");
    return f.openRow;
}

uint32_t
Chip::refreshAggressorNeighbors(BankId b, RowAddr logical_row,
                                NanoTime now)
{
    // The device translates through its own remap and knows the
    // coupled relation — exactly why the paper favours in-DRAM
    // RFM/DRFM mitigation for coupled-row protection (SS VI-B).
    uint32_t restored = 0;
    auto restore_around = [&](RowAddr phys_row) {
        for (const bool upper : {false, true}) {
            if (const auto nb = map_->neighbor(phys_row, upper)) {
                bank(b).restoreRow(*nb, now);
                ++restored;
            }
        }
    };
    const RowAddr phys = toPhysical(logical_row);
    restore_around(phys);
    if (const auto partner = coupledPartner(phys))
        restore_around(*partner);
    return restored;
}

} // namespace dram
} // namespace dramscope
