/**
 * @file
 * Deterministic fault injection behind the Device interface.
 *
 * Real characterization campaigns (the paper's 376 chips, hours of
 * unattended runs) meet misbehaving silicon: cells stuck at one
 * value, transient read errors, commands lost on the bus, and chips
 * that die outright partway through.  FaultyDevice is a Device
 * decorator that reproduces those failure modes *deterministically*
 * in front of any backend (Chip, Dimm rank, HBM channel), so the
 * resilience machinery above it — shard retry, quarantine,
 * checkpoint/resume (core/sweep.h) — can be exercised and regression
 * tested bit-for-bit.
 *
 * Determinism contract
 * --------------------
 * Every fault decision is a stateless hash of
 * (spec seed, shard stream, command index [, bit index]) — never of
 * wall-clock time or scheduling.  SweepRunner rebases the stream via
 * beginShard(shard, attempt) at every shard attempt, so a parallel
 * sweep injects exactly the faults a serial sweep does, and a retried
 * attempt sees a *fresh* fault stream (a transiently dropped command
 * does not re-drop forever).  The hard-death counter is lifetime
 * (never rebased): a dead device stays dead.
 *
 * Fault grammar (one comma-separated spec string, shared by the CLI
 * `--faults=` flag, tests, and docs/RESILIENCE.md — the clause
 * registry below is machine-checked against the docs):
 *
 *   stuck@B.R.C.BIT=V   cell (bank B, row R, col C, RD bit BIT)
 *                       always reads V (0 or 1)
 *   flip:RATE           each read bit flips with probability RATE
 *   drop:RATE           each command errors with probability RATE
 *                       (throws TransientFaultError)
 *   die:cmd=N           device dies after N commands; every later
 *                       command throws DeviceDeadError
 *   seed:S              base seed of the fault streams (default 1)
 *
 * Example: "stuck@0.100.3.7=1,flip:1e-6,die:cmd=50000"
 */

#ifndef DRAMSCOPE_DRAM_FAULTY_DEVICE_H
#define DRAMSCOPE_DRAM_FAULTY_DEVICE_H

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "dram/device.h"
#include "util/metrics.h"

namespace dramscope {
namespace dram {

/**
 * Clause registry of the fault grammar: X(Enumerator, keyword,
 * summary).  docs/RESILIENCE.md documents exactly these keywords, in
 * this order — tools/check_docs.py fails CI on drift.
 */
#define DRAMSCOPE_FAULT_CLAUSES(X)                                      \
    X(Stuck, "stuck",                                                   \
      "stuck@B.R.C.BIT=V: the cell always reads V")                     \
    X(Flip, "flip",                                                     \
      "flip:RATE: each read bit flips with probability RATE")           \
    X(Drop, "drop",                                                     \
      "drop:RATE: each command errors with probability RATE")           \
    X(Die, "die",                                                       \
      "die:cmd=N: hard device death after N commands")                  \
    X(Seed, "seed",                                                     \
      "seed:S: base seed of the fault streams")

/** Base class of every injected-fault error. */
class FaultError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;

    /**
     * Commands of an aborted bulk train that executed before the
     * fault (0 for single-command faults).  bender::Host uses it to
     * rewind its clock to the faulting command's issue slot, exactly
     * where step-wise execution would have stopped.
     */
    uint64_t trainCommandsDone = 0;
};

/**
 * A transiently dropped/erroring command (retriable: a fresh attempt
 * with a rebased fault stream may succeed).
 */
class TransientFaultError : public FaultError
{
  public:
    using FaultError::FaultError;
};

/**
 * Hard device death (permanent: the sweep layer quarantines the
 * shard immediately instead of retrying).
 */
class DeviceDeadError : public FaultError
{
  public:
    using FaultError::FaultError;
};

/** One stuck-at cell: (bank, logical row, column, RD bit) reads V. */
struct StuckCell
{
    BankId bank = 0;
    RowAddr row = 0;
    ColAddr col = 0;
    uint32_t bit = 0;   //!< RD_data bit index.
    bool value = false; //!< The value the cell is stuck at.

    bool operator==(const StuckCell &) const = default;
};

/** Parsed fault specification (see the grammar above). */
struct FaultSpec
{
    std::vector<StuckCell> stuck;
    double flipRate = 0.0;          //!< Per-read-bit flip probability.
    double dropRate = 0.0;          //!< Per-command error probability.
    uint64_t dieAfterCommands = 0;  //!< 0 = never dies.
    uint64_t seed = 1;              //!< Base seed of the fault streams.

    /** True when the spec injects nothing. */
    bool empty() const
    {
        return stuck.empty() && flipRate == 0.0 && dropRate == 0.0 &&
               dieAfterCommands == 0;
    }

    /** Canonical spec string (parse(toString()) round-trips). */
    std::string toString() const;

    /**
     * Parses a spec string.  Returns nullopt on a malformed clause
     * and, when @p error is non-null, stores a one-line diagnostic.
     * The empty string parses to an empty spec.
     */
    static std::optional<FaultSpec> parse(const std::string &spec,
                                          std::string *error = nullptr);
};

/** Counts of faults injected so far (also exported as metrics). */
struct FaultCounts
{
    uint64_t flips = 0;   //!< Transient read bits flipped.
    uint64_t stuck = 0;   //!< Reads forced by a stuck-at cell.
    uint64_t drops = 0;   //!< Commands dropped (TransientFaultError).
    uint64_t deaths = 0;  //!< 1 once the device has died.
};

/**
 * Device decorator injecting the faults of a FaultSpec in front of
 * any backend.  Forwarding is exact when the spec is empty: a
 * FaultyDevice with no faults is bit-identical to its inner device.
 */
class FaultyDevice final : public Device
{
  public:
    /** Wraps a borrowed device (must outlive the decorator). */
    FaultyDevice(Device &inner, FaultSpec spec);

    /** Wraps and owns a device (replica-factory construction). */
    FaultyDevice(std::unique_ptr<Device> inner, FaultSpec spec);

    const DeviceConfig &config() const override;

    void act(BankId b, RowAddr row, NanoTime now) override;
    void pre(BankId b, NanoTime now) override;
    uint64_t read(BankId b, ColAddr col, NanoTime now) override;
    void write(BankId b, ColAddr col, uint64_t data,
               NanoTime now) override;
    void refresh(NanoTime now) override;
    void actMany(const ActTrain &train) override;
    void actManyAnalytic(const ActTrain &train) override;
    uint64_t violationCount() const override;
    std::vector<TimingViolation> violationLog() const override;
    uint32_t refreshAggressorNeighbors(BankId b, RowAddr row,
                                       NanoTime now) override;

    /** The active fault specification. */
    const FaultSpec &spec() const { return spec_; }

    /** Faults injected so far. */
    const FaultCounts &counts() const { return counts_; }

    /** True once the device has died (die:cmd=N reached). */
    bool dead() const { return dead_; }

    /** Commands issued over the device's lifetime (incl. dropped). */
    uint64_t lifetimeCommands() const { return lifetime_commands_; }

    /**
     * Rebases the fault stream for one shard attempt: stream =
     * hash(spec seed, shard, attempt).  SweepRunner calls this at
     * every attempt boundary so fault injection is keyed by shard
     * index (never by scheduling) and a retry draws fresh faults.
     * The lifetime command counter (hard death) is NOT rebased.
     */
    void beginShard(uint64_t shard, uint32_t attempt);

    /**
     * Attaches (or detaches) a metrics registry receiving the
     * faults.injected.{flip,stuck,drop} and faults.device.dead
     * counters.  Borrowed; must outlive the attachment.
     */
    void setMetrics(obs::MetricsRegistry *metrics);

    /** The attached metrics registry (nullptr when detached). */
    obs::MetricsRegistry *metrics() const { return metrics_; }

  private:
    /**
     * Per-command bookkeeping shared by every single-command entry
     * point: advances the lifetime and stream counters, throws
     * DeviceDeadError when dead, and throws TransientFaultError on a
     * dropped command.
     * @return The stream index assigned to this command.
     */
    uint64_t onCommand();

    /**
     * Bulk-train forwarding with exact per-command fault replay: the
     * train's 2 * count commands draw the same death/drop decisions
     * at the same stream indices as 2 * count step-wise commands.  A
     * fault-free train forwards whole; a fault mid-train forwards
     * the fault-free prefix (complete pairs via the bulk path, plus
     * the lone ACT when the fault lands on a PRE), then throws with
     * trainCommandsDone set.
     */
    void actManyFaulted(const ActTrain &train, bool analytic);

    /** Applies flip + stuck-at faults to one RD_data burst. */
    uint64_t corruptRead(BankId b, ColAddr col, uint64_t data,
                         uint64_t cmd_seq);

    void countFlip(uint64_t n);
    void countStuck(uint64_t n);

    Device *inner_;
    std::unique_ptr<Device> owned_;  //!< Non-null when owning.
    FaultSpec spec_;
    FaultCounts counts_;

    uint64_t stream_key_;          //!< hash(seed, shard, attempt).
    uint64_t stream_commands_ = 0; //!< Commands in the current stream.
    uint64_t lifetime_commands_ = 0;
    bool dead_ = false;

    /** Mirror of the open logical row per bank (stuck-at lookup). */
    std::vector<std::optional<RowAddr>> open_row_;

    obs::MetricsRegistry *metrics_ = nullptr;
    obs::Counter *flip_counter_ = nullptr;
    obs::Counter *stuck_counter_ = nullptr;
    obs::Counter *drop_counter_ = nullptr;
    obs::Counter *dead_counter_ = nullptr;
};

} // namespace dram
} // namespace dramscope

#endif // DRAMSCOPE_DRAM_FAULTY_DEVICE_H
