/**
 * @file
 * Device configuration: the ground truth that the reverse-engineering
 * layer must recover through memory commands alone.
 *
 * Presets mirror the paper's tested population (Table I) and the
 * microarchitectural structures it uncovered (Table III).
 */

#ifndef DRAMSCOPE_DRAM_CONFIG_H
#define DRAMSCOPE_DRAM_CONFIG_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dram/disturb_params.h"
#include "dram/energy_params.h"
#include "dram/types.h"

namespace dramscope {
namespace dram {

/** One run of equal-height subarrays inside the repeating pattern. */
struct SubarrayPatternEntry
{
    uint32_t count;   //!< Number of consecutive subarrays of this height.
    uint32_t height;  //!< Rows per subarray.
};

/** Command timing parameters (ns).  Defaults model DDR4-1600. */
struct TimingParams
{
    double tCkNs = 1.25;        //!< Minimum command spacing (paper SS III-A).
    double tRcdNs = 13.75;      //!< ACT to RD/WR.
    double tRasNs = 32.0;       //!< ACT to PRE (full restore).
    double tRpNs = 13.75;       //!< PRE to next ACT (full precharge).
    double tRfcNs = 350.0;      //!< REF to next command.
    double tRefiNs = 7800.0;    //!< Nominal refresh command interval.
    double refreshWindowMs = 64.0;  //!< Retention window per JEDEC.
    double tRrdNs = 5.0;        //!< ACT to ACT, different banks.
    double tFawNs = 25.0;       //!< Window holding at most four ACTs.

    /** ACT to ACT on the same bank (tRAS + tRP). */
    double tRcNs() const { return tRasNs + tRpNs; }

    /**
     * ACT issued within this many ns after PRE finds the bitlines
     * still holding the previous row's values, triggering the
     * RowCopy charge transfer (an out-of-spec operation).
     */
    double rowCopyMaxGapNs = 6.0;
};

/** Data retention model parameters. */
struct RetentionParams
{
    /** Median cell retention time at the 75C reference (ms). */
    double medianRetentionMs = 4000.0;
    /** Lognormal sigma of per-cell retention times. */
    double sigmaLog = 1.1;
    /** Retention halves every this many degrees C above reference. */
    double tempHalveC = 10.0;
    /** Skip retention scans when elapsed time is below this (ms). */
    double minEvalElapsedMs = 25.0;
};

/** How true-/anti-cells are assigned. */
enum class CellPolarityPolicy
{
    AllTrue,                 //!< Mfr. A and B: every cell is a true-cell.
    InterleavedPerSubarray,  //!< Mfr. C: alternating per subarray.
};

/** Internal logical-to-physical row remapping scheme of a chip. */
enum class RowRemapScheme
{
    None,      //!< Mfr. B / C: sequential order preserved.
    MfrA8Blk,  //!< Mfr. A: upper half of each 8-row block reflected.
};

/**
 * Complete description of one simulated DRAM device.
 *
 * The reverse-engineering layer never reads this struct; it is the
 * hidden ground truth that tests compare discovered structure against.
 */
struct DeviceConfig
{
    std::string name;
    Vendor vendor = Vendor::A;
    DramType type = DramType::DDR4;
    ChipWidth width = ChipWidth::X4;
    int year = 2016;
    int densityGb = 8;

    uint32_t numBanks = 4;
    uint32_t rowsPerBank = 131072;  //!< Nrow.
    uint32_t rowBits = 4096;        //!< Cells per logical row.
    uint32_t rdDataBits = 32;       //!< Bits returned per RD per chip.

    /**
     * Repeating subarray composition (Table III): heterogeneous,
     * non-power-of-two subarray heights (O4).
     */
    std::vector<SubarrayPatternEntry> subarrayPattern;

    /**
     * Rows per edge-subarray section: the first and last subarray of
     * every section are edge subarrays working in tandem (O5).
     */
    uint32_t edgeSectionRows = 32768;

    /**
     * Row distance of the coupled-row pair (O3); activating row i
     * also activates row i + distance.  nullopt when not coupled.
     */
    std::optional<uint32_t> coupledRowDistance;

    CellPolarityPolicy polarityPolicy = CellPolarityPolicy::AllTrue;
    RowRemapScheme rowRemap = RowRemapScheme::None;

    uint32_t matWidth = 512;  //!< Cells per row within one MAT (O2).

    /**
     * Intra-group data swizzle: the permutation applied to the
     * groupBits() consecutive cells a MAT contributes to one RD
     * (Figure 7).  Must be a permutation of [0, groupBits()).
     */
    std::vector<uint32_t> swizzlePerm;

    TimingParams timing;
    RetentionParams retention;
    DisturbParams disturb;
    EnergyParams energy;

    double temperatureC = 75.0;
    uint64_t variationSeed = 0xd2a35c09ULL;  //!< Process variation seed.

    /** Number of MATs spanned by one row. */
    uint32_t matsPerRow() const { return rowBits / matWidth; }

    /** Bits each MAT contributes to one RD_data. */
    uint32_t groupBits() const { return rdDataBits / matsPerRow(); }

    /** Column addresses per row (in RD-burst units). */
    uint32_t columnsPerRow() const { return rowBits / rdDataBits; }

    /** Flat addresses the device exposes (banks * rows * columns);
     *  the space mc::AddrDecoder decodes request addresses into. */
    uint64_t addressSpace() const
    {
        return uint64_t(numBanks) * rowsPerBank * columnsPerRow();
    }

    /** Rows in one repeat of the subarray pattern. */
    uint32_t patternRows() const;

    /** Aborts with a diagnostic if the geometry is inconsistent. */
    void validate() const;
};

/** Table I population entry: a distinct (vendor, width, year) group. */
struct PresetInfo
{
    std::string id;     //!< Stable identifier, e.g. "A_x4_2016".
    int chipCount;      //!< Chips of this group tested in the paper.
};

/** Returns the full tested population of the paper (Table I). */
const std::vector<PresetInfo> &presetTable();

/**
 * Builds the device configuration for a preset id from presetTable().
 * fatal()s on unknown ids.
 */
DeviceConfig makePreset(const std::string &id);

/** Convenience list of all preset ids. */
std::vector<std::string> presetIds();

/**
 * A deliberately small configuration for unit tests: same structural
 * features (non-power-of-two subarrays, edge sections, coupling,
 * swizzle) at a fraction of the size.
 */
DeviceConfig makeTinyConfig();

} // namespace dram
} // namespace dramscope

#endif // DRAMSCOPE_DRAM_CONFIG_H
