/**
 * @file
 * Device interface out-of-line anchor (keeps one vtable per binary).
 */

#include "dram/device.h"

namespace dramscope {
namespace dram {

Device::~Device() = default;

} // namespace dram
} // namespace dramscope
