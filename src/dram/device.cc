/**
 * @file
 * Device interface out-of-line anchor (keeps one vtable per binary)
 * and the fast-forward mode registry helpers.
 */

#include "dram/device.h"

#include <cstdlib>

namespace dramscope {
namespace dram {

Device::~Device() = default;

const char *
toString(FastPathMode mode)
{
    switch (mode) {
#define X(Enumerator, keyword, summary)                                 \
      case FastPathMode::Enumerator:                                    \
        return keyword;
        DRAMSCOPE_FASTPATH_MODES(X)
#undef X
    }
    return "off";
}

std::optional<FastPathMode>
fastPathModeFromString(const std::string &s)
{
#define X(Enumerator, keyword, summary)                                 \
    if (s == keyword)                                                   \
        return FastPathMode::Enumerator;
    DRAMSCOPE_FASTPATH_MODES(X)
#undef X
    return std::nullopt;
}

FastPathMode
fastPathModeFromEnv()
{
    const char *env = std::getenv("DRAMSCOPE_FASTPATH");
    if (!env)
        return FastPathMode::Exact;
    return fastPathModeFromString(env).value_or(FastPathMode::Exact);
}

} // namespace dram
} // namespace dramscope
