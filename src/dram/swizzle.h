/**
 * @file
 * Chip-internal data swizzling (O1, Figure 7).
 *
 * One RD command returns rdDataBits bits collected from every MAT the
 * row spans: each MAT contributes groupBits() consecutive cells at
 * column offset col * groupBits(), reordered by the vendor-specific
 * intra-group permutation.  The reverse-engineering layer recovers
 * this map through AIB horizontal influence and RowCopy; this class
 * is the hidden ground truth.
 */

#ifndef DRAMSCOPE_DRAM_SWIZZLE_H
#define DRAMSCOPE_DRAM_SWIZZLE_H

#include <utility>
#include <vector>

#include "dram/config.h"
#include "dram/types.h"
#include "util/log.h"

namespace dramscope {
namespace dram {

/** Bidirectional map between RD_data bit positions and bitlines. */
class Swizzle
{
  public:
    explicit Swizzle(const DeviceConfig &cfg)
        : mats_per_row_(cfg.matsPerRow()), group_bits_(cfg.groupBits()),
          mat_width_(cfg.matWidth), row_bits_(cfg.rowBits),
          perm_(cfg.swizzlePerm), inv_perm_(perm_.size())
    {
        for (uint32_t i = 0; i < perm_.size(); ++i)
            inv_perm_[perm_[i]] = i;
    }

    /**
     * Physical bitline of RD_data bit @p rd_bit at column @p col.
     * rd_bit's MAT is rd_bit % matsPerRow and its intra-group slot is
     * permuted by the vendor swizzle.
     */
    BitlineIdx
    physicalBl(ColAddr col, uint32_t rd_bit) const
    {
        const uint32_t mat = rd_bit % mats_per_row_;
        const uint32_t intra = rd_bit / mats_per_row_;
        panicIf(intra >= group_bits_, "Swizzle: rd_bit out of range");
        const BitlineIdx bl =
            mat * mat_width_ + col * group_bits_ + perm_[intra];
        panicIf(bl >= row_bits_, "Swizzle: column out of range");
        return bl;
    }

    /** Inverse map: bitline to (column, RD_data bit). */
    std::pair<ColAddr, uint32_t>
    logicalBit(BitlineIdx bl) const
    {
        panicIf(bl >= row_bits_, "Swizzle: bitline out of range");
        const uint32_t mat = bl / mat_width_;
        const uint32_t off = bl % mat_width_;
        const ColAddr col = off / group_bits_;
        const uint32_t intra = inv_perm_[off % group_bits_];
        return {col, intra * mats_per_row_ + mat};
    }

  private:
    uint32_t mats_per_row_;
    uint32_t group_bits_;
    uint32_t mat_width_;
    uint32_t row_bits_;
    std::vector<uint32_t> perm_;
    std::vector<uint32_t> inv_perm_;
};

} // namespace dram
} // namespace dramscope

#endif // DRAMSCOPE_DRAM_SWIZZLE_H
