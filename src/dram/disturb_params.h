/**
 * @file
 * Calibrated constants of the activate-induced-bitflip physics model.
 *
 * Each constant is annotated with the paper observation (O1..O14) or
 * figure it reproduces.  The model accumulates a *disturbance dose*
 * per victim cell:
 *
 *   dose_hammer = actCount   * hammerBase * product(factors)
 *   dose_press  = openTimeNs * pressBase  * product(factors)
 *
 * and a cell flips when its dose exceeds the cell's per-mechanism
 * threshold.  Thresholds are distributed uniformly on
 * [thresholdMin, thresholdMax], which makes the bit error rate an
 * (almost exactly) linear function of the dose, so the multiplicative
 * data-pattern factors below transfer one-to-one onto the BER ratios
 * the paper reports.
 */

#ifndef DRAMSCOPE_DRAM_DISTURB_PARAMS_H
#define DRAMSCOPE_DRAM_DISTURB_PARAMS_H

namespace dramscope {
namespace dram {

/** Tunable constants of the AIB disturbance model. */
struct DisturbParams
{
    /** Dose contributed by one aggressor ACT-PRE pair (RowHammer). */
    double hammerBase = 1.0;

    /**
     * Dose contributed per nanosecond of aggressor open-row time
     * (RowPress).  Calibrated so the paper's 8K x 7.8us RowPress
     * attack lands at a dose comparable to a 300K-ACT RowHammer.
     */
    double pressBase = 5.0e-3;

    /**
     * Open-row time below this contributes no RowPress dose: the
     * passing-gate stress needs sustained activation, which is why
     * RowHammer's ~35ns dwells do not act as a RowPress and the two
     * mechanisms flip disjoint cell populations (SS V-B).
     */
    double pressOnsetNs = 200.0;

    /**
     * Cell flip thresholds are uniform on [thresholdMin,
     * thresholdMax], independently per cell and per mechanism.  The
     * uniform law makes BER linear in dose, so the multiplicative
     * pattern factors below transfer directly onto BER ratios.  With
     * the paper's nominal 300K-ACT single-sided RowHammer the
     * baseline BER is (3e5 - 8e3) / 2e6 ~= 0.15 and the weakest cell
     * of a 4K-bit row has Hcnt around 8.5K ACTs — within the range of
     * modern chips.  The range is deliberately compressed relative to
     * silicon so that single-refresh-window attacks (at most ~1.2M
     * ACTs in 64ms) produce measurable differential signals.
     */
    double thresholdMin = 8.0e3;
    double thresholdMax = 2.0e6;

    /**
     * Susceptibility of the non-susceptible gate type relative to the
     * susceptible one.  Non-zero so Figure 12's "off" phase shows a
     * small residual BER rather than exactly zero (O7-O10).
     */
    double offGateLeak = 0.06;

    /**
     * Victim-row horizontal data-pattern factors (O11, Figure 14a).
     * Applied per *side*: a distance-d neighbour holding the opposite
     * value of the victim multiplies the rate by sqrt(factor), so the
     * paper's both-sides numbers come out when both neighbours are
     * opposite.  Distance-2 influence exceeds distance-1, reflecting
     * the 6F^2 geometry.  Indexed by the victim cell's own value.
     */
    double vicDist1Opposite[2] = {1.12, 1.02};  // [Vic0 = 0], [Vic0 = 1]
    double vicDist2Opposite[2] = {1.54, 1.35};

    /**
     * Aggressor-row horizontal data-pattern factors (O12, Figure
     * 14b).  Baseline is the aggressor cell holding the *opposite*
     * value of the victim; a matching value suppresses the rate.
     * Aggr0 applies once; Aggr+-1 / Aggr+-2 apply per side as
     * sqrt(factor).  Influence is strongest closest to the victim.
     */
    double aggr0Same[2] = {0.58, 0.72};
    double aggr1Same[2] = {0.46, 0.58};
    double aggr2Same[2] = {0.38, 0.30};

    /**
     * Edge-subarray dose multiplier, keyed by the charge state of the
     * directly adjacent aggressor cell (O6, Figure 10).  Dummy
     * bitlines keep edge subarrays quieter, more so when the
     * aggressor holds the charged state.
     */
    double edgeFactorAggrDischarged = 0.78;
    double edgeFactorAggrCharged = 0.45;

    /**
     * Temperature scaling of the dose: rate doubles every
     * tempDoubleC degrees above the 75C reference used in the paper.
     */
    double referenceTempC = 75.0;
    double tempDoubleC = 20.0;

    /**
     * Evaluation cutoff: rows whose maximum possible dose is below
     * thresholdMin * cutoffSlack are cleared without a per-cell scan.
     */
    double cutoffSlack = 0.5;
};

} // namespace dram
} // namespace dramscope

#endif // DRAMSCOPE_DRAM_DISTURB_PARAMS_H
