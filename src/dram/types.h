/**
 * @file
 * Fundamental types shared across the DRAM device model.
 */

#ifndef DRAMSCOPE_DRAM_TYPES_H
#define DRAMSCOPE_DRAM_TYPES_H

#include <cstdint>
#include <string>

namespace dramscope {
namespace dram {

/** Row index within a bank (logical, i.e. pre-internal-remap). */
using RowAddr = uint32_t;

/** Column index within a row, in units of one RD burst. */
using ColAddr = uint32_t;

/** Bank index within a chip. */
using BankId = uint16_t;

/** Physical bitline index within a row (post data swizzle). */
using BitlineIdx = uint32_t;

/** Simulated time in nanoseconds. */
using NanoTime = int64_t;

/** DRAM manufacturers as anonymized in the paper. */
enum class Vendor { A, B, C };

/** Device families tested in the paper. */
enum class DramType { DDR4, HBM2 };

/** Chip I/O width. */
enum class ChipWidth { X4 = 4, X8 = 8 };

/**
 * Position of a cell within its shared P-substrate pair in the 6F^2
 * layout (Figure 11 of the paper).  Top and bottom cells alternate
 * along a wordline and the assignment reverses between even and odd
 * wordlines.
 */
enum class CellSite { Top, Bottom };

/**
 * Relation of an adjacent wordline to a given cell: the WL that shares
 * the cell's P-substrate is the neighboring gate, the WL on the other
 * side is the passing gate (Figure 2 of the paper).
 */
enum class GateType { Neighboring, Passing };

/**
 * Whether a cell encodes logical 1 as the charged state (true-cell)
 * or the discharged state (anti-cell).
 */
enum class CellPolarity { True, Anti };

/** The two activate-induced-bitflip mechanisms studied in the paper. */
enum class AibMechanism { RowHammer, RowPress };

/** Pretty-printing helpers. */
const char *toString(Vendor v);
const char *toString(DramType t);
const char *toString(ChipWidth w);
const char *toString(GateType g);
const char *toString(CellSite s);

} // namespace dram
} // namespace dramscope

#endif // DRAMSCOPE_DRAM_TYPES_H
