/**
 * @file
 * The DRAM chip: command decoder, per-bank state machine, timing
 * checks, internal row remapping, coupled-row activation and the
 * RD/WR data path through the internal swizzle.
 *
 * The chip accepts any command sequence, including out-of-spec ones,
 * exactly like a real device behind DRAM Bender: violations are
 * recorded and the analog consequences (RowCopy charge sharing) are
 * modeled rather than rejected.
 */

#ifndef DRAMSCOPE_DRAM_CHIP_H
#define DRAMSCOPE_DRAM_CHIP_H

#include <memory>
#include <string>
#include <vector>

#include "dram/bank.h"
#include "dram/config.h"
#include "dram/device.h"
#include "dram/geometry.h"
#include "dram/swizzle.h"
#include "dram/types.h"

namespace dramscope {
namespace dram {

/** Chip-level activity counters. */
struct ChipStats
{
    uint64_t acts = 0;
    uint64_t pres = 0;
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t refs = 0;

    /**
     * Physical wordlines driven by ACTs: coupled-row pairs and edge
     * subarray tandem structures double-count here, which is the
     * power side channel of SS VI-C.
     */
    uint64_t wordlinesDriven = 0;
};

/** A simulated DRAM chip: the native Device implementation. */
class Chip final : public Device
{
  public:
    /** Builds a chip from a configuration (copied and validated). */
    explicit Chip(DeviceConfig cfg);

    const DeviceConfig &config() const override { return cfg_; }

    /** Activates @p logical_row in bank @p b at time @p now (ns). */
    void act(BankId b, RowAddr logical_row, NanoTime now) override;

    /** Precharges bank @p b. */
    void pre(BankId b, NanoTime now) override;

    /**
     * Reads one RD_data burst (rdDataBits bits, LSB = bit 0) from the
     * open row of bank @p b at column @p col.
     */
    uint64_t read(BankId b, ColAddr col, NanoTime now) override;

    /** Writes one RD_data burst to the open row. */
    void write(BankId b, ColAddr col, uint64_t data, NanoTime now) override;

    /**
     * Refresh: commits and restores every materialized row of every
     * bank.  All banks must be precharged.
     */
    void refresh(NanoTime now) override;

    /**
     * Bulk hammering fast path, bit-exact: replays the whole train's
     * FSM transitions, per-iteration violation records, physics
     * bookkeeping and stats in one batched update, proven
     * byte-identical to slot-by-slot execution.  Trains whose
     * timestamps the batched math cannot reproduce exactly
     * (sub-picosecond-of-ns timing, periods reaching the retention
     * evaluation window) fall back to an internal per-iteration
     * replay — still exact, just not fast.
     */
    void actMany(const ActTrain &train) override;

    /**
     * Bulk hammering fast path, analytic: same FSM/violation/stats
     * replay, but the disturbance dose commits immediately through
     * Bank::applyAggregateDose (sampled for large trains).
     */
    void actManyAnalytic(const ActTrain &train) override;

    /**
     * In-DRAM RFM/DRFM primitive: restores the AIB neighbours of
     * @p logical_row — translated through the internal remap — and,
     * when the chip couples rows, of its coupled partner too.
     */
    uint32_t refreshAggressorNeighbors(BankId b, RowAddr logical_row,
                                       NanoTime now) override;

    /** True when bank @p b has an open row. */
    bool isOpen(BankId b) const;

    /** Open physical row of bank @p b (panics when closed). */
    RowAddr openPhysicalRow(BankId b) const;

    /** Logical to physical row translation (internal remap). */
    RowAddr toPhysical(RowAddr logical_row) const;

    /** Coupled partner of a physical row, if the chip couples rows. */
    std::optional<RowAddr> coupledPartner(RowAddr phys_row) const;

    const ChipStats &stats() const { return stats_; }

    /** Recorded timing violations (capped at 1024 entries). */
    const std::vector<TimingViolation> &violations() const
    {
        return violations_;
    }

    /** Recorded violations, by value (Device interface). */
    std::vector<TimingViolation> violationLog() const override
    {
        return violations_;
    }

    /** Total violations including those beyond the cap. */
    uint64_t violationCount() const override { return violation_count_; }

    /** White-box access for unit tests and ground-truth checks. */
    Bank &bank(BankId b);
    const SubarrayMap &subarrayMap() const { return *map_; }
    const Swizzle &swizzle() const { return swizzle_; }

  private:
    enum class BankState { Idle, Open };

    struct BankFsm
    {
        BankState state = BankState::Idle;
        RowAddr openRow = 0;           //!< Physical.
        bool hasPartner = false;
        RowAddr partnerRow = 0;        //!< Physical coupled partner.
        NanoTime actTime = 0;
        bool wrBarrierDone = false;  //!< Neighbour barrier this open.
        NanoTime preTime = -1'000'000; //!< Last precharge issue time.
        bool hasLastRow = false;
        RowAddr lastRow = 0;           //!< Physical, for RowCopy.
        RowAddr lastPartner = 0;
        bool lastHadPartner = false;
    };

    void violate(const std::string &what, NanoTime now);

    /** Wordlines driven by activating @p phys_row (edge/coupling). */
    uint64_t wordlineCost(RowAddr phys_row) const;

    /** True when the batched train math is bit-exact for @p train. */
    bool trainBatchable(const ActTrain &train) const;

    /** Per-iteration act()/pre() replay (exact fallback). */
    void replayTrain(const ActTrain &train);

    /** Shared exact/analytic batched train implementation. */
    void runTrain(const ActTrain &train, bool analytic);

    DeviceConfig cfg_;
    std::unique_ptr<SubarrayMap> map_;
    Swizzle swizzle_;
    std::vector<std::unique_ptr<Bank>> banks_;
    std::vector<BankFsm> fsm_;
    ChipStats stats_;
    std::vector<TimingViolation> violations_;
    uint64_t violation_count_ = 0;
};

} // namespace dram
} // namespace dramscope

#endif // DRAMSCOPE_DRAM_CHIP_H
