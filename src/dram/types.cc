/**
 * @file
 * String conversions for DRAM enums.
 */

#include "dram/types.h"

namespace dramscope {
namespace dram {

const char *
toString(Vendor v)
{
    switch (v) {
      case Vendor::A: return "Mfr. A";
      case Vendor::B: return "Mfr. B";
      case Vendor::C: return "Mfr. C";
    }
    return "?";
}

const char *
toString(DramType t)
{
    switch (t) {
      case DramType::DDR4: return "DDR4";
      case DramType::HBM2: return "HBM2";
    }
    return "?";
}

const char *
toString(ChipWidth w)
{
    switch (w) {
      case ChipWidth::X4: return "x4";
      case ChipWidth::X8: return "x8";
    }
    return "?";
}

const char *
toString(GateType g)
{
    switch (g) {
      case GateType::Neighboring: return "neighboring";
      case GateType::Passing: return "passing";
    }
    return "?";
}

const char *
toString(CellSite s)
{
    switch (s) {
      case CellSite::Top: return "top";
      case CellSite::Bottom: return "bottom";
    }
    return "?";
}

} // namespace dram
} // namespace dramscope
