/**
 * @file
 * Per-command energy tables and the device power budget
 * (ROADMAP item 2: energy as a first-class scenario axis).
 *
 * The values model a DDR4-class chip at the same fidelity as
 * TimingParams: close enough to datasheet IDD figures that relative
 * comparisons (hammer vs. press, mitigated vs. raw) are meaningful,
 * while staying simple integers-of-picojoules the static certifier
 * (bender::lint::certify) can fold through loop fast-forwarding
 * exactly.  The budget fields generalize tFAW: where tFAW caps four
 * ACTs per window because the charge pumps cannot source more, the
 * power-window rule caps the *energy* any command mix may draw per
 * rolling window.
 */

#ifndef DRAMSCOPE_DRAM_ENERGY_PARAMS_H
#define DRAMSCOPE_DRAM_ENERGY_PARAMS_H

namespace dramscope {
namespace dram {

/** Per-command energies (pJ) plus background power and budget. */
struct EnergyParams
{
    double eActPj = 1200.0;  //!< Row activation (wordline + sensing).
    double ePrePj = 600.0;   //!< Precharge (bitline equalization).
    double eRdPj = 800.0;    //!< One RD burst through the column path.
    double eWrPj = 900.0;    //!< One WR burst (drivers + restore).
    double eRefPj = 25000.0; //!< All-bank refresh (many rows at once).

    /** Standby/idle draw, charged over the whole program span (mW). */
    double backgroundMw = 60.0;

    /**
     * Power-budget window length (ns).  200 ns spans many command
     * slots (tCK 1.25 ns) yet reacts to bursts far shorter than a
     * refresh interval — the same role tFAW's 25 ns plays for ACTs.
     */
    double powerWindowNs = 200.0;

    /**
     * Rolling-window average power budget (mW), background included.
     * Sized to clear the densest *in-spec* command mix — a write
     * burst saturating every tCK slot draws ~720 mW plus background —
     * while out-of-envelope traffic (ACT streams at tCK spacing in
     * violation of tRRD draw ~1 W) exceeds it.
     */
    double maxAvgPowerMw = 850.0;
};

} // namespace dram
} // namespace dramscope

#endif // DRAMSCOPE_DRAM_ENERGY_PARAMS_H
