/**
 * @file
 * Bank physics implementation.
 */

#include "dram/bank.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/log.h"
#include "util/rng.h"

namespace dramscope {
namespace dram {

namespace {

/** Hash salts separating the independent per-cell random streams. */
constexpr uint64_t kSaltHammer = 0x68616d6dULL;
constexpr uint64_t kSaltPress = 0x70726573ULL;
constexpr uint64_t kSaltRetention = 0x72657465ULL;
constexpr uint64_t kSaltAnalyticHammer = 0x616e6168ULL;
constexpr uint64_t kSaltAnalyticPress = 0x616e6170ULL;

uint64_t
cellKey(BankId bank, RowAddr row, BitlineIdx bl, uint64_t salt)
{
    return hashCombine(hashCombine(uint64_t(bank) << 32 | row, bl), salt);
}

} // namespace

Bank::Bank(const DeviceConfig &cfg, const SubarrayMap &map, BankId id)
    : cfg_(cfg), map_(map), id_(id)
{
    const auto &dp = cfg_.disturb;
    tempDoseScale_ = std::exp2((cfg_.temperatureC - dp.referenceTempC) /
                               dp.tempDoubleC);
}

RowState &
Bank::rowState(RowAddr row, NanoTime now)
{
    panicIf(row >= cfg_.rowsPerBank, "Bank: row out of range");
    auto it = rows_.find(row);
    if (it == rows_.end()) {
        RowState rs;
        rs.charge = BitVec(cfg_.rowBits, false);  // Power-up: discharged.
        rs.lastRestoreNs = now;
        it = rows_.emplace(row, std::move(rs)).first;
    }
    return it->second;
}

double
Bank::threshold(RowAddr row, BitlineIdx bl, AibMechanism mech) const
{
    const auto &dp = cfg_.disturb;
    const uint64_t salt =
        mech == AibMechanism::RowHammer ? kSaltHammer : kSaltPress;
    const double u =
        hashUniform(cfg_.variationSeed, cellKey(id_, row, bl, salt));
    return dp.thresholdMin + u * (dp.thresholdMax - dp.thresholdMin);
}

double
Bank::retentionNs(RowAddr row, BitlineIdx bl) const
{
    const auto &rp = cfg_.retention;
    const double median_ms =
        rp.medianRetentionMs *
        std::exp2((cfg_.disturb.referenceTempC - cfg_.temperatureC) /
                  rp.tempHalveC);
    const double mu = std::log(median_ms * 1.0e6);
    return hashLognormal(cfg_.variationSeed,
                         cellKey(id_, row, bl, kSaltRetention), mu,
                         rp.sigmaLog);
}

bool
Bank::sampleFlip(RowAddr row, BitlineIdx bl, double dose, uint64_t salt,
                 uint64_t epoch) const
{
    const auto &dp = cfg_.disturb;
    if (dose < dp.thresholdMin)
        return false;  // p = 0: no threshold in the population is met.
    const double p =
        std::min(1.0, (dose - dp.thresholdMin) /
                          (dp.thresholdMax - dp.thresholdMin));
    const double u = hashUniform(
        cfg_.variationSeed, hashCombine(cellKey(id_, row, bl, salt), epoch));
    // The exact rule flips iff u_cell <= p, u_cell in (0, 1]; the
    // sampled draw uses the same comparison on a fresh stream.
    return u <= p;
}

double
Bank::patternFactor(const BitVec &vic, const BitVec *aggr, BitlineIdx bl,
                    bool victim_charged) const
{
    const auto &dp = cfg_.disturb;
    const int v = victim_charged ? 1 : 0;
    const size_t n = vic.size();
    double f = 1.0;

    // Peripheral circuits (local row decoders, sub-WL drivers)
    // isolate MATs from each other, so horizontal influence never
    // crosses a MAT boundary (SS IV-A).
    const uint32_t mat = bl / cfg_.matWidth;
    auto same_mat = [&](size_t idx) {
        return idx / cfg_.matWidth == mat;
    };

    // Horizontally adjacent victim cells holding the opposite value
    // strengthen the disturbance, distance two more than distance one
    // (O11).  Per-side sqrt so both sides give the full paper factor.
    const double d_factor[2] = {dp.vicDist1Opposite[v],
                                dp.vicDist2Opposite[v]};
    for (int d = 1; d <= 2; ++d) {
        const double side = std::sqrt(d_factor[d - 1]);
        if (bl >= BitlineIdx(d) && same_mat(bl - d) &&
            vic.get(bl - d) != victim_charged) {
            f *= side;
        }
        if (bl + d < n && same_mat(bl + d) &&
            vic.get(bl + d) != victim_charged) {
            f *= side;
        }
    }

    // Aggressor cells matching the victim value weaken the
    // disturbance, strongest for the directly adjacent cell (O12).
    // For the offset cells the suppression needs the aggressor and
    // victim cells at that offset to *jointly* hold the victim's
    // charge state — a local charge environment that absorbs the
    // migrating electrons.  This reproduces Figure 14b (solid victim:
    // the joint condition reduces to the aggressor cell's value),
    // keeps O13's solid-opposite aggressor unsuppressed, and lets the
    // vertically-complementary 0x33/0xCC pattern reach the worst-case
    // BER of Figure 16 instead of being suppressed.
    auto aggr_bit = [&](size_t idx) {
        return aggr ? aggr->get(idx) : false;
    };
    if (aggr_bit(bl) == victim_charged)
        f *= dp.aggr0Same[v];
    const double a_factor[2] = {dp.aggr1Same[v], dp.aggr2Same[v]};
    for (int d = 1; d <= 2; ++d) {
        const double side = std::sqrt(a_factor[d - 1]);
        if (bl >= BitlineIdx(d) && same_mat(bl - d) &&
            aggr_bit(bl - d) == victim_charged &&
            vic.get(bl - d) == victim_charged) {
            f *= side;
        }
        if (bl + d < n && same_mat(bl + d) &&
            aggr_bit(bl + d) == victim_charged &&
            vic.get(bl + d) == victim_charged) {
            f *= side;
        }
    }

    return f;
}

void
Bank::commitDisturb(RowAddr row, RowState &rs, bool analytic)
{
    const auto &dp = cfg_.disturb;
    const double pend_h = rs.pendHammer[0] + rs.pendHammer[1];
    const double pend_p = rs.pendPressNs[0] + rs.pendPressNs[1];
    if (pend_h == 0.0 && pend_p == 0.0)
        return;

    // Small analytic commits replay the exact threshold comparison:
    // sampling only pays off (and only loses bit-exactness) once the
    // dose aggregates enough activations.
    const bool sample = analytic && pend_h >= kAnalyticSampleMinActs;

    // Upper bound of the total per-cell rate factor, for the cheap
    // early-out when the dose cannot reach the smallest threshold.
    const double max_vic =
        std::max(dp.vicDist1Opposite[0], dp.vicDist1Opposite[1]) *
        std::max(dp.vicDist2Opposite[0], dp.vicDist2Opposite[1]);
    const double bound = std::max(1.0, max_vic) * tempDoseScale_;
    const double max_dose_h = pend_h * dp.hammerBase * bound;
    const double max_dose_p = pend_p * dp.pressBase * bound;
    if (max_dose_h < dp.thresholdMin * dp.cutoffSlack &&
        max_dose_p < dp.thresholdMin * dp.cutoffSlack) {
        rs.pendHammer[0] = rs.pendHammer[1] = 0.0;
        rs.pendPressNs[0] = rs.pendPressNs[1] = 0.0;
        return;
    }

    const bool in_edge = map_.inEdgeSubarray(row);

    // Aggressor row charge, per direction (nullptr = all discharged).
    const BitVec *aggr[2] = {nullptr, nullptr};
    for (int dir = 0; dir < 2; ++dir) {
        if (rs.pendHammer[dir] == 0.0 && rs.pendPressNs[dir] == 0.0)
            continue;
        const auto nb = map_.neighbor(row, dir == 1);
        panicIf(!nb, "commitDisturb: pending dose without a neighbour");
        auto it = rows_.find(*nb);
        if (it != rows_.end())
            aggr[dir] = &it->second.charge;
    }

    // Rates must be computed against the row state the dose was
    // accumulated under; flipping cells in place while scanning would
    // let an early flip distort the pattern factors of later cells.
    const BitVec before = rs.charge;
    const size_t n = before.size();
    for (BitlineIdx bl = 0; bl < n; ++bl) {
        const bool charged = before.get(bl);
        double dose_h = 0.0;
        double dose_p = 0.0;
        for (int dir = 0; dir < 2; ++dir) {
            if (rs.pendHammer[dir] == 0.0 && rs.pendPressNs[dir] == 0.0)
                continue;
            const GateType gate = gateType(row, bl, dir == 1);

            // RowHammer: a charged victim is susceptible through its
            // neighboring gate, a discharged one through its passing
            // gate; the off gate keeps a small leak (O8/O9/O10).
            const GateType h_gate = charged ? GateType::Neighboring
                                            : GateType::Passing;
            const double h_gate_f =
                gate == h_gate ? 1.0 : dp.offGateLeak;

            // RowPress: only charged victims flip, through the
            // opposite gate relation to RowHammer (O7, footnote 7).
            double p_gate_f = 0.0;
            if (charged) {
                p_gate_f =
                    gate == GateType::Passing ? 1.0 : dp.offGateLeak;
            }

            double pat = patternFactor(before, aggr[dir], bl, charged);
            if (in_edge) {
                const bool a0 =
                    aggr[dir] ? aggr[dir]->get(bl) : false;
                pat *= a0 ? dp.edgeFactorAggrCharged
                          : dp.edgeFactorAggrDischarged;
            }
            pat *= tempDoseScale_;

            dose_h += rs.pendHammer[dir] * dp.hammerBase * h_gate_f * pat;
            dose_p += rs.pendPressNs[dir] * dp.pressBase * p_gate_f * pat;
        }
        const bool flip_h =
            sample ? sampleFlip(row, bl, dose_h, kSaltAnalyticHammer,
                                rs.analyticEpoch)
                   : dose_h >= threshold(row, bl, AibMechanism::RowHammer);
        const bool flip_p =
            sample ? sampleFlip(row, bl, dose_p, kSaltAnalyticPress,
                                rs.analyticEpoch)
                   : dose_p >= threshold(row, bl, AibMechanism::RowPress);
        if (flip_h || flip_p) {
            rs.charge.flip(bl);
            ++stats_.disturbFlips;
        }
    }
    if (sample)
        ++rs.analyticEpoch;
    rs.pendHammer[0] = rs.pendHammer[1] = 0.0;
    rs.pendPressNs[0] = rs.pendPressNs[1] = 0.0;
}

void
Bank::commitRetention(RowAddr row, RowState &rs, NanoTime now)
{
    const double min_ns = cfg_.retention.minEvalElapsedMs * 1.0e6;
    const double elapsed_ns = double(now - rs.lastRestoreNs);
    if (elapsed_ns < min_ns)
        return;
    // The scan is monotone in elapsed time: re-running it within the
    // evaluation window cannot find new decays.
    if (double(now - rs.lastRetentionScanNs) < min_ns)
        return;
    rs.lastRetentionScanNs = now;
    const size_t n = rs.charge.size();
    for (BitlineIdx bl = 0; bl < n; ++bl) {
        if (!rs.charge.get(bl))
            continue;  // Leakage only discharges.
        if (retentionNs(row, bl) < elapsed_ns) {
            rs.charge.set(bl, false);
            ++stats_.retentionFlips;
        }
    }
}

void
Bank::restoreRow(RowAddr row, NanoTime now)
{
    RowState &rs = rowState(row, now);
    commitRetention(row, rs, now);
    commitDisturb(row, rs);
    rs.lastRestoreNs = now;
}

void
Bank::commitRow(RowAddr row, NanoTime now)
{
    auto it = rows_.find(row);
    if (it == rows_.end())
        return;  // Untouched rows have nothing pending.
    commitRetention(row, it->second, now);
    commitDisturb(row, it->second);
}

void
Bank::registerAggressorDwell(RowAddr aggressor, double act_count,
                             double open_ns, NanoTime now)
{
    for (int dir = 0; dir < 2; ++dir) {
        const auto victim = map_.neighbor(aggressor, dir == 1);
        if (!victim)
            continue;
        // For the victim below the aggressor, the aggressor is its
        // upper neighbour (pending index 1) and vice versa.
        const int pend_idx = (dir == 1) ? 0 : 1;
        RowState &vs = rowState(*victim, now);
        vs.pendHammer[pend_idx] += act_count;
        // Only dwell time beyond the onset stresses the victim the
        // RowPress way; ordinary RowHammer dwells contribute none.
        const double press_ns =
            std::max(0.0, open_ns - cfg_.disturb.pressOnsetNs);
        vs.pendPressNs[pend_idx] += act_count * press_ns;
    }
}

void
Bank::applyAggregateDose(RowAddr aggressor, double act_count,
                         double open_ns, NanoTime now)
{
    registerAggressorDwell(aggressor, act_count, open_ns, now);
    // The data feeding the dose (victim and aggressor charge) cannot
    // change between the train and the next barrier — barriers sit
    // exactly where data changes — so committing here evaluates the
    // same dose the deferred barrier would have.  Retention is not
    // committed: its clock keeps running to the next barrier.
    for (int dir = 0; dir < 2; ++dir) {
        const auto victim = map_.neighbor(aggressor, dir == 1);
        if (!victim)
            continue;
        commitDisturb(*victim, rowState(*victim, now), /*analytic=*/true);
    }
}

void
Bank::markRestored(RowAddr row, NanoTime now)
{
    rowState(row, now).lastRestoreNs = now;
}

bool
Bank::applyRowCopy(RowAddr src, RowAddr dst, NanoTime now)
{
    const CopyRelation rel = map_.copyRelation(src, dst);
    if (rel == CopyRelation::None || src == dst)
        return false;

    // Barriers: the source must be evaluated before we read it, and
    // the destination plus its AIB neighbours before its data change.
    commitRow(src, now);
    commitRow(dst, now);
    for (int dir = 0; dir < 2; ++dir) {
        if (auto nb = map_.neighbor(dst, dir == 1))
            commitRow(*nb, now);
    }

    RowState &ss = rowState(src, now);
    // Copy the source charge out first: dst materialization may
    // rehash the map and invalidate references.
    const BitVec src_charge = ss.charge;
    RowState &ds = rowState(dst, now);
    const size_t n = src_charge.size();

    switch (rel) {
      case CopyRelation::SameSubarray:
        // Both stripes hold the source row: full, non-inverted copy.
        ds.charge = src_charge;
        break;
      case CopyRelation::DstAbove:
        // Shared stripe holds the source's odd bitlines; the
        // destination's even bitlines sit on the complementary sense
        // node, so they receive inverted charge.
        for (size_t m = 0; 2 * m + 1 < n; ++m)
            ds.charge.set(2 * m, !src_charge.get(2 * m + 1));
        break;
      case CopyRelation::DstBelow:
        for (size_t m = 0; 2 * m + 1 < n; ++m)
            ds.charge.set(2 * m + 1, !src_charge.get(2 * m));
        break;
      case CopyRelation::EdgePair:
        // The section's edge stripe serves the bottom-edge subarray's
        // even bitlines and the top-edge subarray's odd bitlines.
        if (map_.subarrayOf(dst).topEdge) {
            for (size_t m = 0; 2 * m + 1 < n; ++m)
                ds.charge.set(2 * m + 1, !src_charge.get(2 * m));
        } else {
            for (size_t m = 0; 2 * m + 1 < n; ++m)
                ds.charge.set(2 * m, !src_charge.get(2 * m + 1));
        }
        break;
      case CopyRelation::None:
        break;
    }
    ++stats_.rowCopyEvents;
    return true;
}

BitVec &
Bank::chargeRef(RowAddr row, NanoTime now)
{
    return rowState(row, now).charge;
}

bool
Bank::chargeAt(RowAddr row, BitlineIdx bl, NanoTime now)
{
    panicIf(bl >= cfg_.rowBits, "chargeAt: bitline out of range");
    return rowState(row, now).charge.get(bl);
}

void
Bank::writeCharge(RowAddr row, BitlineIdx first_bl,
                  const std::vector<bool> &bits, NanoTime now)
{
    panicIf(first_bl + bits.size() > cfg_.rowBits,
            "writeCharge: out of range");
    RowState &rs = rowState(row, now);
    for (size_t i = 0; i < bits.size(); ++i)
        rs.charge.set(first_bl + i, bits[i]);
}

void
Bank::setChargeCell(RowAddr row, BitlineIdx bl, bool charge, NanoTime now)
{
    panicIf(bl >= cfg_.rowBits, "setChargeCell: out of range");
    rowState(row, now).charge.set(bl, charge);
}

bool
Bank::dataToCharge(RowAddr row, bool data) const
{
    return map_.polarityOf(row) == CellPolarity::True ? data : !data;
}

bool
Bank::chargeToData(RowAddr row, bool charge) const
{
    return map_.polarityOf(row) == CellPolarity::True ? charge : !charge;
}

bool
Bank::dataAt(RowAddr row, BitlineIdx bl, NanoTime now)
{
    return chargeToData(row, chargeAt(row, bl, now));
}

void
Bank::refreshAll(NanoTime now)
{
    // Commit in ascending row order: commitDisturb reads neighbour
    // charge, so hash-order iteration would let one row's flips leak
    // into an adjacent row's dose pattern in an order that differs
    // across standard libraries.
    std::vector<RowAddr> order;
    order.reserve(rows_.size());
    for (const auto &kv : rows_) // determinism-ok: keys sorted below
        order.push_back(kv.first);
    std::sort(order.begin(), order.end());
    for (const RowAddr row : order) {
        RowState &rs = rows_.find(row)->second;
        commitRetention(row, rs, now);
        commitDisturb(row, rs);
        rs.lastRestoreNs = now;
    }
}

} // namespace dram
} // namespace dramscope
