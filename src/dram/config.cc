/**
 * @file
 * Vendor presets matching the paper's Table I population and the
 * Table III structures.
 */

#include "dram/config.h"

#include <unordered_map>

#include "util/log.h"

namespace dramscope {
namespace dram {

uint32_t
DeviceConfig::patternRows() const
{
    uint32_t rows = 0;
    for (const auto &entry : subarrayPattern)
        rows += entry.count * entry.height;
    return rows;
}

void
DeviceConfig::validate() const
{
    fatalIf(subarrayPattern.empty(), name + ": empty subarray pattern");
    const uint32_t pat = patternRows();
    fatalIf(pat == 0, name + ": zero pattern rows");
    fatalIf(rowsPerBank % pat != 0,
            name + ": rowsPerBank not a multiple of the pattern");
    fatalIf(edgeSectionRows % pat != 0,
            name + ": edge section not a multiple of the pattern");
    fatalIf(rowsPerBank % edgeSectionRows != 0,
            name + ": rowsPerBank not a multiple of the edge section");
    fatalIf(rowBits % matWidth != 0, name + ": rowBits % matWidth");
    fatalIf(rdDataBits % matsPerRow() != 0,
            name + ": rdDataBits % matsPerRow");
    fatalIf(rowBits % rdDataBits != 0, name + ": rowBits % rdDataBits");
    fatalIf(swizzlePerm.size() != groupBits(),
            name + ": swizzlePerm size != groupBits");
    std::vector<bool> seen(swizzlePerm.size(), false);
    for (uint32_t v : swizzlePerm) {
        fatalIf(v >= swizzlePerm.size() || seen[v],
                name + ": swizzlePerm is not a permutation");
        seen[v] = true;
    }
    if (coupledRowDistance) {
        fatalIf(*coupledRowDistance == 0 ||
                *coupledRowDistance * 2 != rowsPerBank,
                name + ": coupled distance must be rowsPerBank / 2");
    }
    fatalIf(rowBits % 64 != 0, name + ": rowBits must be 64-bit aligned");
}

namespace {

/** Subarray compositions from Table III. */
const std::vector<SubarrayPatternEntry> kPat640 = {{11, 640}, {2, 576}};
const std::vector<SubarrayPatternEntry> kPat832 = {{4, 832}, {1, 768}};
const std::vector<SubarrayPatternEntry> kPatC688 = {{2, 688}, {1, 672}};
const std::vector<SubarrayPatternEntry> kPatC2016 = {{1, 688}, {2, 680}};

/** Per-vendor intra-group swizzle permutations. */
const std::vector<uint32_t> kSwizzleA4 = {0, 2, 1, 3};
const std::vector<uint32_t> kSwizzleB8 = {0, 4, 2, 6, 1, 5, 3, 7};
const std::vector<uint32_t> kSwizzleC4 = {1, 0, 3, 2};

DeviceConfig
baseDdr4(Vendor vendor, ChipWidth width, int year)
{
    DeviceConfig cfg;
    cfg.vendor = vendor;
    cfg.type = DramType::DDR4;
    cfg.width = width;
    cfg.year = year;
    if (width == ChipWidth::X4) {
        cfg.rowsPerBank = 131072;
        cfg.rowBits = 4096;
        cfg.rdDataBits = 32;
    } else {
        cfg.rowsPerBank = 65536;
        cfg.rowBits = 8192;
        cfg.rdDataBits = 64;
    }
    switch (vendor) {
      case Vendor::A:
        cfg.matWidth = 512;
        cfg.rowRemap = RowRemapScheme::MfrA8Blk;
        cfg.polarityPolicy = CellPolarityPolicy::AllTrue;
        break;
      case Vendor::B:
        cfg.matWidth = 1024;
        cfg.rowRemap = RowRemapScheme::None;
        cfg.polarityPolicy = CellPolarityPolicy::AllTrue;
        break;
      case Vendor::C:
        cfg.matWidth = 512;
        cfg.rowRemap = RowRemapScheme::None;
        cfg.polarityPolicy = CellPolarityPolicy::InterleavedPerSubarray;
        break;
    }
    // Swizzle permutation size is rdDataBits / matsPerRow, which is 4
    // for 512-bit MATs and 8 for 1024-bit MATs at either width.
    if (cfg.matWidth == 512)
        cfg.swizzlePerm = (vendor == Vendor::C) ? kSwizzleC4 : kSwizzleA4;
    else
        cfg.swizzlePerm = kSwizzleB8;
    return cfg;
}

DeviceConfig
makeDdr4Preset(const std::string &id, Vendor vendor, ChipWidth width,
               int year, const std::vector<SubarrayPatternEntry> &pattern,
               uint32_t edge_section, bool coupled)
{
    DeviceConfig cfg = baseDdr4(vendor, width, year);
    cfg.name = id;
    cfg.subarrayPattern = pattern;
    cfg.edgeSectionRows = edge_section;
    if (coupled)
        cfg.coupledRowDistance = cfg.rowsPerBank / 2;
    cfg.validate();
    return cfg;
}

DeviceConfig
makeHbm2Preset(const std::string &id)
{
    DeviceConfig cfg;
    cfg.name = id;
    cfg.vendor = Vendor::A;
    cfg.type = DramType::HBM2;
    cfg.width = ChipWidth::X4;  // Modeled per 32-bit DQ group.
    cfg.year = 0;
    // One HBM2 pseudo-channel bank modeled with 16K rows so the Table
    // III relations (coupled distance = edge section = Nrow/2 = 8K)
    // hold exactly.
    cfg.rowsPerBank = 16384;
    cfg.rowBits = 4096;
    cfg.rdDataBits = 32;
    cfg.subarrayPattern = kPat832;
    cfg.edgeSectionRows = 8192;
    cfg.coupledRowDistance = 8192;
    cfg.polarityPolicy = CellPolarityPolicy::AllTrue;
    cfg.rowRemap = RowRemapScheme::MfrA8Blk;
    cfg.matWidth = 512;
    cfg.swizzlePerm = kSwizzleA4;
    cfg.timing.tCkNs = 1.67;  // HBM2 command interval (paper SS III-A).
    cfg.temperatureC = 25.0;  // HBM2 was tested at room temperature.
    cfg.validate();
    return cfg;
}

struct PresetDef
{
    PresetInfo info;
    DeviceConfig (*make)(const std::string &);
};

DeviceConfig
dispatchDdr4(const std::string &id)
{
    // id format: <vendor>_<width>_<year>
    struct Row
    {
        const char *id;
        Vendor vendor;
        ChipWidth width;
        int year;
        const std::vector<SubarrayPatternEntry> *pattern;
        uint32_t edgeSection;
        bool coupled;
    };
    static const Row rows[] = {
        // Mfr. A x4: 2016/2017 use the 640-row pattern with 16K-row
        // edge sections and coupled rows; 2018/2021 use the 832-row
        // pattern with 32K sections and no coupling (Table III).
        {"A_x4_2016", Vendor::A, ChipWidth::X4, 2016, &kPat640, 16384, true},
        {"A_x4_2017", Vendor::A, ChipWidth::X4, 2017, &kPat640, 16384, true},
        {"A_x4_2018", Vendor::A, ChipWidth::X4, 2018, &kPat832, 32768,
         false},
        {"A_x4_2021", Vendor::A, ChipWidth::X4, 2021, &kPat832, 32768,
         false},
        {"A_x8_2017", Vendor::A, ChipWidth::X8, 2017, &kPat640, 16384,
         false},
        {"A_x8_2018", Vendor::A, ChipWidth::X8, 2018, &kPat832, 32768,
         false},
        {"A_x8_2019", Vendor::A, ChipWidth::X8, 2019, &kPat640, 16384,
         false},
        {"B_x4_2019", Vendor::B, ChipWidth::X4, 2019, &kPat832, 32768,
         true},
        {"B_x8_2017", Vendor::B, ChipWidth::X8, 2017, &kPat832, 32768,
         false},
        {"B_x8_2018", Vendor::B, ChipWidth::X8, 2018, &kPat832, 32768,
         false},
        {"B_x8_2019", Vendor::B, ChipWidth::X8, 2019, &kPat832, 32768,
         false},
        {"C_x4_2018", Vendor::C, ChipWidth::X4, 2018, &kPatC688, 32768,
         false},
        {"C_x4_2021", Vendor::C, ChipWidth::X4, 2021, &kPatC688, 32768,
         false},
        {"C_x8_2016", Vendor::C, ChipWidth::X8, 2016, &kPatC2016, 4096,
         false},
        {"C_x8_2019", Vendor::C, ChipWidth::X8, 2019, &kPatC688, 32768,
         false},
    };
    for (const auto &row : rows) {
        if (id == row.id) {
            return makeDdr4Preset(id, row.vendor, row.width, row.year,
                                  *row.pattern, row.edgeSection,
                                  row.coupled);
        }
    }
    fatal("unknown DDR4 preset: " + id);
}

} // namespace

const std::vector<PresetInfo> &
presetTable()
{
    // Chip counts per group.  Table I's printed rows sum to more
    // chips than the text's totals (376 DDR4: 160 A / 128 B / 88 C);
    // we follow the text and scale Mfr. A's first x4 group down so
    // the vendor totals match.
    static const std::vector<PresetInfo> table = {
        {"A_x4_2016", 16}, {"A_x4_2017", 16}, {"A_x4_2018", 32},
        {"A_x4_2021", 32}, {"A_x8_2017", 16}, {"A_x8_2018", 32},
        {"A_x8_2019", 16}, {"B_x4_2019", 64}, {"B_x8_2017", 32},
        {"B_x8_2018", 24}, {"B_x8_2019", 8},  {"C_x4_2018", 32},
        {"C_x4_2021", 32}, {"C_x8_2016", 8},  {"C_x8_2019", 16},
        {"HBM2_A", 4},
    };
    return table;
}

DeviceConfig
makePreset(const std::string &id)
{
    if (id == "HBM2_A")
        return makeHbm2Preset(id);
    return dispatchDdr4(id);
}

std::vector<std::string>
presetIds()
{
    std::vector<std::string> ids;
    for (const auto &info : presetTable())
        ids.push_back(info.id);
    return ids;
}

DeviceConfig
makeTinyConfig()
{
    DeviceConfig cfg;
    cfg.name = "tiny";
    cfg.vendor = Vendor::A;
    cfg.type = DramType::DDR4;
    cfg.width = ChipWidth::X4;
    cfg.year = 2016;
    cfg.numBanks = 2;
    cfg.rowsPerBank = 1024;
    cfg.rowBits = 256;
    cfg.rdDataBits = 32;
    // Non-power-of-two heights, two heights coexisting: 2x48 + 1x32
    // per 128 rows.
    cfg.subarrayPattern = {{2, 48}, {1, 32}};
    cfg.edgeSectionRows = 256;
    cfg.coupledRowDistance = 512;
    cfg.polarityPolicy = CellPolarityPolicy::AllTrue;
    cfg.rowRemap = RowRemapScheme::MfrA8Blk;
    cfg.matWidth = 64;  // 4 MATs per row; groupBits = 8.
    cfg.swizzlePerm = {0, 4, 2, 6, 1, 5, 3, 7};
    cfg.validate();
    return cfg;
}

} // namespace dram
} // namespace dramscope
