/**
 * @file
 * HBM2 stack aggregate: the paper tests 4-Hi stacks (Table I), where
 * each die exposes independent channels.  The simulator models one
 * channel as a Chip; this class composes a stack of them so
 * stack-level experiments (per-channel variation, cross-channel
 * independence) can be expressed.
 */

#ifndef DRAMSCOPE_DRAM_HBM_STACK_H
#define DRAMSCOPE_DRAM_HBM_STACK_H

#include <memory>
#include <vector>

#include "dram/chip.h"
#include "util/rng.h"

namespace dramscope {
namespace dram {

/** A 4-Hi HBM2 stack: channels with independent process variation. */
class HbmStack
{
  public:
    /**
     * @param cfg Channel configuration (usually the HBM2_A preset).
     * @param channels Channels in the stack (8 for 4-Hi HBM2: two
     *        per die).
     */
    explicit HbmStack(DeviceConfig cfg, uint32_t channels = 8)
        : cfg_(std::move(cfg))
    {
        fatalIf(channels == 0, "HbmStack: no channels");
        for (uint32_t c = 0; c < channels; ++c) {
            DeviceConfig channel_cfg = cfg_;
            // Each channel is distinct silicon: derive its variation
            // from the stack seed and channel index.
            channel_cfg.variationSeed =
                hashCombine(cfg_.variationSeed, 0x48424Dull + c);
            channel_cfg.name = cfg_.name + "/ch" + std::to_string(c);
            channels_.push_back(
                std::make_unique<Chip>(std::move(channel_cfg)));
        }
    }

    /** Channels in the stack. */
    uint32_t channelCount() const { return uint32_t(channels_.size()); }

    /** Channel @p c (a Chip, hence a Device). */
    Chip &
    channel(uint32_t c)
    {
        panicIf(c >= channels_.size(), "HbmStack: channel out of range");
        return *channels_[c];
    }

    /** Channel @p c, read-only. */
    const Chip &
    channel(uint32_t c) const
    {
        panicIf(c >= channels_.size(), "HbmStack: channel out of range");
        return *channels_[c];
    }

    /** The stack-level configuration template. */
    const DeviceConfig &config() const { return cfg_; }

    /** Sum of activations across channels (power accounting). */
    uint64_t
    totalWordlinesDriven() const
    {
        uint64_t total = 0;
        for (const auto &ch : channels_)
            total += ch->stats().wordlinesDriven;
        return total;
    }

  private:
    DeviceConfig cfg_;
    std::vector<std::unique_ptr<Chip>> channels_;
};

} // namespace dram
} // namespace dramscope

#endif // DRAMSCOPE_DRAM_HBM_STACK_H
