/**
 * @file
 * Physical geometry of a bank: 6F^2 cell sites, gate types, the
 * subarray map with open-bitline stripes, internal row remapping and
 * cell polarity.
 *
 * All row indices in this module are *physical* (post internal
 * remap); the Chip translates logical addresses before using it.
 */

#ifndef DRAMSCOPE_DRAM_GEOMETRY_H
#define DRAMSCOPE_DRAM_GEOMETRY_H

#include <optional>
#include <vector>

#include "dram/config.h"
#include "dram/types.h"

namespace dramscope {
namespace dram {

/**
 * Returns the 6F^2 site of cell {physRow, bl}: top and bottom cells
 * alternate along the bitline index and the assignment reverses
 * between even and odd wordlines (Figure 11).
 */
inline CellSite
cellSite(RowAddr phys_row, BitlineIdx bl)
{
    return ((phys_row + bl) & 1) == 0 ? CellSite::Bottom : CellSite::Top;
}

/**
 * Gate type that an adjacent aggressor wordline presents to a victim
 * cell.  A bottom cell shares its P-substrate with the wordline above
 * it (upper WL = neighboring gate); a top cell with the one below.
 *
 * @param victim_row Physical row of the victim cell.
 * @param bl Bitline index of the victim cell.
 * @param aggressor_is_upper True when the aggressor row is
 *        victim_row + 1, false when victim_row - 1.
 */
inline GateType
gateType(RowAddr victim_row, BitlineIdx bl, bool aggressor_is_upper)
{
    const bool bottom = cellSite(victim_row, bl) == CellSite::Bottom;
    return (bottom == aggressor_is_upper) ? GateType::Neighboring
                                          : GateType::Passing;
}

/**
 * Internal logical-to-physical row remapping (common pitfall (2)).
 * Both directions, since the schemes used here are involutions.
 */
RowAddr remapRow(RowRemapScheme scheme, RowAddr logical);

/** One subarray of a bank. */
struct Subarray
{
    uint32_t index;      //!< Global index within the bank.
    RowAddr firstRow;    //!< First physical row.
    uint32_t height;     //!< Rows in this subarray.
    uint32_t section;    //!< Edge-section index.
    bool bottomEdge;     //!< First subarray of its section.
    bool topEdge;        //!< Last subarray of its section.

    bool isEdge() const { return bottomEdge || topEdge; }
    RowAddr lastRow() const { return firstRow + height - 1; }
    bool
    contains(RowAddr r) const
    {
        return r >= firstRow && r <= lastRow();
    }
};

/** How two rows relate for the RowCopy charge-sharing operation. */
enum class CopyRelation
{
    SameSubarray,  //!< Full copy, charge preserved.
    DstBelow,      //!< Dst in the subarray below: odd dst BLs, inverted.
    DstAbove,      //!< Dst in the subarray above: even dst BLs, inverted.
    EdgePair,      //!< Dst in the paired edge subarray (shared stripe).
    None,          //!< No shared sense-amp stripe: no copy possible.
};

/**
 * Precomputed subarray layout of one bank with open-bitline stripe
 * relations.  Within a section, consecutive subarrays share a stripe;
 * the first and last subarray of each section share the section's
 * edge stripe and work in tandem (O5).
 */
class SubarrayMap
{
  public:
    explicit SubarrayMap(const DeviceConfig &cfg);

    /** Number of subarrays in the bank. */
    size_t count() const { return subs_.size(); }

    /** Subarray by global index. */
    const Subarray &subarray(size_t idx) const { return subs_.at(idx); }

    /** Subarray containing physical row @p r. */
    const Subarray &subarrayOf(RowAddr r) const;

    /**
     * Physical AIB neighbour of @p r in the given direction, or
     * nullopt at a subarray boundary (sense amplifiers block
     * disturbance, SS IV-C).
     */
    std::optional<RowAddr> neighbor(RowAddr r, bool upper) const;

    /** True when @p a and @p b are AIB-adjacent. */
    bool aibAdjacent(RowAddr a, RowAddr b) const;

    /** RowCopy relation between a source and a destination row. */
    CopyRelation copyRelation(RowAddr src, RowAddr dst) const;

    /** True when row @p r lies in an edge subarray (O5/O6). */
    bool inEdgeSubarray(RowAddr r) const;

    /** Cell polarity of row @p r under the configured policy. */
    CellPolarity polarityOf(RowAddr r) const;

  private:
    const DeviceConfig &cfg_;
    std::vector<Subarray> subs_;
    std::vector<uint32_t> rowToSub_;  //!< Physical row -> subarray index.
};

} // namespace dram
} // namespace dramscope

#endif // DRAMSCOPE_DRAM_GEOMETRY_H
