/**
 * @file
 * Subarray map construction and row remapping.
 */

#include "dram/geometry.h"

#include "util/log.h"

namespace dramscope {
namespace dram {

RowAddr
remapRow(RowRemapScheme scheme, RowAddr logical)
{
    switch (scheme) {
      case RowRemapScheme::None:
        return logical;
      case RowRemapScheme::MfrA8Blk:
        // Reflect the upper half of each 8-row block: logical
        // {4,5,6,7} map to physical {7,6,5,4}.  The mapping is an
        // involution, so it also serves as the inverse.
        return (logical & 4) ? (logical ^ 3) : logical;
    }
    panic("remapRow: bad scheme");
}

SubarrayMap::SubarrayMap(const DeviceConfig &cfg)
    : cfg_(cfg)
{
    cfg.validate();
    const uint32_t n_rows = cfg.rowsPerBank;
    rowToSub_.resize(n_rows);

    RowAddr row = 0;
    uint32_t sub_index = 0;
    while (row < n_rows) {
        const uint32_t section = row / cfg.edgeSectionRows;
        for (const auto &entry : cfg.subarrayPattern) {
            for (uint32_t k = 0; k < entry.count; ++k) {
                Subarray sub;
                sub.index = sub_index;
                sub.firstRow = row;
                sub.height = entry.height;
                sub.section = section;
                sub.bottomEdge = (row % cfg.edgeSectionRows) == 0;
                sub.topEdge = ((row + entry.height) %
                               cfg.edgeSectionRows) == 0;
                for (uint32_t r = 0; r < entry.height; ++r)
                    rowToSub_[row + r] = sub_index;
                subs_.push_back(sub);
                row += entry.height;
                ++sub_index;
            }
        }
    }
    panicIf(row != n_rows, "SubarrayMap: pattern overflow");
}

const Subarray &
SubarrayMap::subarrayOf(RowAddr r) const
{
    panicIf(r >= rowToSub_.size(), "subarrayOf: row out of range");
    return subs_[rowToSub_[r]];
}

std::optional<RowAddr>
SubarrayMap::neighbor(RowAddr r, bool upper) const
{
    const Subarray &sub = subarrayOf(r);
    if (upper) {
        if (r == sub.lastRow())
            return std::nullopt;
        return r + 1;
    }
    if (r == sub.firstRow)
        return std::nullopt;
    return r - 1;
}

bool
SubarrayMap::aibAdjacent(RowAddr a, RowAddr b) const
{
    if (a > b)
        std::swap(a, b);
    return b == a + 1 && rowToSub_[a] == rowToSub_[b];
}

CopyRelation
SubarrayMap::copyRelation(RowAddr src, RowAddr dst) const
{
    const Subarray &s = subarrayOf(src);
    const Subarray &d = subarrayOf(dst);
    if (s.index == d.index)
        return CopyRelation::SameSubarray;
    if (s.section == d.section) {
        if (d.index == s.index + 1)
            return CopyRelation::DstAbove;
        if (d.index + 1 == s.index)
            return CopyRelation::DstBelow;
        // The two edge subarrays of a section share the section's
        // edge sense-amp stripe and work in tandem (O5).
        if ((s.bottomEdge && d.topEdge) || (s.topEdge && d.bottomEdge))
            return CopyRelation::EdgePair;
    }
    return CopyRelation::None;
}

bool
SubarrayMap::inEdgeSubarray(RowAddr r) const
{
    return subarrayOf(r).isEdge();
}

CellPolarity
SubarrayMap::polarityOf(RowAddr r) const
{
    switch (cfg_.polarityPolicy) {
      case CellPolarityPolicy::AllTrue:
        return CellPolarity::True;
      case CellPolarityPolicy::InterleavedPerSubarray:
        return (subarrayOf(r).index & 1) ? CellPolarity::Anti
                                         : CellPolarity::True;
    }
    panic("polarityOf: bad policy");
}

} // namespace dram
} // namespace dramscope
