/**
 * @file
 * Command tracer implementation.
 */

#include "bender/trace.h"

#include <cstdlib>
#include <cstring>

#include "util/log.h"

namespace dramscope {
namespace obs {

const char *
toString(TraceCmd cmd)
{
    switch (cmd) {
      case TraceCmd::Act: return "ACT";
      case TraceCmd::Pre: return "PRE";
      case TraceCmd::Rd:  return "RD";
      case TraceCmd::Wr:  return "WR";
      case TraceCmd::Ref: return "REF";
    }
    return "?";
}

std::string
toJsonl(const TraceRecord &rec)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "{\"ns\":%.3f,\"cmd\":\"%s\",\"bank\":%u,\"row\":%u,"
                  "\"col\":%u}",
                  rec.ns, toString(rec.cmd), unsigned(rec.bank),
                  unsigned(rec.row), unsigned(rec.col));
    return buf;
}

namespace {

/** Scans `"key":` and leaves @p p after the colon; false if absent. */
bool
expectKey(const char *&p, const char *key)
{
    const char *found = std::strstr(p, key);
    if (!found)
        return false;
    p = found + std::strlen(key);
    return true;
}

} // namespace

bool
parseJsonl(const std::string &line, TraceRecord &out)
{
    // The format is machine-generated and fixed-order (see toJsonl),
    // so a keyed scan is sufficient — no general JSON parser needed.
    const char *p = line.c_str();
    char *end = nullptr;

    if (!expectKey(p, "\"ns\":"))
        return false;
    out.ns = std::strtod(p, &end);
    if (end == p)
        return false;

    if (!expectKey(p, "\"cmd\":\""))
        return false;
    bool matched = false;
    for (const auto cmd : {TraceCmd::Act, TraceCmd::Pre, TraceCmd::Rd,
                           TraceCmd::Wr, TraceCmd::Ref}) {
        const char *name = toString(cmd);
        const size_t len = std::strlen(name);
        if (std::strncmp(p, name, len) == 0 && p[len] == '"') {
            out.cmd = cmd;
            matched = true;
            break;
        }
    }
    if (!matched)
        return false;

    if (!expectKey(p, "\"bank\":"))
        return false;
    out.bank = dram::BankId(std::strtoul(p, &end, 10));
    if (end == p)
        return false;

    if (!expectKey(p, "\"row\":"))
        return false;
    out.row = dram::RowAddr(std::strtoul(p, &end, 10));
    if (end == p)
        return false;

    if (!expectKey(p, "\"col\":"))
        return false;
    out.col = dram::ColAddr(std::strtoul(p, &end, 10));
    return end != p;
}

CommandTracer::CommandTracer(size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
    ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

void
CommandTracer::onCommand(const TraceRecord &rec)
{
    if (ring_.size() < capacity_) {
        ring_.push_back(rec);
    } else {
        ring_[head_] = rec;
        head_ = (head_ + 1) % capacity_;
    }
    ++recorded_;
}

size_t
CommandTracer::size() const
{
    return ring_.size();
}

std::vector<TraceRecord>
CommandTracer::records() const
{
    std::vector<TraceRecord> out;
    out.reserve(ring_.size());
    for (size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

void
CommandTracer::clear()
{
    ring_.clear();
    head_ = 0;
    recorded_ = 0;
}

void
CommandTracer::writeJsonl(std::FILE *f) const
{
    for (const auto &rec : records())
        std::fprintf(f, "%s\n", toJsonl(rec).c_str());
}

bool
CommandTracer::writeJsonl(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    writeJsonl(f);
    return std::fclose(f) == 0;
}

JsonlWriter::JsonlWriter(const std::string &path)
    : path_(path), file_(std::fopen(path.c_str(), "w"))
{
}

JsonlWriter::~JsonlWriter()
{
    if (!file_)
        return;
    // Flush before closing so buffered records are either on disk or
    // reported as lost — never silently dropped.
    flush();
    if (std::fclose(file_) != 0)
        noteError();
    file_ = nullptr;
}

void
JsonlWriter::noteError()
{
    failed_ = true;
    if (!error_reported_) {
        error_reported_ = true;
        warn("trace: cannot write " + path_ +
             " (records are being lost)");
    }
}

bool
JsonlWriter::flush()
{
    if (!file_)
        return false;
    if (std::fflush(file_) != 0 || std::ferror(file_) != 0) {
        noteError();
        return false;
    }
    return !failed_;
}

void
JsonlWriter::onCommand(const TraceRecord &rec)
{
    if (!file_)
        return;
    if (std::fprintf(file_, "%s\n", toJsonl(rec).c_str()) < 0) {
        ++write_errors_;
        noteError();
        return;
    }
    ++written_;
}

} // namespace obs
} // namespace dramscope
