/**
 * @file
 * DRAM Bender-style command programs.
 *
 * A Program is a flat list of command slots with explicit timing
 * (NOPs and sleeps) plus counted, nestable loops — the same
 * abstraction the FPGA infrastructure exposes.  Out-of-spec timing is
 * deliberately expressible; that is the whole point of the tool
 * (RowCopy needs an ACT issued inside tRP).
 */

#ifndef DRAMSCOPE_BENDER_PROGRAM_H
#define DRAMSCOPE_BENDER_PROGRAM_H

#include <cstdint>
#include <vector>

#include "dram/types.h"

namespace dramscope {
namespace bender {

/** Command opcodes of the mini-ISA. */
enum class Opcode
{
    Act,        //!< Activate (bank, row).
    Pre,        //!< Precharge (bank).
    Rd,         //!< Read (bank, col); result appended to ExecResult.
    Wr,         //!< Write (bank, col, data).
    Ref,        //!< Refresh (all banks).
    Nop,        //!< Wait count * tCK.
    SleepNs,    //!< Wait an arbitrary number of nanoseconds.
    LoopBegin,  //!< Repeat until matching LoopEnd, count times.
    LoopEnd,
};

/** One program slot. */
struct Instr
{
    Opcode op = Opcode::Nop;
    dram::BankId bank = 0;
    dram::RowAddr row = 0;
    dram::ColAddr col = 0;
    uint64_t data = 0;
    uint64_t count = 1;  //!< NOP cycles or loop iterations.
    double ns = 0.0;     //!< SleepNs duration.
};

/** Fluent builder for command programs. */
class Program
{
  public:
    Program &act(dram::BankId b, dram::RowAddr r);
    Program &pre(dram::BankId b);
    Program &rd(dram::BankId b, dram::ColAddr c);
    Program &wr(dram::BankId b, dram::ColAddr c, uint64_t data);
    Program &ref();
    Program &nop(uint64_t cycles = 1);
    Program &sleepNs(double ns);
    Program &loopBegin(uint64_t count);
    Program &loopEnd();

    const std::vector<Instr> &instrs() const { return instrs_; }

    /** fatal()s when loops are unbalanced. */
    void validate() const;

    /** Number of slots (not expanded for loops). */
    size_t size() const { return instrs_.size(); }

  private:
    std::vector<Instr> instrs_;
};

} // namespace bender
} // namespace dramscope

#endif // DRAMSCOPE_BENDER_PROGRAM_H
