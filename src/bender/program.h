/**
 * @file
 * DRAM Bender-style command programs.
 *
 * A Program is a flat list of command slots with explicit timing
 * (NOPs and sleeps) plus counted, nestable loops — the same
 * abstraction the FPGA infrastructure exposes.  Out-of-spec timing is
 * deliberately expressible; that is the whole point of the tool
 * (RowCopy needs an ACT issued inside tRP).  A builder that *means*
 * to break a rule says so with expectViolation(), so the static
 * linter (bender/lint.h) can tell intent from accident.
 */

#ifndef DRAMSCOPE_BENDER_PROGRAM_H
#define DRAMSCOPE_BENDER_PROGRAM_H

#include <cstdint>
#include <vector>

#include "dram/types.h"

namespace dramscope {
namespace bender {

namespace lint {
/** Lint rule ids; enumerators live in bender/lint.h. */
enum class Rule : uint8_t;
} // namespace lint

/** Command opcodes of the mini-ISA. */
enum class Opcode
{
    Act,        //!< Activate (bank, row).
    Pre,        //!< Precharge (bank).
    Rd,         //!< Read (bank, col); result appended to ExecResult.
    Wr,         //!< Write (bank, col, data).
    Ref,        //!< Refresh (all banks).
    Nop,        //!< Wait count * tCK.
    SleepNs,    //!< Wait an arbitrary duration (stored as integer ps).
    LoopBegin,  //!< Repeat until matching LoopEnd, count times.
    LoopEnd,
};

/** One program slot. */
struct Instr
{
    Opcode op = Opcode::Nop;
    dram::BankId bank = 0;
    dram::RowAddr row = 0;
    dram::ColAddr col = 0;
    uint64_t data = 0;
    uint64_t count = 1;  //!< NOP cycles or loop iterations.

    /**
     * SleepNs duration in integer picoseconds, rounded once at build
     * time.  Storing the rounded integer (rather than the double ns
     * the builder was given) makes the executor's clock and the
     * linter's symbolic clock agree exactly: both consume the same
     * integer, so there is no second rounding to disagree on.
     */
    int64_t ps = 0;
};

/** Fluent builder for command programs. */
class Program
{
  public:
    Program &act(dram::BankId b, dram::RowAddr r);
    Program &pre(dram::BankId b);
    Program &rd(dram::BankId b, dram::ColAddr c);
    Program &wr(dram::BankId b, dram::ColAddr c, uint64_t data);
    Program &ref();
    Program &nop(uint64_t cycles = 1);
    Program &sleepNs(double ns);
    /** sleepNs without the ns->ps rounding: exact integer wait. */
    Program &sleepPs(int64_t ps);
    Program &loopBegin(uint64_t count);
    Program &loopEnd();

    /**
     * Declares that this program deliberately violates @p rule
     * (RowCopy's ACT inside tRP, hammer variants probing tRAS, ...).
     * The linter demotes matching diagnostics to expected notes and
     * treats the program as clean; unannotated violations stay
     * errors.  Annotating a rule that never fires is itself flagged
     * (stale-expectation), so annotations cannot rot silently.
     */
    Program &expectViolation(lint::Rule rule);

    /** Rules this program declares it violates on purpose. */
    const std::vector<lint::Rule> &expectedViolations() const
    {
        return expected_;
    }

    const std::vector<Instr> &instrs() const { return instrs_; }

    /**
     * fatal()s on structural errors (unbalanced loops).  Runs the
     * linter's structural pass (lint::structuralDiagnostics) and
     * reports the first error; warnings (zero-count loops, dead
     * code) are left to the full linter.
     */
    void validate() const;

    /** Number of slots (not expanded for loops). */
    size_t size() const { return instrs_.size(); }

  private:
    std::vector<Instr> instrs_;
    std::vector<lint::Rule> expected_;
};

} // namespace bender
} // namespace dramscope

#endif // DRAMSCOPE_BENDER_PROGRAM_H
