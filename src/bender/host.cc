/**
 * @file
 * Host executor implementation.
 */

#include "bender/host.h"

#include <algorithm>

#include "dram/faulty_device.h"
#include "util/log.h"

namespace dramscope {
namespace bender {

Host::Host(dram::Device &dev)
    : dev_(dev), tck_ps_(psFromNs(dev.config().timing.tCkNs)),
      lint_mode_(lint::modeFromEnv()),
      fastpath_mode_(dram::fastPathModeFromEnv())
{
}

void
Host::setMetrics(obs::MetricsRegistry *metrics)
{
    metrics_ = metrics;
    if (!metrics_) {
        for (auto *&c : cmd_counters_)
            c = nullptr;
        violation_counter_ = nullptr;
        bank_act_counters_.clear();
        open_row_hist_ = nullptr;
        act_gap_hist_ = nullptr;
        return;
    }
    cmd_counters_[size_t(obs::TraceCmd::Act)] = &metrics_->counter("cmd.act");
    cmd_counters_[size_t(obs::TraceCmd::Pre)] = &metrics_->counter("cmd.pre");
    cmd_counters_[size_t(obs::TraceCmd::Rd)] = &metrics_->counter("cmd.rd");
    cmd_counters_[size_t(obs::TraceCmd::Wr)] = &metrics_->counter("cmd.wr");
    cmd_counters_[size_t(obs::TraceCmd::Ref)] = &metrics_->counter("cmd.ref");
    violation_counter_ = &metrics_->counter("timing.violations");
    bank_act_counters_.clear();
    for (uint32_t b = 0; b < config().numBanks; ++b) {
        bank_act_counters_.push_back(
            &metrics_->counter("bank.act." + std::to_string(b)));
    }
    // Fixed shapes so per-shard histograms merge; out-of-range samples
    // clamp to the edge bins.  Covers the paper's attack parameters
    // (35ns hammer, 7.8us press opens; ~50ns hammer periods).
    open_row_hist_ = &metrics_->histogram("act.open_ns", 64, 0.0, 8000.0);
    act_gap_hist_ = &metrics_->histogram("act.gap_ns", 64, 0.0, 1600.0);
    resetMetricsWindow();
    violations_seen_ = dev_.violationCount();
}

void
Host::resetMetricsWindow()
{
    last_act_ns_.assign(config().numBanks, -1.0);
    open_since_ns_.assign(config().numBanks, -1.0);
}

void
Host::observe(obs::TraceCmd cmd, dram::BankId b, dram::RowAddr row,
              dram::ColAddr col, double ns)
{
    if (metrics_) {
        cmd_counters_[size_t(cmd)]->add();
        if (cmd == obs::TraceCmd::Act && b < bank_act_counters_.size()) {
            bank_act_counters_[b]->add();
            if (last_act_ns_[b] >= 0.0)
                act_gap_hist_->add(ns - last_act_ns_[b]);
            last_act_ns_[b] = ns;
            open_since_ns_[b] = ns;
        } else if (cmd == obs::TraceCmd::Pre &&
                   b < open_since_ns_.size() && open_since_ns_[b] >= 0.0) {
            open_row_hist_->add(ns - open_since_ns_[b]);
            open_since_ns_[b] = -1.0;
        }
    }
    if (trace_)
        trace_->onCommand({ns, cmd, b, row, col});
}

void
Host::observeBulkHammer(dram::BankId b, dram::RowAddr row, uint64_t count,
                        double open_ns, double period_ns, double start_ns)
{
    if (metrics_) {
        cmd_counters_[size_t(obs::TraceCmd::Act)]->add(count);
        cmd_counters_[size_t(obs::TraceCmd::Pre)]->add(count);
        if (b < bank_act_counters_.size()) {
            bank_act_counters_[b]->add(count);
            if (last_act_ns_[b] >= 0.0)
                act_gap_hist_->add(start_ns - last_act_ns_[b]);
            if (count > 1)
                act_gap_hist_->addMany(period_ns, count - 1);
            open_row_hist_->addMany(open_ns, count);
            last_act_ns_[b] = start_ns + double(count - 1) * period_ns;
            open_since_ns_[b] = -1.0;  // The loop ends precharged.
        }
    }
    if (trace_) {
        for (uint64_t k = 0; k < count; ++k) {
            const double t = start_ns + double(k) * period_ns;
            trace_->onCommand({t, obs::TraceCmd::Act, b, row, 0});
            trace_->onCommand({t + open_ns, obs::TraceCmd::Pre, b, 0, 0});
        }
    }
}

void
Host::observeViolations()
{
    const uint64_t total = dev_.violationCount();
    violation_counter_->add(total - violations_seen_);
    violations_seen_ = total;
}

void
Host::execCertifiedLoop(const lint::LoopCertificate &cert, uint64_t count,
                        ExecResult &result)
{
    dram::ActTrain train;
    train.bank = cert.bank;
    train.row = cert.row;
    train.count = count;
    train.startPs = now_ps_;
    train.openPs = cert.openPs;
    train.periodPs = cert.periodPs;
    const double start_ns = nowNsF();
    try {
        if (fastpath_mode_ == dram::FastPathMode::Analytic)
            dev_.actManyAnalytic(train);
        else
            dev_.actMany(train);
    } catch (const dram::FaultError &e) {
        // Rewind to the faulting command's issue slot: step-wise
        // execution would have stopped there with the clock not yet
        // advanced past it.
        const uint64_t done = e.trainCommandsDone;
        now_ps_ = train.startPs + int64_t(done / 2) * train.periodPs +
                  (done % 2 ? train.openPs : 0);
        result.commandsIssued += done;
        throw;
    }
    now_ps_ += int64_t(count) * train.periodPs;
    result.commandsIssued += 2 * count;
    if (observing()) {
        observeBulkHammer(train.bank, train.row, count, train.openNs(),
                          train.periodNs(), start_ns);
    }
}

void
Host::execRange(const std::vector<Instr> &instrs, size_t begin, size_t end,
                ExecResult &result)
{
    size_t i = begin;
    while (i < end) {
        const Instr &ins = instrs[i];
        switch (ins.op) {
          case Opcode::Act:
            if (observing())
                observe(obs::TraceCmd::Act, ins.bank, ins.row, 0, nowNsF());
            dev_.act(ins.bank, ins.row, now());
            now_ps_ += tck_ps_;
            ++result.commandsIssued;
            ++i;
            break;
          case Opcode::Pre:
            if (observing())
                observe(obs::TraceCmd::Pre, ins.bank, 0, 0, nowNsF());
            dev_.pre(ins.bank, now());
            now_ps_ += tck_ps_;
            ++result.commandsIssued;
            ++i;
            break;
          case Opcode::Rd:
            if (observing())
                observe(obs::TraceCmd::Rd, ins.bank, 0, ins.col, nowNsF());
            result.reads.push_back(dev_.read(ins.bank, ins.col, now()));
            now_ps_ += tck_ps_;
            ++result.commandsIssued;
            ++i;
            break;
          case Opcode::Wr:
            if (observing())
                observe(obs::TraceCmd::Wr, ins.bank, 0, ins.col, nowNsF());
            dev_.write(ins.bank, ins.col, ins.data, now());
            now_ps_ += tck_ps_;
            ++result.commandsIssued;
            ++i;
            break;
          case Opcode::Ref:
            if (observing())
                observe(obs::TraceCmd::Ref, 0, 0, 0, nowNsF());
            dev_.refresh(now());
            now_ps_ += tck_ps_;
            ++result.commandsIssued;
            ++i;
            break;
          case Opcode::Nop:
            now_ps_ += int64_t(ins.count) * tck_ps_;
            ++i;
            break;
          case Opcode::SleepNs:
            now_ps_ += ins.ps;
            ++i;
            break;
          case Opcode::LoopBegin: {
            // Find the matching LoopEnd.
            size_t depth = 1;
            size_t body_end = i + 1;
            while (body_end < end && depth > 0) {
                if (instrs[body_end].op == Opcode::LoopBegin)
                    ++depth;
                else if (instrs[body_end].op == Opcode::LoopEnd)
                    --depth;
                if (depth == 0)
                    break;
                ++body_end;
            }
            panicIf(depth != 0, "Host: unbalanced loop (validate?)");

            std::optional<lint::LoopCertificate> cert;
            if (fastpath_mode_ != dram::FastPathMode::Off && ins.count > 0)
                cert = lint::certifyHammerLoop(instrs, i + 1, body_end,
                                               config());
            if (cert) {
                execCertifiedLoop(*cert, ins.count, result);
            } else {
                for (uint64_t k = 0; k < ins.count; ++k)
                    execRange(instrs, i + 1, body_end, result);
            }
            i = body_end + 1;
            break;
          }
          case Opcode::LoopEnd:
            panic("Host: stray LoopEnd");
        }
    }
}

void
Host::preflight(const Program &prog)
{
    const auto report = lint::lint(prog, config());
    const size_t errors = report.count(lint::Severity::Error);
    const size_t warnings = report.count(lint::Severity::Warning);
    if (metrics_) {
        metrics_->counter("lint.programs").add();
        metrics_->counter("lint.errors").add(errors);
        metrics_->counter("lint.warnings").add(warnings);
    }
    for (const auto &d : report.diags) {
        // Unbalanced loops break the executor itself: always fatal,
        // exactly as Program::validate() would have been.
        if (d.rule == lint::Rule::UnbalancedLoop)
            fatal("Program: " + d.message);
        if (d.severity != lint::Severity::Error)
            continue;
        const std::string msg = "lint: [" + std::string(ruleId(d.rule)) +
                                "] slot " + std::to_string(d.slot) +
                                ": " + d.message;
        if (lint_mode_ == lint::Mode::Error)
            fatal(msg);
        warn(msg);
    }
}

ExecResult
Host::run(const Program &prog)
{
    if (lint_mode_ != lint::Mode::Off)
        preflight(prog);
    else
        prog.validate();
    ExecResult result;
    result.startNs = now();
    execRange(prog.instrs(), 0, prog.instrs().size(), result);
    result.endNs = now();
    if (metrics_)
        observeViolations();
    return result;
}

Program
Host::makeWriteRowProgram(const dram::DeviceConfig &cfg, dram::BankId b,
                          dram::RowAddr row,
                          const std::vector<uint64_t> &cols)
{
    const auto &t = cfg.timing;
    Program p;
    p.act(b, row).sleepNs(t.tRcdNs);
    for (dram::ColAddr c = 0; c < cols.size(); ++c)
        p.wr(b, c, cols[c]);
    p.sleepNs(t.tRasNs).pre(b).sleepNs(t.tRpNs);
    return p;
}

Program
Host::makeReadRowProgram(const dram::DeviceConfig &cfg, dram::BankId b,
                         dram::RowAddr row)
{
    const auto &t = cfg.timing;
    Program p;
    p.act(b, row).sleepNs(t.tRcdNs);
    for (dram::ColAddr c = 0; c < cfg.columnsPerRow(); ++c)
        p.rd(b, c);
    p.sleepNs(t.tRasNs).pre(b).sleepNs(t.tRpNs);
    return p;
}

Program
Host::makeWriteColumnsProgram(const dram::DeviceConfig &cfg,
                              dram::BankId b, dram::RowAddr row,
                              const std::vector<dram::ColAddr> &cols,
                              uint64_t rd_data)
{
    const auto &t = cfg.timing;
    Program p;
    p.act(b, row).sleepNs(t.tRcdNs);
    for (const auto c : cols)
        p.wr(b, c, rd_data);
    p.sleepNs(t.tRasNs).pre(b).sleepNs(t.tRpNs);
    return p;
}

Program
Host::makeReadColumnsProgram(const dram::DeviceConfig &cfg,
                             dram::BankId b, dram::RowAddr row,
                             const std::vector<dram::ColAddr> &cols)
{
    const auto &t = cfg.timing;
    Program p;
    p.act(b, row).sleepNs(t.tRcdNs);
    for (const auto c : cols)
        p.rd(b, c);
    p.sleepNs(t.tRasNs).pre(b).sleepNs(t.tRpNs);
    return p;
}

Program
Host::makeHammerProgram(const dram::DeviceConfig &cfg, dram::BankId b,
                        dram::RowAddr row, uint64_t count, double open_ns)
{
    const auto &t = cfg.timing;
    // The close interval honours tRP and, for short open times, pads
    // up to tRC so an ACT-to-ACT period never goes out of spec: a
    // tAggON probe deliberately shortens the open (restore) time, not
    // the activation rate.  For open_ns >= tRC - tCK - tRP (every
    // in-tree caller) this is exactly tRP.
    const double close_ns =
        std::max(t.tRpNs, t.tRcNs() - open_ns - t.tCkNs);
    Program p;
    p.loopBegin(count)
        .act(b, row)
        .sleepNs(open_ns - t.tCkNs)
        .pre(b)
        .sleepNs(close_ns)
        .loopEnd();
    // Sub-tRAS open times (tAggON probes) are a deliberate choice of
    // the experiment, not a slip.
    if (open_ns < t.tRasNs)
        p.expectViolation(lint::Rule::TRas);
    return p;
}

Program
Host::makeRowCopyProgram(const dram::DeviceConfig &cfg, dram::BankId b,
                         dram::RowAddr src, dram::RowAddr dst)
{
    const auto &t = cfg.timing;
    Program p;
    p.act(b, src)
        .sleepNs(t.tRasNs)
        .pre(b)
        .sleepNs(1.0)  // Way inside tRP: bitlines still hold src.
        .act(b, dst)
        .sleepNs(t.tRasNs)
        .pre(b)
        .sleepNs(t.tRpNs);
    // The whole point of RowCopy: the second ACT lands inside tRP
    // (and therefore inside tRC of the first ACT).
    p.expectViolation(lint::Rule::TRp).expectViolation(lint::Rule::TRc);
    return p;
}

Program
Host::makeRefreshProgram(const dram::DeviceConfig &cfg)
{
    Program p;
    p.ref().sleepNs(cfg.timing.tRfcNs);
    return p;
}

void
Host::writeRow(dram::BankId b, dram::RowAddr row,
               const std::vector<uint64_t> &cols)
{
    fatalIf(cols.size() != config().columnsPerRow(),
            "writeRow: column count mismatch");
    run(makeWriteRowProgram(config(), b, row, cols));
}

void
Host::writeRowPattern(dram::BankId b, dram::RowAddr row, uint64_t rd_data)
{
    writeRow(b, row,
             std::vector<uint64_t>(config().columnsPerRow(), rd_data));
}

void
Host::writeColumns(dram::BankId b, dram::RowAddr row,
                   const std::vector<dram::ColAddr> &cols,
                   uint64_t rd_data)
{
    run(makeWriteColumnsProgram(config(), b, row, cols, rd_data));
}

std::vector<uint64_t>
Host::readColumns(dram::BankId b, dram::RowAddr row,
                  const std::vector<dram::ColAddr> &cols)
{
    return run(makeReadColumnsProgram(config(), b, row, cols)).reads;
}

std::vector<uint64_t>
Host::readRow(dram::BankId b, dram::RowAddr row)
{
    return run(makeReadRowProgram(config(), b, row)).reads;
}

BitVec
Host::readRowBits(dram::BankId b, dram::RowAddr row)
{
    const auto cols = readRow(b, row);
    const uint32_t w = config().rdDataBits;
    BitVec bits(cols.size() * w);
    for (size_t c = 0; c < cols.size(); ++c) {
        for (uint32_t i = 0; i < w; ++i)
            bits.set(c * w + i, (cols[c] >> i) & 1ULL);
    }
    return bits;
}

void
Host::writeRowBits(dram::BankId b, dram::RowAddr row, const BitVec &bits)
{
    const uint32_t w = config().rdDataBits;
    fatalIf(bits.size() != size_t(config().columnsPerRow()) * w,
            "writeRowBits: size mismatch");
    std::vector<uint64_t> cols(config().columnsPerRow(), 0);
    for (size_t c = 0; c < cols.size(); ++c) {
        for (uint32_t i = 0; i < w; ++i) {
            if (bits.get(c * w + i))
                cols[c] |= 1ULL << i;
        }
    }
    writeRow(b, row, cols);
}

ExecResult
Host::hammer(dram::BankId b, dram::RowAddr row, uint64_t count,
             double open_ns)
{
    return run(makeHammerProgram(config(), b, row, count, open_ns));
}

ExecResult
Host::press(dram::BankId b, dram::RowAddr row, uint64_t count,
            double open_ns)
{
    return hammer(b, row, count, open_ns);
}

ExecResult
Host::rowCopy(dram::BankId b, dram::RowAddr src, dram::RowAddr dst)
{
    return run(makeRowCopyProgram(config(), b, src, dst));
}

ExecResult
Host::refresh()
{
    return run(makeRefreshProgram(config()));
}

} // namespace bender
} // namespace dramscope
