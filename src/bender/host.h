/**
 * @file
 * The host controller: executes Bender programs against a device with
 * a cycle clock, and provides the convenience operations every
 * reverse-engineering tool is built from (row read/write, hammer,
 * press, RowCopy, retention waits).
 *
 * The host sees only the command/data interface (dram::Device) —
 * exactly the vantage point of the paper's FPGA platform.  It never
 * touches device internals, and it runs unchanged whether the device
 * is a single chip, a DIMM rank, or an HBM channel.
 *
 * The clock is an integer picosecond counter: command steps (tCK,
 * tRCD, 35 ns hammer opens) accumulate exactly even after
 * multi-minute retention waits, where a double nanosecond clock would
 * start rounding sub-ns steps.
 */

#ifndef DRAMSCOPE_BENDER_HOST_H
#define DRAMSCOPE_BENDER_HOST_H

#include <cmath>
#include <vector>

#include "bender/lint.h"
#include "bender/program.h"
#include "bender/trace.h"
#include "dram/device.h"
#include "util/bitvec.h"
#include "util/metrics.h"

namespace dramscope {
namespace bender {

/** Result of executing a program. */
struct ExecResult
{
    std::vector<uint64_t> reads;  //!< RD results in program order.
    dram::NanoTime startNs = 0;
    dram::NanoTime endNs = 0;
    uint64_t commandsIssued = 0;
};

/** Host controller bound to one device. */
class Host
{
  public:
    /** @param dev Device under test (borrowed; must outlive Host). */
    explicit Host(dram::Device &dev);

    /** Current host clock (ns, truncated from picoseconds). */
    dram::NanoTime now() const { return dram::NanoTime(now_ps_ / 1000); }

    /** Advances the clock without issuing commands. */
    void waitNs(double ns) { now_ps_ += psFromNs(ns); }

    /** Advances the clock by milliseconds (retention tests). */
    void waitMs(double ms) { now_ps_ += int64_t(std::llround(ms * 1.0e9)); }

    /**
     * Executes a program.  Loops that bender::lint certifies as
     * constant-duration hammer kernels (lint::certifyHammerLoop) run
     * through the device's bulk fast path — bit-exact batched replay
     * (FastPathMode::Exact, the default) or analytic aggregate-dose
     * sampling (Analytic); FastPathMode::Off and all uncertified
     * loops execute slot by slot.  The mode comes from the
     * DRAMSCOPE_FASTPATH environment variable at construction and
     * can be overridden with setFastPathMode().
     *
     * When the environment selects a lint mode (DRAMSCOPE_LINT=warn
     * or =error, read once at Host construction), every program is
     * statically analyzed before it executes: unexpected violations
     * are logged (warn) or fatal (error), and lint.programs /
     * lint.errors / lint.warnings counters are updated on an
     * attached metrics registry.  See bender/lint.h.
     */
    ExecResult run(const Program &prog);

    /// @name Program factories.
    /// The exact programs the convenience operations below execute,
    /// exposed so the linter, the CLI `lint` subcommand, and tests
    /// can analyze them without a device.  Deliberately out-of-spec
    /// steps carry expectViolation() annotations here — the single
    /// place where intent is declared.
    /// @{

    /** ACT, tRCD, one WR per entry of @p cols, tRAS, PRE, tRP. */
    static Program makeWriteRowProgram(const dram::DeviceConfig &cfg,
                                       dram::BankId b, dram::RowAddr row,
                                       const std::vector<uint64_t> &cols);

    /** ACT, tRCD, one RD per column of the row, tRAS, PRE, tRP. */
    static Program makeReadRowProgram(const dram::DeviceConfig &cfg,
                                      dram::BankId b, dram::RowAddr row);

    /** writeRow restricted to @p cols (all written as @p rd_data). */
    static Program
    makeWriteColumnsProgram(const dram::DeviceConfig &cfg, dram::BankId b,
                            dram::RowAddr row,
                            const std::vector<dram::ColAddr> &cols,
                            uint64_t rd_data);

    /** readRow restricted to @p cols. */
    static Program
    makeReadColumnsProgram(const dram::DeviceConfig &cfg, dram::BankId b,
                           dram::RowAddr row,
                           const std::vector<dram::ColAddr> &cols);

    /**
     * @p count ACT..PRE pairs with @p open_ns of open time.  Opens
     * shorter than tRAS are a deliberate probe and annotated as an
     * expected tRAS violation; the paper-default 35 ns hammer and
     * 7.8 us press kernels are fully in spec and carry none.
     */
    static Program makeHammerProgram(const dram::DeviceConfig &cfg,
                                     dram::BankId b, dram::RowAddr row,
                                     uint64_t count, double open_ns);

    /**
     * The RowCopy kernel: ACT @p src, PRE, then ACT @p dst inside
     * tRP so the bitlines charge-share into @p dst.  Annotated as an
     * expected tRP + tRC violation — that *is* the operation.
     */
    static Program makeRowCopyProgram(const dram::DeviceConfig &cfg,
                                      dram::BankId b, dram::RowAddr src,
                                      dram::RowAddr dst);

    /** REF followed by tRFC. */
    static Program makeRefreshProgram(const dram::DeviceConfig &cfg);

    /// @}

    /// @name Convenience operations (legal timing auto-inserted).
    /// @{

    /** Writes one RD_data value to every column of a row. */
    void writeRowPattern(dram::BankId b, dram::RowAddr row,
                         uint64_t rd_data);

    /** Writes per-column RD_data values (size = columnsPerRow). */
    void writeRow(dram::BankId b, dram::RowAddr row,
                  const std::vector<uint64_t> &cols);

    /** Reads every column of a row. */
    std::vector<uint64_t> readRow(dram::BankId b, dram::RowAddr row);

    /**
     * Writes @p rd_data to a subset of columns only (cheap probes
     * that do not need the whole row).
     */
    void writeColumns(dram::BankId b, dram::RowAddr row,
                      const std::vector<dram::ColAddr> &cols,
                      uint64_t rd_data);

    /** Reads a subset of columns. */
    std::vector<uint64_t>
    readColumns(dram::BankId b, dram::RowAddr row,
                const std::vector<dram::ColAddr> &cols);

    /**
     * Reads a row as host-order bits: bit index = col * rdDataBits +
     * rd_bit.
     */
    BitVec readRowBits(dram::BankId b, dram::RowAddr row);

    /** Writes a row from host-order bits. */
    void writeRowBits(dram::BankId b, dram::RowAddr row,
                      const BitVec &bits);

    /**
     * Single-sided RowHammer: @p count ACT-PRE pairs with @p open_ns
     * of open-row time each (paper: 300K x 35ns).
     */
    ExecResult hammer(dram::BankId b, dram::RowAddr row, uint64_t count,
                      double open_ns = 35.0);

    /**
     * RowPress: @p count activations each held open for @p open_ns
     * (paper: 8K x 7.8us).
     */
    ExecResult press(dram::BankId b, dram::RowAddr row, uint64_t count,
                     double open_ns = 7800.0);

    /**
     * RowCopy: activates @p src, precharges, then re-activates
     * @p dst inside tRP so the bitlines charge-share into @p dst.
     */
    ExecResult rowCopy(dram::BankId b, dram::RowAddr src,
                       dram::RowAddr dst);

    /** Issues a refresh (and waits tRFC). */
    ExecResult refresh();

    /// @}

    /// @name Observability (see util/metrics.h and bender/trace.h).
    /// @{

    /**
     * Attaches (or detaches, with nullptr) a metrics registry.  Every
     * subsequently issued command updates per-kind and per-bank
     * counters, open-row-time and ACT-to-ACT interval histograms, and
     * the timing-violation counter.  The registry is borrowed and
     * must outlive the attachment.  Counter/histogram handles resolve
     * once here, so the per-command cost is an increment — and a
     * single branch when detached.
     */
    void setMetrics(obs::MetricsRegistry *metrics);

    /** The attached metrics registry (nullptr when detached). */
    obs::MetricsRegistry *metrics() const { return metrics_; }

    /**
     * Attaches (or detaches) a command trace sink receiving one
     * record per issued command.  Borrowed; must outlive use.
     */
    void setTrace(obs::TraceSink *trace) { trace_ = trace; }

    /** The attached trace sink (nullptr when detached). */
    obs::TraceSink *trace() const { return trace_; }

    /**
     * Forgets per-bank open-row / last-ACT interval state so the next
     * ACT starts a fresh observation window.  SweepRunner calls this
     * at shard boundaries: intervals never span shards, which keeps
     * parallel merged histograms identical to serial ones regardless
     * of how shards land on replicas.
     */
    void resetMetricsWindow();

    /// @}

    /**
     * Overrides the fast-forward mode (see run()).  SweepRunner
     * copies the caller host's mode onto every replica, so a sweep
     * runs one mode end to end regardless of sharding.
     */
    void setFastPathMode(dram::FastPathMode mode) { fastpath_mode_ = mode; }

    /** The active fast-forward mode. */
    dram::FastPathMode fastPathMode() const { return fastpath_mode_; }

    /** The device under test. */
    dram::Device &device() { return dev_; }
    const dram::Device &device() const { return dev_; }

    const dram::DeviceConfig &config() const { return dev_.config(); }

  private:
    /** Exact conversion for the repo's dyadic-rational timing values. */
    static int64_t psFromNs(double ns)
    {
        return int64_t(std::llround(ns * 1000.0));
    }

    /** Clock as a double ns value (observability timestamps). */
    double nowNsF() const { return double(now_ps_) / 1000.0; }

    /**
     * Executes instrs [begin, end); returns the slot after the range.
     */
    void execRange(const std::vector<Instr> &instrs, size_t begin,
                   size_t end, ExecResult &result);

    /**
     * Hands one certified loop to the device's bulk fast path and
     * advances the clock by exactly count * period.  When a fault
     * aborts the train the clock rewinds to the faulting command's
     * issue slot before rethrowing, exactly where step-wise
     * execution would have stopped.
     */
    void execCertifiedLoop(const lint::LoopCertificate &cert,
                           uint64_t count, ExecResult &result);

    /**
     * Lints @p prog before execution (mode Warn or Error): updates
     * lint counters on an attached registry, logs or fatal()s on
     * unexpected findings.
     */
    void preflight(const Program &prog);

    /** True when any observability consumer is attached. */
    bool observing() const { return metrics_ != nullptr || trace_ != nullptr; }

    /**
     * Records one issued command (metrics + trace) at issue time
     * @p ns.  Only called when observing().
     */
    void observe(obs::TraceCmd cmd, dram::BankId b, dram::RowAddr row,
                 dram::ColAddr col, double ns);

    /**
     * Records the bulk fast path's @p count ACT-PRE pairs without
     * expanding them per iteration for metrics (tracing, which is
     * per-record by nature, still emits every pair).
     */
    void observeBulkHammer(dram::BankId b, dram::RowAddr row,
                           uint64_t count, double open_ns,
                           double period_ns, double start_ns);

    /** Folds new device timing violations into the violation counter. */
    void observeViolations();

    dram::Device &dev_;
    int64_t now_ps_ = 1'000'000;  //!< Start past 0 to keep gaps positive.
    int64_t tck_ps_;
    lint::Mode lint_mode_;  //!< Pre-flight mode (env, read once).
    dram::FastPathMode fastpath_mode_;  //!< Loop engine (env, read once).

    obs::MetricsRegistry *metrics_ = nullptr;
    obs::TraceSink *trace_ = nullptr;

    /// @name Handles resolved by setMetrics (valid iff metrics_).
    /// @{
    obs::Counter *cmd_counters_[5] = {};     //!< Indexed by TraceCmd.
    obs::Counter *violation_counter_ = nullptr;
    std::vector<obs::Counter *> bank_act_counters_;
    Histogram *open_row_hist_ = nullptr;     //!< PRE - ACT per open.
    Histogram *act_gap_hist_ = nullptr;      //!< Same-bank ACT gaps.
    /// @}

    std::vector<double> last_act_ns_;   //!< Per bank; < 0 = none yet.
    std::vector<double> open_since_ns_; //!< Per bank; < 0 = closed.
    uint64_t violations_seen_ = 0;      //!< Device count already folded.
};

} // namespace bender
} // namespace dramscope

#endif // DRAMSCOPE_BENDER_HOST_H
