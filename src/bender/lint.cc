/**
 * @file
 * The Bender program linter: structural pass + abstract timing
 * interpreter.  See bender/lint.h for the model.
 */

#include "bender/lint.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "util/log.h"

namespace dramscope {
namespace bender {
namespace lint {

const std::vector<RuleInfo> &
ruleTable()
{
    static const std::vector<RuleInfo> table = {
#define X(name, id, sev, summary) \
    {Rule::name, id, Severity::sev, summary},
        DRAMSCOPE_LINT_RULES(X)
#undef X
    };
    return table;
}

size_t
ruleCount()
{
    return ruleTable().size();
}

const RuleInfo &
ruleInfo(Rule rule)
{
    const auto idx = size_t(rule);
    panicIf(idx >= ruleTable().size(), "lint: rule out of range");
    return ruleTable()[idx];
}

const char *
ruleId(Rule rule)
{
    return ruleInfo(rule).id;
}

bool
certifyOnlyRule(Rule rule)
{
    return rule == Rule::ExposureBound || rule == Rule::PowerWindow ||
           rule == Rule::EnergyEstimate;
}

const char *
toString(Severity sev)
{
    switch (sev) {
      case Severity::Note:    return "note";
      case Severity::Warning: return "warning";
      case Severity::Error:   return "error";
    }
    return "?";
}

size_t
Report::count(Severity sev) const
{
    size_t n = 0;
    for (const auto &d : diags) {
        if (d.severity == sev)
            ++n;
    }
    return n;
}

Mode
modeFromEnv()
{
    const char *env = std::getenv("DRAMSCOPE_LINT");
    if (env == nullptr)
        return Mode::Off;
    if (std::strcmp(env, "warn") == 0)
        return Mode::Warn;
    if (std::strcmp(env, "error") == 0)
        return Mode::Error;
    return Mode::Off;
}

namespace {

/** Formats a picosecond quantity as "12.345 ns". */
std::string
fmtNs(int64_t ps)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.3f ns", double(ps) / 1000.0);
    return buf;
}

/**
 * The abstract interpreter.  Tracks a symbolic integer-picosecond
 * clock and a per-bank FSM through the program; loop bodies have
 * constant duration, so after a few simulated iterations the rest of
 * a loop is fast-forwarded arithmetically (timestamps written inside
 * the loop shift with the clock; pre-loop timestamps stay absolute).
 */
class Interp
{
  public:
    Interp(const Program &prog, const dram::DeviceConfig &cfg,
           Report &report, Certificate *cert = nullptr)
        : instrs_(prog.instrs()), cfg_(cfg),
          report_(report), cert_(cert), tck_ps_(ps(cfg.timing.tCkNs)),
          trcd_ps_(ps(cfg.timing.tRcdNs)), tras_ps_(ps(cfg.timing.tRasNs)),
          trp_ps_(ps(cfg.timing.tRpNs)), trc_ps_(ps(cfg.timing.tRcNs())),
          trrd_ps_(ps(cfg.timing.tRrdNs)), tfaw_ps_(ps(cfg.timing.tFawNs)),
          banks_(cfg.numBanks)
    {
        // Structural findings are already in the report; never emit
        // the same (rule, slot) twice.
        for (const auto &d : report_.diags)
            seen_.insert({uint8_t(d.rule), d.slot});
        if (cert_ != nullptr) {
            window_ps_ = std::max<int64_t>(ps(cert_->powerWindowNs), 1);
            background_mw_ = cfg.energy.backgroundMw;
        }
    }

    void
    run()
    {
        walk(0, instrs_.size());
        report_.durationPs = clock_ps_;
        finishOpenAtEnd();
        finishRefreshBudget();
        if (cert_ != nullptr)
            finishCertificate();
    }

  private:
    /**
     * Iterations of a loop simulated slot-by-slot before fast-
     * forwarding: enough for every cross-iteration pattern the rules
     * can see (tail-to-head spacing needs 2, the four-ACT tFAW
     * window needs 5) to reach steady state.
     */
    static constexpr uint64_t kSimIters = 6;

    static int64_t
    ps(double ns)
    {
        return int64_t(std::llround(ns * 1000.0));
    }

    struct BankState
    {
        bool open = false;
        dram::RowAddr openRow = 0;
        size_t openSlot = 0;     //!< Slot of the opening ACT.
        int64_t lastActPs = -1;  //!< Issue time of the last ACT.
        int64_t lastPrePs = -1;  //!< Issue time of the last PRE.
    };

    void
    diag(Rule rule, size_t slot, std::string msg)
    {
        if (!seen_.insert({uint8_t(rule), slot}).second)
            return;
        report_.diags.push_back({rule, ruleInfo(rule).severity, slot,
                                 false, clock_ps_, std::move(msg)});
    }

    /** Key of the per-(bank, row) symbolic activation counter. */
    static uint64_t
    rowKey(dram::BankId bank, dram::RowAddr row)
    {
        return (uint64_t(bank) << 32) | uint64_t(row);
    }

    /** Effect analysis: one more ACT lands on (bank, row). */
    void
    trackAct(const Instr &ins, size_t slot)
    {
        if (cert_ == nullptr)
            return;
        const uint64_t key = rowKey(ins.bank, ins.row);
        const uint64_t n = ++row_acts_[key];
        row_act_slot_[key] = slot;
        if (n > max_row_acts_) {
            max_row_acts_ = n;
            max_key_ = key;
            max_slot_ = slot;
        }
    }

    /**
     * Effect analysis: a command costing @p pj issues at the current
     * clock.  Maintains the rolling power window (the energy
     * generalization of the four-ACT tFAW deque) and its peak.
     */
    void
    trackEnergy(size_t slot, double pj)
    {
        if (cert_ == nullptr)
            return;
        cmd_energy_pj_ += pj;
        const int64_t t = clock_ps_;
        pwr_.emplace_back(t, pj);
        pwr_sum_pj_ += pj;
        while (!pwr_.empty() && pwr_.front().first <= t - window_ps_) {
            pwr_sum_pj_ -= pwr_.front().second;
            pwr_.pop_front();
        }
        // pJ/ps is W, so the window average in mW is 1000 * sum/len.
        const double mw =
            1000.0 * pwr_sum_pj_ / double(window_ps_) + background_mw_;
        if (mw > peak_window_mw_) {
            peak_window_mw_ = mw;
            peak_slot_ = slot;
        }
    }

    void
    onAct(const Instr &ins, size_t slot)
    {
        const int64_t t = clock_ps_;
        auto &bank = banks_[ins.bank];
        if (bank.open) {
            diag(Rule::ActOpen, slot,
                 "ACT bank " + std::to_string(ins.bank) + " row " +
                     std::to_string(ins.row) + ": row " +
                     std::to_string(bank.openRow) + " is still open");
        } else if (bank.lastPrePs >= 0 && t - bank.lastPrePs < trp_ps_) {
            diag(Rule::TRp, slot,
                 "ACT bank " + std::to_string(ins.bank) + " row " +
                     std::to_string(ins.row) + ": " +
                     fmtNs(t - bank.lastPrePs) + " since PRE, tRP is " +
                     fmtNs(trp_ps_));
        }
        if (bank.lastActPs >= 0 && t - bank.lastActPs < trc_ps_) {
            diag(Rule::TRc, slot,
                 "ACT bank " + std::to_string(ins.bank) + ": " +
                     fmtNs(t - bank.lastActPs) +
                     " since the previous same-bank ACT, tRC is " +
                     fmtNs(trc_ps_));
        }
        if (last_act_any_ps_ >= 0 && t - last_act_any_ps_ < trrd_ps_) {
            diag(Rule::TRrd, slot,
                 "ACT bank " + std::to_string(ins.bank) + ": " +
                     fmtNs(t - last_act_any_ps_) +
                     " since the previous ACT, tRRD is " +
                     fmtNs(trrd_ps_));
        }
        if (faw_.size() == 4 && t - faw_.front() < tfaw_ps_) {
            diag(Rule::TFaw, slot,
                 "ACT bank " + std::to_string(ins.bank) +
                     ": fifth ACT " + fmtNs(t - faw_.front()) +
                     " after the fourth-most-recent one, tFAW is " +
                     fmtNs(tfaw_ps_));
        }
        faw_.push_back(t);
        if (faw_.size() > 4)
            faw_.pop_front();
        last_act_any_ps_ = t;
        bank.lastActPs = t;
        bank.open = true;
        bank.openRow = ins.row;
        bank.openSlot = slot;
    }

    void
    onPre(const Instr &ins, size_t slot)
    {
        auto &bank = banks_[ins.bank];
        if (bank.open && clock_ps_ - bank.lastActPs < tras_ps_) {
            diag(Rule::TRas, slot,
                 "PRE bank " + std::to_string(ins.bank) + ": " +
                     fmtNs(clock_ps_ - bank.lastActPs) +
                     " since ACT, tRAS is " + fmtNs(tras_ps_));
        }
        bank.open = false;
        bank.lastPrePs = clock_ps_;
    }

    void
    onRw(const Instr &ins, size_t slot, const char *verb)
    {
        auto &bank = banks_[ins.bank];
        if (!bank.open) {
            diag(Rule::RwClosed, slot,
                 std::string(verb) + " bank " + std::to_string(ins.bank) +
                     " col " + std::to_string(ins.col) +
                     ": bank is precharged (no open row)");
        } else if (clock_ps_ - bank.lastActPs < trcd_ps_) {
            diag(Rule::TRcd, slot,
                 std::string(verb) + " bank " + std::to_string(ins.bank) +
                     " col " + std::to_string(ins.col) + ": " +
                     fmtNs(clock_ps_ - bank.lastActPs) +
                     " since ACT, tRCD is " + fmtNs(trcd_ps_));
        }
    }

    void
    onRef(size_t slot)
    {
        for (size_t b = 0; b < banks_.size(); ++b) {
            if (banks_[b].open) {
                diag(Rule::RefOpen, slot,
                     "REF: bank " + std::to_string(b) + " row " +
                         std::to_string(banks_[b].openRow) +
                         " is still open");
                break;
            }
        }
        ++report_.refCount;
        // Refresh-window segmentation: REF restores every row, so the
        // per-row exposure counters start over (the running max is
        // the bound across windows).  Matches the scheduler's dynamic
        // mc.exposure accounting, which closes all windows at REF.
        if (cert_ != nullptr) {
            row_acts_.clear();
            row_act_slot_.clear();
        }
    }

    /**
     * Fast-forwards the interpreter state over @p skipped further
     * identical loop iterations of duration @p iter_ps that issued
     * @p iter_cmds commands and @p iter_refs REFs each.  Timestamps
     * written at or after @p loop_start_ps belong to the loop and
     * shift with the clock; older ones are absolute and stay.
     *
     * In certify mode @p iter_pj is the body's constant per-iteration
     * command energy and @p acts0 snapshots the per-row counters from
     * just before the last simulated iteration: REF-free bodies fold
     * exactly by per-key delta multiplication, while bodies with REFs
     * leave the steady-state counters as-is (every window pattern was
     * covered by the simulated iterations, so the running max is
     * already the bound) and drop the exactness claim.
     */
    void
    fastForward(uint64_t skipped, int64_t iter_ps, uint64_t iter_cmds,
                uint64_t iter_refs, int64_t loop_start_ps,
                double iter_pj,
                const std::map<uint64_t, uint64_t> &acts0)
    {
        const int64_t shift = int64_t(skipped) * iter_ps;
        const auto shifted = [&](int64_t ts) {
            return ts >= loop_start_ps ? ts + shift : ts;
        };
        clock_ps_ += shift;
        report_.commandCount += skipped * iter_cmds;
        report_.refCount += skipped * iter_refs;
        for (auto &bank : banks_) {
            if (bank.lastActPs >= 0)
                bank.lastActPs = shifted(bank.lastActPs);
            if (bank.lastPrePs >= 0)
                bank.lastPrePs = shifted(bank.lastPrePs);
        }
        if (last_act_any_ps_ >= 0)
            last_act_any_ps_ = shifted(last_act_any_ps_);
        for (auto &ts : faw_)
            ts = shifted(ts);
        if (cert_ == nullptr)
            return;
        cmd_energy_pj_ += double(skipped) * iter_pj;
        for (auto &ev : pwr_)
            ev.first = shifted(ev.first);
        if (iter_refs == 0) {
            for (auto &kv : row_acts_) {
                const auto it0 = acts0.find(kv.first);
                const uint64_t before =
                    it0 == acts0.end() ? 0 : it0->second;
                const uint64_t delta = kv.second - before;
                if (delta == 0)
                    continue;
                kv.second += delta * skipped;
                if (kv.second > max_row_acts_) {
                    max_row_acts_ = kv.second;
                    max_key_ = kv.first;
                    max_slot_ = row_act_slot_[kv.first];
                }
            }
        } else {
            exact_ = false;
        }
    }

    /** Interprets slots [begin, end) once. */
    void
    walk(size_t begin, size_t end)
    {
        size_t i = begin;
        while (i < end) {
            const Instr &ins = instrs_[i];
            switch (ins.op) {
              case Opcode::Act:
                onAct(ins, i);
                trackAct(ins, i);
                trackEnergy(i, cfg_.energy.eActPj);
                ++report_.commandCount;
                clock_ps_ += tck_ps_;
                ++i;
                break;
              case Opcode::Pre:
                onPre(ins, i);
                trackEnergy(i, cfg_.energy.ePrePj);
                ++report_.commandCount;
                clock_ps_ += tck_ps_;
                ++i;
                break;
              case Opcode::Rd:
                onRw(ins, i, "RD");
                trackEnergy(i, cfg_.energy.eRdPj);
                ++report_.commandCount;
                clock_ps_ += tck_ps_;
                ++i;
                break;
              case Opcode::Wr:
                onRw(ins, i, "WR");
                trackEnergy(i, cfg_.energy.eWrPj);
                ++report_.commandCount;
                clock_ps_ += tck_ps_;
                ++i;
                break;
              case Opcode::Ref:
                onRef(i);
                trackEnergy(i, cfg_.energy.eRefPj);
                ++report_.commandCount;
                clock_ps_ += tck_ps_;
                ++i;
                break;
              case Opcode::Nop:
                clock_ps_ += int64_t(ins.count) * tck_ps_;
                ++i;
                break;
              case Opcode::SleepNs:
                clock_ps_ += ins.ps;
                ++i;
                break;
              case Opcode::LoopBegin: {
                size_t depth = 1;
                size_t body_end = i + 1;
                while (body_end < end && depth > 0) {
                    if (instrs_[body_end].op == Opcode::LoopBegin)
                        ++depth;
                    else if (instrs_[body_end].op == Opcode::LoopEnd)
                        --depth;
                    if (depth == 0)
                        break;
                    ++body_end;
                }
                // Unbalanced structure is reported by the structural
                // pass; lint() skips the timing walk entirely then.
                panicIf(depth != 0, "lint: unbalanced loop in walk");

                const int64_t loop_start_ps = clock_ps_;
                uint64_t sim = std::min(ins.count, kSimIters);
                int64_t iter_ps = 0;
                uint64_t iter_cmds = 0;
                uint64_t iter_refs = 0;
                double iter_pj = 0.0;
                std::map<uint64_t, uint64_t> acts0;
                for (uint64_t k = 0; k < sim; ++k) {
                    if (cert_ != nullptr && k + 1 == sim)
                        acts0 = row_acts_;
                    const int64_t t0 = clock_ps_;
                    const uint64_t c0 = report_.commandCount;
                    const uint64_t r0 = report_.refCount;
                    const double e0 = cmd_energy_pj_;
                    walk(i + 1, body_end);
                    iter_ps = clock_ps_ - t0;
                    iter_cmds = report_.commandCount - c0;
                    iter_refs = report_.refCount - r0;
                    iter_pj = cmd_energy_pj_ - e0;
                    // Certify mode must see every rolling power
                    // window the real run would: when the body is
                    // shorter than the window, simulate enough extra
                    // iterations for one window to fill before fast-
                    // forwarding (duration is constant by ISA, so the
                    // coverage count is known after one iteration).
                    if (cert_ != nullptr && k == 0 &&
                        ins.count > sim && iter_ps > 0) {
                        const uint64_t cover =
                            uint64_t(window_ps_ / iter_ps) + 2;
                        if (cover > sim)
                            sim = std::min(ins.count, cover);
                    }
                }
                if (ins.count > sim) {
                    fastForward(ins.count - sim, iter_ps, iter_cmds,
                                iter_refs, loop_start_ps, iter_pj,
                                acts0);
                }
                i = body_end + 1;
                break;
              }
              case Opcode::LoopEnd:
                panic("lint: stray LoopEnd in walk");
            }
        }
    }

    void
    finishOpenAtEnd()
    {
        for (size_t b = 0; b < banks_.size(); ++b) {
            if (banks_[b].open) {
                diag(Rule::OpenAtEnd, banks_[b].openSlot,
                     "bank " + std::to_string(b) + " row " +
                         std::to_string(banks_[b].openRow) +
                         " is still open at program end");
            }
        }
    }

    void
    finishRefreshBudget()
    {
        const int64_t window_ps =
            int64_t(std::llround(cfg_.timing.refreshWindowMs * 1.0e9));
        if (report_.durationPs <= window_ps)
            return;
        const double duration_ns = double(report_.durationPs) / 1000.0;
        const auto needed =
            uint64_t(duration_ns / cfg_.timing.tRefiNs);
        if (report_.refCount >= needed)
            return;
        diag(Rule::RefreshBudget, 0,
             "program spans " + fmtNs(report_.durationPs) +
                 " (> tREFW of " + fmtNs(window_ps) + ") but issues " +
                 std::to_string(report_.refCount) + " REF(s); ~" +
                 std::to_string(needed) +
                 " needed to keep every row refreshed");
    }

    /** Fills in the certificate and raises the certify-only rules. */
    void
    finishCertificate()
    {
        Certificate &c = *cert_;
        c.maxRowActs = max_row_acts_;
        c.hottestBank = dram::BankId(max_key_ >> 32);
        c.hottestRow = dram::RowAddr(max_key_ & 0xffffffffULL);
        c.exact = exact_;
        c.commandEnergyPj = cmd_energy_pj_;
        // mW over ps: 1 mW = 1e-3 pJ/ps.
        c.backgroundEnergyPj =
            background_mw_ * double(report_.durationPs) * 1.0e-3;
        c.avgPowerMw =
            report_.durationPs > 0
                ? 1000.0 * c.totalEnergyPj() / double(report_.durationPs)
                : background_mw_;
        c.peakWindowPowerMw = std::max(peak_window_mw_, background_mw_);
        if (max_row_acts_ > c.exposureThreshold) {
            diag(Rule::ExposureBound, max_slot_,
                 "proven bound of " + std::to_string(max_row_acts_) +
                     " ACTs to bank " + std::to_string(c.hottestBank) +
                     " row " + std::to_string(c.hottestRow) +
                     " in one refresh window exceeds the RowHammer "
                     "threshold of " +
                     std::to_string(c.exposureThreshold) +
                     (exact_ ? " (bound is exact)"
                             : " (bound is conservative)"));
        }
        if (c.peakWindowPowerMw > c.powerBudgetMw) {
            char buf[160];
            std::snprintf(buf, sizeof buf,
                          "peak rolling-window power %.2f mW over %.0f ns "
                          "exceeds the %.2f mW budget",
                          c.peakWindowPowerMw, c.powerWindowNs,
                          c.powerBudgetMw);
            diag(Rule::PowerWindow, peak_slot_, buf);
        }
        diag(Rule::EnergyEstimate, 0, c.summary());
    }

    const std::vector<Instr> &instrs_;
    const dram::DeviceConfig &cfg_;
    Report &report_;
    Certificate *cert_;  //!< Effect analysis on when non-null.

    const int64_t tck_ps_, trcd_ps_, tras_ps_, trp_ps_, trc_ps_;
    const int64_t trrd_ps_, tfaw_ps_;

    int64_t clock_ps_ = 0;
    std::vector<BankState> banks_;
    int64_t last_act_any_ps_ = -1;
    std::deque<int64_t> faw_;  //!< Issue times of the last 4 ACTs.
    std::set<std::pair<uint8_t, size_t>> seen_;

    /// @name Effect analysis (certify mode only).
    /// @{
    int64_t window_ps_ = 1;    //!< Rolling power-window length.
    double background_mw_ = 0.0;
    /** Symbolic per-(bank, row) ACTs since the last REF (std::map:
     *  iterated when fast-forwarding, so the order must be stable). */
    std::map<uint64_t, uint64_t> row_acts_;
    std::map<uint64_t, size_t> row_act_slot_;  //!< Last ACT slot per key.
    uint64_t max_row_acts_ = 0;  //!< Running max across all windows.
    uint64_t max_key_ = 0;
    size_t max_slot_ = 0;
    double cmd_energy_pj_ = 0.0;
    std::deque<std::pair<int64_t, double>> pwr_;  //!< (issue ps, pJ).
    double pwr_sum_pj_ = 0.0;  //!< Energy inside the rolling window.
    double peak_window_mw_ = 0.0;
    size_t peak_slot_ = 0;
    bool exact_ = true;
    /// @}
};

/**
 * Demotes diagnostics covered by expectViolation() to expected notes
 * and flags annotations that never fired.  Duplicate annotations of
 * one rule collapse to a single pass (and at most one stale flag), so
 * the outcome is deterministic however often the builder repeated the
 * call.  In lint mode the certify-only rules are skipped entirely —
 * lint() cannot tell whether they would hold, so their annotations
 * are neither demoted nor flagged stale.
 */
void
applyExpectations(const Program &prog, Report &report, bool certifying)
{
    bool dead_code = false;
    for (const auto &d : report.diags)
        dead_code = dead_code || d.rule == Rule::DeadCode;

    std::set<Rule> handled;
    for (const auto rule : prog.expectedViolations()) {
        if (!handled.insert(rule).second)
            continue;
        if (!certifying && certifyOnlyRule(rule))
            continue;
        bool fired = false;
        for (auto &d : report.diags) {
            if (d.rule == rule) {
                d.severity = Severity::Note;
                d.expected = true;
                fired = true;
            }
        }
        if (!fired) {
            std::string msg = std::string("expectViolation(") +
                              ruleId(rule) + ") matched no diagnostic";
            if (dead_code) {
                msg += " (a zero-count loop leaves part of the "
                       "program dead, which may be why)";
            }
            report.diags.push_back(
                {Rule::StaleExpectation,
                 ruleInfo(Rule::StaleExpectation).severity, 0, false, 0,
                 std::move(msg)});
        }
    }
}

/** The lint()/certify() shared driver; effects on when cert != null. */
Report
analyze(const Program &prog, const dram::DeviceConfig &cfg,
        Certificate *cert)
{
    Report report;
    report.diags = structuralDiagnostics(prog);

    bool unbalanced = false;
    for (const auto &d : report.diags)
        unbalanced = unbalanced || d.rule == Rule::UnbalancedLoop;
    if (!unbalanced)
        Interp(prog, cfg, report, cert).run();

    applyExpectations(prog, report, cert != nullptr);
    std::stable_sort(report.diags.begin(), report.diags.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         return a.slot < b.slot;
                     });
    return report;
}

} // namespace

std::vector<Diagnostic>
structuralDiagnostics(const Program &prog)
{
    std::vector<Diagnostic> diags;
    const auto &instrs = prog.instrs();
    std::vector<std::pair<size_t, uint64_t>> stack;  // (slot, count).
    for (size_t i = 0; i < instrs.size(); ++i) {
        if (instrs[i].op == Opcode::LoopBegin) {
            stack.emplace_back(i, instrs[i].count);
        } else if (instrs[i].op == Opcode::LoopEnd) {
            if (stack.empty()) {
                diags.push_back(
                    {Rule::UnbalancedLoop, Severity::Error, i, false, 0,
                     "unbalanced loops: LoopEnd at slot " +
                         std::to_string(i) + " has no LoopBegin"});
                continue;
            }
            const auto [begin, count] = stack.back();
            stack.pop_back();
            if (count == 0) {
                diags.push_back(
                    {Rule::ZeroLoop, Severity::Warning, begin, false, 0,
                     "loop at slot " + std::to_string(begin) +
                         " has a zero iteration count"});
                if (i > begin + 1) {
                    diags.push_back(
                        {Rule::DeadCode, Severity::Warning, begin + 1,
                         false, 0,
                         "slots " + std::to_string(begin + 1) + ".." +
                             std::to_string(i - 1) +
                             " never execute (zero-count loop body)"});
                }
            }
        }
    }
    for (const auto &[begin, count] : stack) {
        (void)count;
        diags.push_back(
            {Rule::UnbalancedLoop, Severity::Error, begin, false, 0,
             "unbalanced loops: LoopBegin at slot " +
                 std::to_string(begin) + " is never closed"});
    }
    return diags;
}

Report
lint(const Program &prog, const dram::DeviceConfig &cfg)
{
    return analyze(prog, cfg, nullptr);
}

std::string
Certificate::summary() const
{
    char buf[320];
    std::snprintf(
        buf, sizeof buf,
        "exposure: max %llu ACTs/row/window (bank %u row %u, %s, "
        "threshold %llu); energy: %.1f pJ commands + %.1f pJ "
        "background; power: avg %.2f mW, peak %.2f mW over %.0f ns "
        "(budget %.2f mW)",
        (unsigned long long)maxRowActs, unsigned(hottestBank),
        unsigned(hottestRow), exact ? "exact" : "upper bound",
        (unsigned long long)exposureThreshold, commandEnergyPj,
        backgroundEnergyPj, avgPowerMw, peakWindowPowerMw,
        powerWindowNs, powerBudgetMw);
    return buf;
}

Certificate
certify(const Program &prog, const dram::DeviceConfig &cfg,
        const CertifyOptions &opts)
{
    Certificate cert;
    cert.exposureThreshold =
        opts.exposureThreshold != 0
            ? opts.exposureThreshold
            : uint64_t(std::llround(cfg.disturb.thresholdMin));
    cert.powerBudgetMw = opts.powerBudgetMw > 0.0
                             ? opts.powerBudgetMw
                             : cfg.energy.maxAvgPowerMw;
    cert.powerWindowNs = opts.powerWindowNs > 0.0
                             ? opts.powerWindowNs
                             : cfg.energy.powerWindowNs;
    cert.report = analyze(prog, cfg, &cert);
    return cert;
}

std::optional<LoopCertificate>
certifyHammerLoop(const std::vector<Instr> &instrs, size_t begin,
                  size_t end, const dram::DeviceConfig &cfg)
{
    // The ISA has no data-dependent timing, so a body of this shape
    // is constant-duration by construction; the only state it touches
    // per iteration is its own bank's ACT-PRE cycle (side-effect
    // regular).  Anything else — other opcodes, nested loops, a
    // second bank — falls back to slot-by-slot execution.
    const int64_t tck_ps =
        int64_t(std::llround(cfg.timing.tCkNs * 1000.0));
    size_t i = begin;
    if (i >= end || instrs[i].op != Opcode::Act)
        return std::nullopt;
    LoopCertificate cert;
    cert.bank = instrs[i].bank;
    cert.row = instrs[i].row;
    int64_t t = tck_ps;  // The ACT slot itself.
    ++i;
    while (i < end && (instrs[i].op == Opcode::Nop ||
                       instrs[i].op == Opcode::SleepNs)) {
        t += instrs[i].op == Opcode::Nop
                 ? int64_t(instrs[i].count) * tck_ps
                 : instrs[i].ps;
        ++i;
    }
    if (i >= end || instrs[i].op != Opcode::Pre ||
        instrs[i].bank != cert.bank) {
        return std::nullopt;
    }
    cert.openPs = t;
    t += tck_ps;
    ++i;
    while (i < end && (instrs[i].op == Opcode::Nop ||
                       instrs[i].op == Opcode::SleepNs)) {
        t += instrs[i].op == Opcode::Nop
                 ? int64_t(instrs[i].count) * tck_ps
                 : instrs[i].ps;
        ++i;
    }
    if (i != end)
        return std::nullopt;
    cert.periodPs = t;
    return cert;
}

} // namespace lint
} // namespace bender
} // namespace dramscope
