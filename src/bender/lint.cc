/**
 * @file
 * The Bender program linter: structural pass + abstract timing
 * interpreter.  See bender/lint.h for the model.
 */

#include "bender/lint.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <set>
#include <string>

#include "util/log.h"

namespace dramscope {
namespace bender {
namespace lint {

const std::vector<RuleInfo> &
ruleTable()
{
    static const std::vector<RuleInfo> table = {
#define X(name, id, sev, summary) \
    {Rule::name, id, Severity::sev, summary},
        DRAMSCOPE_LINT_RULES(X)
#undef X
    };
    return table;
}

size_t
ruleCount()
{
    return ruleTable().size();
}

const RuleInfo &
ruleInfo(Rule rule)
{
    const auto idx = size_t(rule);
    panicIf(idx >= ruleTable().size(), "lint: rule out of range");
    return ruleTable()[idx];
}

const char *
ruleId(Rule rule)
{
    return ruleInfo(rule).id;
}

const char *
toString(Severity sev)
{
    switch (sev) {
      case Severity::Note:    return "note";
      case Severity::Warning: return "warning";
      case Severity::Error:   return "error";
    }
    return "?";
}

size_t
Report::count(Severity sev) const
{
    size_t n = 0;
    for (const auto &d : diags) {
        if (d.severity == sev)
            ++n;
    }
    return n;
}

Mode
modeFromEnv()
{
    const char *env = std::getenv("DRAMSCOPE_LINT");
    if (env == nullptr)
        return Mode::Off;
    if (std::strcmp(env, "warn") == 0)
        return Mode::Warn;
    if (std::strcmp(env, "error") == 0)
        return Mode::Error;
    return Mode::Off;
}

namespace {

/** Formats a picosecond quantity as "12.345 ns". */
std::string
fmtNs(int64_t ps)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.3f ns", double(ps) / 1000.0);
    return buf;
}

/**
 * The abstract interpreter.  Tracks a symbolic integer-picosecond
 * clock and a per-bank FSM through the program; loop bodies have
 * constant duration, so after a few simulated iterations the rest of
 * a loop is fast-forwarded arithmetically (timestamps written inside
 * the loop shift with the clock; pre-loop timestamps stay absolute).
 */
class Interp
{
  public:
    Interp(const Program &prog, const dram::DeviceConfig &cfg,
           Report &report)
        : instrs_(prog.instrs()), cfg_(cfg),
          report_(report), tck_ps_(ps(cfg.timing.tCkNs)),
          trcd_ps_(ps(cfg.timing.tRcdNs)), tras_ps_(ps(cfg.timing.tRasNs)),
          trp_ps_(ps(cfg.timing.tRpNs)), trc_ps_(ps(cfg.timing.tRcNs())),
          trrd_ps_(ps(cfg.timing.tRrdNs)), tfaw_ps_(ps(cfg.timing.tFawNs)),
          banks_(cfg.numBanks)
    {
        // Structural findings are already in the report; never emit
        // the same (rule, slot) twice.
        for (const auto &d : report_.diags)
            seen_.insert({uint8_t(d.rule), d.slot});
    }

    void
    run()
    {
        walk(0, instrs_.size());
        report_.durationPs = clock_ps_;
        finishOpenAtEnd();
        finishRefreshBudget();
    }

  private:
    /**
     * Iterations of a loop simulated slot-by-slot before fast-
     * forwarding: enough for every cross-iteration pattern the rules
     * can see (tail-to-head spacing needs 2, the four-ACT tFAW
     * window needs 5) to reach steady state.
     */
    static constexpr uint64_t kSimIters = 6;

    static int64_t
    ps(double ns)
    {
        return int64_t(std::llround(ns * 1000.0));
    }

    struct BankState
    {
        bool open = false;
        dram::RowAddr openRow = 0;
        size_t openSlot = 0;     //!< Slot of the opening ACT.
        int64_t lastActPs = -1;  //!< Issue time of the last ACT.
        int64_t lastPrePs = -1;  //!< Issue time of the last PRE.
    };

    void
    diag(Rule rule, size_t slot, std::string msg)
    {
        if (!seen_.insert({uint8_t(rule), slot}).second)
            return;
        report_.diags.push_back({rule, ruleInfo(rule).severity, slot,
                                 false, clock_ps_, std::move(msg)});
    }

    void
    onAct(const Instr &ins, size_t slot)
    {
        const int64_t t = clock_ps_;
        auto &bank = banks_[ins.bank];
        if (bank.open) {
            diag(Rule::ActOpen, slot,
                 "ACT bank " + std::to_string(ins.bank) + " row " +
                     std::to_string(ins.row) + ": row " +
                     std::to_string(bank.openRow) + " is still open");
        } else if (bank.lastPrePs >= 0 && t - bank.lastPrePs < trp_ps_) {
            diag(Rule::TRp, slot,
                 "ACT bank " + std::to_string(ins.bank) + " row " +
                     std::to_string(ins.row) + ": " +
                     fmtNs(t - bank.lastPrePs) + " since PRE, tRP is " +
                     fmtNs(trp_ps_));
        }
        if (bank.lastActPs >= 0 && t - bank.lastActPs < trc_ps_) {
            diag(Rule::TRc, slot,
                 "ACT bank " + std::to_string(ins.bank) + ": " +
                     fmtNs(t - bank.lastActPs) +
                     " since the previous same-bank ACT, tRC is " +
                     fmtNs(trc_ps_));
        }
        if (last_act_any_ps_ >= 0 && t - last_act_any_ps_ < trrd_ps_) {
            diag(Rule::TRrd, slot,
                 "ACT bank " + std::to_string(ins.bank) + ": " +
                     fmtNs(t - last_act_any_ps_) +
                     " since the previous ACT, tRRD is " +
                     fmtNs(trrd_ps_));
        }
        if (faw_.size() == 4 && t - faw_.front() < tfaw_ps_) {
            diag(Rule::TFaw, slot,
                 "ACT bank " + std::to_string(ins.bank) +
                     ": fifth ACT " + fmtNs(t - faw_.front()) +
                     " after the fourth-most-recent one, tFAW is " +
                     fmtNs(tfaw_ps_));
        }
        faw_.push_back(t);
        if (faw_.size() > 4)
            faw_.pop_front();
        last_act_any_ps_ = t;
        bank.lastActPs = t;
        bank.open = true;
        bank.openRow = ins.row;
        bank.openSlot = slot;
    }

    void
    onPre(const Instr &ins, size_t slot)
    {
        auto &bank = banks_[ins.bank];
        if (bank.open && clock_ps_ - bank.lastActPs < tras_ps_) {
            diag(Rule::TRas, slot,
                 "PRE bank " + std::to_string(ins.bank) + ": " +
                     fmtNs(clock_ps_ - bank.lastActPs) +
                     " since ACT, tRAS is " + fmtNs(tras_ps_));
        }
        bank.open = false;
        bank.lastPrePs = clock_ps_;
    }

    void
    onRw(const Instr &ins, size_t slot, const char *verb)
    {
        auto &bank = banks_[ins.bank];
        if (!bank.open) {
            diag(Rule::RwClosed, slot,
                 std::string(verb) + " bank " + std::to_string(ins.bank) +
                     " col " + std::to_string(ins.col) +
                     ": bank is precharged (no open row)");
        } else if (clock_ps_ - bank.lastActPs < trcd_ps_) {
            diag(Rule::TRcd, slot,
                 std::string(verb) + " bank " + std::to_string(ins.bank) +
                     " col " + std::to_string(ins.col) + ": " +
                     fmtNs(clock_ps_ - bank.lastActPs) +
                     " since ACT, tRCD is " + fmtNs(trcd_ps_));
        }
    }

    void
    onRef(size_t slot)
    {
        for (size_t b = 0; b < banks_.size(); ++b) {
            if (banks_[b].open) {
                diag(Rule::RefOpen, slot,
                     "REF: bank " + std::to_string(b) + " row " +
                         std::to_string(banks_[b].openRow) +
                         " is still open");
                break;
            }
        }
        ++report_.refCount;
    }

    /**
     * Fast-forwards the interpreter state over @p skipped further
     * identical loop iterations of duration @p iter_ps that issued
     * @p iter_cmds commands and @p iter_refs REFs each.  Timestamps
     * written at or after @p loop_start_ps belong to the loop and
     * shift with the clock; older ones are absolute and stay.
     */
    void
    fastForward(uint64_t skipped, int64_t iter_ps, uint64_t iter_cmds,
                uint64_t iter_refs, int64_t loop_start_ps)
    {
        const int64_t shift = int64_t(skipped) * iter_ps;
        const auto shifted = [&](int64_t ts) {
            return ts >= loop_start_ps ? ts + shift : ts;
        };
        clock_ps_ += shift;
        report_.commandCount += skipped * iter_cmds;
        report_.refCount += skipped * iter_refs;
        for (auto &bank : banks_) {
            if (bank.lastActPs >= 0)
                bank.lastActPs = shifted(bank.lastActPs);
            if (bank.lastPrePs >= 0)
                bank.lastPrePs = shifted(bank.lastPrePs);
        }
        if (last_act_any_ps_ >= 0)
            last_act_any_ps_ = shifted(last_act_any_ps_);
        for (auto &ts : faw_)
            ts = shifted(ts);
    }

    /** Interprets slots [begin, end) once. */
    void
    walk(size_t begin, size_t end)
    {
        size_t i = begin;
        while (i < end) {
            const Instr &ins = instrs_[i];
            switch (ins.op) {
              case Opcode::Act:
                onAct(ins, i);
                ++report_.commandCount;
                clock_ps_ += tck_ps_;
                ++i;
                break;
              case Opcode::Pre:
                onPre(ins, i);
                ++report_.commandCount;
                clock_ps_ += tck_ps_;
                ++i;
                break;
              case Opcode::Rd:
                onRw(ins, i, "RD");
                ++report_.commandCount;
                clock_ps_ += tck_ps_;
                ++i;
                break;
              case Opcode::Wr:
                onRw(ins, i, "WR");
                ++report_.commandCount;
                clock_ps_ += tck_ps_;
                ++i;
                break;
              case Opcode::Ref:
                onRef(i);
                ++report_.commandCount;
                clock_ps_ += tck_ps_;
                ++i;
                break;
              case Opcode::Nop:
                clock_ps_ += int64_t(ins.count) * tck_ps_;
                ++i;
                break;
              case Opcode::SleepNs:
                clock_ps_ += ins.ps;
                ++i;
                break;
              case Opcode::LoopBegin: {
                size_t depth = 1;
                size_t body_end = i + 1;
                while (body_end < end && depth > 0) {
                    if (instrs_[body_end].op == Opcode::LoopBegin)
                        ++depth;
                    else if (instrs_[body_end].op == Opcode::LoopEnd)
                        --depth;
                    if (depth == 0)
                        break;
                    ++body_end;
                }
                // Unbalanced structure is reported by the structural
                // pass; lint() skips the timing walk entirely then.
                panicIf(depth != 0, "lint: unbalanced loop in walk");

                const int64_t loop_start_ps = clock_ps_;
                const uint64_t sim = std::min(ins.count, kSimIters);
                int64_t iter_ps = 0;
                uint64_t iter_cmds = 0;
                uint64_t iter_refs = 0;
                for (uint64_t k = 0; k < sim; ++k) {
                    const int64_t t0 = clock_ps_;
                    const uint64_t c0 = report_.commandCount;
                    const uint64_t r0 = report_.refCount;
                    walk(i + 1, body_end);
                    iter_ps = clock_ps_ - t0;
                    iter_cmds = report_.commandCount - c0;
                    iter_refs = report_.refCount - r0;
                }
                if (ins.count > sim) {
                    fastForward(ins.count - sim, iter_ps, iter_cmds,
                                iter_refs, loop_start_ps);
                }
                i = body_end + 1;
                break;
              }
              case Opcode::LoopEnd:
                panic("lint: stray LoopEnd in walk");
            }
        }
    }

    void
    finishOpenAtEnd()
    {
        for (size_t b = 0; b < banks_.size(); ++b) {
            if (banks_[b].open) {
                diag(Rule::OpenAtEnd, banks_[b].openSlot,
                     "bank " + std::to_string(b) + " row " +
                         std::to_string(banks_[b].openRow) +
                         " is still open at program end");
            }
        }
    }

    void
    finishRefreshBudget()
    {
        const int64_t window_ps =
            int64_t(std::llround(cfg_.timing.refreshWindowMs * 1.0e9));
        if (report_.durationPs <= window_ps)
            return;
        const double duration_ns = double(report_.durationPs) / 1000.0;
        const auto needed =
            uint64_t(duration_ns / cfg_.timing.tRefiNs);
        if (report_.refCount >= needed)
            return;
        diag(Rule::RefreshBudget, 0,
             "program spans " + fmtNs(report_.durationPs) +
                 " (> tREFW of " + fmtNs(window_ps) + ") but issues " +
                 std::to_string(report_.refCount) + " REF(s); ~" +
                 std::to_string(needed) +
                 " needed to keep every row refreshed");
    }

    const std::vector<Instr> &instrs_;
    const dram::DeviceConfig &cfg_;
    Report &report_;

    const int64_t tck_ps_, trcd_ps_, tras_ps_, trp_ps_, trc_ps_;
    const int64_t trrd_ps_, tfaw_ps_;

    int64_t clock_ps_ = 0;
    std::vector<BankState> banks_;
    int64_t last_act_any_ps_ = -1;
    std::deque<int64_t> faw_;  //!< Issue times of the last 4 ACTs.
    std::set<std::pair<uint8_t, size_t>> seen_;
};

/**
 * Demotes diagnostics covered by expectViolation() to expected notes
 * and flags annotations that never fired.
 */
void
applyExpectations(const Program &prog, Report &report)
{
    for (const auto rule : prog.expectedViolations()) {
        bool fired = false;
        for (auto &d : report.diags) {
            if (d.rule == rule) {
                d.severity = Severity::Note;
                d.expected = true;
                fired = true;
            }
        }
        if (!fired) {
            report.diags.push_back(
                {Rule::StaleExpectation,
                 ruleInfo(Rule::StaleExpectation).severity, 0, false, 0,
                 std::string("expectViolation(") + ruleId(rule) +
                     ") matched no diagnostic"});
        }
    }
}

} // namespace

std::vector<Diagnostic>
structuralDiagnostics(const Program &prog)
{
    std::vector<Diagnostic> diags;
    const auto &instrs = prog.instrs();
    std::vector<std::pair<size_t, uint64_t>> stack;  // (slot, count).
    for (size_t i = 0; i < instrs.size(); ++i) {
        if (instrs[i].op == Opcode::LoopBegin) {
            stack.emplace_back(i, instrs[i].count);
        } else if (instrs[i].op == Opcode::LoopEnd) {
            if (stack.empty()) {
                diags.push_back(
                    {Rule::UnbalancedLoop, Severity::Error, i, false, 0,
                     "unbalanced loops: LoopEnd at slot " +
                         std::to_string(i) + " has no LoopBegin"});
                continue;
            }
            const auto [begin, count] = stack.back();
            stack.pop_back();
            if (count == 0) {
                diags.push_back(
                    {Rule::ZeroLoop, Severity::Warning, begin, false, 0,
                     "loop at slot " + std::to_string(begin) +
                         " has a zero iteration count"});
                if (i > begin + 1) {
                    diags.push_back(
                        {Rule::DeadCode, Severity::Warning, begin + 1,
                         false, 0,
                         "slots " + std::to_string(begin + 1) + ".." +
                             std::to_string(i - 1) +
                             " never execute (zero-count loop body)"});
                }
            }
        }
    }
    for (const auto &[begin, count] : stack) {
        (void)count;
        diags.push_back(
            {Rule::UnbalancedLoop, Severity::Error, begin, false, 0,
             "unbalanced loops: LoopBegin at slot " +
                 std::to_string(begin) + " is never closed"});
    }
    return diags;
}

Report
lint(const Program &prog, const dram::DeviceConfig &cfg)
{
    Report report;
    report.diags = structuralDiagnostics(prog);

    bool unbalanced = false;
    for (const auto &d : report.diags)
        unbalanced = unbalanced || d.rule == Rule::UnbalancedLoop;
    if (!unbalanced)
        Interp(prog, cfg, report).run();

    applyExpectations(prog, report);
    std::stable_sort(report.diags.begin(), report.diags.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         return a.slot < b.slot;
                     });
    return report;
}

std::optional<LoopCertificate>
certifyHammerLoop(const std::vector<Instr> &instrs, size_t begin,
                  size_t end, const dram::DeviceConfig &cfg)
{
    // The ISA has no data-dependent timing, so a body of this shape
    // is constant-duration by construction; the only state it touches
    // per iteration is its own bank's ACT-PRE cycle (side-effect
    // regular).  Anything else — other opcodes, nested loops, a
    // second bank — falls back to slot-by-slot execution.
    const int64_t tck_ps =
        int64_t(std::llround(cfg.timing.tCkNs * 1000.0));
    size_t i = begin;
    if (i >= end || instrs[i].op != Opcode::Act)
        return std::nullopt;
    LoopCertificate cert;
    cert.bank = instrs[i].bank;
    cert.row = instrs[i].row;
    int64_t t = tck_ps;  // The ACT slot itself.
    ++i;
    while (i < end && (instrs[i].op == Opcode::Nop ||
                       instrs[i].op == Opcode::SleepNs)) {
        t += instrs[i].op == Opcode::Nop
                 ? int64_t(instrs[i].count) * tck_ps
                 : instrs[i].ps;
        ++i;
    }
    if (i >= end || instrs[i].op != Opcode::Pre ||
        instrs[i].bank != cert.bank) {
        return std::nullopt;
    }
    cert.openPs = t;
    t += tck_ps;
    ++i;
    while (i < end && (instrs[i].op == Opcode::Nop ||
                       instrs[i].op == Opcode::SleepNs)) {
        t += instrs[i].op == Opcode::Nop
                 ? int64_t(instrs[i].count) * tck_ps
                 : instrs[i].ps;
        ++i;
    }
    if (i != end)
        return std::nullopt;
    cert.periodPs = t;
    return cert;
}

} // namespace lint
} // namespace bender
} // namespace dramscope
