/**
 * @file
 * Program builder implementation.
 */

#include "bender/program.h"

#include <cmath>

#include "bender/lint.h"
#include "util/log.h"

namespace dramscope {
namespace bender {

Program &
Program::act(dram::BankId b, dram::RowAddr r)
{
    Instr i;
    i.op = Opcode::Act;
    i.bank = b;
    i.row = r;
    instrs_.push_back(i);
    return *this;
}

Program &
Program::pre(dram::BankId b)
{
    Instr i;
    i.op = Opcode::Pre;
    i.bank = b;
    instrs_.push_back(i);
    return *this;
}

Program &
Program::rd(dram::BankId b, dram::ColAddr c)
{
    Instr i;
    i.op = Opcode::Rd;
    i.bank = b;
    i.col = c;
    instrs_.push_back(i);
    return *this;
}

Program &
Program::wr(dram::BankId b, dram::ColAddr c, uint64_t data)
{
    Instr i;
    i.op = Opcode::Wr;
    i.bank = b;
    i.col = c;
    i.data = data;
    instrs_.push_back(i);
    return *this;
}

Program &
Program::ref()
{
    Instr i;
    i.op = Opcode::Ref;
    instrs_.push_back(i);
    return *this;
}

Program &
Program::nop(uint64_t cycles)
{
    Instr i;
    i.op = Opcode::Nop;
    i.count = cycles;
    instrs_.push_back(i);
    return *this;
}

Program &
Program::sleepNs(double ns)
{
    Instr i;
    i.op = Opcode::SleepNs;
    i.ps = int64_t(std::llround(ns * 1000.0));
    instrs_.push_back(i);
    return *this;
}

Program &
Program::sleepPs(int64_t ps)
{
    Instr i;
    i.op = Opcode::SleepNs;
    i.ps = ps;
    instrs_.push_back(i);
    return *this;
}

Program &
Program::loopBegin(uint64_t count)
{
    Instr i;
    i.op = Opcode::LoopBegin;
    i.count = count;
    instrs_.push_back(i);
    return *this;
}

Program &
Program::loopEnd()
{
    Instr i;
    i.op = Opcode::LoopEnd;
    instrs_.push_back(i);
    return *this;
}

Program &
Program::expectViolation(lint::Rule rule)
{
    expected_.push_back(rule);
    return *this;
}

void
Program::validate() const
{
    for (const auto &d : lint::structuralDiagnostics(*this)) {
        if (d.severity == lint::Severity::Error)
            fatal("Program: " + d.message);
    }
}

} // namespace bender
} // namespace dramscope
