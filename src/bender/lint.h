/**
 * @file
 * Static analyzer for Bender command programs (`bender::lint`).
 *
 * DRAMScope's methodology is to issue *deliberately* out-of-spec
 * command sequences (RowCopy's ACT inside tRP) while keeping every
 * other timing in spec — an accidental slip silently corrupts a
 * characterization run and is only discovered after execution, from
 * the device's violation log or from garbage figures.  The linter is
 * the missing pre-flight tool: an abstract interpreter that walks a
 * Program *without executing it*, tracking a symbolic integer-
 * picosecond clock and a per-bank FSM (closed / open) through loop
 * bodies, and proves the program's timing intent up front.
 *
 * Intent is expressed with Program::expectViolation(Rule): a builder
 * that means to break tRP says so, the matching diagnostics demote to
 * expected notes, and the program lints clean — while the same slip
 * in an unannotated program stays an error.  Annotations that never
 * fire are flagged too (stale-expectation), so they cannot rot.
 *
 * Loop bodies have constant duration (the ISA has no data-dependent
 * timing), so the interpreter simulates the first few iterations of
 * every loop — enough for cross-iteration effects (loop tail to head
 * spacing, the four-ACT tFAW window) to reach steady state — then
 * advances the clock and per-bank timestamps arithmetically for the
 * rest.  Linting a 300K-iteration hammer costs the same as linting
 * four iterations; duplicate (rule, slot) findings collapse to one.
 *
 * The rule set is defined once in DRAMSCOPE_LINT_RULES below; the
 * table in docs/LINT_RULES.md is machine-checked against it by
 * tools/check_docs.py (the same treatment as the O1-O14 map).
 */

#ifndef DRAMSCOPE_BENDER_LINT_H
#define DRAMSCOPE_BENDER_LINT_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bender/program.h"
#include "dram/config.h"

namespace dramscope {
namespace bender {
namespace lint {

/** Diagnostic severities, weakest first. */
enum class Severity : uint8_t
{
    Note,     //!< Expected (annotated) violation; informational.
    Warning,  //!< Suspicious but executable (zero loops, budget).
    Error,    //!< Unannotated spec violation or structural break.
};

/**
 * The rule registry: X(enumerator, "rule-id", DefaultSeverity,
 * "summary").  tools/check_docs.py parses these entries and requires
 * docs/LINT_RULES.md to list exactly this set with these severities.
 */
#define DRAMSCOPE_LINT_RULES(X)                                             \
    X(TRcd, "trcd", Error,                                                  \
      "RD/WR issued before tRCD has elapsed after the bank's ACT")          \
    X(TRp, "trp", Error,                                                    \
      "ACT issued before tRP has elapsed after the bank's PRE")             \
    X(TRas, "tras", Error,                                                  \
      "PRE issued before tRAS has elapsed after the bank's ACT")            \
    X(TRc, "trc", Error,                                                    \
      "same-bank ACT-to-ACT interval shorter than tRC (tRAS + tRP)")        \
    X(TRrd, "trrd", Error,                                                  \
      "any-bank ACT-to-ACT interval shorter than tRRD")                     \
    X(TFaw, "tfaw", Error,                                                  \
      "more than four ACTs issued inside one tFAW window")                  \
    X(ActOpen, "act-open", Error,                                           \
      "ACT issued while the bank already has an open row")                  \
    X(RwClosed, "rw-closed", Error,                                         \
      "RD/WR issued while the bank is precharged (no open row)")            \
    X(RefOpen, "ref-open", Error,                                           \
      "REF issued while at least one bank has an open row")                 \
    X(UnbalancedLoop, "unbalanced-loop", Error,                             \
      "LoopBegin and LoopEnd slots do not match up")                        \
    X(ZeroLoop, "zero-loop", Warning,                                       \
      "loop has a zero iteration count and never runs")                     \
    X(DeadCode, "dead-code", Warning,                                       \
      "command slots can never execute (zero-count loop body)")             \
    X(OpenAtEnd, "open-at-end", Warning,                                    \
      "program ends with a row still open (missing final PRE)")             \
    X(RefreshBudget, "refresh-budget", Warning,                             \
      "program spans more than tREFW with too few REFs to stay "            \
      "within the refresh budget")                                          \
    X(StaleExpectation, "stale-expectation", Warning,                       \
      "expectViolation() annotation matched no diagnostic")                 \
    X(ExposureBound, "exposure-bound", Error,                               \
      "proven per-row activation bound exceeds the RowHammer "              \
      "threshold within one refresh window")                                \
    X(PowerWindow, "power-window", Error,                                   \
      "rolling-window average power exceeds the device budget "             \
      "(the energy generalization of tFAW)")                               \
    X(EnergyEstimate, "energy-estimate", Note,                              \
      "per-command energy and average-power estimate of the program")

/** Rule ids (underlying type matches the forward decl in program.h). */
enum class Rule : uint8_t
{
#define X(name, id, sev, summary) name,
    DRAMSCOPE_LINT_RULES(X)
#undef X
};

/** Number of distinct rules. */
size_t ruleCount();

/** Static description of one rule. */
struct RuleInfo
{
    Rule rule;
    const char *id;        //!< Stable kebab-case identifier.
    Severity severity;     //!< Default severity before demotion.
    const char *summary;   //!< One-line description (doc table).
};

/** The full registry, indexed by Rule enumerator order. */
const std::vector<RuleInfo> &ruleTable();

/** Registry entry for @p rule. */
const RuleInfo &ruleInfo(Rule rule);

/** Stable identifier of @p rule ("trp", "zero-loop", ...). */
const char *ruleId(Rule rule);

/**
 * True for rules only the whole-program effect analyzer (certify())
 * evaluates — exposure-bound, power-window, energy-estimate.  Plain
 * lint() neither fires nor stale-flags annotations of these rules:
 * it cannot tell whether they would hold.
 */
bool certifyOnlyRule(Rule rule);

/** Pretty name of @p severity ("note", "warning", "error"). */
const char *toString(Severity sev);

/** One finding of the analyzer. */
struct Diagnostic
{
    Rule rule;
    Severity severity;  //!< After demotion of expected violations.
    size_t slot;        //!< Program slot index the finding anchors to.
    bool expected = false;  //!< Covered by expectViolation().
    int64_t atPs = 0;   //!< Symbolic program time of the finding.
    std::string message;
};

/** Result of linting one program. */
struct Report
{
    std::vector<Diagnostic> diags;

    /** Symbolic duration of the whole program (loops expanded). */
    int64_t durationPs = 0;

    /** Commands issued when the program runs (loops expanded). */
    uint64_t commandCount = 0;

    /** REF commands issued (loops expanded). */
    uint64_t refCount = 0;

    /** Diagnostics at exactly @p sev. */
    size_t count(Severity sev) const;

    /** True when any unexpected Error-severity diagnostic remains. */
    bool hasErrors() const { return count(Severity::Error) > 0; }
};

/**
 * Lints @p prog against the timing/geometry of @p cfg.  Never
 * executes on a device and never fatal()s: structural breakage is
 * reported as UnbalancedLoop diagnostics (the walk stops at the
 * broken structure).
 */
Report lint(const Program &prog, const dram::DeviceConfig &cfg);

/**
 * Structure-only pass (no device config needed): loop balance,
 * zero-count loops, dead code.  Program::validate() fatal()s on the
 * Error entries of this list.
 */
std::vector<Diagnostic> structuralDiagnostics(const Program &prog);

/**
 * A certified constant-duration hammer-loop body: the handshake
 * between the linter and bender::Host's fast-forward engine.  The
 * certificate pins everything the batched train needs — the constant
 * bank/row and the body's integer-picosecond open time and period,
 * summed from the slots' stored integers so a fast-forwarded clock
 * lands exactly where slot-by-slot execution would.
 */
struct LoopCertificate
{
    dram::BankId bank = 0;
    dram::RowAddr row = 0;
    int64_t openPs = 0;    //!< ACT-to-PRE issue distance.
    int64_t periodPs = 0;  //!< Whole-body (ACT-to-ACT) duration.
};

/**
 * Certifies a loop body as a constant-address, constant-duration,
 * side-effect-regular hammer kernel that fast-forwarding replays
 * exactly: Act(b, r) {Nop|SleepNs}* Pre(b) {Nop|SleepNs}* and
 * nothing else.  @p begin / @p end delimit the body (exclusive of
 * the Loop markers).  Returns nullopt for any other shape.
 */
std::optional<LoopCertificate>
certifyHammerLoop(const std::vector<Instr> &instrs, size_t begin,
                  size_t end, const dram::DeviceConfig &cfg);

/** Knobs of the whole-program effect analyzer (certify()). */
struct CertifyOptions
{
    /**
     * RowHammer exposure threshold: a proven bound above this many
     * ACTs to one (bank, row) inside one refresh window raises
     * exposure-bound.  0 selects the device's weakest-cell
     * disturbance threshold (DisturbParams::thresholdMin).
     */
    uint64_t exposureThreshold = 0;

    /** Power budget in mW; <= 0 selects EnergyParams::maxAvgPowerMw. */
    double powerBudgetMw = 0.0;

    /** Rolling window in ns; <= 0 selects EnergyParams::powerWindowNs. */
    double powerWindowNs = 0.0;
};

/**
 * The whole-program effect certificate: everything certify() proves
 * about a program without executing a single command.  The exposure
 * bound is an upper bound on the ACTs any single (bank, row) receives
 * inside one refresh window (windows are delimited by REF commands,
 * matching the scheduler's dynamic mc.exposure accounting, so
 * `maxRowActs >= ScheduleStats::maxRowActsPerRefWindow` always
 * holds); it is exact when `exact` is set — constant-address loop
 * bodies fold through fast-forwarding by exact multiplication — and
 * conservative (still an upper bound) otherwise.
 */
struct Certificate
{
    Report report;  //!< Timing diags + certify-only rules.

    /// @name Exposure.
    /// @{
    uint64_t maxRowActs = 0;     //!< Proven max ACTs/row/refresh-window.
    dram::BankId hottestBank = 0;
    dram::RowAddr hottestRow = 0;
    bool exact = true;           //!< Bound proven exact, not conservative.
    uint64_t exposureThreshold = 0;  //!< Resolved threshold applied.
    /// @}

    /// @name Energy and power.
    /// @{
    double commandEnergyPj = 0.0;     //!< Sum of per-command energies.
    double backgroundEnergyPj = 0.0;  //!< backgroundMw over durationPs.
    double avgPowerMw = 0.0;          //!< Whole-program average.
    double peakWindowPowerMw = 0.0;   //!< Hottest rolling window.
    double powerBudgetMw = 0.0;       //!< Resolved budget applied.
    double powerWindowNs = 0.0;       //!< Resolved window applied.
    /// @}

    /** Total estimated energy (commands + background), pJ. */
    double totalEnergyPj() const
    {
        return commandEnergyPj + backgroundEnergyPj;
    }

    /** No unexpected errors: the program is certified. */
    bool certified() const { return !report.hasErrors(); }

    /** One-line deterministic summary (CLI / test payloads). */
    std::string summary() const;
};

/**
 * Certifies @p prog: a full lint() pass extended with the effect
 * analysis — per-(bank, row) symbolic activation counters with
 * refresh-window segmentation, per-command energy accounting from
 * cfg.energy, and the rolling power-window check.  The report gains
 * an energy-estimate note on every run plus exposure-bound /
 * power-window diagnostics where the proven quantities exceed the
 * (resolved) thresholds of @p opts.  expectViolation() demotion
 * applies to the new rules exactly as to timing rules, so
 * deliberately over-threshold programs (hammer kernels) certify
 * clean when annotated.
 */
Certificate certify(const Program &prog, const dram::DeviceConfig &cfg,
                    const CertifyOptions &opts = {});

/** Pre-flight modes of bender::Host (env DRAMSCOPE_LINT). */
enum class Mode : uint8_t
{
    Off,    //!< No pre-flight (default).
    Warn,   //!< Lint every run(); log unexpected findings.
    Error,  //!< Lint every run(); fatal() on unexpected errors.
};

/**
 * Reads DRAMSCOPE_LINT from the environment: "warn" / "error"
 * select the pre-flight mode, anything else (or unset) is Off.
 */
Mode modeFromEnv();

} // namespace lint
} // namespace bender
} // namespace dramscope

#endif // DRAMSCOPE_BENDER_LINT_H
