/**
 * @file
 * Command tracing (`dramscope::obs`): every command the Host issues
 * can be streamed to a TraceSink as a `{ns, cmd, bank, row, col}`
 * record — the same per-command visibility DRAM Bender and SoftMC
 * expose on the FPGA platform.
 *
 * Two sinks ship with the library:
 *
 *  - CommandTracer: a bounded ring buffer keeping the most recent
 *    records, exportable as JSONL.  Tests also use it to assert on
 *    exact command streams.
 *  - JsonlWriter: streams records straight to a file, one JSON object
 *    per line, with no retention limit (the CLI `--trace=FILE` path).
 *
 * Records carry the *issue time* of the command (host clock, ns).
 * The Host's bulk hammer fast path synthesizes the per-iteration
 * ACT/PRE records a slot-by-slot execution would have produced, so a
 * traced loop and its unrolled equivalent emit identical streams.
 */

#ifndef DRAMSCOPE_BENDER_TRACE_H
#define DRAMSCOPE_BENDER_TRACE_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "dram/types.h"

namespace dramscope {
namespace obs {

/** Command kinds that appear in a trace. */
enum class TraceCmd : uint8_t { Act, Pre, Rd, Wr, Ref };

/** Upper-case command mnemonic ("ACT", "PRE", ...). */
const char *toString(TraceCmd cmd);

/** One traced command. */
struct TraceRecord
{
    double ns = 0.0;          //!< Issue time on the host clock.
    TraceCmd cmd = TraceCmd::Act;
    dram::BankId bank = 0;
    dram::RowAddr row = 0;    //!< 0 for commands without a row.
    dram::ColAddr col = 0;    //!< 0 for commands without a column.

    bool operator==(const TraceRecord &) const = default;
};

/** Serializes one record as a single JSON line (no trailing \n). */
std::string toJsonl(const TraceRecord &rec);

/**
 * Parses a line produced by toJsonl() back into a record.  Returns
 * false on malformed input (the JSONL round-trip test's negative
 * cases).
 */
bool parseJsonl(const std::string &line, TraceRecord &out);

/** Receiver of traced commands. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called once per issued command, in issue order. */
    virtual void onCommand(const TraceRecord &rec) = 0;
};

/** Ring-buffer tracer: keeps the most recent @p capacity records. */
class CommandTracer : public TraceSink
{
  public:
    /** @param capacity Records retained; older ones are dropped. */
    explicit CommandTracer(size_t capacity = size_t(1) << 16);

    void onCommand(const TraceRecord &rec) override;

    /** Records currently retained (<= capacity). */
    size_t size() const;

    /** Total records ever seen. */
    uint64_t recorded() const { return recorded_; }

    /** Records evicted by the ring (recorded() - size()). */
    uint64_t dropped() const { return recorded_ - size(); }

    /** Retained records, oldest first. */
    std::vector<TraceRecord> records() const;

    /** Forgets every record (capacity unchanged). */
    void clear();

    /** Writes the retained records as JSONL to @p f. */
    void writeJsonl(std::FILE *f) const;

    /** Writes the retained records to @p path; false on I/O error. */
    bool writeJsonl(const std::string &path) const;

  private:
    std::vector<TraceRecord> ring_;
    size_t capacity_;
    size_t head_ = 0;  //!< Next write slot once the ring is full.
    uint64_t recorded_ = 0;
};

/**
 * Streaming JSONL sink: one line per command, no retention limit.
 *
 * Write and flush errors are detected (a full disk must not silently
 * truncate an hours-long trace): the first failure latches failed(),
 * is counted in writeErrors(), and is reported once via warn().  The
 * destructor flushes, so a trace that outlives its writer without an
 * explicit flush() still reaches the file — or reports that it
 * could not.
 */
class JsonlWriter : public TraceSink
{
  public:
    /** Opens @p path for writing; check ok() before use. */
    explicit JsonlWriter(const std::string &path);

    /** Flushes; warns when records could not be written. */
    ~JsonlWriter() override;

    JsonlWriter(const JsonlWriter &) = delete;
    JsonlWriter &operator=(const JsonlWriter &) = delete;

    void onCommand(const TraceRecord &rec) override;

    /** True when the file opened successfully. */
    bool ok() const { return file_ != nullptr; }

    /** True once any write or flush has failed. */
    bool failed() const { return failed_; }

    /** Records that could not be written (stream errors). */
    uint64_t writeErrors() const { return write_errors_; }

    /**
     * Flushes buffered records to the file.  Returns false (and
     * latches failed()) when the stream reports an error — e.g. a
     * full disk.
     */
    bool flush();

    /** Lines written so far (excluding failed writes). */
    uint64_t written() const { return written_; }

  private:
    void noteError();

    std::string path_;
    std::FILE *file_;
    uint64_t written_ = 0;
    uint64_t write_errors_ = 0;
    bool failed_ = false;
    bool error_reported_ = false;
};

} // namespace obs
} // namespace dramscope

#endif // DRAMSCOPE_BENDER_TRACE_H
