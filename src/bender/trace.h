/**
 * @file
 * Command tracing (`dramscope::obs`): every command the Host issues
 * can be streamed to a TraceSink as a `{ns, cmd, bank, row, col}`
 * record — the same per-command visibility DRAM Bender and SoftMC
 * expose on the FPGA platform.
 *
 * Two sinks ship with the library:
 *
 *  - CommandTracer: a bounded ring buffer keeping the most recent
 *    records, exportable as JSONL.  Tests also use it to assert on
 *    exact command streams.
 *  - JsonlWriter: streams records straight to a file, one JSON object
 *    per line, with no retention limit (the CLI `--trace=FILE` path).
 *
 * Records carry the *issue time* of the command (host clock, ns).
 * The Host's bulk hammer fast path synthesizes the per-iteration
 * ACT/PRE records a slot-by-slot execution would have produced, so a
 * traced loop and its unrolled equivalent emit identical streams.
 */

#ifndef DRAMSCOPE_BENDER_TRACE_H
#define DRAMSCOPE_BENDER_TRACE_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "dram/types.h"

namespace dramscope {
namespace obs {

/** Command kinds that appear in a trace. */
enum class TraceCmd : uint8_t { Act, Pre, Rd, Wr, Ref };

/** Upper-case command mnemonic ("ACT", "PRE", ...). */
const char *toString(TraceCmd cmd);

/** One traced command. */
struct TraceRecord
{
    double ns = 0.0;          //!< Issue time on the host clock.
    TraceCmd cmd = TraceCmd::Act;
    dram::BankId bank = 0;
    dram::RowAddr row = 0;    //!< 0 for commands without a row.
    dram::ColAddr col = 0;    //!< 0 for commands without a column.

    bool operator==(const TraceRecord &) const = default;
};

/** Serializes one record as a single JSON line (no trailing \n). */
std::string toJsonl(const TraceRecord &rec);

/**
 * Parses a line produced by toJsonl() back into a record.  Returns
 * false on malformed input (the JSONL round-trip test's negative
 * cases).
 */
bool parseJsonl(const std::string &line, TraceRecord &out);

/** Receiver of traced commands. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called once per issued command, in issue order. */
    virtual void onCommand(const TraceRecord &rec) = 0;
};

/** Ring-buffer tracer: keeps the most recent @p capacity records. */
class CommandTracer : public TraceSink
{
  public:
    /** @param capacity Records retained; older ones are dropped. */
    explicit CommandTracer(size_t capacity = size_t(1) << 16);

    void onCommand(const TraceRecord &rec) override;

    /** Records currently retained (<= capacity). */
    size_t size() const;

    /** Total records ever seen. */
    uint64_t recorded() const { return recorded_; }

    /** Records evicted by the ring (recorded() - size()). */
    uint64_t dropped() const { return recorded_ - size(); }

    /** Retained records, oldest first. */
    std::vector<TraceRecord> records() const;

    /** Forgets every record (capacity unchanged). */
    void clear();

    /** Writes the retained records as JSONL to @p f. */
    void writeJsonl(std::FILE *f) const;

    /** Writes the retained records to @p path; false on I/O error. */
    bool writeJsonl(const std::string &path) const;

  private:
    std::vector<TraceRecord> ring_;
    size_t capacity_;
    size_t head_ = 0;  //!< Next write slot once the ring is full.
    uint64_t recorded_ = 0;
};

/** Streaming JSONL sink: one line per command, no retention limit. */
class JsonlWriter : public TraceSink
{
  public:
    /** Opens @p path for writing; check ok() before use. */
    explicit JsonlWriter(const std::string &path);
    ~JsonlWriter() override;

    JsonlWriter(const JsonlWriter &) = delete;
    JsonlWriter &operator=(const JsonlWriter &) = delete;

    void onCommand(const TraceRecord &rec) override;

    /** True when the file opened successfully. */
    bool ok() const { return file_ != nullptr; }

    /** Lines written so far. */
    uint64_t written() const { return written_; }

  private:
    std::FILE *file_;
    uint64_t written_ = 0;
};

} // namespace obs
} // namespace dramscope

#endif // DRAMSCOPE_BENDER_TRACE_H
