/**
 * @file
 * Retention-based polarity classifier implementation.
 */

#include "core/re_polarity.h"

#include "util/log.h"

namespace dramscope {
namespace core {

CellTypeClassifier::CellTypeClassifier(bender::Host &host,
                                       PolarityOptions opts)
    : host_(host), opts_(opts)
{
}

PolarityResult
CellTypeClassifier::classify(const std::vector<dram::RowAddr> &probe_rows)
{
    const dram::BankId b = opts_.bank;
    PolarityResult result;

    // Alternating data: every row holds both ones and zeros, so decay
    // is observable whichever state is the charged one.
    const uint64_t pattern = 0x5555555555555555ULL;
    std::vector<BitVec> written;
    for (auto r : probe_rows) {
        host_.writeRowPattern(b, r, pattern);
        written.push_back(host_.readRowBits(b, r));
    }

    host_.waitMs(opts_.waitMs);

    for (size_t k = 0; k < probe_rows.size(); ++k) {
        PolarityProbe probe;
        probe.row = probe_rows[k];
        const BitVec after = host_.readRowBits(b, probe_rows[k]);
        for (size_t i = 0; i < after.size(); ++i) {
            const bool before_bit = written[k].get(i);
            const bool after_bit = after.get(i);
            if (before_bit && !after_bit)
                ++probe.onesToZeros;
            else if (!before_bit && after_bit)
                ++probe.zerosToOnes;
        }
        probe.decayed = probe.onesToZeros + probe.zerosToOnes > 0;
        probe.polarity = probe.onesToZeros >= probe.zerosToOnes
                             ? dram::CellPolarity::True
                             : dram::CellPolarity::Anti;
        if (probe.decayed) {
            if (probe.polarity == dram::CellPolarity::True)
                result.allAnti = false;
            else
                result.allTrue = false;
        }
        result.probes.push_back(probe);
    }
    result.mixed = !result.allTrue && !result.allAnti;
    return result;
}

} // namespace core
} // namespace dramscope
