/**
 * @file
 * Swizzle reverser implementation.
 */

#include "core/re_swizzle.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/log.h"

namespace dramscope {
namespace core {

namespace {

/** Union-find over host-bit node ids. */
class UnionFind
{
  public:
    int
    find(int x)
    {
        auto it = parent_.find(x);
        if (it == parent_.end()) {
            parent_[x] = x;
            return x;
        }
        int root = x;
        while (parent_[root] != root)
            root = parent_[root];
        while (parent_[x] != root) {
            const int next = parent_[x];
            parent_[x] = root;
            x = next;
        }
        return root;
    }

    void
    unite(int a, int b)
    {
        parent_[find(a)] = find(b);
    }

  private:
    std::map<int, int> parent_;
};

} // namespace

SwizzleReverser::SwizzleReverser(bender::Host &host, SwizzleOptions opts)
    : host_(host), opts_(opts)
{
    const auto &cfg = host_.config();
    columns_ = cfg.columnsPerRow();
    rd_bits_ = cfg.rdDataBits;
    probe_col_ = opts_.probeColumn == UINT32_MAX ? columns_ / 2
                                                 : opts_.probeColumn;
    fatalIf(probe_col_ == 0 || probe_col_ + 1 >= columns_,
            "SwizzleReverser: probe column needs both neighbours");
    fatalIf(opts_.subarrayBoundary == 0,
            "SwizzleReverser: subarrayBoundary required (run the "
            "SubarrayMapper first)");
}

std::vector<uint32_t>
SwizzleReverser::influenceRun(std::optional<uint32_t> candidate)
{
    const auto &cfg = host_.config();
    const dram::BankId b = opts_.bank;
    const uint32_t row_bits = columns_ * rd_bits_;
    std::vector<uint32_t> flips(row_bits, 0);

    BitVec victim_bits(row_bits, false);
    if (candidate)
        victim_bits.set(*candidate, true);

    // Each group is self-contained: rewrite, hammer both aggressors
    // within a refresh window, read.  Everything — including the
    // handful of retention flips over the ~120ms a group takes — is
    // bit-identical across runs, so the candidate-minus-baseline
    // difference isolates the horizontal influence exactly.
    for (uint32_t g = 0; g < opts_.victimGroups; ++g) {
        // Physically consecutive rows, addressed through the
        // discovered internal remap.
        const auto logical = [&](dram::RowAddr phys) {
            return dram::remapRow(opts_.rowRemap, phys);
        };
        const dram::RowAddr low_aggr = logical(opts_.baseRow + 4 * g);
        const dram::RowAddr victim = logical(opts_.baseRow + 4 * g + 1);
        const dram::RowAddr up_aggr = logical(opts_.baseRow + 4 * g + 2);
        fatalIf(opts_.baseRow + 4 * g + 2 >= cfg.rowsPerBank,
                "influenceRun: probe region exceeds the bank");

        host_.writeRowPattern(b, low_aggr, ~0ULL);
        host_.writeRowPattern(b, up_aggr, ~0ULL);
        host_.writeRowBits(b, victim, victim_bits);
        host_.hammer(b, low_aggr, opts_.hammerCount);
        host_.hammer(b, up_aggr, opts_.hammerCount);

        const BitVec read = host_.readRowBits(b, victim);
        for (uint32_t i = 0; i < row_bits; ++i) {
            if (read.get(i) != victim_bits.get(i))
                ++flips[i];
        }
    }
    return flips;
}

void
SwizzleReverser::classifyParity(SwizzleDiscovery &d)
{
    const dram::BankId b = opts_.bank;
    // Physical rows framing the first subarray boundary, addressed
    // through the discovered remap.
    const dram::RowAddr src =
        dram::remapRow(opts_.rowRemap, opts_.subarrayBoundary);
    const dram::RowAddr dst =
        dram::remapRow(opts_.rowRemap, opts_.subarrayBoundary - 1);

    // Two-trial differential: destination bits that depend on the
    // source are the ones served by the shared stripe — the odd
    // bitlines of the destination (open bitline structure).
    auto trial = [&](uint64_t src_pattern) {
        host_.writeRowPattern(b, dst, 0);
        host_.writeRowPattern(b, src, src_pattern);
        host_.rowCopy(b, src, dst);
        return host_.readRowBits(b, dst);
    };
    const BitVec with_ones = trial(~0ULL);
    const BitVec with_zeros = trial(0);

    d.blParity.assign(rd_bits_, 0);
    d.periodic = true;
    for (uint32_t i = 0; i < rd_bits_; ++i) {
        const bool odd =
            with_ones.get(size_t(probe_col_) * rd_bits_ + i) !=
            with_zeros.get(size_t(probe_col_) * rd_bits_ + i);
        d.blParity[i] = odd ? 1 : 0;
        // The parity of an RD_data bit must not depend on the column;
        // verify across the whole row (periodicity check).
        for (uint32_t c = 0; c < columns_; ++c) {
            const bool odd_c = with_ones.get(size_t(c) * rd_bits_ + i) !=
                               with_zeros.get(size_t(c) * rd_bits_ + i);
            if (odd_c != odd) {
                d.periodic = false;
                break;
            }
        }
    }
}

void
SwizzleReverser::reconstruct(SwizzleDiscovery &d)
{
    const uint32_t w = rd_bits_;
    auto parity_of = [&](uint32_t host_bit) {
        return d.blParity[host_bit % w];
    };

    // Components of the influence graph = MATs.
    UnionFind uf;
    std::set<uint32_t> nodes;
    for (const auto &[j, i] : d.edges) {
        uf.unite(int(j), int(i));
        nodes.insert(j);
        nodes.insert(i);
    }

    // Canonical MAT ids from the probe column's RD bits.
    std::map<int, int> root_to_mat;
    d.matOfRdBit.assign(w, -1);
    for (uint32_t i = 0; i < w; ++i) {
        const uint32_t host = probe_col_ * w + i;
        if (!nodes.count(host))
            continue;
        const int root = uf.find(int(host));
        auto [it, inserted] =
            root_to_mat.emplace(root, int(root_to_mat.size()));
        d.matOfRdBit[i] = it->second;
        (void)inserted;
    }
    d.matsPerRow = uint32_t(root_to_mat.size());
    if (d.matsPerRow == 0) {
        warn("SwizzleReverser: no influence edges found");
        return;
    }
    d.matWidth = columns_ * w / d.matsPerRow;

    // Residue structure: bits i and j share a MAT iff i == j modulo
    // the MAT count (every tested chip behaves this way).
    d.residueStructured = true;
    for (uint32_t i = 0; i < w; ++i) {
        if (d.matOfRdBit[i] < 0 ||
            d.matOfRdBit[i] != d.matOfRdBit[i % d.matsPerRow]) {
            d.residueStructured = false;
            break;
        }
    }

    // Chain every component into physical order using distance-one
    // edges (opposite parity); distance-two edges bridge a missed
    // link.  Then orient so the probe column's sub-chain starts at an
    // even bitline (group offsets are even).
    const uint32_t group_bits = w / d.matsPerRow;
    std::vector<uint32_t> perm(group_bits, UINT32_MAX);
    bool perm_ok = d.residueStructured;

    std::map<int, std::vector<uint32_t>> comp_nodes;
    for (uint32_t n : nodes)
        comp_nodes[uf.find(int(n))].push_back(n);

    std::map<uint32_t, std::set<uint32_t>> adj1, adj2;
    for (const auto &[j, i] : d.edges) {
        if (parity_of(j) != parity_of(i)) {
            adj1[j].insert(i);
            adj1[i].insert(j);
        } else {
            adj2[j].insert(i);
            adj2[i].insert(j);
        }
    }

    for (auto &[root, members] : comp_nodes) {
        (void)root;
        // Walk the d1 path from an endpoint, bridging gaps with d2.
        // Cells just outside the probe window are reachable through a
        // single edge only, so the walk may need to extend from both
        // ends: walk once, then reverse and continue.
        std::sort(members.begin(), members.end());
        uint32_t start = members.front();
        for (uint32_t m : members) {
            if (adj1[m].size() == 1) {
                start = m;
                break;
            }
        }
        std::vector<uint32_t> chain = {start};
        std::set<uint32_t> visited = {start};
        auto extend = [&]() {
            while (chain.size() < members.size()) {
                const uint32_t last = chain.back();
                uint32_t next = UINT32_MAX;
                for (uint32_t cand : adj1[last]) {
                    if (!visited.count(cand)) {
                        next = cand;
                        break;
                    }
                }
                if (next == UINT32_MAX && chain.size() >= 2) {
                    // Bridge: a missing d1 edge leaves the successor
                    // reachable from the second-to-last node at d2.
                    const uint32_t prev = chain[chain.size() - 2];
                    for (uint32_t cand : adj2[prev]) {
                        if (!visited.count(cand) &&
                            parity_of(cand) != parity_of(last)) {
                            next = cand;
                            break;
                        }
                    }
                }
                if (next == UINT32_MAX)
                    return;
                chain.push_back(next);
                visited.insert(next);
            }
        };
        extend();
        if (chain.size() < members.size()) {
            std::reverse(chain.begin(), chain.end());
            extend();
        }
        if (chain.size() != members.size()) {
            warn("SwizzleReverser: incomplete chain in one MAT");
            perm_ok = false;
            continue;
        }

        // Probe-column sub-chain (must be contiguous in the chain).
        std::vector<uint32_t> sub;
        for (uint32_t n : chain) {
            if (n / w == probe_col_)
                sub.push_back(n);
        }
        if (sub.size() != group_bits) {
            perm_ok = false;
            continue;
        }
        if (parity_of(sub.front()) != 0)
            std::reverse(sub.begin(), sub.end());
        if (parity_of(sub.front()) != 0) {
            perm_ok = false;
            continue;
        }
        if (d.residueStructured) {
            for (uint32_t slot = 0; slot < group_bits; ++slot) {
                const uint32_t rd_bit = sub[slot] % w;
                const uint32_t intra = rd_bit / d.matsPerRow;
                if (perm[intra] == UINT32_MAX) {
                    perm[intra] = slot;
                } else if (perm[intra] != slot) {
                    perm_ok = false;  // MATs disagree: not periodic.
                }
            }
        }
    }

    if (perm_ok &&
        std::none_of(perm.begin(), perm.end(),
                     [](uint32_t v) { return v == UINT32_MAX; })) {
        d.recoveredPerm = perm;
        // Full reconstruction: mat = rd bit modulo MAT count, slot =
        // recovered permutation of the intra index.
        std::vector<uint32_t> table(size_t(columns_) * w);
        for (uint32_t c = 0; c < columns_; ++c) {
            for (uint32_t i = 0; i < w; ++i) {
                const uint32_t mat = i % d.matsPerRow;
                const uint32_t intra = i / d.matsPerRow;
                table[size_t(c) * w + i] = mat * d.matWidth +
                                           c * group_bits + perm[intra];
            }
        }
        d.physMap = PhysMap::fromTable(std::move(table));
    }
}

SwizzleDiscovery
SwizzleReverser::discover()
{
    SwizzleDiscovery d;
    d.rdDataBits = rd_bits_;

    classifyParity(d);

    const std::vector<uint32_t> baseline = influenceRun(std::nullopt);

    // Differential sweep: every bit of the probe column and its two
    // neighbour columns is a candidate influencer.
    for (uint32_t c = probe_col_ - 1; c <= probe_col_ + 1; ++c) {
        for (uint32_t i = 0; i < rd_bits_; ++i) {
            const uint32_t cand = c * rd_bits_ + i;
            const std::vector<uint32_t> flips = influenceRun(cand);
            for (uint32_t t = 0; t < flips.size(); ++t) {
                if (t == cand)
                    continue;
                if (flips[t] >= baseline[t] &&
                    flips[t] - baseline[t] >= opts_.minInfluence) {
                    d.edges.emplace_back(cand, t);
                }
            }
        }
    }

    reconstruct(d);
    return d;
}

} // namespace core
} // namespace dramscope
