/**
 * @file
 * The AIB characterization suite: produces the data behind every
 * evaluation figure of the paper (Figures 10, 12, 13, 14, 15, 16/17).
 *
 * All experiments run through the command interface.  Physical bit
 * positions come from a PhysMap (reverse engineered or ground truth —
 * benches state which) and physical row addressing from a row-remap
 * scheme discovered by the AdjacencyMapper.
 */

#ifndef DRAMSCOPE_CORE_CHARACT_H
#define DRAMSCOPE_CORE_CHARACT_H

#include <functional>
#include <vector>

#include "bender/host.h"
#include "core/physmap.h"
#include "core/sweep.h"
#include "dram/geometry.h"
#include "dram/types.h"

namespace dramscope {
namespace core {

/** Options shared by the characterization experiments. */
struct CharactOptions
{
    dram::BankId bank = 0;

    /** Victim rows per measurement (one per 4-row group). */
    uint32_t victimRows = 128;

    /** Paper attack parameters: 300K x 35ns hammer, 8K x 7.8us press. */
    uint64_t hammerCount = 300000;
    double hammerOpenNs = 35.0;
    uint64_t pressCount = 8192;
    double pressOpenNs = 7800.0;

    /** First physical row of the probe region. */
    dram::RowAddr baseRow = 1024;

    /** Internal row remap discovered by the AdjacencyMapper. */
    dram::RowRemapScheme rowRemap = dram::RowRemapScheme::None;

    /**
     * Parallel sweep jobs: 0 resolves the DRAMSCOPE_JOBS environment
     * knob (default: hardware concurrency); 1 forces the legacy
     * serial path on the caller's host.  Results are bit-identical
     * either way (see core/sweep.h).
     */
    unsigned jobs = 0;

    /** Base seed of the per-shard RNG streams. */
    uint64_t sweepSeed = 0x5eedULL;

    /**
     * Backend factory for parallel sweep replicas (empty: dram::Chip).
     * Must match the backend of the host the suite is bound to, so
     * parallel shards run on equivalent devices.
     */
    DeviceFactory deviceFactory;
};

/** One attack run's raw outcome. */
struct AttackResult
{
    /** Flip count per host bit, summed over victim rows. */
    std::vector<uint32_t> flipsPerHostBit;
    uint32_t rows = 0;          //!< Victim rows measured.
    uint32_t cellsPerRow = 0;
    /** Physical victim rows measured (for per-cell analyses). */
    std::vector<dram::RowAddr> physRows;
};

/** Gate-type BER summary (Figure 13).  Gate labels A/B as in the
 *  paper: the analysis cannot tell which is passing vs neighboring. */
struct GateTypeBer
{
    double dischargedGateA = 0, dischargedGateB = 0;
    double chargedGateA = 0, chargedGateB = 0;
};

/** Edge-vs-typical BER summary (Figure 10). */
struct EdgeBerResult
{
    double typicalAggr0Vic1 = 0, edgeAggr0Vic1 = 0;
    double typicalAggr1Vic0 = 0, edgeAggr1Vic0 = 0;
};

/** The characterization suite. */
class Characterization
{
  public:
    /**
     * @param host Device under test.
     * @param map Host-bit to bitline map.
     * @param opts Experiment options.
     */
    Characterization(bender::Host &host, PhysMap map,
                     CharactOptions opts = {});

    /**
     * Core runner: victims at physical parity @p victim_even_wl, one
     * aggressor per victim on the chosen side; victim/aggressor rows
     * hold the given host-order patterns.
     */
    AttackResult runAttack(dram::AibMechanism mech, bool upper_aggressor,
                           bool victim_even_wl, const BitVec &victim_bits,
                           const BitVec &aggr_bits, uint64_t count,
                           double open_ns);

    /**
     * Figure 12: average BER per physical bit index (mod @p modulo)
     * for one panel (mechanism x victim data x aggressor direction),
     * even-WL victims.
     */
    std::vector<double> berVsPhysIndex(dram::AibMechanism mech,
                                       bool victim_data_one,
                                       bool upper_aggressor,
                                       uint32_t modulo = 32,
                                       bool victim_even_wl = true);

    /** Figure 13: BER aggregated by gate type and victim data. */
    GateTypeBer gateTypeBer(dram::AibMechanism mech);

    /**
     * Figure 10: BER of typical vs edge subarrays for (aggr, vic)
     * data (0,1) and (1,0).  Aggressor rows are physical addresses;
     * victims are their upper neighbours.
     */
    EdgeBerResult
    edgeVsTypical(const std::vector<dram::RowAddr> &typical_aggressors,
                  const std::vector<dram::RowAddr> &edge_aggressors);

    /**
     * Figure 14a: BER relative to the solid-victim baseline when the
     * distance-1 / distance-2 victim neighbours hold the opposite of
     * Vic0.  Only Vic0 positions (period-5 lattice) are measured.
     */
    double relativeBerVictimNeighbors(bool vic0_one, bool dist1_opposite,
                                      bool dist2_opposite);

    /**
     * Figure 14b: BER relative to the all-opposite-aggressor baseline
     * when the selected aggressor cells (Aggr0 / Aggr+-1 / Aggr+-2)
     * hold the same value as Vic0.
     */
    double relativeBerAggrNeighbors(bool vic0_one, bool aggr0_same,
                                    bool aggr1_same, bool aggr2_same);

    /**
     * Figure 15: Hcnt relative to the solid-victim baseline when the
     * distance-1 / distance-2 victim neighbours hold the opposite of
     * Vic0.  The aggressor row holds the inverse of Vic0 throughout
     * (the figure's setup), keeping Hcnt well inside one refresh
     * window.
     */
    double relativeHcnt(bool vic0_one, bool dist1_opposite,
                        bool dist2_opposite);

    /**
     * Figure 16: whole-victim-row BER when the victim and aggressor
     * rows repeat the given 4-bit physical patterns.
     */
    double patternBer(uint8_t victim_nibble, uint8_t aggr_nibble);

    /** The physical map in use. */
    const PhysMap &physMap() const { return map_; }

    /** Effective sweep worker count (1 = legacy serial path). */
    unsigned sweepJobs() const { return sweep_.jobs(); }

  private:
    /** Median Hcnt over victim rows for one pattern pair. */
    double medianHcnt(const BitVec &victim_bits, const BitVec &aggr_bits);

    /** First-flip search on one group (binary search on count). */
    uint64_t hcntForGroup(bender::Host &host, dram::RowAddr victim_phys,
                          bool upper, const BitVec &victim_bits,
                          const BitVec &aggr_bits,
                          const std::vector<uint32_t> &vic0_positions);

    /** Builds a period-5 Vic0 lattice pattern in host order. */
    BitVec lattice(bool vic0, bool d1_opposite, bool d2_opposite) const;

    /** Host positions whose physical index is on the Vic0 lattice. */
    std::vector<uint32_t> latticePositions() const;

    /** Logical row for a physical row (remap is an involution). */
    dram::RowAddr logicalOf(dram::RowAddr phys) const;

    bender::Host &host_;
    PhysMap map_;
    CharactOptions opts_;
    uint32_t row_bits_;
    SweepRunner sweep_;
};

} // namespace core
} // namespace dramscope

#endif // DRAMSCOPE_CORE_CHARACT_H
