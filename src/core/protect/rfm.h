/**
 * @file
 * Refresh Management (RFM) interface model (SS VI-B).
 *
 * DDR5-style split of responsibilities: the memory controller counts
 * activations per bank (RAA counter) and issues an RFM command every
 * RAAIMT activations; the DRAM maintains its own in-DRAM aggressor
 * tracker (a small space-saving table, as in Mithril/DSAC-style
 * designs) and, on RFM, refreshes the neighbours of the hottest
 * tracked row — with full knowledge of its internal topology,
 * including the coupled-row relation and the true physical adjacency.
 *
 * The engine speaks only dram::Device: the in-DRAM mitigation step is
 * the device's refreshAggressorNeighbors primitive, so the same
 * engine protects a chip, every chip of a DIMM rank, or an HBM
 * channel.
 */

#ifndef DRAMSCOPE_CORE_PROTECT_RFM_H
#define DRAMSCOPE_CORE_PROTECT_RFM_H

#include <vector>

#include "core/protect/mitigation.h"
#include "dram/device.h"

namespace dramscope {
namespace core {

/** In-DRAM aggressor tracker + RFM mitigation engine. */
class RfmEngine
{
  public:
    /**
     * @param dev The device this engine lives in.
     * @param bank Bank the engine serves.
     * @param table_size Space-saving table entries.
     */
    RfmEngine(dram::Device &dev, dram::BankId bank,
              uint32_t table_size = 16);

    /**
     * In-DRAM view of an ACT (the device sees its own commands);
     * @p count supports bulk accounting.
     */
    void onActivate(dram::RowAddr logical_row, uint64_t count);

    /**
     * RFM command: refresh the neighbours of the hottest tracked row
     * (and of its coupled partner), then decay its counter.
     */
    void onRfm(dram::NanoTime now);

    /** Mitigative refreshes performed. */
    uint64_t mitigations() const { return mitigations_; }

  private:
    dram::Device &dev_;
    dram::BankId bank_;
    SpaceSavingTable table_;  //!< Logical addresses.
    uint64_t mitigations_ = 0;
};

/** MC-side RAA counter issuing RFMs every RAAIMT activations. */
class RfmController
{
  public:
    /**
     * @param engine The in-DRAM engine commanded by this controller.
     * @param raaimt Rolling accumulated ACT initial management
     *        threshold (JEDEC term): RFM cadence in activations.
     */
    RfmController(RfmEngine &engine, uint64_t raaimt = 4096);

    /** MC hook: accounts activations and issues RFMs when due. */
    void onActivate(dram::RowAddr logical_row, uint64_t count,
                    dram::NanoTime now);

    /** RFM commands issued so far. */
    uint64_t rfmCount() const { return rfm_count_; }

  private:
    RfmEngine &engine_;
    uint64_t raaimt_;
    uint64_t raa_ = 0;
    uint64_t rfm_count_ = 0;
};

} // namespace core
} // namespace dramscope

#endif // DRAMSCOPE_CORE_PROTECT_RFM_H
