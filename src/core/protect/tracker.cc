/**
 * @file
 * Activation tracker implementation.
 */

#include "core/protect/tracker.h"

#include <algorithm>

#include "util/log.h"

namespace dramscope {
namespace core {

ActivationTracker::ActivationTracker(TrackerOptions opts)
    : opts_(opts)
{
    fatalIf(opts_.tableSize == 0 || opts_.threshold == 0,
            "ActivationTracker: bad options");
    fatalIf(opts_.coupledAware && opts_.coupledDistance == 0,
            "ActivationTracker: coupledAware needs a distance");
}

dram::RowAddr
ActivationTracker::canonical(dram::RowAddr row) const
{
    if (!opts_.coupledAware)
        return row;
    // Coupled pairs are (n, n + distance); fold onto the lower row so
    // split activations land on one counter.
    return std::min<dram::RowAddr>(row, row ^ opts_.coupledDistance);
}

std::vector<dram::RowAddr>
ActivationTracker::onActivate(dram::RowAddr row, uint64_t count)
{
    const dram::RowAddr key = canonical(row);
    auto it = counters_.find(key);
    if (it == counters_.end()) {
        if (counters_.size() < opts_.tableSize) {
            it = counters_.emplace(key, spill_).first;
        } else {
            // Misra-Gries: raise the floor instead of tracking.
            spill_ += count;
            return {};
        }
    }
    it->second += count;

    std::vector<dram::RowAddr> to_mitigate;
    if (it->second >= opts_.threshold) {
        it->second = spill_;
        ++mitigations_;
        to_mitigate.push_back(key);
        if (opts_.coupledAware)
            to_mitigate.push_back(key ^ opts_.coupledDistance);
    }
    return to_mitigate;
}

void
ActivationTracker::reset()
{
    counters_.clear();
    spill_ = 0;
}

ProtectedMemory::ProtectedMemory(bender::Host &host, TrackerOptions opts)
    : host_(host), tracker_(opts),
      chunk_(std::max<uint64_t>(1, opts.threshold / 4))
{
}

bender::Program
ProtectedMemory::makeMitigationProgram(const dram::DeviceConfig &cfg,
                                       dram::BankId bank,
                                       dram::RowAddr row)
{
    // Victim refresh: activating the logical neighbours restores
    // their cells.  The MC assumes +-1 logical adjacency (it cannot
    // know the internal remap or coupling unless told).
    bender::Program p;
    const auto &t = cfg.timing;
    for (const int d : {-1, +1}) {
        const int64_t victim = int64_t(row) + d;
        if (victim < 0 || victim >= int64_t(cfg.rowsPerBank))
            continue;
        p.act(bank, dram::RowAddr(victim))
            .sleepNs(t.tRasNs)
            .pre(bank)
            .sleepNs(t.tRpNs);
    }
    return p;
}

void
ProtectedMemory::mitigate(dram::BankId bank, dram::RowAddr row)
{
    host_.run(makeMitigationProgram(host_.config(), bank, row));
}

void
ProtectedMemory::hammer(dram::BankId bank, dram::RowAddr row,
                        uint64_t count)
{
    // Chunked execution keeps the simulation fast while preserving
    // tracker semantics: counters accumulate exactly `count`
    // activations and mitigations fire at the same points.
    uint64_t remaining = count;
    while (remaining > 0) {
        const uint64_t n = std::min(chunk_, remaining);
        host_.hammer(bank, row, n);
        for (const auto victim_source : tracker_.onActivate(row, n))
            mitigate(bank, victim_source);
        remaining -= n;
    }
}

} // namespace core
} // namespace dramscope
