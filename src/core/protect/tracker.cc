/**
 * @file
 * Activation tracker implementation.
 */

#include "core/protect/tracker.h"

#include <algorithm>

#include "core/protect/mitigation.h"
#include "util/log.h"

namespace dramscope {
namespace core {

ActivationTracker::ActivationTracker(TrackerOptions opts)
    : opts_(opts)
{
    fatalIf(opts_.tableSize == 0 || opts_.threshold == 0,
            "ActivationTracker: bad options");
    fatalIf(opts_.coupledAware && opts_.coupledDistance == 0,
            "ActivationTracker: coupledAware needs a distance");
}

dram::RowAddr
ActivationTracker::canonical(dram::RowAddr row) const
{
    if (!opts_.coupledAware)
        return row;
    // Coupled pairs are (n, n + distance); fold onto the lower row so
    // split activations land on one counter.
    return std::min<dram::RowAddr>(row, row ^ opts_.coupledDistance);
}

std::vector<dram::RowAddr>
ActivationTracker::onActivate(dram::RowAddr row, uint64_t count)
{
    const dram::RowAddr key = canonical(row);
    auto it = counters_.find(key);
    if (it == counters_.end()) {
        if (counters_.size() < opts_.tableSize) {
            it = counters_.emplace(key, spill_).first;
        } else {
            // Misra-Gries: raise the floor instead of tracking.
            spill_ += count;
            return {};
        }
    }
    it->second += count;

    std::vector<dram::RowAddr> to_mitigate;
    if (it->second >= opts_.threshold) {
        it->second = spill_;
        ++mitigations_;
        to_mitigate.push_back(key);
        if (opts_.coupledAware)
            to_mitigate.push_back(key ^ opts_.coupledDistance);
    }
    return to_mitigate;
}

void
ActivationTracker::reset()
{
    counters_.clear();
    spill_ = 0;
}

ProtectedMemory::ProtectedMemory(bender::Host &host, TrackerOptions opts)
    : host_(host),
      mitigation_(
          std::make_unique<GrapheneMitigation>(host.config(), opts))
{
}

ProtectedMemory::~ProtectedMemory() = default;

bender::Program
ProtectedMemory::makeMitigationProgram(const dram::DeviceConfig &cfg,
                                       dram::BankId bank,
                                       dram::RowAddr row)
{
    // Victim refresh: activating the logical neighbours restores
    // their cells.  The MC assumes +-1 logical adjacency (it cannot
    // know the internal remap or coupling unless told).
    MitigationSequence seq;
    seq.kind = MitigationKind::Graphene;
    seq.bank = bank;
    seq.rows = victimRows(cfg, row, /*device_aware=*/false);
    return seq.program(cfg);
}

void
ProtectedMemory::hammer(dram::BankId bank, dram::RowAddr row,
                        uint64_t count)
{
    hammerThroughMitigation(host_, *mitigation_, bank, row, count);
}

const ActivationTracker &
ProtectedMemory::tracker() const
{
    return mitigation_->tracker(0);
}

} // namespace core
} // namespace dramscope
