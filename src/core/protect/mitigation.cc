/**
 * @file
 * Unified mitigation implementations.
 */

#include "core/protect/mitigation.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/log.h"

namespace dramscope {
namespace core {

namespace {

/** Exact conversion for the repo's dyadic-rational timing values. */
int64_t
ps(double ns)
{
    return int64_t(std::llround(ns * 1000.0));
}

} // namespace

const std::vector<MitigationInfo> &
mitigationTable()
{
    static const std::vector<MitigationInfo> table = {
#define X(name, id, knobs, summary)                                         \
    {MitigationKind::name, id, knobs, summary},
        DRAMSCOPE_MITIGATIONS(X)
#undef X
    };
    return table;
}

const MitigationInfo &
mitigationInfo(MitigationKind kind)
{
    return mitigationTable()[size_t(kind)];
}

const char *
mitigationId(MitigationKind kind)
{
    return mitigationInfo(kind).id;
}

std::optional<MitigationKind>
mitigationFromString(const std::string &id)
{
    for (const auto &info : mitigationTable())
        if (id == info.id)
            return info.kind;
    return std::nullopt;
}

bender::Program
MitigationSequence::program(const dram::DeviceConfig &cfg) const
{
    // One in-spec ACT..PRE cycle per row — the same shape as
    // ProtectedMemory's victim-refresh program — then the extra
    // blocking time (a swap's data-migration burst).
    bender::Program p;
    const auto &t = cfg.timing;
    for (const dram::RowAddr r : rows)
        p.act(bank, r).sleepNs(t.tRasNs).pre(bank).sleepNs(t.tRpNs);
    if (extraPs > 0)
        p.sleepPs(extraPs);
    return p;
}

int64_t
MitigationSequence::costPs(const dram::TimingParams &t) const
{
    // Each row cycle: the ACT and PRE command slots (tCK each) plus
    // the tRAS open and tRP precharge waits.
    const int64_t perRow = 2 * ps(t.tCkNs) + ps(t.tRasNs) + ps(t.tRpNs);
    return int64_t(rows.size()) * perRow + extraPs;
}

Mitigation::~Mitigation() = default;

std::vector<dram::RowAddr>
victimRows(const dram::DeviceConfig &cfg, dram::RowAddr row,
           bool device_aware)
{
    std::vector<dram::RowAddr> victims;
    const auto push_neighbours = [&](dram::RowAddr r) {
        for (const int d : {-1, +1}) {
            const int64_t v = int64_t(r) + d;
            if (v < 0 || v >= int64_t(cfg.rowsPerBank))
                continue;
            const auto va = dram::RowAddr(v);
            if (std::find(victims.begin(), victims.end(), va) ==
                victims.end())
                victims.push_back(va);
        }
    };
    push_neighbours(row);
    if (device_aware && cfg.coupledRowDistance) {
        const dram::RowAddr partner = row ^ *cfg.coupledRowDistance;
        if (partner != row && partner < cfg.rowsPerBank)
            push_neighbours(partner);
    }
    return victims;
}

// ---------------------------------------------------------------- Graphene

GrapheneMitigation::GrapheneMitigation(const dram::DeviceConfig &cfg,
                                       TrackerOptions opts)
    : cfg_(cfg), opts_(opts)
{
    trackers_.reserve(cfg_.numBanks);
    for (uint32_t b = 0; b < cfg_.numBanks; ++b)
        trackers_.emplace_back(opts_);
}

void
GrapheneMitigation::onActivate(dram::BankId bank, dram::RowAddr row,
                               uint64_t count)
{
    fatalIf(bank >= trackers_.size(), "GrapheneMitigation: bad bank");
    for (const auto fired : trackers_[bank].onActivate(row, count)) {
        MitigationSequence seq;
        seq.kind = MitigationKind::Graphene;
        seq.bank = bank;
        // The MC-side tracker assumes +-1 logical adjacency; it does
        // not know the device's internal topology.
        seq.rows = victimRows(cfg_, fired, /*device_aware=*/false);
        seq.neutralized = {fired};
        pending_.push_back(std::move(seq));
        ++fired_;
    }
}

void
GrapheneMitigation::onRefreshWindow()
{
    for (auto &tracker : trackers_)
        tracker.reset();
}

std::vector<MitigationSequence>
GrapheneMitigation::pendingCommands()
{
    return std::exchange(pending_, {});
}

uint64_t
GrapheneMitigation::accountingChunk() const
{
    return std::max<uint64_t>(1, opts_.threshold / 4);
}

const ActivationTracker &
GrapheneMitigation::tracker(dram::BankId bank) const
{
    fatalIf(bank >= trackers_.size(), "GrapheneMitigation: bad bank");
    return trackers_[bank];
}

// --------------------------------------------------------------------- RFM

SpaceSavingTable::SpaceSavingTable(uint32_t capacity)
    : capacity_(capacity)
{
    fatalIf(capacity_ == 0, "SpaceSavingTable: empty table");
}

void
SpaceSavingTable::account(dram::RowAddr row, uint64_t count)
{
    auto it = counts_.find(row);
    if (it != counts_.end()) {
        it->second += count;
        return;
    }
    if (counts_.size() < capacity_) {
        counts_.emplace(row, count);
        return;
    }
    // Space-saving: replace the minimum entry, inheriting its count.
    // determinism-ok: comparator total-orders ties by row address
    auto min_it = std::min_element(
        counts_.begin(), counts_.end(), [](const auto &a, const auto &b) {
            return a.second != b.second ? a.second < b.second
                                        : a.first < b.first;
        });
    const uint64_t floor = min_it->second;
    counts_.erase(min_it);
    counts_.emplace(row, floor + count);
}

std::optional<dram::RowAddr>
SpaceSavingTable::hottest() const
{
    if (counts_.empty())
        return std::nullopt;
    // determinism-ok: ties pick the lowest row, not the hash order
    return std::max_element(counts_.begin(), counts_.end(),
                            [](const auto &a, const auto &b) {
                                return a.second != b.second
                                           ? a.second < b.second
                                           : a.first > b.first;
                            })
        ->first;
}

void
SpaceSavingTable::decay(dram::RowAddr row)
{
    const auto it = counts_.find(row);
    if (it != counts_.end())
        it->second /= 2;  // Decay instead of reset: conservative.
}

RfmMitigation::RfmMitigation(const dram::DeviceConfig &cfg,
                             uint64_t raaimt, uint32_t table_size)
    : cfg_(cfg), raaimt_(raaimt)
{
    fatalIf(raaimt_ == 0, "RfmMitigation: zero RAAIMT");
    banks_.reserve(cfg_.numBanks);
    for (uint32_t b = 0; b < cfg_.numBanks; ++b)
        banks_.emplace_back(table_size);
}

void
RfmMitigation::onActivate(dram::BankId bank, dram::RowAddr row,
                          uint64_t count)
{
    fatalIf(bank >= banks_.size(), "RfmMitigation: bad bank");
    BankState &st = banks_[bank];
    st.table.account(row, count);

    // MC-side RAA counter: one RFM per RAAIMT activations.
    st.raa += count;
    while (st.raa >= raaimt_) {
        st.raa -= raaimt_;
        const auto hot = st.table.hottest();
        if (!hot)
            continue;
        MitigationSequence seq;
        seq.kind = MitigationKind::Rfm;
        seq.bank = bank;
        // The DRAM knows its own topology: true neighbours of the
        // hot row *and* of its coupled partner (SS VI-B).
        seq.rows = victimRows(cfg_, *hot, /*device_aware=*/true);
        seq.neutralized = {*hot};
        if (cfg_.coupledRowDistance) {
            const dram::RowAddr partner = *hot ^ *cfg_.coupledRowDistance;
            if (partner != *hot && partner < cfg_.rowsPerBank)
                seq.neutralized.push_back(partner);
        }
        st.table.decay(*hot);
        pending_.push_back(std::move(seq));
        ++fired_;
    }
}

std::vector<MitigationSequence>
RfmMitigation::pendingCommands()
{
    return std::exchange(pending_, {});
}

uint64_t
RfmMitigation::accountingChunk() const
{
    return std::max<uint64_t>(1, raaimt_ / 4);
}

// -------------------------------------------------------------------- DRFM

DrfmMitigation::DrfmMitigation(const dram::DeviceConfig &cfg,
                               uint64_t interval)
    : cfg_(cfg), interval_(interval), banks_(cfg.numBanks)
{
    fatalIf(interval_ == 0, "DrfmMitigation: zero interval");
}

void
DrfmMitigation::onActivate(dram::BankId bank, dram::RowAddr row,
                           uint64_t count)
{
    fatalIf(bank >= banks_.size(), "DrfmMitigation: bad bank");
    BankState &st = banks_[bank];
    st.sampled = row;
    st.sinceLast += count;
    if (st.sinceLast < interval_)
        return;
    st.sinceLast = 0;

    MitigationSequence seq;
    seq.kind = MitigationKind::Drfm;
    seq.bank = bank;
    seq.rows = victimRows(cfg_, *st.sampled, /*device_aware=*/true);
    seq.neutralized = {*st.sampled};
    if (cfg_.coupledRowDistance) {
        const dram::RowAddr partner =
            *st.sampled ^ *cfg_.coupledRowDistance;
        if (partner != *st.sampled && partner < cfg_.rowsPerBank)
            seq.neutralized.push_back(partner);
    }
    pending_.push_back(std::move(seq));
    ++fired_;
}

std::vector<MitigationSequence>
DrfmMitigation::pendingCommands()
{
    return std::exchange(pending_, {});
}

uint64_t
DrfmMitigation::accountingChunk() const
{
    return std::max<uint64_t>(1, interval_ / 4);
}

// ---------------------------------------------------------------- Row swap

RowSwapMitigation::RowSwapMitigation(const dram::DeviceConfig &cfg,
                                     RowSwapOptions opts)
    : cfg_(cfg), opts_(opts), banks_(cfg.numBanks)
{
    fatalIf(opts_.threshold == 0, "RowSwapMitigation: zero threshold");
    fatalIf(opts_.coupledAware && opts_.coupledDistance == 0,
            "RowSwapMitigation: coupledAware needs a distance");
    for (auto &st : banks_)
        st.nextSpare = opts_.spareBase;
}

dram::RowAddr
RowSwapMitigation::resolve(dram::BankId bank, dram::RowAddr row) const
{
    fatalIf(bank >= banks_.size(), "RowSwapMitigation: bad bank");
    const auto &ind = banks_[bank].indirection;
    const auto it = ind.find(row);
    return it == ind.end() ? row : it->second;
}

void
RowSwapMitigation::swapOut(dram::BankId bank, dram::RowAddr row)
{
    BankState &st = banks_[bank];
    const dram::RowAddr from = resolve(bank, row);
    const dram::RowAddr to = st.nextSpare;
    st.nextSpare += 4;  // Keep spares apart so they never interact.
    if (st.nextSpare >= cfg_.rowsPerBank)
        st.nextSpare = opts_.spareBase;
    st.indirection[row] = to;
    st.counters[row] = 0;

    MitigationSequence seq;
    seq.kind = MitigationKind::RowSwap;
    seq.bank = bank;
    seq.rows = {from, to};  // Migration: source cycle, target cycle.
    seq.neutralized = {from};
    // The data burst: every column read from the source and written
    // back to the target, one command slot each.
    seq.extraPs =
        int64_t(2 * cfg_.columnsPerRow()) * ps(cfg_.timing.tCkNs);
    pending_.push_back(std::move(seq));
    ++fired_;
}

void
RowSwapMitigation::onActivate(dram::BankId bank, dram::RowAddr row,
                              uint64_t count)
{
    fatalIf(bank >= banks_.size(), "RowSwapMitigation: bad bank");
    uint64_t &ctr = banks_[bank].counters[row];
    ctr += count;
    if (ctr >= opts_.threshold) {
        swapOut(bank, row);
        if (opts_.coupledAware)
            swapOut(bank, row ^ opts_.coupledDistance);
    }
}

std::vector<MitigationSequence>
RowSwapMitigation::pendingCommands()
{
    return std::exchange(pending_, {});
}

uint64_t
RowSwapMitigation::accountingChunk() const
{
    return std::max<uint64_t>(1, opts_.threshold / 4);
}

// ----------------------------------------------------------------- Factory

bender::lint::Certificate
certifyMitigationSequences(MitigationKind kind,
                           const dram::DeviceConfig &cfg,
                           const bender::lint::CertifyOptions &opts)
{
    // The exemplar sequence of each kind, at the catalog's default
    // probe row.  The tracker kinds inject victim-refresh cycles
    // (device-aware ones cover the coupled partner too); row swap
    // costs a double row cycle plus the data-migration burst.
    const auto row =
        std::min<dram::RowAddr>(1024, cfg.rowsPerBank / 2);
    MitigationSequence seq;
    seq.kind = kind;
    seq.bank = 0;
    switch (kind) {
    case MitigationKind::None:
        break;  // Certifies the empty program: the free baseline.
    case MitigationKind::Graphene:
        seq.rows = victimRows(cfg, row, false);
        break;
    case MitigationKind::Rfm:
    case MitigationKind::Drfm:
        seq.rows = victimRows(cfg, row, true);
        break;
    case MitigationKind::RowSwap:
        seq.rows = {row, cfg.rowsPerBank - cfg.rowsPerBank / 8};
        seq.extraPs =
            int64_t(2 * cfg.columnsPerRow()) * ps(cfg.timing.tCkNs);
        break;
    }
    return bender::lint::certify(seq.program(cfg), cfg, opts);
}

std::unique_ptr<Mitigation>
makeMitigation(MitigationKind kind, const dram::DeviceConfig &cfg,
               const MitigationOptions &opts)
{
    const auto cert = certifyMitigationSequences(kind, cfg);
    for (const auto &d : cert.report.diags) {
        fatalIf(!d.expected &&
                    d.severity == bender::lint::Severity::Error,
                "makeMitigation: " + std::string(mitigationId(kind)) +
                    "'s own sequence fails certification: " + d.message);
    }
    switch (kind) {
    case MitigationKind::None:
        return nullptr;
    case MitigationKind::Graphene: {
        TrackerOptions t = opts.graphene;
        if (t.coupledAware && t.coupledDistance == 0)
            t.coupledDistance = cfg.coupledRowDistance.value_or(0);
        return std::make_unique<GrapheneMitigation>(cfg, t);
    }
    case MitigationKind::Rfm:
        return std::make_unique<RfmMitigation>(cfg, opts.raaimt,
                                               opts.rfmTableSize);
    case MitigationKind::Drfm:
        return std::make_unique<DrfmMitigation>(cfg, opts.drfmInterval);
    case MitigationKind::RowSwap: {
        RowSwapOptions r = opts.rowswap;
        if (r.spareBase == 0) {
            // Auto: reserve the top eighth of the bank for spares,
            // clear of the demand footprint.
            r.spareBase = cfg.rowsPerBank - cfg.rowsPerBank / 8;
        }
        if (r.coupledAware && r.coupledDistance == 0)
            r.coupledDistance = cfg.coupledRowDistance.value_or(0);
        return std::make_unique<RowSwapMitigation>(cfg, r);
    }
    }
    fatal("makeMitigation: bad kind");
    return nullptr;
}

void
hammerThroughMitigation(bender::Host &host, Mitigation &mit,
                        dram::BankId bank, dram::RowAddr row,
                        uint64_t count, const SequenceHandler &handler)
{
    // Chunked execution keeps the simulation fast while preserving
    // trigger semantics: counters accumulate exactly `count`
    // activations and no firing point can be skipped past.
    const uint64_t chunk = mit.accountingChunk();
    uint64_t remaining = count;
    while (remaining > 0) {
        const uint64_t n = std::min(chunk, remaining);
        host.hammer(bank, mit.resolve(bank, row), n);
        mit.onActivate(bank, row, n);
        for (const auto &seq : mit.pendingCommands()) {
            if (handler)
                handler(seq);
            else
                host.run(seq.program(host.config()));
        }
        remaining -= n;
    }
}

} // namespace core
} // namespace dramscope
