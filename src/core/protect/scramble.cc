/**
 * @file
 * Scrambler is header-only; this TU anchors the library target.
 */

#include "core/protect/scramble.h"
