/**
 * @file
 * MC-side row-swapping defense (RRS/ScaleSRS style) and its
 * coupled-row bypass (SS VI-A).
 *
 * The defense relocates a hot row to a spare once its activation
 * count crosses a threshold, breaking the spatial correlation between
 * aggressor and victims.  On a coupled chip this is neutralized: the
 * defense relocates only row A, while the attacker can keep driving
 * the same physical wordline through row B = A ^ distance, whose
 * address was never swapped.
 */

#ifndef DRAMSCOPE_CORE_PROTECT_ROWSWAP_H
#define DRAMSCOPE_CORE_PROTECT_ROWSWAP_H

#include <unordered_map>

#include "bender/host.h"
#include "core/protect/tracker.h"

namespace dramscope {
namespace core {

/** Row-swap defense options. */
struct RowSwapOptions
{
    uint64_t threshold = 6000;

    /** First spare row used for relocation targets. */
    dram::RowAddr spareBase = 0;

    /**
     * When true, a swap relocates the coupled partner as well
     * (requires the MC to know the coupled relation).
     */
    bool coupledAware = false;
    uint32_t coupledDistance = 0;
};

/** MC-side indirection with threshold-triggered swaps. */
class RowSwapDefense
{
  public:
    RowSwapDefense(bender::Host &host, RowSwapOptions opts);

    /** Attacker-visible hammer through the defended controller. */
    void hammer(dram::BankId bank, dram::RowAddr row, uint64_t count);

    /** Current physical target of an MC row address. */
    dram::RowAddr resolve(dram::RowAddr row) const;

    /** Swaps performed so far. */
    uint64_t swaps() const { return swaps_; }

  private:
    void swapOut(dram::BankId bank, dram::RowAddr row);

    bender::Host &host_;
    RowSwapOptions opts_;
    std::unordered_map<dram::RowAddr, dram::RowAddr> indirection_;
    std::unordered_map<dram::RowAddr, uint64_t> counters_;
    dram::RowAddr next_spare_;
    uint64_t swaps_ = 0;
};

} // namespace core
} // namespace dramscope

#endif // DRAMSCOPE_CORE_PROTECT_ROWSWAP_H
