/**
 * @file
 * MC-side row-swapping defense (RRS/ScaleSRS style) and its
 * coupled-row bypass (SS VI-A).
 *
 * The defense relocates a hot row to a spare once its activation
 * count crosses a threshold, breaking the spatial correlation between
 * aggressor and victims.  On a coupled chip this is neutralized: the
 * defense relocates only row A, while the attacker can keep driving
 * the same physical wordline through row B = A ^ distance, whose
 * address was never swapped.
 */

#ifndef DRAMSCOPE_CORE_PROTECT_ROWSWAP_H
#define DRAMSCOPE_CORE_PROTECT_ROWSWAP_H

#include <memory>
#include <unordered_map>

#include "bender/host.h"
#include "core/protect/tracker.h"

namespace dramscope {
namespace core {

class RowSwapMitigation;

/** Row-swap defense options. */
struct RowSwapOptions
{
    uint64_t threshold = 6000;

    /** First spare row used for relocation targets. */
    dram::RowAddr spareBase = 0;

    /**
     * When true, a swap relocates the coupled partner as well
     * (requires the MC to know the coupled relation).
     */
    bool coupledAware = false;
    uint32_t coupledDistance = 0;
};

/**
 * MC-side indirection with threshold-triggered swaps.  A thin
 * adapter over the unified Mitigation interface
 * (core/protect/mitigation.h): the swap decision and chunking live
 * in RowSwapMitigation + hammerThroughMitigation, shared with the
 * scheduled-traffic path; only the data migration (a straight row
 * read/write through the controller) is supplied here.
 */
class RowSwapDefense
{
  public:
    RowSwapDefense(bender::Host &host, RowSwapOptions opts);
    ~RowSwapDefense();

    /** Attacker-visible hammer through the defended controller. */
    void hammer(dram::BankId bank, dram::RowAddr row, uint64_t count);

    /** Current physical target of an MC row address. */
    dram::RowAddr resolve(dram::RowAddr row) const;

    /** Swaps performed so far. */
    uint64_t swaps() const;

  private:
    bender::Host &host_;
    std::unique_ptr<RowSwapMitigation> mitigation_;
};

} // namespace core
} // namespace dramscope

#endif // DRAMSCOPE_CORE_PROTECT_ROWSWAP_H
