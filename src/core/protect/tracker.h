/**
 * @file
 * MC-side activation tracking (Graphene-style Misra-Gries counters)
 * with optional coupled-row awareness (SS VI-A/VI-B).
 *
 * The paper's point: a tracker that does not know the coupled-row
 * relation (O3) can be bypassed by splitting activations across a
 * coupled pair, and its victim refreshes miss the coupled row's
 * neighbours entirely.
 */

#ifndef DRAMSCOPE_CORE_PROTECT_TRACKER_H
#define DRAMSCOPE_CORE_PROTECT_TRACKER_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bender/host.h"
#include "dram/types.h"

namespace dramscope {
namespace core {

class GrapheneMitigation;

/** Tracker configuration. */
struct TrackerOptions
{
    uint32_t tableSize = 64;

    /** Activation count that triggers a victim refresh. */
    uint64_t threshold = 20000;

    /**
     * When true, every activation is accounted to the canonical
     * representative of its coupled pair and mitigation refreshes the
     * neighbours of both rows.
     */
    bool coupledAware = false;

    /** Coupled distance (rowsPerBank / 2) when aware; 0 otherwise. */
    uint32_t coupledDistance = 0;
};

/** Misra-Gries frequent-row tracker issuing victim-refresh targets. */
class ActivationTracker
{
  public:
    explicit ActivationTracker(TrackerOptions opts);

    /**
     * Accounts @p count activations of @p row and returns the rows
     * whose neighbours must be refreshed now (empty when no counter
     * crossed the threshold).  Counters reset on mitigation.
     */
    std::vector<dram::RowAddr> onActivate(dram::RowAddr row,
                                          uint64_t count = 1);

    /** Clears all counters (refresh-window boundary). */
    void reset();

    /** Mitigations issued so far. */
    uint64_t mitigations() const { return mitigations_; }

  private:
    /** Canonical row under coupled-awareness. */
    dram::RowAddr canonical(dram::RowAddr row) const;

    TrackerOptions opts_;
    std::unordered_map<dram::RowAddr, uint64_t> counters_;
    uint64_t spill_ = 0;  //!< Misra-Gries decrement floor.
    uint64_t mitigations_ = 0;
};

/**
 * A memory controller that routes an attacker's hammering through a
 * Graphene-style tracker and performs the victim refreshes on the
 * device.  Mitigation activates the logical neighbours of the
 * tracked row — which protects the coupled row's victims only when
 * the tracker is coupled-aware.
 *
 * A thin adapter over the unified Mitigation interface
 * (core/protect/mitigation.h): the chunking and firing logic lives
 * in hammerThroughMitigation, shared with the scheduled-traffic
 * path.
 */
class ProtectedMemory
{
  public:
    ProtectedMemory(bender::Host &host, TrackerOptions opts);
    ~ProtectedMemory();

    /**
     * The victim-refresh program a firing executes: one in-spec
     * ACT..PRE cycle per logical neighbour of @p row that exists in
     * @p cfg.  Exposed for the program linter and its catalog.
     */
    static bender::Program
    makeMitigationProgram(const dram::DeviceConfig &cfg,
                          dram::BankId bank, dram::RowAddr row);

    /**
     * Hammers @p row through the protected controller in chunks,
     * applying mitigations as the tracker fires.
     */
    void hammer(dram::BankId bank, dram::RowAddr row, uint64_t count);

    /** The bank-0 tracker (the attack surface tests exercise). */
    const ActivationTracker &tracker() const;

  private:
    bender::Host &host_;
    std::unique_ptr<GrapheneMitigation> mitigation_;
};

} // namespace core
} // namespace dramscope

#endif // DRAMSCOPE_CORE_PROTECT_TRACKER_H
