/**
 * @file
 * The unified mitigation interface (SS VI): every `core/protect`
 * defense expressed as one pluggable object the memory-controller
 * scheduler (mc::schedule) and the adversarial hammer path
 * (ProtectedMemory / RowSwapDefense) both drive.
 *
 * A Mitigation observes activations through onActivate(), observes
 * refresh-window boundaries through onRefreshWindow(), and answers
 * with pendingCommands(): in-spec command sequences (victim-refresh
 * ACT..PRE cycles, swap migrations) plus an extra blocking cost in
 * picoseconds.  The scheduler injects those sequences into its
 * per-bank queues and prices them with the same FR-FCFS timing math
 * as demand traffic, so defense cost shows up where it belongs —
 * delayed reads, lost row hits, dead bank time.
 *
 * The registry of mitigation kinds lives in the
 * DRAMSCOPE_MITIGATIONS X-macro below; the table in docs/MC.md is
 * machine-checked against it by tools/check_docs.py (the same
 * treatment as the open-row policy table).
 */

#ifndef DRAMSCOPE_CORE_PROTECT_MITIGATION_H
#define DRAMSCOPE_CORE_PROTECT_MITIGATION_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bender/lint.h"
#include "bender/program.h"
#include "core/protect/rowswap.h"
#include "core/protect/tracker.h"
#include "dram/config.h"

namespace dramscope {
namespace core {

/**
 * The mitigation registry: X(enumerator, "keyword", "knobs",
 * "summary").  tools/check_docs.py parses these entries and requires
 * docs/MC.md to list exactly this set, in this order, with these
 * knob strings.
 */
#define DRAMSCOPE_MITIGATIONS(X)                                            \
    X(None, "none", "-",                                                    \
      "no mitigation: the raw-exposure baseline (byte-identical to the "    \
      "unmitigated scheduler)")                                             \
    X(Graphene, "graphene", "threshold=20000, table_size=64",               \
      "MC-side Misra-Gries activation tracker; a counter crossing the "     \
      "threshold injects a +-1 victim-refresh ACT..PRE sequence")           \
    X(Rfm, "rfm", "raaimt=4096, rfm_table=16",                              \
      "DDR5 Refresh Management: an RAA counter issues an RFM every "        \
      "raaimt ACTs; the in-DRAM space-saving table refreshes the "          \
      "hottest row's true neighbours, coupled partner included")            \
    X(Drfm, "drfm", "drfm_interval=8192",                                   \
      "Directed RFM: the DRAM samples the last activated row and, every "   \
      "drfm_interval ACTs, refreshes the sampled row's true neighbours")    \
    X(RowSwap, "rowswap", "swap_threshold=6000, spare_base=auto",           \
      "RRS-style indirection: a hot row crossing swap_threshold is "        \
      "migrated to a spare row, breaking aggressor/victim adjacency")

/** Mitigation kind ids. */
enum class MitigationKind : uint8_t
{
#define X(name, id, knobs, summary) name,
    DRAMSCOPE_MITIGATIONS(X)
#undef X
};

/** Static description of one mitigation kind. */
struct MitigationInfo
{
    MitigationKind kind;
    const char *id;       //!< Stable keyword ("none", "graphene", ...).
    const char *knobs;    //!< Knob summary with defaults ("-" if none).
    const char *summary;  //!< One-line description (doc table).
};

/** The full registry, indexed by MitigationKind enumerator order. */
const std::vector<MitigationInfo> &mitigationTable();

/** Registry entry for @p kind. */
const MitigationInfo &mitigationInfo(MitigationKind kind);

/** Stable keyword of @p kind ("none", "graphene", ...). */
const char *mitigationId(MitigationKind kind);

/** Parses a mitigation keyword; nullopt on an unknown one. */
std::optional<MitigationKind> mitigationFromString(const std::string &id);

/**
 * Knobs of every mitigation kind, bundled so one options struct can
 * ride through SchedulerOptions / CLI flags.  Only the fields of the
 * selected kind matter.
 */
struct MitigationOptions
{
    /** Graphene: tracker table/threshold/coupling knobs. */
    TrackerOptions graphene;

    /** RFM: RAA initial management threshold (RFM cadence in ACTs). */
    uint64_t raaimt = 4096;

    /** RFM: in-DRAM space-saving table entries. */
    uint32_t rfmTableSize = 16;

    /** DRFM: one directed refresh every this many ACTs. */
    uint64_t drfmInterval = 8192;

    /** Row swap: threshold / spare-region / coupling knobs.  A zero
     *  spareBase selects the top eighth of the bank automatically. */
    RowSwapOptions rowswap;
};

/**
 * One injected command sequence: the physical manifestation of a
 * mitigation decision.  `rows` are ACT..PRE victim-refresh cycles (in
 * order); `extraPs` is additional bank-blocking time beyond the row
 * cycles (e.g. a swap's data-migration burst); `neutralized` lists
 * the aggressor rows whose exposure this sequence resets — the
 * scheduler closes their (bank, row, window) exposure samples.
 */
struct MitigationSequence
{
    MitigationKind kind = MitigationKind::None;
    dram::BankId bank = 0;
    std::vector<dram::RowAddr> rows;
    std::vector<dram::RowAddr> neutralized;
    int64_t extraPs = 0;

    /**
     * The sequence as a standalone in-spec command program: one
     * ACT..sleep(tRAS)..PRE..sleep(tRP) cycle per row, then an
     * `extraPs` wait.  Lints clean on every preset (catalog-covered).
     */
    bender::Program program(const dram::DeviceConfig &cfg) const;

    /** Total bank-blocking cost of the sequence in picoseconds. */
    int64_t costPs(const dram::TimingParams &t) const;
};

/**
 * The interface every defense implements.  Hooks are per-command:
 * the caller reports each (bulk) activation and each refresh-window
 * boundary, and drains pendingCommands() after either hook.
 */
class Mitigation
{
  public:
    virtual ~Mitigation();

    virtual MitigationKind kind() const = 0;

    /** Accounts @p count activations of logical @p row on @p bank. */
    virtual void onActivate(dram::BankId bank, dram::RowAddr row,
                            uint64_t count = 1) = 0;

    /** Refresh-window boundary (REF issued): periodic state decay. */
    virtual void onRefreshWindow() {}

    /** Drains the command sequences generated since the last call. */
    virtual std::vector<MitigationSequence> pendingCommands() = 0;

    /** Physical row currently backing logical @p row (identity for
     *  everything except row swap's indirection table). */
    virtual dram::RowAddr resolve(dram::BankId bank,
                                  dram::RowAddr row) const
    {
        (void)bank;
        return row;
    }

    /**
     * Natural accounting chunk for bulk adversarial loops: the
     * largest activation batch that cannot skip a trigger point.
     */
    virtual uint64_t accountingChunk() const = 0;

    /** Sequences generated so far. */
    uint64_t fired() const { return fired_; }

  protected:
    uint64_t fired_ = 0;
};

/**
 * Graphene-style MC-side tracking (one ActivationTracker per bank):
 * a counter crossing the threshold injects a +-1 logical
 * victim-refresh sequence per fired row.  The MC does not know the
 * device's internal topology, so coupled protection only happens
 * when the tracker is configured coupled-aware.
 */
class GrapheneMitigation : public Mitigation
{
  public:
    GrapheneMitigation(const dram::DeviceConfig &cfg, TrackerOptions opts);

    MitigationKind kind() const override
    {
        return MitigationKind::Graphene;
    }
    void onActivate(dram::BankId bank, dram::RowAddr row,
                    uint64_t count = 1) override;
    void onRefreshWindow() override;
    std::vector<MitigationSequence> pendingCommands() override;
    uint64_t accountingChunk() const override;

    /** The per-bank tracker (introspection / legacy accessors). */
    const ActivationTracker &tracker(dram::BankId bank) const;

  private:
    dram::DeviceConfig cfg_;
    TrackerOptions opts_;
    std::vector<ActivationTracker> trackers_;  //!< One per bank.
    std::vector<MitigationSequence> pending_;
};

/**
 * The in-DRAM aggressor tracker both RFM models share (RfmEngine's
 * device-backed path and RfmMitigation's scheduled path): a bounded
 * counter table with space-saving eviction — a full table replaces
 * its minimum entry and the newcomer inherits that floor.
 */
class SpaceSavingTable
{
  public:
    explicit SpaceSavingTable(uint32_t capacity);

    /** Accounts @p count activations of @p row. */
    void account(dram::RowAddr row, uint64_t count);

    /** Hottest tracked row; nullopt while the table is empty. */
    std::optional<dram::RowAddr> hottest() const;

    /** Halves @p row's counter (decay instead of reset). */
    void decay(dram::RowAddr row);

  private:
    uint32_t capacity_;
    std::unordered_map<dram::RowAddr, uint64_t> counts_;
};

/**
 * DDR5 RFM as scheduled commands: per bank, an MC-side RAA counter
 * fires every raaimt ACTs; the in-DRAM space-saving table picks the
 * hottest row and the sequence refreshes its true neighbours —
 * coupled partner included, because the DRAM knows its own topology.
 */
class RfmMitigation : public Mitigation
{
  public:
    RfmMitigation(const dram::DeviceConfig &cfg, uint64_t raaimt,
                  uint32_t table_size);

    MitigationKind kind() const override { return MitigationKind::Rfm; }
    void onActivate(dram::BankId bank, dram::RowAddr row,
                    uint64_t count = 1) override;
    std::vector<MitigationSequence> pendingCommands() override;
    uint64_t accountingChunk() const override;

  private:
    struct BankState
    {
        explicit BankState(uint32_t table_size) : table(table_size) {}

        SpaceSavingTable table;
        uint64_t raa = 0;
    };

    dram::DeviceConfig cfg_;
    uint64_t raaimt_;
    std::vector<BankState> banks_;
    std::vector<MitigationSequence> pending_;
};

/**
 * Directed RFM: the DRAM samples the last activated row per bank;
 * every drfm_interval ACTs the sampled row's true neighbours are
 * refreshed (coupled partner included).
 */
class DrfmMitigation : public Mitigation
{
  public:
    DrfmMitigation(const dram::DeviceConfig &cfg, uint64_t interval);

    MitigationKind kind() const override { return MitigationKind::Drfm; }
    void onActivate(dram::BankId bank, dram::RowAddr row,
                    uint64_t count = 1) override;
    std::vector<MitigationSequence> pendingCommands() override;
    uint64_t accountingChunk() const override;

  private:
    struct BankState
    {
        std::optional<dram::RowAddr> sampled;
        uint64_t sinceLast = 0;
    };

    dram::DeviceConfig cfg_;
    uint64_t interval_;
    std::vector<BankState> banks_;
    std::vector<MitigationSequence> pending_;
};

/**
 * RRS-style row swap as an MC indirection table: a logical row
 * crossing the threshold is remapped to the next spare row, and the
 * migration is emitted as a command sequence (one ACT..PRE cycle on
 * source and target plus the data-burst cost in extraPs).
 */
class RowSwapMitigation : public Mitigation
{
  public:
    RowSwapMitigation(const dram::DeviceConfig &cfg, RowSwapOptions opts);

    MitigationKind kind() const override
    {
        return MitigationKind::RowSwap;
    }
    void onActivate(dram::BankId bank, dram::RowAddr row,
                    uint64_t count = 1) override;
    std::vector<MitigationSequence> pendingCommands() override;
    dram::RowAddr resolve(dram::BankId bank,
                          dram::RowAddr row) const override;
    uint64_t accountingChunk() const override;

    /** Swaps performed so far (== fired()). */
    uint64_t swaps() const { return fired(); }

  private:
    struct BankState
    {
        std::unordered_map<dram::RowAddr, dram::RowAddr> indirection;
        std::unordered_map<dram::RowAddr, uint64_t> counters;
        dram::RowAddr nextSpare = 0;
    };

    void swapOut(dram::BankId bank, dram::RowAddr row);

    dram::DeviceConfig cfg_;
    RowSwapOptions opts_;
    std::vector<BankState> banks_;
    std::vector<MitigationSequence> pending_;
};

/**
 * The +-1 in-range victims of @p row; with @p device_aware set (and
 * the config coupled) the coupled partner's victims are appended —
 * the in-DRAM view an RFM/DRFM mitigation is allowed to use.
 */
std::vector<dram::RowAddr> victimRows(const dram::DeviceConfig &cfg,
                                      dram::RowAddr row,
                                      bool device_aware);

/**
 * Statically certifies the exemplar command sequence mitigation
 * @p kind injects (the worst-case victim-refresh burst for the
 * tracker kinds, the double row cycle plus data burst for row swap;
 * an empty program for None): exposure bound, energy and rolling
 * power window via bender::lint::certify.  A defense whose own
 * sequences blow the power budget — or hammer a victim row past the
 * disturbance threshold — is a bug in the defense, not the workload.
 */
bender::lint::Certificate
certifyMitigationSequences(MitigationKind kind,
                           const dram::DeviceConfig &cfg,
                           const bender::lint::CertifyOptions &opts = {});

/**
 * Builds the mitigation selected by @p kind for @p cfg; returns
 * nullptr for MitigationKind::None (no-overhead baseline).  The
 * kind's exemplar sequence is certified at registration
 * (certifyMitigationSequences); an uncertifiable defense fatal()s
 * here rather than injecting out-of-envelope commands at runtime.
 */
std::unique_ptr<Mitigation> makeMitigation(MitigationKind kind,
                                           const dram::DeviceConfig &cfg,
                                           const MitigationOptions &opts);

/** Per-sequence handler override for hammerThroughMitigation. */
using SequenceHandler = std::function<void(const MitigationSequence &)>;

/**
 * Routes an adversarial bulk hammer through @p mit: chunked by
 * accountingChunk() so no trigger point is skipped, each chunk
 * hammered at the resolved physical row, accounted via onActivate(),
 * and every pending sequence executed — by running its program on
 * @p host, or through @p handler when provided (row swap substitutes
 * a real data migration).  This is the one shared implementation
 * behind ProtectedMemory::hammer and RowSwapDefense::hammer.
 */
void hammerThroughMitigation(bender::Host &host, Mitigation &mit,
                             dram::BankId bank, dram::RowAddr row,
                             uint64_t count,
                             const SequenceHandler &handler = {});

} // namespace core
} // namespace dramscope

#endif // DRAMSCOPE_CORE_PROTECT_MITIGATION_H
