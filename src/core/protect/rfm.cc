/**
 * @file
 * RFM engine / controller implementation.
 */

#include "core/protect/rfm.h"

#include <algorithm>

#include "util/log.h"

namespace dramscope {
namespace core {

RfmEngine::RfmEngine(dram::Device &dev, dram::BankId bank,
                     uint32_t table_size)
    : dev_(dev), bank_(bank), table_size_(table_size)
{
    fatalIf(table_size_ == 0, "RfmEngine: empty table");
}

void
RfmEngine::onActivate(dram::RowAddr logical_row, uint64_t count)
{
    auto it = table_.find(logical_row);
    if (it != table_.end()) {
        it->second += count;
        return;
    }
    if (table_.size() < table_size_) {
        table_.emplace(logical_row, count);
        return;
    }
    // Space-saving: replace the minimum entry, inheriting its count.
    auto min_it = std::min_element(
        table_.begin(), table_.end(), [](const auto &a, const auto &b) {
            return a.second < b.second;
        });
    const uint64_t floor = min_it->second;
    table_.erase(min_it);
    table_.emplace(logical_row, floor + count);
}

void
RfmEngine::onRfm(dram::NanoTime now)
{
    if (table_.empty())
        return;
    auto hot = std::max_element(
        table_.begin(), table_.end(), [](const auto &a, const auto &b) {
            return a.second < b.second;
        });
    // The device translates through its own remap and knows the
    // coupled relation — exactly why the paper favours in-DRAM RFM
    // mitigation for coupled-row protection (SS VI-B).
    mitigations_ += dev_.refreshAggressorNeighbors(bank_, hot->first, now);
    hot->second /= 2;  // Decay instead of reset: conservative.
}

RfmController::RfmController(RfmEngine &engine, uint64_t raaimt)
    : engine_(engine), raaimt_(raaimt)
{
    fatalIf(raaimt_ == 0, "RfmController: zero RAAIMT");
}

void
RfmController::onActivate(dram::RowAddr logical_row, uint64_t count,
                          dram::NanoTime now)
{
    engine_.onActivate(logical_row, count);
    raa_ += count;
    while (raa_ >= raaimt_) {
        raa_ -= raaimt_;
        ++rfm_count_;
        engine_.onRfm(now);
    }
}

} // namespace core
} // namespace dramscope
