/**
 * @file
 * RFM engine / controller implementation.
 */

#include "core/protect/rfm.h"

#include <algorithm>

#include "util/log.h"

namespace dramscope {
namespace core {

RfmEngine::RfmEngine(dram::Device &dev, dram::BankId bank,
                     uint32_t table_size)
    : dev_(dev), bank_(bank), table_(table_size)
{
}

void
RfmEngine::onActivate(dram::RowAddr logical_row, uint64_t count)
{
    table_.account(logical_row, count);
}

void
RfmEngine::onRfm(dram::NanoTime now)
{
    const auto hot = table_.hottest();
    if (!hot)
        return;
    // The device translates through its own remap and knows the
    // coupled relation — exactly why the paper favours in-DRAM RFM
    // mitigation for coupled-row protection (SS VI-B).
    mitigations_ += dev_.refreshAggressorNeighbors(bank_, *hot, now);
    table_.decay(*hot);
}

RfmController::RfmController(RfmEngine &engine, uint64_t raaimt)
    : engine_(engine), raaimt_(raaimt)
{
    fatalIf(raaimt_ == 0, "RfmController: zero RAAIMT");
}

void
RfmController::onActivate(dram::RowAddr logical_row, uint64_t count,
                          dram::NanoTime now)
{
    engine_.onActivate(logical_row, count);
    raa_ += count;
    while (raa_ >= raaimt_) {
        raa_ -= raaimt_;
        ++rfm_count_;
        engine_.onRfm(now);
    }
}

} // namespace core
} // namespace dramscope
