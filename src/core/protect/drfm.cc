/**
 * @file
 * DRFM controller implementation.
 */

#include "core/protect/drfm.h"

namespace dramscope {
namespace core {

DrfmController::DrfmController(dram::Device &dev, DrfmOptions opts)
    : dev_(dev), opts_(opts)
{
}

void
DrfmController::onActivate(dram::RowAddr logical_row, uint64_t count,
                           dram::NanoTime now)
{
    sampled_ = logical_row;
    since_last_ += count;
    if (since_last_ >= opts_.interval) {
        since_last_ = 0;
        issueDrfm(now);
    }
}

void
DrfmController::issueDrfm(dram::NanoTime now)
{
    if (!sampled_)
        return;
    ++drfm_count_;
    // In-DRAM action: the device translates the sampled address and
    // refreshes the true neighbours of the whole activated set —
    // including the coupled partner's neighbours.
    dev_.refreshAggressorNeighbors(opts_.bank, *sampled_, now);
}

} // namespace core
} // namespace dramscope
