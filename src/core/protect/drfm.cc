/**
 * @file
 * DRFM controller implementation.
 */

#include "core/protect/drfm.h"

namespace dramscope {
namespace core {

DrfmController::DrfmController(dram::Chip &chip, DrfmOptions opts)
    : chip_(chip), opts_(opts)
{
}

void
DrfmController::onActivate(dram::RowAddr logical_row, uint64_t count,
                           dram::NanoTime now)
{
    sampled_ = logical_row;
    since_last_ += count;
    if (since_last_ >= opts_.interval) {
        since_last_ = 0;
        issueDrfm(now);
    }
}

void
DrfmController::refreshNeighbors(dram::RowAddr phys_row,
                                 dram::NanoTime now)
{
    auto &bank = chip_.bank(opts_.bank);
    const auto &map = chip_.subarrayMap();
    for (const bool upper : {false, true}) {
        if (const auto nb = map.neighbor(phys_row, upper))
            bank.restoreRow(*nb, now);
    }
}

void
DrfmController::issueDrfm(dram::NanoTime now)
{
    if (!sampled_)
        return;
    ++drfm_count_;
    // In-DRAM action: the device translates the sampled address and
    // refreshes the true neighbours of the whole activated set —
    // including the coupled partner's neighbours.
    const dram::RowAddr phys = chip_.toPhysical(*sampled_);
    refreshNeighbors(phys, now);
    if (const auto partner = chip_.coupledPartner(phys))
        refreshNeighbors(*partner, now);
}

} // namespace core
} // namespace dramscope
