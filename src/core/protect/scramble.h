/**
 * @file
 * MC-side data scrambling (SS VI-B).
 *
 * Masks every stored bit with a pseudo-random keystream keyed by
 * (row, column), so an attacker's carefully constructed adversarial
 * data pattern (O13/O14) lands in the array as an effectively random
 * pattern.  Mirrors the scrambling Intel/AMD controllers enable by
 * default; the paper argues a row+column-keyed PRNG defeats the
 * column-wise (horizontal) pattern dependence as well.
 */

#ifndef DRAMSCOPE_CORE_PROTECT_SCRAMBLE_H
#define DRAMSCOPE_CORE_PROTECT_SCRAMBLE_H

#include "bender/host.h"
#include "util/bitvec.h"
#include "util/rng.h"

namespace dramscope {
namespace core {

/** Scrambling memory-controller wrapper around a Host. */
class Scrambler
{
  public:
    /**
     * @param host Underlying controller.
     * @param key Scrambler key (boot-time random in real systems).
     * @param row_col_keyed When false, the mask depends on the column
     *        only (the weaker legacy behaviour the paper critiques);
     *        when true, on both row and column.
     */
    Scrambler(bender::Host &host, uint64_t key, bool row_col_keyed = true)
        : host_(host), key_(key), row_col_keyed_(row_col_keyed)
    {
    }

    /** Writes @p data through the scrambler. */
    void
    writeRowBits(dram::BankId bank, dram::RowAddr row, const BitVec &data)
    {
        BitVec masked = data;
        masked ^= mask(row);
        host_.writeRowBits(bank, row, masked);
    }

    /** Reads and descrambles a row. */
    BitVec
    readRowBits(dram::BankId bank, dram::RowAddr row)
    {
        BitVec data = host_.readRowBits(bank, row);
        data ^= mask(row);
        return data;
    }

    /** The keystream for one row (host bit order). */
    BitVec
    mask(dram::RowAddr row) const
    {
        const auto &cfg = host_.config();
        const uint32_t w = cfg.rdDataBits;
        BitVec out(size_t(cfg.columnsPerRow()) * w);
        for (uint32_t c = 0; c < cfg.columnsPerRow(); ++c) {
            const uint64_t seed =
                row_col_keyed_ ? hashCombine(key_, (uint64_t(row) << 20) | c)
                               : hashCombine(key_, c);
            const uint64_t bits = splitmix64(seed);
            for (uint32_t i = 0; i < w; ++i) {
                if ((bits >> i) & 1ULL)
                    out.set(size_t(c) * w + i, true);
            }
        }
        return out;
    }

    bender::Host &host() { return host_; }

  private:
    bender::Host &host_;
    uint64_t key_;
    bool row_col_keyed_;
};

} // namespace core
} // namespace dramscope

#endif // DRAMSCOPE_CORE_PROTECT_SCRAMBLE_H
