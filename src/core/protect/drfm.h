/**
 * @file
 * Directed Refresh Management (DRFM) model (SS VI-B, DDR5).
 *
 * The MC samples an activated row on PRE; when it later issues a DRFM
 * command, the DRAM itself refreshes the physically adjacent rows of
 * the sampled address.  Because the mitigation runs *inside* the
 * device, it can use the true adjacency — including the internal
 * remap and the coupled-row relation — which is exactly why the paper
 * recommends it for coupled-row protection.
 *
 * The controller speaks only dram::Device (the mitigation is the
 * device's refreshAggressorNeighbors primitive), so it drives chips,
 * DIMM ranks and HBM channels alike.
 */

#ifndef DRAMSCOPE_CORE_PROTECT_DRFM_H
#define DRAMSCOPE_CORE_PROTECT_DRFM_H

#include <optional>

#include "dram/device.h"

namespace dramscope {
namespace core {

/** DRFM controller options. */
struct DrfmOptions
{
    dram::BankId bank = 0;

    /** Issue a DRFM every this many activations. */
    uint64_t interval = 8192;
};

/** In-DRAM sampler plus MC-side DRFM issue policy. */
class DrfmController
{
  public:
    DrfmController(dram::Device &dev, DrfmOptions opts);

    /**
     * MC hook: accounts @p count activations of @p logical_row;
     * samples the address and issues a DRFM when the interval
     * elapses.  @p now is the current host time.
     */
    void onActivate(dram::RowAddr logical_row, uint64_t count,
                    dram::NanoTime now);

    /**
     * The in-DRAM mitigation: refreshes the AIB neighbours of the
     * sampled row and of its coupled partner, using the device's own
     * structural knowledge.
     */
    void issueDrfm(dram::NanoTime now);

    /** DRFM commands issued so far. */
    uint64_t drfmCount() const { return drfm_count_; }

  private:
    dram::Device &dev_;
    DrfmOptions opts_;
    std::optional<dram::RowAddr> sampled_;  //!< Logical address.
    uint64_t since_last_ = 0;
    uint64_t drfm_count_ = 0;
};

} // namespace core
} // namespace dramscope

#endif // DRAMSCOPE_CORE_PROTECT_DRFM_H
