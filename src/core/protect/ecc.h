/**
 * @file
 * SECDED ECC as an AIB mitigation layer (SS VI-B: "adversarial data
 * pattern-aware ECC algorithm/design ... could be promising").
 *
 * A Hamming(72,64) SECDED code over each 64-bit word of a row, with
 * the check bits kept in a controller-side store (on-die ECC keeps
 * them in spare columns; the placement does not change the error
 * arithmetic).  Single-bit errors per word correct; double-bit errors
 * detect; triple-or-more may miscorrect — which is exactly why the
 * adversarial data pattern, which concentrates flips, defeats plain
 * SECDED while scrambling + SECDED holds.
 */

#ifndef DRAMSCOPE_CORE_PROTECT_ECC_H
#define DRAMSCOPE_CORE_PROTECT_ECC_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bender/host.h"
#include "util/bitvec.h"

namespace dramscope {
namespace core {

/** Hamming(72,64) SECDED codec. */
class Secded72
{
  public:
    /** Computes the 8 check bits for a 64-bit data word. */
    static uint8_t encode(uint64_t data);

    /** Outcome of a decode. */
    enum class Outcome
    {
        Clean,        //!< Syndrome zero.
        Corrected,    //!< Single-bit error fixed.
        Detected,     //!< Double-bit error flagged (data unreliable).
        Miscorrected  //!< (Only distinguishable by the caller/tests.)
    };

    /**
     * Decodes a received (data, check) pair.  On a correctable error
     * @p data is fixed in place.
     */
    static Outcome decode(uint64_t &data, uint8_t check);

  private:
    /** Parity-check column for data bit position i (0..63). */
    static uint8_t column(unsigned i);
};

/** Per-read correction statistics. */
struct EccStats
{
    uint64_t wordsRead = 0;
    uint64_t corrected = 0;
    uint64_t detected = 0;      //!< Uncorrectable (DUE).
    uint64_t escaped = 0;       //!< Wrong data delivered (SDC),
                                //!< counted by the verifying caller.
};

/**
 * A controller-side ECC wrapper over row reads/writes: encodes on
 * write, corrects on read.
 */
class EccMemory
{
  public:
    explicit EccMemory(bender::Host &host);

    /** Writes a row, storing check bits for each 64-bit word. */
    void writeRowBits(dram::BankId bank, dram::RowAddr row,
                      const BitVec &data);

    /**
     * Reads a row and applies SECDED per word.
     * @param outcome_mask When non-null, bit w is set for words whose
     *        decode reported Detected (uncorrectable).
     */
    BitVec readRowBits(dram::BankId bank, dram::RowAddr row,
                       std::vector<bool> *uncorrectable = nullptr);

    const EccStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

  private:
    bender::Host &host_;
    /** (bank, row) -> check bytes per word. */
    std::unordered_map<uint64_t, std::vector<uint8_t>> checks_;
    EccStats stats_;
};

} // namespace core
} // namespace dramscope

#endif // DRAMSCOPE_CORE_PROTECT_ECC_H
