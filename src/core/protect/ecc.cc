/**
 * @file
 * SECDED codec and ECC memory wrapper implementation.
 */

#include "core/protect/ecc.h"

#include <bit>

#include "util/log.h"

namespace dramscope {
namespace core {

namespace {

/**
 * Hsiao-style column table: 64 distinct odd-weight 8-bit columns
 * (56 of weight 3, then 8 of weight 5).  Odd weights guarantee that
 * any double error produces an even-weight (hence non-column)
 * syndrome, giving SEC-DED.
 */
const std::vector<uint8_t> &
columnTable()
{
    static const std::vector<uint8_t> table = [] {
        std::vector<uint8_t> cols;
        for (const int weight : {3, 5}) {
            for (unsigned v = 0; v < 256 && cols.size() < 64; ++v) {
                if (std::popcount(v) == weight)
                    cols.push_back(uint8_t(v));
            }
        }
        panicIf(cols.size() != 64, "SECDED column table broken");
        return cols;
    }();
    return table;
}

} // namespace

uint8_t
Secded72::column(unsigned i)
{
    return columnTable()[i];
}

uint8_t
Secded72::encode(uint64_t data)
{
    uint8_t check = 0;
    while (data) {
        const unsigned i = unsigned(std::countr_zero(data));
        check ^= column(i);
        data &= data - 1;
    }
    return check;
}

Secded72::Outcome
Secded72::decode(uint64_t &data, uint8_t check)
{
    const uint8_t syndrome = encode(data) ^ check;
    if (syndrome == 0)
        return Outcome::Clean;
    // Check-bit columns are the unit vectors: a single check-bit
    // error leaves the data intact.
    if (std::popcount(syndrome) == 1)
        return Outcome::Corrected;
    const auto &cols = columnTable();
    for (unsigned i = 0; i < 64; ++i) {
        if (cols[i] == syndrome) {
            data ^= 1ULL << i;  // May miscorrect on >= 3 errors.
            return Outcome::Corrected;
        }
    }
    return Outcome::Detected;
}

EccMemory::EccMemory(bender::Host &host) : host_(host)
{
    fatalIf(host_.config().rowBits % 64 != 0,
            "EccMemory: row must be 64-bit aligned");
}

void
EccMemory::writeRowBits(dram::BankId bank, dram::RowAddr row,
                        const BitVec &data)
{
    const uint32_t words = host_.config().rowBits / 64;
    std::vector<uint8_t> checks(words);
    for (uint32_t w = 0; w < words; ++w) {
        uint64_t word = 0;
        for (unsigned b = 0; b < 64; ++b) {
            if (data.get(size_t(w) * 64 + b))
                word |= 1ULL << b;
        }
        checks[w] = Secded72::encode(word);
    }
    checks_[uint64_t(bank) << 32 | row] = std::move(checks);
    host_.writeRowBits(bank, row, data);
}

BitVec
EccMemory::readRowBits(dram::BankId bank, dram::RowAddr row,
                       std::vector<bool> *uncorrectable)
{
    BitVec data = host_.readRowBits(bank, row);
    const auto it = checks_.find(uint64_t(bank) << 32 | row);
    if (it == checks_.end())
        return data;  // Never written through the ECC path.

    const uint32_t words = host_.config().rowBits / 64;
    if (uncorrectable)
        uncorrectable->assign(words, false);
    for (uint32_t w = 0; w < words; ++w) {
        uint64_t word = 0;
        for (unsigned b = 0; b < 64; ++b) {
            if (data.get(size_t(w) * 64 + b))
                word |= 1ULL << b;
        }
        ++stats_.wordsRead;
        const auto outcome = Secded72::decode(word, it->second[w]);
        switch (outcome) {
          case Secded72::Outcome::Clean:
            break;
          case Secded72::Outcome::Corrected:
            ++stats_.corrected;
            for (unsigned b = 0; b < 64; ++b)
                data.set(size_t(w) * 64 + b, (word >> b) & 1ULL);
            break;
          case Secded72::Outcome::Detected:
          case Secded72::Outcome::Miscorrected:
            ++stats_.detected;
            if (uncorrectable)
                (*uncorrectable)[w] = true;
            break;
        }
    }
    return data;
}

} // namespace core
} // namespace dramscope
