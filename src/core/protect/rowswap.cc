/**
 * @file
 * Row-swap defense implementation.
 */

#include "core/protect/rowswap.h"

#include <algorithm>

#include "util/log.h"

namespace dramscope {
namespace core {

RowSwapDefense::RowSwapDefense(bender::Host &host, RowSwapOptions opts)
    : host_(host), opts_(opts), next_spare_(opts.spareBase)
{
    fatalIf(opts_.threshold == 0, "RowSwapDefense: zero threshold");
    fatalIf(opts_.coupledAware && opts_.coupledDistance == 0,
            "RowSwapDefense: coupledAware needs a distance");
}

dram::RowAddr
RowSwapDefense::resolve(dram::RowAddr row) const
{
    const auto it = indirection_.find(row);
    return it == indirection_.end() ? row : it->second;
}

void
RowSwapDefense::swapOut(dram::BankId bank, dram::RowAddr row)
{
    // Relocate the hot MC address to the next spare.  Data migration
    // is modeled as a straight row read/write through the controller.
    const dram::RowAddr from = resolve(row);
    const dram::RowAddr to = next_spare_;
    next_spare_ += 4;  // Keep spares apart so they never interact.
    const BitVec data = host_.readRowBits(bank, from);
    host_.writeRowBits(bank, to, data);
    indirection_[row] = to;
    counters_[row] = 0;
    ++swaps_;
}

void
RowSwapDefense::hammer(dram::BankId bank, dram::RowAddr row,
                       uint64_t count)
{
    const uint64_t chunk = std::max<uint64_t>(1, opts_.threshold / 4);
    uint64_t remaining = count;
    while (remaining > 0) {
        const uint64_t n = std::min(chunk, remaining);
        host_.hammer(bank, resolve(row), n);
        remaining -= n;
        uint64_t &ctr = counters_[row];
        ctr += n;
        if (ctr >= opts_.threshold) {
            swapOut(bank, row);
            if (opts_.coupledAware)
                swapOut(bank, row ^ opts_.coupledDistance);
        }
    }
}

} // namespace core
} // namespace dramscope
