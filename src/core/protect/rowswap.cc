/**
 * @file
 * Row-swap defense implementation.
 */

#include "core/protect/rowswap.h"

#include "core/protect/mitigation.h"

namespace dramscope {
namespace core {

RowSwapDefense::RowSwapDefense(bender::Host &host, RowSwapOptions opts)
    : host_(host),
      mitigation_(
          std::make_unique<RowSwapMitigation>(host.config(), opts))
{
}

RowSwapDefense::~RowSwapDefense() = default;

dram::RowAddr
RowSwapDefense::resolve(dram::RowAddr row) const
{
    return mitigation_->resolve(0, row);
}

uint64_t
RowSwapDefense::swaps() const
{
    return mitigation_->swaps();
}

void
RowSwapDefense::hammer(dram::BankId bank, dram::RowAddr row,
                       uint64_t count)
{
    // The swap decision comes from the shared mitigation; the data
    // migration is modeled as a straight row read/write through the
    // controller (sequence rows are {source, target}).
    hammerThroughMitigation(
        host_, *mitigation_, bank, row, count,
        [&](const MitigationSequence &seq) {
            const BitVec data = host_.readRowBits(seq.bank, seq.rows[0]);
            host_.writeRowBits(seq.bank, seq.rows[1], data);
        });
}

} // namespace core
} // namespace dramscope
