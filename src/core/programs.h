/**
 * @file
 * The built-in program catalog: every command program the toolkit's
 * layers (Host convenience operations, characterization / attack
 * suites, RE tools, protection controllers) issue, instantiated with
 * their paper-default parameters for a given device configuration.
 *
 * The catalog is the contract behind "all built-in programs lint
 * clean": `dramscope_cli lint` prints the linter's verdict for each
 * entry, tests assert the exact expected-violation annotations
 * (RowCopy flags tRP/tRC, hammer passes with none), and a new
 * program builder added anywhere in the stack gets pre-flight
 * coverage by adding one line here.
 */

#ifndef DRAMSCOPE_CORE_PROGRAMS_H
#define DRAMSCOPE_CORE_PROGRAMS_H

#include <string>
#include <vector>

#include "bender/program.h"
#include "dram/config.h"

namespace dramscope {
namespace core {

/** One catalog entry. */
struct NamedProgram
{
    std::string name;      //!< Stable id, e.g. "rowcopy".
    std::string origin;    //!< Layer that issues it, e.g. "re_subarray".
    bender::Program prog;
};

/**
 * Builds every built-in program for @p cfg with paper-default
 * parameters (300K x 35ns hammer, 8K x 7.8us press, ...), addressed
 * to rows that exist in @p cfg.
 */
std::vector<NamedProgram> builtinPrograms(const dram::DeviceConfig &cfg);

/**
 * Catalog entry named @p name; fatal()s on an unknown name (the
 * valid names are listed in the message).
 */
NamedProgram builtinProgram(const dram::DeviceConfig &cfg,
                            const std::string &name);

} // namespace core
} // namespace dramscope

#endif // DRAMSCOPE_CORE_PROGRAMS_H
