/**
 * @file
 * Data-swizzling and MAT-structure reverse engineering (SS IV-A,
 * Figures 6 and 7; O1, O2).
 *
 * Three steps, exactly as in the paper:
 *
 *  1. Horizontal AIB influence (O11): flipping one victim bit boosts
 *     the flip rate of its four physically adjacent cells.  A
 *     differential sweep over every bit of a probe column (and its
 *     two neighbour columns) yields the physical adjacency graph of
 *     host data bits.
 *
 *  2. RowCopy across a subarray boundary transfers only the bitlines
 *     served by the shared sense-amp stripe, labelling every host bit
 *     as an even or odd bitline.
 *
 *  3. Parity orients the adjacency chains into physical order;
 *     connected components are MATs, giving the MAT count and width,
 *     and the per-MAT intra-group permutation — the full swizzle.
 */

#ifndef DRAMSCOPE_CORE_RE_SWIZZLE_H
#define DRAMSCOPE_CORE_RE_SWIZZLE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "bender/host.h"
#include "core/physmap.h"
#include "dram/geometry.h"

namespace dramscope {
namespace core {

/** Options for the swizzle reverser. */
struct SwizzleOptions
{
    dram::BankId bank = 0;

    /** Probe column; default (UINT32_MAX) = middle column. */
    uint32_t probeColumn = UINT32_MAX;

    /** Victim groups (4 rows each: low aggr, victim, up aggr, gap). */
    uint32_t victimGroups = 250;

    /**
     * Hammer count per aggressor per group.  1.2M ACTs at ~49ns fit
     * inside one 64ms refresh window, the honest maximum.
     */
    uint64_t hammerCount = 1'200'000;

    /** First row of the probe region. */
    dram::RowAddr baseRow = 1000;

    /** Flip-count delta that signals influence (non-influencers give
     *  exactly zero in a differential measurement). */
    uint32_t minInfluence = 1;

    /**
     * First subarray boundary row (from SubarrayMapper), used for the
     * even/odd bitline classification.  Must be > 0.  Interpreted as
     * a *physical* row (boundaries are block-aligned, so logical and
     * physical boundaries coincide).
     */
    dram::RowAddr subarrayBoundary = 0;

    /**
     * Internal row remap discovered by the AdjacencyMapper; the
     * reverser addresses physically-consecutive rows through it.
     */
    dram::RowRemapScheme rowRemap = dram::RowRemapScheme::None;
};

/** Everything discovered about the data path. */
struct SwizzleDiscovery
{
    uint32_t rdDataBits = 0;
    uint32_t matsPerRow = 0;   //!< Influence-graph components (O1).
    uint32_t matWidth = 0;     //!< rowBits / matsPerRow (O2).

    /** Component (MAT) of each RD_data bit, canonical ids. */
    std::vector<int> matOfRdBit;

    /** Bitline parity of each RD_data bit (0 even, 1 odd). */
    std::vector<int> blParity;

    /**
     * Recovered intra-group permutation: recoveredPerm[intra] is the
     * physical slot of intra-group index `intra` (matches
     * DeviceConfig::swizzlePerm when the chip is residue-structured).
     */
    std::vector<uint32_t> recoveredPerm;

    /** Parity pattern identical across all columns. */
    bool periodic = false;

    /** Influence-graph components form residue classes mod
     *  matsPerRow (all presets do). */
    bool residueStructured = false;

    /** Full reconstructed host-bit -> bitline map. */
    std::optional<PhysMap> physMap;

    /** Raw influence edges (host-bit pairs) for diagnostics. */
    std::vector<std::pair<uint32_t, uint32_t>> edges;
};

/** AIB + RowCopy based swizzle reverse engineering. */
class SwizzleReverser
{
  public:
    SwizzleReverser(bender::Host &host, SwizzleOptions opts);

    /** Runs the full three-step discovery. */
    SwizzleDiscovery discover();

  private:
    /**
     * One differential influence run: victims hold all zeros except
     * @p candidate (host bit, or none for the baseline); both
     * aggressors of every group are hammered; returns per-host-bit
     * flip counts summed over the victim rows.
     */
    std::vector<uint32_t>
    influenceRun(std::optional<uint32_t> candidate);

    /** Even/odd bitline classification via boundary RowCopy. */
    void classifyParity(SwizzleDiscovery &d);

    /** Builds chains from the edge list and extracts the swizzle. */
    void reconstruct(SwizzleDiscovery &d);

    bender::Host &host_;
    SwizzleOptions opts_;
    uint32_t columns_;
    uint32_t rd_bits_;
    uint32_t probe_col_;
    bool aggressors_written_ = false;
};

} // namespace core
} // namespace dramscope

#endif // DRAMSCOPE_CORE_RE_SWIZZLE_H
