/**
 * @file
 * Bidirectional map between host data bits and physical bitlines.
 *
 * The reverse-engineering layer produces one of these (SwizzleReverser)
 * and the characterization suite consumes one, either reverse-
 * engineered or taken from the device ground truth (benches state
 * which they use; tests assert the two agree).
 */

#ifndef DRAMSCOPE_CORE_PHYSMAP_H
#define DRAMSCOPE_CORE_PHYSMAP_H

#include <cstdint>
#include <utility>
#include <vector>

#include "dram/swizzle.h"
#include "util/bitvec.h"

namespace dramscope {
namespace core {

/**
 * Dense permutation between host bit order (col * rdDataBits + bit)
 * and physical bitline order.
 */
class PhysMap
{
  public:
    /** Identity map over @p row_bits cells. */
    explicit PhysMap(uint32_t row_bits);

    /** Builds the map from a device swizzle (ground truth). */
    static PhysMap fromSwizzle(const dram::Swizzle &swz,
                               uint32_t columns, uint32_t rd_bits);

    /** Builds from an explicit host-bit -> physical-bl table. */
    static PhysMap fromTable(std::vector<uint32_t> host_to_phys);

    /**
     * Tiles a per-chip map across @p copies chips: copy k covers host
     * bits [k * n, (k + 1) * n) and physical bitlines offset by
     * k * n, where n = per_chip.rowBits().  This is the rank-level
     * map of a DIMM Device, whose column space is chip-major.
     */
    static PhysMap tiled(const PhysMap &per_chip, uint32_t copies);

    /** Physical bitline of host bit (col * rdDataBits + rd_bit). */
    uint32_t physOf(uint32_t host_bit) const
    {
        return host_to_phys_.at(host_bit);
    }

    /** Host bit of a physical bitline. */
    uint32_t hostOf(uint32_t phys_bl) const
    {
        return phys_to_host_.at(phys_bl);
    }

    /** Number of bits in a row. */
    uint32_t rowBits() const { return uint32_t(host_to_phys_.size()); }

    /** Reorders host-order row bits into physical order. */
    BitVec toPhysical(const BitVec &host_bits) const;

    /** Reorders physical-order row bits into host order. */
    BitVec toHost(const BitVec &phys_bits) const;

    /**
     * Builds host-order row bits whose *physical* layout repeats the
     * low @p pattern_bits bits of @p pattern (used for the paper's
     * MAT-space data patterns, Figures 16/17).
     */
    BitVec hostBitsForPhysicalPattern(uint64_t pattern,
                                      unsigned pattern_bits) const;

  private:
    std::vector<uint32_t> host_to_phys_;
    std::vector<uint32_t> phys_to_host_;
};

} // namespace core
} // namespace dramscope

#endif // DRAMSCOPE_CORE_PHYSMAP_H
