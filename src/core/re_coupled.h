/**
 * @file
 * Coupled-row activation detection (O3, SS IV-B).
 *
 * In coupled chips, activating row i also activates row i + Nrow/2,
 * so hammering i disturbs the *coupled row's* neighbours as well.
 * The detector hammers a probe row and checks for bitflips around
 * candidate coupled distances.
 */

#ifndef DRAMSCOPE_CORE_RE_COUPLED_H
#define DRAMSCOPE_CORE_RE_COUPLED_H

#include <optional>
#include <vector>

#include "bender/host.h"

namespace dramscope {
namespace core {

/** Options for coupled-row detection. */
struct CoupledOptions
{
    dram::BankId bank = 0;
    uint64_t hammerCount = 600000;
    dram::RowAddr probeRow = 1024;  //!< Aggressor used for probing.
    uint32_t window = 4;            //!< Victim scan radius.
    size_t minFlips = 3;
};

/** Detects the coupled-row relation through AIB side effects. */
class CoupledRowDetector
{
  public:
    CoupledRowDetector(bender::Host &host, CoupledOptions opts = {});

    /**
     * Tests whether hammering the probe row flips bits around
     * probeRow + @p distance.
     */
    bool testDistance(uint32_t distance);

    /**
     * Sweeps candidate distances (Nrow/2, Nrow/4, Nrow/8) and returns
     * the detected coupled distance, or nullopt.
     */
    std::optional<uint32_t> detect();

  private:
    bender::Host &host_;
    CoupledOptions opts_;
};

} // namespace core
} // namespace dramscope

#endif // DRAMSCOPE_CORE_RE_COUPLED_H
