/**
 * @file
 * Built-in program catalog implementation.
 */

#include "core/programs.h"

#include <algorithm>

#include "bender/host.h"
#include "core/protect/mitigation.h"
#include "util/log.h"

namespace dramscope {
namespace core {

std::vector<NamedProgram>
builtinPrograms(const dram::DeviceConfig &cfg)
{
    using bender::Host;
    const dram::BankId b = 0;

    // Probe rows well inside the bank, mirroring CharactOptions'
    // default region, but clamped so tiny test configs stay valid.
    const auto row = std::min<dram::RowAddr>(1024, cfg.rowsPerBank / 2);
    const auto dst = row + 1;

    std::vector<NamedProgram> catalog;
    catalog.push_back({"write-row", "host",
                       Host::makeWriteRowProgram(
                           cfg, b, row,
                           std::vector<uint64_t>(cfg.columnsPerRow(),
                                                 ~0ULL))});
    catalog.push_back(
        {"read-row", "host", Host::makeReadRowProgram(cfg, b, row)});
    catalog.push_back({"write-columns", "host",
                       Host::makeWriteColumnsProgram(cfg, b, row, {0, 1},
                                                     ~0ULL)});
    catalog.push_back({"read-columns", "host",
                       Host::makeReadColumnsProgram(cfg, b, row, {0, 1})});
    // Paper attack parameters (SS V): 300K x 35ns hammer, 8K x 7.8us
    // press; the RE layers reuse the same kernel at higher counts.
    // All three exceed the weakest-cell disturbance threshold inside
    // one refresh window *by design* — that is the attack — so they
    // declare it, and the static certifier treats them as intended.
    catalog.push_back(
        {"hammer", "charact",
         Host::makeHammerProgram(cfg, b, row, 300000, 35.0)
             .expectViolation(bender::lint::Rule::ExposureBound)});
    catalog.push_back(
        {"press", "charact",
         Host::makeHammerProgram(cfg, b, row, 8192, 7800.0)
             .expectViolation(bender::lint::Rule::ExposureBound)});
    catalog.push_back(
        {"hammer-re", "re_adjacency",
         Host::makeHammerProgram(cfg, b, row, 600000, 35.0)
             .expectViolation(bender::lint::Rule::ExposureBound)});
    catalog.push_back({"rowcopy", "re_subarray",
                       Host::makeRowCopyProgram(cfg, b, row, dst)});
    catalog.push_back(
        {"refresh", "host", Host::makeRefreshProgram(cfg)});
    catalog.push_back({"mitigate", "protect/tracker",
                       ProtectedMemory::makeMitigationProgram(cfg, b,
                                                              row)});
    // One exemplar command sequence per scheduler-injectable
    // mitigation: the exact victim-refresh burst RFM fires on a
    // hottest-table hit, and the double row-activation a swap
    // migration costs (the data burst itself is host-side).
    {
        MitigationSequence rfm;
        rfm.kind = MitigationKind::Rfm;
        rfm.bank = b;
        rfm.rows = victimRows(cfg, row, true);
        catalog.push_back(
            {"rfm-mitigate", "protect/mitigation", rfm.program(cfg)});

        MitigationSequence swap;
        swap.kind = MitigationKind::RowSwap;
        swap.bank = b;
        swap.rows = {row, dst};
        catalog.push_back(
            {"rowswap-migrate", "protect/mitigation", swap.program(cfg)});
    }
    return catalog;
}

NamedProgram
builtinProgram(const dram::DeviceConfig &cfg, const std::string &name)
{
    auto catalog = builtinPrograms(cfg);
    for (auto &entry : catalog) {
        if (entry.name == name)
            return std::move(entry);
    }
    std::string known;
    for (const auto &entry : catalog)
        known += (known.empty() ? "" : ", ") + entry.name;
    fatal("builtinProgram: unknown program '" + name + "' (known: " +
          known + ")");
}

} // namespace core
} // namespace dramscope
