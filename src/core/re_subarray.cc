/**
 * @file
 * Subarray mapper implementation.
 */

#include "core/re_subarray.h"

#include <numeric>

#include "util/log.h"

namespace dramscope {
namespace core {

SubarrayMapper::SubarrayMapper(bender::Host &host, SubarrayOptions opts)
    : host_(host), opts_(opts)
{
    if (opts_.scanLimit == 0)
        opts_.scanLimit = host_.config().rowsPerBank;
}

CopyOutcome
SubarrayMapper::probeCopy(dram::RowAddr src, dram::RowAddr dst,
                          bool *inverted_out)
{
    const dram::BankId b = opts_.bank;
    const uint32_t all_cols = host_.config().columnsPerRow();
    uint32_t n_sample = opts_.sampleColumns == 0
                            ? all_cols
                            : std::min(opts_.sampleColumns, all_cols);
    std::vector<dram::ColAddr> cols;
    for (uint32_t k = 0; k < n_sample; ++k)
        cols.push_back(k * all_cols / n_sample);

    const uint32_t w = host_.config().rdDataBits;
    auto to_bits = [&](const std::vector<uint64_t> &data) {
        BitVec bits(data.size() * w);
        for (size_t c = 0; c < data.size(); ++c) {
            for (uint32_t i = 0; i < w; ++i)
                bits.set(c * w + i, (data[c] >> i) & 1ULL);
        }
        return bits;
    };

    // Two trials with opposite source data: destination bits that
    // depend on the source are the copied bits, regardless of any
    // inversion the sense-amp structure introduces.
    host_.writeColumns(b, dst, cols, 0);
    host_.writeColumns(b, src, cols, ~0ULL);
    host_.rowCopy(b, src, dst);
    const BitVec d_ones = to_bits(host_.readColumns(b, dst, cols));

    host_.writeColumns(b, dst, cols, 0);
    host_.writeColumns(b, src, cols, 0);
    host_.rowCopy(b, src, dst);
    const BitVec d_zeros = to_bits(host_.readColumns(b, dst, cols));

    const size_t n = d_ones.size();
    const size_t changed = d_ones.hammingDistance(d_zeros);

    if (inverted_out && changed > 0) {
        // Copied bits under all-ones source data: a majority of zeros
        // means the copy inverted the data.
        size_t copied_ones = 0;
        for (size_t i = 0; i < n; ++i) {
            if (d_ones.get(i) != d_zeros.get(i) && d_ones.get(i))
                ++copied_ones;
        }
        *inverted_out = copied_ones * 2 < changed;
    }

    if (changed >= n - n / 8)
        return CopyOutcome::Full;
    if (changed >= n / 4)
        return CopyOutcome::Half;
    if (changed <= n / 64)
        return CopyOutcome::None;
    warn("probeCopy: ambiguous copy fraction");
    return CopyOutcome::None;
}

SubarrayDiscovery
SubarrayMapper::discoverFirstSection()
{
    SubarrayDiscovery d;
    dram::RowAddr last_boundary = 0;
    for (dram::RowAddr r = 0; r + 1 < opts_.scanLimit; ++r) {
        bool inverted = false;
        const CopyOutcome out = probeCopy(r, r + 1, &inverted);
        if (out == CopyOutcome::Full)
            continue;
        d.heights.push_back(r + 1 - last_boundary);
        last_boundary = r + 1;
        if (out == CopyOutcome::Half) {
            d.openBitline = true;
            d.copyInvertsData = inverted;
            continue;
        }
        // No copy: sense-amp stripes do not span this boundary — the
        // end of the edge section.
        d.sectionRows = r + 1;
        break;
    }
    fatalIf(d.sectionRows == 0,
            "discoverFirstSection: no section boundary within scan "
            "limit");

    // The edge-subarray tandem check (O5): the first and last rows of
    // a section belong to the two edge subarrays sharing the edge
    // sense-amp stripe, so RowCopy between them moves half the bits.
    d.edgePairConfirmed =
        probeCopy(0, d.sectionRows - 1) == CopyOutcome::Half;
    return d;
}

bool
SubarrayMapper::verifyPeriodicity(const SubarrayDiscovery &d,
                                  uint32_t samples, Rng &rng)
{
    const uint32_t n_rows = host_.config().rowsPerBank;
    if (d.sectionRows == 0 || n_rows % d.sectionRows != 0)
        return false;
    const uint32_t n_sections = n_rows / d.sectionRows;

    std::vector<uint32_t> cum(d.heights.size());
    std::partial_sum(d.heights.begin(), d.heights.end(), cum.begin());

    for (uint32_t s = 0; s < samples; ++s) {
        const uint32_t section = uint32_t(rng.below(n_sections));
        const dram::RowAddr base = section * d.sectionRows;
        const size_t bi = size_t(rng.below(cum.size()));
        const dram::RowAddr boundary = base + cum[bi];
        const bool last = bi + 1 == cum.size();
        const CopyOutcome expect =
            last ? CopyOutcome::None : CopyOutcome::Half;
        // At the very top of the bank, wrap to row 0: a different
        // section, so the expected outcome is still None.
        if (probeCopy(boundary - 1, boundary % n_rows) != expect)
            return false;
        // Interior check: a row pair inside a random subarray.
        const dram::RowAddr lo = bi == 0 ? base : base + cum[bi - 1];
        if (cum[bi] - (lo - base) >= 2) {
            if (probeCopy(lo, lo + 1) != CopyOutcome::Full)
                return false;
        }
    }
    return true;
}

bool
SubarrayMapper::aibCrossCheckBoundary(dram::RowAddr boundary)
{
    fatalIf(boundary < 2, "aibCrossCheckBoundary: boundary too low");
    const dram::BankId b = opts_.bank;
    auto logical = [&](dram::RowAddr phys) {
        return dram::remapRow(opts_.rowRemap, phys);
    };

    // Hammer the row just below the boundary: the row above the
    // boundary sits behind a sense-amp stripe and must stay clean,
    // while the inner neighbour flips.
    const dram::RowAddr aggr = boundary - 1;
    host_.writeRowPattern(b, logical(boundary - 2), ~0ULL);
    host_.writeRowPattern(b, logical(boundary), ~0ULL);
    host_.writeRowPattern(b, logical(aggr), 0);
    host_.hammer(b, logical(aggr), opts_.crossCheckHammer);

    const BitVec inner = host_.readRowBits(b, logical(boundary - 2));
    const BitVec outer = host_.readRowBits(b, logical(boundary));
    const size_t inner_flips = inner.size() - inner.popcount();
    const size_t outer_flips = outer.size() - outer.popcount();
    return inner_flips > 4 && outer_flips == 0;
}

} // namespace core
} // namespace dramscope
