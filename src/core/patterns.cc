/**
 * @file
 * Adversarial pattern builders.
 */

#include "core/patterns.h"

namespace dramscope {
namespace core {

BitVec
AdversarialPatterns::worstBerVictimRow(const PhysMap &map)
{
    return map.hostBitsForPhysicalPattern(worstVictimNibble, 4);
}

BitVec
AdversarialPatterns::worstBerAggressorRow(const PhysMap &map)
{
    return map.hostBitsForPhysicalPattern(worstAggressorNibble, 4);
}

BitVec
AdversarialPatterns::targetedVictimRow(const PhysMap &map,
                                       uint32_t target_phys,
                                       bool vic0_value)
{
    BitVec phys(map.rowBits(), !vic0_value);
    // The target cell (and its period-5 replicas, which keep the
    // pattern measurable) hold vic0; everything else the opposite.
    for (uint32_t p = target_phys % 5; p < map.rowBits(); p += 5)
        phys.set(p, vic0_value);
    return map.toHost(phys);
}

BitVec
AdversarialPatterns::targetedAggressorRow(const PhysMap &map,
                                          bool vic0_value)
{
    return BitVec(map.rowBits(), !vic0_value);
}

} // namespace core
} // namespace dramscope
