/**
 * @file
 * Parallel sweep engine: shards a characterization experiment into
 * independent units and runs each against a thread-local device
 * replica, with results bit-identical to the serial path.
 *
 * Determinism contract
 * --------------------
 * The device model is pure: all per-cell randomness is a stateless
 * hash of (variationSeed, cell coordinate), and all physics depends
 * only on time *deltas* within a command sequence.  A sweep unit must
 * therefore be **self-contained**: it writes every row it will read
 * before hammering and reading it, and never touches rows another
 * unit reads afterwards without rewriting them.  Under that contract
 * a unit produces the same bits on a fresh replica as on the shared
 * serial host, so
 *
 *   - results are merged in *shard order* (never completion order),
 *   - each shard's Rng stream is split from the base seed by *shard
 *     index* (never by worker or scheduling order),
 *   - replicas are constructed from the same DeviceConfig (same
 *     variationSeed) as the legacy host,
 *
 * and DRAMSCOPE_JOBS=N output is bit-identical to DRAMSCOPE_JOBS=1
 * for the same config and seed (locked down by tests/test_sweep.cc).
 *
 * Observability (util/metrics.h): when the legacy host has a metrics
 * registry attached, each replica records into a private registry
 * that the runner drains into the caller's after every sweep, in
 * replica order.  Metric values are exact integer counts and
 * observation windows reset at shard boundaries, so the merged
 * snapshot is bit-identical to a serial run's.  Command *tracing*
 * (bender/trace.h) is not replicated: a trace sink on the legacy
 * host sees sweep commands only on the serial path (jobs = 1), where
 * units run directly on that host.
 */

#ifndef DRAMSCOPE_CORE_SWEEP_H
#define DRAMSCOPE_CORE_SWEEP_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "bender/host.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace dramscope {
namespace core {

/** Per-shard execution context handed to each sweep unit. */
struct ShardContext
{
    /** Device under test: a thread-local replica when parallel, the
     *  legacy shared host when serial. */
    bender::Host &host;

    /** Deterministic stream split by shard index from the base seed. */
    Rng rng;

    uint32_t shard = 0;       //!< This unit's index.
    uint32_t shardCount = 1;  //!< Total units in the sweep.
};

/**
 * Builds one worker-private device replica from the legacy host's
 * configuration.  The default (an empty function) constructs a
 * dram::Chip; sweeps over other backends (a DIMM rank, an HBM
 * channel) install a factory returning their own Device.  The factory
 * must return equivalent silicon for equal configs — replicas exist
 * only for parallelism and results stay bit-identical to serial.
 */
using DeviceFactory =
    std::function<std::unique_ptr<dram::Device>(const dram::DeviceConfig &)>;

/** Sweep engine options. */
struct SweepOptions
{
    /**
     * Worker count: 0 resolves the DRAMSCOPE_JOBS environment knob
     * (default: hardware concurrency); 1 selects the legacy serial
     * path on the caller's host.
     */
    unsigned jobs = 0;

    /** Base seed of the per-shard Rng streams. */
    uint64_t seed = 0x5eedULL;

    /** Replica backend factory (empty: dram::Chip replicas). */
    DeviceFactory deviceFactory;

    SweepOptions() = default;
    SweepOptions(unsigned jobs_arg, uint64_t seed_arg,
                 DeviceFactory factory = {})
        : jobs(jobs_arg), seed(seed_arg),
          deviceFactory(std::move(factory))
    {
    }
};

/**
 * Resolves the effective job count: an explicit @p requested value
 * wins, then a positive integer in DRAMSCOPE_JOBS, then hardware
 * concurrency (at least 1).
 */
unsigned resolveJobs(unsigned requested = 0);

/**
 * Runs sweep units across a lazily created worker pool, one device
 * replica per worker.  The pool and the replicas persist across
 * calls, so repeated figure entry points pay the spin-up cost once.
 */
class SweepRunner
{
  public:
    /**
     * @param host Legacy host: serial shards run directly on it, and
     *        parallel replicas copy its DeviceConfig.  Borrowed; must
     *        outlive the runner.
     * @param opts Job count and base seed.
     */
    explicit SweepRunner(bender::Host &host, SweepOptions opts = {});
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    /** Effective worker count (1 = serial legacy path). */
    unsigned jobs() const { return jobs_; }

    /** Base seed of the per-shard Rng streams. */
    uint64_t seed() const { return seed_; }

    /**
     * Runs @p unit once per shard and returns the results in shard
     * order.  @p unit must honor the self-containment contract above
     * and must not touch the legacy host (use ctx.host).
     */
    template <typename R>
    std::vector<R>
    map(uint32_t shards, const std::function<R(ShardContext &)> &unit)
    {
        std::vector<R> out(shards);
        forEachShard(shards,
                     [&](ShardContext &ctx) { out[ctx.shard] = unit(ctx); });
        return out;
    }

    /** Runs @p unit once per shard; results via side effects into
     *  shard-indexed slots (no two shards may share a slot). */
    void forEachShard(uint32_t shards,
                      const std::function<void(ShardContext &)> &unit);

  private:
    struct Replica;  //!< Thread-local Device + Host pair.

    bender::Host &host_;
    unsigned jobs_;
    uint64_t seed_;
    DeviceFactory factory_;
    std::unique_ptr<ThreadPool> pool_;
    std::vector<std::unique_ptr<Replica>> replicas_;
};

} // namespace core
} // namespace dramscope

#endif // DRAMSCOPE_CORE_SWEEP_H
