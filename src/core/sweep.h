/**
 * @file
 * Parallel sweep engine: shards a characterization experiment into
 * independent units and runs each against a thread-local device
 * replica, with results bit-identical to the serial path.
 *
 * Determinism contract
 * --------------------
 * The device model is pure: all per-cell randomness is a stateless
 * hash of (variationSeed, cell coordinate), and all physics depends
 * only on time *deltas* within a command sequence.  A sweep unit must
 * therefore be **self-contained**: it writes every row it will read
 * before hammering and reading it, and never touches rows another
 * unit reads afterwards without rewriting them.  Under that contract
 * a unit produces the same bits on a fresh replica as on the shared
 * serial host, so
 *
 *   - results are merged in *shard order* (never completion order),
 *   - each shard's Rng stream is split from the base seed by *shard
 *     index* (never by worker or scheduling order),
 *   - replicas are constructed from the same DeviceConfig (same
 *     variationSeed) as the legacy host,
 *
 * and DRAMSCOPE_JOBS=N output is bit-identical to DRAMSCOPE_JOBS=1
 * for the same config and seed (locked down by tests/test_sweep.cc).
 *
 * Resilience (docs/RESILIENCE.md): long campaigns survive flaky
 * shards and killed processes through runResilient(), which layers
 * per-shard exception capture, bounded deterministic-backoff retry,
 * quarantine with partial-result reporting (SweepReport), a per-shard
 * wall-clock watchdog, and an fsync'd JSONL shard journal enabling
 * checkpoint/resume with bit-identical merged output.  Fault
 * injection behind any backend is provided by dram::FaultyDevice;
 * the runner rebases its deterministic fault streams at every shard
 * attempt.  runResilient() is the engine behind both the figure
 * sweeps and the memory-controller policy x workload grid
 * (mc::runMcSweep, src/mc/sweep.h) — any client whose shards derive
 * their seed from the shard index (never ctx.rng or attempt count)
 * inherits the full retry/checkpoint/bit-identity story.
 *
 * Observability (util/metrics.h): when the legacy host has a metrics
 * registry attached, each replica records into a private registry
 * that the runner drains into the caller's after every sweep, in
 * replica order.  Metric values are exact integer counts and
 * observation windows reset at shard boundaries, so the merged
 * snapshot is bit-identical to a serial run's.  Command *tracing*
 * (bender/trace.h) is not replicated: a trace sink on the legacy
 * host sees sweep commands only on the serial path (jobs = 1), where
 * units run directly on that host.
 */

#ifndef DRAMSCOPE_CORE_SWEEP_H
#define DRAMSCOPE_CORE_SWEEP_H

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bender/host.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace dramscope {
namespace core {

/** Per-shard execution context handed to each sweep unit. */
struct ShardContext
{
    /** Device under test: a thread-local replica when parallel, the
     *  legacy shared host when serial. */
    bender::Host &host;

    /** Deterministic stream split by shard index from the base seed. */
    Rng rng;

    uint32_t shard = 0;       //!< This unit's index.
    uint32_t shardCount = 1;  //!< Total units in the sweep.

    /** Execution attempt of this shard, starting at 1 (resilient
     *  sweeps retry failed shards; plain sweeps always pass 1). */
    uint32_t attempt = 1;
};

/**
 * Builds one worker-private device replica from the legacy host's
 * configuration.  The default (an empty function) constructs a
 * dram::Chip; sweeps over other backends (a DIMM rank, an HBM
 * channel) install a factory returning their own Device.  The factory
 * must return equivalent silicon for equal configs — replicas exist
 * only for parallelism and results stay bit-identical to serial.
 */
using DeviceFactory =
    std::function<std::unique_ptr<dram::Device>(const dram::DeviceConfig &)>;

/** Sweep engine options. */
struct SweepOptions
{
    /**
     * Worker count: 0 resolves the DRAMSCOPE_JOBS environment knob
     * (default: hardware concurrency); 1 selects the legacy serial
     * path on the caller's host.
     */
    unsigned jobs = 0;

    /** Base seed of the per-shard Rng streams. */
    uint64_t seed = 0x5eedULL;

    /** Replica backend factory (empty: dram::Chip replicas). */
    DeviceFactory deviceFactory;

    SweepOptions() = default;
    SweepOptions(unsigned jobs_arg, uint64_t seed_arg,
                 DeviceFactory factory = {})
        : jobs(jobs_arg), seed(seed_arg),
          deviceFactory(std::move(factory))
    {
    }
};

/**
 * Resolves the effective job count: an explicit @p requested value
 * wins, then a positive integer in DRAMSCOPE_JOBS, then hardware
 * concurrency (at least 1).
 */
unsigned resolveJobs(unsigned requested = 0);

/** Terminal status of one shard in a resilient sweep. */
enum class ShardStatus : uint8_t
{
    Ok,           //!< Executed (possibly after retries) and succeeded.
    Resumed,      //!< Skipped: result recovered from the journal.
    Quarantined,  //!< Failed every permitted attempt; result missing.
};

/** Lower-case status name ("ok", "resumed", "quarantined"). */
const char *toString(ShardStatus status);

/** Outcome of one shard of a resilient sweep. */
struct ShardRecord
{
    uint32_t shard = 0;
    ShardStatus status = ShardStatus::Ok;
    uint32_t attempts = 0;  //!< Executions performed (0 when resumed).
    std::string payload;    //!< Unit result; empty when quarantined.
    std::string error;      //!< Last failure message (quarantined).
};

/**
 * Partial-result report of a resilient sweep: one record per shard,
 * in shard order.  A quarantined shard no longer aborts the sweep —
 * callers inspect complete() / the per-shard statuses instead.
 */
struct SweepReport
{
    std::vector<ShardRecord> shards;  //!< Indexed by shard.
    uint64_t executed = 0;     //!< Shards that ran to success here.
    uint64_t retries = 0;      //!< Extra attempts beyond the first.
    uint64_t resumed = 0;      //!< Shards recovered from the journal.
    uint64_t quarantined = 0;  //!< Shards with no result.
    uint64_t timeouts = 0;     //!< Attempts failed by the watchdog.

    /** True when every shard has a result (none quarantined). */
    bool complete() const { return quarantined == 0; }

    /**
     * Payloads in shard order (empty strings for quarantined
     * shards): the merge input, bit-identical between interrupted-
     * then-resumed and uninterrupted runs.
     */
    std::vector<std::string> payloads() const;
};

/** Bounded-retry policy with deterministic (non-jittered) backoff. */
struct RetryPolicy
{
    /** Attempts per shard (1 = no retry) before quarantine. */
    uint32_t maxAttempts = 3;

    /** Backoff before attempt k+1: min(base << (k-1), cap) ms. */
    uint64_t backoffBaseMs = 0;
    uint64_t backoffCapMs = 1000;

    /** Delay before attempt @p next_attempt (>= 2), in ms. */
    uint64_t delayMsBefore(uint32_t next_attempt) const;
};

/** Durability and containment options of a resilient sweep. */
struct ResilienceOptions
{
    RetryPolicy retry;

    /**
     * Per-shard wall-clock watchdog (ms); 0 disables it.  Checked
     * after the unit returns: an over-budget attempt is treated as a
     * failure (retried, then quarantined).  Wall-clock based, so runs
     * using it trade some determinism for liveness reporting.
     */
    uint64_t shardTimeoutMs = 0;

    /**
     * JSONL shard-journal path; empty disables checkpointing.  Every
     * completed shard is appended and fsync'd, so a killed process
     * loses at most the shard in flight.
     */
    std::string checkpointPath;

    /**
     * Resume from an existing journal at checkpointPath: journaled
     * shards are skipped (status Resumed) and the merged payloads are
     * bit-identical to an uninterrupted run.  A journal written under
     * a different config hash refuses to resume (ResumeError).  A
     * missing journal file starts a fresh run.
     */
    bool resume = false;

    /**
     * Experiment tag mixed into the config hash, so journals of
     * different experiments over the same device never cross-resume.
     */
    std::string tag;
};

/** Refusal to resume from an incompatible or corrupt journal. */
class ResumeError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * A resilient sweep unit: returns the shard's result serialized as a
 * byte string (journaled verbatim; merge = concatenation in shard
 * order).  Failures are signalled by throwing.
 */
using ResilientUnit = std::function<std::string(ShardContext &)>;

/**
 * Runs sweep units across a lazily created worker pool, one device
 * replica per worker.  The pool and the replicas persist across
 * calls, so repeated figure entry points pay the spin-up cost once.
 */
class SweepRunner
{
  public:
    /**
     * @param host Legacy host: serial shards run directly on it, and
     *        parallel replicas copy its DeviceConfig.  Borrowed; must
     *        outlive the runner.
     * @param opts Job count and base seed.
     */
    explicit SweepRunner(bender::Host &host, SweepOptions opts = {});
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    /** Effective worker count (1 = serial legacy path). */
    unsigned jobs() const { return jobs_; }

    /** Base seed of the per-shard Rng streams. */
    uint64_t seed() const { return seed_; }

    /**
     * Runs @p unit once per shard and returns the results in shard
     * order.  @p unit must honor the self-containment contract above
     * and must not touch the legacy host (use ctx.host).
     */
    template <typename R>
    std::vector<R>
    map(uint32_t shards, const std::function<R(ShardContext &)> &unit)
    {
        std::vector<R> out(shards);
        forEachShard(shards,
                     [&](ShardContext &ctx) { out[ctx.shard] = unit(ctx); });
        return out;
    }

    /** Runs @p unit once per shard; results via side effects into
     *  shard-indexed slots (no two shards may share a slot). */
    void forEachShard(uint32_t shards,
                      const std::function<void(ShardContext &)> &unit);

    /**
     * Runs @p unit once per shard with failure containment: a
     * throwing or (watchdog) over-budget shard is retried per
     * @p opts.retry with deterministic backoff, then quarantined —
     * it never propagates out of the pool or aborts the sweep.  A
     * dram::DeviceDeadError quarantines immediately (hard faults are
     * not retriable).  With a checkpoint path set, completed shards
     * are journaled (fsync per record) and opts.resume skips them on
     * a rerun, keeping the merged payloads bit-identical to an
     * uninterrupted run.  Counters sweep.shards.{executed,retried,
     * resumed,quarantined,timeout} are recorded on an attached
     * metrics registry.
     *
     * When the device under test (legacy host or replica) is a
     * dram::FaultyDevice, its fault stream is rebased per shard
     * attempt, so fault injection is deterministic per seed
     * regardless of scheduling.
     *
     * @throws ResumeError when opts.resume finds a journal written
     *         under a different config hash (never silently mixes
     *         incompatible runs).
     */
    SweepReport runResilient(uint32_t shards, const ResilientUnit &unit,
                             const ResilienceOptions &opts = {});

    /**
     * Hash identifying a sweep for journal compatibility: covers the
     * base seed, shard count, tag, device geometry/variation and any
     * active fault spec — but not the job count, so a serial run may
     * resume a parallel one's journal and vice versa.
     */
    uint64_t configHash(uint32_t shards, const std::string &tag) const;

  private:
    struct Replica;  //!< Thread-local Device + Host pair.

    bender::Host &host_;
    unsigned jobs_;
    uint64_t seed_;
    DeviceFactory factory_;
    std::unique_ptr<ThreadPool> pool_;
    std::vector<std::unique_ptr<Replica>> replicas_;
};

} // namespace core
} // namespace dramscope

#endif // DRAMSCOPE_CORE_SWEEP_H
