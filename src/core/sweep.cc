/**
 * @file
 * Sweep engine implementation: the parallel shard scheduler plus the
 * resilience layer (retry/quarantine, watchdog, JSONL shard journal
 * with checkpoint/resume).
 *
 * Journal format (one JSON object per line, append-only, fsync per
 * record so a killed process loses at most the shard in flight):
 *
 *   {"kind":"header","hash":"<16 hex>","shards":N}
 *   {"kind":"shard","shard":S,"attempts":K,"payload":"<escaped>"}
 *
 * The header's hash covers everything that determines shard results
 * (seed, shard count, tag, device geometry and variation seed, any
 * active fault spec) — resuming under a different hash is refused.
 * Records land in completion order; resume keys them by shard index,
 * so the merged payloads are always in shard order.
 */

#include "core/sweep.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>
#include <unistd.h>

#include "dram/chip.h"
#include "dram/faulty_device.h"
#include "util/log.h"

namespace dramscope {
namespace core {

unsigned
resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("DRAMSCOPE_JOBS")) {
        const long v = std::atol(env);
        if (v > 0)
            return unsigned(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

const char *
toString(ShardStatus status)
{
    switch (status) {
      case ShardStatus::Ok:          return "ok";
      case ShardStatus::Resumed:     return "resumed";
      case ShardStatus::Quarantined: return "quarantined";
    }
    return "?";
}

std::vector<std::string>
SweepReport::payloads() const
{
    std::vector<std::string> out;
    out.reserve(shards.size());
    for (const auto &rec : shards)
        out.push_back(rec.payload);
    return out;
}

uint64_t
RetryPolicy::delayMsBefore(uint32_t next_attempt) const
{
    if (backoffBaseMs == 0 || next_attempt < 2)
        return 0;
    // Deterministic exponential backoff, no jitter: retry schedules
    // are part of the reproducibility contract.
    const uint32_t exponent = next_attempt - 2;
    uint64_t delay = backoffBaseMs;
    for (uint32_t i = 0; i < exponent && delay < backoffCapMs; ++i)
        delay *= 2;
    return delay < backoffCapMs ? delay : backoffCapMs;
}

// ---------------------------------------------------------------------
// Journal encoding.
// ---------------------------------------------------------------------

namespace {

/** Escapes a payload for embedding in one JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const unsigned char c : s) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"':  out += "\\\""; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    return out;
}

/**
 * Reads an escaped JSON string starting after the opening quote at
 * @p p; on success leaves @p p past the closing quote.
 */
bool
jsonUnescape(const char *&p, std::string &out)
{
    out.clear();
    while (*p != '\0' && *p != '"') {
        if (*p != '\\') {
            out += *p++;
            continue;
        }
        ++p;
        switch (*p) {
          case '\\': out += '\\'; ++p; break;
          case '"':  out += '"'; ++p; break;
          case 'n':  out += '\n'; ++p; break;
          case 'r':  out += '\r'; ++p; break;
          case 't':  out += '\t'; ++p; break;
          case 'u': {
            ++p;
            char hex[5] = {};
            for (int i = 0; i < 4; ++i) {
                if (!std::isxdigit(static_cast<unsigned char>(p[i])))
                    return false;
                hex[i] = p[i];
            }
            out += char(std::strtoul(hex, nullptr, 16));
            p += 4;
            break;
          }
          default: return false;
        }
    }
    if (*p != '"')
        return false;
    ++p;
    return true;
}

/** Scans `key` and leaves @p p just past it; false when absent. */
bool
expectKey(const char *&p, const char *key)
{
    const char *found = std::strstr(p, key);
    if (!found)
        return false;
    p = found + std::strlen(key);
    return true;
}

bool
scanU64(const char *&p, uint64_t &out)
{
    char *end = nullptr;
    out = std::strtoull(p, &end, 10);
    if (end == p)
        return false;
    p = end;
    return true;
}

std::string
formatHash(uint64_t hash)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

/** One journaled shard result recovered during resume. */
struct JournaledShard
{
    uint32_t attempts = 0;
    std::string payload;
};

/** Mixes a byte string into a running hash. */
uint64_t
mixString(uint64_t h, const std::string &s)
{
    h = hashCombine(h, s.size());
    for (const char c : s)
        h = hashCombine(h, uint64_t(uint8_t(c)));
    return h;
}

} // namespace

/**
 * Append-only, fsync-per-record shard journal.  Reading (resume) and
 * writing never overlap: the journal is fully loaded before the
 * sweep starts, then reopened for appends.
 */
class ShardJournal
{
  public:
    ~ShardJournal()
    {
        if (file_)
            std::fclose(file_);
    }

    /** Truncates @p path and writes the header. */
    void
    openFresh(const std::string &path, uint64_t hash, uint32_t shards)
    {
        file_ = std::fopen(path.c_str(), "w");
        if (!file_)
            throw ResumeError("cannot open checkpoint file " + path);
        writeLine("{\"kind\":\"header\",\"hash\":\"" +
                  formatHash(hash) + "\",\"shards\":" +
                  std::to_string(shards) + "}");
    }

    /**
     * Loads an existing journal (header must match @p hash and
     * @p shards) and reopens it for appending.  A missing file
     * starts fresh.  @throws ResumeError on any incompatibility.
     */
    std::map<uint32_t, JournaledShard>
    openResume(const std::string &path, uint64_t hash, uint32_t shards)
    {
        std::map<uint32_t, JournaledShard> out;
        std::ifstream in(path);
        if (!in.is_open()) {
            openFresh(path, hash, shards);
            return out;
        }

        std::string line;
        bool have_header = false;
        while (std::getline(in, line)) {
            const char *p = line.c_str();
            if (!have_header) {
                if (line.empty())
                    break;  // Torn header write: treat as fresh.
                std::string file_hash;
                uint64_t file_shards = 0;
                if (!expectKey(p, "\"kind\":\"header\"") ||
                    !expectKey(p, "\"hash\":\"") ||
                    !jsonUnescape(p, file_hash) ||
                    !expectKey(p, "\"shards\":") ||
                    !scanU64(p, file_shards)) {
                    throw ResumeError("checkpoint " + path +
                                      ": unreadable journal header");
                }
                if (file_hash != formatHash(hash) ||
                    file_shards != shards) {
                    throw ResumeError(
                        "checkpoint " + path +
                        " was written by a different sweep "
                        "(config hash mismatch); refusing to resume");
                }
                have_header = true;
                continue;
            }
            uint64_t shard = 0, attempts = 0;
            JournaledShard rec;
            if (!expectKey(p, "\"kind\":\"shard\"") ||
                !expectKey(p, "\"shard\":") || !scanU64(p, shard) ||
                !expectKey(p, "\"attempts\":") ||
                !scanU64(p, attempts) ||
                !expectKey(p, "\"payload\":\"") ||
                !jsonUnescape(p, rec.payload)) {
                // A torn trailing record is exactly the kill-mid-
                // append case the journal exists for; ignore it.
                break;
            }
            if (shard >= shards)
                throw ResumeError("checkpoint " + path +
                                  ": shard index out of range");
            rec.attempts = uint32_t(attempts);
            out[uint32_t(shard)] = std::move(rec);
        }
        in.close();

        if (!have_header) {
            out.clear();
            openFresh(path, hash, shards);
            return out;
        }
        file_ = std::fopen(path.c_str(), "a");
        if (!file_)
            throw ResumeError("cannot reopen checkpoint file " + path);
        return out;
    }

    /** Appends one completed shard (thread-safe, fsync'd). */
    void
    append(uint32_t shard, uint32_t attempts, const std::string &payload)
    {
        std::lock_guard<std::mutex> lock(mu_);
        writeLine("{\"kind\":\"shard\",\"shard\":" +
                  std::to_string(shard) + ",\"attempts\":" +
                  std::to_string(attempts) + ",\"payload\":\"" +
                  jsonEscape(payload) + "\"}");
    }

  private:
    void
    writeLine(const std::string &line)
    {
        if (std::fprintf(file_, "%s\n", line.c_str()) < 0 ||
            std::fflush(file_) != 0) {
            warn("shard journal: write failed (results of this run "
                 "may not be resumable)");
            return;
        }
        // fsync per record: the durability point of the whole layer.
        ::fsync(fileno(file_));
    }

    std::FILE *file_ = nullptr;
    std::mutex mu_;
};

// ---------------------------------------------------------------------
// Runner.
// ---------------------------------------------------------------------

/** One worker's private device replica plus its host, with a local
 *  metrics registry the runner drains after every sweep. */
struct SweepRunner::Replica
{
    std::unique_ptr<dram::Device> dev;
    bender::Host host;
    obs::MetricsRegistry metrics;

    explicit Replica(std::unique_ptr<dram::Device> device)
        : dev(std::move(device)), host(*dev)
    {
    }
};

namespace {

/** The device behind @p host, as a FaultyDevice when it is one. */
dram::FaultyDevice *
faultyOf(bender::Host &host)
{
    return dynamic_cast<dram::FaultyDevice *>(&host.device());
}

/**
 * Best-effort precharge of every bank before a retry: a shard that
 * failed mid-program may leave rows open, and the next attempt must
 * start from the same idle state a fresh shard would.  Injected
 * faults during recovery are swallowed (the attempt's own commands
 * will surface them).
 */
void
recoverBanks(bender::Host &host)
{
    dram::Device &dev = host.device();
    const uint32_t banks = dev.config().numBanks;
    for (uint32_t b = 0; b < banks; ++b) {
        try {
            dev.pre(dram::BankId(b), host.now());
        } catch (...) {
        }
    }
}

} // namespace

SweepRunner::SweepRunner(bender::Host &host, SweepOptions opts)
    : host_(host), jobs_(resolveJobs(opts.jobs)), seed_(opts.seed),
      factory_(std::move(opts.deviceFactory))
{
}

SweepRunner::~SweepRunner() = default;

uint64_t
SweepRunner::configHash(uint32_t shards, const std::string &tag) const
{
    const dram::DeviceConfig &cfg = host_.config();
    uint64_t h = hashCombine(0x5eed'c4ec'9015'7a1eULL, seed_);
    h = hashCombine(h, shards);
    h = mixString(h, tag);
    h = mixString(h, cfg.name);
    h = hashCombine(h, cfg.numBanks);
    h = hashCombine(h, cfg.rowsPerBank);
    h = hashCombine(h, cfg.rowBits);
    h = hashCombine(h, cfg.rdDataBits);
    h = hashCombine(h, cfg.variationSeed);
    if (const auto *f =
            dynamic_cast<const dram::FaultyDevice *>(&host_.device()))
        h = mixString(h, f->spec().toString());
    return h;
}

void
SweepRunner::forEachShard(uint32_t shards,
                          const std::function<void(ShardContext &)> &unit)
{
    if (shards == 0)
        return;

    // Metrics attachment is decided per sweep from the legacy host's
    // current registry.  Interval state resets at every shard boundary
    // (serial and parallel alike) so observation windows never span
    // shards: the merged histograms are then independent of how
    // shards land on workers, and serial == parallel bit for bit.
    const bool want_metrics = host_.metrics() != nullptr;

    if (jobs_ <= 1 || shards == 1) {
        // Legacy serial path: shard order on the caller's host.
        if (dram::FaultyDevice *faulty = faultyOf(host_))
            faulty->setMetrics(want_metrics ? host_.metrics() : nullptr);
        for (uint32_t s = 0; s < shards; ++s) {
            if (want_metrics)
                host_.resetMetricsWindow();
            // Fault streams are keyed by shard index, so injection is
            // identical wherever (and whenever) the shard runs.
            if (dram::FaultyDevice *faulty = faultyOf(host_))
                faulty->beginShard(s, 1);
            ShardContext ctx{host_, Rng(hashCombine(seed_, s)), s, shards};
            unit(ctx);
        }
        return;
    }

    if (!pool_) {
        pool_ = std::make_unique<ThreadPool>(jobs_);
        replicas_.resize(pool_->size());
    }
    const dram::DeviceConfig &cfg = host_.config();
    parallelFor(*pool_, shards, [&](uint64_t s) {
        // Each worker touches only its own replica slot, so the lazy
        // construction below is race-free without locking.
        auto &replica = replicas_[size_t(ThreadPool::currentWorker())];
        if (!replica) {
            replica = std::make_unique<Replica>(
                factory_ ? factory_(cfg)
                         : std::make_unique<dram::Chip>(cfg));
        }
        // One fast-forward mode end to end: replicas inherit the
        // caller host's mode, not whatever the env said at their
        // construction.
        replica->host.setFastPathMode(host_.fastPathMode());
        if (want_metrics) {
            if (!replica->host.metrics())
                replica->host.setMetrics(&replica->metrics);
            replica->host.resetMetricsWindow();
        } else if (replica->host.metrics()) {
            replica->host.setMetrics(nullptr);
        }
        if (dram::FaultyDevice *faulty = faultyOf(replica->host)) {
            obs::MetricsRegistry *want =
                want_metrics ? &replica->metrics : nullptr;
            if (faulty->metrics() != want)
                faulty->setMetrics(want);
            faulty->beginShard(s, 1);
        }
        ShardContext ctx{replica->host, Rng(hashCombine(seed_, s)),
                         uint32_t(s), shards};
        unit(ctx);
    });

    if (want_metrics) {
        // Drain replica registries into the caller's, in replica
        // order.  Counters and histogram buckets are exact integers,
        // so the aggregate equals the serial run's regardless of
        // which worker executed which shard.
        for (auto &replica : replicas_) {
            if (!replica)
                continue;
            host_.metrics()->merge(replica->metrics);
            replica->metrics.reset();
        }
    }
}

SweepReport
SweepRunner::runResilient(uint32_t shards, const ResilientUnit &unit,
                          const ResilienceOptions &opts)
{
    SweepReport report;
    report.shards.resize(shards);
    for (uint32_t s = 0; s < shards; ++s)
        report.shards[s].shard = s;
    if (shards == 0)
        return report;

    std::unique_ptr<ShardJournal> journal;
    if (!opts.checkpointPath.empty()) {
        const uint64_t hash = configHash(shards, opts.tag);
        journal = std::make_unique<ShardJournal>();
        if (opts.resume) {
            for (auto &[s, rec] :
                 journal->openResume(opts.checkpointPath, hash, shards)) {
                ShardRecord &slot = report.shards[s];
                slot.status = ShardStatus::Resumed;
                slot.attempts = 0;
                slot.payload = std::move(rec.payload);
            }
        } else {
            journal->openFresh(opts.checkpointPath, hash, shards);
        }
    }

    const uint32_t max_attempts =
        opts.retry.maxAttempts > 0 ? opts.retry.maxAttempts : 1;
    std::atomic<uint64_t> timeouts{0};

    forEachShard(shards, [&](ShardContext &ctx) {
        ShardRecord &slot = report.shards[ctx.shard];
        if (slot.status == ShardStatus::Resumed)
            return;  // Recovered from the journal; do not re-execute.

        dram::FaultyDevice *faulty = faultyOf(ctx.host);
        std::string last_error;
        for (uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
            slot.attempts = attempt;
            if (attempt > 1) {
                const uint64_t delay_ms =
                    opts.retry.delayMsBefore(attempt);
                if (delay_ms > 0) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(delay_ms));
                }
                recoverBanks(ctx.host);
                ctx.host.resetMetricsWindow();
            }
            // Retries draw a *fresh* fault stream: a transient fault
            // does not deterministically re-fire forever, yet every
            // (shard, attempt) pair stays reproducible per seed.
            if (faulty)
                faulty->beginShard(ctx.shard, attempt);
            ShardContext attempt_ctx{ctx.host,
                                     Rng(hashCombine(seed_, ctx.shard)),
                                     ctx.shard, ctx.shardCount, attempt};
            const auto t0 = std::chrono::steady_clock::now();
            try {
                std::string payload = unit(attempt_ctx);
                if (opts.shardTimeoutMs > 0) {
                    const auto elapsed_ms =
                        std::chrono::duration_cast<
                            std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
                    if (uint64_t(elapsed_ms) > opts.shardTimeoutMs) {
                        timeouts.fetch_add(1,
                                           std::memory_order_relaxed);
                        last_error =
                            "shard watchdog: attempt took " +
                            std::to_string(elapsed_ms) + " ms (limit " +
                            std::to_string(opts.shardTimeoutMs) + " ms)";
                        continue;
                    }
                }
                slot.status = ShardStatus::Ok;
                slot.payload = std::move(payload);
                slot.error.clear();
                if (journal)
                    journal->append(ctx.shard, attempt, slot.payload);
                return;
            } catch (const dram::DeviceDeadError &e) {
                // Hard faults are not transient: quarantine now.
                last_error = e.what();
                break;
            } catch (const std::exception &e) {
                last_error = e.what();
            } catch (...) {
                last_error = "unknown error";
            }
        }
        slot.status = ShardStatus::Quarantined;
        slot.payload.clear();
        slot.error = last_error;
    });

    for (const ShardRecord &slot : report.shards) {
        switch (slot.status) {
          case ShardStatus::Ok:          ++report.executed; break;
          case ShardStatus::Resumed:     ++report.resumed; break;
          case ShardStatus::Quarantined: ++report.quarantined; break;
        }
        if (slot.attempts > 1)
            report.retries += slot.attempts - 1;
    }
    report.timeouts = timeouts.load(std::memory_order_relaxed);

    if (obs::MetricsRegistry *metrics = host_.metrics()) {
        metrics->counter("sweep.shards.executed").add(report.executed);
        metrics->counter("sweep.shards.retried").add(report.retries);
        metrics->counter("sweep.shards.resumed").add(report.resumed);
        metrics->counter("sweep.shards.quarantined")
            .add(report.quarantined);
        metrics->counter("sweep.shards.timeout").add(report.timeouts);
    }
    return report;
}

} // namespace core
} // namespace dramscope
