/**
 * @file
 * Sweep engine implementation.
 */

#include "core/sweep.h"

#include <cstdlib>
#include <thread>

#include "dram/chip.h"

namespace dramscope {
namespace core {

unsigned
resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("DRAMSCOPE_JOBS")) {
        const long v = std::atol(env);
        if (v > 0)
            return unsigned(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/** One worker's private device replica plus its host, with a local
 *  metrics registry the runner drains after every sweep. */
struct SweepRunner::Replica
{
    std::unique_ptr<dram::Device> dev;
    bender::Host host;
    obs::MetricsRegistry metrics;

    explicit Replica(std::unique_ptr<dram::Device> device)
        : dev(std::move(device)), host(*dev)
    {
    }
};

SweepRunner::SweepRunner(bender::Host &host, SweepOptions opts)
    : host_(host), jobs_(resolveJobs(opts.jobs)), seed_(opts.seed),
      factory_(std::move(opts.deviceFactory))
{
}

SweepRunner::~SweepRunner() = default;

void
SweepRunner::forEachShard(uint32_t shards,
                          const std::function<void(ShardContext &)> &unit)
{
    if (shards == 0)
        return;

    // Metrics attachment is decided per sweep from the legacy host's
    // current registry.  Interval state resets at every shard boundary
    // (serial and parallel alike) so observation windows never span
    // shards: the merged histograms are then independent of how
    // shards land on workers, and serial == parallel bit for bit.
    const bool want_metrics = host_.metrics() != nullptr;

    if (jobs_ <= 1 || shards == 1) {
        // Legacy serial path: shard order on the caller's host.
        for (uint32_t s = 0; s < shards; ++s) {
            if (want_metrics)
                host_.resetMetricsWindow();
            ShardContext ctx{host_, Rng(hashCombine(seed_, s)), s, shards};
            unit(ctx);
        }
        return;
    }

    if (!pool_) {
        pool_ = std::make_unique<ThreadPool>(jobs_);
        replicas_.resize(pool_->size());
    }
    const dram::DeviceConfig &cfg = host_.config();
    parallelFor(*pool_, shards, [&](uint64_t s) {
        // Each worker touches only its own replica slot, so the lazy
        // construction below is race-free without locking.
        auto &replica = replicas_[size_t(ThreadPool::currentWorker())];
        if (!replica) {
            replica = std::make_unique<Replica>(
                factory_ ? factory_(cfg)
                         : std::make_unique<dram::Chip>(cfg));
        }
        if (want_metrics) {
            if (!replica->host.metrics())
                replica->host.setMetrics(&replica->metrics);
            replica->host.resetMetricsWindow();
        } else if (replica->host.metrics()) {
            replica->host.setMetrics(nullptr);
        }
        ShardContext ctx{replica->host, Rng(hashCombine(seed_, s)),
                         uint32_t(s), shards};
        unit(ctx);
    });

    if (want_metrics) {
        // Drain replica registries into the caller's, in replica
        // order.  Counters and histogram buckets are exact integers,
        // so the aggregate equals the serial run's regardless of
        // which worker executed which shard.
        for (auto &replica : replicas_) {
            if (!replica)
                continue;
            host_.metrics()->merge(replica->metrics);
            replica->metrics.reset();
        }
    }
}

} // namespace core
} // namespace dramscope
