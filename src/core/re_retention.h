/**
 * @file
 * Retention-time profiling (the paper's third reverse-engineering
 * technique, SS III-B, generalized).
 *
 * Beyond the true-/anti-cell classification, sweeping refresh-free
 * wait times yields the per-row retention distribution, identifies
 * the weak cells that bound the refresh window, and measures the
 * temperature acceleration of leakage.
 */

#ifndef DRAMSCOPE_CORE_RE_RETENTION_H
#define DRAMSCOPE_CORE_RE_RETENTION_H

#include <vector>

#include "bender/host.h"

namespace dramscope {
namespace core {

/** One point of the retention survival curve. */
struct RetentionPoint
{
    double waitMs = 0;
    uint64_t decayed = 0;  //!< Charged cells lost by this wait.
    uint64_t tested = 0;
    double fraction() const
    {
        return tested ? double(decayed) / double(tested) : 0.0;
    }
};

/** A weak cell found below the target retention time. */
struct WeakCell
{
    dram::RowAddr row;
    uint32_t hostBit;
    double boundMs;  //!< Tightest wait at which it was seen decayed.
};

/** Full profiling result. */
struct RetentionProfile
{
    std::vector<RetentionPoint> curve;
    std::vector<WeakCell> weakCells;

    /** Wait time where half the charged cells have decayed (ms),
     *  interpolated from the curve; 0 when not bracketed. */
    double medianMs = 0;
};

/** Options for the retention profiler. */
struct RetentionOptions
{
    dram::BankId bank = 0;
    dram::RowAddr baseRow = 64;
    uint32_t rows = 8;

    /** Refresh-free wait times to sweep (ms), ascending. */
    std::vector<double> waitsMs = {250, 500, 1000, 2000, 4000,
                                   8000, 16000, 32000};

    /** Report cells decaying at or below this wait as weak. */
    double weakThresholdMs = 500;

    /** Cap on reported weak cells. */
    size_t maxWeakCells = 64;
};

/** Retention-time sweep through the command interface. */
class RetentionProfiler
{
  public:
    RetentionProfiler(bender::Host &host, RetentionOptions opts = {});

    /** Runs the sweep (each point uses a fresh write + wait). */
    RetentionProfile profile();

  private:
    bender::Host &host_;
    RetentionOptions opts_;
};

} // namespace core
} // namespace dramscope

#endif // DRAMSCOPE_CORE_RE_RETENTION_H
