/**
 * @file
 * Adjacency mapper implementation.
 */

#include "core/re_adjacency.h"

#include <algorithm>

#include "dram/geometry.h"
#include "util/log.h"

namespace dramscope {
namespace core {

AdjacencyMapper::AdjacencyMapper(bender::Host &host, AdjacencyOptions opts)
    : host_(host), opts_(opts)
{
}

AdjacencyProbe
AdjacencyMapper::probe(dram::RowAddr aggressor)
{
    const auto &cfg = host_.config();
    const dram::BankId b = opts_.bank;
    AdjacencyProbe result;
    result.aggressor = aggressor;

    // Candidate victims: the logical window around the aggressor.
    std::vector<dram::RowAddr> victims;
    const uint32_t lo =
        aggressor > opts_.window ? aggressor - opts_.window : 0;
    const uint32_t hi = std::min<uint32_t>(cfg.rowsPerBank - 1,
                                           aggressor + opts_.window);
    for (dram::RowAddr r = lo; r <= hi; ++r) {
        if (r != aggressor)
            victims.push_back(r);
    }

    // Victims hold all-ones (charged in true-cell chips), the
    // aggressor the inverse: the strongest baseline pattern.
    for (auto v : victims)
        host_.writeRowPattern(b, v, ~0ULL);
    host_.writeRowPattern(b, aggressor, 0);

    host_.hammer(b, aggressor, opts_.hammerCount);

    for (auto v : victims) {
        const BitVec bits = host_.readRowBits(b, v);
        const size_t flips = bits.size() - bits.popcount();
        result.counts.emplace_back(v, flips);
    }
    std::sort(result.counts.begin(), result.counts.end(),
              [](const auto &a, const auto &b2) {
                  return a.second > b2.second;
              });
    for (const auto &[row, flips] : result.counts) {
        if (flips >= opts_.minFlips && result.neighbors.size() < 2)
            result.neighbors.push_back(row);
    }
    std::sort(result.neighbors.begin(), result.neighbors.end());
    return result;
}

bool
AdjacencyMapper::schemeConsistent(
    dram::RowRemapScheme scheme, dram::RowAddr block_base,
    const std::vector<AdjacencyProbe> &probes) const
{
    for (const auto &p : probes) {
        // Predicted neighbours: the logical rows whose physical
        // address is adjacent to the aggressor's physical address
        // (remap schemes here are involutions).
        const dram::RowAddr phys = remapRow(scheme, p.aggressor);
        std::vector<dram::RowAddr> expect = {
            remapRow(scheme, phys - 1), remapRow(scheme, phys + 1)};
        std::sort(expect.begin(), expect.end());
        if (expect != p.neighbors)
            return false;
    }
    (void)block_base;
    return true;
}

dram::RowRemapScheme
AdjacencyMapper::detectRemapScheme(dram::RowAddr block_base)
{
    fatalIf(block_base % 8 != 0 || block_base < 8,
            "detectRemapScheme: block_base must be 8-aligned, interior");
    std::vector<AdjacencyProbe> probes;
    for (dram::RowAddr r = block_base; r < block_base + 8; ++r)
        probes.push_back(probe(r));

    for (auto scheme :
         {dram::RowRemapScheme::None, dram::RowRemapScheme::MfrA8Blk}) {
        if (schemeConsistent(scheme, block_base, probes))
            return scheme;
    }
    warn("detectRemapScheme: no known scheme matches; assuming None");
    return dram::RowRemapScheme::None;
}

} // namespace core
} // namespace dramscope
