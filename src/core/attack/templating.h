/**
 * @file
 * Memory templating/massaging analysis (SS VI-A).
 *
 * AIB exploits need the victim page physically adjacent to an
 * attacker-controlled aggressor row.  The paper observes that
 * coupled-row activation raises the success probability of the
 * massaging phase: one attacker page reaches victims next to its row
 * AND next to the coupled row.  This module runs that placement
 * experiment on the simulated bank geometry.
 */

#ifndef DRAMSCOPE_CORE_ATTACK_TEMPLATING_H
#define DRAMSCOPE_CORE_ATTACK_TEMPLATING_H

#include <vector>

#include "dram/config.h"
#include "dram/geometry.h"
#include "util/rng.h"

namespace dramscope {
namespace core {

/** Result of one templating simulation. */
struct TemplatingResult
{
    uint64_t trials = 0;
    uint64_t reachable = 0;  //!< Victim adjacent to an attacker row.
    double probability() const
    {
        return trials ? double(reachable) / double(trials) : 0.0;
    }
};

/** Options for the templating analysis. */
struct TemplatingOptions
{
    /** Fraction of the bank's rows the attacker controls. */
    double attackerShare = 0.05;

    /** Placement trials. */
    uint64_t trials = 20000;

    /** Honour the coupled-row relation when computing reach. */
    bool useCoupling = true;

    uint64_t seed = 0x7e3417ULL;
};

/**
 * Monte-Carlo massaging experiment: the attacker owns a random set of
 * rows; a victim row is placed uniformly; success = some attacker row
 * is an AIB aggressor for the victim (directly, or through its
 * coupled partner when enabled).
 */
TemplatingResult simulateTemplating(const dram::DeviceConfig &cfg,
                                    const TemplatingOptions &opts);

} // namespace core
} // namespace dramscope

#endif // DRAMSCOPE_CORE_ATTACK_TEMPLATING_H
