/**
 * @file
 * Templating simulation implementation.
 */

#include "core/attack/templating.h"

#include <unordered_set>

#include "util/log.h"

namespace dramscope {
namespace core {

TemplatingResult
simulateTemplating(const dram::DeviceConfig &cfg,
                   const TemplatingOptions &opts)
{
    fatalIf(opts.attackerShare <= 0.0 || opts.attackerShare >= 1.0,
            "simulateTemplating: share must be in (0, 1)");
    const dram::SubarrayMap map(cfg);
    Rng rng(opts.seed);
    TemplatingResult result;

    const bool coupled =
        opts.useCoupling && cfg.coupledRowDistance.has_value();
    const uint32_t distance = coupled ? *cfg.coupledRowDistance : 0;

    for (uint64_t t = 0; t < opts.trials; ++t) {
        // Fresh pseudo-random attacker allocation per trial (a new
        // massaging run): O(1) membership through a keyed hash
        // instead of materializing the whole row set.
        const uint64_t alloc_key = hashCombine(opts.seed, t);
        auto attacker_owns = [&](dram::RowAddr row) {
            return hashUniform(alloc_key, row) < opts.attackerShare;
        };

        const auto victim = dram::RowAddr(rng.below(cfg.rowsPerBank));
        if (attacker_owns(victim)) {
            ++result.trials;  // Landed on an attacker page: counts as
            continue;         // unreachable for comparability.
        }

        bool reachable = false;
        // A victim is attackable when an attacker row is one of its
        // AIB neighbours — the rows whose activation disturbs it.
        for (const bool upper : {false, true}) {
            if (const auto nb = map.neighbor(victim, upper)) {
                if (attacker_owns(*nb))
                    reachable = true;
                // With coupling, activating the partner address also
                // drives the neighbour's wordline.
                if (coupled && attacker_owns(*nb ^ distance))
                    reachable = true;
            }
        }
        ++result.trials;
        result.reachable += reachable ? 1 : 0;
    }
    return result;
}

} // namespace core
} // namespace dramscope
