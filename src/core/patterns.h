/**
 * @file
 * Adversarial data patterns derived from the paper's observations
 * (O11-O14, SS V-C/V-D, SS VI-A).
 */

#ifndef DRAMSCOPE_CORE_PATTERNS_H
#define DRAMSCOPE_CORE_PATTERNS_H

#include <cstdint>

#include "core/physmap.h"
#include "util/bitvec.h"

namespace dramscope {
namespace core {

/** Builders for the adversarial row contents. */
class AdversarialPatterns
{
  public:
    /**
     * Worst-case whole-row BER pattern (O14): the victim repeats
     * 0x33 and the aggressor 0xCC in physical MAT space — vertically
     * opposite values with a two-bit repeat, which maximizes the
     * distance-two victim influence.
     */
    static constexpr uint8_t worstVictimNibble = 0x3;   // 0b0011
    static constexpr uint8_t worstAggressorNibble = 0xC;  // 0b1100

    /** Host-order victim row for the worst-case BER pattern. */
    static BitVec worstBerVictimRow(const PhysMap &map);

    /** Host-order aggressor row for the worst-case BER pattern. */
    static BitVec worstBerAggressorRow(const PhysMap &map);

    /**
     * Targeted-Hcnt victim row (O13): every cell holds the opposite
     * of @p vic0_value except the target cell at physical position
     * @p target_phys and the rest of its period-5 lattice.
     */
    static BitVec targetedVictimRow(const PhysMap &map,
                                    uint32_t target_phys,
                                    bool vic0_value);

    /**
     * Targeted-Hcnt aggressor row (O13): all cells hold the opposite
     * of @p vic0_value.
     */
    static BitVec targetedAggressorRow(const PhysMap &map,
                                       bool vic0_value);
};

} // namespace core
} // namespace dramscope

#endif // DRAMSCOPE_CORE_PATTERNS_H
