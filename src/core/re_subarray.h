/**
 * @file
 * Subarray-structure reverse engineering through RowCopy (SS IV-C).
 *
 * RowCopy only transfers charge between rows that share sense-amp
 * stripes: all bits within a subarray, half the bits between
 * stripe-sharing subarrays (the open-bitline structure), and none
 * otherwise.  Scanning consecutive row pairs therefore reveals
 * subarray boundaries (half-copy), section boundaries (no copy), the
 * edge-subarray tandem pairs, and whether copies invert the data.
 */

#ifndef DRAMSCOPE_CORE_RE_SUBARRAY_H
#define DRAMSCOPE_CORE_RE_SUBARRAY_H

#include <vector>

#include "bender/host.h"
#include "dram/geometry.h"
#include "util/rng.h"

namespace dramscope {
namespace core {

/** Classified result of one RowCopy probe. */
enum class CopyOutcome { Full, Half, None };

/** Everything the RowCopy scan uncovers about one device. */
struct SubarrayDiscovery
{
    /** Subarray heights of the first edge section, in row order. */
    std::vector<uint32_t> heights;

    /** Rows per edge section (distance between no-copy boundaries). */
    uint32_t sectionRows = 0;

    /** Half-copies observed => open bitline structure (O5 context). */
    bool openBitline = false;

    /** Cross-subarray copies return inverted data (Mfr. A/B). */
    bool copyInvertsData = false;

    /** RowCopy(first row of section, last row of section) == Half. */
    bool edgePairConfirmed = false;
};

/** Options for the subarray mapper. */
struct SubarrayOptions
{
    dram::BankId bank = 0;
    /** Stop scanning after this many rows even without a section
     *  boundary (safety bound; 0 = rowsPerBank). */
    uint32_t scanLimit = 0;

    /**
     * Columns sampled per probe.  Full/half/none classification only
     * needs a sample; each column contributes an exact even/odd
     * bitline split, so eight columns are ample.  0 = all columns.
     */
    uint32_t sampleColumns = 8;

    /** Internal row remap (for the AIB cross-check addressing). */
    dram::RowRemapScheme rowRemap = dram::RowRemapScheme::None;

    /** Hammer count for the AIB cross-check. */
    uint64_t crossCheckHammer = 400000;
};

/** RowCopy-driven structure discovery. */
class SubarrayMapper
{
  public:
    SubarrayMapper(bender::Host &host, SubarrayOptions opts = {});

    /**
     * Probes RowCopy from @p src to @p dst.
     * @param inverted_out When non-null and the outcome is Full or
     *        Half, receives whether copied bits arrived inverted.
     */
    CopyOutcome probeCopy(dram::RowAddr src, dram::RowAddr dst,
                          bool *inverted_out = nullptr);

    /**
     * Scans consecutive row pairs from row 0 until the first no-copy
     * boundary, returning heights, the section size, bitline
     * structure, inversion behaviour and the edge-pair check.
     */
    SubarrayDiscovery discoverFirstSection();

    /**
     * Verifies that the first section's structure repeats across the
     * bank by sampling @p samples random boundary positions.
     */
    bool verifyPeriodicity(const SubarrayDiscovery &d, uint32_t samples,
                           Rng &rng);

    /**
     * AIB cross-validation of a RowCopy-derived boundary (the paper
     * used RowCopy for speed and AIB for validation, SS IV-C): sense
     * amplifiers block disturbance, so hammering the last row below a
     * boundary must flip only its inner neighbour.
     * @param boundary First physical row of a subarray (> 1).
     */
    bool aibCrossCheckBoundary(dram::RowAddr boundary);

  private:
    bender::Host &host_;
    SubarrayOptions opts_;
};

} // namespace core
} // namespace dramscope

#endif // DRAMSCOPE_CORE_RE_SUBARRAY_H
