/**
 * @file
 * Coupled-row detector implementation.
 */

#include "core/re_coupled.h"

#include "util/log.h"

namespace dramscope {
namespace core {

CoupledRowDetector::CoupledRowDetector(bender::Host &host,
                                       CoupledOptions opts)
    : host_(host), opts_(opts)
{
}

bool
CoupledRowDetector::testDistance(uint32_t distance)
{
    const auto &cfg = host_.config();
    const dram::BankId b = opts_.bank;
    const dram::RowAddr aggr = opts_.probeRow;
    fatalIf(uint64_t(aggr) + distance + opts_.window >= cfg.rowsPerBank,
            "testDistance: probe row too high for this distance");
    const dram::RowAddr partner = aggr + distance;

    // Arm victim candidates around the suspected partner with the
    // strong all-ones pattern; the partner itself gets the inverse.
    for (dram::RowAddr r = partner - opts_.window;
         r <= partner + opts_.window; ++r) {
        host_.writeRowPattern(b, r, r == partner ? 0 : ~0ULL);
    }
    host_.writeRowPattern(b, aggr, 0);

    host_.hammer(b, aggr, opts_.hammerCount);

    size_t flips = 0;
    for (dram::RowAddr r = partner - opts_.window;
         r <= partner + opts_.window; ++r) {
        if (r == partner)
            continue;
        const BitVec bits = host_.readRowBits(b, r);
        flips += bits.size() - bits.popcount();
    }
    return flips >= opts_.minFlips;
}

std::optional<uint32_t>
CoupledRowDetector::detect()
{
    const uint32_t n_rows = host_.config().rowsPerBank;
    for (uint32_t distance : {n_rows / 2, n_rows / 4, n_rows / 8}) {
        if (testDistance(distance))
            return distance;
    }
    return std::nullopt;
}

} // namespace core
} // namespace dramscope
