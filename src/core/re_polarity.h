/**
 * @file
 * True-cell / anti-cell classification through retention tests
 * (SS III-B).
 *
 * Charge leaks from the charged state to the discharged state, so
 * after a long refresh-free wait, true cells only show 1 -> 0 flips
 * and anti cells only 0 -> 1 flips.
 */

#ifndef DRAMSCOPE_CORE_RE_POLARITY_H
#define DRAMSCOPE_CORE_RE_POLARITY_H

#include <vector>

#include "bender/host.h"
#include "dram/types.h"

namespace dramscope {
namespace core {

/** Per-probe-row classification. */
struct PolarityProbe
{
    dram::RowAddr row;
    size_t onesToZeros = 0;
    size_t zerosToOnes = 0;
    dram::CellPolarity polarity = dram::CellPolarity::True;
    bool decayed = false;  //!< Any retention flips observed at all.
};

/** Summary over all probe rows. */
struct PolarityResult
{
    std::vector<PolarityProbe> probes;
    bool allTrue = true;
    bool allAnti = true;
    bool mixed = false;  //!< Both polarities present (Mfr. C style).
};

/** Options for the retention classifier. */
struct PolarityOptions
{
    dram::BankId bank = 0;
    double waitMs = 8000.0;  //!< Refresh-free wait (2x median works).
};

/** Retention-based cell polarity classifier. */
class CellTypeClassifier
{
  public:
    CellTypeClassifier(bender::Host &host, PolarityOptions opts = {});

    /**
     * Writes a half-ones/half-zeros pattern to every probe row, waits
     * without refresh, and classifies each row by its decay
     * direction.
     */
    PolarityResult classify(const std::vector<dram::RowAddr> &probe_rows);

  private:
    bender::Host &host_;
    PolarityOptions opts_;
};

} // namespace core
} // namespace dramscope

#endif // DRAMSCOPE_CORE_RE_POLARITY_H
