/**
 * @file
 * Retention profiler implementation.
 */

#include "core/re_retention.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"

namespace dramscope {
namespace core {

RetentionProfiler::RetentionProfiler(bender::Host &host,
                                     RetentionOptions opts)
    : host_(host), opts_(opts)
{
    fatalIf(opts_.waitsMs.empty(), "RetentionProfiler: empty sweep");
    fatalIf(!std::is_sorted(opts_.waitsMs.begin(), opts_.waitsMs.end()),
            "RetentionProfiler: waits must ascend");
}

RetentionProfile
RetentionProfiler::profile()
{
    const dram::BankId b = opts_.bank;
    RetentionProfile out;

    for (const double wait_ms : opts_.waitsMs) {
        RetentionPoint point;
        point.waitMs = wait_ms;

        // Fresh charge for every sweep point: write all-ones (the
        // charged state in true-cell rows; anti-cell rows measure the
        // 0 -> 1 direction symmetrically via the inverse pattern).
        for (uint32_t k = 0; k < opts_.rows; ++k)
            host_.writeRowPattern(b, opts_.baseRow + k, ~0ULL);
        host_.waitMs(wait_ms);
        for (uint32_t k = 0; k < opts_.rows; ++k) {
            const dram::RowAddr row = opts_.baseRow + k;
            const BitVec bits = host_.readRowBits(b, row);
            point.tested += bits.size();
            point.decayed += bits.size() - bits.popcount();
            if (wait_ms <= opts_.weakThresholdMs) {
                for (size_t i = 0; i < bits.size() &&
                                   out.weakCells.size() <
                                       opts_.maxWeakCells;
                     ++i) {
                    if (!bits.get(i))
                        out.weakCells.push_back(
                            {row, uint32_t(i), wait_ms});
                }
            }
        }
        out.curve.push_back(point);
    }

    // Interpolate the median retention time in log-time space.
    for (size_t k = 1; k < out.curve.size(); ++k) {
        const double f0 = out.curve[k - 1].fraction();
        const double f1 = out.curve[k].fraction();
        if (f0 <= 0.5 && f1 >= 0.5 && f1 > f0) {
            const double t0 = std::log(out.curve[k - 1].waitMs);
            const double t1 = std::log(out.curve[k].waitMs);
            const double t =
                t0 + (0.5 - f0) / (f1 - f0) * (t1 - t0);
            out.medianMs = std::exp(t);
            break;
        }
    }
    return out;
}

} // namespace core
} // namespace dramscope
