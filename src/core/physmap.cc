/**
 * @file
 * PhysMap implementation.
 */

#include "core/physmap.h"

#include "util/log.h"

namespace dramscope {
namespace core {

PhysMap::PhysMap(uint32_t row_bits)
{
    host_to_phys_.resize(row_bits);
    phys_to_host_.resize(row_bits);
    for (uint32_t i = 0; i < row_bits; ++i) {
        host_to_phys_[i] = i;
        phys_to_host_[i] = i;
    }
}

PhysMap
PhysMap::fromSwizzle(const dram::Swizzle &swz, uint32_t columns,
                     uint32_t rd_bits)
{
    std::vector<uint32_t> table(size_t(columns) * rd_bits);
    for (uint32_t c = 0; c < columns; ++c) {
        for (uint32_t i = 0; i < rd_bits; ++i)
            table[size_t(c) * rd_bits + i] = swz.physicalBl(c, i);
    }
    return fromTable(std::move(table));
}

PhysMap
PhysMap::tiled(const PhysMap &per_chip, uint32_t copies)
{
    fatalIf(copies == 0, "PhysMap::tiled: zero copies");
    const uint32_t n = per_chip.rowBits();
    std::vector<uint32_t> table(size_t(n) * copies);
    for (uint32_t k = 0; k < copies; ++k) {
        for (uint32_t h = 0; h < n; ++h)
            table[size_t(k) * n + h] = k * n + per_chip.physOf(h);
    }
    return fromTable(std::move(table));
}

PhysMap
PhysMap::fromTable(std::vector<uint32_t> host_to_phys)
{
    PhysMap map(uint32_t(host_to_phys.size()));
    map.host_to_phys_ = std::move(host_to_phys);
    std::vector<bool> seen(map.host_to_phys_.size(), false);
    for (uint32_t h = 0; h < map.host_to_phys_.size(); ++h) {
        const uint32_t p = map.host_to_phys_[h];
        fatalIf(p >= map.host_to_phys_.size() || seen[p],
                "PhysMap: table is not a permutation");
        seen[p] = true;
        map.phys_to_host_[p] = h;
    }
    return map;
}

BitVec
PhysMap::toPhysical(const BitVec &host_bits) const
{
    panicIf(host_bits.size() != host_to_phys_.size(),
            "PhysMap::toPhysical: size mismatch");
    BitVec out(host_bits.size());
    for (uint32_t h = 0; h < host_bits.size(); ++h)
        out.set(host_to_phys_[h], host_bits.get(h));
    return out;
}

BitVec
PhysMap::toHost(const BitVec &phys_bits) const
{
    panicIf(phys_bits.size() != phys_to_host_.size(),
            "PhysMap::toHost: size mismatch");
    BitVec out(phys_bits.size());
    for (uint32_t p = 0; p < phys_bits.size(); ++p)
        out.set(phys_to_host_[p], phys_bits.get(p));
    return out;
}

BitVec
PhysMap::hostBitsForPhysicalPattern(uint64_t pattern,
                                    unsigned pattern_bits) const
{
    BitVec phys(rowBits());
    phys.fillPattern(pattern, pattern_bits);
    return toHost(phys);
}

} // namespace core
} // namespace dramscope
