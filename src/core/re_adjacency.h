/**
 * @file
 * Row-adjacency and internal-remap reverse engineering (common
 * pitfall (2), SS III-C).
 *
 * Method of the paper: single-sided RowHammer on a row; the two rows
 * with the most errors are its physically adjacent rows.  Probing a
 * block of rows reconstructs the chip's internal logical-to-physical
 * row remapping.
 */

#ifndef DRAMSCOPE_CORE_RE_ADJACENCY_H
#define DRAMSCOPE_CORE_RE_ADJACENCY_H

#include <vector>

#include "bender/host.h"
#include "dram/config.h"

namespace dramscope {
namespace core {

/** Error counts observed around a hammered row. */
struct AdjacencyProbe
{
    dram::RowAddr aggressor;
    /** (logical row, flip count), sorted by flips descending. */
    std::vector<std::pair<dram::RowAddr, size_t>> counts;
    /** Logical rows judged physically adjacent (1 or 2 entries). */
    std::vector<dram::RowAddr> neighbors;
};

/** Options for the adjacency mapper. */
struct AdjacencyOptions
{
    dram::BankId bank = 0;
    uint64_t hammerCount = 600000;
    uint32_t window = 4;       //!< Rows scanned on each side.
    size_t minFlips = 3;       //!< Flips needed to call a row adjacent.
};

/** Discovers physical row adjacency through the command interface. */
class AdjacencyMapper
{
  public:
    AdjacencyMapper(bender::Host &host, AdjacencyOptions opts = {});

    /**
     * Hammers @p aggressor and scans the logical window around it for
     * bitflips.
     */
    AdjacencyProbe probe(dram::RowAddr aggressor);

    /**
     * Identifies the internal remap scheme by probing one aligned
     * 8-row block (plus margins).  @p block_base must be 8-aligned
     * and interior to a subarray.
     */
    dram::RowRemapScheme detectRemapScheme(dram::RowAddr block_base = 16);

  private:
    /** True when @p scheme predicts all measured neighbour sets. */
    bool schemeConsistent(dram::RowRemapScheme scheme,
                          dram::RowAddr block_base,
                          const std::vector<AdjacencyProbe> &probes) const;

    bender::Host &host_;
    AdjacencyOptions opts_;
};

} // namespace core
} // namespace dramscope

#endif // DRAMSCOPE_CORE_RE_ADJACENCY_H
