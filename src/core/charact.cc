/**
 * @file
 * Characterization suite implementation.
 */

#include "core/charact.h"

#include <algorithm>

#include "util/log.h"
#include "util/stats.h"

namespace dramscope {
namespace core {

Characterization::Characterization(bender::Host &host, PhysMap map,
                                   CharactOptions opts)
    : host_(host), map_(std::move(map)), opts_(opts),
      sweep_(host, SweepOptions{opts.jobs, opts.sweepSeed,
                                opts.deviceFactory})
{
    row_bits_ = host_.config().rowBits;
    fatalIf(map_.rowBits() != row_bits_,
            "Characterization: PhysMap size mismatch");
}

dram::RowAddr
Characterization::logicalOf(dram::RowAddr phys) const
{
    return dram::remapRow(opts_.rowRemap, phys);
}

AttackResult
Characterization::runAttack(dram::AibMechanism mech, bool upper_aggressor,
                            bool victim_even_wl, const BitVec &victim_bits,
                            const BitVec &aggr_bits, uint64_t count,
                            double open_ns)
{
    const auto &cfg = host_.config();
    const dram::BankId b = opts_.bank;
    AttackResult result;
    result.flipsPerHostBit.assign(row_bits_, 0);
    result.cellsPerRow = row_bits_;

    // Group layout in physical space: victim and its single-sided
    // aggressor, padded so neighbouring groups never interact.  The
    // whole lattice is shifted to pin the victims' wordline parity.
    const uint32_t victim_off = upper_aggressor ? 1 : 2;
    const uint32_t aggr_off = upper_aggressor ? 2 : 1;
    const uint32_t want_parity = victim_even_wl ? 0 : 1;
    const uint32_t shift =
        (want_parity - ((opts_.baseRow + victim_off) & 1)) & 1;

    // Bound-check the whole probe region up front so the failure mode
    // is identical whichever shard would hit it first.
    if (opts_.victimRows > 0) {
        const dram::RowAddr last =
            opts_.baseRow + shift + 4 * (opts_.victimRows - 1) + 2;
        fatalIf(last >= cfg.rowsPerBank,
                "runAttack: probe region exceeds the bank");
    }

    // One self-contained sweep unit per victim group: each writes both
    // of its rows before hammering and reading, so a thread-local
    // replica yields the same bits as the serial shared host.
    // RowPress is the same command kernel with a long open time.
    (void)mech;
    const auto diffs = sweep_.map<BitVec>(
        opts_.victimRows, [&](ShardContext &ctx) {
            const dram::RowAddr group =
                opts_.baseRow + shift + 4 * ctx.shard;
            const dram::RowAddr victim_phys = group + victim_off;
            const dram::RowAddr aggr_phys = group + aggr_off;

            ctx.host.writeRowBits(b, logicalOf(victim_phys), victim_bits);
            ctx.host.writeRowBits(b, logicalOf(aggr_phys), aggr_bits);
            ctx.host.hammer(b, logicalOf(aggr_phys), count, open_ns);

            BitVec diff = ctx.host.readRowBits(b, logicalOf(victim_phys));
            diff ^= victim_bits;
            return diff;
        });

    // Merge in shard order.
    for (uint32_t g = 0; g < opts_.victimRows; ++g) {
        for (const size_t i : diffs[g].onesPositions())
            ++result.flipsPerHostBit[i];
        result.physRows.push_back(opts_.baseRow + shift + 4 * g +
                                  victim_off);
        ++result.rows;
    }
    return result;
}

std::vector<double>
Characterization::berVsPhysIndex(dram::AibMechanism mech,
                                 bool victim_data_one, bool upper_aggressor,
                                 uint32_t modulo, bool victim_even_wl)
{
    BitVec victim(row_bits_, victim_data_one);
    BitVec aggr(row_bits_, !victim_data_one);
    const bool hammer = mech == dram::AibMechanism::RowHammer;
    const AttackResult r = runAttack(
        mech, upper_aggressor, victim_even_wl, victim, aggr,
        hammer ? opts_.hammerCount : opts_.pressCount,
        hammer ? opts_.hammerOpenNs : opts_.pressOpenNs);

    std::vector<double> ber(modulo, 0.0);
    std::vector<uint64_t> cells(modulo, 0);
    for (uint32_t i = 0; i < row_bits_; ++i) {
        const uint32_t k = map_.physOf(i) % modulo;
        ber[k] += r.flipsPerHostBit[i];
        cells[k] += r.rows;
    }
    for (uint32_t k = 0; k < modulo; ++k)
        ber[k] = cells[k] ? ber[k] / double(cells[k]) : 0.0;
    return ber;
}

GateTypeBer
Characterization::gateTypeBer(dram::AibMechanism mech)
{
    GateTypeBer out;
    const bool hammer = mech == dram::AibMechanism::RowHammer;
    const uint64_t count = hammer ? opts_.hammerCount : opts_.pressCount;
    const double open_ns =
        hammer ? opts_.hammerOpenNs : opts_.pressOpenNs;

    for (const bool data_one : {false, true}) {
        BitErrorRate ber_a, ber_b;
        for (const bool upper : {false, true}) {
            BitVec victim(row_bits_, data_one);
            BitVec aggr(row_bits_, !data_one);
            const AttackResult r = runAttack(mech, upper, true, victim,
                                             aggr, count, open_ns);
            for (uint32_t i = 0; i < row_bits_; ++i) {
                const uint32_t bl = map_.physOf(i);
                // 6F^2 analysis (paper Figure 11): for an even WL,
                // even-bitline cells see their upper wordline as one
                // gate type and odd-bitline cells the other.  We
                // label them A and B; the paper cannot determine
                // which physical type each is, and neither can we.
                const bool gate_a = ((bl & 1) == 0) == upper;
                auto &acc = gate_a ? ber_a : ber_b;
                acc.add(r.flipsPerHostBit[i], r.rows);
            }
        }
        if (data_one) {
            out.chargedGateA = ber_a.value();
            out.chargedGateB = ber_b.value();
        } else {
            out.dischargedGateA = ber_a.value();
            out.dischargedGateB = ber_b.value();
        }
    }
    return out;
}

EdgeBerResult
Characterization::edgeVsTypical(
    const std::vector<dram::RowAddr> &typical_aggressors,
    const std::vector<dram::RowAddr> &edge_aggressors)
{
    EdgeBerResult out;
    const dram::BankId b = opts_.bank;

    auto measure = [&](const std::vector<dram::RowAddr> &aggressors,
                       bool victim_one) {
        BitVec victim(row_bits_, victim_one);
        BitVec aggr(row_bits_, !victim_one);
        // One sweep unit per aggressor row; integer flip counts merge
        // associatively, so the shard-order sum is bit-identical to
        // the serial accumulation.
        const auto flips = sweep_.map<uint64_t>(
            uint32_t(aggressors.size()),
            [&](ShardContext &ctx) -> uint64_t {
                const dram::RowAddr aggr_phys = aggressors[ctx.shard];
                const dram::RowAddr victim_phys = aggr_phys + 1;
                ctx.host.writeRowBits(b, logicalOf(victim_phys), victim);
                ctx.host.writeRowBits(b, logicalOf(aggr_phys), aggr);
                ctx.host.hammer(b, logicalOf(aggr_phys),
                                opts_.hammerCount, opts_.hammerOpenNs);
                const BitVec read =
                    ctx.host.readRowBits(b, logicalOf(victim_phys));
                return read.hammingDistance(victim);
            });
        BitErrorRate ber;
        for (const uint64_t f : flips)
            ber.add(f, row_bits_);
        return ber.value();
    };

    out.typicalAggr0Vic1 = measure(typical_aggressors, true);
    out.edgeAggr0Vic1 = measure(edge_aggressors, true);
    out.typicalAggr1Vic0 = measure(typical_aggressors, false);
    out.edgeAggr1Vic0 = measure(edge_aggressors, false);
    return out;
}

BitVec
Characterization::lattice(bool vic0, bool d1_opposite,
                          bool d2_opposite) const
{
    // Period-5 physical pattern: position 0 is Vic0, positions 1/4
    // its distance-1 neighbours, positions 2/3 its distance-2
    // neighbours (of the *next* lattice point on the other side).
    uint64_t pattern = 0;
    const bool d1 = vic0 ^ d1_opposite;
    const bool d2 = vic0 ^ d2_opposite;
    const bool bits[5] = {vic0, d1, d2, d2, d1};
    for (int k = 0; k < 5; ++k) {
        if (bits[k])
            pattern |= 1ULL << k;
    }
    return map_.hostBitsForPhysicalPattern(pattern, 5);
}

std::vector<uint32_t>
Characterization::latticePositions() const
{
    std::vector<uint32_t> out;
    for (uint32_t i = 0; i < row_bits_; ++i) {
        if (map_.physOf(i) % 5 == 0)
            out.push_back(i);
    }
    return out;
}

double
Characterization::relativeBerVictimNeighbors(bool vic0_one,
                                             bool dist1_opposite,
                                             bool dist2_opposite)
{
    const auto positions = latticePositions();
    BitVec aggr(row_bits_, !vic0_one);

    auto measure = [&](bool d1, bool d2) {
        const BitVec victim = lattice(vic0_one, d1, d2);
        const AttackResult r =
            runAttack(dram::AibMechanism::RowHammer, true, true, victim,
                      aggr, opts_.hammerCount, opts_.hammerOpenNs);
        uint64_t flips = 0;
        for (uint32_t i : positions)
            flips += r.flipsPerHostBit[i];
        return double(flips) / double(positions.size() * r.rows);
    };

    const double base = measure(false, false);
    const double variant = measure(dist1_opposite, dist2_opposite);
    return base > 0 ? variant / base : 0.0;
}

double
Characterization::relativeBerAggrNeighbors(bool vic0_one, bool aggr0_same,
                                           bool aggr1_same,
                                           bool aggr2_same)
{
    const auto positions = latticePositions();
    BitVec victim(row_bits_, vic0_one);

    auto aggr_lattice = [&](bool a0, bool a1, bool a2) {
        // Baseline aggressor value is the inverse of Vic0; selected
        // cells switch to Vic0's value.
        const bool inv = !vic0_one;
        const bool bits[5] = {a0 ? vic0_one : inv, a1 ? vic0_one : inv,
                              a2 ? vic0_one : inv, a2 ? vic0_one : inv,
                              a1 ? vic0_one : inv};
        uint64_t pattern = 0;
        for (int k = 0; k < 5; ++k) {
            if (bits[k])
                pattern |= 1ULL << k;
        }
        return map_.hostBitsForPhysicalPattern(pattern, 5);
    };

    auto measure = [&](bool a0, bool a1, bool a2) {
        const BitVec aggr = aggr_lattice(a0, a1, a2);
        const AttackResult r =
            runAttack(dram::AibMechanism::RowHammer, true, true, victim,
                      aggr, opts_.hammerCount, opts_.hammerOpenNs);
        uint64_t flips = 0;
        for (uint32_t i : positions)
            flips += r.flipsPerHostBit[i];
        return double(flips) / double(positions.size() * r.rows);
    };

    const double base = measure(false, false, false);
    const double variant = measure(aggr0_same, aggr1_same, aggr2_same);
    return base > 0 ? variant / base : 0.0;
}

uint64_t
Characterization::hcntForGroup(bender::Host &host,
                               dram::RowAddr victim_phys, bool upper,
                               const BitVec &victim_bits,
                               const BitVec &aggr_bits,
                               const std::vector<uint32_t> &vic0_positions)
{
    const dram::BankId b = opts_.bank;
    const dram::RowAddr aggr_phys =
        upper ? victim_phys + 1 : victim_phys - 1;

    auto probe = [&](uint64_t count) {
        host.writeRowBits(b, logicalOf(victim_phys), victim_bits);
        host.writeRowBits(b, logicalOf(aggr_phys), aggr_bits);
        host.hammer(b, logicalOf(aggr_phys), count,
                    opts_.hammerOpenNs);
        const BitVec read = host.readRowBits(b, logicalOf(victim_phys));
        for (uint32_t i : vic0_positions) {
            if (read.get(i) != victim_bits.get(i))
                return true;
        }
        return false;
    };

    uint64_t lo = 1, hi = 1u << 21;  // ~2M ACTs upper bound.
    if (!probe(hi))
        return hi;
    while (lo + 1 < hi) {
        const uint64_t mid = lo + (hi - lo) / 2;
        if (probe(mid))
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

double
Characterization::medianHcnt(const BitVec &victim_bits,
                             const BitVec &aggr_bits)
{
    const auto positions = latticePositions();
    const uint32_t groups = std::min<uint32_t>(opts_.victimRows, 24);
    // One binary search per group, sharded; the median is taken over
    // the shard-ordered results.
    std::vector<double> hcnts = sweep_.map<double>(
        groups, [&](ShardContext &ctx) {
            const dram::RowAddr victim_phys =
                opts_.baseRow + 4 * ctx.shard + 1;
            return double(hcntForGroup(ctx.host, victim_phys, true,
                                       victim_bits, aggr_bits,
                                       positions));
        });
    return median(std::move(hcnts));
}

double
Characterization::relativeHcnt(bool vic0_one, bool dist1_opposite,
                               bool dist2_opposite)
{
    // Paired per-group measurement: the same victim cells are probed
    // under the baseline and the variant pattern, so cell-to-cell
    // threshold variation cancels exactly in the per-group ratio.
    const auto positions = latticePositions();
    const BitVec aggr(row_bits_, !vic0_one);
    const BitVec base_bits = lattice(vic0_one, false, false);
    const BitVec var_bits =
        lattice(vic0_one, dist1_opposite, dist2_opposite);

    const uint32_t groups = std::min<uint32_t>(opts_.victimRows, 24);
    // Each shard measures its group under both patterns on the same
    // device, preserving the exact per-group pairing of the serial
    // path; a negative sentinel marks groups without a baseline.
    const auto raw = sweep_.map<double>(
        groups, [&](ShardContext &ctx) {
            const dram::RowAddr victim_phys =
                opts_.baseRow + 4 * ctx.shard + 1;
            const uint64_t base = hcntForGroup(ctx.host, victim_phys,
                                               true, base_bits, aggr,
                                               positions);
            const uint64_t variant = hcntForGroup(ctx.host, victim_phys,
                                                  true, var_bits, aggr,
                                                  positions);
            return base > 0 ? double(variant) / double(base) : -1.0;
        });
    std::vector<double> ratios;
    for (const double r : raw) {
        if (r >= 0.0)
            ratios.push_back(r);
    }
    return median(std::move(ratios));
}

double
Characterization::patternBer(uint8_t victim_nibble, uint8_t aggr_nibble)
{
    const BitVec victim =
        map_.hostBitsForPhysicalPattern(victim_nibble & 0xF, 4);
    const BitVec aggr =
        map_.hostBitsForPhysicalPattern(aggr_nibble & 0xF, 4);
    // The paper sweeps many victim rows, which mixes both wordline
    // parities; a fixed parity would bias patterns whose charge
    // layout happens to align with one gate phase.
    uint64_t flips = 0, cells = 0;
    for (const bool even_wl : {false, true}) {
        const AttackResult r = runAttack(
            dram::AibMechanism::RowHammer, true, even_wl, victim, aggr,
            opts_.hammerCount, opts_.hammerOpenNs);
        for (uint32_t i = 0; i < row_bits_; ++i)
            flips += r.flipsPerHostBit[i];
        cells += uint64_t(r.rows) * row_bits_;
    }
    return double(flips) / double(cells);
}

} // namespace core
} // namespace dramscope
