/**
 * @file
 * A registered DIMM: a rank of identical chips behind an RCD, with
 * per-chip DQ twisting.  The 64-bit data bus splits evenly across
 * chips (16 x4 chips or 8 x8 chips per rank).
 */

#ifndef DRAMSCOPE_MAPPING_DIMM_H
#define DRAMSCOPE_MAPPING_DIMM_H

#include <memory>
#include <vector>

#include "dram/chip.h"
#include "mapping/dq_twist.h"
#include "mapping/rcd.h"

namespace dramscope {
namespace mapping {

/** One rank of chips behind an RCD. */
class Dimm
{
  public:
    /**
     * @param chip_cfg Configuration shared by every chip.
     * @param rcd_inversion Enable the B-side address inversion.
     * @param identity_twist Route every chip's DQ straight (test aid).
     */
    explicit Dimm(dram::DeviceConfig chip_cfg, bool rcd_inversion = true,
                  bool identity_twist = false);

    /** Number of chips in the rank. */
    uint32_t chipCount() const { return uint32_t(chips_.size()); }

    /** True when chip @p c sits on the RCD's B side. */
    bool isBSide(uint32_t c) const { return c >= chipCount() / 2; }

    /** Broadcast ACT: each chip receives its side's row address. */
    void act(dram::BankId b, dram::RowAddr host_row, dram::NanoTime now);

    /** Broadcast PRE. */
    void pre(dram::BankId b, dram::NanoTime now);

    /** Broadcast REF. */
    void refresh(dram::NanoTime now);

    /**
     * Reads the host-visible RD_data of every chip (DQ twist
     * applied).  The vector is indexed by chip.
     */
    std::vector<uint64_t> read(dram::BankId b, dram::ColAddr col,
                               dram::NanoTime now);

    /** Writes per-chip host-visible RD_data (DQ twist applied). */
    void write(dram::BankId b, dram::ColAddr col,
               const std::vector<uint64_t> &host_data,
               dram::NanoTime now);

    /** Row address chip @p c receives for host row @p host_row. */
    dram::RowAddr chipRow(uint32_t c, dram::RowAddr host_row) const;

    /** Host row that makes chip @p c see @p chip_row. */
    dram::RowAddr hostRowFor(uint32_t c, dram::RowAddr chip_row) const;

    /** The RCD model. */
    const Rcd &rcd() const { return rcd_; }

    /** DQ twist of chip @p c. */
    const DqTwist &twist(uint32_t c) const { return twists_.at(c); }

    /** Direct chip access (single-chip experiments, tests). */
    dram::Chip &chip(uint32_t c) { return *chips_.at(c); }

    /** Chip configuration. */
    const dram::DeviceConfig &config() const { return cfg_; }

  private:
    dram::DeviceConfig cfg_;
    Rcd rcd_;
    std::vector<std::unique_ptr<dram::Chip>> chips_;
    std::vector<DqTwist> twists_;
};

} // namespace mapping
} // namespace dramscope

#endif // DRAMSCOPE_MAPPING_DIMM_H
