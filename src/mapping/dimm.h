/**
 * @file
 * A registered DIMM: a rank of identical chips behind an RCD, with
 * per-chip DQ twisting.  The 64-bit data bus splits evenly across
 * chips (16 x4 chips or 8 x8 chips per rank).
 *
 * The rank is itself a dram::Device: commands broadcast to every chip
 * (ACT rows pass through the RCD's per-side address inversion) and
 * the data path exposes the rank as one wide row — device column
 * space is chip-major, so columns [c * columnsPerRow, (c + 1) *
 * columnsPerRow) address chip c and each RD/WR moves one chip's
 * RD_data burst with that chip's DQ twist applied.  The full 64-bit
 * bus view of a beat is the per-chip bursts side by side, which a
 * host reassembles by reading the same chip-relative column from
 * every chip's column range.
 */

#ifndef DRAMSCOPE_MAPPING_DIMM_H
#define DRAMSCOPE_MAPPING_DIMM_H

#include <memory>
#include <vector>

#include "dram/chip.h"
#include "dram/device.h"
#include "mapping/dq_twist.h"
#include "mapping/rcd.h"

namespace dramscope {
namespace mapping {

/** One rank of chips behind an RCD, exposed as a single Device. */
class Dimm final : public dram::Device
{
  public:
    /**
     * @param chip_cfg Configuration shared by every chip.
     * @param rcd_inversion Enable the B-side address inversion.
     * @param identity_twist Route every chip's DQ straight (test aid).
     */
    explicit Dimm(dram::DeviceConfig chip_cfg, bool rcd_inversion = true,
                  bool identity_twist = false);

    /** Number of chips in the rank. */
    uint32_t chipCount() const { return uint32_t(chips_.size()); }

    /** True when chip @p c sits on the RCD's B side. */
    bool isBSide(uint32_t c) const { return c >= chipCount() / 2; }

    /// @name Device interface (rank-level command/data view).
    /// @{

    /**
     * Rank-level geometry: rowBits and matWidth scale by chipCount()
     * (device columns are chip-major), rows/banks/timing match the
     * chip configuration.
     */
    const dram::DeviceConfig &config() const override
    {
        return bus_cfg_;
    }

    /** Broadcast ACT: each chip receives its side's row address. */
    void act(dram::BankId b, dram::RowAddr host_row,
             dram::NanoTime now) override;

    /** Broadcast PRE. */
    void pre(dram::BankId b, dram::NanoTime now) override;

    /** Broadcast REF. */
    void refresh(dram::NanoTime now) override;

    /**
     * Reads one chip's RD_data at device column @p col (chip
     * col / columnsPerRow, chip-relative column col % columnsPerRow),
     * DQ twist applied.
     */
    uint64_t read(dram::BankId b, dram::ColAddr col,
                  dram::NanoTime now) override;

    /** Writes one chip's RD_data at device column @p col. */
    void write(dram::BankId b, dram::ColAddr col, uint64_t data,
               dram::NanoTime now) override;

    /** Broadcast bulk hammer: every chip runs its exact fast path
     *  with its side's row address. */
    void actMany(const dram::ActTrain &train) override;

    /** Broadcast analytic bulk hammer. */
    void actManyAnalytic(const dram::ActTrain &train) override;

    /** Sum of per-chip timing violations. */
    uint64_t violationCount() const override;

    /** Per-chip violation logs, concatenated with a chip prefix. */
    std::vector<dram::TimingViolation> violationLog() const override;

    /**
     * In-DRAM mitigation, rank-wide: every chip restores the
     * neighbours of its own (side-translated) view of @p host_row.
     */
    uint32_t refreshAggressorNeighbors(dram::BankId b,
                                       dram::RowAddr host_row,
                                       dram::NanoTime now) override;

    /// @}

    /**
     * Reads the host-visible RD_data of every chip at one
     * chip-relative column (DQ twist applied).  Indexed by chip.
     */
    std::vector<uint64_t> readChips(dram::BankId b, dram::ColAddr col,
                                    dram::NanoTime now);

    /** Writes per-chip host-visible RD_data (DQ twist applied). */
    void writeChips(dram::BankId b, dram::ColAddr col,
                    const std::vector<uint64_t> &host_data,
                    dram::NanoTime now);

    /** Row address chip @p c receives for host row @p host_row. */
    dram::RowAddr chipRow(uint32_t c, dram::RowAddr host_row) const;

    /** Host row that makes chip @p c see @p chip_row. */
    dram::RowAddr hostRowFor(uint32_t c, dram::RowAddr chip_row) const;

    /** The RCD model. */
    const Rcd &rcd() const { return rcd_; }

    /** DQ twist of chip @p c. */
    const DqTwist &twist(uint32_t c) const { return twists_.at(c); }

    /** Direct chip access (single-chip experiments, tests). */
    dram::Chip &chip(uint32_t c) { return *chips_.at(c); }
    const dram::Chip &chip(uint32_t c) const { return *chips_.at(c); }

    /** Per-chip configuration (the rank view is config()). */
    const dram::DeviceConfig &chipConfig() const { return cfg_; }

  private:
    /** Device column -> (chip, chip-relative column). */
    uint32_t chipOfCol(dram::ColAddr col) const;
    dram::ColAddr chipCol(dram::ColAddr col) const;

    dram::DeviceConfig cfg_;      //!< Per-chip configuration.
    dram::DeviceConfig bus_cfg_;  //!< Rank-level Device view.
    Rcd rcd_;
    std::vector<std::unique_ptr<dram::Chip>> chips_;
    std::vector<DqTwist> twists_;
};

} // namespace mapping
} // namespace dramscope

#endif // DRAMSCOPE_MAPPING_DIMM_H
