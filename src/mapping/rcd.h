/**
 * @file
 * Registered clock driver (RCD) model: B-side address inversion
 * (common pitfall (1), Figure 5).
 *
 * The RCD of an RDIMM/LRDIMM re-drives command/address signals to the
 * two sides of the module.  With the (default-on) inversion feature,
 * B-side chips receive inverted row address bits, which conserves
 * power by balancing simultaneous output switching.  Reverse
 * engineering that ignores this observes phantom effects such as
 * "non-adjacent RowHammer" and "half rows".
 */

#ifndef DRAMSCOPE_MAPPING_RCD_H
#define DRAMSCOPE_MAPPING_RCD_H

#include <cstdint>

#include "dram/types.h"

namespace dramscope {
namespace mapping {

/** RCD address-inversion behaviour. */
class Rcd
{
  public:
    /**
     * @param row_bits Number of row address bits on the bus.
     * @param inversion_enabled JEDEC default is enabled.
     */
    Rcd(uint32_t row_bits, bool inversion_enabled = true)
        : mask_(inversion_enabled ? ((1u << row_bits) - 1) : 0u)
    {
    }

    /** Row address a chip on the given side receives. */
    dram::RowAddr
    chipRow(dram::RowAddr host_row, bool b_side) const
    {
        return b_side ? (host_row ^ mask_) : host_row;
    }

    /**
     * Host row address that makes the chip on the given side see
     * @p chip_row (the inversion is an involution).
     */
    dram::RowAddr
    hostRowFor(dram::RowAddr chip_row, bool b_side) const
    {
        return chipRow(chip_row, b_side);
    }

    /** True when inversion is active. */
    bool inversionEnabled() const { return mask_ != 0; }

    /** The inversion mask applied to B-side rows. */
    uint32_t mask() const { return mask_; }

  private:
    uint32_t mask_;
};

} // namespace mapping
} // namespace dramscope

#endif // DRAMSCOPE_MAPPING_RCD_H
