/**
 * @file
 * Per-chip DQ pin twisting (common pitfall (3), Figure 5c).
 *
 * DIMM routing remaps the DQ lanes between the edge connector and
 * each chip, so the same host data pattern arrives differently
 * arranged at different chips (0x55 may arrive as 0x33, 0xCC, ...).
 * The twist permutes the *lane* of every beat of a burst.
 */

#ifndef DRAMSCOPE_MAPPING_DQ_TWIST_H
#define DRAMSCOPE_MAPPING_DQ_TWIST_H

#include <cstdint>
#include <vector>

#include "dram/types.h"
#include "util/log.h"
#include "util/rng.h"

namespace dramscope {
namespace mapping {

/** Lane permutation between host-side and chip-side data. */
class DqTwist
{
  public:
    /**
     * Builds the twist of chip @p chip_index on a module.  Chip 0 is
     * routed straight; other chips get a deterministic pseudo-random
     * lane permutation derived from the index, reflecting that board
     * routing differs per chip position.
     */
    DqTwist(dram::ChipWidth width, uint32_t chip_index)
        : lanes_(uint32_t(width))
    {
        perm_.resize(lanes_);
        for (uint32_t i = 0; i < lanes_; ++i)
            perm_[i] = i;
        if (chip_index != 0) {
            Rng rng(hashCombine(0xd9d9ULL, chip_index));
            for (uint32_t i = lanes_ - 1; i > 0; --i) {
                const auto j = uint32_t(rng.below(i + 1));
                std::swap(perm_[i], perm_[j]);
            }
        }
        inv_.resize(lanes_);
        for (uint32_t i = 0; i < lanes_; ++i)
            inv_[perm_[i]] = i;
    }

    /** Explicit permutation constructor (tests). */
    DqTwist(dram::ChipWidth width, std::vector<uint32_t> perm)
        : lanes_(uint32_t(width)), perm_(std::move(perm))
    {
        fatalIf(perm_.size() != lanes_, "DqTwist: bad permutation size");
        inv_.resize(lanes_);
        std::vector<bool> seen(lanes_, false);
        for (uint32_t i = 0; i < lanes_; ++i) {
            fatalIf(perm_[i] >= lanes_ || seen[perm_[i]],
                    "DqTwist: not a permutation");
            seen[perm_[i]] = true;
            inv_[perm_[i]] = i;
        }
    }

    /** Converts host-side RD_data to the arrangement the chip sees. */
    uint64_t
    toChip(uint64_t host_data, uint32_t rd_bits) const
    {
        return permute(host_data, rd_bits, perm_);
    }

    /** Converts chip-side RD_data back to the host arrangement. */
    uint64_t
    toHost(uint64_t chip_data, uint32_t rd_bits) const
    {
        return permute(chip_data, rd_bits, inv_);
    }

    /** Chip-side bit position of host-side RD_data bit @p host_bit. */
    uint32_t
    chipBit(uint32_t host_bit) const
    {
        const uint32_t beat = host_bit / lanes_;
        const uint32_t lane = host_bit % lanes_;
        return beat * lanes_ + perm_[lane];
    }

    /** Host-side bit position of chip-side bit @p chip_bit. */
    uint32_t
    hostBit(uint32_t chip_bit) const
    {
        const uint32_t beat = chip_bit / lanes_;
        const uint32_t lane = chip_bit % lanes_;
        return beat * lanes_ + inv_[lane];
    }

    /** True when the twist is the identity. */
    bool
    isIdentity() const
    {
        for (uint32_t i = 0; i < lanes_; ++i) {
            if (perm_[i] != i)
                return false;
        }
        return true;
    }

  private:
    uint64_t
    permute(uint64_t data, uint32_t rd_bits,
            const std::vector<uint32_t> &perm) const
    {
        uint64_t out = 0;
        for (uint32_t i = 0; i < rd_bits; ++i) {
            if ((data >> i) & 1ULL) {
                const uint32_t beat = i / lanes_;
                const uint32_t lane = i % lanes_;
                out |= 1ULL << (beat * lanes_ + perm[lane]);
            }
        }
        return out;
    }

    uint32_t lanes_;
    std::vector<uint32_t> perm_;
    std::vector<uint32_t> inv_;
};

} // namespace mapping
} // namespace dramscope

#endif // DRAMSCOPE_MAPPING_DQ_TWIST_H
