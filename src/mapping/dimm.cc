/**
 * @file
 * DIMM implementation.
 */

#include "mapping/dimm.h"

#include <bit>

#include "util/log.h"

namespace dramscope {
namespace mapping {

namespace {

uint32_t
rowAddressBits(uint32_t rows_per_bank)
{
    fatalIf(!std::has_single_bit(rows_per_bank),
            "Dimm: rowsPerBank must be a power of two");
    return uint32_t(std::countr_zero(rows_per_bank));
}

} // namespace

Dimm::Dimm(dram::DeviceConfig chip_cfg, bool rcd_inversion,
           bool identity_twist)
    : cfg_(std::move(chip_cfg)),
      rcd_(rowAddressBits(cfg_.rowsPerBank), rcd_inversion)
{
    const uint32_t n_chips = 64 / uint32_t(cfg_.width);
    for (uint32_t c = 0; c < n_chips; ++c) {
        chips_.push_back(std::make_unique<dram::Chip>(cfg_));
        if (identity_twist)
            twists_.emplace_back(cfg_.width, 0u);
        else
            twists_.emplace_back(cfg_.width, c);
    }
}

dram::RowAddr
Dimm::chipRow(uint32_t c, dram::RowAddr host_row) const
{
    return rcd_.chipRow(host_row, isBSide(c));
}

dram::RowAddr
Dimm::hostRowFor(uint32_t c, dram::RowAddr chip_row) const
{
    return rcd_.hostRowFor(chip_row, isBSide(c));
}

void
Dimm::act(dram::BankId b, dram::RowAddr host_row, dram::NanoTime now)
{
    for (uint32_t c = 0; c < chipCount(); ++c)
        chips_[c]->act(b, chipRow(c, host_row), now);
}

void
Dimm::pre(dram::BankId b, dram::NanoTime now)
{
    for (auto &chip : chips_)
        chip->pre(b, now);
}

void
Dimm::refresh(dram::NanoTime now)
{
    for (auto &chip : chips_)
        chip->refresh(now);
}

std::vector<uint64_t>
Dimm::read(dram::BankId b, dram::ColAddr col, dram::NanoTime now)
{
    std::vector<uint64_t> out(chipCount());
    for (uint32_t c = 0; c < chipCount(); ++c) {
        const uint64_t chip_data = chips_[c]->read(b, col, now);
        out[c] = twists_[c].toHost(chip_data, cfg_.rdDataBits);
    }
    return out;
}

void
Dimm::write(dram::BankId b, dram::ColAddr col,
            const std::vector<uint64_t> &host_data, dram::NanoTime now)
{
    fatalIf(host_data.size() != chipCount(),
            "Dimm::write: data vector size mismatch");
    for (uint32_t c = 0; c < chipCount(); ++c) {
        chips_[c]->write(b, col,
                         twists_[c].toChip(host_data[c], cfg_.rdDataBits),
                         now);
    }
}

} // namespace mapping
} // namespace dramscope
