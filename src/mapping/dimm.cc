/**
 * @file
 * DIMM implementation.
 */

#include "mapping/dimm.h"

#include <bit>

#include "util/log.h"

namespace dramscope {
namespace mapping {

namespace {

uint32_t
rowAddressBits(uint32_t rows_per_bank)
{
    fatalIf(!std::has_single_bit(rows_per_bank),
            "Dimm: rowsPerBank must be a power of two");
    return uint32_t(std::countr_zero(rows_per_bank));
}

} // namespace

Dimm::Dimm(dram::DeviceConfig chip_cfg, bool rcd_inversion,
           bool identity_twist)
    : cfg_(std::move(chip_cfg)),
      rcd_(rowAddressBits(cfg_.rowsPerBank), rcd_inversion)
{
    const uint32_t n_chips = 64 / uint32_t(cfg_.width);
    for (uint32_t c = 0; c < n_chips; ++c) {
        chips_.push_back(std::make_unique<dram::Chip>(cfg_));
        if (identity_twist)
            twists_.emplace_back(cfg_.width, 0u);
        else
            twists_.emplace_back(cfg_.width, c);
    }
    // The rank-level Device view: one wide row per host row, columns
    // chip-major.  Both rowBits and matWidth scale by the chip count,
    // so matsPerRow/groupBits (and with them the swizzle geometry)
    // stay per-chip quantities.
    bus_cfg_ = cfg_;
    bus_cfg_.name = cfg_.name + "/rank";
    bus_cfg_.rowBits = cfg_.rowBits * n_chips;
    bus_cfg_.matWidth = cfg_.matWidth * n_chips;
    bus_cfg_.validate();
}

uint32_t
Dimm::chipOfCol(dram::ColAddr col) const
{
    const uint32_t c = col / cfg_.columnsPerRow();
    panicIf(c >= chipCount(), "Dimm: device column out of range");
    return c;
}

dram::ColAddr
Dimm::chipCol(dram::ColAddr col) const
{
    return col % cfg_.columnsPerRow();
}

dram::RowAddr
Dimm::chipRow(uint32_t c, dram::RowAddr host_row) const
{
    return rcd_.chipRow(host_row, isBSide(c));
}

dram::RowAddr
Dimm::hostRowFor(uint32_t c, dram::RowAddr chip_row) const
{
    return rcd_.hostRowFor(chip_row, isBSide(c));
}

void
Dimm::act(dram::BankId b, dram::RowAddr host_row, dram::NanoTime now)
{
    for (uint32_t c = 0; c < chipCount(); ++c)
        chips_[c]->act(b, chipRow(c, host_row), now);
}

void
Dimm::pre(dram::BankId b, dram::NanoTime now)
{
    for (auto &chip : chips_)
        chip->pre(b, now);
}

void
Dimm::refresh(dram::NanoTime now)
{
    for (auto &chip : chips_)
        chip->refresh(now);
}

uint64_t
Dimm::read(dram::BankId b, dram::ColAddr col, dram::NanoTime now)
{
    const uint32_t c = chipOfCol(col);
    const uint64_t chip_data = chips_[c]->read(b, chipCol(col), now);
    return twists_[c].toHost(chip_data, cfg_.rdDataBits);
}

void
Dimm::write(dram::BankId b, dram::ColAddr col, uint64_t data,
            dram::NanoTime now)
{
    const uint32_t c = chipOfCol(col);
    chips_[c]->write(b, chipCol(col),
                     twists_[c].toChip(data, cfg_.rdDataBits), now);
}

void
Dimm::actMany(const dram::ActTrain &train)
{
    dram::ActTrain chip_train = train;
    for (uint32_t c = 0; c < chipCount(); ++c) {
        chip_train.row = chipRow(c, train.row);
        chips_[c]->actMany(chip_train);
    }
}

void
Dimm::actManyAnalytic(const dram::ActTrain &train)
{
    dram::ActTrain chip_train = train;
    for (uint32_t c = 0; c < chipCount(); ++c) {
        chip_train.row = chipRow(c, train.row);
        chips_[c]->actManyAnalytic(chip_train);
    }
}

uint64_t
Dimm::violationCount() const
{
    uint64_t total = 0;
    for (const auto &chip : chips_)
        total += chip->violationCount();
    return total;
}

std::vector<dram::TimingViolation>
Dimm::violationLog() const
{
    std::vector<dram::TimingViolation> log;
    for (uint32_t c = 0; c < chipCount(); ++c) {
        for (const auto &v : chips_[c]->violations()) {
            log.push_back({"chip" + std::to_string(c) + ": " + v.what,
                           v.when});
        }
    }
    return log;
}

uint32_t
Dimm::refreshAggressorNeighbors(dram::BankId b, dram::RowAddr host_row,
                                dram::NanoTime now)
{
    uint32_t restored = 0;
    for (uint32_t c = 0; c < chipCount(); ++c) {
        restored += chips_[c]->refreshAggressorNeighbors(
            b, chipRow(c, host_row), now);
    }
    return restored;
}

std::vector<uint64_t>
Dimm::readChips(dram::BankId b, dram::ColAddr col, dram::NanoTime now)
{
    std::vector<uint64_t> out(chipCount());
    for (uint32_t c = 0; c < chipCount(); ++c) {
        const uint64_t chip_data = chips_[c]->read(b, col, now);
        out[c] = twists_[c].toHost(chip_data, cfg_.rdDataBits);
    }
    return out;
}

void
Dimm::writeChips(dram::BankId b, dram::ColAddr col,
                 const std::vector<uint64_t> &host_data,
                 dram::NanoTime now)
{
    fatalIf(host_data.size() != chipCount(),
            "Dimm::writeChips: data vector size mismatch");
    for (uint32_t c = 0; c < chipCount(); ++c) {
        chips_[c]->write(b, col,
                         twists_[c].toChip(host_data[c], cfg_.rdDataBits),
                         now);
    }
}

} // namespace mapping
} // namespace dramscope
