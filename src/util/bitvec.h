/**
 * @file
 * Packed bit vector used for DRAM row contents.
 *
 * A DRAM row in this library is a BitVec whose index is the *physical*
 * bitline index inside the chip (post-swizzle).  The mapping layer
 * converts between host-visible data and this physical order.
 */

#ifndef DRAMSCOPE_UTIL_BITVEC_H
#define DRAMSCOPE_UTIL_BITVEC_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/log.h"

namespace dramscope {

/** Fixed-size packed vector of bits with word-level helpers. */
class BitVec
{
  public:
    BitVec() = default;

    /** Constructs @p n bits, all set to @p value. */
    explicit BitVec(size_t n, bool value = false)
        : size_(n), words_((n + 63) / 64, value ? ~0ULL : 0ULL)
    {
        trimTail();
    }

    /** Number of bits. */
    size_t size() const { return size_; }

    /** True when the vector holds no bits. */
    bool empty() const { return size_ == 0; }

    /** Reads bit @p i. */
    bool
    get(size_t i) const
    {
        panicIf(i >= size_, "BitVec::get out of range");
        return (words_[i >> 6] >> (i & 63)) & 1ULL;
    }

    /** Writes bit @p i. */
    void
    set(size_t i, bool value)
    {
        panicIf(i >= size_, "BitVec::set out of range");
        const uint64_t mask = 1ULL << (i & 63);
        if (value)
            words_[i >> 6] |= mask;
        else
            words_[i >> 6] &= ~mask;
    }

    /** Flips bit @p i. */
    void
    flip(size_t i)
    {
        panicIf(i >= size_, "BitVec::flip out of range");
        words_[i >> 6] ^= 1ULL << (i & 63);
    }

    /** Sets every bit to @p value. */
    void
    fill(bool value)
    {
        for (auto &w : words_)
            w = value ? ~0ULL : 0ULL;
        trimTail();
    }

    /**
     * Fills the vector with a repeating bit pattern.
     * @param pattern Pattern bits, LSB first.
     * @param pattern_bits Number of valid bits in @p pattern (1..64).
     */
    void
    fillPattern(uint64_t pattern, unsigned pattern_bits)
    {
        panicIf(pattern_bits == 0 || pattern_bits > 64,
                "fillPattern: bad width");
        for (size_t i = 0; i < size_; ++i)
            set(i, (pattern >> (i % pattern_bits)) & 1ULL);
    }

    /** Number of set bits. */
    size_t
    popcount() const
    {
        size_t n = 0;
        for (auto w : words_)
            n += std::popcount(w);
        return n;
    }

    /** Number of positions where this and @p other differ. */
    size_t
    hammingDistance(const BitVec &other) const
    {
        panicIf(size_ != other.size_, "hammingDistance: size mismatch");
        size_t n = 0;
        for (size_t i = 0; i < words_.size(); ++i)
            n += std::popcount(words_[i] ^ other.words_[i]);
        return n;
    }

    /** Returns a copy with every bit inverted. */
    BitVec
    inverted() const
    {
        BitVec out(*this);
        for (auto &w : out.words_)
            w = ~w;
        out.trimTail();
        return out;
    }

    /** In-place XOR with @p other (sizes must match). */
    BitVec &
    operator^=(const BitVec &other)
    {
        panicIf(size_ != other.size_, "BitVec::^=: size mismatch");
        for (size_t i = 0; i < words_.size(); ++i)
            words_[i] ^= other.words_[i];
        return *this;
    }

    bool
    operator==(const BitVec &other) const
    {
        return size_ == other.size_ && words_ == other.words_;
    }

    bool operator!=(const BitVec &other) const { return !(*this == other); }

    /** Indices of set bits (useful for error lists). */
    std::vector<size_t>
    onesPositions() const
    {
        std::vector<size_t> out;
        for (size_t wi = 0; wi < words_.size(); ++wi) {
            uint64_t w = words_[wi];
            while (w) {
                const int b = std::countr_zero(w);
                out.push_back(wi * 64 + size_t(b));
                w &= w - 1;
            }
        }
        return out;
    }

    /** Renders as a 0/1 string, bit 0 first (debugging aid). */
    std::string
    toString(size_t max_bits = 128) const
    {
        std::string s;
        const size_t n = size_ < max_bits ? size_ : max_bits;
        s.reserve(n + 3);
        for (size_t i = 0; i < n; ++i)
            s.push_back(get(i) ? '1' : '0');
        if (n < size_)
            s += "...";
        return s;
    }

  private:
    /** Clears bits beyond size_ in the last word. */
    void
    trimTail()
    {
        const size_t tail = size_ & 63;
        if (tail != 0 && !words_.empty())
            words_.back() &= (1ULL << tail) - 1;
    }

    size_t size_ = 0;
    std::vector<uint64_t> words_;
};

} // namespace dramscope

#endif // DRAMSCOPE_UTIL_BITVEC_H
