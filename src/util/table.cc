/**
 * @file
 * ASCII table / CSV writer implementation.
 */

#include "util/table.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/log.h"

namespace dramscope {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    fatalIf(headers_.empty(), "Table: needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    return buf;
}

std::string
Table::num(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

std::string
Table::num(int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    return buf;
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto line = [&](char fill, char sep) {
        std::string s;
        s.push_back(sep);
        for (size_t c = 0; c < widths.size(); ++c) {
            s.append(widths[c] + 2, fill);
            s.push_back(sep);
        }
        s.push_back('\n');
        return s;
    };
    auto rowText = [&](const std::vector<std::string> &cells) {
        std::string s = "|";
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            s += " " + cell + std::string(widths[c] - cell.size(), ' ') +
                 " |";
        }
        s.push_back('\n');
        return s;
    };

    std::string out = line('-', '+');
    out += rowText(headers_);
    out += line('=', '+');
    for (const auto &row : rows_)
        out += rowText(row);
    out += line('-', '+');
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

void
Table::writeCsv(const std::string &path) const
{
    std::ofstream os(path);
    fatalIf(!os, "Table::writeCsv: cannot open " + path);
    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            // Quote cells that contain separators.
            if (cells[c].find_first_of(",\"\n") != std::string::npos) {
                os << '"';
                for (char ch : cells[c]) {
                    if (ch == '"')
                        os << '"';
                    os << ch;
                }
                os << '"';
            } else {
                os << cells[c];
            }
        }
        os << '\n';
    };
    emitRow(headers_);
    for (const auto &row : rows_)
        emitRow(row);
}

void
printBanner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

} // namespace dramscope
