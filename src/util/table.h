/**
 * @file
 * ASCII table and CSV writers for bench output.
 *
 * Every bench binary prints the rows/series of the paper table or
 * figure it reproduces through these helpers, so the output format is
 * uniform across the harness.
 */

#ifndef DRAMSCOPE_UTIL_TABLE_H
#define DRAMSCOPE_UTIL_TABLE_H

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace dramscope {

/** Simple column-aligned ASCII table. */
class Table
{
  public:
    /** Creates a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Appends a row; missing cells render empty, extras are dropped. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: formats a double with @p precision digits. */
    static std::string num(double v, int precision = 4);

    /** Convenience: formats an integer. */
    static std::string num(uint64_t v);
    static std::string num(int64_t v);
    static std::string num(int v) { return num(int64_t(v)); }

    /** Renders the table to a string. */
    std::string render() const;

    /** Prints the table to stdout. */
    void print() const;

    /** Writes the table as CSV to @p path. */
    void writeCsv(const std::string &path) const;

    /** Number of data rows. */
    size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Prints a section banner used between bench sub-results. */
void printBanner(const std::string &title);

} // namespace dramscope

#endif // DRAMSCOPE_UTIL_TABLE_H
