/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything stochastic in the library (per-cell flip thresholds,
 * retention times, process variation) derives from either an explicit
 * Rng stream or a stateless hash of a cell coordinate.  This keeps
 * every experiment reproducible bit-for-bit from a single seed.
 */

#ifndef DRAMSCOPE_UTIL_RNG_H
#define DRAMSCOPE_UTIL_RNG_H

#include <cmath>
#include <cstdint>

namespace dramscope {

/**
 * SplitMix64 step: the canonical 64-bit finalizer used both to seed
 * xoshiro and as a stateless hash.
 *
 * @param x Input state / key.
 * @return Well-mixed 64-bit output.
 */
constexpr uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Combines two 64-bit values into a new well-mixed hash. */
constexpr uint64_t
hashCombine(uint64_t a, uint64_t b)
{
    return splitmix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/**
 * xoshiro256** PRNG.  Small, fast, and high quality; state is four
 * 64-bit words seeded via splitmix64.
 */
class Rng
{
  public:
    /** Constructs a generator from a 64-bit seed. */
    explicit Rng(uint64_t seed = 0x5eedull) { reseed(seed); }

    /** Re-initializes the state from @p seed. */
    void
    reseed(uint64_t seed)
    {
        uint64_t sm = seed;
        for (auto &word : state_) {
            sm = splitmix64(sm);
            word = sm;
        }
        has_gauss_ = false;
    }

    /** Returns the next raw 64-bit output. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n); n must be > 0. */
    uint64_t
    below(uint64_t n)
    {
        // Lemire's nearly-divisionless bounded sampling (biased by at
        // most 2^-64, fine for simulation purposes).
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(next()) * n) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(uint64_t(hi - lo + 1)));
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** Standard normal via Box-Muller (cached pair). */
    double
    gaussian()
    {
        if (has_gauss_) {
            has_gauss_ = false;
            return gauss_;
        }
        double u1 = 0.0;
        do {
            u1 = uniform();
        } while (u1 <= 0.0);
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 6.283185307179586 * u2;
        gauss_ = r * std::sin(theta);
        has_gauss_ = true;
        return r * std::cos(theta);
    }

    /** Normal with given mean and standard deviation. */
    double
    gaussian(double mean, double sigma)
    {
        return mean + sigma * gaussian();
    }

    /** Lognormal: exp(N(mu, sigma)). */
    double
    lognormal(double mu, double sigma)
    {
        return std::exp(gaussian(mu, sigma));
    }

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4] = {};
    bool has_gauss_ = false;
    double gauss_ = 0.0;
};

/**
 * Stateless per-coordinate randomness: maps a (seed, key) pair to a
 * uniform double in (0, 1).  Used for per-cell static properties so
 * that no per-cell state must be stored.
 */
inline double
hashUniform(uint64_t seed, uint64_t key)
{
    const uint64_t h = hashCombine(seed, key);
    // Avoid exactly 0 so it is safe inside log().
    return ((h >> 11) + 1) * 0x1.0p-53;
}

/**
 * Stateless standard normal from a (seed, key) pair via the inverse
 * of the error function (Acklam-style rational approximation of the
 * normal quantile, accurate to ~1e-9 which is ample here).
 */
double hashGaussian(uint64_t seed, uint64_t key);

/** Stateless lognormal exp(N(mu, sigma)) from a (seed, key) pair. */
inline double
hashLognormal(uint64_t seed, uint64_t key, double mu, double sigma)
{
    return std::exp(mu + sigma * hashGaussian(seed, key));
}

} // namespace dramscope

#endif // DRAMSCOPE_UTIL_RNG_H
