/**
 * @file
 * Logging and error-reporting helpers for the DRAMScope library.
 *
 * Follows the gem5 convention: panic() for internal invariant
 * violations (bugs in the library itself), fatal() for user errors
 * that make continuing impossible, warn()/inform() for status.
 */

#ifndef DRAMSCOPE_UTIL_LOG_H
#define DRAMSCOPE_UTIL_LOG_H

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <string>

namespace dramscope {

/** Verbosity levels for runtime logging. */
enum class LogLevel { Silent = 0, Error = 1, Warn = 2, Info = 3, Debug = 4 };

/**
 * Process-wide log configuration.  Benches and tests lower the level
 * to keep output deterministic and small.
 */
class Log
{
  public:
    /** Returns the current global log level. */
    static LogLevel level() { return instance().level_; }

    /** Sets the global log level. */
    static void setLevel(LogLevel lvl) { instance().level_ = lvl; }

    /**
     * Emits a message if @p lvl is enabled.  Thread-safe: the line is
     * built in full and written under a lock, so concurrent emitters
     * (e.g. sweep workers) never interleave within a line.
     */
    static void
    emit(LogLevel lvl, const std::string &msg)
    {
        if (static_cast<int>(lvl) <= static_cast<int>(level())) {
            const std::string line =
                std::string(prefix(lvl)) + msg + "\n";
            std::lock_guard<std::mutex> lock(instance().emit_mu_);
            std::fwrite(line.data(), 1, line.size(), stderr);
        }
    }

  private:
    static Log &
    instance()
    {
        static Log the_log;
        return the_log;
    }

    static const char *
    prefix(LogLevel lvl)
    {
        switch (lvl) {
          case LogLevel::Error: return "error: ";
          case LogLevel::Warn:  return "warn: ";
          case LogLevel::Info:  return "info: ";
          case LogLevel::Debug: return "debug: ";
          default:              return "";
        }
    }

    LogLevel level_ = LogLevel::Warn;
    std::mutex emit_mu_;
};

/** Emits a warning message (condition may still work well enough). */
inline void warn(const std::string &msg) { Log::emit(LogLevel::Warn, msg); }

/** Emits an informational status message. */
inline void inform(const std::string &msg) { Log::emit(LogLevel::Info, msg); }

/** Emits a debug message. */
inline void debugLog(const std::string &msg)
{
    Log::emit(LogLevel::Debug, msg);
}

/**
 * Aborts on an internal invariant violation (a library bug).
 * @param msg Description of the violated invariant.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/**
 * Exits on an unrecoverable user error (bad configuration, invalid
 * arguments) that is not a library bug.
 * @param msg Description of the user error.
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/** panic()s when @p cond holds (i.e. @p cond asserts the *bug*). */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

/** fatal()s when @p cond holds (i.e. @p cond asserts the *error*). */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

} // namespace dramscope

#endif // DRAMSCOPE_UTIL_LOG_H
