/**
 * @file
 * MetricsRegistry implementation.
 */

#include "util/metrics.h"

#include <cinttypes>
#include <cstdio>

#include "util/log.h"

namespace dramscope {
namespace obs {

void
MetricsSnapshot::merge(const MetricsSnapshot &other)
{
    for (const auto &[name, value] : other.counters)
        counters[name] += value;
    for (const auto &[name, hist] : other.histograms) {
        auto it = histograms.find(name);
        if (it == histograms.end()) {
            histograms.emplace(name, hist);
            continue;
        }
        HistogramSnapshot &mine = it->second;
        fatalIf(mine.counts.size() != hist.counts.size() ||
                    mine.lo != hist.lo || mine.hi != hist.hi,
                "MetricsSnapshot::merge: histogram shape mismatch: " +
                    name);
        for (size_t i = 0; i < mine.counts.size(); ++i)
            mine.counts[i] += hist.counts[i];
        mine.total += hist.total;
    }
}

uint64_t
MetricsSnapshot::counterOr0(const std::string &name) const
{
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

std::string
MetricsSnapshot::commandSummary() const
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "metrics: ACT=%" PRIu64 " PRE=%" PRIu64 " RD=%" PRIu64
                  " WR=%" PRIu64 " REF=%" PRIu64 " violations=%" PRIu64,
                  counterOr0("cmd.act"), counterOr0("cmd.pre"),
                  counterOr0("cmd.rd"), counterOr0("cmd.wr"),
                  counterOr0("cmd.ref"), counterOr0("timing.violations"));
    return buf;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_.emplace(name, std::make_unique<Counter>()).first;
    }
    return *it->second;
}

Histogram &
MetricsRegistry::histogram(const std::string &name, size_t bins,
                           double lo, double hi)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(name, std::make_unique<Histogram>(bins, lo, hi))
                 .first;
    } else {
        fatalIf(it->second->bins() != bins || it->second->lo() != lo ||
                    it->second->hi() != hi,
                "MetricsRegistry::histogram: shape mismatch: " + name);
    }
    return *it->second;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    for (const auto &[name, ctr] : counters_)
        snap.counters.emplace(name, ctr->value);
    for (const auto &[name, hist] : histograms_) {
        HistogramSnapshot h;
        h.lo = hist->lo();
        h.hi = hist->hi();
        h.total = hist->total();
        h.counts.reserve(hist->bins());
        for (size_t i = 0; i < hist->bins(); ++i)
            h.counts.push_back(hist->count(i));
        snap.histograms.emplace(name, std::move(h));
    }
    return snap;
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    for (const auto &[name, ctr] : other.counters_)
        counter(name).add(ctr->value);
    for (const auto &[name, hist] : other.histograms_)
        histogram(name, hist->bins(), hist->lo(), hist->hi())
            .merge(*hist);
}

void
MetricsRegistry::reset()
{
    for (auto &[name, ctr] : counters_)
        ctr->value = 0;
    for (auto &[name, hist] : histograms_)
        hist->reset();
}

} // namespace obs
} // namespace dramscope
