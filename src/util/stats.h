/**
 * @file
 * Small statistics helpers used by the characterization suite.
 */

#ifndef DRAMSCOPE_UTIL_STATS_H
#define DRAMSCOPE_UTIL_STATS_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/log.h"

namespace dramscope {

/** Streaming mean / variance / min / max accumulator (Welford). */
class RunningStat
{
  public:
    /** Adds one sample. */
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / double(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    /** Number of samples so far. */
    uint64_t count() const { return n_; }

    /** Sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance (0 when fewer than 2 samples). */
    double
    variance() const
    {
        return n_ > 1 ? m2_ / double(n_) : 0.0;
    }

    /** Population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** Smallest sample (+inf when empty). */
    double min() const { return min_; }

    /** Largest sample (-inf when empty). */
    double max() const { return max_; }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Ratio of two counters; the core metric behind every BER figure. */
class BitErrorRate
{
  public:
    /** Records @p flipped errors out of @p tested cells. */
    void
    add(uint64_t flipped, uint64_t tested)
    {
        flipped_ += flipped;
        tested_ += tested;
    }

    /** Merges another accumulator. */
    void
    merge(const BitErrorRate &other)
    {
        flipped_ += other.flipped_;
        tested_ += other.tested_;
    }

    /** Total flipped bits. */
    uint64_t flipped() const { return flipped_; }

    /** Total tested bits. */
    uint64_t tested() const { return tested_; }

    /** flipped / tested, 0 when nothing was tested. */
    double
    value() const
    {
        return tested_ ? double(flipped_) / double(tested_) : 0.0;
    }

  private:
    uint64_t flipped_ = 0;
    uint64_t tested_ = 0;
};

/** Fixed-width histogram over [lo, hi). */
class Histogram
{
  public:
    /** @param bins Number of buckets; @param lo/@param hi range. */
    Histogram(size_t bins, double lo, double hi)
        : lo_(lo), hi_(hi), counts_(bins, 0)
    {
        fatalIf(bins == 0 || !(hi > lo), "Histogram: bad shape");
    }

    /** Adds a sample; out-of-range samples clamp to the edge bins. */
    void
    add(double x)
    {
        const double t = (x - lo_) / (hi_ - lo_);
        auto idx = static_cast<int64_t>(t * double(counts_.size()));
        idx = std::clamp<int64_t>(idx, 0, int64_t(counts_.size()) - 1);
        ++counts_[size_t(idx)];
        ++total_;
    }

    /** Adds @p n samples of the same value (bulk fast path). */
    void
    addMany(double x, uint64_t n)
    {
        if (n == 0)
            return;
        const double t = (x - lo_) / (hi_ - lo_);
        auto idx = static_cast<int64_t>(t * double(counts_.size()));
        idx = std::clamp<int64_t>(idx, 0, int64_t(counts_.size()) - 1);
        counts_[size_t(idx)] += n;
        total_ += n;
    }

    /**
     * Adds another histogram's buckets into this one.  Both must have
     * the same shape (bin count and range); counts are exact integers
     * so merging is commutative and order-independent.
     */
    void
    merge(const Histogram &other)
    {
        fatalIf(other.counts_.size() != counts_.size() ||
                    other.lo_ != lo_ || other.hi_ != hi_,
                "Histogram::merge: shape mismatch");
        for (size_t i = 0; i < counts_.size(); ++i)
            counts_[i] += other.counts_[i];
        total_ += other.total_;
    }

    /** Zeroes every bucket, keeping the shape. */
    void
    reset()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
        total_ = 0;
    }

    /** Bucket count. */
    size_t bins() const { return counts_.size(); }

    /** Samples in bucket @p i. */
    uint64_t count(size_t i) const { return counts_.at(i); }

    /** Total samples. */
    uint64_t total() const { return total_; }

    /** Lower bound of the sample range. */
    double lo() const { return lo_; }

    /** Upper bound of the sample range. */
    double hi() const { return hi_; }

    /** Center value of bucket @p i. */
    double
    binCenter(size_t i) const
    {
        const double w = (hi_ - lo_) / double(counts_.size());
        return lo_ + (double(i) + 0.5) * w;
    }

  private:
    double lo_, hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

/**
 * Median of a sample vector (copies and sorts; characterization data
 * sets here are small).
 */
inline double
median(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const size_t n = xs.size();
    return n % 2 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

} // namespace dramscope

#endif // DRAMSCOPE_UTIL_STATS_H
