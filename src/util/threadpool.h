/**
 * @file
 * A small work-stealing thread pool.
 *
 * Each worker owns a deque: it pops its own work LIFO (cache-warm)
 * and steals FIFO from the other workers when it runs dry.  External
 * submissions are distributed round-robin; submissions from inside a
 * worker go to that worker's own deque so nested producers keep their
 * locality.
 *
 * The pool makes no ordering promises between tasks — determinism is
 * the *caller's* job (see core/sweep.h, which keys every shard's RNG
 * stream and merge slot by shard index, never by scheduling order).
 */

#ifndef DRAMSCOPE_UTIL_THREADPOOL_H
#define DRAMSCOPE_UTIL_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace dramscope {

/** Work-stealing thread pool. */
class ThreadPool
{
  public:
    /**
     * Spawns the worker threads.
     * @param threads Worker count; 0 = hardware concurrency.
     */
    explicit ThreadPool(unsigned threads = 0)
    {
        if (threads == 0) {
            threads = std::thread::hardware_concurrency();
            if (threads == 0)
                threads = 1;
        }
        queues_.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            queues_.push_back(std::make_unique<WorkerQueue>());
        threads_.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            threads_.emplace_back([this, i] { workerLoop(i); });
    }

    /** Runs every task still queued, then joins the workers. */
    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(wake_mu_);
            stop_ = true;
        }
        wake_cv_.notify_all();
        for (auto &t : threads_)
            t.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return unsigned(threads_.size()); }

    /**
     * Index of the calling thread within its owning pool, or -1 when
     * called from a thread no pool owns.  Lets callers keep cheap
     * per-worker state (e.g. one device replica per worker).
     */
    static int currentWorker() { return worker_index_; }

    /**
     * Exceptions that escaped a task body itself (not ones captured
     * into a future).  Always 0 for submit()-only usage in practice;
     * nonzero values flag a task type whose result delivery throws.
     */
    uint64_t uncaughtTaskErrors() const
    {
        return uncaught_.load(std::memory_order_relaxed);
    }

    /**
     * Enqueues @p fn and returns a future for its result.  Exceptions
     * thrown by the task surface from future::get().  Do not block on
     * a future from inside a worker of the same pool: with every
     * worker waiting there would be no thread left to run the task.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        push([task] { (*task)(); });
        return fut;
    }

  private:
    using Task = std::function<void()>;

    struct WorkerQueue
    {
        std::mutex mu;
        std::deque<Task> tasks;
    };

    void
    push(Task task)
    {
        size_t q;
        if (worker_pool_ == this && worker_index_ >= 0)
            q = size_t(worker_index_);
        else
            q = push_cursor_.fetch_add(1, std::memory_order_relaxed) %
                queues_.size();
        {
            std::lock_guard<std::mutex> lock(queues_[q]->mu);
            queues_[q]->tasks.push_back(std::move(task));
        }
        {
            // pending_ changes under wake_mu_ so a worker re-checking
            // its wait predicate can never miss the notify.
            std::lock_guard<std::mutex> lock(wake_mu_);
            pending_.fetch_add(1, std::memory_order_relaxed);
        }
        wake_cv_.notify_one();
    }

    bool
    popLocal(unsigned self, Task &out)
    {
        auto &q = *queues_[self];
        std::lock_guard<std::mutex> lock(q.mu);
        if (q.tasks.empty())
            return false;
        out = std::move(q.tasks.back());
        q.tasks.pop_back();
        return true;
    }

    bool
    steal(unsigned self, Task &out)
    {
        const size_t n = queues_.size();
        for (size_t k = 1; k < n; ++k) {
            auto &q = *queues_[(self + k) % n];
            std::lock_guard<std::mutex> lock(q.mu);
            if (q.tasks.empty())
                continue;
            out = std::move(q.tasks.front());
            q.tasks.pop_front();
            return true;
        }
        return false;
    }

    void
    workerLoop(unsigned index)
    {
        worker_index_ = int(index);
        worker_pool_ = this;
        for (;;) {
            Task task;
            if (popLocal(index, task) || steal(index, task)) {
                pending_.fetch_sub(1, std::memory_order_relaxed);
                try {
                    task();
                } catch (...) {
                    // A task that lets an exception escape (tasks
                    // submitted via submit() capture theirs into the
                    // future, but e.g. a result move constructor can
                    // still throw while the future is being set) must
                    // never take the worker thread down with it: a
                    // lost worker would strand its queue and hang the
                    // pool.  The exception is dropped here; result
                    // delivery errors surface from future::get().
                    ++uncaught_;
                }
                continue;
            }
            std::unique_lock<std::mutex> lock(wake_mu_);
            if (stop_ && pending_.load(std::memory_order_relaxed) == 0)
                return;
            wake_cv_.wait(lock, [this] {
                return stop_ ||
                       pending_.load(std::memory_order_relaxed) > 0;
            });
            if (stop_ && pending_.load(std::memory_order_relaxed) == 0)
                return;
        }
    }

    static thread_local int worker_index_;
    static thread_local const ThreadPool *worker_pool_;

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> threads_;
    std::atomic<size_t> push_cursor_{0};
    std::atomic<size_t> pending_{0};
    std::atomic<uint64_t> uncaught_{0};
    std::mutex wake_mu_;
    std::condition_variable wake_cv_;
    bool stop_ = false;
};

inline thread_local int ThreadPool::worker_index_ = -1;
inline thread_local const ThreadPool *ThreadPool::worker_pool_ = nullptr;

/**
 * Runs fn(0) .. fn(count - 1) across the pool and waits for all of
 * them.  Always joins every iteration before returning; if any threw,
 * rethrows the exception of the *lowest-indexed* failing iteration
 * (deterministic regardless of scheduling).  Must not be called from
 * a worker of @p pool (see ThreadPool::submit).
 */
template <typename Fn>
inline void
parallelFor(ThreadPool &pool, uint64_t count, Fn &&fn)
{
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (uint64_t i = 0; i < count; ++i)
        futures.push_back(pool.submit([&fn, i] { fn(i); }));
    std::exception_ptr first;
    for (auto &f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace dramscope

#endif // DRAMSCOPE_UTIL_THREADPOOL_H
