/**
 * @file
 * The observability metrics layer (`dramscope::obs`): named monotonic
 * counters and fixed-shape histograms behind a registry with
 * deterministic snapshot/merge semantics.
 *
 * Design constraints (see docs/OBSERVATIONS.md and core/sweep.h):
 *
 *  - **Near-zero cost when disabled.**  Producers (bender::Host) hold
 *    a nullable registry pointer and resolve Counter/Histogram
 *    handles once, so the hot path is one branch plus an increment —
 *    or just the branch when observability is off.
 *  - **Deterministic merge.**  All values are exact integer counts
 *    (histogram samples are bucketed at add() time), so merging
 *    per-shard registries is commutative and associative: a parallel
 *    sweep's aggregate equals the serial run's bit for bit, in any
 *    merge order.  SweepRunner still merges in replica order for
 *    reproducible intermediate states.
 *  - **Stable handles.**  counter()/histogram() return references
 *    that stay valid for the registry's lifetime (values live behind
 *    unique_ptr), so reset() zeroes in place without invalidating
 *    producers.
 */

#ifndef DRAMSCOPE_UTIL_METRICS_H
#define DRAMSCOPE_UTIL_METRICS_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/stats.h"

namespace dramscope {
namespace obs {

/** A named monotonic counter (value only ever grows). */
struct Counter
{
    uint64_t value = 0;

    /** Adds @p n to the counter. */
    void add(uint64_t n = 1) { value += n; }
};

/** Plain-data copy of one histogram (shape + bucket counts). */
struct HistogramSnapshot
{
    double lo = 0.0;
    double hi = 0.0;
    std::vector<uint64_t> counts;
    uint64_t total = 0;

    bool operator==(const HistogramSnapshot &) const = default;
};

/**
 * Plain-data copy of a whole registry at one instant.  Snapshots
 * compare with operator== (the serial-vs-parallel equality the sweep
 * tests assert) and merge by exact integer addition.
 */
struct MetricsSnapshot
{
    std::map<std::string, uint64_t> counters;
    std::map<std::string, HistogramSnapshot> histograms;

    bool operator==(const MetricsSnapshot &) const = default;

    /** Adds @p other into this snapshot (shape-checked histograms). */
    void merge(const MetricsSnapshot &other);

    /** Value of counter @p name, 0 when absent. */
    uint64_t counterOr0(const std::string &name) const;

    /**
     * One-line command summary for bench output, e.g.
     * "metrics: ACT=640 PRE=640 RD=128 WR=256 REF=0 violations=0".
     */
    std::string commandSummary() const;
};

/** Registry of named counters and histograms. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Finds or creates the counter @p name (stable reference). */
    Counter &counter(const std::string &name);

    /**
     * Finds or creates the histogram @p name (stable reference).
     * The shape arguments apply on creation; a later lookup with a
     * different shape is a caller bug (fatal).
     */
    Histogram &histogram(const std::string &name, size_t bins, double lo,
                         double hi);

    /** Deep copy of every metric's current value. */
    MetricsSnapshot snapshot() const;

    /**
     * Adds every metric of @p other into this registry, creating
     * names this registry has not seen.  Exact integer sums: merge
     * order never changes the result.
     */
    void merge(const MetricsRegistry &other);

    /** Zeroes every value in place; handles stay valid. */
    void reset();

  private:
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace obs
} // namespace dramscope

#endif // DRAMSCOPE_UTIL_METRICS_H
