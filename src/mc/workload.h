/**
 * @file
 * Synthetic request-stream generators and the JSONL address-trace
 * format.
 *
 * Three generators cover the interesting corners of the scheduling
 * space: streaming (sequential, row-buffer friendly), pointer-chase
 * (dependent random walk — every access a likely miss), and hot-row
 * Zipfian ("millions of users" traffic where a few rows absorb most
 * accesses, the realistic RowHammer-exposure scenario).  All three are
 * seed-deterministic.  A generated or externally recorded stream can
 * round-trip through a JSONL trace file and replay on any device
 * geometry (addresses wrap modulo the address space).
 */

#ifndef DRAMSCOPE_MC_WORKLOAD_H
#define DRAMSCOPE_MC_WORKLOAD_H

#include <optional>
#include <string>
#include <vector>

#include "dram/config.h"
#include "mc/mc.h"

namespace dramscope {
namespace mc {

/** Workload generator kinds. */
enum class WorkloadKind : uint8_t
{
    Streaming,     //!< Sequential addresses: hit- and interleave-heavy.
    PointerChase,  //!< Hash-dependent random walk, reads only.
    Zipfian,       //!< Hot-row skewed accesses (aggressor exposure).
};

/** Stable keyword of @p kind ("streaming", "chase", "zipfian"). */
const char *workloadId(WorkloadKind kind);

/** Parses a workload keyword; nullopt on an unknown one. */
std::optional<WorkloadKind> workloadFromString(const std::string &id);

/** All generator kinds, in enum order. */
const std::vector<WorkloadKind> &workloadTable();

/** Generator knobs. */
struct WorkloadOptions
{
    size_t requests = 1000;
    uint64_t seed = 0x5eedULL;

    /** Fraction of reads (rest are writes); chase ignores this. */
    double readFraction = 0.75;

    /** Mean inter-arrival gap (ns); arrivals are jittered +-50%. */
    double interArrivalNs = 15.0;

    /**
     * Rows the workload touches (footprint).  0 selects the whole
     * device; Zipfian ranks are drawn from this many rows.
     */
    uint64_t footprintRows = 0;

    /** Zipf exponent: larger skews harder onto the hottest rows. */
    double zipfSkew = 1.2;
};

/** Generates @p opt.requests transactions for @p kind on @p cfg. */
std::vector<Request> makeWorkload(WorkloadKind kind,
                                  const dram::DeviceConfig &cfg,
                                  const WorkloadOptions &opt);

/**
 * Writes @p reqs as a JSONL trace: one object per line with keys
 * arrival_ps (integer), addr (integer), type ("rd" | "wr").  Throws
 * std::runtime_error on I/O failure.
 */
void writeTrace(const std::string &path, const std::vector<Request> &reqs);

/**
 * Reads a JSONL trace written by writeTrace() (or by hand).  Unknown
 * keys are rejected; malformed lines throw std::runtime_error naming
 * the line number.  Blank lines are skipped.
 */
std::vector<Request> readTrace(const std::string &path);

} // namespace mc
} // namespace dramscope

#endif // DRAMSCOPE_MC_WORKLOAD_H
