/**
 * @file
 * Workload generators and JSONL trace I/O.
 */

#include "mc/workload.h"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace dramscope {
namespace mc {

const char *
workloadId(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Streaming:
        return "streaming";
      case WorkloadKind::PointerChase:
        return "chase";
      case WorkloadKind::Zipfian:
        return "zipfian";
    }
    return "?";
}

std::optional<WorkloadKind>
workloadFromString(const std::string &id)
{
    for (const auto kind : workloadTable()) {
        if (id == workloadId(kind))
            return kind;
    }
    return std::nullopt;
}

const std::vector<WorkloadKind> &
workloadTable()
{
    static const std::vector<WorkloadKind> table = {
        WorkloadKind::Streaming,
        WorkloadKind::PointerChase,
        WorkloadKind::Zipfian,
    };
    return table;
}

namespace {

/** Continuous-approximation Zipf rank sampler: inverse-CDF of
 *  P(rank <= r) ~ r^(1-s), ranks in [1, n]. */
uint64_t
zipfRank(double u, uint64_t n, double s)
{
    if (s == 1.0)
        s = 1.0 + 1e-9;
    const double e = 1.0 - s;
    const double r = std::pow(u * (std::pow(double(n), e) - 1.0) + 1.0,
                              1.0 / e);
    const auto rank = uint64_t(r);
    return rank < 1 ? 1 : (rank > n ? n : rank);
}

} // namespace

std::vector<Request>
makeWorkload(WorkloadKind kind, const dram::DeviceConfig &cfg,
             const WorkloadOptions &opt)
{
    const AddrDecoder dec(cfg);
    Rng rng(hashCombine(opt.seed, uint64_t(kind)));
    std::vector<Request> reqs;
    reqs.reserve(opt.requests);

    const uint64_t rows =
        opt.footprintRows == 0
            ? dec.rows()
            : std::min<uint64_t>(opt.footprintRows, dec.rows());

    int64_t clock = 0;
    uint64_t chaseAddr = splitmix64(opt.seed) % dec.addressSpace();
    const uint64_t streamBase = chaseAddr;

    for (size_t i = 0; i < opt.requests; ++i) {
        // Jittered arrival: mean interArrivalNs, uniform +-50%.
        clock += int64_t(std::llround(opt.interArrivalNs * 1000.0 *
                                      (0.5 + rng.uniform())));
        Request r;
        r.arrivalPs = clock;
        switch (kind) {
          case WorkloadKind::Streaming:
            r.addr = (streamBase + i) % dec.addressSpace();
            r.type = rng.chance(opt.readFraction) ? ReqType::Read
                                                  : ReqType::Write;
            break;
          case WorkloadKind::PointerChase:
            r.addr = chaseAddr;
            // Mix the step index into the hash: a pure addr -> addr
            // walk falls into a ~sqrt(space) cycle (birthday bound)
            // and turns row-buffer friendly on small geometries.
            chaseAddr = hashCombine(hashCombine(opt.seed, i),
                                    chaseAddr) %
                        dec.addressSpace();
            r.type = ReqType::Read;
            break;
          case WorkloadKind::Zipfian: {
            // Hot ranks scatter over the footprint via a hash so the
            // hottest rows are not physically adjacent.
            const uint64_t rank = zipfRank(rng.uniform(), rows,
                                           opt.zipfSkew);
            const auto row = dram::RowAddr(
                hashCombine(opt.seed ^ 0x517cc1b727220a95ULL, rank) %
                rows);
            const auto bank = dram::BankId(rng.below(dec.banks()));
            const auto col = dram::ColAddr(rng.below(dec.columns()));
            r.addr = dec.encode(bank, row, col);
            r.type = rng.chance(opt.readFraction) ? ReqType::Read
                                                  : ReqType::Write;
            break;
          }
        }
        reqs.push_back(r);
    }
    return reqs;
}

void
writeTrace(const std::string &path, const std::vector<Request> &reqs)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        throw std::runtime_error("trace: cannot open '" + path +
                                 "' for writing");
    for (const auto &r : reqs) {
        out << "{\"arrival_ps\":" << r.arrivalPs << ",\"addr\":" << r.addr
            << ",\"type\":\""
            << (r.type == ReqType::Read ? "rd" : "wr") << "\"}\n";
    }
    out.flush();
    if (!out)
        throw std::runtime_error("trace: write to '" + path +
                                 "' failed");
}

namespace {

/** Minimal parser for the one-object-per-line trace schema. */
struct LineParser
{
    const std::string &s;
    size_t i = 0;
    size_t lineNo;

    [[noreturn]] void
    fail(const std::string &what) const
    {
        std::ostringstream os;
        os << "trace:" << lineNo << ": " << what;
        throw std::runtime_error(os.str());
    }

    void
    ws()
    {
        while (i < s.size() && std::isspace(uint8_t(s[i])))
            ++i;
    }

    void
    expect(char c)
    {
        ws();
        if (i >= s.size() || s[i] != c)
            fail(std::string("expected '") + c + "'");
        ++i;
    }

    std::string
    string()
    {
        expect('"');
        const size_t start = i;
        while (i < s.size() && s[i] != '"')
            ++i;
        if (i >= s.size())
            fail("unterminated string");
        return s.substr(start, i++ - start);
    }

    uint64_t
    number()
    {
        ws();
        const size_t start = i;
        while (i < s.size() && std::isdigit(uint8_t(s[i])))
            ++i;
        if (i == start)
            fail("expected a number");
        return std::stoull(s.substr(start, i - start));
    }

    bool
    atEnd()
    {
        ws();
        return i >= s.size();
    }
};

} // namespace

std::vector<Request>
readTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("trace: cannot open '" + path + "'");
    std::vector<Request> reqs;
    std::string line;
    size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        LineParser p{line, 0, lineNo};
        if (p.atEnd())
            continue;  // Blank lines are fine.
        p.i = 0;
        p.expect('{');
        Request r;
        bool haveArrival = false, haveAddr = false, haveType = false;
        for (;;) {
            const std::string key = p.string();
            p.expect(':');
            if (key == "arrival_ps") {
                r.arrivalPs = int64_t(p.number());
                haveArrival = true;
            } else if (key == "addr") {
                r.addr = p.number();
                haveAddr = true;
            } else if (key == "type") {
                const std::string v = p.string();
                if (v == "rd")
                    r.type = ReqType::Read;
                else if (v == "wr")
                    r.type = ReqType::Write;
                else
                    p.fail("type must be \"rd\" or \"wr\"");
                haveType = true;
            } else {
                p.fail("unknown key '" + key + "'");
            }
            p.ws();
            if (p.i < line.size() && line[p.i] == ',') {
                ++p.i;
                continue;
            }
            break;
        }
        p.expect('}');
        if (!p.atEnd())
            p.fail("trailing characters after object");
        if (!haveArrival || !haveAddr || !haveType)
            p.fail("missing key (need arrival_ps, addr, type)");
        reqs.push_back(r);
    }
    return reqs;
}

} // namespace mc
} // namespace dramscope
