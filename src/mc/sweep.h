/**
 * @file
 * Policy x workload sweep over the memory-controller layer, built on
 * core::SweepRunner so sharding, resilience (retry / quarantine /
 * checkpoint-resume) and fault injection all apply unchanged.
 *
 * One shard = one (workload, policy) cell: generate the workload,
 * schedule it FR-FCFS, lint the emitted program, execute it on the
 * shard's device replica, and return a deterministic payload line.
 * The same unit backs the `dramscope_cli mcsweep` subcommand and the
 * serial==parallel equivalence tests.
 */

#ifndef DRAMSCOPE_MC_SWEEP_H
#define DRAMSCOPE_MC_SWEEP_H

#include <string>
#include <vector>

#include "core/sweep.h"
#include "mc/mc.h"
#include "mc/workload.h"

namespace dramscope {
namespace mc {

/** One cell of the mitigation x workload x policy grid. */
struct SweepCell
{
    WorkloadKind workload;
    RowPolicy policy;
    core::MitigationKind mitigation = core::MitigationKind::None;
};

/**
 * The full grid, workload-major (all policies of one workload are
 * adjacent shards).  Shard index == position in this vector.
 */
const std::vector<SweepCell> &sweepPlan();

/**
 * The grid extended with a mitigation axis, mitigation-major: one
 * full workload x policy block per entry of @p mitigations, in the
 * given order.  With the default `{None}` this is exactly
 * sweepPlan() — shard indices (and so workload seeds, journals and
 * payload bytes) are preserved.
 */
std::vector<SweepCell>
sweepPlan(const std::vector<core::MitigationKind> &mitigations);

/** Knobs of the mc sweep. */
struct McSweepOptions
{
    size_t requests = 1000;   //!< Requests per cell.
    uint64_t seed = 0x5eedULL;  //!< Workload-generation base seed.

    /** Mitigation axis of the grid (one block per entry). */
    std::vector<core::MitigationKind> mitigations = {
        core::MitigationKind::None};
};

/**
 * Runs one cell on @p ctx's device: generates the workload with a
 * seed split by shard index (stable across attempts and job counts),
 * schedules it, lints the program (throws on any unexpected
 * diagnostic — in-spec by construction is part of the contract),
 * executes it, publishes the ScheduleStats into the host's attached
 * metrics registry, and returns the payload line
 * `workload=<id> policy=<id> <stats summary>` (with
 * ` mitigation=<id>` inserted after the policy when the cell carries
 * one — None cells keep the historical payload bytes).
 */
std::string runSweepCell(core::ShardContext &ctx, const SweepCell &cell,
                         const McSweepOptions &opt);

/**
 * The schedule a grid cell emits, without executing it: the same
 * per-shard workload seed split runSweepCell applies (@p shard is the
 * cell's index in the plan), scheduled under the cell's policy and
 * mitigation.  This is the program-export path the static certifier
 * uses — `dramscope_cli certify --grid` and the cross-validation
 * harness certify every cell's program before (or without) running it.
 */
ScheduleResult buildSweepCellSchedule(const SweepCell &cell,
                                      uint32_t shard,
                                      const dram::DeviceConfig &cfg,
                                      const McSweepOptions &opt);

/**
 * Runs the whole grid through @p runner.runResilient and returns its
 * report: payloads in shard order, bit-identical for any job count.
 */
core::SweepReport runMcSweep(core::SweepRunner &runner,
                             const McSweepOptions &opt,
                             const core::ResilienceOptions &ropts = {});

} // namespace mc
} // namespace dramscope

#endif // DRAMSCOPE_MC_SWEEP_H
