/**
 * @file
 * FR-FCFS scheduler implementation.  See mc/mc.h for the model.
 */

#include "mc/mc.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <limits>
#include <map>

#include "util/log.h"
#include "util/rng.h"

namespace dramscope {
namespace mc {

const std::vector<PolicyInfo> &
policyTable()
{
    static const std::vector<PolicyInfo> table = {
#define X(name, id, knobs, summary) {RowPolicy::name, id, knobs, summary},
        DRAMSCOPE_MC_POLICIES(X)
#undef X
    };
    return table;
}

const PolicyInfo &
policyInfo(RowPolicy policy)
{
    return policyTable().at(size_t(policy));
}

const char *
policyId(RowPolicy policy)
{
    return policyInfo(policy).id;
}

std::optional<RowPolicy>
policyFromString(const std::string &id)
{
    for (const auto &info : policyTable()) {
        if (id == info.id)
            return info.policy;
    }
    return std::nullopt;
}

AddrDecoder::AddrDecoder(const dram::DeviceConfig &cfg)
    : banks_(cfg.numBanks), columns_(cfg.columnsPerRow()),
      rows_(cfg.rowsPerBank), space_(cfg.addressSpace())
{
    fatalIf(space_ == 0, "AddrDecoder: empty address space");
}

AddrDecoder::Decoded
AddrDecoder::decode(uint64_t addr) const
{
    addr %= space_;
    Decoded d;
    d.col = dram::ColAddr(addr % columns_);
    d.bank = dram::BankId((addr / columns_) % banks_);
    d.row = dram::RowAddr(addr / (uint64_t(columns_) * banks_));
    return d;
}

uint64_t
AddrDecoder::encode(dram::BankId bank, dram::RowAddr row,
                    dram::ColAddr col) const
{
    return (uint64_t(row) * banks_ + bank) * columns_ + col;
}

double
ScheduleStats::rowHitRate() const
{
    return served() ? double(rowHits) / double(served()) : 0.0;
}

double
ScheduleStats::actRatePerUs() const
{
    return spanPs > 0 ? double(acts) * 1.0e6 / double(spanPs) : 0.0;
}

void
ScheduleStats::publish(obs::MetricsRegistry &m) const
{
    m.counter("mc.req.rd").add(reads);
    m.counter("mc.req.wr").add(writes);
    m.counter("mc.rowhit").add(rowHits);
    m.counter("mc.rowmiss").add(rowMisses);
    m.counter("mc.rowconflict").add(rowConflicts);
    m.counter("mc.act").add(acts);
    m.counter("mc.pre").add(pres);
    m.counter("mc.ref").add(refs);
    if (mitigation != core::MitigationKind::None) {
        m.counter("mc.mitigation.fired").add(mitFired);
        m.counter("mc.mitigation.cmds").add(mitCmds);
        m.counter("mc.mitigation.lost_rowhits").add(mitLostRowHits);
    }
    for (size_t b = 0; b < bankActs.size(); ++b) {
        const std::string tag = "mc.bank" + std::to_string(b);
        m.counter(tag + ".act").add(bankActs[b]);
        m.counter(tag + ".rowhit").add(bankHits[b]);
    }
    auto &hist = m.histogram("mc.exposure.row_acts", 64, 0.0, 4096.0);
    for (const auto sample : exposureSamples)
        hist.add(double(sample));
}

std::string
ScheduleStats::summary() const
{
    char buf[320];
    const int n = std::snprintf(
        buf, sizeof(buf),
        "reqs=%llu rd=%llu wr=%llu hit=%llu miss=%llu conflict=%llu "
        "act=%llu pre=%llu ref=%llu hit-rate=%.4f act-per-us=%.3f "
        "max-row-acts=%llu span-ns=%lld",
        (unsigned long long)served(), (unsigned long long)reads,
        (unsigned long long)writes, (unsigned long long)rowHits,
        (unsigned long long)rowMisses, (unsigned long long)rowConflicts,
        (unsigned long long)acts, (unsigned long long)pres,
        (unsigned long long)refs, rowHitRate(), actRatePerUs(),
        (unsigned long long)maxRowActsPerRefWindow,
        (long long)(spanPs / 1000));
    // Mitigation fields appear only when one is active, keeping the
    // None summary byte-identical to the unmitigated scheduler's.
    if (mitigation != core::MitigationKind::None && n > 0 &&
        size_t(n) < sizeof(buf)) {
        std::snprintf(buf + n, sizeof(buf) - size_t(n),
                      " mit-fired=%llu mit-cmds=%llu mit-lost-hits=%llu",
                      (unsigned long long)mitFired,
                      (unsigned long long)mitCmds,
                      (unsigned long long)mitLostRowHits);
    }
    return buf;
}

namespace {

/** Exact ps conversion (same rounding as Host and the linter). */
int64_t
ps(double ns)
{
    return int64_t(std::llround(ns * 1000.0));
}

/** Rounds an issue time up to a whole nanosecond.  The device's
 *  timing checker works on truncated-ns timestamps; whole-ns issue
 *  times make its deltas exact, so a stream the ps-resolution linter
 *  accepts is also violation-free on the device. */
int64_t
ceilNs(int64_t t)
{
    return (t + 999) / 1000 * 1000;
}

/** How deep into a bank queue the scheduler looks for row hits: the
 *  reorder window of a real controller's scheduler CAM.  Bounds the
 *  per-decision cost regardless of queue depth. */
constexpr size_t kHitWindow = 64;

constexpr int64_t kNever = std::numeric_limits<int64_t>::max();

/** What the chosen command is (tie-break rank: hits beat row ops). */
enum class Action : uint8_t
{
    Col,  //!< RD or WR of a queued request (row hit).
    Act,  //!< Open the row of the oldest queued request.
    Pre,  //!< Close the row (conflict or policy-forced).
};

struct Candidate
{
    int64_t t = kNever;
    Action action = Action::Col;
    uint32_t bank = 0;
    size_t req = std::numeric_limits<size_t>::max();  //!< Request idx.
    bool mit = false;  //!< Mitigation work (forced close / victim op).

    bool
    beats(const Candidate &o) const
    {
        if (t != o.t)
            return t < o.t;
        // Injected mitigation work wins ties: it models the hardware
        // draining a mandatory RFM/victim refresh before demand.
        if (mit != o.mit)
            return mit;
        if (action != o.action)
            return uint8_t(action) < uint8_t(o.action);
        if (req != o.req)
            return req < o.req;
        return bank < o.bank;
    }
};

struct BankSched
{
    std::deque<size_t> q;  //!< Request indices, arrival order.
    bool open = false;
    dram::RowAddr openRow = 0;
    int64_t lastActPs = -1;
    int64_t lastPrePs = -1;
    int64_t lastUsePs = 0;        //!< Last ACT/RD/WR issue time.
    uint32_t hitsSinceAct = 0;    //!< Column commands this activation.
    bool conflictPre = false;     //!< Last close was a conflict close.

    /// @name Injected mitigation work (unused when mitigation=None).
    /// @{
    std::deque<dram::RowAddr> mitRows;  //!< Victim ACT..PRE cycles due.
    bool mitOpen = false;         //!< Open row is a mitigation victim.
    int64_t extraPs = 0;          //!< Post-sequence blocking (swaps).
    int64_t blockedUntil = 0;     //!< No ACT before this time.
    /// @}
};

} // namespace

ScheduleResult
schedule(const std::vector<Request> &reqs, const dram::DeviceConfig &cfg,
         const SchedulerOptions &opt)
{
    const AddrDecoder dec(cfg);
    const auto &tm = cfg.timing;
    const int64_t tck = ps(tm.tCkNs);
    const int64_t trcd = ps(tm.tRcdNs);
    const int64_t tras = ps(tm.tRasNs);
    const int64_t trp = ps(tm.tRpNs);
    const int64_t trc = ps(tm.tRcNs());
    const int64_t trrd = ps(tm.tRrdNs);
    const int64_t tfaw = ps(tm.tFawNs);
    const int64_t trfc = ps(tm.tRfcNs);
    const int64_t idle = ps(opt.maxRowIdleNs);
    const int64_t trefi = opt.refreshIntervalNs < 0
                              ? ps(tm.tRefiNs)
                              : opt.refreshIntervalNs * 1000;

    // The active defense; nullptr for None keeps every mitigation
    // branch below dead and the emitted program byte-identical to the
    // unmitigated scheduler.
    const std::unique_ptr<core::Mitigation> mit =
        core::makeMitigation(opt.mitigation, cfg, opt.mitigationOptions);

    ScheduleResult out;
    auto &prog = out.program;
    auto &st = out.stats;
    st.mitigation = opt.mitigation;
    st.bankHits.assign(cfg.numBanks, 0);
    st.bankMisses.assign(cfg.numBanks, 0);
    st.bankConflicts.assign(cfg.numBanks, 0);
    st.bankActs.assign(cfg.numBanks, 0);

    // Arrival order; stable so equal arrivals keep stream order.
    std::vector<size_t> order(reqs.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return reqs[a].arrivalPs < reqs[b].arrivalPs;
    });

    // Decode once; queue per bank in arrival order.  `pos` ranks a
    // request by arrival for the FCFS tie-break.
    std::vector<AddrDecoder::Decoded> where(reqs.size());
    std::vector<size_t> pos(reqs.size());
    std::vector<BankSched> banks(cfg.numBanks);
    for (size_t k = 0; k < order.size(); ++k) {
        const size_t r = order[k];
        where[r] = dec.decode(reqs[r].addr);
        pos[r] = k;
        banks[where[r].bank].q.push_back(r);
    }

    int64_t clock = 0;
    int64_t lastActAny = -1;
    std::deque<int64_t> faw;
    int64_t nextRef = trefi > 0 ? trefi : kNever;
    std::map<uint64_t, uint64_t> windowActs;  //!< (bank,row) -> ACTs.
    size_t pending = reqs.size();

    const auto arrival = [&](size_t r) { return reqs[r].arrivalPs; };

    const auto advanceTo = [&](int64_t t) {
        if (t > clock) {
            prog.sleepPs(t - clock);
            clock = t;
        }
    };

    const auto earliestAct = [&](const BankSched &b) {
        int64_t t = std::max(clock, b.blockedUntil);
        if (b.lastPrePs >= 0)
            t = std::max(t, b.lastPrePs + trp);
        if (b.lastActPs >= 0)
            t = std::max(t, b.lastActPs + trc);
        if (lastActAny >= 0)
            t = std::max(t, lastActAny + trrd);
        if (faw.size() == 4)
            t = std::max(t, faw.front() + tfaw);
        return t;
    };

    const auto earliestPre = [&](const BankSched &b) {
        return std::max(clock, b.lastActPs + tras);
    };

    /**
     * Drains the mitigation's pending sequences into per-bank work
     * queues and closes the exposure windows of the neutralized rows
     * (a victim refresh resets a row's accumulated disturbance).
     */
    const auto acceptSequences = [&]() {
        if (!mit)
            return;
        for (const auto &seq : mit->pendingCommands()) {
            ++st.mitFired;
            auto &b = banks[seq.bank];
            for (const auto r : seq.rows)
                b.mitRows.push_back(r);
            b.extraPs += seq.extraPs;
            for (const auto nr : seq.neutralized) {
                const auto it =
                    windowActs.find(uint64_t(seq.bank) << 32 | nr);
                if (it == windowActs.end())
                    continue;
                st.exposureSamples.push_back(it->second);
                st.maxRowActsPerRefWindow =
                    std::max(st.maxRowActsPerRefWindow, it->second);
                windowActs.erase(it);
            }
        }
    };

    /**
     * Demand ACT: resolves through the mitigation's indirection (row
     * swap), reports the logical activation, and accepts any newly
     * fired sequences.  @p for_mit issues a victim/migration cycle
     * instead: counted as a mitigation command, invisible to demand
     * stats and exposure windows.
     */
    const auto issueAct = [&](uint32_t bk, dram::RowAddr row,
                              bool for_mit) {
        auto &b = banks[bk];
        advanceTo(ceilNs(earliestAct(b)));
        const dram::RowAddr phys =
            (!for_mit && mit) ? mit->resolve(dram::BankId(bk), row) : row;
        prog.act(dram::BankId(bk), phys);
        const int64_t t = clock;
        clock += tck;
        b.open = true;
        b.lastActPs = t;
        b.lastUsePs = t;
        b.hitsSinceAct = 0;
        lastActAny = t;
        faw.push_back(t);
        if (faw.size() > 4)
            faw.pop_front();
        if (for_mit) {
            b.mitOpen = true;
            ++st.mitCmds;
            return;
        }
        b.openRow = row;  // Hit detection stays on logical addresses.
        ++st.acts;
        ++st.bankActs[bk];
        ++windowActs[uint64_t(bk) << 32 | phys];
        if (mit) {
            mit->onActivate(dram::BankId(bk), row, 1);
            acceptSequences();
        }
    };

    const auto issuePre = [&](uint32_t bk, int64_t not_before,
                              bool conflict) {
        auto &b = banks[bk];
        advanceTo(ceilNs(std::max(not_before, earliestPre(b))));
        prog.pre(dram::BankId(bk));
        b.lastPrePs = clock;
        clock += tck;
        b.open = false;
        if (b.mitOpen) {
            // Closing a victim/migration cycle; once the bank's
            // sequence is drained, any data-burst cost blocks the
            // next activation.
            b.mitOpen = false;
            b.conflictPre = false;
            ++st.mitCmds;
            if (b.mitRows.empty() && b.extraPs > 0) {
                b.blockedUntil = clock + b.extraPs;
                b.extraPs = 0;
            }
            return;
        }
        b.conflictPre = conflict;
        ++st.pres;
    };

    /** Arrived hits on @p b's open row that a forced close discards. */
    const auto countLostHits = [&](const BankSched &b) {
        const size_t depth = std::min(b.q.size(), kHitWindow);
        for (size_t k = 0; k < depth; ++k) {
            const size_t r = b.q[k];
            if (where[r].row == b.openRow && arrival(r) <= clock)
                ++st.mitLostRowHits;
        }
    };

    /** True while any bank still owes mitigation commands. */
    const auto anyMitWork = [&]() {
        if (!mit)
            return false;
        for (const auto &b : banks)
            if (b.mitOpen || !b.mitRows.empty())
                return true;
        return false;
    };

    /** Closes every open bank (tRAS-ordered) — REF / end of stream. */
    const auto drainOpenBanks = [&]() {
        for (;;) {
            uint32_t best = cfg.numBanks;
            int64_t best_t = kNever;
            for (uint32_t bk = 0; bk < cfg.numBanks; ++bk) {
                if (!banks[bk].open)
                    continue;
                const int64_t t = ceilNs(earliestPre(banks[bk]));
                if (t < best_t) {
                    best_t = t;
                    best = bk;
                }
            }
            if (best == cfg.numBanks)
                return;
            issuePre(best, clock, false);
        }
    };

    const auto closeExposureWindow = [&]() {
        for (const auto &[key, count] : windowActs) {
            (void)key;
            st.exposureSamples.push_back(count);
            st.maxRowActsPerRefWindow =
                std::max(st.maxRowActsPerRefWindow, count);
        }
        windowActs.clear();
    };

    while (pending > 0 || anyMitWork()) {
        // Per-bank best next command, then the global FR-FCFS pick.
        Candidate best;
        for (uint32_t bk = 0; bk < cfg.numBanks; ++bk) {
            auto &b = banks[bk];
            Candidate c;
            c.bank = bk;
            if (b.mitOpen) {
                // A victim/migration row is open: close it.
                c.action = Action::Pre;
                c.mit = true;
                c.t = ceilNs(earliestPre(b));
            } else if (!b.mitRows.empty()) {
                // Mitigation work owns the bank until its sequence
                // drains: force the demand row closed, then cycle the
                // victims.
                c.mit = true;
                if (b.open) {
                    c.action = Action::Pre;
                    c.t = ceilNs(earliestPre(b));
                } else {
                    c.action = Action::Act;
                    c.t = ceilNs(earliestAct(b));
                }
            } else if (!b.open) {
                if (b.q.empty())
                    continue;
                const size_t head = b.q.front();
                c.action = Action::Act;
                c.req = pos[head];
                c.t = ceilNs(
                    std::max(earliestAct(b), arrival(head)));
            } else {
                // Oldest hit within the scheduler window; arrived
                // hits are ready, future ones are prefetch targets.
                size_t hit_arrived = SIZE_MAX;
                size_t hit_any = SIZE_MAX;
                const size_t depth = std::min(b.q.size(), kHitWindow);
                for (size_t k = 0; k < depth; ++k) {
                    const size_t r = b.q[k];
                    if (where[r].row != b.openRow)
                        continue;
                    hit_any = std::min(hit_any, r);
                    if (arrival(r) <= clock)
                        hit_arrived = std::min(hit_arrived, r);
                }
                const bool cap_hit = opt.policy == RowPolicy::HitCap &&
                                     b.hitsSinceAct >= opt.maxRowHits;
                if (hit_arrived != SIZE_MAX && !cap_hit) {
                    c.action = Action::Col;
                    c.req = pos[hit_arrived];
                    c.t = ceilNs(std::max(clock, b.lastActPs + trcd));
                } else if (cap_hit && hit_any != SIZE_MAX) {
                    // Hits pending but the cap is exhausted: force a
                    // close so the re-ACT restarts the hit budget.
                    c.action = Action::Pre;
                    c.req = pos[hit_any];
                    c.t = ceilNs(earliestPre(b));
                } else {
                    // No ready hit.  A future hit can still be worth
                    // waiting for (open/timeout/cap), the oldest
                    // request forces a conflict close, and the policy
                    // may close on its own.
                    int64_t close_at = kNever;
                    size_t close_req = SIZE_MAX;
                    if (!b.q.empty() &&
                        where[b.q.front()].row != b.openRow &&
                        hit_any == SIZE_MAX) {
                        close_at = std::max(arrival(b.q.front()),
                                            earliestPre(b));
                        close_req = b.q.front();
                    }
                    if (opt.policy == RowPolicy::Closed)
                        close_at = std::min(close_at, earliestPre(b));
                    else if (opt.policy == RowPolicy::Timeout)
                        close_at =
                            std::min(close_at,
                                     std::max(b.lastUsePs + idle,
                                              earliestPre(b)));
                    int64_t col_at = kNever;
                    if (hit_any != SIZE_MAX &&
                        opt.policy != RowPolicy::Closed) {
                        col_at = std::max(arrival(hit_any),
                                          std::max(clock, b.lastActPs +
                                                              trcd));
                    }
                    if (col_at <= close_at && col_at != kNever) {
                        c.action = Action::Col;
                        c.req = pos[hit_any];
                        c.t = ceilNs(col_at);
                    } else if (close_at != kNever) {
                        c.action = Action::Pre;
                        c.req = close_req == SIZE_MAX
                                    ? std::numeric_limits<size_t>::max()
                                    : pos[close_req];
                        c.t = ceilNs(close_at);
                    } else {
                        continue;  // Idle open bank; nothing to do.
                    }
                }
            }
            if (c.beats(best))
                best = c;
        }
        panicIf(best.t == kNever,
                "mc::schedule: pending requests but no candidate");

        // Auto-refresh preempts once its deadline is due before the
        // chosen command would issue.
        if (nextRef != kNever && nextRef <= best.t) {
            drainOpenBanks();
            advanceTo(ceilNs(std::max(clock, nextRef)));
            prog.ref();
            clock += tck;
            prog.sleepPs(trfc);
            clock += trfc;
            ++st.refs;
            nextRef += trefi;
            closeExposureWindow();
            if (mit) {
                // The refresh-window boundary decays the defense's
                // state in sync with the exposure bookkeeping.
                mit->onRefreshWindow();
                acceptSequences();
            }
            continue;
        }

        auto &b = banks[best.bank];
        switch (best.action) {
          case Action::Act: {
            if (best.mit) {
                const dram::RowAddr victim = b.mitRows.front();
                b.mitRows.pop_front();
                issueAct(best.bank, victim, /*for_mit=*/true);
                break;
            }
            const size_t head = b.q.front();
            advanceTo(ceilNs(std::max(earliestAct(b), arrival(head))));
            issueAct(best.bank, where[head].row, /*for_mit=*/false);
            break;
          }
          case Action::Pre: {
            if (best.mit) {
                // Forced close for mitigation work: arrived hits on
                // the demand row are the tracker's collateral cost.
                if (!b.mitOpen)
                    countLostHits(b);
                issuePre(best.bank, clock, false);
                break;
            }
            const bool conflict =
                !b.q.empty() && where[b.q.front()].row != b.openRow;
            issuePre(best.bank, clock, conflict);
            break;
          }
          case Action::Col: {
            // Serve the picked request (it may sit mid-queue).
            size_t r = SIZE_MAX;
            size_t at = SIZE_MAX;
            const size_t depth = std::min(b.q.size(), kHitWindow);
            for (size_t k = 0; k < depth; ++k) {
                if (pos[b.q[k]] == best.req) {
                    r = b.q[k];
                    at = k;
                    break;
                }
            }
            panicIf(r == SIZE_MAX, "mc::schedule: lost hit candidate");
            advanceTo(
                ceilNs(std::max({clock, b.lastActPs + trcd,
                                 arrival(r)})));
            const auto &w = where[r];
            if (reqs[r].type == ReqType::Read) {
                prog.rd(w.bank, w.col);
                ++st.reads;
            } else {
                prog.wr(w.bank, w.col, splitmix64(reqs[r].addr));
                ++st.writes;
            }
            // Row-buffer outcome: the first column command of an
            // activation inherits the reason the row was opened.
            if (b.hitsSinceAct == 0) {
                if (b.conflictPre) {
                    ++st.rowConflicts;
                    ++st.bankConflicts[best.bank];
                } else {
                    ++st.rowMisses;
                    ++st.bankMisses[best.bank];
                }
                b.conflictPre = false;
            } else {
                ++st.rowHits;
                ++st.bankHits[best.bank];
            }
            ++b.hitsSinceAct;
            b.lastUsePs = clock;
            clock += tck;
            b.q.erase(b.q.begin() + long(at));
            --pending;
            break;
          }
        }
    }

    drainOpenBanks();
    closeExposureWindow();
    st.spanPs = clock;
    return out;
}

} // namespace mc
} // namespace dramscope
