/**
 * @file
 * Memory-controller front end (`dramscope::mc`): transaction-level
 * requests scheduled into in-spec Bender command programs.
 *
 * Every other layer of the repo drives the device with hand-written
 * command sequences — the DRAM Bender vantage point.  Real systems
 * reach DRAM through a memory controller that *reorders* transactions
 * behind per-bank queues, and that reordering is exactly what decides
 * disturbance exposure under realistic traffic.  This layer closes the
 * gap: a `Request{addr, type, arrivalPs}` stream is decoded against
 * the device geometry, queued per bank, and scheduled FR-FCFS
 * (first-ready, first-come-first-served: ready row hits beat older
 * row misses) into one flat `bender::Program` whose command issue
 * times satisfy every timing rule of `bender::lint` *by construction*
 * — the scheduler computes earliest legal issue times from the same
 * `dram::TimingParams` (tRCD/tRP/tRAS/tRC/tRRD/tFAW) the linter
 * checks, and pads gaps with exact integer-picosecond sleeps.
 *
 * The open-row policy is configurable; the registry of policies lives
 * in the DRAMSCOPE_MC_POLICIES X-macro below, and the table in
 * docs/MC.md is machine-checked against it by tools/check_docs.py
 * (the same treatment as docs/LINT_RULES.md).
 */

#ifndef DRAMSCOPE_MC_MC_H
#define DRAMSCOPE_MC_MC_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bender/program.h"
#include "core/protect/mitigation.h"
#include "dram/config.h"
#include "util/metrics.h"

namespace dramscope {
namespace mc {

/** Transaction kind of one request. */
enum class ReqType : uint8_t
{
    Read,
    Write,
};

/** One transaction presented to the controller. */
struct Request
{
    /**
     * Flat device address in RD-burst (column) units; decoded by
     * AddrDecoder.  Addresses wrap modulo the device's address space,
     * so a recorded trace replays on any geometry.
     */
    uint64_t addr = 0;
    ReqType type = ReqType::Read;
    int64_t arrivalPs = 0;  //!< Arrival time at the controller.

    bool operator==(const Request &) const = default;
};

/**
 * The open-row policy registry: X(enumerator, "keyword", "knobs",
 * "summary").  tools/check_docs.py parses these entries and requires
 * docs/MC.md to list exactly this set, in this order, with these
 * knob strings.
 */
#define DRAMSCOPE_MC_POLICIES(X)                                            \
    X(Open, "open", "-",                                                    \
      "keep the row open until a conflicting request or a refresh "         \
      "forces a precharge")                                                 \
    X(Closed, "closed", "-",                                                \
      "precharge as soon as no arrived request hits the open row")          \
    X(Timeout, "timeout", "max_row_idle=200ns",                             \
      "precharge once the open row has been idle for max_row_idle")         \
    X(HitCap, "cap", "max_row_hits=4",                                      \
      "precharge after max_row_hits consecutive row hits, so one hot "      \
      "row cannot starve the bank queue")

/** Open-row policy ids. */
enum class RowPolicy : uint8_t
{
#define X(name, id, knobs, summary) name,
    DRAMSCOPE_MC_POLICIES(X)
#undef X
};

/** Static description of one policy. */
struct PolicyInfo
{
    RowPolicy policy;
    const char *id;       //!< Stable keyword ("open", "cap", ...).
    const char *knobs;    //!< Knob summary with defaults ("-" if none).
    const char *summary;  //!< One-line description (doc table).
};

/** The full registry, indexed by RowPolicy enumerator order. */
const std::vector<PolicyInfo> &policyTable();

/** Registry entry for @p policy. */
const PolicyInfo &policyInfo(RowPolicy policy);

/** Stable keyword of @p policy ("open", "closed", ...). */
const char *policyId(RowPolicy policy);

/** Parses a policy keyword; nullopt on an unknown one. */
std::optional<RowPolicy> policyFromString(const std::string &id);

/**
 * Flat-address decode against one device geometry.  The mapping is
 * RoBaCo (row : bank : column, column fastest): sequential addresses
 * walk the columns of one row, then the same row of the next bank, so
 * streaming traffic both row-buffer-hits and bank-interleaves — the
 * layout real controllers pick for exactly that reason.
 */
class AddrDecoder
{
  public:
    explicit AddrDecoder(const dram::DeviceConfig &cfg);

    /** One decoded request address. */
    struct Decoded
    {
        dram::BankId bank = 0;
        dram::RowAddr row = 0;
        dram::ColAddr col = 0;
    };

    /** Decodes @p addr (wraps modulo addressSpace()). */
    Decoded decode(uint64_t addr) const;

    /** Inverse of decode() for in-range coordinates. */
    uint64_t encode(dram::BankId bank, dram::RowAddr row,
                    dram::ColAddr col) const;

    uint32_t banks() const { return banks_; }
    uint32_t columns() const { return columns_; }
    uint32_t rows() const { return rows_; }

    /** Distinct flat addresses (banks * rows * columns). */
    uint64_t addressSpace() const { return space_; }

  private:
    uint32_t banks_;
    uint32_t columns_;
    uint32_t rows_;
    uint64_t space_;
};

/** Scheduler knobs (see docs/MC.md for the policy table). */
struct SchedulerOptions
{
    RowPolicy policy = RowPolicy::Open;

    /** Timeout policy: close the row after this much idle time. */
    double maxRowIdleNs = 200.0;

    /** HitCap policy: consecutive hits before a forced precharge. */
    uint32_t maxRowHits = 4;

    /**
     * Auto-refresh insertion interval in whole nanoseconds: < 0
     * selects the config's tREFI, 0 disables REF insertion, > 0
     * overrides.  Each REF is preceded by precharging every open bank
     * and followed by a tRFC wait, and it closes one
     * aggressor-exposure window.
     */
    int64_t refreshIntervalNs = -1;

    /**
     * RowHammer mitigation active inside the scheduler (see the
     * DRAMSCOPE_MITIGATIONS registry in core/protect/mitigation.h).
     * The mitigation observes every demand ACT and each REF, and its
     * command sequences are injected into the per-bank queues under
     * the same FR-FCFS timing math as demand traffic — so defense
     * cost shows up as delayed reads and lost row hits.  None keeps
     * the scheduler byte-identical to the unmitigated one.
     */
    core::MitigationKind mitigation = core::MitigationKind::None;

    /** Knobs of the selected mitigation. */
    core::MitigationOptions mitigationOptions;
};

/** Row-buffer outcome and command counts of one scheduling run. */
struct ScheduleStats
{
    uint64_t reads = 0;         //!< RD requests served.
    uint64_t writes = 0;        //!< WR requests served.
    uint64_t rowHits = 0;       //!< Served from the open row.
    uint64_t rowMisses = 0;     //!< Bank was precharged: ACT needed.
    uint64_t rowConflicts = 0;  //!< Another row open: PRE + ACT.
    uint64_t acts = 0;
    uint64_t pres = 0;
    uint64_t refs = 0;
    int64_t spanPs = 0;  //!< First-issue to end-of-program time.

    /// @name Mitigation accounting (all zero when mitigation is None).
    /// @{

    /** Mitigation active during the run (gates summary/publish). */
    core::MitigationKind mitigation = core::MitigationKind::None;

    /** Command sequences the mitigation injected. */
    uint64_t mitFired = 0;

    /** ACT/PRE commands issued on behalf of the mitigation (not
     *  counted in acts/pres/bankActs or the exposure windows). */
    uint64_t mitCmds = 0;

    /** Arrived row hits discarded because mitigation work forced the
     *  row closed — the tracker-false-positive cost in lost hits. */
    uint64_t mitLostRowHits = 0;

    /// @}

    /**
     * Aggressor-row exposure: the maximum number of ACTs any single
     * (bank, row) received inside one refresh window — the quantity a
     * RowHammer mitigation has to bound.
     */
    uint64_t maxRowActsPerRefWindow = 0;

    /// @name Per-bank breakdowns, indexed by bank id.
    /// @{
    std::vector<uint64_t> bankHits;
    std::vector<uint64_t> bankMisses;
    std::vector<uint64_t> bankConflicts;
    std::vector<uint64_t> bankActs;
    /// @}

    /** Served requests (reads + writes). */
    uint64_t served() const { return reads + writes; }

    /** rowHits / served(), 0 when nothing was served. */
    double rowHitRate() const;

    /** ACT commands per microsecond of program span. */
    double actRatePerUs() const;

    /**
     * Publishes the additive counters (mc.req.rd, mc.req.wr,
     * mc.rowhit, mc.rowmiss, mc.rowconflict, mc.act, mc.pre, mc.ref,
     * mc.bank<b>.act, mc.bank<b>.rowhit — plus
     * mc.mitigation.{fired,cmds,lost_rowhits} when a mitigation is
     * active) and the per-(row, window)
     * exposure histogram mc.exposure.row_acts into @p m.  Everything
     * published is an exact integer add, so merged parallel-sweep
     * registries equal serial ones bit for bit.
     */
    void publish(obs::MetricsRegistry &m) const;

    /** One-line deterministic summary (CLI / sweep payloads). */
    std::string summary() const;

    /** Exposure-histogram samples recorded by the scheduler: one
     *  ACT-count per (bank, row, refresh-window) touched. */
    std::vector<uint64_t> exposureSamples;
};

/** A scheduling run: the emitted program plus its statistics. */
struct ScheduleResult
{
    bender::Program program;
    ScheduleStats stats;
};

/**
 * Schedules @p reqs against the geometry/timing of @p cfg and returns
 * a flat command program whose issue times are in spec by
 * construction — `bender::lint::lint(result.program, cfg)` reports
 * zero diagnostics (locked down by tests/test_mc.cc on every device
 * backend).
 *
 * Scheduling model (FR-FCFS):
 *  1. Per bank, the oldest *arrived* request hitting the open row is
 *     the hit candidate; without one, the oldest queued request is.
 *  2. Each bank's next command (RD/WR on a hit, PRE on a conflict or
 *     a policy-forced close, ACT on a miss) gets its earliest legal
 *     issue time from the bank FSM and the global tRRD/tFAW windows,
 *     rounded up to a whole nanosecond so the device's ns-resolution
 *     timing checker agrees with the ps-resolution linter.
 *  3. The globally earliest command issues; ties prefer column
 *     commands (row hits) over ACT/PRE, then the older request, then
 *     the lower bank.  Auto-refresh preempts when its deadline is
 *     reached: all banks precharge, REF issues, tRFC elapses.
 *  4. At end of stream every open row is precharged (no open-at-end
 *     lint warnings) — the program is replayable as-is.
 *
 * Requests are processed in arrival order (stable-sorted by
 * arrivalPs).  The scheduler is deterministic: equal inputs produce
 * byte-identical programs and stats.
 */
ScheduleResult schedule(const std::vector<Request> &reqs,
                        const dram::DeviceConfig &cfg,
                        const SchedulerOptions &opt = {});

} // namespace mc
} // namespace dramscope

#endif // DRAMSCOPE_MC_MC_H
