/**
 * @file
 * The policy x workload sweep unit.
 */

#include "mc/sweep.h"

#include <sstream>
#include <stdexcept>

#include "bender/lint.h"
#include "util/rng.h"

namespace dramscope {
namespace mc {

const std::vector<SweepCell> &
sweepPlan()
{
    static const std::vector<SweepCell> plan =
        sweepPlan({core::MitigationKind::None});
    return plan;
}

std::vector<SweepCell>
sweepPlan(const std::vector<core::MitigationKind> &mitigations)
{
    std::vector<SweepCell> cells;
    for (const auto mitigation : mitigations)
        for (const auto kind : workloadTable())
            for (const auto &info : policyTable())
                cells.push_back({kind, info.policy, mitigation});
    return cells;
}

ScheduleResult
buildSweepCellSchedule(const SweepCell &cell, uint32_t shard,
                       const dram::DeviceConfig &cfg,
                       const McSweepOptions &opt)
{
    WorkloadOptions wopt;
    wopt.requests = opt.requests;
    // Split by shard index, not a live RNG: the workload must be the
    // same bytes on every attempt and under every job count.  The
    // index is folded modulo the workload x policy block, so every
    // mitigation block of the grid faces identical traffic (and the
    // leading None block keeps its historical seeds).
    const uint64_t block =
        uint64_t(workloadTable().size()) * policyTable().size();
    wopt.seed = hashCombine(opt.seed, shard % block);
    const auto reqs = makeWorkload(cell.workload, cfg, wopt);

    SchedulerOptions sopt;
    sopt.policy = cell.policy;
    sopt.mitigation = cell.mitigation;
    return schedule(reqs, cfg, sopt);
}

std::string
runSweepCell(core::ShardContext &ctx, const SweepCell &cell,
             const McSweepOptions &opt)
{
    const auto &cfg = ctx.host.config();
    auto result = buildSweepCellSchedule(cell, ctx.shard, cfg, opt);

    const auto report = bender::lint::lint(result.program, cfg);
    for (const auto &d : report.diags) {
        if (!d.expected) {
            std::ostringstream os;
            os << "mc shard " << ctx.shard << " ("
               << workloadId(cell.workload) << "/"
               << policyId(cell.policy);
            if (cell.mitigation != core::MitigationKind::None)
                os << "/" << core::mitigationId(cell.mitigation);
            os << "): scheduler emitted an out-of-spec program: "
               << d.message;
            throw std::runtime_error(os.str());
        }
    }

    ctx.host.run(result.program);
    if (ctx.host.metrics() != nullptr)
        result.stats.publish(*ctx.host.metrics());

    std::ostringstream os;
    os << "workload=" << workloadId(cell.workload)
       << " policy=" << policyId(cell.policy);
    if (cell.mitigation != core::MitigationKind::None)
        os << " mitigation=" << core::mitigationId(cell.mitigation);
    os << " " << result.stats.summary();
    return os.str();
}

core::SweepReport
runMcSweep(core::SweepRunner &runner, const McSweepOptions &opt,
           const core::ResilienceOptions &ropts)
{
    const auto plan = sweepPlan(opt.mitigations);
    return runner.runResilient(
        uint32_t(plan.size()),
        [&](core::ShardContext &ctx) {
            return runSweepCell(ctx, plan.at(ctx.shard), opt);
        },
        ropts);
}

} // namespace mc
} // namespace dramscope
