/**
 * @file
 * SS VI-C demo: the power side channel created by edge subarrays and
 * coupled-row activation.  Activations of edge or coupled rows drive
 * two wordlines instead of one, so activation energy reveals which
 * region of the bank a victim process touches.
 */

#include <cstdio>

#include "bender/host.h"
#include "dram/chip.h"
#include "util/table.h"

using namespace dramscope;

namespace {

/** Wordlines driven by N activations of one row. */
uint64_t
wordlinesFor(dram::Chip &chip, bender::Host &host, dram::RowAddr row,
             int n)
{
    const uint64_t before = chip.stats().wordlinesDriven;
    bender::Program p;
    p.loopBegin(uint64_t(n))
        .act(0, row)
        .sleepNs(35)
        .pre(0)
        .sleepNs(15)
        .loopEnd();
    host.run(p);
    return chip.stats().wordlinesDriven - before;
}

} // namespace

int
main()
{
    printBanner("Power side channel from edge and coupled rows "
                "(SS VI-C)");

    // A coupled x4 part: every ACT drives the partner wordline too,
    // and edge-subarray ACTs drive the tandem structure.
    const dram::DeviceConfig cfg = dram::makePreset("A_x4_2016");
    dram::Chip chip(cfg);
    bender::Host host(chip);
    const auto &map = chip.subarrayMap();

    constexpr int kActs = 1000;
    Table t({"Accessed row (physical)", "Region",
             "Wordlines driven / ACT", "Relative ACT energy"});

    struct Probe
    {
        dram::RowAddr row;
        const char *label;
    };
    const Probe probes[] = {
        {1000, "typical subarray"},
        {16000, "edge subarray (top of section 0)"},
        {100, "edge subarray (bottom of section 0)"},
        {70000, "typical, upper bank half"},
    };
    double baseline = 0;
    for (const auto &probe : probes) {
        const dram::RowAddr logical =
            dram::remapRow(cfg.rowRemap, probe.row);
        const uint64_t wl = wordlinesFor(chip, host, logical, kActs);
        const double per_act = double(wl) / kActs;
        if (baseline == 0)
            baseline = per_act;
        t.addRow({Table::num(uint64_t(probe.row)),
                  std::string(probe.label) +
                      (map.inEdgeSubarray(probe.row) ? " [edge]" : ""),
                  Table::num(per_act, 3),
                  Table::num(per_act / baseline, 3)});
    }
    t.print();

    std::printf(
        "\nA power analyst watching activation energy can distinguish "
        "edge-subarray and coupled-row accesses from ordinary ones: "
        "on this part every ACT already drives two wordlines (coupled "
        "pair) and edge accesses drive the tandem structure on top.  "
        "Compare an uncoupled part:\n\n");

    const dram::DeviceConfig plain_cfg = dram::makePreset("A_x4_2018");
    dram::Chip plain(plain_cfg);
    bender::Host host2(plain);
    Table t2({"Device", "Typical row WLs/ACT", "Edge row WLs/ACT"});
    const uint64_t typ = wordlinesFor(plain, host2, 1000, kActs);
    const uint64_t edge = wordlinesFor(plain, host2, 32000, kActs);
    t2.addRow({plain_cfg.name, Table::num(double(typ) / kActs, 3),
               Table::num(double(edge) / kActs, 3)});
    t2.addRow({cfg.name + " (coupled)", "2", "4"});
    t2.print();
    return 0;
}
