/**
 * @file
 * The full DRAMScope methodology, end to end, on one device: starting
 * from nothing but the command interface, recover the internal row
 * remapping, subarray structure, edge sections, coupled rows, cell
 * polarity and the data swizzling — then print the report the paper's
 * Table III / Figure 7 would show for this chip.
 *
 * Usage: reverse_engineer [preset-id]   (default: A_x4_2016)
 */

#include <cstdio>
#include <string>

#include "bender/host.h"
#include "core/re_adjacency.h"
#include "core/re_coupled.h"
#include "core/re_polarity.h"
#include "core/re_subarray.h"
#include "core/re_swizzle.h"
#include "dram/chip.h"
#include "util/table.h"

using namespace dramscope;

int
main(int argc, char **argv)
{
    const std::string preset = argc > 1 ? argv[1] : "A_x4_2016";
    const dram::DeviceConfig cfg = dram::makePreset(preset);
    dram::Chip chip(cfg);
    bender::Host host(chip);

    std::printf("DRAMScope reverse-engineering report for %s\n",
                preset.c_str());
    std::printf("(all findings below are derived from ACT/PRE/RD/WR "
                "sequences only)\n");

    // ---- Step 1: row adjacency and internal remapping (AIB). ----
    printBanner("Step 1: single-sided RowHammer adjacency probing");
    core::AdjacencyMapper adjacency(host);
    const auto scheme = adjacency.detectRemapScheme(1024);
    std::printf("internal row remapping: %s\n",
                scheme == dram::RowRemapScheme::None
                    ? "none (sequential order preserved)"
                    : "8-row block reflection (Mfr. A style)");
    const auto probe = adjacency.probe(1029);
    std::printf("example: hammering row 1029 flips rows");
    for (const auto n : probe.neighbors)
        std::printf(" %u", n);
    std::printf("\n");

    // ---- Step 2: subarray structure (RowCopy). ----
    printBanner("Step 2: RowCopy boundary scan");
    core::SubarrayMapper subarrays(host);
    const auto d = subarrays.discoverFirstSection();
    std::printf("subarray heights of the first edge section:");
    for (const auto h : d.heights)
        std::printf(" %u", h);
    std::printf("\nedge section size: %u rows\n", d.sectionRows);
    std::printf("bitline structure: %s; cross-subarray copies are "
                "%sinverted\n",
                d.openBitline ? "open" : "folded",
                d.copyInvertsData ? "" : "NOT ");
    std::printf("edge-pair tandem (O5): %s\n",
                d.edgePairConfirmed ? "confirmed" : "not observed");
    Rng rng(0xD15C);
    std::printf("structure periodic across the bank: %s\n",
                subarrays.verifyPeriodicity(d, 8, rng) ? "yes" : "no");

    // ---- Step 3: coupled rows (AIB at a distance). ----
    printBanner("Step 3: coupled-row detection");
    core::CoupledOptions copts;
    copts.probeRow = 1200;
    core::CoupledRowDetector coupled(host, copts);
    const auto distance = coupled.detect();
    if (distance) {
        std::printf("activating row n also activates row n + %u "
                    "(O3)\n",
                    *distance);
    } else {
        std::printf("no coupled-row activation observed\n");
    }

    // ---- Step 4: cell polarity (retention test). ----
    printBanner("Step 4: retention-based true/anti cell test");
    core::CellTypeClassifier polarity(host);
    std::vector<dram::RowAddr> probes;
    uint32_t row = 0;
    for (const auto h : d.heights) {
        probes.push_back(row + h / 2);
        row += h;
        if (probes.size() == 4)
            break;
    }
    const auto pol = polarity.classify(probes);
    for (const auto &p : pol.probes) {
        std::printf("  row %6u: %zu 1->0 flips, %zu 0->1 flips -> "
                    "%s-cells\n",
                    p.row, p.onesToZeros, p.zerosToOnes,
                    p.polarity == dram::CellPolarity::True ? "true"
                                                           : "anti");
    }
    std::printf("polarity policy: %s\n",
                pol.mixed ? "true/anti interleaved per subarray "
                            "(Mfr. C style)"
                          : "all true-cells (Mfr. A/B style)");

    // ---- Step 5: data swizzling (AIB influence + RowCopy). ----
    printBanner("Step 5: data-swizzling reconstruction");
    core::SwizzleOptions sopts;
    sopts.victimGroups = 200;
    sopts.baseRow = 1024;
    sopts.subarrayBoundary = d.heights.at(0);
    sopts.rowRemap = scheme;
    core::SwizzleReverser swizzle(host, sopts);
    const auto sw = swizzle.discover();
    std::printf("one RD command gathers bits from %u MATs (O1)\n",
                sw.matsPerRow);
    std::printf("measured MAT width: %u cells (O2)\n", sw.matWidth);
    if (!sw.recoveredPerm.empty()) {
        std::printf("intra-group cell order (host bit slots): {");
        for (size_t k = 0; k < sw.recoveredPerm.size(); ++k)
            std::printf("%s%u", k ? "," : "", sw.recoveredPerm[k]);
        std::printf("}\n");
    }

    printBanner("Summary vs hidden ground truth");
    Table t({"Property", "Reverse engineered", "Ground truth"});
    t.addRow({"remap", scheme == cfg.rowRemap ? "match" : "MISMATCH",
              ""});
    t.addRow({"section rows", Table::num(uint64_t(d.sectionRows)),
              Table::num(uint64_t(cfg.edgeSectionRows))});
    t.addRow({"coupled distance",
              distance ? Table::num(uint64_t(*distance)) : "none",
              cfg.coupledRowDistance
                  ? Table::num(uint64_t(*cfg.coupledRowDistance))
                  : "none"});
    t.addRow({"MAT width", Table::num(uint64_t(sw.matWidth)),
              Table::num(uint64_t(cfg.matWidth))});
    t.print();
    return 0;
}
