/**
 * @file
 * Quickstart: build a simulated chip, mount a RowHammer attack
 * through the Bender-style host, and inspect the bitflips.
 *
 * This is the 60-second tour of the library; see
 * examples/reverse_engineer.cpp for the full DRAMScope methodology.
 */

#include <cstdio>

#include "bender/host.h"
#include "dram/chip.h"

using namespace dramscope;

int
main()
{
    // A Mfr. A DDR4 x4 chip from 2016 — the paper's main subject.
    dram::DeviceConfig cfg = dram::makePreset("A_x4_2016");
    dram::Chip chip(cfg);
    bender::Host host(chip);

    std::printf("DRAMScope quickstart on preset %s\n", cfg.name.c_str());
    std::printf("  rows/bank=%u  row bits=%u  MAT width=%u\n",
                cfg.rowsPerBank, cfg.rowBits, cfg.matWidth);

    // Arm a victim row with all-ones and its aggressor with zeros.
    const dram::BankId bank = 0;
    const dram::RowAddr victim = 1000, aggressor = 1001;
    host.writeRowPattern(bank, victim, ~0ULL);
    host.writeRowPattern(bank, aggressor, 0);

    // Single-sided RowHammer: 300K activations, 35ns open time each,
    // the paper's standard attack.
    host.hammer(bank, aggressor, 300000);

    // Read the victim back and count the activate-induced bitflips.
    const BitVec bits = host.readRowBits(bank, victim);
    const size_t flips = cfg.rowBits - bits.popcount();
    std::printf("RowHammer: %zu bitflips in the victim row (BER %.4f)\n",
                flips, double(flips) / cfg.rowBits);

    // RowPress: far fewer activations, each held open for 7.8us.
    host.writeRowPattern(bank, victim, ~0ULL);
    host.press(bank, aggressor, 8192);
    const BitVec pressed = host.readRowBits(bank, victim);
    const size_t press_flips = cfg.rowBits - pressed.popcount();
    std::printf("RowPress : %zu bitflips with only 8K activations "
                "(BER %.4f)\n",
                press_flips, double(press_flips) / cfg.rowBits);

    // RowCopy: an out-of-spec in-DRAM copy between same-subarray rows.
    host.writeRowPattern(bank, victim, 0xC0FFEEULL);
    host.rowCopy(bank, victim, victim + 4);
    const bool copied =
        host.readRow(bank, victim + 4) == host.readRow(bank, victim);
    std::printf("RowCopy  : same-subarray copy %s\n",
                copied ? "succeeded" : "failed");
    return 0;
}
