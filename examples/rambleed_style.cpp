/**
 * @file
 * RAMBleed-style secret reading, corrected for DRAMScope's findings
 * (SS VI-A): "Pinpoint RowHammer and RAMBleed assume AIBs are only
 * affected by row-wise (vertical) data patterns.  However, our
 * findings suggest that the influence of the column-wise (horizontal)
 * data pattern should be considered ... it is possible to increase
 * the accuracy of the existing data pattern-aware AIB attacks."
 *
 * The attacker never reads the secret row.  It hammers the secret row
 * (activation needs no read permission) and watches which cells of
 * its own sampling row flip: the directly-adjacent aggressor value
 * (O12, Aggr0) modulates each cell's flip threshold, so the secret
 * bit above a sampling cell is encoded in that cell's first-flip
 * activation count.  A reference run that hammers an
 * attacker-controlled row from the other side probes the SAME cell
 * thresholds with known data, so the per-cell process variation
 * cancels exactly in the ratio — the horizontal-aware decoding the
 * paper says RAMBleed needs.
 *
 * Geometry used (6F^2, O7-O10): with an even sampling row, charged
 * cells on even bitlines and discharged cells on odd bitlines face
 * the UPPER aggressor through their susceptible gate, and the
 * complementary assignment faces the LOWER aggressor.  The attacker
 * therefore uses sampling pattern 1010... for the secret-side run and
 * its inverse for the reference run.
 */

#include <array>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bender/host.h"
#include "core/physmap.h"
#include "dram/chip.h"
#include "util/rng.h"

using namespace dramscope;

int
main()
{
    // HBM2 runs at room temperature (as in the paper), which gives
    // the long retention headroom the count sweep needs; the probes
    // here deliberately exceed one refresh window, an idealization a
    // real attacker would trade for more repetitions.
    const dram::DeviceConfig cfg = dram::makePreset("HBM2_A");
    dram::Chip chip(cfg);
    bender::Host host(chip);
    const auto map = core::PhysMap::fromSwizzle(
        chip.swizzle(), cfg.columnsPerRow(), cfg.rdDataBits);

    // Layout: reference row (attacker) / sampling row (attacker) /
    // secret row (victim), physically consecutive.  HBM2 remaps rows
    // internally (pitfall 2), so the attacker addresses the physical
    // rows through the remap it reverse engineered.
    auto logical = [&](dram::RowAddr phys) {
        return dram::remapRow(cfg.rowRemap, phys);
    };
    const dram::RowAddr ref_row = logical(2999),
                        sampling_row = logical(3000),
                        secret_row = logical(3001);

    // The victim's secret, unknown and unreadable to the attacker.
    BitVec secret(cfg.rowBits);
    Rng secret_rng(0x5EC12E7ULL);
    for (size_t i = 0; i < secret.size(); ++i)
        secret.set(i, secret_rng.chance(0.5));
    host.writeRowBits(0, secret_row, map.toHost(secret));

    std::printf("RAMBleed-style read-out on %s\n", cfg.name.c_str());
    std::printf("secret row %u holds %u unknown bits; the attacker "
                "reads only its own rows\n\n",
                secret_row, cfg.rowBits);

    // Per-cell sampling value that makes the given side's aggressor
    // hit the susceptible gate: value 1 (charged) on even bitlines
    // for the upper side, inverted for the lower side.
    BitVec upper_sampling(cfg.rowBits);
    upper_sampling.fillPattern(0b01, 2);  // 1 on even bitlines.
    const BitVec lower_sampling = upper_sampling.inverted();
    // Reference aggressor: known data, opposite of the sampling value
    // everywhere (no Aggr0 suppression).
    const BitVec ref_data = lower_sampling.inverted();

    // Geometric count sweep; the first count that flips a cell
    // approximates its Hcnt within one step (1.08x).  The ceiling
    // covers even the strongest suppressed cell (T_max / weakest
    // rate).
    std::vector<uint64_t> counts;
    for (double c = 500000; c < 60000000; c *= 1.08)
        counts.push_back(uint64_t(c));

    // For the reference run the attacker refreshes its own aggressor
    // row before every probe (the secret row needs no help: hammering
    // keeps it constantly restored).
    auto sweep = [&](const BitVec &sampling_phys,
                     dram::RowAddr aggressor, const BitVec *aggr_data) {
        std::vector<int> first(cfg.rowBits, 999);
        const BitVec sampling_host = map.toHost(sampling_phys);
        for (size_t k = 0; k < counts.size(); ++k) {
            host.writeRowBits(0, sampling_row, sampling_host);
            if (aggr_data)
                host.writeRowBits(0, aggressor, map.toHost(*aggr_data));
            host.hammer(0, aggressor, counts[k]);
            const BitVec read =
                map.toPhysical(host.readRowBits(0, sampling_row));
            for (size_t i = 0; i < cfg.rowBits; ++i) {
                if (read.get(i) != sampling_phys.get(i) &&
                    first[i] == 999)
                    first[i] = int(k);
            }
        }
        return first;
    };

    // Run A: hammer the secret row (upper aggressor).
    const auto first_secret =
        sweep(upper_sampling, secret_row, nullptr);
    // Run B: reference — hammer the attacker's own lower row.
    const auto first_ref = sweep(lower_sampling, ref_row, &ref_data);

    // Decode.  Per cell, ln(Hcnt_secret / Hcnt_ref), corrected by the
    // known victim-pattern factor, obeys (O12 + the joint-suppression
    // rule; x_j = [secret_j == sampling_j]):
    //
    //   L_i = alpha_v * x_i + beta_v * (x_{i-2} + x_{i+2})
    //
    // because with the alternating sampling pattern the distance-one
    // joint condition is blocked while distance-two stays live, and
    // cells at i +- 2 share the sampling value of cell i.  The
    // per-cell threshold cancels in the ratio, so a few rounds of
    // iterative refinement over the +-2 chain recover every x_i.
    const double ln_step = std::log(1.08);
    const double vic_boost[2] = {1.12, 1.02};
    const double a0[2] = {0.58, 0.72};   // Aggr0 suppression.
    const double a2[2] = {0.38, 0.30};   // Aggr+-2 (full, per side
                                         // sqrt).
    // Classification per cell: 2 = measured on both sides, 1 =
    // secret-side censored (the sweep ceiling cut it off, itself
    // strong evidence of suppression, i.e. x = 1), 0 = undecidable.
    std::vector<double> ell(cfg.rowBits, 0.0);
    std::vector<int> kind(cfg.rowBits, 0);
    for (size_t i = 0; i < cfg.rowBits; ++i) {
        if (first_ref[i] == 999)
            continue;  // Cell too strong even unsuppressed.
        const bool v = upper_sampling.get(i);
        const double correction = std::log(
            vic_boost[v ? 0 : 1] / vic_boost[v ? 1 : 0]);
        if (first_secret[i] == 999) {
            // Censored on the secret side.  Decisive only when the
            // reference shows the cell is weak enough that an
            // UNSUPPRESSED secret-side run must have flipped within
            // the sweep: then the censoring itself proves
            // suppression (x = 1).
            if (counts[size_t(first_ref[i])] * 3 < counts.back() * 2)
                kind[i] = 1;
            continue;
        }
        ell[i] = ln_step * double(first_secret[i] - first_ref[i]) -
                 correction;
        kind[i] = 2;
    }

    // Exact chain decoding.  Within one MAT and one bitline parity,
    // the cells form a chain coupled at distance two:
    //     ell_i = alpha_v x_i + beta_v (x_{i-2} + x_{i+2})
    // (the joint suppression never crosses a MAT boundary).  With
    // exact measurements this is a second-order hidden state chain,
    // solved optimally per chain by Viterbi over (x_{prev}, x_cur).
    std::vector<int> x(cfg.rowBits, 0);
    const uint32_t mat_width = cfg.matWidth;
    for (uint32_t mat = 0; mat < cfg.rowBits / mat_width; ++mat) {
        for (uint32_t parity = 0; parity < 2; ++parity) {
            std::vector<uint32_t> pos;
            for (uint32_t p = mat * mat_width + parity;
                 p < (mat + 1) * mat_width; p += 2)
                pos.push_back(p);
            const size_t n = pos.size();
            if (n == 0)
                continue;
            const int vi = upper_sampling.get(pos[0]) ? 1 : 0;
            const double alpha = std::log(1.0 / a0[vi]);
            const double beta = 0.5 * std::log(1.0 / a2[vi]);

            auto emission = [&](size_t t, int xm, int xc, int xp) {
                if (kind[pos[t]] != 2)
                    return 0.0;  // Unmeasured: no evidence.
                double pred = alpha * xc;
                if (t > 0)
                    pred += beta * xm;
                if (t + 1 < n)
                    pred += beta * xp;
                const double d = ell[pos[t]] - pred;
                return d * d;
            };

            // Viterbi over states (x_{t-1}, x_t); the emission of
            // step t-1 is charged on the transition into x_t.
            constexpr double kInf = 1e18;
            double cost[4];
            for (int st = 0; st < 4; ++st)
                cost[st] = kInf;
            std::vector<std::array<int, 4>> bp(n);
            for (int x0 = 0; x0 < 2; ++x0)
                for (int x1 = 0; x1 < 2; ++x1)
                    cost[x0 * 2 + x1] =
                        (n >= 2) ? emission(0, 0, x0, x1) : 0.0;
            for (size_t t = 2; t < n; ++t) {
                double next[4];
                for (int st = 0; st < 4; ++st)
                    next[st] = kInf;
                std::array<int, 4> choices{};
                for (int st = 0; st < 4; ++st) {
                    const int xm = st / 2, xc = st % 2;
                    for (int xn = 0; xn < 2; ++xn) {
                        const double c =
                            cost[st] + emission(t - 1, xm, xc, xn);
                        const int ns = xc * 2 + xn;
                        if (c < next[ns]) {
                            next[ns] = c;
                            choices[ns] = st;
                        }
                    }
                }
                for (int st = 0; st < 4; ++st)
                    cost[st] = next[st];
                bp[t] = choices;
            }
            // Terminal emission for the last element.
            int best = 0;
            double best_cost = kInf;
            for (int st = 0; st < 4; ++st) {
                const double c =
                    cost[st] +
                    (n >= 2 ? emission(n - 1, st / 2, st % 2, 0)
                            : 0.0);
                if (c < best_cost) {
                    best_cost = c;
                    best = st;
                }
            }
            // Backtrack.
            std::vector<int> xs(n, 0);
            if (n == 1) {
                xs[0] = kind[pos[0]] == 2 &&
                        ell[pos[0]] > alpha / 2.0;
            } else {
                int st = best;
                for (size_t t = n; t-- > 2;) {
                    xs[t] = st % 2;
                    st = bp[t][st];
                }
                xs[1] = st % 2;
                xs[0] = st / 2;
            }
            for (size_t t = 0; t < n; ++t)
                x[pos[t]] = xs[t];
        }
    }

    size_t decided = 0, correct = 0;
    for (size_t i = 0; i < cfg.rowBits; ++i) {
        if (kind[i] == 0)
            continue;
        const bool v = upper_sampling.get(i);
        const bool guess = x[i] ? v : !v;
        ++decided;
        correct += guess == secret.get(i) ? 1 : 0;
    }

    std::printf("cells probed:   %u\n", cfg.rowBits);
    std::printf("bits decided:   %zu (%.1f%% of the row)\n", decided,
                100.0 * double(decided) / cfg.rowBits);
    std::printf("bits correct:   %zu (%.1f%% of decided)\n", correct,
                decided ? 100.0 * double(correct) / double(decided)
                        : 0.0);
    std::printf(
        "\nThe per-cell threshold cancels between the secret-side and "
        "reference-side sweeps, so each discriminating cell leaks its "
        "secret bit through the Aggr0 dependence (O12) — the "
        "column-aware refinement of RAMBleed the paper anticipates.\n");
    return 0;
}
