/**
 * @file
 * Attack-and-defense walkthrough (SS VI): mount the coupled-row split
 * attack and the adversarial data-pattern attack against a simulated
 * module, then enable the paper's countermeasures and watch them
 * fail or hold.
 */

#include <cstdio>

#include "bender/host.h"
#include "core/patterns.h"
#include "core/physmap.h"
#include "core/protect/drfm.h"
#include "core/protect/scramble.h"
#include "core/protect/tracker.h"
#include "dram/chip.h"
#include "util/table.h"

using namespace dramscope;

namespace {

size_t
flipsAround(bender::Host &host, dram::RowAddr aggr, uint32_t distance)
{
    size_t flips = 0;
    for (const dram::RowAddr v : {aggr - 1, aggr + 1,
                                  (aggr ^ distance) - 1,
                                  (aggr ^ distance) + 1}) {
        const BitVec row = host.readRowBits(0, v);
        flips += row.size() - row.popcount();
    }
    return flips;
}

void
armCoupledVictims(bender::Host &host, dram::RowAddr aggr,
                  uint32_t distance)
{
    for (const dram::RowAddr v : {aggr - 1, aggr + 1,
                                  (aggr ^ distance) - 1,
                                  (aggr ^ distance) + 1})
        host.writeRowPattern(0, v, ~0ULL);
    host.writeRowPattern(0, aggr, 0);
    host.writeRowPattern(0, aggr ^ distance, 0);
}

} // namespace

int
main()
{
    // Mfr. B x4 2019: coupled rows at Nrow/2, no internal remap.
    const dram::DeviceConfig cfg = dram::makePreset("B_x4_2019");
    const uint32_t distance = *cfg.coupledRowDistance;

    std::printf("DRAMScope attack & defense demo on %s\n",
                cfg.name.c_str());

    // ------------------------------------------------------------
    printBanner("Attack 1: coupled-row split hammering (SS VI-A)");
    {
        dram::Chip chip(cfg);
        bender::Host host(chip);
        core::TrackerOptions topts;
        topts.threshold = 6000;
        core::ProtectedMemory mem(host, topts);

        const dram::RowAddr aggr = 2000;
        armCoupledVictims(host, aggr, distance);
        // Keep each address just under the tracker threshold; the
        // shared wordline still sees ~12K activations.
        mem.hammer(0, aggr, 5900);
        mem.hammer(0, aggr ^ distance, 5900);
        std::printf("coupled-unaware tracker: %lu mitigations, %zu "
                    "victim bitflips -> attack %s\n",
                    (unsigned long)mem.tracker().mitigations(),
                    flipsAround(host, aggr, distance),
                    flipsAround(host, aggr, distance) ? "SUCCEEDS"
                                                      : "fails");
    }
    {
        dram::Chip chip(cfg);
        bender::Host host(chip);
        core::TrackerOptions topts;
        topts.threshold = 6000;
        topts.coupledAware = true;
        topts.coupledDistance = distance;
        core::ProtectedMemory mem(host, topts);

        const dram::RowAddr aggr = 2000;
        armCoupledVictims(host, aggr, distance);
        mem.hammer(0, aggr, 5900);
        mem.hammer(0, aggr ^ distance, 5900);
        std::printf("coupled-aware tracker:   %lu mitigations, %zu "
                    "victim bitflips -> attack defeated\n",
                    (unsigned long)mem.tracker().mitigations(),
                    flipsAround(host, aggr, distance));
    }
    {
        dram::Chip chip(cfg);
        bender::Host host(chip);
        core::DrfmOptions dopts;
        dopts.interval = 3000;
        core::DrfmController drfm(chip, dopts);
        const dram::RowAddr aggr = 2000;
        armCoupledVictims(host, aggr, distance);
        for (const dram::RowAddr a : {aggr, aggr ^ distance}) {
            for (int chunk = 0; chunk < 4; ++chunk) {
                host.hammer(0, a, 1475);
                drfm.onActivate(a, 1475, host.now());
            }
        }
        std::printf("DRFM every 3K ACTs:      %lu DRFM commands, %zu "
                    "victim bitflips -> attack defeated\n",
                    (unsigned long)drfm.drfmCount(),
                    flipsAround(host, aggr, distance));
    }

    // ------------------------------------------------------------
    printBanner("Attack 2: adversarial data pattern (O13/O14)");
    {
        dram::Chip chip(cfg);
        bender::Host host(chip);
        const auto map = core::PhysMap::fromSwizzle(
            chip.swizzle(), cfg.columnsPerRow(), cfg.rdDataBits);
        core::Scrambler scrambler(host, 0xC0FFEEULL);

        auto run = [&](bool adversarial, bool scrambled) {
            const BitVec victim =
                adversarial
                    ? core::AdversarialPatterns::worstBerVictimRow(map)
                    : BitVec(cfg.rowBits, true);
            const BitVec aggr =
                adversarial
                    ? core::AdversarialPatterns::worstBerAggressorRow(
                          map)
                    : BitVec(cfg.rowBits, false);
            size_t flips = 0;
            for (dram::RowAddr base = 3000; base < 3000 + 64 * 4;
                 base += 4) {
                if (scrambled) {
                    scrambler.writeRowBits(0, base, victim);
                    scrambler.writeRowBits(0, base + 1, aggr);
                } else {
                    host.writeRowBits(0, base, victim);
                    host.writeRowBits(0, base + 1, aggr);
                }
                host.hammer(0, base + 1, 300000);
                const BitVec read = scrambled
                                        ? scrambler.readRowBits(0, base)
                                        : host.readRowBits(0, base);
                flips += read.hammingDistance(victim);
            }
            return flips;
        };

        const size_t solid = run(false, false);
        const size_t worst = run(true, false);
        const size_t masked = run(true, true);
        std::printf("solid baseline pattern:       %zu flips\n", solid);
        std::printf("adversarial 0x33/0xCC:        %zu flips (%.2fx)\n",
                    worst, double(worst) / double(solid));
        std::printf("adversarial, scrambling MC:   %zu flips (%.2fx) "
                    "-> advantage removed\n",
                    masked, double(masked) / double(solid));
    }

    // ------------------------------------------------------------
    printBanner("Attack 3: targeted single-cell Hcnt reduction (O13)");
    {
        dram::Chip chip(cfg);
        bender::Host host(chip);
        const auto map = core::PhysMap::fromSwizzle(
            chip.swizzle(), cfg.columnsPerRow(), cfg.rdDataBits);
        const uint32_t target_phys = 2048;

        auto hcnt = [&](const BitVec &victim, const BitVec &aggr) {
            // Double-sided so the target cell sees its susceptible
            // gate whichever parity it has.
            const dram::RowAddr v = 5000;
            uint64_t lo = 1, hi = 1u << 21;
            auto probe = [&](uint64_t count) {
                host.writeRowBits(0, v, victim);
                host.writeRowBits(0, v - 1, aggr);
                host.writeRowBits(0, v + 1, aggr);
                host.hammer(0, v - 1, count);
                host.hammer(0, v + 1, count);
                const BitVec read = host.readRowBits(0, v);
                const uint32_t host_bit = map.hostOf(target_phys);
                return read.get(host_bit) != victim.get(host_bit);
            };
            if (!probe(hi))
                return hi;
            while (lo + 1 < hi) {
                const uint64_t mid = lo + (hi - lo) / 2;
                (probe(mid) ? hi : lo) = mid;
            }
            return hi;
        };

        BitVec solid_victim(cfg.rowBits, false);
        BitVec solid_aggr(cfg.rowBits, true);
        const uint64_t base_hcnt = hcnt(solid_victim, solid_aggr);
        const uint64_t adv_hcnt = hcnt(
            core::AdversarialPatterns::targetedVictimRow(map, target_phys,
                                                         false),
            core::AdversarialPatterns::targetedAggressorRow(map, false));
        std::printf("target cell Hcnt, solid victim row:       %lu "
                    "ACTs\n",
                    (unsigned long)base_hcnt);
        std::printf("target cell Hcnt, adversarial neighbours: %lu "
                    "ACTs (%.2fx)\n",
                    (unsigned long)adv_hcnt,
                    double(adv_hcnt) / double(base_hcnt));
    }
    return 0;
}
