# Empty compiler generated dependencies file for bench_templating_ecc.
# This may be replaced when dependencies are built.
