file(REMOVE_RECURSE
  "CMakeFiles/bench_templating_ecc.dir/bench_templating_ecc.cc.o"
  "CMakeFiles/bench_templating_ecc.dir/bench_templating_ecc.cc.o.d"
  "bench_templating_ecc"
  "bench_templating_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_templating_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
