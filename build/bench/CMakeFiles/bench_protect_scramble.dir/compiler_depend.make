# Empty compiler generated dependencies file for bench_protect_scramble.
# This may be replaced when dependencies are built.
