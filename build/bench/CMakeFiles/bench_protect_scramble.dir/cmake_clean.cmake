file(REMOVE_RECURSE
  "CMakeFiles/bench_protect_scramble.dir/bench_protect_scramble.cc.o"
  "CMakeFiles/bench_protect_scramble.dir/bench_protect_scramble.cc.o.d"
  "bench_protect_scramble"
  "bench_protect_scramble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protect_scramble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
