# Empty dependencies file for bench_protect_coupled.
# This may be replaced when dependencies are built.
