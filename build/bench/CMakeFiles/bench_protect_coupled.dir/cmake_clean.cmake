file(REMOVE_RECURSE
  "CMakeFiles/bench_protect_coupled.dir/bench_protect_coupled.cc.o"
  "CMakeFiles/bench_protect_coupled.dir/bench_protect_coupled.cc.o.d"
  "bench_protect_coupled"
  "bench_protect_coupled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protect_coupled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
