
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_protect_coupled.cc" "bench/CMakeFiles/bench_protect_coupled.dir/bench_protect_coupled.cc.o" "gcc" "bench/CMakeFiles/bench_protect_coupled.dir/bench_protect_coupled.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dramscope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bender/CMakeFiles/dramscope_bender.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/dramscope_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/dramscope_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dramscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
