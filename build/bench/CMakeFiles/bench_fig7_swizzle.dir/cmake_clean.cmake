file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_swizzle.dir/bench_fig7_swizzle.cc.o"
  "CMakeFiles/bench_fig7_swizzle.dir/bench_fig7_swizzle.cc.o.d"
  "bench_fig7_swizzle"
  "bench_fig7_swizzle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_swizzle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
