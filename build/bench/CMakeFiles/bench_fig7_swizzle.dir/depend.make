# Empty dependencies file for bench_fig7_swizzle.
# This may be replaced when dependencies are built.
