file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_edge_ber.dir/bench_fig10_edge_ber.cc.o"
  "CMakeFiles/bench_fig10_edge_ber.dir/bench_fig10_edge_ber.cc.o.d"
  "bench_fig10_edge_ber"
  "bench_fig10_edge_ber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_edge_ber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
