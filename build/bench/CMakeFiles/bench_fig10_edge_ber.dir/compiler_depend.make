# Empty compiler generated dependencies file for bench_fig10_edge_ber.
# This may be replaced when dependencies are built.
