# Empty dependencies file for bench_fig14_horizontal.
# This may be replaced when dependencies are built.
