file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_horizontal.dir/bench_fig14_horizontal.cc.o"
  "CMakeFiles/bench_fig14_horizontal.dir/bench_fig14_horizontal.cc.o.d"
  "bench_fig14_horizontal"
  "bench_fig14_horizontal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_horizontal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
