# Empty dependencies file for bench_fig15_hcnt.
# This may be replaced when dependencies are built.
