file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_hcnt.dir/bench_fig15_hcnt.cc.o"
  "CMakeFiles/bench_fig15_hcnt.dir/bench_fig15_hcnt.cc.o.d"
  "bench_fig15_hcnt"
  "bench_fig15_hcnt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_hcnt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
