# Empty dependencies file for bench_pitfalls.
# This may be replaced when dependencies are built.
