file(REMOVE_RECURSE
  "CMakeFiles/bench_pitfalls.dir/bench_pitfalls.cc.o"
  "CMakeFiles/bench_pitfalls.dir/bench_pitfalls.cc.o.d"
  "bench_pitfalls"
  "bench_pitfalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pitfalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
