file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_ber_panels.dir/bench_fig12_ber_panels.cc.o"
  "CMakeFiles/bench_fig12_ber_panels.dir/bench_fig12_ber_panels.cc.o.d"
  "bench_fig12_ber_panels"
  "bench_fig12_ber_panels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_ber_panels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
