# Empty compiler generated dependencies file for bench_fig12_ber_panels.
# This may be replaced when dependencies are built.
