file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_gate_types.dir/bench_fig13_gate_types.cc.o"
  "CMakeFiles/bench_fig13_gate_types.dir/bench_fig13_gate_types.cc.o.d"
  "bench_fig13_gate_types"
  "bench_fig13_gate_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_gate_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
