# Empty dependencies file for bench_fig13_gate_types.
# This may be replaced when dependencies are built.
