file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_population.dir/bench_table1_population.cc.o"
  "CMakeFiles/bench_table1_population.dir/bench_table1_population.cc.o.d"
  "bench_table1_population"
  "bench_table1_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
