# Empty dependencies file for bench_table1_population.
# This may be replaced when dependencies are built.
