# Empty compiler generated dependencies file for dramscope_tests.
# This may be replaced when dependencies are built.
