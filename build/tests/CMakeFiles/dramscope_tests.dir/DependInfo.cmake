
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bank.cc" "tests/CMakeFiles/dramscope_tests.dir/test_bank.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_bank.cc.o.d"
  "/root/repo/tests/test_bender_edge.cc" "tests/CMakeFiles/dramscope_tests.dir/test_bender_edge.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_bender_edge.cc.o.d"
  "/root/repo/tests/test_bitvec.cc" "tests/CMakeFiles/dramscope_tests.dir/test_bitvec.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_bitvec.cc.o.d"
  "/root/repo/tests/test_charact.cc" "tests/CMakeFiles/dramscope_tests.dir/test_charact.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_charact.cc.o.d"
  "/root/repo/tests/test_chip.cc" "tests/CMakeFiles/dramscope_tests.dir/test_chip.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_chip.cc.o.d"
  "/root/repo/tests/test_config.cc" "tests/CMakeFiles/dramscope_tests.dir/test_config.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_config.cc.o.d"
  "/root/repo/tests/test_dimm_re.cc" "tests/CMakeFiles/dramscope_tests.dir/test_dimm_re.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_dimm_re.cc.o.d"
  "/root/repo/tests/test_ecc.cc" "tests/CMakeFiles/dramscope_tests.dir/test_ecc.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_ecc.cc.o.d"
  "/root/repo/tests/test_edge_cases.cc" "tests/CMakeFiles/dramscope_tests.dir/test_edge_cases.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_edge_cases.cc.o.d"
  "/root/repo/tests/test_geometry.cc" "tests/CMakeFiles/dramscope_tests.dir/test_geometry.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_geometry.cc.o.d"
  "/root/repo/tests/test_host.cc" "tests/CMakeFiles/dramscope_tests.dir/test_host.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_host.cc.o.d"
  "/root/repo/tests/test_mapping.cc" "tests/CMakeFiles/dramscope_tests.dir/test_mapping.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_mapping.cc.o.d"
  "/root/repo/tests/test_model_properties.cc" "tests/CMakeFiles/dramscope_tests.dir/test_model_properties.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_model_properties.cc.o.d"
  "/root/repo/tests/test_patterns.cc" "tests/CMakeFiles/dramscope_tests.dir/test_patterns.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_patterns.cc.o.d"
  "/root/repo/tests/test_presets_sweep.cc" "tests/CMakeFiles/dramscope_tests.dir/test_presets_sweep.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_presets_sweep.cc.o.d"
  "/root/repo/tests/test_protect.cc" "tests/CMakeFiles/dramscope_tests.dir/test_protect.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_protect.cc.o.d"
  "/root/repo/tests/test_re_integration.cc" "tests/CMakeFiles/dramscope_tests.dir/test_re_integration.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_re_integration.cc.o.d"
  "/root/repo/tests/test_re_retention.cc" "tests/CMakeFiles/dramscope_tests.dir/test_re_retention.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_re_retention.cc.o.d"
  "/root/repo/tests/test_rfm.cc" "tests/CMakeFiles/dramscope_tests.dir/test_rfm.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_rfm.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/dramscope_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/dramscope_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_swizzle.cc" "tests/CMakeFiles/dramscope_tests.dir/test_swizzle.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_swizzle.cc.o.d"
  "/root/repo/tests/test_table.cc" "tests/CMakeFiles/dramscope_tests.dir/test_table.cc.o" "gcc" "tests/CMakeFiles/dramscope_tests.dir/test_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dramscope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bender/CMakeFiles/dramscope_bender.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/dramscope_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/dramscope_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dramscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
