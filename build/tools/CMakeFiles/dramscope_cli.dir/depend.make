# Empty dependencies file for dramscope_cli.
# This may be replaced when dependencies are built.
