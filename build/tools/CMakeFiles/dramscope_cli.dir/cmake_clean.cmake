file(REMOVE_RECURSE
  "CMakeFiles/dramscope_cli.dir/dramscope_cli.cc.o"
  "CMakeFiles/dramscope_cli.dir/dramscope_cli.cc.o.d"
  "dramscope_cli"
  "dramscope_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dramscope_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
