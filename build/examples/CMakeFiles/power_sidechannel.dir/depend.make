# Empty dependencies file for power_sidechannel.
# This may be replaced when dependencies are built.
