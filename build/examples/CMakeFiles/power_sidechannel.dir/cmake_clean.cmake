file(REMOVE_RECURSE
  "CMakeFiles/power_sidechannel.dir/power_sidechannel.cpp.o"
  "CMakeFiles/power_sidechannel.dir/power_sidechannel.cpp.o.d"
  "power_sidechannel"
  "power_sidechannel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_sidechannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
