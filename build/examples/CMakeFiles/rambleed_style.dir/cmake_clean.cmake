file(REMOVE_RECURSE
  "CMakeFiles/rambleed_style.dir/rambleed_style.cpp.o"
  "CMakeFiles/rambleed_style.dir/rambleed_style.cpp.o.d"
  "rambleed_style"
  "rambleed_style.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rambleed_style.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
