# Empty dependencies file for rambleed_style.
# This may be replaced when dependencies are built.
