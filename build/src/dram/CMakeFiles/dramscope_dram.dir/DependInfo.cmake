
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/bank.cc" "src/dram/CMakeFiles/dramscope_dram.dir/bank.cc.o" "gcc" "src/dram/CMakeFiles/dramscope_dram.dir/bank.cc.o.d"
  "/root/repo/src/dram/chip.cc" "src/dram/CMakeFiles/dramscope_dram.dir/chip.cc.o" "gcc" "src/dram/CMakeFiles/dramscope_dram.dir/chip.cc.o.d"
  "/root/repo/src/dram/config.cc" "src/dram/CMakeFiles/dramscope_dram.dir/config.cc.o" "gcc" "src/dram/CMakeFiles/dramscope_dram.dir/config.cc.o.d"
  "/root/repo/src/dram/geometry.cc" "src/dram/CMakeFiles/dramscope_dram.dir/geometry.cc.o" "gcc" "src/dram/CMakeFiles/dramscope_dram.dir/geometry.cc.o.d"
  "/root/repo/src/dram/types.cc" "src/dram/CMakeFiles/dramscope_dram.dir/types.cc.o" "gcc" "src/dram/CMakeFiles/dramscope_dram.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dramscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
