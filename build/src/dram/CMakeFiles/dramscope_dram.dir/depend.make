# Empty dependencies file for dramscope_dram.
# This may be replaced when dependencies are built.
