file(REMOVE_RECURSE
  "libdramscope_dram.a"
)
