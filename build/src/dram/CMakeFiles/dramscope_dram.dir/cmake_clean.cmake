file(REMOVE_RECURSE
  "CMakeFiles/dramscope_dram.dir/bank.cc.o"
  "CMakeFiles/dramscope_dram.dir/bank.cc.o.d"
  "CMakeFiles/dramscope_dram.dir/chip.cc.o"
  "CMakeFiles/dramscope_dram.dir/chip.cc.o.d"
  "CMakeFiles/dramscope_dram.dir/config.cc.o"
  "CMakeFiles/dramscope_dram.dir/config.cc.o.d"
  "CMakeFiles/dramscope_dram.dir/geometry.cc.o"
  "CMakeFiles/dramscope_dram.dir/geometry.cc.o.d"
  "CMakeFiles/dramscope_dram.dir/types.cc.o"
  "CMakeFiles/dramscope_dram.dir/types.cc.o.d"
  "libdramscope_dram.a"
  "libdramscope_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dramscope_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
