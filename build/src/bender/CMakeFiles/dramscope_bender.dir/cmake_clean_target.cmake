file(REMOVE_RECURSE
  "libdramscope_bender.a"
)
