file(REMOVE_RECURSE
  "CMakeFiles/dramscope_bender.dir/host.cc.o"
  "CMakeFiles/dramscope_bender.dir/host.cc.o.d"
  "CMakeFiles/dramscope_bender.dir/program.cc.o"
  "CMakeFiles/dramscope_bender.dir/program.cc.o.d"
  "libdramscope_bender.a"
  "libdramscope_bender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dramscope_bender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
