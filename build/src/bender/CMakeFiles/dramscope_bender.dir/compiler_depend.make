# Empty compiler generated dependencies file for dramscope_bender.
# This may be replaced when dependencies are built.
