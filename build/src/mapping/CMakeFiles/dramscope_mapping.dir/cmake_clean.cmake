file(REMOVE_RECURSE
  "CMakeFiles/dramscope_mapping.dir/dimm.cc.o"
  "CMakeFiles/dramscope_mapping.dir/dimm.cc.o.d"
  "libdramscope_mapping.a"
  "libdramscope_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dramscope_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
