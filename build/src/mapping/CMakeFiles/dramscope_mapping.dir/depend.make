# Empty dependencies file for dramscope_mapping.
# This may be replaced when dependencies are built.
