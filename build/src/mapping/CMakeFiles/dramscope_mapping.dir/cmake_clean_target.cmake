file(REMOVE_RECURSE
  "libdramscope_mapping.a"
)
