# Empty dependencies file for dramscope_core.
# This may be replaced when dependencies are built.
