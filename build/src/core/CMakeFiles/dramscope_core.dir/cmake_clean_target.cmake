file(REMOVE_RECURSE
  "libdramscope_core.a"
)
