
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attack/templating.cc" "src/core/CMakeFiles/dramscope_core.dir/attack/templating.cc.o" "gcc" "src/core/CMakeFiles/dramscope_core.dir/attack/templating.cc.o.d"
  "/root/repo/src/core/charact.cc" "src/core/CMakeFiles/dramscope_core.dir/charact.cc.o" "gcc" "src/core/CMakeFiles/dramscope_core.dir/charact.cc.o.d"
  "/root/repo/src/core/patterns.cc" "src/core/CMakeFiles/dramscope_core.dir/patterns.cc.o" "gcc" "src/core/CMakeFiles/dramscope_core.dir/patterns.cc.o.d"
  "/root/repo/src/core/physmap.cc" "src/core/CMakeFiles/dramscope_core.dir/physmap.cc.o" "gcc" "src/core/CMakeFiles/dramscope_core.dir/physmap.cc.o.d"
  "/root/repo/src/core/protect/drfm.cc" "src/core/CMakeFiles/dramscope_core.dir/protect/drfm.cc.o" "gcc" "src/core/CMakeFiles/dramscope_core.dir/protect/drfm.cc.o.d"
  "/root/repo/src/core/protect/ecc.cc" "src/core/CMakeFiles/dramscope_core.dir/protect/ecc.cc.o" "gcc" "src/core/CMakeFiles/dramscope_core.dir/protect/ecc.cc.o.d"
  "/root/repo/src/core/protect/rfm.cc" "src/core/CMakeFiles/dramscope_core.dir/protect/rfm.cc.o" "gcc" "src/core/CMakeFiles/dramscope_core.dir/protect/rfm.cc.o.d"
  "/root/repo/src/core/protect/rowswap.cc" "src/core/CMakeFiles/dramscope_core.dir/protect/rowswap.cc.o" "gcc" "src/core/CMakeFiles/dramscope_core.dir/protect/rowswap.cc.o.d"
  "/root/repo/src/core/protect/scramble.cc" "src/core/CMakeFiles/dramscope_core.dir/protect/scramble.cc.o" "gcc" "src/core/CMakeFiles/dramscope_core.dir/protect/scramble.cc.o.d"
  "/root/repo/src/core/protect/tracker.cc" "src/core/CMakeFiles/dramscope_core.dir/protect/tracker.cc.o" "gcc" "src/core/CMakeFiles/dramscope_core.dir/protect/tracker.cc.o.d"
  "/root/repo/src/core/re_adjacency.cc" "src/core/CMakeFiles/dramscope_core.dir/re_adjacency.cc.o" "gcc" "src/core/CMakeFiles/dramscope_core.dir/re_adjacency.cc.o.d"
  "/root/repo/src/core/re_coupled.cc" "src/core/CMakeFiles/dramscope_core.dir/re_coupled.cc.o" "gcc" "src/core/CMakeFiles/dramscope_core.dir/re_coupled.cc.o.d"
  "/root/repo/src/core/re_polarity.cc" "src/core/CMakeFiles/dramscope_core.dir/re_polarity.cc.o" "gcc" "src/core/CMakeFiles/dramscope_core.dir/re_polarity.cc.o.d"
  "/root/repo/src/core/re_retention.cc" "src/core/CMakeFiles/dramscope_core.dir/re_retention.cc.o" "gcc" "src/core/CMakeFiles/dramscope_core.dir/re_retention.cc.o.d"
  "/root/repo/src/core/re_subarray.cc" "src/core/CMakeFiles/dramscope_core.dir/re_subarray.cc.o" "gcc" "src/core/CMakeFiles/dramscope_core.dir/re_subarray.cc.o.d"
  "/root/repo/src/core/re_swizzle.cc" "src/core/CMakeFiles/dramscope_core.dir/re_swizzle.cc.o" "gcc" "src/core/CMakeFiles/dramscope_core.dir/re_swizzle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bender/CMakeFiles/dramscope_bender.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/dramscope_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/dramscope_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dramscope_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
