file(REMOVE_RECURSE
  "libdramscope_util.a"
)
