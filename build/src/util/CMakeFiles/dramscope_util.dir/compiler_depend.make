# Empty compiler generated dependencies file for dramscope_util.
# This may be replaced when dependencies are built.
