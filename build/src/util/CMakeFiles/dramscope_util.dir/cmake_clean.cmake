file(REMOVE_RECURSE
  "CMakeFiles/dramscope_util.dir/rng.cc.o"
  "CMakeFiles/dramscope_util.dir/rng.cc.o.d"
  "CMakeFiles/dramscope_util.dir/table.cc.o"
  "CMakeFiles/dramscope_util.dir/table.cc.o.d"
  "libdramscope_util.a"
  "libdramscope_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dramscope_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
