/**
 * @file
 * Unit tests for the statistics helpers.
 */

#include <gtest/gtest.h>

#include "util/stats.h"

namespace dramscope {
namespace {

TEST(RunningStat, Basic)
{
    RunningStat s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.variance(), 1.25);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStat, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(BitErrorRate, Accumulates)
{
    BitErrorRate ber;
    ber.add(3, 100);
    ber.add(7, 100);
    EXPECT_EQ(ber.flipped(), 10u);
    EXPECT_EQ(ber.tested(), 200u);
    EXPECT_DOUBLE_EQ(ber.value(), 0.05);
}

TEST(BitErrorRate, MergeAndEmpty)
{
    BitErrorRate a, b;
    EXPECT_EQ(a.value(), 0.0);
    a.add(1, 10);
    b.add(1, 10);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.value(), 0.1);
}

TEST(Histogram, BucketsAndClamping)
{
    Histogram h(10, 0.0, 10.0);
    h.add(0.5);   // bin 0
    h.add(9.5);   // bin 9
    h.add(-5.0);  // clamps to bin 0
    h.add(50.0);  // clamps to bin 9
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(9), 2u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.5);
}

TEST(Median, OddAndEven)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
}

} // namespace
} // namespace dramscope
