/**
 * @file
 * Unit tests for the deterministic RNG and hash samplers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace dramscope {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(5);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 1000; ++i)
        ++seen[rng.below(8)];
    for (int k = 0; k < 8; ++k)
        EXPECT_GT(seen[k], 0) << "value " << k << " never drawn";
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0, sq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, LognormalMedian)
{
    Rng rng(17);
    int below = 0;
    const int n = 100000;
    const double median = std::exp(2.0);
    for (int i = 0; i < n; ++i) {
        if (rng.lognormal(2.0, 0.8) < median)
            ++below;
    }
    EXPECT_NEAR(double(below) / n, 0.5, 0.02);
}

TEST(HashUniform, DeterministicAndOpen)
{
    EXPECT_EQ(hashUniform(1, 2), hashUniform(1, 2));
    EXPECT_NE(hashUniform(1, 2), hashUniform(1, 3));
    for (uint64_t k = 0; k < 10000; ++k) {
        const double u = hashUniform(99, k);
        EXPECT_GT(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(HashGaussian, StandardMoments)
{
    double sum = 0, sq = 0;
    const int n = 100000;
    for (int k = 0; k < n; ++k) {
        const double g = hashGaussian(123, uint64_t(k));
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(HashGaussian, TailsSane)
{
    int beyond3 = 0;
    const int n = 100000;
    for (int k = 0; k < n; ++k) {
        if (std::abs(hashGaussian(7, uint64_t(k))) > 3.0)
            ++beyond3;
    }
    // P(|Z| > 3) ~= 0.0027.
    EXPECT_NEAR(double(beyond3) / n, 0.0027, 0.002);
}

TEST(SplitMix, MixesBits)
{
    // Consecutive inputs must produce very different outputs.
    const uint64_t a = splitmix64(1), b = splitmix64(2);
    EXPECT_NE(a, b);
    int diff_bits = __builtin_popcountll(a ^ b);
    EXPECT_GT(diff_bits, 16);
}

} // namespace
} // namespace dramscope
