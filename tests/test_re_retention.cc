/**
 * @file
 * Retention profiler and AIB boundary cross-check tests.
 */

#include <gtest/gtest.h>

#include "core/re_retention.h"
#include "core/re_subarray.h"
#include "dram/chip.h"
#include "test_common.h"

namespace dramscope {
namespace {

TEST(RetentionProfiler, CurveIsMonotoneAndBracketsTheMedian)
{
    dram::DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::RetentionOptions opts;
    opts.rows = 8;
    core::RetentionProfiler profiler(host, opts);
    const auto profile = profiler.profile();

    ASSERT_EQ(profile.curve.size(), opts.waitsMs.size());
    for (size_t k = 1; k < profile.curve.size(); ++k) {
        EXPECT_GE(profile.curve[k].fraction() + 0.02,
                  profile.curve[k - 1].fraction());
    }
    // Configured median is 4000ms at the reference temperature.
    EXPECT_GT(profile.medianMs, 2000.0);
    EXPECT_LT(profile.medianMs, 8000.0);
}

TEST(RetentionProfiler, HotterChipHasShorterMedian)
{
    auto median_at = [](double temp) {
        dram::DeviceConfig cfg = testutil::tinyPlain();
        cfg.temperatureC = temp;
        dram::Chip chip(cfg);
        bender::Host host(chip);
        core::RetentionOptions opts;
        opts.waitsMs = {125, 250, 500, 1000, 2000, 4000, 8000, 16000,
                        32000};
        core::RetentionProfiler profiler(host, opts);
        return profiler.profile().medianMs;
    };
    const double hot = median_at(85.0);
    const double cool = median_at(65.0);
    ASSERT_GT(hot, 0.0);
    ASSERT_GT(cool, 0.0);
    // Retention halves per +10C: expect roughly a 4x spread over 20C.
    EXPECT_LT(hot * 2.5, cool);
}

TEST(RetentionProfiler, FindsWeakCellsDeterministically)
{
    dram::DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::RetentionOptions opts;
    opts.rows = 16;
    opts.waitsMs = {250, 500, 4000};
    opts.weakThresholdMs = 500;
    core::RetentionProfiler profiler(host, opts);
    const auto first = profiler.profile();

    dram::Chip chip2(cfg);
    bender::Host host2(chip2);
    core::RetentionProfiler profiler2(host2, opts);
    const auto second = profiler2.profile();

    ASSERT_EQ(first.weakCells.size(), second.weakCells.size());
    for (size_t k = 0; k < first.weakCells.size(); ++k) {
        EXPECT_EQ(first.weakCells[k].row, second.weakCells[k].row);
        EXPECT_EQ(first.weakCells[k].hostBit,
                  second.weakCells[k].hostBit);
    }
}

TEST(AibCrossCheck, ValidatesRowCopyBoundaries)
{
    dram::DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::SubarrayMapper mapper(host);

    // True boundaries of the tiny config: 48, 96, 128, ...
    EXPECT_TRUE(mapper.aibCrossCheckBoundary(48));
    EXPECT_TRUE(mapper.aibCrossCheckBoundary(96));
    // A non-boundary must fail the check (the outer row flips too).
    EXPECT_FALSE(mapper.aibCrossCheckBoundary(60));
}

TEST(AibCrossCheck, WorksThroughRemap)
{
    dram::DeviceConfig cfg = testutil::tinyPlain();
    cfg.rowRemap = dram::RowRemapScheme::MfrA8Blk;
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::SubarrayOptions opts;
    opts.rowRemap = dram::RowRemapScheme::MfrA8Blk;
    core::SubarrayMapper mapper(host, opts);
    EXPECT_TRUE(mapper.aibCrossCheckBoundary(48));
    EXPECT_FALSE(mapper.aibCrossCheckBoundary(60));
}

TEST(AibCrossCheck, FullDiscoveryPlusValidation)
{
    // The paper's workflow: RowCopy finds the structure, AIB
    // validates every boundary of the first section.
    dram::DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::SubarrayMapper mapper(host);
    const auto d = mapper.discoverFirstSection();
    dram::RowAddr boundary = 0;
    for (size_t k = 0; k + 1 < d.heights.size(); ++k) {
        boundary += d.heights[k];
        EXPECT_TRUE(mapper.aibCrossCheckBoundary(boundary))
            << "boundary " << boundary;
    }
}

} // namespace
} // namespace dramscope
