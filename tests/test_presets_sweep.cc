/**
 * @file
 * Parameterized property sweeps over every device preset: structural
 * invariants that must hold for the whole simulated population.
 */

#include <gtest/gtest.h>

#include "bender/host.h"
#include "core/physmap.h"
#include "dram/chip.h"
#include "dram/geometry.h"

namespace dramscope {
namespace {

class PresetSweep : public ::testing::TestWithParam<std::string>
{
  protected:
    dram::DeviceConfig cfg_ = dram::makePreset(GetParam());
};

TEST_P(PresetSweep, SubarrayMapTilesTheBank)
{
    dram::SubarrayMap map(cfg_);
    dram::RowAddr next = 0;
    uint32_t edge_subs = 0;
    for (size_t k = 0; k < map.count(); ++k) {
        const auto &sub = map.subarray(k);
        EXPECT_EQ(sub.firstRow, next);
        next += sub.height;
        edge_subs += sub.isEdge() ? 1 : 0;
    }
    EXPECT_EQ(next, cfg_.rowsPerBank);
    // Two edge subarrays per section.
    EXPECT_EQ(edge_subs,
              2 * (cfg_.rowsPerBank / cfg_.edgeSectionRows));
}

TEST_P(PresetSweep, CopyRelationIsSymmetricInKind)
{
    dram::SubarrayMap map(cfg_);
    // DstAbove from r means DstBelow from the other side; EdgePair
    // and None are symmetric.
    const dram::RowAddr probes[] = {
        0, cfg_.edgeSectionRows / 3, cfg_.edgeSectionRows - 1,
        cfg_.edgeSectionRows, cfg_.rowsPerBank - 1};
    for (const auto a : probes) {
        for (const auto b : probes) {
            const auto ab = map.copyRelation(a, b);
            const auto ba = map.copyRelation(b, a);
            switch (ab) {
              case dram::CopyRelation::SameSubarray:
                EXPECT_EQ(ba, dram::CopyRelation::SameSubarray);
                break;
              case dram::CopyRelation::DstAbove:
                EXPECT_EQ(ba, dram::CopyRelation::DstBelow);
                break;
              case dram::CopyRelation::DstBelow:
                EXPECT_EQ(ba, dram::CopyRelation::DstAbove);
                break;
              case dram::CopyRelation::EdgePair:
                EXPECT_EQ(ba, dram::CopyRelation::EdgePair);
                break;
              case dram::CopyRelation::None:
                EXPECT_EQ(ba, dram::CopyRelation::None);
                break;
            }
        }
    }
}

TEST_P(PresetSweep, RemapIsAnInvolutionWithinBlocks)
{
    for (dram::RowAddr r = 0; r < 256; ++r) {
        const auto p = dram::remapRow(cfg_.rowRemap, r);
        EXPECT_EQ(dram::remapRow(cfg_.rowRemap, p), r);
        EXPECT_EQ(p / 8, r / 8);
    }
}

TEST_P(PresetSweep, SwizzleIsBijective)
{
    const dram::Swizzle swz(cfg_);
    std::vector<bool> seen(cfg_.rowBits, false);
    for (uint32_t c = 0; c < cfg_.columnsPerRow(); ++c) {
        for (uint32_t i = 0; i < cfg_.rdDataBits; ++i) {
            const auto bl = swz.physicalBl(c, i);
            ASSERT_FALSE(seen[bl]);
            seen[bl] = true;
        }
    }
}

TEST_P(PresetSweep, SwizzleParityIsColumnIndependent)
{
    // The property the SwizzleReverser's periodicity check relies on.
    const dram::Swizzle swz(cfg_);
    for (uint32_t i = 0; i < cfg_.rdDataBits; ++i) {
        const auto parity = swz.physicalBl(0, i) & 1;
        for (uint32_t c = 1; c < cfg_.columnsPerRow(); c += 7)
            EXPECT_EQ(swz.physicalBl(c, i) & 1, parity);
    }
}

TEST_P(PresetSweep, ReadWriteRoundtrip)
{
    dram::Chip chip(cfg_);
    bender::Host host(chip);
    BitVec bits(cfg_.rowBits);
    for (size_t i = 0; i < bits.size(); i += 5)
        bits.set(i, true);
    host.writeRowBits(0, 1234, bits);
    EXPECT_EQ(host.readRowBits(0, 1234), bits);
}

TEST_P(PresetSweep, CoupledPartnerConsistent)
{
    dram::Chip chip(cfg_);
    if (!cfg_.coupledRowDistance) {
        EXPECT_FALSE(chip.coupledPartner(100).has_value());
        return;
    }
    const auto p = chip.coupledPartner(100);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*chip.coupledPartner(*p), 100u);
    EXPECT_EQ(*p, 100u + *cfg_.coupledRowDistance);
}

TEST_P(PresetSweep, HammerFlipsAdjacentRowsOnly)
{
    dram::Chip chip(cfg_);
    bender::Host host(chip);
    // Use an interior region; address physically through the remap.
    const dram::RowAddr aggr_phys = 1001;
    auto logical = [&](dram::RowAddr phys) {
        return dram::remapRow(cfg_.rowRemap, phys);
    };
    for (dram::RowAddr p = 998; p <= 1004; ++p) {
        host.writeRowPattern(0, logical(p),
                             p == aggr_phys ? 0 : ~0ULL);
    }
    host.hammer(0, logical(aggr_phys), 300000);
    for (dram::RowAddr p = 998; p <= 1004; ++p) {
        if (p == aggr_phys)
            continue;
        const BitVec row = host.readRowBits(0, logical(p));
        const size_t flips = row.size() - row.popcount();
        if (p == aggr_phys - 1 || p == aggr_phys + 1)
            EXPECT_GT(flips, 10u) << GetParam() << " phys " << p;
        else
            EXPECT_EQ(flips, 0u) << GetParam() << " phys " << p;
    }
}

TEST_P(PresetSweep, PhysicalPatternRoundtrip)
{
    const dram::Swizzle swz(cfg_);
    const auto map = core::PhysMap::fromSwizzle(swz, cfg_.columnsPerRow(),
                                                cfg_.rdDataBits);
    const BitVec host = map.hostBitsForPhysicalPattern(0b0011, 4);
    const BitVec phys = map.toPhysical(host);
    for (size_t p = 0; p < phys.size(); ++p)
        ASSERT_EQ(phys.get(p), (p % 4) < 2);
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetSweep,
                         ::testing::ValuesIn(dram::presetIds()),
                         [](const auto &info) { return info.param; });

} // namespace
} // namespace dramscope
