/**
 * @file
 * Host/program executor tests.
 */

#include <gtest/gtest.h>

#include "bender/host.h"
#include "dram/chip.h"
#include "test_common.h"

namespace dramscope {
namespace {

using bender::Opcode;
using bender::Program;

class HostTest : public ::testing::Test
{
  protected:
    HostTest() : cfg_(testutil::tinyPlain()), chip_(cfg_), host_(chip_)
    {
    }

    dram::DeviceConfig cfg_;
    dram::Chip chip_;
    bender::Host host_;
};

TEST_F(HostTest, ProgramBuilderShapes)
{
    Program p;
    p.act(0, 1).nop(3).rd(0, 2).wr(0, 3, 0xFF).pre(0).ref().sleepNs(5.5);
    ASSERT_EQ(p.size(), 7u);
    EXPECT_EQ(p.instrs()[0].op, Opcode::Act);
    EXPECT_EQ(p.instrs()[1].count, 3u);
    EXPECT_EQ(p.instrs()[3].data, 0xFFu);
    p.validate();
}

TEST_F(HostTest, LoopsExpandCorrectly)
{
    // A counting loop of writes: each iteration writes a different...
    // writes are constant here; verify command count instead.
    Program p;
    p.act(0, 1).sleepNs(cfg_.timing.tRcdNs);
    p.loopBegin(5).rd(0, 0).loopEnd();
    p.pre(0);
    const auto result = host_.run(p);
    EXPECT_EQ(result.reads.size(), 5u);
    EXPECT_EQ(result.commandsIssued, 2u + 5u);
}

TEST_F(HostTest, NestedLoops)
{
    Program p;
    p.act(0, 1).sleepNs(cfg_.timing.tRcdNs);
    p.loopBegin(3).loopBegin(4).rd(0, 1).loopEnd().loopEnd();
    p.pre(0);
    const auto result = host_.run(p);
    EXPECT_EQ(result.reads.size(), 12u);
}

TEST_F(HostTest, ClockAdvancesWithProgram)
{
    const auto t0 = host_.now();
    Program p;
    p.nop(8);  // 8 * 1.25ns.
    host_.run(p);
    EXPECT_EQ(host_.now() - t0, 10);
}

TEST_F(HostTest, HammerLoopUsesBulkPathTime)
{
    // 1000 iterations of a 50ns kernel (35ns open + PRE slot + tRP).
    const auto t0 = host_.now();
    host_.hammer(0, 21, 1000);
    const double elapsed = double(host_.now() - t0);
    EXPECT_NEAR(elapsed, 1000 * 50.0, 100.0);
}

TEST_F(HostTest, BulkClockExactAfterLongWait)
{
    // The picosecond clock must not lose precision at large absolute
    // times: after 64 seconds of simulated wait the default hammer
    // kernel (35ns open + 1.25ns PRE slot + 13.75ns tRP = 50ns) still
    // advances now() by *exactly* count * 50ns.  A double-ns clock
    // fails this — at 6.4e10ns the ULP exceeds the sub-ns kernel
    // terms and the sum drifts.
    host_.waitMs(64.0 * 1e3);
    const auto t0 = host_.now();
    const uint64_t count = 12345;
    host_.hammer(0, 21, count);
    EXPECT_EQ(host_.now() - t0, dram::NanoTime(count * 50));
}

TEST_F(HostTest, SleepDurationRoundedOnceAtBuildTime)
{
    // sleepNs() stores integer picoseconds in the instruction, rounded
    // once when the program is built; the executor then only adds
    // integers.  0.333ns must round to exactly 333ps, and looping the
    // sleep 3000 times must advance the clock by exactly 999ns — a
    // per-iteration double-to-ps conversion would accumulate drift.
    Program p;
    p.loopBegin(3000).sleepNs(0.333).loopEnd();
    ASSERT_EQ(p.instrs()[1].op, Opcode::SleepNs);
    EXPECT_EQ(p.instrs()[1].ps, 333);

    const auto t0 = host_.now();
    host_.run(p);
    EXPECT_EQ(host_.now() - t0, dram::NanoTime(999));
}

TEST_F(HostTest, SleepNsRoundsHalfAwayFromZero)
{
    Program p;
    p.sleepNs(0.0005).sleepNs(1.0 / 3.0).sleepNs(7800.0);
    EXPECT_EQ(p.instrs()[0].ps, 1);
    EXPECT_EQ(p.instrs()[1].ps, 333);
    EXPECT_EQ(p.instrs()[2].ps, 7800000);
}

TEST_F(HostTest, WriteReadRowBitsRoundtrip)
{
    BitVec bits(cfg_.rowBits);
    for (size_t i = 0; i < bits.size(); i += 3)
        bits.set(i, true);
    host_.writeRowBits(0, 9, bits);
    EXPECT_EQ(host_.readRowBits(0, 9), bits);
}

TEST_F(HostTest, WriteRowPatternAppliesPerColumn)
{
    host_.writeRowPattern(0, 4, 0x12345678ULL);
    for (uint64_t col_data : host_.readRow(0, 4))
        EXPECT_EQ(col_data, 0x12345678ULL);
}

TEST_F(HostTest, RunReturnsTiming)
{
    Program p;
    p.act(0, 0).sleepNs(100).pre(0);
    const auto r = host_.run(p);
    EXPECT_GT(r.endNs, r.startNs);
    EXPECT_EQ(r.commandsIssued, 2u);
}

TEST_F(HostTest, WaitMsAdvancesClock)
{
    const auto t0 = host_.now();
    host_.waitMs(3.0);
    EXPECT_EQ(host_.now() - t0, 3000000);
}

TEST_F(HostTest, ReadsInsideLoopDisableFastPath)
{
    // A loop body containing RD cannot use the bulk path, but must
    // still execute correctly.
    host_.writeRowPattern(0, 2, ~0ULL);
    Program p;
    p.loopBegin(10)
        .act(0, 2)
        .sleepNs(cfg_.timing.tRcdNs)
        .rd(0, 0)
        .sleepNs(cfg_.timing.tRasNs)
        .pre(0)
        .sleepNs(cfg_.timing.tRpNs)
        .loopEnd();
    const auto r = host_.run(p);
    ASSERT_EQ(r.reads.size(), 10u);
    const uint64_t mask = (1ULL << cfg_.rdDataBits) - 1;
    for (auto v : r.reads)
        EXPECT_EQ(v & mask, mask);
}

TEST_F(HostTest, UnbalancedLoopDies)
{
    Program p;
    p.loopBegin(2).act(0, 1);
    EXPECT_DEATH(p.validate(), "unbalanced");
}

} // namespace
} // namespace dramscope
