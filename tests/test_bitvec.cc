/**
 * @file
 * Unit tests for BitVec.
 */

#include <gtest/gtest.h>

#include "util/bitvec.h"

namespace dramscope {
namespace {

TEST(BitVec, ConstructFilled)
{
    BitVec zeros(100, false);
    BitVec ones(100, true);
    EXPECT_EQ(zeros.size(), 100u);
    EXPECT_EQ(zeros.popcount(), 0u);
    EXPECT_EQ(ones.popcount(), 100u);
}

TEST(BitVec, SetGetFlip)
{
    BitVec v(130);
    v.set(0, true);
    v.set(64, true);
    v.set(129, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(129));
    EXPECT_FALSE(v.get(1));
    EXPECT_EQ(v.popcount(), 3u);
    v.flip(0);
    EXPECT_FALSE(v.get(0));
    v.flip(1);
    EXPECT_TRUE(v.get(1));
    EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVec, TailBitsDontLeak)
{
    // A 70-bit all-ones vector must count exactly 70.
    BitVec v(70, true);
    EXPECT_EQ(v.popcount(), 70u);
    v = v.inverted();
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, FillPattern)
{
    BitVec v(16);
    v.fillPattern(0b0011, 4);
    for (size_t i = 0; i < 16; ++i)
        EXPECT_EQ(v.get(i), (i % 4) < 2) << i;
}

TEST(BitVec, FillPatternNonDividingWidth)
{
    BitVec v(10);
    v.fillPattern(0b101, 3);
    const bool expect[10] = {true, false, true, true, false,
                             true, true,  false, true, true};
    for (size_t i = 0; i < 10; ++i)
        EXPECT_EQ(v.get(i), expect[i]) << i;
}

TEST(BitVec, HammingDistance)
{
    BitVec a(100), b(100);
    a.set(3, true);
    a.set(50, true);
    b.set(50, true);
    b.set(99, true);
    EXPECT_EQ(a.hammingDistance(b), 2u);
    EXPECT_EQ(a.hammingDistance(a), 0u);
}

TEST(BitVec, XorAssign)
{
    BitVec a(70, true), b(70);
    b.set(5, true);
    a ^= b;
    EXPECT_FALSE(a.get(5));
    EXPECT_EQ(a.popcount(), 69u);
}

TEST(BitVec, Equality)
{
    BitVec a(33), b(33);
    EXPECT_EQ(a, b);
    b.set(32, true);
    EXPECT_NE(a, b);
}

TEST(BitVec, OnesPositions)
{
    BitVec v(200);
    v.set(0, true);
    v.set(63, true);
    v.set(64, true);
    v.set(199, true);
    const auto pos = v.onesPositions();
    ASSERT_EQ(pos.size(), 4u);
    EXPECT_EQ(pos[0], 0u);
    EXPECT_EQ(pos[1], 63u);
    EXPECT_EQ(pos[2], 64u);
    EXPECT_EQ(pos[3], 199u);
}

TEST(BitVec, Inverted)
{
    BitVec v(10);
    v.set(2, true);
    const BitVec inv = v.inverted();
    EXPECT_FALSE(inv.get(2));
    EXPECT_EQ(inv.popcount(), 9u);
}

TEST(BitVec, ToStringTruncates)
{
    BitVec v(300, true);
    const std::string s = v.toString(8);
    EXPECT_EQ(s, "11111111...");
}

} // namespace
} // namespace dramscope
