/**
 * @file
 * Resilience tests: the FaultSpec grammar, the deterministic fault
 * streams of dram::FaultyDevice, and the failure-containment layer of
 * SweepRunner::runResilient — retry/quarantine, the watchdog, and the
 * JSONL shard journal (checkpoint/resume bit-identity, including a
 * kill-at-every-shard-boundary loop).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bender/host.h"
#include "core/sweep.h"
#include "dram/chip.h"
#include "dram/faulty_device.h"
#include "test_common.h"
#include "util/metrics.h"

namespace dramscope {
namespace {

using core::ResilienceOptions;
using core::ResumeError;
using core::ShardContext;
using core::ShardStatus;
using core::SweepOptions;
using core::SweepReport;
using core::SweepRunner;
using dram::DeviceDeadError;
using dram::FaultSpec;
using dram::FaultyDevice;
using dram::TransientFaultError;

// ---------------------------------------------------------------------
// FaultSpec grammar.
// ---------------------------------------------------------------------

TEST(FaultSpec, EmptyStringParsesToEmptySpec)
{
    const auto spec = FaultSpec::parse("");
    ASSERT_TRUE(spec.has_value());
    EXPECT_TRUE(spec->empty());
    EXPECT_EQ(spec->toString(), "");
}

TEST(FaultSpec, ParsesEveryClauseKind)
{
    const auto spec = FaultSpec::parse(
        "stuck@0.100.3.7=1,flip:1e-06,drop:0.25,die:cmd=50000,seed:9");
    ASSERT_TRUE(spec.has_value());
    ASSERT_EQ(spec->stuck.size(), 1u);
    EXPECT_EQ(spec->stuck[0].bank, 0);
    EXPECT_EQ(spec->stuck[0].row, 100u);
    EXPECT_EQ(spec->stuck[0].col, 3u);
    EXPECT_EQ(spec->stuck[0].bit, 7u);
    EXPECT_TRUE(spec->stuck[0].value);
    EXPECT_DOUBLE_EQ(spec->flipRate, 1e-6);
    EXPECT_DOUBLE_EQ(spec->dropRate, 0.25);
    EXPECT_EQ(spec->dieAfterCommands, 50000u);
    EXPECT_EQ(spec->seed, 9u);
}

TEST(FaultSpec, ToStringRoundTrips)
{
    const std::string canonical =
        "stuck@1.7.2.31=0,flip:0.001,drop:0.5,die:cmd=12,seed:42";
    const auto spec = FaultSpec::parse(canonical);
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->toString(), canonical);
    const auto again = FaultSpec::parse(spec->toString());
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->toString(), canonical);
}

TEST(FaultSpec, RejectsMalformedClauses)
{
    for (const char *bad :
         {"bogus:1", "flip:2.0", "flip:-0.1", "flip:x", "drop:1.5",
          "die:cmd=0", "die:cmd=-3", "stuck@1.2.3=1", "stuck@1.2.3.64=1",
          "stuck@1.2.3.4=2", "seed:abc", "flip:1e-6,,drop:0.1"}) {
        std::string error;
        EXPECT_FALSE(FaultSpec::parse(bad, &error).has_value())
            << "accepted: " << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

// ---------------------------------------------------------------------
// FaultyDevice.
// ---------------------------------------------------------------------

TEST(FaultyDevice, EmptySpecIsTransparent)
{
    const auto cfg = testutil::tinyPlain();
    dram::Chip plain(cfg);
    bender::Host ref(plain);
    ref.writeRowPattern(0, 10, 0x5a5a5a5a5a5a5a5aULL);
    const BitVec want = ref.readRowBits(0, 10);

    dram::Chip inner(cfg);
    FaultyDevice faulty(inner, FaultSpec{});
    bender::Host host(faulty);
    host.writeRowPattern(0, 10, 0x5a5a5a5a5a5a5a5aULL);
    const BitVec got = host.readRowBits(0, 10);

    EXPECT_TRUE(got == want);
    EXPECT_EQ(faulty.counts().flips, 0u);
    EXPECT_EQ(faulty.counts().drops, 0u);
    EXPECT_FALSE(faulty.dead());
}

TEST(FaultyDevice, StuckCellForcesReadsOfThatCellOnly)
{
    const auto cfg = testutil::tinyPlain();
    dram::Chip inner(cfg);
    auto spec = *FaultSpec::parse("stuck@0.20.1.5=0");
    FaultyDevice faulty(inner, spec);
    bender::Host host(faulty);

    host.writeRowPattern(0, 20, ~0ULL);
    host.writeRowPattern(0, 21, ~0ULL);
    const BitVec row20 = host.readRowBits(0, 20);
    const BitVec row21 = host.readRowBits(0, 21);

    // Only (row 20, col 1, bit 5) reads back 0.
    EXPECT_EQ(row20.size() - row20.popcount(), 1u);
    EXPECT_FALSE(row20.get(1 * cfg.rdDataBits + 5));
    EXPECT_EQ(row21.popcount(), row21.size());
    EXPECT_EQ(faulty.counts().stuck, 1u);
}

TEST(FaultyDevice, FlipsAreDeterministicPerSeedAndStream)
{
    const auto cfg = testutil::tinyPlain();
    const auto run = [&cfg](const char *spec_str, uint64_t shard) {
        dram::Chip inner(cfg);
        FaultyDevice faulty(inner, *FaultSpec::parse(spec_str));
        faulty.beginShard(shard, 1);
        bender::Host host(faulty);
        host.writeRowPattern(0, 5, 0);
        return host.readRowBits(0, 5);
    };
    // Same seed + same stream => identical corruption.
    EXPECT_TRUE(run("flip:0.01,seed:7", 3) == run("flip:0.01,seed:7", 3));
    // A different stream (other shard) draws different flips.
    EXPECT_FALSE(run("flip:0.01,seed:7", 3) == run("flip:0.01,seed:7", 4));
    // A different base seed draws different flips.
    EXPECT_FALSE(run("flip:0.01,seed:7", 3) == run("flip:0.01,seed:8", 3));
}

TEST(FaultyDevice, DropThrowsTransientFaultError)
{
    const auto cfg = testutil::tinyPlain();
    dram::Chip inner(cfg);
    FaultyDevice faulty(inner, *FaultSpec::parse("drop:1.0"));
    EXPECT_THROW(faulty.act(0, 1, 0), TransientFaultError);
    EXPECT_EQ(faulty.counts().drops, 1u);
    EXPECT_FALSE(faulty.dead());  // Transient faults are not death.
}

TEST(FaultyDevice, DiesAfterConfiguredCommandCountAndStaysDead)
{
    const auto cfg = testutil::tinyPlain();
    dram::Chip inner(cfg);
    FaultyDevice faulty(inner, *FaultSpec::parse("die:cmd=4"));
    dram::NanoTime t = 0;
    for (int i = 0; i < 2; ++i) {
        faulty.act(0, 1, t += 100);
        faulty.pre(0, t += 100);
    }
    EXPECT_FALSE(faulty.dead());
    EXPECT_EQ(faulty.lifetimeCommands(), 4u);
    EXPECT_THROW(faulty.act(0, 1, t += 100), DeviceDeadError);
    EXPECT_TRUE(faulty.dead());
    // A rebased shard stream does not resurrect the device.
    faulty.beginShard(99, 1);
    EXPECT_THROW(faulty.pre(0, t += 100), DeviceDeadError);
    EXPECT_EQ(faulty.counts().deaths, 1u);
}

TEST(FaultyDevice, BulkActTrainForwardsPrefixWhenDeathLandsInside)
{
    const auto cfg = testutil::tinyPlain();
    dram::Chip inner(cfg);
    FaultyDevice faulty(inner, *FaultSpec::parse("die:cmd=10"));
    // 8 ACT/PRE pairs = 16 commands > 10: commands 0..9 (five full
    // pairs) reach the inner chip, then the device dies on command
    // 10 — exactly where a step-wise replay would have stopped.
    dram::ActTrain train;
    train.bank = 0;
    train.row = 1;
    train.count = 8;
    train.startPs = 1'000'000;
    train.openPs = 35'000;
    train.periodPs = 50'000;
    try {
        faulty.actMany(train);
        FAIL() << "expected DeviceDeadError";
    } catch (const DeviceDeadError &e) {
        EXPECT_EQ(e.trainCommandsDone, 10u);
    }
    EXPECT_TRUE(faulty.dead());
    EXPECT_EQ(faulty.lifetimeCommands(), 11u);  // Faulting cmd counted.
    EXPECT_EQ(inner.stats().acts, 5u);
    EXPECT_EQ(inner.stats().pres, 5u);
    EXPECT_EQ(faulty.violationCount(), 0u);  // 35 ns open >= tRAS.
}

/**
 * One hammer run against a fresh faulty device: setup writes to both
 * neighbors, then @p count ACT-PRE pairs on the aggressor, catching
 * any injected fault.  Everything a cross-mode determinism test needs
 * to compare lands in the returned snapshot.
 */
struct FaultReplay
{
    bool threw = false;
    dram::NanoTime clock = 0;     //!< Host clock after the fault.
    uint64_t lifetime = 0;        //!< Device-side command count.
    uint64_t drops = 0;
    uint64_t deaths = 0;
    uint64_t innerActs = 0;       //!< Commands that reached the chip.
    uint64_t innerPres = 0;
};

FaultReplay
replayHammer(const char *spec, dram::FastPathMode mode, uint64_t count)
{
    const auto cfg = testutil::tinyPlain();
    dram::Chip inner(cfg);
    FaultyDevice faulty(inner, *FaultSpec::parse(spec));
    bender::Host host(faulty);
    host.setFastPathMode(mode);
    FaultReplay r;
    try {
        host.writeRowPattern(0, 99, ~0ULL);
        host.writeRowPattern(0, 101, ~0ULL);
        host.hammer(0, 100, count);
    } catch (const dram::FaultError &) {
        r.threw = true;
    }
    r.clock = host.now();
    r.lifetime = faulty.lifetimeCommands();
    r.drops = faulty.counts().drops;
    r.deaths = faulty.counts().deaths;
    r.innerActs = inner.stats().acts;
    r.innerPres = inner.stats().pres;
    return r;
}

TEST(FaultyDevice, DropLandsAtSameCommandIndexBulkVsStepwise)
{
    // The drop draw is a pure function of (seed, stream position), so
    // the batched train must fault on exactly the command step-wise
    // execution faults on: same surviving prefix, same device-side
    // command count, and the host clock parked on the same slot.
    // Seed 2's first drop draw fires at stream position 355 — well
    // inside the 4000-command train, past the ~20 setup commands.
    const char *spec = "drop:0.005,seed:2";
    const auto fast = replayHammer(spec, dram::FastPathMode::Exact, 2000);
    const auto slow = replayHammer(spec, dram::FastPathMode::Off, 2000);
    ASSERT_TRUE(fast.threw);
    ASSERT_TRUE(slow.threw);
    EXPECT_EQ(fast.clock, slow.clock);
    EXPECT_EQ(fast.lifetime, slow.lifetime);
    EXPECT_EQ(fast.drops, 1u);
    EXPECT_EQ(slow.drops, 1u);
    EXPECT_EQ(fast.innerActs, slow.innerActs);
    EXPECT_EQ(fast.innerPres, slow.innerPres);
    // The drop landed inside the hammer train, not in the setup
    // writes (~20 commands), so the batched path really was aborted
    // mid-train.
    EXPECT_GT(fast.lifetime, 30u);
}

TEST(FaultyDevice, DeathMidTrainMatchesStepwiseReplay)
{
    // die:cmd=75 lands inside the 200-command hammer train (setup
    // issues ~20).  The offset is odd relative to the train start, so
    // the bulk path must also forward the lone trailing ACT that
    // step-wise execution issues before the fatal PRE.
    const char *spec = "die:cmd=75";
    const auto fast = replayHammer(spec, dram::FastPathMode::Exact, 100);
    const auto slow = replayHammer(spec, dram::FastPathMode::Off, 100);
    ASSERT_TRUE(fast.threw);
    ASSERT_TRUE(slow.threw);
    EXPECT_EQ(fast.clock, slow.clock);
    EXPECT_EQ(fast.lifetime, slow.lifetime);
    EXPECT_EQ(fast.lifetime, 76u);
    EXPECT_EQ(fast.deaths, 1u);
    EXPECT_EQ(slow.deaths, 1u);
    EXPECT_EQ(fast.innerActs, slow.innerActs);
    EXPECT_EQ(fast.innerPres, slow.innerPres);
}

TEST(FaultyDevice, ExportsMetricsCounters)
{
    const auto cfg = testutil::tinyPlain();
    dram::Chip inner(cfg);
    FaultyDevice faulty(inner, *FaultSpec::parse("flip:0.05"));
    obs::MetricsRegistry metrics;
    faulty.setMetrics(&metrics);
    bender::Host host(faulty);
    host.writeRowPattern(0, 3, 0);
    host.readRowBits(0, 3);
    const auto snap = metrics.snapshot();
    EXPECT_EQ(snap.counterOr0("faults.injected.flip"),
              faulty.counts().flips);
    EXPECT_GT(faulty.counts().flips, 0u);
}

// ---------------------------------------------------------------------
// runResilient: retry, quarantine, watchdog.
// ---------------------------------------------------------------------

/** Host + runner fixture over the tiny config. */
class ResilientSweepTest : public ::testing::Test
{
  protected:
    ResilientSweepTest()
        : cfg_(testutil::tinyPlain()), chip_(cfg_), host_(chip_)
    {
    }

    SweepRunner makeRunner(unsigned jobs)
    {
        return SweepRunner(host_, SweepOptions(jobs, 0x5eedULL));
    }

    dram::DeviceConfig cfg_;
    dram::Chip chip_;
    bender::Host host_;
};

TEST_F(ResilientSweepTest, AllShardsSucceedWithoutRetries)
{
    auto runner = makeRunner(1);
    const auto report = runner.runResilient(4, [](ShardContext &ctx) {
        return "shard " + std::to_string(ctx.shard);
    });
    ASSERT_EQ(report.shards.size(), 4u);
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.executed, 4u);
    EXPECT_EQ(report.retries, 0u);
    for (uint32_t s = 0; s < 4; ++s) {
        EXPECT_EQ(report.shards[s].status, ShardStatus::Ok);
        EXPECT_EQ(report.shards[s].attempts, 1u);
        EXPECT_EQ(report.shards[s].payload,
                  "shard " + std::to_string(s));
    }
}

TEST_F(ResilientSweepTest, TransientFailureIsRetriedThenSucceeds)
{
    auto runner = makeRunner(1);
    const auto report = runner.runResilient(3, [](ShardContext &ctx) {
        if (ctx.shard == 1 && ctx.attempt < 3)
            throw TransientFaultError("flaky");
        return std::string("ok");
    });
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.retries, 2u);
    EXPECT_EQ(report.shards[1].attempts, 3u);
    EXPECT_EQ(report.shards[1].status, ShardStatus::Ok);
    EXPECT_EQ(report.shards[0].attempts, 1u);
}

TEST_F(ResilientSweepTest, PersistentFailureQuarantinesWithoutAborting)
{
    auto runner = makeRunner(1);
    ResilienceOptions opts;
    opts.retry.maxAttempts = 2;
    const auto report = runner.runResilient(
        3,
        [](ShardContext &ctx) -> std::string {
            if (ctx.shard == 1)
                throw std::runtime_error("broken shard");
            return "ok";
        },
        opts);
    EXPECT_FALSE(report.complete());
    EXPECT_EQ(report.quarantined, 1u);
    EXPECT_EQ(report.executed, 2u);
    EXPECT_EQ(report.shards[1].status, ShardStatus::Quarantined);
    EXPECT_EQ(report.shards[1].attempts, 2u);
    EXPECT_EQ(report.shards[1].error, "broken shard");
    EXPECT_TRUE(report.shards[1].payload.empty());
    // The healthy shards around it still produced results.
    EXPECT_EQ(report.shards[0].payload, "ok");
    EXPECT_EQ(report.shards[2].payload, "ok");
}

TEST_F(ResilientSweepTest, DeviceDeathQuarantinesImmediately)
{
    auto runner = makeRunner(1);
    ResilienceOptions opts;
    opts.retry.maxAttempts = 5;
    const auto report = runner.runResilient(
        2,
        [](ShardContext &ctx) -> std::string {
            if (ctx.shard == 0)
                throw DeviceDeadError("dead");
            return "ok";
        },
        opts);
    // Hard death is not retriable: one attempt, straight to
    // quarantine.
    EXPECT_EQ(report.shards[0].status, ShardStatus::Quarantined);
    EXPECT_EQ(report.shards[0].attempts, 1u);
    EXPECT_EQ(report.retries, 0u);
}

TEST_F(ResilientSweepTest, WatchdogTimesOutSlowShards)
{
    auto runner = makeRunner(1);
    ResilienceOptions opts;
    opts.retry.maxAttempts = 2;
    opts.shardTimeoutMs = 1;
    const auto report = runner.runResilient(
        2,
        [](ShardContext &ctx) -> std::string {
            if (ctx.shard == 1) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            }
            return "ok";
        },
        opts);
    EXPECT_EQ(report.shards[0].status, ShardStatus::Ok);
    EXPECT_EQ(report.shards[1].status, ShardStatus::Quarantined);
    EXPECT_EQ(report.timeouts, 2u);  // Both attempts over budget.
}

TEST_F(ResilientSweepTest, BackoffScheduleIsDeterministic)
{
    core::RetryPolicy policy;
    policy.backoffBaseMs = 10;
    policy.backoffCapMs = 50;
    EXPECT_EQ(policy.delayMsBefore(1), 0u);   // First attempt: none.
    EXPECT_EQ(policy.delayMsBefore(2), 10u);  // base
    EXPECT_EQ(policy.delayMsBefore(3), 20u);  // base << 1
    EXPECT_EQ(policy.delayMsBefore(4), 40u);  // base << 2
    EXPECT_EQ(policy.delayMsBefore(5), 50u);  // capped
    EXPECT_EQ(policy.delayMsBefore(9), 50u);  // still capped
    core::RetryPolicy off;
    EXPECT_EQ(off.delayMsBefore(4), 0u);      // base 0 = no delay.
}

TEST_F(ResilientSweepTest, RecordsShardMetrics)
{
    obs::MetricsRegistry metrics;
    host_.setMetrics(&metrics);
    auto runner = makeRunner(1);
    ResilienceOptions opts;
    opts.retry.maxAttempts = 2;
    runner.runResilient(
        3,
        [](ShardContext &ctx) -> std::string {
            if (ctx.shard == 2)
                throw std::runtime_error("always fails");
            if (ctx.shard == 1 && ctx.attempt == 1)
                throw TransientFaultError("once");
            return "ok";
        },
        opts);
    const auto snap = metrics.snapshot();
    EXPECT_EQ(snap.counterOr0("sweep.shards.executed"), 2u);
    EXPECT_EQ(snap.counterOr0("sweep.shards.retried"), 2u);
    EXPECT_EQ(snap.counterOr0("sweep.shards.quarantined"), 1u);
    EXPECT_EQ(snap.counterOr0("sweep.shards.resumed"), 0u);
    host_.setMetrics(nullptr);
}

// ---------------------------------------------------------------------
// Checkpoint / resume.
// ---------------------------------------------------------------------

/** Unique-per-test temp journal path, removed on destruction. */
class TempJournal
{
  public:
    TempJournal()
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        path_ = ::testing::TempDir() + "dramscope_journal_" +
                info->test_suite_name() + "_" + info->name() + ".jsonl";
        std::remove(path_.c_str());
    }
    ~TempJournal() { std::remove(path_.c_str()); }

    const std::string &path() const { return path_; }

    std::vector<std::string> lines() const
    {
        std::vector<std::string> out;
        std::FILE *f = std::fopen(path_.c_str(), "r");
        if (!f)
            return out;
        char buf[4096];
        while (std::fgets(buf, sizeof(buf), f)) {
            std::string line(buf);
            while (!line.empty() &&
                   (line.back() == '\n' || line.back() == '\r'))
                line.pop_back();
            out.push_back(line);
        }
        std::fclose(f);
        return out;
    }

    void writeLines(const std::vector<std::string> &lines,
                    const std::string &partial_tail = "")
    {
        std::FILE *f = std::fopen(path_.c_str(), "w");
        ASSERT_NE(f, nullptr);
        for (const auto &line : lines)
            std::fprintf(f, "%s\n", line.c_str());
        if (!partial_tail.empty())
            std::fprintf(f, "%s", partial_tail.c_str());
        std::fclose(f);
    }

  private:
    std::string path_;
};

/** A deterministic payload unit touching real device state. */
std::string
berUnit(ShardContext &ctx)
{
    const auto aggr = dram::RowAddr(8 + 4 * ctx.shard);
    ctx.host.writeRowPattern(0, aggr - 1, ~0ULL);
    ctx.host.writeRowPattern(0, aggr + 1, ~0ULL);
    ctx.host.writeRowPattern(0, aggr, 0);
    ctx.host.hammer(0, aggr, 30000);
    uint64_t flips = 0;
    for (const auto victim : {aggr - 1, aggr + 1}) {
        const BitVec bits = ctx.host.readRowBits(0, victim);
        flips += bits.size() - bits.popcount();
    }
    return "shard=" + std::to_string(ctx.shard) +
           " flips=" + std::to_string(flips);
}

TEST_F(ResilientSweepTest, ResumeSkipsJournaledShardsBitIdentically)
{
    constexpr uint32_t kShards = 5;
    TempJournal journal;
    ResilienceOptions opts;
    opts.checkpointPath = journal.path();
    opts.tag = "resume-test";

    auto runner = makeRunner(1);
    const auto full = runner.runResilient(kShards, berUnit, opts);
    ASSERT_TRUE(full.complete());
    // Header + one record per shard.
    EXPECT_EQ(journal.lines().size(), 1u + kShards);

    dram::Chip chip2(cfg_);
    bender::Host host2(chip2);
    SweepRunner runner2(host2, SweepOptions(1, 0x5eedULL));
    ResilienceOptions ropts = opts;
    ropts.resume = true;
    const auto resumed = runner2.runResilient(kShards, berUnit, ropts);
    EXPECT_EQ(resumed.resumed, kShards);
    EXPECT_EQ(resumed.executed, 0u);
    EXPECT_EQ(resumed.payloads(), full.payloads());
    for (const auto &rec : resumed.shards)
        EXPECT_EQ(rec.status, ShardStatus::Resumed);
}

TEST_F(ResilientSweepTest, KillAtEveryShardBoundaryResumesIdentically)
{
    constexpr uint32_t kShards = 4;
    TempJournal journal;
    ResilienceOptions opts;
    opts.checkpointPath = journal.path();
    opts.tag = "kill-loop";

    auto runner = makeRunner(1);
    const auto full = runner.runResilient(kShards, berUnit, opts);
    ASSERT_TRUE(full.complete());
    const auto all_lines = journal.lines();
    ASSERT_EQ(all_lines.size(), 1u + kShards);

    // Simulate a kill after each completed shard: truncate the journal
    // to header + k records and resume.  Merged payloads must be
    // bit-identical to the uninterrupted run every time.
    for (uint32_t k = 0; k <= kShards; ++k) {
        journal.writeLines(std::vector<std::string>(
            all_lines.begin(), all_lines.begin() + 1 + k));
        dram::Chip chip2(cfg_);
        bender::Host host2(chip2);
        SweepRunner runner2(host2, SweepOptions(1, 0x5eedULL));
        ResilienceOptions ropts = opts;
        ropts.resume = true;
        const auto resumed =
            runner2.runResilient(kShards, berUnit, ropts);
        EXPECT_TRUE(resumed.complete()) << "kill point " << k;
        EXPECT_EQ(resumed.resumed, k) << "kill point " << k;
        EXPECT_EQ(resumed.payloads(), full.payloads())
            << "kill point " << k;
    }
}

TEST_F(ResilientSweepTest, ResumeToleratesTornTrailingRecord)
{
    constexpr uint32_t kShards = 3;
    TempJournal journal;
    ResilienceOptions opts;
    opts.checkpointPath = journal.path();
    opts.tag = "torn";

    auto runner = makeRunner(1);
    const auto full = runner.runResilient(kShards, berUnit, opts);
    const auto lines = journal.lines();
    ASSERT_EQ(lines.size(), 1u + kShards);

    // A record cut mid-write (no trailing newline, truncated JSON) is
    // what a kill during append leaves behind.
    journal.writeLines({lines[0], lines[1]},
                       "{\"kind\":\"shard\",\"shard\":2,\"att");
    dram::Chip chip2(cfg_);
    bender::Host host2(chip2);
    SweepRunner runner2(host2, SweepOptions(1, 0x5eedULL));
    ResilienceOptions ropts = opts;
    ropts.resume = true;
    const auto resumed = runner2.runResilient(kShards, berUnit, ropts);
    EXPECT_EQ(resumed.resumed, 1u);
    EXPECT_EQ(resumed.payloads(), full.payloads());
}

TEST_F(ResilientSweepTest, ResumeRefusesConfigHashMismatch)
{
    constexpr uint32_t kShards = 2;
    TempJournal journal;
    ResilienceOptions opts;
    opts.checkpointPath = journal.path();
    opts.tag = "experiment-a";

    auto runner = makeRunner(1);
    runner.runResilient(kShards, berUnit, opts);

    // Same journal, different experiment tag: refuse.
    ResilienceOptions other = opts;
    other.tag = "experiment-b";
    other.resume = true;
    EXPECT_THROW(runner.runResilient(kShards, berUnit, other),
                 ResumeError);
    // Same tag, different shard count: refuse.
    ResilienceOptions grown = opts;
    grown.resume = true;
    EXPECT_THROW(runner.runResilient(kShards + 1, berUnit, grown),
                 ResumeError);
    // The matching run still resumes.
    ResilienceOptions same = opts;
    same.resume = true;
    const auto resumed = runner.runResilient(kShards, berUnit, same);
    EXPECT_EQ(resumed.resumed, kShards);
}

TEST_F(ResilientSweepTest, ResumeWithMissingJournalStartsFresh)
{
    TempJournal journal;
    ResilienceOptions opts;
    opts.checkpointPath = journal.path();
    opts.resume = true;  // Nothing to resume from yet.
    auto runner = makeRunner(1);
    const auto report = runner.runResilient(2, berUnit, opts);
    EXPECT_EQ(report.resumed, 0u);
    EXPECT_EQ(report.executed, 2u);
    EXPECT_EQ(journal.lines().size(), 3u);
}

TEST_F(ResilientSweepTest, JournalRoundTripsHostilePayloadBytes)
{
    TempJournal journal;
    ResilienceOptions opts;
    opts.checkpointPath = journal.path();
    const std::string hostile =
        "quote:\" backslash:\\ newline:\n tab:\t cr:\r ctl:\x01 end";

    auto runner = makeRunner(1);
    const auto full = runner.runResilient(
        1, [&](ShardContext &) { return hostile; }, opts);
    ASSERT_EQ(full.shards[0].payload, hostile);

    ResilienceOptions ropts = opts;
    ropts.resume = true;
    const auto resumed = runner.runResilient(
        1,
        [](ShardContext &) -> std::string {
            ADD_FAILURE() << "journaled shard must not re-run";
            return "";
        },
        ropts);
    EXPECT_EQ(resumed.shards[0].payload, hostile);
}

// ---------------------------------------------------------------------
// Fault injection under the sweep: serial/parallel and rerun
// determinism.
// ---------------------------------------------------------------------

/** Builds a fault-wrapped host + runner and collects payloads. */
std::vector<std::string>
faultSweepPayloads(const dram::DeviceConfig &cfg, const FaultSpec &spec,
                   unsigned jobs, uint32_t shards,
                   obs::MetricsRegistry *metrics = nullptr)
{
    dram::Chip chip(cfg);
    FaultyDevice faulty(chip, spec);
    bender::Host host(faulty);
    if (metrics)
        host.setMetrics(metrics);
    SweepOptions sopts(jobs, 0x5eedULL,
                       [&spec](const dram::DeviceConfig &c) {
                           return std::make_unique<FaultyDevice>(
                               std::make_unique<dram::Chip>(c), spec);
                       });
    SweepRunner runner(host, sopts);
    const auto report = runner.runResilient(shards, berUnit);
    EXPECT_TRUE(report.complete());
    return report.payloads();
}

TEST(FaultySweep, SameSeedRerunsAreByteIdentical)
{
    const auto cfg = testutil::tinyPlain();
    const auto spec = *FaultSpec::parse("flip:1e-4,seed:11");
    const auto a = faultSweepPayloads(cfg, spec, 1, 4);
    const auto b = faultSweepPayloads(cfg, spec, 1, 4);
    EXPECT_EQ(a, b);
}

TEST(FaultySweep, ParallelMatchesSerialWithFaultsInjected)
{
    const auto cfg = testutil::tinyPlain();
    const auto spec = *FaultSpec::parse("flip:1e-4,stuck@0.9.0.3=0,seed:11");
    obs::MetricsRegistry serial_metrics;
    obs::MetricsRegistry parallel_metrics;
    const auto serial =
        faultSweepPayloads(cfg, spec, 1, 6, &serial_metrics);
    const auto parallel =
        faultSweepPayloads(cfg, spec, 4, 6, &parallel_metrics);
    EXPECT_EQ(serial, parallel);
    // The merged fault counters match the serial run exactly.
    EXPECT_EQ(
        serial_metrics.snapshot().counterOr0("faults.injected.flip"),
        parallel_metrics.snapshot().counterOr0("faults.injected.flip"));
}

TEST(FaultySweep, TransientDropsRetryToCompletion)
{
    // A small drop rate: some attempt somewhere fails, but retries
    // (fresh fault streams) finish the sweep.  With drop:0 as control
    // the payloads must be unaffected by retries.
    const auto cfg = testutil::tinyPlain();
    obs::MetricsRegistry metrics;
    dram::Chip chip(cfg);
    FaultyDevice faulty(chip, *FaultSpec::parse("drop:2e-6,seed:3"));
    bender::Host host(faulty);
    host.setMetrics(&metrics);
    SweepRunner runner(host, SweepOptions(1, 0x5eedULL));
    ResilienceOptions opts;
    opts.retry.maxAttempts = 10;
    const auto report = runner.runResilient(4, berUnit, opts);
    EXPECT_TRUE(report.complete());
    const auto control = faultSweepPayloads(cfg, FaultSpec{}, 1, 4);
    EXPECT_EQ(report.payloads(), control);
}

} // namespace
} // namespace dramscope
