/**
 * @file
 * DIMM-level reverse-engineering tests: the tools work through the
 * RCD and DQ layers when the host compensates for them (SS III-C),
 * and visibly fail when it does not.
 */

#include <gtest/gtest.h>

#include "mapping/dimm.h"
#include "test_common.h"

namespace dramscope {
namespace {

using dram::RowAddr;

class DimmReTest : public ::testing::Test
{
  protected:
    DimmReTest() : dimm_(testutil::tinyPlain()) {}

    /**
     * Mapping-aware single-chip access through the DIMM: the host
     * compensates the RCD inversion for the chip's side and undoes
     * the DQ twist (what every DRAMScope tool does per chip).
     */
    void
    writeRowAware(uint32_t chip, RowAddr chip_row, uint64_t host_data)
    {
        auto &c = dimm_.chip(chip);
        const auto &cfg = dimm_.chipConfig();
        c.act(0, chip_row, t_);
        t_ += 20;
        const uint64_t wire =
            dimm_.twist(chip).toChip(host_data, cfg.rdDataBits);
        for (dram::ColAddr col = 0; col < cfg.columnsPerRow(); ++col) {
            c.write(0, col, wire, t_);
            t_ += 2;
        }
        t_ += 40;
        c.pre(0, t_);
        t_ += 20;
    }

    size_t
    flipsAware(uint32_t chip, RowAddr chip_row, uint64_t expect)
    {
        auto &c = dimm_.chip(chip);
        const auto &cfg = dimm_.chipConfig();
        c.act(0, chip_row, t_);
        t_ += 20;
        size_t flips = 0;
        for (dram::ColAddr col = 0; col < cfg.columnsPerRow(); ++col) {
            const uint64_t host =
                dimm_.twist(chip).toHost(c.read(0, col, t_),
                                         cfg.rdDataBits);
            flips += size_t(__builtin_popcountll(host ^ expect));
            t_ += 2;
        }
        t_ += 40;
        c.pre(0, t_);
        t_ += 20;
        return flips;
    }

    mapping::Dimm dimm_;
    dram::NanoTime t_ = 1000;
};

TEST_F(DimmReTest, AwareHostFindsAdjacencyOnTheBSide)
{
    // Target chip-row neighbourhood on a B-side chip: the aware host
    // issues the inverted host address so the chip sees what we want.
    const uint32_t chip = 15;
    ASSERT_TRUE(dimm_.isBSide(chip));
    const RowAddr aggr_chip_row = 60;

    const uint64_t ones = 0xFFFFFFFFULL;
    for (RowAddr r = aggr_chip_row - 2; r <= aggr_chip_row + 2; ++r)
        writeRowAware(chip, r, r == aggr_chip_row ? 0 : ones);

    // Hammer through the DIMM broadcast, at the compensated host
    // address.
    const RowAddr host_aggr = dimm_.hostRowFor(chip, aggr_chip_row);
    for (int k = 0; k < 300000; ++k) {
        dimm_.act(0, host_aggr, t_);
        t_ += 35;
        dimm_.pre(0, t_);
        t_ += 15;
    }

    EXPECT_GT(flipsAware(chip, aggr_chip_row - 1, ones), 5u);
    EXPECT_GT(flipsAware(chip, aggr_chip_row + 1, ones), 5u);
    EXPECT_EQ(flipsAware(chip, aggr_chip_row - 2, ones), 0u);
}

TEST_F(DimmReTest, NaiveHostMissesTheBSideVictims)
{
    // Same experiment but the host forgets the inversion when it
    // probes: the hammered chip rows sit at the inverted address, so
    // the naively probed rows were never written nor disturbed.
    const uint32_t chip = 15;
    const RowAddr host_aggr = 500;

    // Write victims on the A-side understanding only.
    const uint64_t ones = 0xFFFFFFFFULL;
    for (RowAddr r = host_aggr - 1; r <= host_aggr + 1; ++r) {
        dram::NanoTime t = t_;
        dimm_.act(0, r, t);
        t += 20;
        std::vector<uint64_t> data(dimm_.chipCount(),
                                   r == host_aggr ? 0 : ones);
        for (dram::ColAddr col = 0;
             col < dimm_.chipConfig().columnsPerRow(); ++col) {
            dimm_.writeChips(0, col, data, t);
            t += 2;
        }
        t += 40;
        dimm_.pre(0, t);
        t_ = t + 20;
    }
    for (int k = 0; k < 300000; ++k) {
        dimm_.act(0, host_aggr, t_);
        t_ += 35;
        dimm_.pre(0, t_);
        t_ += 15;
    }

    // Naive probe: ask chip 15 for host-addressed rows directly.
    auto &c = dimm_.chip(chip);
    c.act(0, host_aggr - 1, t_);
    t_ += 20;
    const uint64_t naive = c.read(0, 0, t_);
    t_ += 20;
    c.pre(0, t_);
    // The chip never wrote that row: it reads as zeros (no trace of
    // the experiment), the phantom the paper warns about.
    EXPECT_EQ(naive, 0u);
}

TEST_F(DimmReTest, DqTwistCompensationRoundtrips)
{
    for (uint32_t chip : {1u, 3u, 9u, 15u}) {
        writeRowAware(chip, 7, 0xDEADBEEFULL);
        EXPECT_EQ(flipsAware(chip, 7, 0xDEADBEEFULL), 0u) << chip;
    }
}

} // namespace
} // namespace dramscope
