/**
 * @file
 * Chip FSM, coupled-row activation, remapping and violation tests.
 */

#include <gtest/gtest.h>

#include "bender/host.h"
#include "dram/chip.h"
#include "test_common.h"

namespace dramscope {
namespace {

using dram::DeviceConfig;
using dram::RowAddr;

TEST(Chip, ReadWriteRoundtripThroughSwizzle)
{
    DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);

    std::vector<uint64_t> cols(cfg.columnsPerRow());
    for (size_t c = 0; c < cols.size(); ++c)
        cols[c] = 0xA5A5A5A5ULL ^ (uint64_t(c) * 0x9E3779B9ULL);
    for (auto &c : cols)
        c &= (1ULL << cfg.rdDataBits) - 1;

    host.writeRow(0, 7, cols);
    EXPECT_EQ(host.readRow(0, 7), cols);
}

TEST(Chip, RowsAreIndependent)
{
    DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    host.writeRowPattern(0, 5, ~0ULL);
    host.writeRowPattern(0, 6, 0);
    EXPECT_EQ(host.readRowBits(0, 5).popcount(), size_t(cfg.rowBits));
    EXPECT_EQ(host.readRowBits(0, 6).popcount(), 0u);
}

TEST(Chip, BanksAreIndependent)
{
    DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    host.writeRowPattern(0, 5, ~0ULL);
    host.writeRowPattern(1, 5, 0);
    EXPECT_EQ(host.readRowBits(0, 5).popcount(), size_t(cfg.rowBits));
    EXPECT_EQ(host.readRowBits(1, 5).popcount(), 0u);
}

TEST(Chip, InternalRemapAffectsPhysicalPlacement)
{
    // With the Mfr. A scheme, logical rows 4..7 land on physical
    // 7..4; hammering logical 4 (phys 7) must hit the rows at
    // physical 6 and 8, whose logical addresses are 5 and 8... the
    // observable: flips appear in logical rows 5 and 8, not 3 and 5.
    DeviceConfig cfg = testutil::tinyPlain();
    cfg.rowRemap = dram::RowRemapScheme::MfrA8Blk;
    dram::Chip chip(cfg);
    bender::Host host(chip);

    EXPECT_EQ(chip.toPhysical(20), RowAddr(23));
    EXPECT_EQ(chip.toPhysical(23), RowAddr(20));
    EXPECT_EQ(chip.toPhysical(16), RowAddr(16));

    for (RowAddr r = 16; r <= 28; ++r)
        host.writeRowPattern(0, r, r == 20 ? 0 : ~0ULL);
    host.hammer(0, 20, 400000);  // Physical row 23.

    // Physical neighbours 22 and 24 are logical rows 21 and 24.
    std::vector<size_t> flips(29, 0);
    for (RowAddr r = 16; r <= 28; ++r) {
        if (r == 20)
            continue;
        const BitVec row = host.readRowBits(0, r);
        flips[r] = row.size() - row.popcount();
    }
    EXPECT_GT(flips[21], 4u);
    EXPECT_GT(flips[24], 4u);
    EXPECT_EQ(flips[19], 0u);
    EXPECT_EQ(flips[22], 0u);
    EXPECT_EQ(flips[23], 0u);
}

TEST(Chip, CoupledRowActivationDisturbsPartnerNeighbors)
{
    // O3: tiny couples rows at distance 512.
    DeviceConfig cfg = testutil::tinyPlain();
    cfg.coupledRowDistance = 512;
    dram::Chip chip(cfg);
    bender::Host host(chip);

    const RowAddr aggr = 20, partner = 532;
    host.writeRowPattern(0, partner - 1, ~0ULL);
    host.writeRowPattern(0, partner + 1, ~0ULL);
    host.writeRowPattern(0, partner, 0);
    host.writeRowPattern(0, aggr, 0);
    host.hammer(0, aggr, 400000);

    for (RowAddr r : {partner - 1, partner + 1}) {
        const BitVec row = host.readRowBits(0, r);
        EXPECT_GT(row.size() - row.popcount(), 4u) << "row " << r;
    }
}

TEST(Chip, UncoupledChipsDoNotDisturbAtDistance)
{
    DeviceConfig cfg = testutil::tinyPlain();  // No coupling.
    dram::Chip chip(cfg);
    bender::Host host(chip);

    host.writeRowPattern(0, 531, ~0ULL);
    host.writeRowPattern(0, 533, ~0ULL);
    host.writeRowPattern(0, 20, 0);
    host.hammer(0, 20, 400000);
    for (RowAddr r : {531u, 533u}) {
        const BitVec row = host.readRowBits(0, r);
        EXPECT_EQ(row.size() - row.popcount(), 0u);
    }
}

TEST(Chip, CoupledPartnerUsesXorRelation)
{
    DeviceConfig cfg = dram::makeTinyConfig();
    dram::Chip chip(cfg);
    EXPECT_EQ(chip.coupledPartner(10), RowAddr(522));
    EXPECT_EQ(chip.coupledPartner(522), RowAddr(10));
    DeviceConfig plain = testutil::tinyPlain();
    dram::Chip chip2(plain);
    EXPECT_FALSE(chip2.coupledPartner(10).has_value());
}

TEST(Chip, WordlineCostDoublesForEdgeAndCoupled)
{
    // SS VI-C: edge-subarray and coupled activations cost extra
    // wordlines — the power side channel.
    DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);

    bender::Program p;
    p.act(0, 60).sleepNs(35).pre(0).sleepNs(15);   // Typical row.
    host.run(p);
    const uint64_t typical = chip.stats().wordlinesDriven;

    bender::Program q;
    q.act(0, 10).sleepNs(35).pre(0).sleepNs(15);   // Edge subarray.
    host.run(q);
    const uint64_t edge = chip.stats().wordlinesDriven - typical;
    EXPECT_EQ(typical, 1u);
    EXPECT_EQ(edge, 2u);

    DeviceConfig coupled_cfg = dram::makeTinyConfig();
    coupled_cfg.rowRemap = dram::RowRemapScheme::None;
    dram::Chip coupled(coupled_cfg);
    bender::Host host2(coupled);
    bender::Program r;
    r.act(0, 60).sleepNs(35).pre(0).sleepNs(15);
    host2.run(r);
    // Coupled: two wordlines (row 60 + partner 572), both typical.
    EXPECT_EQ(coupled.stats().wordlinesDriven, 2u);
}

TEST(Chip, ViolationsAreRecorded)
{
    DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);

    bender::Program p;
    p.act(0, 5).act(0, 6);  // Second ACT hits an open bank.
    host.run(p);
    EXPECT_GE(chip.violationCount(), 1u);

    bender::Program q;
    q.rd(0, 0);  // Read with no open row.
    host.run(q);
    EXPECT_GE(chip.violationCount(), 2u);
}

TEST(Chip, RowCopyIsReportedAsViolation)
{
    DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    host.writeRowPattern(0, 10, ~0ULL);
    const uint64_t before = chip.violationCount();
    host.rowCopy(0, 10, 12);
    EXPECT_GT(chip.violationCount(), before);
    EXPECT_GE(chip.bank(0).stats().rowCopyEvents, 1u);
}

TEST(Chip, ActManyMatchesIteratedHammer)
{
    // The bulk fast path must be observationally identical to an
    // unrolled ACT-PRE sequence.
    auto run = [](bool bulk) {
        DeviceConfig cfg = testutil::tinyPlain();
        dram::Chip chip(cfg);
        bender::Host host(chip);
        host.writeRowPattern(0, 20, ~0ULL);
        host.writeRowPattern(0, 21, 0);
        if (bulk) {
            host.hammer(0, 21, 40000);
        } else {
            // Unrolled: no loop instruction, so no fast path.
            bender::Program p;
            for (int k = 0; k < 40000; ++k)
                p.act(0, 21).sleepNs(33.75).pre(0).sleepNs(13.75);
            host.run(p);
        }
        // Top up to a flip-producing dose through the normal path.
        host.hammer(0, 21, 260000);
        return host.readRowBits(0, 20);
    };
    EXPECT_EQ(run(true), run(false));
}

TEST(Chip, RefreshRequiresIdleBanks)
{
    DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    bender::Program p;
    p.act(0, 5).ref();
    host.run(p);
    EXPECT_GE(chip.violationCount(), 1u);
}

TEST(Chip, StatsCountCommands)
{
    DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    host.writeRowPattern(0, 3, ~0ULL);
    host.readRow(0, 3);
    const auto &s = chip.stats();
    EXPECT_EQ(s.acts, 2u);
    EXPECT_EQ(s.pres, 2u);
    EXPECT_EQ(s.reads, cfg.columnsPerRow());
    EXPECT_EQ(s.writes, cfg.columnsPerRow());
}

} // namespace
} // namespace dramscope
