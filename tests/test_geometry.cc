/**
 * @file
 * Unit tests for the 6F^2 geometry and the subarray map.
 */

#include <gtest/gtest.h>

#include "dram/geometry.h"
#include "test_common.h"

namespace dramscope {
namespace dram {
namespace {

TEST(CellSite, AlternatesAlongBitline)
{
    // Fixed row: sites alternate with the BL index (Figure 11).
    for (BitlineIdx bl = 0; bl < 16; ++bl) {
        EXPECT_NE(cellSite(0, bl), cellSite(0, bl + 1));
        EXPECT_NE(cellSite(5, bl), cellSite(5, bl + 1));
    }
}

TEST(CellSite, ReversesBetweenWordlineParities)
{
    for (BitlineIdx bl = 0; bl < 16; ++bl)
        EXPECT_NE(cellSite(2, bl), cellSite(3, bl));
}

TEST(GateType, OppositeForOppositeDirections)
{
    // The two aggressor directions present the two gate types.
    for (RowAddr r = 1; r < 8; ++r) {
        for (BitlineIdx bl = 0; bl < 8; ++bl)
            EXPECT_NE(gateType(r, bl, true), gateType(r, bl, false));
    }
}

TEST(GateType, AlternatesAlongRowForFixedDirection)
{
    for (BitlineIdx bl = 0; bl < 8; ++bl)
        EXPECT_NE(gateType(4, bl, true), gateType(4, bl + 1, true));
}

TEST(GateType, TopCellUpperAggressorIsPassing)
{
    // Definition from the paper: for a top cell, the upper aggressor
    // forms the passing gate.
    for (RowAddr r = 1; r < 16; ++r) {
        for (BitlineIdx bl = 0; bl < 16; ++bl) {
            if (cellSite(r, bl) == CellSite::Top)
                EXPECT_EQ(gateType(r, bl, true), GateType::Passing);
            else
                EXPECT_EQ(gateType(r, bl, true), GateType::Neighboring);
        }
    }
}

TEST(RemapRow, MfrASchemeIsInvolution)
{
    for (RowAddr r = 0; r < 64; ++r) {
        const RowAddr p = remapRow(RowRemapScheme::MfrA8Blk, r);
        EXPECT_EQ(remapRow(RowRemapScheme::MfrA8Blk, p), r);
        EXPECT_EQ(r / 8, p / 8) << "remap must stay within its block";
    }
}

TEST(RemapRow, MfrASchemeScramblesUpperHalf)
{
    EXPECT_EQ(remapRow(RowRemapScheme::MfrA8Blk, 0), 0u);
    EXPECT_EQ(remapRow(RowRemapScheme::MfrA8Blk, 3), 3u);
    EXPECT_EQ(remapRow(RowRemapScheme::MfrA8Blk, 4), 7u);
    EXPECT_EQ(remapRow(RowRemapScheme::MfrA8Blk, 5), 6u);
    EXPECT_EQ(remapRow(RowRemapScheme::None, 5), 5u);
}

class SubarrayMapTest : public ::testing::Test
{
  protected:
    SubarrayMapTest() : cfg_(testutil::tinyPlain()), map_(cfg_) {}

    DeviceConfig cfg_;
    SubarrayMap map_;
};

TEST_F(SubarrayMapTest, CoversEveryRowExactlyOnce)
{
    RowAddr expect_first = 0;
    for (size_t i = 0; i < map_.count(); ++i) {
        const Subarray &s = map_.subarray(i);
        EXPECT_EQ(s.firstRow, expect_first);
        expect_first += s.height;
    }
    EXPECT_EQ(expect_first, cfg_.rowsPerBank);
}

TEST_F(SubarrayMapTest, HeightsFollowThePattern)
{
    // tiny: {2 x 48, 1 x 32} repeating.
    ASSERT_GE(map_.count(), 3u);
    EXPECT_EQ(map_.subarray(0).height, 48u);
    EXPECT_EQ(map_.subarray(1).height, 48u);
    EXPECT_EQ(map_.subarray(2).height, 32u);
    EXPECT_EQ(map_.subarray(3).height, 48u);
}

TEST_F(SubarrayMapTest, SubarrayOfIsConsistent)
{
    for (RowAddr r = 0; r < cfg_.rowsPerBank; ++r)
        EXPECT_TRUE(map_.subarrayOf(r).contains(r));
}

TEST_F(SubarrayMapTest, EdgeFlagsAtSectionBoundaries)
{
    // tiny edge section = 256 rows, pattern = 128 rows: subarrays
    // 0 (rows 0-47) and 5 (rows 224-255) frame section 0.
    EXPECT_TRUE(map_.subarrayOf(0).bottomEdge);
    EXPECT_FALSE(map_.subarrayOf(0).topEdge);
    EXPECT_TRUE(map_.subarrayOf(255).topEdge);
    EXPECT_FALSE(map_.subarrayOf(100).isEdge());
    EXPECT_TRUE(map_.subarrayOf(256).bottomEdge);
}

TEST_F(SubarrayMapTest, NeighborsStopAtSubarrayBoundaries)
{
    // Row 47 is the top of subarray 0; row 48 starts subarray 1.
    EXPECT_FALSE(map_.neighbor(47, true).has_value());
    EXPECT_FALSE(map_.neighbor(48, false).has_value());
    EXPECT_EQ(map_.neighbor(47, false), RowAddr(46));
    EXPECT_EQ(map_.neighbor(10, true), RowAddr(11));
    EXPECT_FALSE(map_.neighbor(0, false).has_value());
}

TEST_F(SubarrayMapTest, AibAdjacency)
{
    EXPECT_TRUE(map_.aibAdjacent(10, 11));
    EXPECT_TRUE(map_.aibAdjacent(11, 10));
    EXPECT_FALSE(map_.aibAdjacent(47, 48));  // Across subarrays.
    EXPECT_FALSE(map_.aibAdjacent(10, 12));
}

TEST_F(SubarrayMapTest, CopyRelations)
{
    EXPECT_EQ(map_.copyRelation(10, 20), CopyRelation::SameSubarray);
    EXPECT_EQ(map_.copyRelation(10, 50), CopyRelation::DstAbove);
    EXPECT_EQ(map_.copyRelation(50, 10), CopyRelation::DstBelow);
    // Edge pair: subarray 0 (bottom edge) and subarray 5 (top edge).
    EXPECT_EQ(map_.copyRelation(0, 230), CopyRelation::EdgePair);
    EXPECT_EQ(map_.copyRelation(230, 0), CopyRelation::EdgePair);
    // Non-adjacent subarrays within a section: no shared stripe.
    EXPECT_EQ(map_.copyRelation(10, 100), CopyRelation::None);
    // Across sections: no copy.
    EXPECT_EQ(map_.copyRelation(200, 300), CopyRelation::None);
}

TEST_F(SubarrayMapTest, PolarityAllTrueForMfrA)
{
    for (RowAddr r : {0u, 100u, 500u, 1023u})
        EXPECT_EQ(map_.polarityOf(r), CellPolarity::True);
}

TEST(SubarrayMapPolarity, InterleavedForMfrC)
{
    DeviceConfig cfg = testutil::tinyPlain();
    cfg.polarityPolicy = CellPolarityPolicy::InterleavedPerSubarray;
    SubarrayMap map(cfg);
    EXPECT_EQ(map.polarityOf(10), CellPolarity::True);    // Sub 0.
    EXPECT_EQ(map.polarityOf(50), CellPolarity::Anti);    // Sub 1.
    EXPECT_EQ(map.polarityOf(100), CellPolarity::True);   // Sub 2.
}

TEST(SubarrayMapFullSize, RealPresetLayout)
{
    const DeviceConfig cfg = makePreset("A_x4_2016");
    SubarrayMap map(cfg);
    // 11 x 640 + 2 x 576 per 8192 rows, 16 repeats in 128K rows.
    EXPECT_EQ(map.count(), 13u * 16u);
    EXPECT_EQ(map.subarray(0).height, 640u);
    EXPECT_EQ(map.subarray(11).height, 576u);
    EXPECT_EQ(map.subarray(12).height, 576u);
    // Edge sections every 16K rows.
    EXPECT_TRUE(map.subarrayOf(0).bottomEdge);
    EXPECT_TRUE(map.subarrayOf(16383).topEdge);
    EXPECT_TRUE(map.subarrayOf(16384).bottomEdge);
    EXPECT_FALSE(map.subarrayOf(8000).isEdge());
}

} // namespace
} // namespace dram
} // namespace dramscope
