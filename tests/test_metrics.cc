/**
 * @file
 * MetricsRegistry semantics: counter monotonicity, histogram
 * bucketing, snapshot equality, and the exact-integer merge the
 * parallel sweep engine's determinism contract rests on.
 */

#include <gtest/gtest.h>

#include "util/metrics.h"

namespace dramscope {
namespace {

using obs::MetricsRegistry;
using obs::MetricsSnapshot;

TEST(MetricsCounter, FindOrCreateReturnsTheSameHandle)
{
    MetricsRegistry reg;
    obs::Counter &a = reg.counter("cmd.act");
    obs::Counter &b = reg.counter("cmd.act");
    EXPECT_EQ(&a, &b);
    a.add();
    b.add(4);
    EXPECT_EQ(reg.snapshot().counterOr0("cmd.act"), 5u);
}

TEST(MetricsCounter, DistinctNamesAreIndependent)
{
    MetricsRegistry reg;
    reg.counter("x").add(3);
    reg.counter("y").add(7);
    const auto snap = reg.snapshot();
    EXPECT_EQ(snap.counterOr0("x"), 3u);
    EXPECT_EQ(snap.counterOr0("y"), 7u);
    EXPECT_EQ(snap.counterOr0("absent"), 0u);
}

TEST(MetricsHistogram, SamplesLandInTheRightBucket)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("h", 10, 0.0, 100.0);
    h.add(5.0);    // bucket 0
    h.add(15.0);   // bucket 1
    h.add(95.0);   // bucket 9
    h.add(-3.0);   // clamps to bucket 0
    h.add(250.0);  // clamps to bucket 9
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(9), 2u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(MetricsHistogram, AddManyMatchesRepeatedAdd)
{
    MetricsRegistry reg;
    Histogram &bulk = reg.histogram("bulk", 16, 0.0, 64.0);
    Histogram &slow = reg.histogram("slow", 16, 0.0, 64.0);
    bulk.addMany(35.0, 1000);
    for (int i = 0; i < 1000; ++i)
        slow.add(35.0);
    for (size_t i = 0; i < bulk.bins(); ++i)
        EXPECT_EQ(bulk.count(i), slow.count(i)) << "bin " << i;
    EXPECT_EQ(bulk.total(), slow.total());
}

TEST(MetricsHistogram, LookupWithSameShapeReturnsSameHandle)
{
    MetricsRegistry reg;
    Histogram &a = reg.histogram("h", 8, 0.0, 10.0);
    Histogram &b = reg.histogram("h", 8, 0.0, 10.0);
    EXPECT_EQ(&a, &b);
}

TEST(MetricsSnapshotTest, EqualityComparesValuesAndShapes)
{
    MetricsRegistry a, b;
    a.counter("c").add(2);
    b.counter("c").add(2);
    a.histogram("h", 4, 0.0, 4.0).add(1.5);
    b.histogram("h", 4, 0.0, 4.0).add(1.5);
    EXPECT_EQ(a.snapshot(), b.snapshot());

    b.counter("c").add();
    EXPECT_NE(a.snapshot(), b.snapshot());
}

TEST(MetricsSnapshotTest, MergeSumsCountersAndBuckets)
{
    MetricsRegistry a, b;
    a.counter("c").add(2);
    b.counter("c").add(5);
    b.counter("only-b").add(1);
    a.histogram("h", 4, 0.0, 4.0).add(0.5);
    b.histogram("h", 4, 0.0, 4.0).add(0.5);
    b.histogram("h", 4, 0.0, 4.0).add(3.5);

    auto merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged.counterOr0("c"), 7u);
    EXPECT_EQ(merged.counterOr0("only-b"), 1u);
    EXPECT_EQ(merged.histograms.at("h").counts[0], 2u);
    EXPECT_EQ(merged.histograms.at("h").counts[3], 1u);
    EXPECT_EQ(merged.histograms.at("h").total, 3u);
}

TEST(MetricsRegistryTest, MergeIsOrderIndependent)
{
    // The property SweepRunner's replica drain relies on: integer
    // sums commute, so worker scheduling cannot change the aggregate.
    MetricsRegistry parts[3];
    parts[0].counter("n").add(1);
    parts[1].counter("n").add(10);
    parts[2].counter("n").add(100);
    parts[0].histogram("h", 4, 0.0, 4.0).add(0.0);
    parts[2].histogram("h", 4, 0.0, 4.0).add(3.0);

    MetricsRegistry forward, backward;
    for (int i = 0; i < 3; ++i)
        forward.merge(parts[i]);
    for (int i = 2; i >= 0; --i)
        backward.merge(parts[i]);
    EXPECT_EQ(forward.snapshot(), backward.snapshot());
    EXPECT_EQ(forward.snapshot().counterOr0("n"), 111u);
}

TEST(MetricsRegistryTest, ResetZeroesInPlaceKeepingHandlesValid)
{
    MetricsRegistry reg;
    obs::Counter &c = reg.counter("c");
    Histogram &h = reg.histogram("h", 4, 0.0, 4.0);
    c.add(9);
    h.add(1.0);
    reg.reset();
    EXPECT_EQ(c.value, 0u);
    EXPECT_EQ(h.total(), 0u);

    // Handles resolved before the reset still feed the registry.
    c.add(2);
    h.add(2.0);
    const auto snap = reg.snapshot();
    EXPECT_EQ(snap.counterOr0("c"), 2u);
    EXPECT_EQ(snap.histograms.at("h").total, 1u);
}

TEST(MetricsSnapshotTest, CommandSummaryNamesTheWellKnownCounters)
{
    MetricsRegistry reg;
    reg.counter("cmd.act").add(12);
    reg.counter("cmd.pre").add(12);
    reg.counter("cmd.rd").add(3);
    const std::string line = reg.snapshot().commandSummary();
    EXPECT_NE(line.find("ACT=12"), std::string::npos) << line;
    EXPECT_NE(line.find("PRE=12"), std::string::npos) << line;
    EXPECT_NE(line.find("RD=3"), std::string::npos) << line;
    EXPECT_NE(line.find("violations=0"), std::string::npos) << line;
}

} // namespace
} // namespace dramscope
