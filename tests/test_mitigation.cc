/**
 * @file
 * Unified-mitigation-interface tests: the DRAMSCOPE_MITIGATIONS
 * registry, the factory, per-kind firing/cadence/indirection
 * semantics, sequence-program cleanliness, and the shared
 * hammerThroughMitigation chunking path.
 */

#include <gtest/gtest.h>

#include "bender/host.h"
#include "bender/lint.h"
#include "core/protect/mitigation.h"
#include "dram/chip.h"
#include "test_common.h"

namespace dramscope {
namespace {

using core::MitigationKind;
using core::MitigationOptions;
using core::MitigationSequence;
using dram::RowAddr;

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

TEST(MitigationRegistry, RoundTripsAndRejectsUnknownIds)
{
    EXPECT_EQ(core::mitigationTable().size(), 5u);
    for (const auto &info : core::mitigationTable()) {
        EXPECT_EQ(core::mitigationInfo(info.kind).id, info.id);
        const auto parsed = core::mitigationFromString(info.id);
        ASSERT_TRUE(parsed.has_value()) << info.id;
        EXPECT_EQ(*parsed, info.kind);
    }
    EXPECT_STREQ(core::mitigationId(MitigationKind::None), "none");
    EXPECT_STREQ(core::mitigationId(MitigationKind::Graphene),
                 "graphene");
    EXPECT_STREQ(core::mitigationId(MitigationKind::RowSwap), "rowswap");
    EXPECT_FALSE(core::mitigationFromString("para").has_value());
    // None leads the registry so its sweep block keeps shard index 0.
    EXPECT_EQ(core::mitigationTable()[0].kind, MitigationKind::None);
}

TEST(MitigationRegistry, FactoryBuildsEveryKindAndNoneIsNull)
{
    const auto cfg = testutil::tinyPlain();
    const MitigationOptions opts;
    EXPECT_EQ(core::makeMitigation(MitigationKind::None, cfg, opts),
              nullptr);
    for (const auto &info : core::mitigationTable()) {
        if (info.kind == MitigationKind::None)
            continue;
        const auto mit = core::makeMitigation(info.kind, cfg, opts);
        ASSERT_NE(mit, nullptr) << info.id;
        EXPECT_EQ(mit->kind(), info.kind) << info.id;
        EXPECT_GE(mit->accountingChunk(), 1u) << info.id;
        EXPECT_EQ(mit->fired(), 0u) << info.id;
        EXPECT_TRUE(mit->pendingCommands().empty()) << info.id;
    }
}

// ---------------------------------------------------------------------
// Victim-row geometry.
// ---------------------------------------------------------------------

TEST(MitigationVictims, EdgeRowsClampAndCoupledPartnerAppends)
{
    const auto plain = testutil::tinyPlain();
    EXPECT_EQ(core::victimRows(plain, 10, false),
              (std::vector<RowAddr>{9, 11}));
    EXPECT_EQ(core::victimRows(plain, 0, false),
              (std::vector<RowAddr>{1}));
    const RowAddr last = plain.rowsPerBank - 1;
    EXPECT_EQ(core::victimRows(plain, last, false),
              (std::vector<RowAddr>{last - 1}));

    // Device-aware on a coupled config: the partner's victims ride
    // along (deduplicated).
    auto coupled = dram::makeTinyConfig();
    coupled.rowRemap = dram::RowRemapScheme::None;
    const auto v = core::victimRows(coupled, 20, true);
    EXPECT_EQ(v, (std::vector<RowAddr>{19, 21, 531, 533}));
    // Not device-aware: the MC view has no partner.
    EXPECT_EQ(core::victimRows(coupled, 20, false),
              (std::vector<RowAddr>{19, 21}));
}

// ---------------------------------------------------------------------
// Sequence programs.
// ---------------------------------------------------------------------

TEST(MitigationSequences, ProgramsAreInSpecAndCostMatches)
{
    const auto cfg = testutil::tinyPlain();
    MitigationSequence seq;
    seq.kind = MitigationKind::Graphene;
    seq.bank = 1;
    seq.rows = core::victimRows(cfg, 40, false);
    seq.extraPs = 12345;

    const auto p = seq.program(cfg);
    EXPECT_TRUE(p.expectedViolations().empty());
    const auto report = bender::lint::lint(p, cfg);
    EXPECT_TRUE(report.diags.empty());

    // Cost = one ACT..PRE cycle per row plus the extra wait.
    const auto &t = cfg.timing;
    const auto cycle = 2 * int64_t(std::llround(t.tCkNs * 1000)) +
                       int64_t(std::llround(t.tRasNs * 1000)) +
                       int64_t(std::llround(t.tRpNs * 1000));
    EXPECT_EQ(seq.costPs(t), int64_t(seq.rows.size()) * cycle + 12345);
}

// ---------------------------------------------------------------------
// Per-kind semantics.
// ---------------------------------------------------------------------

TEST(GrapheneMitigation, FiresAtThresholdAndRefreshWindowResets)
{
    const auto cfg = testutil::tinyPlain();
    MitigationOptions opts;
    opts.graphene.threshold = 10;
    const auto mit =
        core::makeMitigation(MitigationKind::Graphene, cfg, opts);

    for (int k = 0; k < 9; ++k)
        mit->onActivate(0, 40);
    EXPECT_TRUE(mit->pendingCommands().empty());
    mit->onActivate(0, 40);
    const auto fired = mit->pendingCommands();
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].bank, 0u);
    EXPECT_EQ(fired[0].rows, (std::vector<RowAddr>{39, 41}));
    EXPECT_EQ(fired[0].neutralized, (std::vector<RowAddr>{40}));
    EXPECT_EQ(mit->fired(), 1u);
    // Draining is destructive.
    EXPECT_TRUE(mit->pendingCommands().empty());

    // A refresh window clears the counters: 9 more ACTs stay silent.
    mit->onActivate(0, 40, 9);
    mit->onRefreshWindow();
    mit->onActivate(0, 40, 9);
    EXPECT_TRUE(mit->pendingCommands().empty());
}

TEST(GrapheneMitigation, BanksTrackIndependently)
{
    const auto cfg = testutil::tinyPlain();
    MitigationOptions opts;
    opts.graphene.threshold = 10;
    const auto mit =
        core::makeMitigation(MitigationKind::Graphene, cfg, opts);
    mit->onActivate(0, 7, 9);
    mit->onActivate(1, 7, 9);
    EXPECT_TRUE(mit->pendingCommands().empty());
    mit->onActivate(1, 7, 1);
    const auto fired = mit->pendingCommands();
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].bank, 1u);
}

TEST(RfmMitigation, RaaCadenceTargetsTheHottestRow)
{
    auto cfg = dram::makeTinyConfig();
    cfg.rowRemap = dram::RowRemapScheme::None;
    MitigationOptions opts;
    opts.raaimt = 100;
    const auto mit = core::makeMitigation(MitigationKind::Rfm, cfg, opts);
    EXPECT_EQ(mit->accountingChunk(), 25u);

    // The space-saving table must pick the majority row when the
    // RAA counter reaches the management threshold.
    mit->onActivate(0, 200, 30);
    mit->onActivate(0, 20, 69);
    EXPECT_TRUE(mit->pendingCommands().empty());
    mit->onActivate(0, 20, 1);  // RAA hits 100: RFM fires.
    const auto fired = mit->pendingCommands();
    ASSERT_EQ(fired.size(), 1u);
    // In-DRAM view: row 20's victims plus its coupled partner's.
    EXPECT_EQ(fired[0].rows, (std::vector<RowAddr>{19, 21, 531, 533}));
    EXPECT_EQ(fired[0].neutralized, (std::vector<RowAddr>{20, 532}));
}

TEST(DrfmMitigation, RefreshesTheSampledRowEveryInterval)
{
    auto cfg = dram::makeTinyConfig();
    cfg.rowRemap = dram::RowRemapScheme::None;
    MitigationOptions opts;
    opts.drfmInterval = 50;
    const auto mit =
        core::makeMitigation(MitigationKind::Drfm, cfg, opts);

    mit->onActivate(0, 100, 49);
    mit->onActivate(0, 60, 1);  // Interval reached; sample is row 60.
    const auto fired = mit->pendingCommands();
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].rows, (std::vector<RowAddr>{59, 61, 571, 573}));
    EXPECT_EQ(mit->fired(), 1u);
}

TEST(RowSwapMitigation, IndirectionMovesTheHotRowPerBank)
{
    const auto cfg = testutil::tinyPlain();
    MitigationOptions opts;
    opts.rowswap.threshold = 20;
    opts.rowswap.spareBase = 900;
    const auto mit =
        core::makeMitigation(MitigationKind::RowSwap, cfg, opts);

    EXPECT_EQ(mit->resolve(0, 5), 5u);
    mit->onActivate(0, 5, 20);
    const auto fired = mit->pendingCommands();
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].rows, (std::vector<RowAddr>{5, 900}));
    EXPECT_EQ(fired[0].neutralized, (std::vector<RowAddr>{5}));
    EXPECT_GT(fired[0].extraPs, 0);  // The data burst costs time.
    EXPECT_EQ(mit->resolve(0, 5), 900u);
    // The indirection is per bank.
    EXPECT_EQ(mit->resolve(1, 5), 5u);
}

// ---------------------------------------------------------------------
// The shared adversarial-hammer path.
// ---------------------------------------------------------------------

TEST(HammerThroughMitigation, ChunksAccountEverythingAndFiresInline)
{
    const auto cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    MitigationOptions opts;
    opts.graphene.threshold = 100;
    const auto mit =
        core::makeMitigation(MitigationKind::Graphene, cfg, opts);

    std::vector<MitigationSequence> seen;
    core::hammerThroughMitigation(
        host, *mit, 0, 30, 350,
        [&](const MitigationSequence &s) { seen.push_back(s); });

    // 350 activations at threshold 100: three firings, none skipped
    // by chunking (chunk = threshold / 4 <= trigger spacing).
    EXPECT_EQ(mit->fired(), 3u);
    ASSERT_EQ(seen.size(), 3u);
    for (const auto &s : seen)
        EXPECT_EQ(s.neutralized, (std::vector<RowAddr>{30}));
    // Nothing left pending after the loop.
    EXPECT_TRUE(mit->pendingCommands().empty());
}

TEST(HammerThroughMitigation, DefaultHandlerRunsTheProgramOnTheHost)
{
    // Victim refresh through the device: armed victims survive a
    // 100k-ACT hammer that flips bits without the mitigation.
    auto cfg = dram::makeTinyConfig();
    cfg.rowRemap = dram::RowRemapScheme::None;
    const RowAddr aggr = 60;

    const auto flipsWith = [&](MitigationKind kind) {
        dram::Chip chip(cfg);
        bender::Host host(chip);
        for (const RowAddr v : {aggr - 1, aggr + 1})
            host.writeRowPattern(0, v, ~0ULL);
        host.writeRowPattern(0, aggr, 0);
        MitigationOptions opts;
        opts.graphene.threshold = 6000;
        if (kind == MitigationKind::None) {
            host.hammer(0, aggr, 100000);
        } else {
            const auto mit = core::makeMitigation(kind, cfg, opts);
            core::hammerThroughMitigation(host, *mit, 0, aggr, 100000);
            EXPECT_GT(mit->fired(), 0u);
        }
        size_t flips = 0;
        for (const RowAddr v : {aggr - 1, aggr + 1}) {
            const BitVec row = host.readRowBits(0, v);
            flips += row.size() - row.popcount();
        }
        return flips;
    };

    EXPECT_GT(flipsWith(MitigationKind::None), 0u);
    EXPECT_EQ(flipsWith(MitigationKind::Graphene), 0u);
}

} // namespace
} // namespace dramscope
