/**
 * @file
 * Static exposure & energy certifier tests: symbolic activation
 * counters (exactness through loop fast-forwarding, nested loops,
 * refresh-window segmentation), energy/power accounting, certify-only
 * rule scoping, stale-expectation determinism for degenerate loop
 * counts, registration-time mitigation certification, and the
 * cross-validation harness proving the static bound dominates the
 * dynamic per-window ACT maximum on every mc grid cell across
 * chip / DIMM / HBM backends.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bender/host.h"
#include "bender/lint.h"
#include "bender/program.h"
#include "core/programs.h"
#include "core/protect/mitigation.h"
#include "dram/chip.h"
#include "dram/hbm_stack.h"
#include "mapping/dimm.h"
#include "mc/mc.h"
#include "mc/sweep.h"
#include "test_common.h"

namespace dramscope {
namespace {

namespace lint = bender::lint;
using bender::Program;
using lint::Rule;

bool
hasRule(const lint::Report &r, Rule rule)
{
    for (const auto &d : r.diags)
        if (d.rule == rule)
            return true;
    return false;
}

size_t
countRule(const lint::Report &r, Rule rule)
{
    size_t n = 0;
    for (const auto &d : r.diags)
        n += d.rule == rule;
    return n;
}

/** act/pre pair with in-spec spacing (tRAS 32 ns, tRP 13.75 ns). */
Program &
actPre(Program &p, dram::BankId b, dram::RowAddr r)
{
    return p.act(b, r).sleepNs(35).pre(b).sleepNs(15);
}

// ---------------------------------------------------------------------
// Exposure counters: straight-line, loops, nesting, REF segmentation.
// ---------------------------------------------------------------------

TEST(CertifyExposure, StraightLineCountsEveryAct)
{
    const auto cfg = testutil::tinyPlain();
    Program p;
    actPre(p, 0, 7);
    actPre(p, 0, 7);
    actPre(p, 1, 3);
    const auto cert = lint::certify(p, cfg);
    EXPECT_TRUE(cert.certified()) << cert.summary();
    EXPECT_EQ(cert.maxRowActs, 2u);
    EXPECT_EQ(cert.hottestBank, 0u);
    EXPECT_EQ(cert.hottestRow, 7u);
    EXPECT_TRUE(cert.exact);
}

TEST(CertifyExposure, RefSegmentsTheWindow)
{
    // Three ACTs to one row, a REF between each: no refresh window
    // ever sees more than one, so the proven bound is 1, not 3.
    const auto cfg = testutil::tinyPlain();
    Program p;
    actPre(p, 0, 7);
    p.ref().sleepNs(400);
    actPre(p, 0, 7);
    p.ref().sleepNs(400);
    actPre(p, 0, 7);
    const auto cert = lint::certify(p, cfg);
    EXPECT_TRUE(cert.certified()) << cert.summary();
    EXPECT_EQ(cert.maxRowActs, 1u);
    EXPECT_TRUE(cert.exact);
}

TEST(CertifyExposure, FastForwardedLoopMatchesStepwiseExpansion)
{
    // 50 iterations: far past kSimIters, so the bulk is folded
    // analytically — the symbolic counter must equal the unrolled
    // program's count exactly, not approximately.
    const auto cfg = testutil::tinyPlain();
    const uint64_t n = 50;

    Program looped;
    looped.loopBegin(n);
    actPre(looped, 0, 5);
    looped.loopEnd();

    Program unrolled;
    for (uint64_t i = 0; i < n; ++i)
        actPre(unrolled, 0, 5);

    const auto a = lint::certify(looped, cfg);
    const auto b = lint::certify(unrolled, cfg);
    EXPECT_TRUE(a.certified()) << a.summary();
    EXPECT_EQ(a.maxRowActs, n);
    EXPECT_EQ(a.maxRowActs, b.maxRowActs);
    EXPECT_EQ(a.hottestRow, b.hottestRow);
    EXPECT_TRUE(a.exact);
    EXPECT_TRUE(b.exact);
    EXPECT_DOUBLE_EQ(a.commandEnergyPj, b.commandEnergyPj);
}

TEST(CertifyExposure, HammerInsideSweepCountsPerRowExactly)
{
    // The nested shape of a real experiment: an outer sweep visits a
    // probe row once per iteration, an inner hammer loop pounds a
    // fixed aggressor.  Per-row symbolic counters must match the
    // step-wise expansion for every row, including across the outer
    // loop's own fast-forward.
    const auto cfg = testutil::tinyPlain();
    const uint64_t outer = 20;  // > kSimIters: outer loop folds too.
    const uint64_t inner = 10;

    Program nested;
    nested.loopBegin(outer);
    actPre(nested, 0, 1);  // Probe row: once per outer iteration.
    nested.loopBegin(inner);
    actPre(nested, 0, 9);  // Aggressor: inner * outer in total.
    nested.loopEnd();
    nested.loopEnd();

    Program unrolled;
    for (uint64_t i = 0; i < outer; ++i) {
        actPre(unrolled, 0, 1);
        for (uint64_t j = 0; j < inner; ++j)
            actPre(unrolled, 0, 9);
    }

    const auto a = lint::certify(nested, cfg);
    const auto b = lint::certify(unrolled, cfg);
    EXPECT_TRUE(a.certified()) << a.summary();
    EXPECT_EQ(a.maxRowActs, outer * inner);
    EXPECT_EQ(a.hottestBank, 0u);
    EXPECT_EQ(a.hottestRow, 9u);
    EXPECT_TRUE(a.exact);
    EXPECT_EQ(a.maxRowActs, b.maxRowActs);
    EXPECT_EQ(a.hottestRow, b.hottestRow);
    EXPECT_DOUBLE_EQ(a.commandEnergyPj, b.commandEnergyPj);
}

TEST(CertifyExposure, LoopBodyWithRefIsConservativeNotExact)
{
    // A REF inside a folded loop resets the window mid-iteration;
    // the analyzer keeps the steady-state counters but downgrades
    // the exactness claim.
    const auto cfg = testutil::tinyPlain();
    Program p;
    p.loopBegin(50);
    actPre(p, 0, 5);
    p.ref().sleepNs(400);
    p.loopEnd();
    const auto cert = lint::certify(p, cfg);
    EXPECT_TRUE(cert.certified()) << cert.summary();
    EXPECT_FALSE(cert.exact);
    EXPECT_GE(cert.maxRowActs, 1u);
}

TEST(CertifyExposure, ThresholdOverrideFlagsUnannotatedPrograms)
{
    const auto cfg = testutil::tinyPlain();
    Program p;
    p.loopBegin(50);
    actPre(p, 0, 5);
    p.loopEnd();

    lint::CertifyOptions opts;
    opts.exposureThreshold = 10;
    const auto hot = lint::certify(p, cfg, opts);
    EXPECT_FALSE(hot.certified());
    EXPECT_TRUE(hasRule(hot.report, Rule::ExposureBound));
    EXPECT_EQ(hot.exposureThreshold, 10u);

    // The same program, annotated: the violation is declared intent,
    // so it certifies (the hammer-catalog contract).
    p.expectViolation(Rule::ExposureBound);
    const auto declared = lint::certify(p, cfg, opts);
    EXPECT_TRUE(declared.certified()) << declared.summary();
    EXPECT_FALSE(hasRule(declared.report, Rule::StaleExpectation));
}

// ---------------------------------------------------------------------
// Energy and power accounting.
// ---------------------------------------------------------------------

TEST(CertifyEnergy, CommandEnergiesSumFromTheTables)
{
    const auto cfg = testutil::tinyPlain();
    Program p;
    p.act(0, 1).sleepNs(35);
    p.rd(0, 0).sleepNs(10);
    p.wr(0, 1, 0xAB).sleepNs(35);
    p.pre(0).sleepNs(15);
    p.ref().sleepNs(400);
    const auto cert = lint::certify(p, cfg);
    const auto &e = cfg.energy;
    EXPECT_DOUBLE_EQ(cert.commandEnergyPj,
                     e.eActPj + e.eRdPj + e.eWrPj + e.ePrePj + e.eRefPj);
    EXPECT_GT(cert.backgroundEnergyPj, 0.0);
    EXPECT_DOUBLE_EQ(cert.totalEnergyPj(),
                     cert.commandEnergyPj + cert.backgroundEnergyPj);
    EXPECT_GE(cert.avgPowerMw, e.backgroundMw);
    EXPECT_GE(cert.peakWindowPowerMw, e.backgroundMw);
}

TEST(CertifyEnergy, IdleProgramDrawsOnlyBackground)
{
    const auto cfg = testutil::tinyPlain();
    Program p;
    p.sleepNs(1000);
    const auto cert = lint::certify(p, cfg);
    EXPECT_TRUE(cert.certified()) << cert.summary();
    EXPECT_DOUBLE_EQ(cert.commandEnergyPj, 0.0);
    EXPECT_DOUBLE_EQ(cert.avgPowerMw, cfg.energy.backgroundMw);
    EXPECT_DOUBLE_EQ(cert.peakWindowPowerMw, cfg.energy.backgroundMw);
}

TEST(CertifyEnergy, OverBudgetProgramFailsCertification)
{
    // A 1 mW budget is below background draw alone: any program must
    // fail, which is also the CLI's exit-code contract.
    const auto cfg = testutil::tinyPlain();
    Program p;
    actPre(p, 0, 1);
    lint::CertifyOptions opts;
    opts.powerBudgetMw = 1.0;
    const auto cert = lint::certify(p, cfg, opts);
    EXPECT_FALSE(cert.certified());
    EXPECT_TRUE(hasRule(cert.report, Rule::PowerWindow));
    EXPECT_DOUBLE_EQ(cert.powerBudgetMw, 1.0);
}

TEST(CertifyEnergy, LongLoopPeakPowerSeesAFullWindow)
{
    // A loop whose period is a fraction of the 200 ns power window
    // must not fast-forward before a full window fills: the peak is
    // near steady state, well above a 6-iteration prefix average.
    const auto cfg = testutil::tinyPlain();
    Program p;
    p.loopBegin(10000);
    actPre(p, 0, 5);  // 50 ns period: 4 commands per 200 ns window.
    p.loopEnd();
    p.expectViolation(Rule::ExposureBound);
    const auto cert = lint::certify(p, cfg);
    EXPECT_TRUE(cert.certified()) << cert.summary();
    const double steady =
        1000.0 * (cfg.energy.eActPj + cfg.energy.ePrePj) / 50000.0 +
        cfg.energy.backgroundMw;
    EXPECT_GE(cert.peakWindowPowerMw, 0.9 * steady);
}

TEST(CertifyEnergy, EveryCertificateCarriesAnEnergyEstimateNote)
{
    const auto cfg = testutil::tinyPlain();
    Program p;
    actPre(p, 0, 1);
    const auto cert = lint::certify(p, cfg);
    EXPECT_TRUE(hasRule(cert.report, Rule::EnergyEstimate));
    EXPECT_TRUE(cert.certified());
}

// ---------------------------------------------------------------------
// Certify-only rule scoping: plain lint() neither fires the effect
// rules nor stale-flags their annotations.
// ---------------------------------------------------------------------

TEST(CertifyOnlyRules, PlainLintIgnoresEffectRulesAndAnnotations)
{
    const auto cfg = testutil::tinyPlain();
    Program p;
    p.loopBegin(100000);
    actPre(p, 0, 5);
    p.loopEnd();
    p.expectViolation(Rule::ExposureBound);

    const auto report = lint::lint(p, cfg);
    EXPECT_TRUE(report.diags.empty()) << report.diags.size();

    const auto cert = lint::certify(p, cfg);
    EXPECT_TRUE(cert.certified()) << cert.summary();
    EXPECT_TRUE(hasRule(cert.report, Rule::ExposureBound));
    EXPECT_TRUE(hasRule(cert.report, Rule::EnergyEstimate));
}

// ---------------------------------------------------------------------
// Stale-expectation determinism for degenerate loop counts
// (regression: counts 0/1 used to report inconsistently).
// ---------------------------------------------------------------------

/** A deliberately tRAS-violating act/pre pair (tRC/tRP kept legal,
 *  so loop iterations compose without further violations). */
Program &
shortActPre(Program &p, dram::BankId b, dram::RowAddr r)
{
    return p.act(b, r).sleepNs(5).pre(b).sleepNs(45);
}

TEST(StaleExpectation, ZeroCountLoopReportsStaleWithDeadCodeContext)
{
    // The annotated violation sits in a zero-count loop: it never
    // fires, so the annotation is stale — and the diagnostic says
    // the dead code may be why, instead of silently flip-flopping.
    const auto cfg = testutil::tinyPlain();
    Program p;
    p.loopBegin(0);
    shortActPre(p, 0, 1);
    p.loopEnd();
    p.expectViolation(Rule::TRas);

    const auto a = lint::lint(p, cfg);
    const auto b = lint::lint(p, cfg);
    EXPECT_EQ(countRule(a, Rule::StaleExpectation), 1u);
    EXPECT_EQ(a.diags.size(), b.diags.size());
    for (size_t i = 0; i < a.diags.size(); ++i) {
        EXPECT_EQ(a.diags[i].rule, b.diags[i].rule);
        EXPECT_EQ(a.diags[i].message, b.diags[i].message);
    }
    for (const auto &d : a.diags) {
        if (d.rule == Rule::StaleExpectation) {
            EXPECT_NE(d.message.find("zero-count"), std::string::npos)
                << d.message;
        }
    }
}

TEST(StaleExpectation, CountOneLoopBehavesLikeStraightLine)
{
    const auto cfg = testutil::tinyPlain();
    Program looped;
    looped.loopBegin(1);
    shortActPre(looped, 0, 1);
    looped.loopEnd();
    looped.expectViolation(Rule::TRas);

    Program straight;
    shortActPre(straight, 0, 1);
    straight.expectViolation(Rule::TRas);

    const auto a = lint::lint(looped, cfg);
    const auto b = lint::lint(straight, cfg);
    EXPECT_FALSE(a.hasErrors());
    EXPECT_FALSE(hasRule(a, Rule::StaleExpectation));
    EXPECT_EQ(countRule(a, Rule::TRas), countRule(b, Rule::TRas));
}

TEST(StaleExpectation, DuplicateAnnotationsYieldOneDiagnostic)
{
    const auto cfg = testutil::tinyPlain();
    Program p;
    actPre(p, 0, 1);  // In-spec: the TRp annotations are both stale.
    p.expectViolation(Rule::TRp);
    p.expectViolation(Rule::TRp);
    const auto report = lint::lint(p, cfg);
    EXPECT_EQ(countRule(report, Rule::StaleExpectation), 1u);
}

TEST(StaleExpectation, DiagSetStableAcrossTheSimulateThreshold)
{
    // Loop counts on either side of kSimIters (6) take different
    // engine paths (fully simulated vs. fast-forwarded); the
    // reported rule set must not depend on which path ran.
    const auto cfg = testutil::tinyPlain();
    for (const uint64_t count : {6u, 7u, 100u}) {
        Program p;
        p.loopBegin(count);
        shortActPre(p, 0, 1);
        p.loopEnd();
        p.expectViolation(Rule::TRas);
        const auto report = lint::lint(p, cfg);
        EXPECT_FALSE(report.hasErrors()) << "count " << count;
        EXPECT_FALSE(hasRule(report, Rule::StaleExpectation))
            << "count " << count;
    }
}

// ---------------------------------------------------------------------
// Registration-time mitigation certification.
// ---------------------------------------------------------------------

TEST(CertifyMitigation, EveryRegisteredKindCertifiesItsSequences)
{
    const auto cfg = testutil::tinyPlain();
    for (const auto &info : core::mitigationTable()) {
        const auto cert = core::certifyMitigationSequences(info.kind, cfg);
        EXPECT_TRUE(cert.certified())
            << info.id << ": " << cert.summary();
        EXPECT_TRUE(hasRule(cert.report, Rule::EnergyEstimate)) << info.id;
    }
}

TEST(CertifyMitigation, MakeMitigationRunsTheGate)
{
    const auto cfg = testutil::tinyPlain();
    for (const auto &info : core::mitigationTable()) {
        const auto mit =
            core::makeMitigation(info.kind, cfg, core::MitigationOptions{});
        if (info.kind == core::MitigationKind::None)
            EXPECT_EQ(mit, nullptr);
        else
            EXPECT_NE(mit, nullptr) << info.id;
    }
}

// ---------------------------------------------------------------------
// Cross-validation: static bound >= dynamic per-window maximum on
// every grid cell, on every backend.
// ---------------------------------------------------------------------

void
expectStaticBoundDominatesDynamic(dram::Device &dev)
{
    bender::Host host(dev);
    const auto &cfg = host.config();

    std::vector<core::MitigationKind> kinds;
    for (const auto &info : core::mitigationTable())
        kinds.push_back(info.kind);

    mc::McSweepOptions opt;
    opt.requests = 400;
    opt.mitigations = kinds;
    const auto plan = mc::sweepPlan(kinds);
    ASSERT_EQ(plan.size(),
              kinds.size() * (plan.size() / kinds.size()));

    for (uint32_t shard = 0; shard < plan.size(); ++shard) {
        const auto &cell = plan[shard];
        const auto res = mc::buildSweepCellSchedule(cell, shard, cfg, opt);
        const auto cert = lint::certify(res.program, cfg);
        const auto label = core::mitigationTable()[shard / (plan.size() /
                                                            kinds.size())]
                               .id;

        EXPECT_TRUE(cert.certified())
            << label << " shard " << shard << ": " << cert.summary();

        // The proven static bound dominates what the scheduler
        // observed dynamically; with no mitigation the two models
        // count the same ACTs, so the bound is tight.
        EXPECT_GE(cert.maxRowActs, res.stats.maxRowActsPerRefWindow)
            << label << " shard " << shard;
        if (cell.mitigation == core::MitigationKind::None) {
            EXPECT_EQ(cert.maxRowActs, res.stats.maxRowActsPerRefWindow)
                << "shard " << shard;
        }
        if (cell.mitigation == core::MitigationKind::Graphene) {
            EXPECT_LE(cert.maxRowActs,
                      core::TrackerOptions{}.threshold)
                << "shard " << shard;
        }

        // The certified program also runs violation-free.
        const auto before = dev.violationCount();
        host.run(res.program);
        EXPECT_EQ(dev.violationCount(), before)
            << label << " shard " << shard;
    }
}

TEST(CertifyCrossValidation, GridBoundDominatesDynamicOnAChip)
{
    dram::Chip chip(testutil::tinyPlain());
    expectStaticBoundDominatesDynamic(chip);
}

TEST(CertifyCrossValidation, GridBoundDominatesDynamicOnADimm)
{
    mapping::Dimm dimm(testutil::tinyPlain());
    expectStaticBoundDominatesDynamic(dimm);
}

TEST(CertifyCrossValidation, GridBoundDominatesDynamicOnAnHbmChannel)
{
    dram::HbmStack stack(testutil::tinyPlain(), 2);
    expectStaticBoundDominatesDynamic(stack.channel(1));
}

// ---------------------------------------------------------------------
// Catalog programs certify on the tiny config (the CLI contract).
// ---------------------------------------------------------------------

TEST(CertifyCatalog, EveryBuiltinProgramCertifies)
{
    const auto cfg = testutil::tinyPlain();
    for (const auto &entry : core::builtinPrograms(cfg)) {
        const auto cert = lint::certify(entry.prog, cfg);
        EXPECT_TRUE(cert.certified())
            << entry.name << ": " << cert.summary();
        EXPECT_LE(cert.peakWindowPowerMw, cfg.energy.maxAvgPowerMw)
            << entry.name;
    }
}

} // namespace
} // namespace dramscope
