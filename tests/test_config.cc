/**
 * @file
 * Unit tests for device configuration presets (Table I / Table III
 * ground truth).
 */

#include <gtest/gtest.h>

#include "dram/config.h"

namespace dramscope {
namespace dram {
namespace {

TEST(Config, PresetTableMatchesPaperPopulation)
{
    // Table I: 376 DDR4 chips + 4 HBM2 stacks.
    int ddr4 = 0, hbm2 = 0;
    for (const auto &info : presetTable()) {
        if (info.id.rfind("HBM2", 0) == 0)
            hbm2 += info.chipCount;
        else
            ddr4 += info.chipCount;
    }
    EXPECT_EQ(ddr4, 376);
    EXPECT_EQ(hbm2, 4);
}

TEST(Config, AllPresetsValidate)
{
    for (const auto &id : presetIds()) {
        const DeviceConfig cfg = makePreset(id);
        EXPECT_EQ(cfg.name, id);
        // validate() fatals on inconsistency; reaching here means ok.
        EXPECT_GT(cfg.patternRows(), 0u);
    }
}

TEST(Config, SubarrayHeightsAreNotPowersOfTwo)
{
    // O4: heights are non-powers-of-two for every preset.
    for (const auto &id : presetIds()) {
        const DeviceConfig cfg = makePreset(id);
        for (const auto &entry : cfg.subarrayPattern) {
            const bool pow2 =
                (entry.height & (entry.height - 1)) == 0;
            EXPECT_FALSE(pow2) << id << " height " << entry.height;
        }
    }
}

TEST(Config, MultipleHeightsCoexist)
{
    // O4: every preset mixes at least two subarray heights.
    for (const auto &id : presetIds()) {
        const DeviceConfig cfg = makePreset(id);
        EXPECT_GE(cfg.subarrayPattern.size(), 2u) << id;
    }
}

TEST(Config, TableIIIStructures)
{
    // Spot-check the Table III ground truth.
    const DeviceConfig a16 = makePreset("A_x4_2016");
    EXPECT_EQ(a16.patternRows(), 8192u);
    EXPECT_EQ(a16.edgeSectionRows, 16384u);
    ASSERT_TRUE(a16.coupledRowDistance.has_value());
    EXPECT_EQ(*a16.coupledRowDistance, 65536u);
    EXPECT_EQ(a16.matWidth, 512u);

    const DeviceConfig a18 = makePreset("A_x4_2018");
    EXPECT_EQ(a18.patternRows(), 4096u);
    EXPECT_EQ(a18.edgeSectionRows, 32768u);
    EXPECT_FALSE(a18.coupledRowDistance.has_value());

    const DeviceConfig b19 = makePreset("B_x4_2019");
    EXPECT_EQ(b19.matWidth, 1024u);
    ASSERT_TRUE(b19.coupledRowDistance.has_value());

    const DeviceConfig c16 = makePreset("C_x8_2016");
    EXPECT_EQ(c16.edgeSectionRows, 4096u);
    EXPECT_EQ(c16.patternRows(), 2048u);

    const DeviceConfig hbm = makePreset("HBM2_A");
    EXPECT_EQ(hbm.edgeSectionRows, 8192u);
    ASSERT_TRUE(hbm.coupledRowDistance.has_value());
    EXPECT_EQ(*hbm.coupledRowDistance, 8192u);
    EXPECT_DOUBLE_EQ(hbm.timing.tCkNs, 1.67);
}

TEST(Config, VendorMappingPolicies)
{
    // SS III-B/III-C ground truth: who remaps, who interleaves cells.
    EXPECT_EQ(makePreset("A_x4_2016").rowRemap, RowRemapScheme::MfrA8Blk);
    EXPECT_EQ(makePreset("B_x4_2019").rowRemap, RowRemapScheme::None);
    EXPECT_EQ(makePreset("C_x4_2018").rowRemap, RowRemapScheme::None);
    EXPECT_EQ(makePreset("C_x4_2018").polarityPolicy,
              CellPolarityPolicy::InterleavedPerSubarray);
    EXPECT_EQ(makePreset("A_x4_2016").polarityPolicy,
              CellPolarityPolicy::AllTrue);
}

TEST(Config, GeometryDerivedQuantities)
{
    const DeviceConfig cfg = makePreset("A_x4_2016");
    EXPECT_EQ(cfg.matsPerRow(), 8u);
    EXPECT_EQ(cfg.groupBits(), 4u);
    EXPECT_EQ(cfg.columnsPerRow(), 128u);

    const DeviceConfig b = makePreset("B_x8_2017");
    EXPECT_EQ(b.matsPerRow(), 8u);
    EXPECT_EQ(b.groupBits(), 8u);
}

TEST(Config, TinyConfigIsStructurallyFaithful)
{
    const DeviceConfig cfg = makeTinyConfig();
    EXPECT_GE(cfg.subarrayPattern.size(), 2u);
    EXPECT_TRUE(cfg.coupledRowDistance.has_value());
    EXPECT_EQ(cfg.rowsPerBank % cfg.edgeSectionRows, 0u);
}

TEST(Config, CoupledDistanceIsHalfTheBank)
{
    for (const auto &id : presetIds()) {
        const DeviceConfig cfg = makePreset(id);
        if (cfg.coupledRowDistance)
            EXPECT_EQ(*cfg.coupledRowDistance, cfg.rowsPerBank / 2) << id;
    }
}

} // namespace
} // namespace dram
} // namespace dramscope
