/**
 * @file
 * Backend-agnostic integration tests: the reverse-engineering tools
 * and the characterization suite running end-to-end on a DIMM rank
 * through the dram::Device interface, with results tied back to the
 * single-chip ground truth.
 */

#include <gtest/gtest.h>

#include "bender/trace.h"
#include "core/charact.h"
#include "core/re_adjacency.h"
#include "core/re_swizzle.h"
#include "dram/chip.h"
#include "mapping/dimm.h"
#include "test_common.h"
#include "util/metrics.h"

namespace dramscope {
namespace {

using dram::DeviceConfig;
using dram::RowAddr;

TEST(DimmBackend, AdjacencyMapperFindsNeighbors)
{
    // Full DIMM realism (RCD inversion on, vendor DQ twists): the
    // inversion mirrors B-side rows, but mirroring preserves +-1
    // adjacency, so host-space probing still lands on host r +- 1.
    mapping::Dimm dimm(testutil::tinyPlain());
    bender::Host host(dimm);
    obs::MetricsRegistry metrics;
    obs::CommandTracer tracer(1 << 14);
    host.setMetrics(&metrics);
    host.setTrace(&tracer);

    core::AdjacencyMapper mapper(host);
    const auto probe = mapper.probe(60);
    ASSERT_EQ(probe.neighbors.size(), 2u);
    EXPECT_EQ(probe.neighbors[0], RowAddr(59));
    EXPECT_EQ(probe.neighbors[1], RowAddr(61));

    // Observability flows through the Device interface unchanged.
    EXPECT_GT(metrics.counter("cmd.act").value, 0u);
    EXPECT_GT(tracer.recorded(), 0u);
}

TEST(DimmBackend, SwizzleReverserRecoversPermutation)
{
    // With straight DQ routing every chip presents the same MAT
    // swizzle, so the rank view (matWidth x 16) has the chip's
    // permutation — recoverable through the Device interface alone.
    const DeviceConfig chip_cfg = testutil::tinyPlain();
    mapping::Dimm dimm(chip_cfg, /*rcd_inversion=*/false,
                       /*identity_twist=*/true);
    bender::Host host(dimm);

    core::SwizzleOptions opts;
    opts.victimGroups = 40;
    opts.baseRow = 80;
    opts.subarrayBoundary = 48;
    // The default probe column is the bus middle — a chip boundary on
    // a rank, where bus-adjacent columns are not silicon-adjacent and
    // the influence chains break.  Probe a chip-interior column (chip
    // 8, columns 2..4) so both horizontal neighbours share its die.
    opts.probeColumn = 8 * chip_cfg.columnsPerRow() + 3;
    core::SwizzleReverser reverser(host, opts);
    const auto d = reverser.discover();

    EXPECT_EQ(d.matsPerRow, chip_cfg.matsPerRow());
    EXPECT_EQ(d.matWidth, dimm.config().matWidth);
    EXPECT_TRUE(d.periodic);
    EXPECT_EQ(d.recoveredPerm, chip_cfg.swizzlePerm);
}

TEST(DimmBackend, CharacterizationBerMatchesChipExactly)
{
    // Figure 12 panel on a rank of 16 identical chips vs one chip:
    // each phys-index bucket holds 16x the cells and 16x the flips,
    // and (16f)/(16c) == f/c in IEEE double, so the BER curves are
    // bit-identical.  The rank's PhysMap is the chip map tiled.
    const DeviceConfig cfg = testutil::tinyPlain();
    core::CharactOptions opts;
    opts.victimRows = 16;
    opts.baseRow = 200;
    opts.jobs = 1;

    dram::Chip chip(cfg);
    bender::Host chip_host(chip);
    core::Characterization chip_charact(
        chip_host,
        core::PhysMap::fromSwizzle(chip.swizzle(), cfg.columnsPerRow(),
                                   cfg.rdDataBits),
        opts);
    const auto chip_ber = chip_charact.berVsPhysIndex(
        dram::AibMechanism::RowHammer, true, true);

    mapping::Dimm dimm(cfg, /*rcd_inversion=*/false,
                       /*identity_twist=*/true);
    bender::Host dimm_host(dimm);
    obs::MetricsRegistry metrics;
    dimm_host.setMetrics(&metrics);
    const auto tiled = core::PhysMap::tiled(
        core::PhysMap::fromSwizzle(dimm.chip(0).swizzle(),
                                   cfg.columnsPerRow(), cfg.rdDataBits),
        dimm.chipCount());
    core::Characterization dimm_charact(dimm_host, tiled, opts);
    const auto dimm_ber = dimm_charact.berVsPhysIndex(
        dram::AibMechanism::RowHammer, true, true);

    EXPECT_EQ(dimm_ber, chip_ber);
    EXPECT_GT(metrics.counter("cmd.act").value, 0u);
}

TEST(DimmBackend, ParallelSweepMatchesSerialOnDimm)
{
    // DRAMSCOPE_JOBS determinism holds for non-chip backends too,
    // given a device factory producing equivalent replicas.
    const DeviceConfig cfg = testutil::tinyPlain();
    const auto map = [&cfg]() {
        dram::Chip probe(cfg);
        return core::PhysMap::tiled(
            core::PhysMap::fromSwizzle(probe.swizzle(),
                                       cfg.columnsPerRow(),
                                       cfg.rdDataBits),
            16);
    }();

    auto run = [&](unsigned jobs) {
        mapping::Dimm dimm(cfg, false, true);
        bender::Host host(dimm);
        core::CharactOptions opts;
        opts.victimRows = 16;
        opts.baseRow = 200;
        opts.jobs = jobs;
        opts.deviceFactory = [cfg](const DeviceConfig &) {
            return std::make_unique<mapping::Dimm>(cfg, false, true);
        };
        core::Characterization charact(host, map, opts);
        return charact.berVsPhysIndex(dram::AibMechanism::RowHammer,
                                      true, true);
    };
    EXPECT_EQ(run(1), run(4));
}

} // namespace
} // namespace dramscope
