/**
 * @file
 * Edge-case and error-path tests across modules: bounds checks,
 * option validation, HBM2 stack composition, and a handful of
 * behaviours not covered by the main suites.
 */

#include <gtest/gtest.h>

#include "bender/host.h"
#include "core/protect/ecc.h"
#include "core/protect/tracker.h"
#include "core/re_retention.h"
#include "core/re_swizzle.h"
#include "dram/hbm_stack.h"
#include "test_common.h"
#include "util/log.h"

namespace dramscope {
namespace {

using dram::RowAddr;

TEST(HbmStack, ChannelsAreIndependentSilicon)
{
    dram::HbmStack stack(dram::makePreset("HBM2_A"), 4);
    EXPECT_EQ(stack.channelCount(), 4u);

    // Same attack on two channels flips different cells (independent
    // process variation), but a comparable number of them.
    auto attack = [&](uint32_t c) {
        bender::Host host(stack.channel(c));
        host.writeRowPattern(0, 1000, ~0ULL);
        host.writeRowPattern(0, 1001, 0);
        host.hammer(0, 1001, 2000000);  // Compensates the 25C dose.
        return host.readRowBits(0, 1000);
    };
    const BitVec a = attack(0);
    const BitVec b = attack(1);
    EXPECT_NE(a, b);
    const size_t fa = a.size() - a.popcount();
    const size_t fb = b.size() - b.popcount();
    EXPECT_GT(fa, 10u);
    EXPECT_GT(fb, 10u);
    EXPECT_LT(fa, 3 * fb);
    EXPECT_LT(fb, 3 * fa);
}

TEST(HbmStack, PowerAccountingAggregates)
{
    dram::HbmStack stack(dram::makePreset("HBM2_A"), 2);
    bender::Host h0(stack.channel(0));
    bender::Host h1(stack.channel(1));
    // Row 1000 sits in a typical (non-edge) subarray; HBM2 rows
    // couple, so every ACT drives two wordlines.
    h0.hammer(0, 1000, 10);
    h1.hammer(0, 1000, 5);
    EXPECT_EQ(stack.totalWordlinesDriven(), 2u * 15u);
    // An edge-subarray row doubles again (tandem structure).
    h0.hammer(0, 100, 10);
    EXPECT_EQ(stack.totalWordlinesDriven(), 2u * 15u + 4u * 10u);
}

TEST(HbmStack, RejectsZeroChannels)
{
    EXPECT_DEATH(dram::HbmStack(dram::makePreset("HBM2_A"), 0),
                 "channels");
}

TEST(EdgeCases, UnknownPresetDies)
{
    EXPECT_DEATH(dram::makePreset("Z_x9_1999"), "unknown");
}

TEST(EdgeCases, InvalidConfigDies)
{
    dram::DeviceConfig cfg = testutil::tinyPlain();
    cfg.subarrayPattern = {{3, 100}};  // 300 does not divide 1024.
    EXPECT_DEATH(cfg.validate(), "pattern");

    dram::DeviceConfig bad_perm = testutil::tinyPlain();
    bad_perm.swizzlePerm = {0, 0, 2, 3, 4, 5, 6, 7};
    EXPECT_DEATH(bad_perm.validate(), "permutation");

    dram::DeviceConfig bad_coupled = testutil::tinyPlain();
    bad_coupled.coupledRowDistance = 100;
    EXPECT_DEATH(bad_coupled.validate(), "coupled");
}

TEST(EdgeCases, RowAddressBoundsAreEnforced)
{
    dram::DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    EXPECT_DEATH(chip.act(0, cfg.rowsPerBank, 1000), "out of range");
    chip.act(0, 5, 1000);
    EXPECT_DEATH(chip.read(0, cfg.columnsPerRow(), 1100), "column");
}

TEST(EdgeCases, MitigationAtBankEdgeSkipsMissingNeighbours)
{
    // Victim refresh of row 0 must not touch row -1.
    dram::DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::TrackerOptions opts;
    opts.threshold = 100;
    core::ProtectedMemory mem(host, opts);
    mem.hammer(0, 0, 500);  // Fires mitigations for row 0.
    EXPECT_GT(mem.tracker().mitigations(), 0u);
    // Reaching here without a panic is the assertion.
}

TEST(EdgeCases, SwizzleReverserValidatesOptions)
{
    dram::DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::SwizzleOptions opts;  // Missing subarrayBoundary.
    EXPECT_DEATH(core::SwizzleReverser(host, opts), "subarrayBoundary");

    core::SwizzleOptions edge_col;
    edge_col.subarrayBoundary = 48;
    edge_col.probeColumn = 0;  // No left neighbour column.
    EXPECT_DEATH(core::SwizzleReverser(host, edge_col), "probe column");
}

TEST(EdgeCases, RetentionProfilerValidatesSweep)
{
    dram::DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::RetentionOptions empty;
    empty.waitsMs = {};
    EXPECT_DEATH(core::RetentionProfiler(host, empty), "empty");
    core::RetentionOptions unsorted;
    unsorted.waitsMs = {100, 50};
    EXPECT_DEATH(core::RetentionProfiler(host, unsorted), "ascend");
}

TEST(EdgeCases, EccMemoryPassesThroughUnmanagedRows)
{
    dram::DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::EccMemory ecc(host);
    host.writeRowPattern(0, 11, 0xABCD1234ULL);  // Raw write.
    const BitVec read = ecc.readRowBits(0, 11);
    EXPECT_EQ(read, host.readRowBits(0, 11));
    EXPECT_EQ(ecc.stats().wordsRead, 0u);
}

TEST(EdgeCases, EccStatsReset)
{
    dram::DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::EccMemory ecc(host);
    ecc.writeRowBits(0, 9, BitVec(cfg.rowBits, true));
    ecc.readRowBits(0, 9);
    EXPECT_GT(ecc.stats().wordsRead, 0u);
    ecc.resetStats();
    EXPECT_EQ(ecc.stats().wordsRead, 0u);
}

TEST(EdgeCases, LogLevelsGate)
{
    const LogLevel before = Log::level();
    Log::setLevel(LogLevel::Silent);
    warn("this must not crash while silenced");
    inform("neither must this");
    Log::setLevel(before);
}

TEST(EdgeCases, HostRowCopySelfIsHarmless)
{
    dram::DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    host.writeRowPattern(0, 10, 0x1234ULL);
    host.rowCopy(0, 10, 10);
    for (const auto col : host.readRow(0, 10))
        EXPECT_EQ(col, 0x1234ULL);
}

TEST(EdgeCases, WriteRowValidatesColumnCount)
{
    dram::DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    EXPECT_DEATH(host.writeRow(0, 5, std::vector<uint64_t>(3)),
                 "column count");
    EXPECT_DEATH(host.writeRowBits(0, 5, BitVec(10)), "size mismatch");
}

TEST(EdgeCases, HbmTckDiffersFromDdr4)
{
    // SS III-A: 1.25ns for DDR4, 1.67ns for HBM2.
    dram::Chip ddr4(dram::makePreset("A_x4_2016"));
    dram::Chip hbm(dram::makePreset("HBM2_A"));
    bender::Host h4(ddr4);
    bender::Host hh(hbm);
    const auto t4 = h4.now();
    const auto th = hh.now();
    bender::Program p;
    p.nop(100);
    h4.run(p);
    hh.run(p);
    EXPECT_EQ(h4.now() - t4, 125);
    EXPECT_EQ(hh.now() - th, 167);
}

} // namespace
} // namespace dramscope
