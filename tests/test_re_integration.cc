/**
 * @file
 * Reverse-engineering integration tests: every tool must recover the
 * hidden device ground truth through memory commands alone.
 */

#include <gtest/gtest.h>

#include "core/re_adjacency.h"
#include "core/re_coupled.h"
#include "core/re_polarity.h"
#include "core/re_subarray.h"
#include "core/re_swizzle.h"
#include "dram/chip.h"
#include "test_common.h"

namespace dramscope {
namespace {

using dram::DeviceConfig;
using dram::RowAddr;

TEST(AdjacencyMapper, FindsPhysicalNeighborsWithoutRemap)
{
    DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::AdjacencyMapper mapper(host);

    const auto probe = mapper.probe(60);
    ASSERT_EQ(probe.neighbors.size(), 2u);
    EXPECT_EQ(probe.neighbors[0], RowAddr(59));
    EXPECT_EQ(probe.neighbors[1], RowAddr(61));
}

TEST(AdjacencyMapper, FindsRemappedNeighbors)
{
    DeviceConfig cfg = testutil::tinyPlain();
    cfg.rowRemap = dram::RowRemapScheme::MfrA8Blk;
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::AdjacencyMapper mapper(host);

    // Logical 60 -> physical 63; neighbours phys 62/64 are logical
    // 61 and 64.
    const auto probe = mapper.probe(60);
    ASSERT_EQ(probe.neighbors.size(), 2u);
    EXPECT_EQ(probe.neighbors[0], RowAddr(61));
    EXPECT_EQ(probe.neighbors[1], RowAddr(64));
}

TEST(AdjacencyMapper, SingleNeighborAtSubarrayBoundary)
{
    DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::AdjacencyMapper mapper(host);

    // Row 95 tops subarray 1: only row 94 is AIB-adjacent.
    const auto probe = mapper.probe(95);
    ASSERT_EQ(probe.neighbors.size(), 1u);
    EXPECT_EQ(probe.neighbors[0], RowAddr(94));
}

TEST(AdjacencyMapper, DetectsRemapScheme)
{
    for (const auto scheme : {dram::RowRemapScheme::None,
                              dram::RowRemapScheme::MfrA8Blk}) {
        DeviceConfig cfg = testutil::tinyPlain();
        cfg.rowRemap = scheme;
        dram::Chip chip(cfg);
        bender::Host host(chip);
        core::AdjacencyMapper mapper(host);
        EXPECT_EQ(mapper.detectRemapScheme(56), scheme);
    }
}

TEST(SubarrayMapper, ProbeCopyClassifiesRelations)
{
    DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::SubarrayMapper mapper(host);

    bool inverted = false;
    EXPECT_EQ(mapper.probeCopy(10, 20, &inverted),
              core::CopyOutcome::Full);
    EXPECT_FALSE(inverted);
    EXPECT_EQ(mapper.probeCopy(50, 40, &inverted),
              core::CopyOutcome::Half);
    EXPECT_TRUE(inverted);  // All-true cells: cross copy inverts.
    EXPECT_EQ(mapper.probeCopy(10, 100, nullptr),
              core::CopyOutcome::None);
}

TEST(SubarrayMapper, DiscoversTinyStructure)
{
    DeviceConfig cfg = dram::makeTinyConfig();  // Remap + coupling on.
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::SubarrayMapper mapper(host);

    const auto d = mapper.discoverFirstSection();
    EXPECT_EQ(d.heights, (std::vector<uint32_t>{48, 48, 32, 48, 48, 32}));
    EXPECT_EQ(d.sectionRows, 256u);
    EXPECT_TRUE(d.openBitline);
    EXPECT_TRUE(d.copyInvertsData);
    EXPECT_TRUE(d.edgePairConfirmed);

    Rng rng(99);
    EXPECT_TRUE(mapper.verifyPeriodicity(d, 12, rng));
}

TEST(SubarrayMapper, MfrCStyleCopiesDataAsIs)
{
    DeviceConfig cfg = testutil::tinyPlain();
    cfg.polarityPolicy = dram::CellPolarityPolicy::InterleavedPerSubarray;
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::SubarrayMapper mapper(host);

    const auto d = mapper.discoverFirstSection();
    EXPECT_TRUE(d.openBitline);
    EXPECT_FALSE(d.copyInvertsData);  // SS IV-C, Mfr. C behaviour.
}

TEST(CoupledRowDetector, FindsTheCoupledDistance)
{
    DeviceConfig cfg = dram::makeTinyConfig();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::CoupledOptions opts;
    opts.probeRow = 60;
    core::CoupledRowDetector detector(host, opts);
    const auto d = detector.detect();
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, 512u);
}

TEST(CoupledRowDetector, NoFalsePositiveOnUncoupledChips)
{
    DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::CoupledOptions opts;
    opts.probeRow = 60;
    core::CoupledRowDetector detector(host, opts);
    EXPECT_FALSE(detector.detect().has_value());
}

TEST(CellTypeClassifier, AllTrueForMfrAStyle)
{
    DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::CellTypeClassifier classifier(host);

    const auto result = classifier.classify({20, 60, 110, 150, 200});
    EXPECT_TRUE(result.allTrue);
    EXPECT_FALSE(result.mixed);
    for (const auto &probe : result.probes) {
        EXPECT_TRUE(probe.decayed);
        EXPECT_EQ(probe.polarity, dram::CellPolarity::True);
        EXPECT_EQ(probe.zerosToOnes, 0u);
    }
}

TEST(CellTypeClassifier, DetectsMfrCInterleaving)
{
    DeviceConfig cfg = testutil::tinyPlain();
    cfg.polarityPolicy = dram::CellPolarityPolicy::InterleavedPerSubarray;
    dram::Chip chip(cfg);
    bender::Host host(chip);
    core::CellTypeClassifier classifier(host);

    // One probe per subarray: 0-47, 48-95, 96-127, 128-175.
    const auto result = classifier.classify({20, 60, 110, 150});
    EXPECT_TRUE(result.mixed);
    EXPECT_EQ(result.probes[0].polarity, dram::CellPolarity::True);
    EXPECT_EQ(result.probes[1].polarity, dram::CellPolarity::Anti);
    EXPECT_EQ(result.probes[2].polarity, dram::CellPolarity::True);
    EXPECT_EQ(result.probes[3].polarity, dram::CellPolarity::Anti);
}

class SwizzleReverserTest : public ::testing::Test
{
  protected:
    static core::SwizzleDiscovery
    discover(const DeviceConfig &cfg, dram::RowRemapScheme remap)
    {
        dram::Chip chip(cfg);
        bender::Host host(chip);
        core::SwizzleOptions opts;
        opts.victimGroups = 160;
        opts.baseRow = 80;
        opts.subarrayBoundary = 48;
        opts.rowRemap = remap;
        core::SwizzleReverser reverser(host, opts);
        return reverser.discover();
    }
};

TEST_F(SwizzleReverserTest, RecoversTinySwizzle)
{
    const DeviceConfig cfg = testutil::tinyPlain();
    const auto d = discover(cfg, dram::RowRemapScheme::None);

    EXPECT_EQ(d.matsPerRow, cfg.matsPerRow());
    EXPECT_EQ(d.matWidth, cfg.matWidth);
    EXPECT_TRUE(d.residueStructured);
    EXPECT_TRUE(d.periodic);
    EXPECT_EQ(d.recoveredPerm, cfg.swizzlePerm);

    // Parity labels match the ground-truth permutation parity.
    for (uint32_t i = 0; i < cfg.rdDataBits; ++i) {
        const uint32_t intra = i / cfg.matsPerRow();
        EXPECT_EQ(d.blParity[i], int(cfg.swizzlePerm[intra] & 1)) << i;
    }

    // The reconstructed PhysMap is exactly the device swizzle.
    ASSERT_TRUE(d.physMap.has_value());
    const auto truth = core::PhysMap::fromSwizzle(
        dram::Swizzle(cfg), cfg.columnsPerRow(), cfg.rdDataBits);
    for (uint32_t h = 0; h < cfg.rowBits; ++h)
        ASSERT_EQ(d.physMap->physOf(h), truth.physOf(h)) << h;
}

TEST_F(SwizzleReverserTest, RecoversIdentitySwizzle)
{
    const DeviceConfig cfg = testutil::tinyIdentitySwizzle();
    const auto d = discover(cfg, dram::RowRemapScheme::None);
    EXPECT_EQ(d.matsPerRow, cfg.matsPerRow());
    EXPECT_EQ(d.recoveredPerm, cfg.swizzlePerm);
}

TEST_F(SwizzleReverserTest, WorksThroughInternalRemap)
{
    DeviceConfig cfg = testutil::tinyPlain();
    cfg.rowRemap = dram::RowRemapScheme::MfrA8Blk;
    const auto d = discover(cfg, dram::RowRemapScheme::MfrA8Blk);
    EXPECT_EQ(d.matsPerRow, cfg.matsPerRow());
    EXPECT_EQ(d.matWidth, cfg.matWidth);
    EXPECT_EQ(d.recoveredPerm, cfg.swizzlePerm);
}

TEST(FullPipeline, TinyChipEndToEnd)
{
    // The complete DRAMScope methodology on the full tiny config
    // (remap + coupling + vendor swizzle), using only commands.
    DeviceConfig cfg = dram::makeTinyConfig();
    dram::Chip chip(cfg);
    bender::Host host(chip);

    // 1. Row adjacency and internal remap (pitfall 2).
    core::AdjacencyMapper adjacency(host);
    const auto scheme = adjacency.detectRemapScheme(56);
    EXPECT_EQ(scheme, dram::RowRemapScheme::MfrA8Blk);

    // 2. Subarray structure via RowCopy.
    core::SubarrayMapper subarrays(host);
    const auto structure = subarrays.discoverFirstSection();
    EXPECT_EQ(structure.sectionRows, cfg.edgeSectionRows);
    EXPECT_TRUE(structure.edgePairConfirmed);

    // 3. Coupled rows.
    core::CoupledOptions copts;
    copts.probeRow = 60;
    core::CoupledRowDetector coupled(host, copts);
    const auto distance = coupled.detect();
    ASSERT_TRUE(distance.has_value());
    EXPECT_EQ(*distance, *cfg.coupledRowDistance);

    // 4. Cell polarity.
    core::CellTypeClassifier polarity(host);
    EXPECT_TRUE(polarity.classify({20, 60, 110}).allTrue);

    // 5. Data swizzling, using the remap and boundary found above.
    core::SwizzleOptions sopts;
    sopts.victimGroups = 160;
    sopts.baseRow = 80;
    sopts.subarrayBoundary = structure.heights.at(0);
    sopts.rowRemap = scheme;
    core::SwizzleReverser swizzle(host, sopts);
    const auto d = swizzle.discover();
    EXPECT_EQ(d.matsPerRow, cfg.matsPerRow());
    EXPECT_EQ(d.matWidth, cfg.matWidth);
    EXPECT_EQ(d.recoveredPerm, cfg.swizzlePerm);
}

TEST(FullPreset, Ax4_2016StructureIsRecovered)
{
    // The headline Table III row on the full-size device.
    DeviceConfig cfg = dram::makePreset("A_x4_2016");
    dram::Chip chip(cfg);
    bender::Host host(chip);

    core::SubarrayMapper mapper(host);
    const auto d = mapper.discoverFirstSection();
    // 11 x 640 + 2 x 576 rows, edge sections every 16K rows.
    std::vector<uint32_t> expect;
    for (int rep = 0; rep < 2; ++rep) {
        for (int k = 0; k < 11; ++k)
            expect.push_back(640);
        expect.push_back(576);
        expect.push_back(576);
    }
    EXPECT_EQ(d.heights, expect);
    EXPECT_EQ(d.sectionRows, 16384u);
    EXPECT_TRUE(d.openBitline);
    EXPECT_TRUE(d.edgePairConfirmed);

    core::CoupledOptions copts;
    copts.probeRow = 1200;
    core::CoupledRowDetector coupled(host, copts);
    const auto distance = coupled.detect();
    ASSERT_TRUE(distance.has_value());
    EXPECT_EQ(*distance, 65536u);

    core::AdjacencyMapper adjacency(host);
    EXPECT_EQ(adjacency.detectRemapScheme(1024),
              dram::RowRemapScheme::MfrA8Blk);
}

} // namespace
} // namespace dramscope
