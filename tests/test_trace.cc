/**
 * @file
 * Command tracing: JSONL round-trip, ring-buffer retention, and —
 * most importantly — that the Host emits exactly one record per
 * issued command with issue-time stamps, and that the bulk hammer
 * fast path synthesizes the same stream a slot-by-slot execution
 * produces.  All timing parameters of the tiny config are multiples
 * of 0.25 ns, so every expected time below is an exact double and the
 * comparisons are equality, not tolerance.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "bender/host.h"
#include "bender/trace.h"
#include "dram/chip.h"
#include "test_common.h"
#include "util/metrics.h"

namespace dramscope {
namespace {

using obs::CommandTracer;
using obs::TraceCmd;
using obs::TraceRecord;

TEST(TraceJsonl, ToStringCoversAllKinds)
{
    EXPECT_STREQ(obs::toString(TraceCmd::Act), "ACT");
    EXPECT_STREQ(obs::toString(TraceCmd::Pre), "PRE");
    EXPECT_STREQ(obs::toString(TraceCmd::Rd), "RD");
    EXPECT_STREQ(obs::toString(TraceCmd::Wr), "WR");
    EXPECT_STREQ(obs::toString(TraceCmd::Ref), "REF");
}

TEST(TraceJsonl, RoundTripsEveryCommandKind)
{
    const TraceCmd kinds[] = {TraceCmd::Act, TraceCmd::Pre, TraceCmd::Rd,
                              TraceCmd::Wr, TraceCmd::Ref};
    for (const TraceCmd kind : kinds) {
        // .625 and .250 are exact in binary AND survive the %.3f
        // formatting, so equality round-trips.
        const TraceRecord rec{1234.625, kind, 3, 777, 42};
        const std::string line = obs::toJsonl(rec);
        TraceRecord back;
        ASSERT_TRUE(obs::parseJsonl(line, back)) << line;
        EXPECT_EQ(back, rec) << line;
    }
}

TEST(TraceJsonl, RejectsMalformedLines)
{
    TraceRecord out;
    EXPECT_FALSE(obs::parseJsonl("", out));
    EXPECT_FALSE(obs::parseJsonl("not json at all", out));
    EXPECT_FALSE(obs::parseJsonl(R"({"ns":1.0,"bank":0,"row":0,"col":0})",
                                 out));  // No cmd.
    EXPECT_FALSE(obs::parseJsonl(
        R"({"ns":1.0,"cmd":"BOGUS","bank":0,"row":0,"col":0})", out));
}

TEST(CommandTracerTest, RingKeepsTheMostRecentRecords)
{
    CommandTracer tracer(4);
    for (uint32_t i = 0; i < 10; ++i)
        tracer.onCommand({double(i), TraceCmd::Act, 0, i, 0});
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.recorded(), 10u);
    EXPECT_EQ(tracer.dropped(), 6u);
    const auto recs = tracer.records();
    ASSERT_EQ(recs.size(), 4u);
    for (size_t i = 0; i < recs.size(); ++i)
        EXPECT_EQ(recs[i].row, 6u + i);  // Oldest retained first.
}

TEST(CommandTracerTest, ClearForgetsRecordsButNotCapacity)
{
    CommandTracer tracer(4);
    tracer.onCommand({1.0, TraceCmd::Act, 0, 1, 0});
    tracer.clear();
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.recorded(), 0u);
    for (uint32_t i = 0; i < 6; ++i)
        tracer.onCommand({double(i), TraceCmd::Pre, 0, 0, 0});
    EXPECT_EQ(tracer.size(), 4u);
}

TEST(CommandTracerTest, WriteJsonlRoundTripsThroughAFile)
{
    CommandTracer tracer(16);
    tracer.onCommand({1000.0, TraceCmd::Act, 1, 5, 0});
    tracer.onCommand({1013.75, TraceCmd::Rd, 1, 0, 3});
    tracer.onCommand({1046.25, TraceCmd::Pre, 1, 0, 0});

    const std::string path =
        testing::TempDir() + "dramscope_trace_roundtrip.jsonl";
    ASSERT_TRUE(tracer.writeJsonl(path));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::vector<TraceRecord> reloaded;
    std::string line;
    while (std::getline(in, line)) {
        TraceRecord rec;
        ASSERT_TRUE(obs::parseJsonl(line, rec)) << line;
        reloaded.push_back(rec);
    }
    EXPECT_EQ(reloaded, tracer.records());
    std::remove(path.c_str());
}

TEST(HostTraceTest, SlotPathEmitsOneRecordPerCommandWithIssueTimes)
{
    dram::Chip chip(testutil::tinyPlain());
    bender::Host host(chip);
    CommandTracer tracer;
    host.setTrace(&tracer);

    // tCK = 1.25 ns; the host clock starts at 1000.0 ns.
    bender::Program p;
    p.act(0, 5)
        .sleepNs(13.75)   // tRCD
        .wr(0, 2, 0xAB)
        .rd(0, 2)
        .sleepNs(32.0)    // tRAS
        .pre(0)
        .ref();
    const auto result = host.run(p);

    const std::vector<TraceRecord> expected = {
        {1000.00, TraceCmd::Act, 0, 5, 0},
        {1015.00, TraceCmd::Wr, 0, 0, 2},
        {1016.25, TraceCmd::Rd, 0, 0, 2},
        {1049.50, TraceCmd::Pre, 0, 0, 0},
        {1050.75, TraceCmd::Ref, 0, 0, 0},
    };
    EXPECT_EQ(tracer.records(), expected);
    EXPECT_EQ(tracer.recorded(), result.commandsIssued);
}

TEST(HostTraceTest, BulkLoopEmitsTheSameStreamAsItsUnrolledProgram)
{
    // The hammer fast path synthesizes per-iteration records; a fresh
    // host executing the unrolled ACT-PRE sequence slot by slot must
    // produce the identical stream (exact doubles — every increment
    // is a multiple of 0.25 ns).
    const uint64_t kCount = 5;

    dram::Chip chip_bulk(testutil::tinyPlain());
    bender::Host bulk(chip_bulk);
    CommandTracer bulk_trace;
    bulk.setTrace(&bulk_trace);
    const auto bulk_result = bulk.hammer(0, 7, kCount, 35.0);

    dram::Chip chip_slot(testutil::tinyPlain());
    bender::Host slot(chip_slot);
    CommandTracer slot_trace;
    slot.setTrace(&slot_trace);
    bender::Program unrolled;
    for (uint64_t k = 0; k < kCount; ++k) {
        // Matches Host::hammer's loop body: open_ns includes the ACT
        // slot (tCK), then PRE plus tRP of recovery.
        unrolled.act(0, 7).sleepNs(35.0 - 1.25).pre(0).sleepNs(13.75);
    }
    const auto slot_result = slot.run(unrolled);

    EXPECT_EQ(bulk_trace.records(), slot_trace.records());
    EXPECT_EQ(bulk_result.commandsIssued, slot_result.commandsIssued);
    EXPECT_EQ(bulk_result.commandsIssued, 2 * kCount);
}

TEST(HostTraceTest, TraceCountMatchesCommandsIssuedOnEveryPath)
{
    dram::Chip chip(testutil::tinyPlain());
    bender::Host host(chip);
    CommandTracer tracer;
    host.setTrace(&tracer);

    uint64_t issued = 0;
    host.writeRowPattern(0, 5, ~0ULL);
    // writeRowPattern goes through run() internally but returns void;
    // count what the explicit entry points report instead.
    const uint64_t after_setup = tracer.recorded();

    issued += host.hammer(0, 6, 100).commandsIssued;
    issued += host.rowCopy(0, 5, 9).commandsIssued;
    issued += host.refresh().commandsIssued;
    bender::Program read_back;
    read_back.act(0, 5).sleepNs(13.75).rd(0, 0).pre(0);
    issued += host.run(read_back).commandsIssued;

    EXPECT_EQ(tracer.recorded() - after_setup, issued);
}

TEST(HostMetricsTest, CountersMatchExecResultAndTrace)
{
    dram::Chip chip(testutil::tinyPlain());
    bender::Host host(chip);
    obs::MetricsRegistry metrics;
    CommandTracer tracer;
    host.setMetrics(&metrics);
    host.setTrace(&tracer);

    const auto result = host.hammer(0, 7, 100);
    const auto snap = metrics.snapshot();
    EXPECT_EQ(snap.counterOr0("cmd.act"), 100u);
    EXPECT_EQ(snap.counterOr0("cmd.pre"), 100u);
    EXPECT_EQ(snap.counterOr0("bank.act.0"), 100u);
    EXPECT_EQ(snap.counterOr0("bank.act.1"), 0u);
    EXPECT_EQ(snap.counterOr0("cmd.act") + snap.counterOr0("cmd.pre"),
              result.commandsIssued);
    EXPECT_EQ(tracer.recorded(), result.commandsIssued);
}

TEST(HostMetricsTest, OpenRowAndGapHistogramsCountEveryActivation)
{
    dram::Chip chip(testutil::tinyPlain());
    bender::Host host(chip);
    obs::MetricsRegistry metrics;
    host.setMetrics(&metrics);

    host.hammer(0, 7, 50, 35.0);
    auto snap = metrics.snapshot();
    // One open-row sample per ACT-PRE pair; gaps only between
    // consecutive ACTs (none precedes the first).
    EXPECT_EQ(snap.histograms.at("act.open_ns").total, 50u);
    EXPECT_EQ(snap.histograms.at("act.gap_ns").total, 49u);

    // A second burst also records the boundary gap to the previous
    // burst's last ACT...
    host.hammer(0, 7, 50, 35.0);
    snap = metrics.snapshot();
    EXPECT_EQ(snap.histograms.at("act.gap_ns").total, 99u);

    // ...unless the observation window is reset first (what the sweep
    // engine does at shard boundaries).
    host.resetMetricsWindow();
    host.hammer(0, 7, 50, 35.0);
    snap = metrics.snapshot();
    EXPECT_EQ(snap.histograms.at("act.gap_ns").total, 148u);
    EXPECT_EQ(snap.histograms.at("act.open_ns").total, 150u);
}

TEST(HostMetricsTest, ViolationCounterTracksTheChip)
{
    dram::Chip chip(testutil::tinyPlain());
    bender::Host host(chip);
    obs::MetricsRegistry metrics;
    host.setMetrics(&metrics);

    host.writeRowPattern(0, 10, 0x12345678ULL);
    EXPECT_EQ(metrics.snapshot().counterOr0("timing.violations"), 0u);

    // RowCopy re-activates inside tRP — a deliberate timing violation.
    host.rowCopy(0, 10, 20);
    const uint64_t counted =
        metrics.snapshot().counterOr0("timing.violations");
    EXPECT_GT(counted, 0u);
    EXPECT_EQ(counted, chip.violationCount());
}

// ---------------------------------------------------------------------
// JsonlWriter error reporting.
// ---------------------------------------------------------------------

TEST(JsonlWriterTest, WritesRecordsAndFlushesOnDestruction)
{
    const std::string path =
        ::testing::TempDir() + "dramscope_jsonl_writer_ok.jsonl";
    std::remove(path.c_str());
    {
        obs::JsonlWriter writer(path);
        ASSERT_TRUE(writer.ok());
        writer.onCommand({5.0, TraceCmd::Act, 0, 7, 0});
        writer.onCommand({40.0, TraceCmd::Rd, 0, 7, 3});
        EXPECT_EQ(writer.written(), 2u);
        EXPECT_FALSE(writer.failed());
        // No explicit flush: the destructor must deliver the records.
    }
    std::ifstream in(path);
    std::string line;
    std::vector<TraceRecord> parsed;
    while (std::getline(in, line)) {
        TraceRecord rec;
        ASSERT_TRUE(obs::parseJsonl(line, rec)) << line;
        parsed.push_back(rec);
    }
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].row, 7u);
    EXPECT_EQ(parsed[1].cmd, TraceCmd::Rd);
    std::remove(path.c_str());
}

TEST(JsonlWriterTest, UnopenablePathReportsNotOk)
{
    obs::JsonlWriter writer("/nonexistent-dir/trace.jsonl");
    EXPECT_FALSE(writer.ok());
    // Records to a dead writer are dropped without crashing.
    writer.onCommand({0.0, TraceCmd::Act, 0, 1, 0});
    EXPECT_EQ(writer.written(), 0u);
    EXPECT_FALSE(writer.flush());
}

TEST(JsonlWriterTest, DetectsFailingStream)
{
    // /dev/full opens writably but every flush fails with ENOSPC —
    // exactly the full-disk case an hours-long trace must not hide.
    std::FILE *probe = std::fopen("/dev/full", "w");
    if (!probe)
        GTEST_SKIP() << "/dev/full not available";
    std::fclose(probe);

    obs::JsonlWriter writer("/dev/full");
    ASSERT_TRUE(writer.ok());
    writer.onCommand({1.0, TraceCmd::Act, 0, 2, 0});
    EXPECT_FALSE(writer.flush());
    EXPECT_TRUE(writer.failed());
    // failed() stays latched even if later calls buffer successfully.
    writer.onCommand({2.0, TraceCmd::Pre, 0, 0, 0});
    EXPECT_TRUE(writer.failed());
}

TEST(HostMetricsTest, DetachStopsUpdatesAndReattachResumes)
{
    dram::Chip chip(testutil::tinyPlain());
    bender::Host host(chip);
    obs::MetricsRegistry metrics;
    host.setMetrics(&metrics);
    host.hammer(0, 7, 10);
    host.setMetrics(nullptr);
    host.hammer(0, 7, 10);
    EXPECT_EQ(metrics.snapshot().counterOr0("cmd.act"), 10u);
    host.setMetrics(&metrics);
    host.hammer(0, 7, 10);
    EXPECT_EQ(metrics.snapshot().counterOr0("cmd.act"), 20u);
}

} // namespace
} // namespace dramscope
