/**
 * @file
 * Characterization suite tests: the figure shapes on the tiny config.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/charact.h"
#include "dram/chip.h"
#include "test_common.h"

namespace dramscope {
namespace {

using core::CharactOptions;
using core::Characterization;
using dram::AibMechanism;

class CharactTest : public ::testing::Test
{
  protected:
    CharactTest()
        : cfg_(testutil::tinyPlain()), chip_(cfg_), host_(chip_)
    {
        opts_.victimRows = 24;
        opts_.baseRow = 300;  // Section 1, away from edge subarrays.
        charact_ = std::make_unique<Characterization>(
            host_,
            core::PhysMap::fromSwizzle(chip_.swizzle(),
                                       cfg_.columnsPerRow(),
                                       cfg_.rdDataBits),
            opts_);
    }

    static double
    sumParity(const std::vector<double> &ber, int parity)
    {
        double sum = 0;
        for (size_t k = 0; k < ber.size(); ++k) {
            if (int(k & 1) == parity)
                sum += ber[k];
        }
        return sum;
    }

    dram::DeviceConfig cfg_;
    dram::Chip chip_;
    bender::Host host_;
    CharactOptions opts_;
    std::unique_ptr<Characterization> charact_;
};

TEST_F(CharactTest, Fig12HammerAlternatesWithPhysIndex)
{
    const auto ber = charact_->berVsPhysIndex(
        AibMechanism::RowHammer, /*data1=*/true, /*upper=*/true);
    ASSERT_EQ(ber.size(), 32u);
    EXPECT_GT(sumParity(ber, 0), 3.0 * sumParity(ber, 1));
}

TEST_F(CharactTest, Fig12AlternationReversesWithDirection)
{
    const auto upper = charact_->berVsPhysIndex(
        AibMechanism::RowHammer, true, true);
    const auto lower = charact_->berVsPhysIndex(
        AibMechanism::RowHammer, true, false);
    EXPECT_GT(sumParity(upper, 0), 3.0 * sumParity(upper, 1));
    EXPECT_GT(sumParity(lower, 1), 3.0 * sumParity(lower, 0));
}

TEST_F(CharactTest, Fig12AlternationReversesWithWrittenValue)
{
    const auto ones = charact_->berVsPhysIndex(
        AibMechanism::RowHammer, true, true);
    const auto zeros = charact_->berVsPhysIndex(
        AibMechanism::RowHammer, false, true);
    EXPECT_GT(sumParity(ones, 0), 3.0 * sumParity(ones, 1));
    EXPECT_GT(sumParity(zeros, 1), 3.0 * sumParity(zeros, 0));
}

TEST_F(CharactTest, Fig12AlternationReversesWithWordlineParity)
{
    const auto even = charact_->berVsPhysIndex(
        AibMechanism::RowHammer, true, true, 32, /*even_wl=*/true);
    const auto odd = charact_->berVsPhysIndex(
        AibMechanism::RowHammer, true, true, 32, /*even_wl=*/false);
    EXPECT_GT(sumParity(even, 0), 3.0 * sumParity(even, 1));
    EXPECT_GT(sumParity(odd, 1), 3.0 * sumParity(odd, 0));
}

TEST_F(CharactTest, Fig12PressOnlyChargedAndOppositePhase)
{
    // O7: RowPress flips only the charged state, and its alternation
    // phase is opposite to RowHammer's (footnote 7).
    const auto press1 = charact_->berVsPhysIndex(
        AibMechanism::RowPress, true, true);
    const auto press0 = charact_->berVsPhysIndex(
        AibMechanism::RowPress, false, true);
    const double total0 =
        std::accumulate(press0.begin(), press0.end(), 0.0);
    EXPECT_EQ(total0, 0.0);
    // Charged press flips on the opposite parity vs charged hammer.
    const auto hammer1 = charact_->berVsPhysIndex(
        AibMechanism::RowHammer, true, true);
    EXPECT_GT(sumParity(press1, 1), 3.0 * sumParity(press1, 0));
    EXPECT_GT(sumParity(hammer1, 0), 3.0 * sumParity(hammer1, 1));
}

TEST_F(CharactTest, Fig13GateTypesSeparate)
{
    const auto hammer = charact_->gateTypeBer(AibMechanism::RowHammer);
    // O9/O10: both gate types flip cells, each for one charge state.
    EXPECT_GT(hammer.chargedGateA, 5.0 * hammer.chargedGateB);
    EXPECT_GT(hammer.dischargedGateB, 5.0 * hammer.dischargedGateA);
    EXPECT_GT(hammer.chargedGateA, 0.0);
    EXPECT_GT(hammer.dischargedGateB, 0.0);

    const auto press = charact_->gateTypeBer(AibMechanism::RowPress);
    // Press: only charged cells, opposite gate relation to hammer.
    EXPECT_EQ(press.dischargedGateA, 0.0);
    EXPECT_EQ(press.dischargedGateB, 0.0);
    EXPECT_GT(press.chargedGateB, 5.0 * press.chargedGateA);
}

TEST_F(CharactTest, Fig10EdgeSubarraysShowLowerBer)
{
    // Aggressors (victim = aggr + 1 in the same subarray).
    std::vector<dram::RowAddr> edge = {4, 12, 20, 28};        // Sub 0.
    std::vector<dram::RowAddr> typical = {52, 60, 68, 76};    // Sub 1.
    const auto r = charact_->edgeVsTypical(typical, edge);
    EXPECT_LT(r.edgeAggr0Vic1, r.typicalAggr0Vic1);
    EXPECT_LT(r.edgeAggr1Vic0, r.typicalAggr1Vic0);
    // O6: the edge gap is wider when the aggressor holds data 1.
    const double gap0 = r.edgeAggr0Vic1 / r.typicalAggr0Vic1;
    const double gap1 = r.edgeAggr1Vic0 / r.typicalAggr1Vic0;
    EXPECT_LT(gap1, gap0);
}

TEST_F(CharactTest, Fig14aVictimNeighborRatios)
{
    const double d1 = charact_->relativeBerVictimNeighbors(false, true,
                                                           false);
    const double d2 = charact_->relativeBerVictimNeighbors(false, false,
                                                           true);
    const double both = charact_->relativeBerVictimNeighbors(false, true,
                                                             true);
    // O11: distance-2 influence exceeds distance-1; both compound.
    EXPECT_GT(d1, 0.95);
    EXPECT_GT(d2, d1);
    EXPECT_GT(both, d2 * 0.95);
    EXPECT_NEAR(d2, 1.54, 0.35);
}

TEST_F(CharactTest, Fig14bAggressorNeighborRatios)
{
    const double a0 = charact_->relativeBerAggrNeighbors(false, true,
                                                         false, false);
    const double a1 = charact_->relativeBerAggrNeighbors(false, false,
                                                         true, false);
    const double a2 = charact_->relativeBerAggrNeighbors(false, false,
                                                         false, true);
    // O12: all suppress; influence strongest closest to the victim.
    EXPECT_LT(a0, 0.9);
    EXPECT_LT(a1, 0.9);
    EXPECT_LT(a2, 0.9);
    EXPECT_NEAR(a0, 0.58, 0.2);
    EXPECT_NEAR(a1, 0.46, 0.2);
    EXPECT_NEAR(a2, 0.38, 0.2);
}

TEST_F(CharactTest, Fig15RelativeHcntDrops)
{
    const double d1 = charact_->relativeHcnt(false, true, false);
    const double d2 = charact_->relativeHcnt(false, false, true);
    const double both = charact_->relativeHcnt(false, true, true);
    // O13: opposite-valued neighbours lower Hcnt; distance-2 more.
    EXPECT_LT(d1, 1.0);
    EXPECT_LT(d2, d1);
    EXPECT_LE(both, d2);
    EXPECT_GT(both, 0.3);
}

TEST_F(CharactTest, Fig16WorstPatternIs0x33_0xCC)
{
    const double baseline = charact_->patternBer(0xF, 0x0);
    const double worst = charact_->patternBer(0x3, 0xC);
    const double stripe = charact_->patternBer(0x5, 0xA);
    ASSERT_GT(baseline, 0.0);
    // O14: the 2-bit repeating complementary pattern beats both the
    // solid baseline and the 1-bit alternating pattern.
    EXPECT_GT(worst / baseline, 1.15);
    EXPECT_GT(worst, stripe);
}

TEST_F(CharactTest, Fig16SamePolarityAggressorIsWeaker)
{
    // A non-complementary aggressor triggers the joint suppression.
    const double complementary = charact_->patternBer(0x3, 0xC);
    const double matching = charact_->patternBer(0x3, 0x3);
    EXPECT_GT(complementary, matching);
}

class CharactParamTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>>
{
};

TEST_P(CharactParamTest, HammerAlternationHoldsForEveryPanel)
{
    // Property sweep over (victim data, aggressor direction): the
    // expected flip parity follows XOR of the three panel knobs
    // (O8) for even-WL victims.
    const auto [data_one, upper] = GetParam();
    dram::DeviceConfig cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    CharactOptions opts;
    opts.victimRows = 16;
    opts.baseRow = 300;
    Characterization charact(
        host,
        core::PhysMap::fromSwizzle(chip.swizzle(), cfg.columnsPerRow(),
                                   cfg.rdDataBits),
        opts);

    const auto ber = charact.berVsPhysIndex(AibMechanism::RowHammer,
                                            data_one, upper);
    double even = 0, odd = 0;
    for (size_t k = 0; k < ber.size(); ++k)
        ((k & 1) == 0 ? even : odd) += ber[k];

    // Charged victim + upper aggressor flips even bitlines; each knob
    // flip toggles the parity.
    const bool expect_even = !(data_one ^ upper);
    if (expect_even)
        EXPECT_GT(even, 3.0 * odd);
    else
        EXPECT_GT(odd, 3.0 * even);
}

INSTANTIATE_TEST_SUITE_P(
    AllPanels, CharactParamTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool()),
    [](const auto &info) {
        return std::string(std::get<0>(info.param) ? "data1" : "data0") +
               (std::get<1>(info.param) ? "_upper" : "_lower");
    });

} // namespace
} // namespace dramscope
