/**
 * @file
 * Proof harness for the analytical fast-forward engine.
 *
 * Two claims are on trial:
 *
 *  1. FastPathMode::Exact is *bit-identical* to the step-wise
 *     reference engine (FastPathMode::Off) — same victim bits, same
 *     violation log, same clock, same command count — on every
 *     backend (Chip, Dimm, HBM channel), for every lint-certifiable
 *     kernel shape.  Proven differentially with the property-based
 *     fuzzer of test_common.h (failures log the draw seed).
 *
 *  2. FastPathMode::Analytic is bit-identical below the sampling
 *     floor (Bank::kAnalyticSampleMinActs) and *statistically*
 *     equivalent above it: the sampled flip field is an independent
 *     draw of the same per-cell Bernoulli probabilities the exact
 *     threshold rule realizes.  Proven with total-count, chi-square
 *     and Kolmogorov-Smirnov tests whose tolerances are derived next
 *     to each assertion.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <numeric>
#include <vector>

#include "bender/host.h"
#include "dram/bank.h"
#include "dram/chip.h"
#include "dram/hbm_stack.h"
#include "mapping/dimm.h"
#include "test_common.h"

namespace dramscope {
namespace {

using dram::FastPathMode;

// ---------------------------------------------------------------------
// Differential fuzzing: Exact (and small-N Analytic) vs Off.
// ---------------------------------------------------------------------

/** Everything two engine modes must agree on after one kernel. */
struct RunSnapshot
{
    dram::NanoTime clock = 0;
    uint64_t commands = 0;
    std::vector<dram::TimingViolation> violations;
    std::vector<BitVec> window;  //!< Rows row-2 .. row+2 (and partner).
};

/** A fresh device per run, so no state leaks across modes. */
using DeviceMaker =
    std::function<std::unique_ptr<dram::Device>(const dram::DeviceConfig &)>;

RunSnapshot
runFuzzKernel(const DeviceMaker &make, const dram::DeviceConfig &cfg,
              const testutil::FuzzHammer &f, FastPathMode mode)
{
    auto dev = make(cfg);
    bender::Host host(*dev);
    host.setFastPathMode(mode);
    // Victims charged, aggressor discharged: the paper's worst case.
    for (int d = -2; d <= 2; ++d)
        host.writeRowPattern(f.bank, f.row + d, d == 0 ? 0 : ~0ULL);
    const auto res = host.run(testutil::fuzzHammerProgram(cfg, f));
    RunSnapshot s;
    s.clock = host.now();
    s.commands = res.commandsIssued;
    s.violations = dev->violationLog();
    for (int d = -2; d <= 2; ++d)
        s.window.push_back(host.readRowBits(f.bank, f.row + d));
    if (cfg.coupledRowDistance) {
        // Coupled-row devices drive a partner wordline per ACT; widen
        // the compared window to its neighbourhood too (the XOR is
        // the physical-space pair relation — under row remap this is
        // a nearby window rather than the exact partner, which only
        // adds coverage; equality must hold for every row anyway).
        const dram::RowAddr partner = f.row ^ *cfg.coupledRowDistance;
        if (partner >= 2 && partner + 2 < cfg.rowsPerBank) {
            for (int d = -2; d <= 2; ++d)
                s.window.push_back(host.readRowBits(f.bank, partner + d));
        }
    }
    return s;
}

void
expectSnapshotsEqual(const RunSnapshot &got, const RunSnapshot &want,
                     const testutil::FuzzHammer &f)
{
    // GTest prints this block on any failure below; the seed alone
    // replays the draw through drawFuzzHammer.
    SCOPED_TRACE(::testing::Message()
                 << "fuzz seed=" << f.seed << " bank=" << int(f.bank)
                 << " row=" << f.row << " count=" << f.count
                 << " openNs=" << f.openNs << " nopBody=" << f.nopBody);
    EXPECT_EQ(got.clock, want.clock);
    EXPECT_EQ(got.commands, want.commands);
    ASSERT_EQ(got.violations.size(), want.violations.size());
    for (size_t i = 0; i < want.violations.size(); ++i) {
        EXPECT_EQ(got.violations[i].what, want.violations[i].what) << i;
        EXPECT_EQ(got.violations[i].when, want.violations[i].when) << i;
    }
    ASSERT_EQ(got.window.size(), want.window.size());
    for (size_t i = 0; i < want.window.size(); ++i)
        EXPECT_TRUE(got.window[i] == want.window[i]) << "window row " << i;
}

void
fuzzBackend(const DeviceMaker &make, const dram::DeviceConfig &cfg,
            uint64_t seeds, FastPathMode fast_mode)
{
    for (uint64_t seed = 1; seed <= seeds; ++seed) {
        const auto f = testutil::drawFuzzHammer(cfg, seed);
        const auto fast = runFuzzKernel(make, cfg, f, fast_mode);
        const auto slow = runFuzzKernel(make, cfg, f, FastPathMode::Off);
        expectSnapshotsEqual(fast, slow, f);
    }
}

DeviceMaker
chipMaker()
{
    return [](const dram::DeviceConfig &cfg) -> std::unique_ptr<dram::Device> {
        return std::make_unique<dram::Chip>(cfg);
    };
}

TEST(FastForwardFuzz, ChipExactMatchesStepwise)
{
    fuzzBackend(chipMaker(), testutil::tinyPlain(), 40, FastPathMode::Exact);
}

TEST(FastForwardFuzz, ChipWithRemapAndCouplingExactMatchesStepwise)
{
    // The unmodified tiny config keeps row remap and the coupled-row
    // pair: the batched path must restore and dose the partner
    // wordline exactly as per-ACT execution does.
    fuzzBackend(chipMaker(), dram::makeTinyConfig(), 25,
                FastPathMode::Exact);
}

TEST(FastForwardFuzz, DimmExactMatchesStepwise)
{
    const DeviceMaker make =
        [](const dram::DeviceConfig &cfg) -> std::unique_ptr<dram::Device> {
        return std::make_unique<mapping::Dimm>(cfg);
    };
    fuzzBackend(make, testutil::tinyPlain(), 10, FastPathMode::Exact);
}

TEST(FastForwardFuzz, HbmChannelExactMatchesStepwise)
{
    // An HBM channel is a Chip with stack-derived process variation;
    // runs must agree on that derived seed, not the template's.
    const DeviceMaker make =
        [](const dram::DeviceConfig &cfg) -> std::unique_ptr<dram::Device> {
        dram::HbmStack stack(cfg, 4);
        return std::make_unique<dram::Chip>(stack.channel(2).config());
    };
    fuzzBackend(make, testutil::tinyPlain(), 10, FastPathMode::Exact);
}

TEST(FastForwardFuzz, AnalyticBelowSamplingFloorMatchesStepwise)
{
    // Every fuzz draw is far below Bank::kAnalyticSampleMinActs, so
    // the analytic engine must take its exact-replay branch and stay
    // bit-identical to step-wise execution.
    fuzzBackend(chipMaker(), testutil::tinyPlain(), 25,
                FastPathMode::Analytic);
}

// ---------------------------------------------------------------------
// Statistical equivalence of large-N analytic sampling.
// ---------------------------------------------------------------------

/**
 * Hammers @p aggressors disjoint aggressor rows (spacing 4, so no two
 * hammered neighbourhoods share a victim) for @p count activations
 * each and returns the per-victim-row flip counts, in a fixed row
 * order.  Victims hold all-ones; a flip is a dropped bit.
 */
std::vector<uint32_t>
flipsPerVictimRow(FastPathMode mode, uint32_t aggressors, uint64_t count,
                  double open_ns)
{
    const auto cfg = testutil::tinyPlain();
    dram::Chip chip(cfg);
    bender::Host host(chip);
    host.setFastPathMode(mode);
    std::vector<dram::RowAddr> victims;
    for (uint32_t a = 0; a < aggressors; ++a) {
        const dram::RowAddr aggr = 10 + 4 * a;
        host.writeRowPattern(0, aggr - 1, ~0ULL);
        host.writeRowPattern(0, aggr, 0);
        host.writeRowPattern(0, aggr + 1, ~0ULL);
        victims.push_back(aggr - 1);
        victims.push_back(aggr + 1);
    }
    for (uint32_t a = 0; a < aggressors; ++a)
        host.hammer(0, 10 + 4 * a, count, open_ns);
    std::vector<uint32_t> flips;
    for (const auto v : victims) {
        const BitVec bits = host.readRowBits(0, v);
        flips.push_back(uint32_t(bits.size() - bits.popcount()));
    }
    return flips;
}

TEST(FastForwardStats, AnalyticLargeHammerMatchesExactDistribution)
{
    // 100K activations: dose 1e5 on the susceptible gate parity, so
    // p = (1e5 - 8e3) / (2e6 - 8e3) ~= 0.046 on ~128 of 256 cells per
    // victim row, and p = 0 on the off-gate parity (6% leak stays
    // under thresholdMin).  Expected flips ~5.9 per row over 120
    // rows.  The exact flip field realizes u_cell <= p on the frozen
    // per-cell variation; the sampled field draws a fresh u on an
    // independent salt — two independent samples of one Poisson-
    // binomial, which is what every bound below assumes.
    const uint32_t kAggressors = 60;
    const uint64_t kCount = 100000;  // >= Bank::kAnalyticSampleMinActs.
    ASSERT_GE(double(kCount), dram::Bank::kAnalyticSampleMinActs);
    const auto exact =
        flipsPerVictimRow(FastPathMode::Exact, kAggressors, kCount, 35.0);
    const auto analytic =
        flipsPerVictimRow(FastPathMode::Analytic, kAggressors, kCount, 35.0);
    ASSERT_EQ(exact.size(), analytic.size());
    const size_t rows = exact.size();

    // Sampling must actually have engaged: two independent draws of
    // ~120 Binomial(128, 0.046) rows collide everywhere with
    // probability well under 1e-40.
    EXPECT_NE(exact, analytic);

    // (a) Total flips.  Var(A - E) = 2 * sum npq ~= 2 * total, so a
    // 6-sigma band is 6 * sqrt(2 * total); the +10 floor keeps the
    // test meaningful if a parameter change collapses the totals.
    const double total_e = std::accumulate(exact.begin(), exact.end(), 0.0);
    const double total_a =
        std::accumulate(analytic.begin(), analytic.end(), 0.0);
    EXPECT_GT(total_e, 100.0);  // The regime the tolerances assume.
    EXPECT_LE(std::abs(total_a - total_e),
              6.0 * std::sqrt(2.0 * std::max(total_e, 1.0)) + 10.0);

    // (b) Per-row chi-square.  Under the null each term
    // (A_r - E_r)^2 / (A_r + E_r) is ~chi^2_1; the sum over df
    // contributing rows has mean df and variance ~2 df, so df +
    // 5 * sqrt(2 df) is a >5-sigma ceiling.
    double chi2 = 0.0;
    double df = 0.0;
    for (size_t r = 0; r < rows; ++r) {
        const double s = double(exact[r]) + double(analytic[r]);
        if (s == 0.0)
            continue;
        const double d = double(exact[r]) - double(analytic[r]);
        chi2 += d * d / s;
        df += 1.0;
    }
    EXPECT_GT(df, 50.0);
    EXPECT_LE(chi2, df + 5.0 * std::sqrt(2.0 * df));

    // (c) Two-sample Kolmogorov-Smirnov on per-row flip counts.  The
    // alpha = 0.001 critical coefficient is 1.95; 2.5 adds margin for
    // the discreteness of small counts (ties only ever lower D, so
    // this stays conservative).
    std::vector<uint32_t> se = exact, sa = analytic;
    std::sort(se.begin(), se.end());
    std::sort(sa.begin(), sa.end());
    double dmax = 0.0;
    size_t i = 0, j = 0;
    while (i < se.size() && j < sa.size()) {
        if (se[i] <= sa[j])
            ++i;
        else
            ++j;
        dmax = std::max(dmax, std::abs(double(i) / double(se.size()) -
                                       double(j) / double(sa.size())));
    }
    const double n = double(se.size());
    EXPECT_LE(dmax, 2.5 * std::sqrt(2.0 / n));
}

TEST(FastForwardStats, AnalyticLargePressMatchesExactTotals)
{
    // RowPress at the paper's 8192 x 7.8us: pend press dose
    // 8192 * 7800 * 5e-3 ~= 3.2e5 on charged victims' passing-gate
    // parity, p ~= 0.157.  Same 6-sigma total-count band as above.
    const auto exact =
        flipsPerVictimRow(FastPathMode::Exact, 24, 8192, 7800.0);
    const auto analytic =
        flipsPerVictimRow(FastPathMode::Analytic, 24, 8192, 7800.0);
    const double total_e = std::accumulate(exact.begin(), exact.end(), 0.0);
    const double total_a =
        std::accumulate(analytic.begin(), analytic.end(), 0.0);
    EXPECT_GT(total_e, 100.0);
    EXPECT_NE(exact, analytic);
    EXPECT_LE(std::abs(total_a - total_e),
              6.0 * std::sqrt(2.0 * std::max(total_e, 1.0)) + 10.0);
}

TEST(FastForwardStats, AnalyticSamplingIsDeterministicRunToRun)
{
    // The sampled draw is a pure function of (variation seed, cell,
    // epoch): identical runs must produce byte-identical flip fields,
    // or parallel-sweep bit-reproducibility dies in analytic mode.
    const auto a = flipsPerVictimRow(FastPathMode::Analytic, 20, 100000, 35.0);
    const auto b = flipsPerVictimRow(FastPathMode::Analytic, 20, 100000, 35.0);
    EXPECT_EQ(a, b);
}

TEST(FastForwardStats, AnalyticEpochDecorrelatesSuccessiveTrains)
{
    // Two back-to-back trains on one aggressor commit two sampled
    // doses.  Each commit *toggles* the cells it selects, so if the
    // epoch counter failed and the second draw replayed the first,
    // every flip would toggle back and the victim would read pristine.
    const auto cfg = testutil::tinyPlain();
    const auto run = [&cfg](int trains) {
        dram::Chip chip(cfg);
        bender::Host host(chip);
        host.setFastPathMode(FastPathMode::Analytic);
        host.writeRowPattern(0, 99, ~0ULL);
        host.writeRowPattern(0, 100, 0);
        host.writeRowPattern(0, 101, ~0ULL);
        for (int t = 0; t < trains; ++t)
            host.hammer(0, 100, 100000);
        return host.readRowBits(0, 101);
    };
    const BitVec once = run(1);
    const BitVec twice = run(2);
    EXPECT_LT(once.popcount(), once.size());      // Train 1 flipped cells.
    EXPECT_LT(twice.popcount(), twice.size());    // ...that stayed flipped.
    EXPECT_FALSE(once == twice);                  // Train 2 drew fresh u's.
}

} // namespace
} // namespace dramscope
