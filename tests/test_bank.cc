/**
 * @file
 * Physics tests: disturbance, retention and RowCopy behaviour of the
 * bank, exercised through the full chip/host command path.
 */

#include <gtest/gtest.h>

#include "bender/host.h"
#include "core/physmap.h"
#include "dram/chip.h"
#include "test_common.h"

namespace dramscope {
namespace {

using dram::AibMechanism;
using dram::DeviceConfig;
using dram::RowAddr;

class BankPhysicsTest : public ::testing::Test
{
  protected:
    BankPhysicsTest()
        : cfg_(testutil::tinyPlain()), chip_(cfg_), host_(chip_),
          map_(core::PhysMap::fromSwizzle(chip_.swizzle(),
                                          cfg_.columnsPerRow(),
                                          cfg_.rdDataBits))
    {
    }

    /** Flip positions (physical bitline order) of a victim row. */
    BitVec
    physFlips(RowAddr victim, const BitVec &written_host)
    {
        BitVec read = host_.readRowBits(0, victim);
        read ^= written_host;
        return map_.toPhysical(read);
    }

    DeviceConfig cfg_;
    dram::Chip chip_;
    bender::Host host_;
    core::PhysMap map_;
};

TEST_F(BankPhysicsTest, HammerFlipsOnlyAdjacentRows)
{
    const RowAddr aggr = 20;
    const BitVec ones(cfg_.rowBits, true);
    for (RowAddr r = 16; r <= 24; ++r)
        host_.writeRowPattern(0, r, r == aggr ? 0 : ~0ULL);
    host_.hammer(0, aggr, 300000);

    for (RowAddr r = 16; r <= 24; ++r) {
        if (r == aggr)
            continue;
        const size_t flips = physFlips(r, ones).popcount();
        if (r == aggr - 1 || r == aggr + 1)
            EXPECT_GT(flips, 4u) << "victim row " << r;
        else
            EXPECT_EQ(flips, 0u) << "non-adjacent row " << r;
    }
}

TEST_F(BankPhysicsTest, ChargedVictimFlipsAlternateWithBitline)
{
    // O8/O10: an all-ones (charged) victim attacked from above flips
    // overwhelmingly on one bitline parity.  Rows sit in subarray 1
    // (typical, not edge-suppressed).
    const RowAddr victim = 60, aggr = 61;  // Upper aggressor.
    const BitVec ones(cfg_.rowBits, true);
    host_.writeRowPattern(0, victim, ~0ULL);
    host_.writeRowPattern(0, aggr, 0);
    host_.hammer(0, aggr, 400000);

    const BitVec flips = physFlips(victim, ones);
    size_t even = 0, odd = 0;
    for (size_t p = 0; p < flips.size(); ++p) {
        if (flips.get(p))
            ((p & 1) == 0 ? even : odd) += 1;
    }
    EXPECT_GT(even + odd, 10u);
    // Victim row 60 is even: charged cells on even bitlines face the
    // upper aggressor through their susceptible gate.
    EXPECT_GT(even, 3 * std::max<size_t>(odd, 1));
}

TEST_F(BankPhysicsTest, AlternationReversesWithVictimParity)
{
    // O8: an odd victim row shows the opposite parity preference.
    const RowAddr victim = 65, aggr = 66;
    const BitVec ones(cfg_.rowBits, true);
    host_.writeRowPattern(0, victim, ~0ULL);
    host_.writeRowPattern(0, aggr, 0);
    host_.hammer(0, aggr, 400000);

    const BitVec flips = physFlips(victim, ones);
    size_t even = 0, odd = 0;
    for (size_t p = 0; p < flips.size(); ++p) {
        if (flips.get(p))
            ((p & 1) == 0 ? even : odd) += 1;
    }
    EXPECT_GT(odd, 3 * std::max<size_t>(even, 1));
}

TEST_F(BankPhysicsTest, AlternationReversesWithAggressorDirection)
{
    const RowAddr victim = 60;
    const BitVec ones(cfg_.rowBits, true);

    host_.writeRowPattern(0, victim, ~0ULL);
    host_.writeRowPattern(0, victim - 1, 0);
    host_.hammer(0, victim - 1, 400000);  // Lower aggressor.
    const BitVec flips = physFlips(victim, ones);

    size_t even = 0, odd = 0;
    for (size_t p = 0; p < flips.size(); ++p) {
        if (flips.get(p))
            ((p & 1) == 0 ? even : odd) += 1;
    }
    EXPECT_GT(odd, 3 * std::max<size_t>(even, 1));
}

TEST_F(BankPhysicsTest, DischargedVictimAlsoFlips)
{
    // O8/O9: RowHammer hits both charge states (on opposite gates).
    const RowAddr victim = 60, aggr = 61;
    const BitVec zeros(cfg_.rowBits, false);
    host_.writeRowPattern(0, victim, 0);
    host_.writeRowPattern(0, aggr, ~0ULL);
    host_.hammer(0, aggr, 400000);

    const BitVec flips = physFlips(victim, zeros);
    size_t even = 0, odd = 0;
    for (size_t p = 0; p < flips.size(); ++p) {
        if (flips.get(p))
            ((p & 1) == 0 ? even : odd) += 1;
    }
    EXPECT_GT(even + odd, 10u);
    // Discharged cells use the opposite gate: parity flips vs the
    // charged case (O10).
    EXPECT_GT(odd, 3 * std::max<size_t>(even, 1));
}

TEST_F(BankPhysicsTest, RowPressOnlyFlipsChargedCells)
{
    // O7 / SS II-D: RowPress induces bitflips only in charged cells.
    const RowAddr victim = 60, aggr = 61;
    host_.writeRowPattern(0, victim, 0);  // All discharged.
    host_.writeRowPattern(0, aggr, ~0ULL);
    host_.press(0, aggr, 8192);

    const BitVec zeros(cfg_.rowBits, false);
    EXPECT_EQ(physFlips(victim, zeros).popcount(), 0u);

    // The charged victim does flip under the same attack.
    host_.writeRowPattern(0, victim, ~0ULL);
    host_.writeRowPattern(0, aggr, 0);
    host_.press(0, aggr, 8192);
    const BitVec ones(cfg_.rowBits, true);
    EXPECT_GT(physFlips(victim, ones).popcount(), 5u);
}

TEST_F(BankPhysicsTest, DisturbanceStopsAtSubarrayBoundary)
{
    // Row 47 tops subarray 0; hammering it must not touch row 48.
    host_.writeRowPattern(0, 46, ~0ULL);
    host_.writeRowPattern(0, 48, ~0ULL);
    host_.writeRowPattern(0, 47, 0);
    host_.hammer(0, 47, 400000);

    const BitVec ones(cfg_.rowBits, true);
    EXPECT_GT(physFlips(46, ones).popcount(), 4u);
    EXPECT_EQ(physFlips(48, ones).popcount(), 0u);
}

TEST_F(BankPhysicsTest, VictimNeighborPatternIncreasesFlips)
{
    // O11: opposite-valued horizontal neighbours raise the BER;
    // distance two more than distance one.  Eight victim groups in
    // subarray 1 give enough Vic0 lattice cells to separate the
    // factors.
    auto run = [&](uint64_t phys_pattern, unsigned bits) {
        const BitVec victim = map_.hostBitsForPhysicalPattern(
            phys_pattern, bits);
        size_t flips = 0;
        for (RowAddr base = 52; base < 84; base += 4) {
            host_.writeRowBits(0, base, victim);
            host_.writeRowPattern(0, base + 1, ~0ULL);
            host_.hammer(0, base + 1, 600000);
            BitVec read = host_.readRowBits(0, base);
            read ^= victim;
            const BitVec phys = map_.toPhysical(read);
            // Flips at the Vic0 lattice (period 5, position 0).
            for (size_t p = 0; p < phys.size(); p += 5)
                flips += phys.get(p);
        }
        return flips;
    };

    // Baseline: solid zeros (aggressor all ones = all opposite).
    const size_t base = run(0b00000, 5);
    // Distance-1 neighbours opposite: [0,1,0,0,1].
    const size_t d1 = run(0b10010, 5);
    // Distance-2 neighbours opposite: [0,0,1,1,0].
    const size_t d2 = run(0b01100, 5);
    // All four opposite: [0,1,1,1,1].
    const size_t all = run(0b11110, 5);

    EXPECT_GE(d1, base);
    EXPECT_GT(d2, d1);
    EXPECT_GE(all, d2);
}

TEST_F(BankPhysicsTest, AggressorSameValueSuppressesFlips)
{
    // O12: aggressor cells matching the victim value reduce the BER.
    auto run = [&](uint64_t aggr_pattern) {
        const BitVec victim(cfg_.rowBits, false);
        const BitVec aggr =
            map_.hostBitsForPhysicalPattern(aggr_pattern, 5);
        size_t flips = 0;
        for (RowAddr base = 52; base < 84; base += 4) {
            host_.writeRowBits(0, base, victim);
            host_.writeRowBits(0, base + 1, aggr);
            host_.hammer(0, base + 1, 600000);
            BitVec read = host_.readRowBits(0, base);
            read ^= victim;
            const BitVec phys = map_.toPhysical(read);
            for (size_t p = 0; p < phys.size(); p += 5)
                flips += phys.get(p);
        }
        return flips;
    };

    const size_t base = run(0b11111);      // All opposite of Vic0=0.
    const size_t aggr0 = run(0b11110);     // Aggr0 same as victim.
    const size_t aggr012 = run(0b00000);   // Whole row same.
    EXPECT_GT(base, aggr0);
    EXPECT_GE(aggr0, aggr012);
}

TEST_F(BankPhysicsTest, EdgeSubarrayShowsLowerBer)
{
    // O6: edge subarrays flip less, especially for aggressor data 1.
    // Subarray 0 (rows 0-47) is a bottom edge; subarray 1 is typical.
    auto run = [&](RowAddr victim, RowAddr aggr) {
        host_.writeRowPattern(0, victim, ~0ULL);
        host_.writeRowPattern(0, aggr, 0);
        host_.hammer(0, aggr, 400000);
        const BitVec ones(cfg_.rowBits, true);
        return physFlips(victim, ones).popcount();
    };

    const size_t edge = run(20, 21);     // Subarray 0 = edge.
    const size_t typical = run(60, 61);  // Subarray 1 = typical.
    EXPECT_LT(edge, typical);
    EXPECT_GT(edge, 0u);
}

TEST_F(BankPhysicsTest, RefreshResetsDisturbanceAccumulation)
{
    const RowAddr victim = 20, aggr = 21;
    const BitVec ones(cfg_.rowBits, true);

    host_.writeRowPattern(0, victim, ~0ULL);
    host_.writeRowPattern(0, aggr, 0);
    host_.hammer(0, aggr, 150000);
    host_.refresh();
    host_.hammer(0, aggr, 150000);
    const size_t split = physFlips(victim, ones).popcount();

    host_.writeRowPattern(0, victim, ~0ULL);
    host_.writeRowPattern(0, aggr, 0);
    host_.hammer(0, aggr, 300000);
    const size_t straight = physFlips(victim, ones).popcount();

    EXPECT_LT(split, straight);
}

TEST_F(BankPhysicsTest, DeterministicAcrossIdenticalChips)
{
    auto run = [](const DeviceConfig &cfg) {
        dram::Chip chip(cfg);
        bender::Host host(chip);
        host.writeRowPattern(0, 20, ~0ULL);
        host.writeRowPattern(0, 21, 0);
        host.hammer(0, 21, 300000);
        return host.readRowBits(0, 20);
    };
    EXPECT_EQ(run(cfg_), run(cfg_));

    DeviceConfig other = cfg_;
    other.variationSeed ^= 0x1234;
    EXPECT_NE(run(cfg_), run(other));
}

TEST_F(BankPhysicsTest, TemperatureAcceleratesDisturbance)
{
    auto flips_at = [&](double temp) {
        DeviceConfig cfg = cfg_;
        cfg.temperatureC = temp;
        dram::Chip chip(cfg);
        bender::Host host(chip);
        host.writeRowPattern(0, 20, ~0ULL);
        host.writeRowPattern(0, 21, 0);
        host.hammer(0, 21, 200000);
        BitVec read = host.readRowBits(0, 20);
        read ^= BitVec(cfg.rowBits, true);
        return read.popcount();
    };
    EXPECT_GT(flips_at(95.0), flips_at(55.0));
}

class RetentionTest : public ::testing::Test
{
  protected:
    RetentionTest()
        : cfg_(testutil::tinyPlain()), chip_(cfg_), host_(chip_)
    {
    }

    DeviceConfig cfg_;
    dram::Chip chip_;
    bender::Host host_;
};

TEST_F(RetentionTest, ChargedCellsDecayDischargedDoNot)
{
    host_.writeRowPattern(0, 10, ~0ULL);  // Charged (true cells).
    host_.writeRowPattern(0, 11, 0);      // Discharged.
    host_.waitMs(8000.0);

    const BitVec ones_row = host_.readRowBits(0, 10);
    const BitVec zeros_row = host_.readRowBits(0, 11);
    EXPECT_LT(ones_row.popcount(), size_t(cfg_.rowBits));  // Decayed.
    EXPECT_GT(ones_row.popcount(), 0u);  // Not everything is weak.
    EXPECT_EQ(zeros_row.popcount(), 0u);  // 0 -> 1 never happens.
}

TEST_F(RetentionTest, RefreshPreventsDecay)
{
    host_.writeRowPattern(0, 10, ~0ULL);
    for (int k = 0; k < 8; ++k) {
        host_.waitMs(32.0);
        host_.refresh();
    }
    const BitVec row = host_.readRowBits(0, 10);
    EXPECT_EQ(row.popcount(), size_t(cfg_.rowBits));
}

TEST_F(RetentionTest, HotterChipsDecayFaster)
{
    auto survivors = [&](double temp) {
        DeviceConfig cfg = cfg_;
        cfg.temperatureC = temp;
        dram::Chip chip(cfg);
        bender::Host host(chip);
        host.writeRowPattern(0, 10, ~0ULL);
        host.waitMs(2000.0);
        return host.readRowBits(0, 10).popcount();
    };
    EXPECT_LT(survivors(95.0), survivors(65.0));
}

TEST_F(RetentionTest, AntiCellsDecayUpward)
{
    // Mfr. C style: an anti-cell subarray decays 0 -> 1.
    DeviceConfig cfg = cfg_;
    cfg.polarityPolicy = dram::CellPolarityPolicy::InterleavedPerSubarray;
    dram::Chip chip(cfg);
    bender::Host host(chip);
    // Row 50 is in subarray 1 (anti cells): data 0 = charged.
    host.writeRowPattern(0, 50, 0);
    host.waitMs(8000.0);
    const BitVec row = host.readRowBits(0, 50);
    EXPECT_GT(row.popcount(), 0u);  // 0 -> 1 flips appeared.
}

class RowCopyTest : public ::testing::Test
{
  protected:
    RowCopyTest()
        : cfg_(testutil::tinyPlain()), chip_(cfg_), host_(chip_)
    {
    }

    DeviceConfig cfg_;
    dram::Chip chip_;
    bender::Host host_;
};

TEST_F(RowCopyTest, SameSubarrayCopiesAllBitsUninverted)
{
    const uint64_t marker = 0xDEADBEEFCAFE1234ULL;
    host_.writeRowPattern(0, 10, marker);
    host_.writeRowPattern(0, 20, 0);
    host_.rowCopy(0, 10, 20);
    const auto src = host_.readRow(0, 10);
    const auto dst = host_.readRow(0, 20);
    EXPECT_EQ(src, dst);
}

TEST_F(RowCopyTest, AdjacentSubarrayCopiesHalfInverted)
{
    // Src row 50 (subarray 1) -> dst row 40 (subarray 0): the shared
    // stripe moves the data to the destination's odd bitlines,
    // charge-inverted; with all-true cells the data inverts too.
    host_.writeRowPattern(0, 50, ~0ULL);
    host_.writeRowPattern(0, 40, ~0ULL);
    host_.rowCopy(0, 50, 40);
    const BitVec dst = host_.readRowBits(0, 40);
    // Half the bits must now be 0 (inverted copy of all-ones).
    EXPECT_EQ(dst.popcount(), size_t(cfg_.rowBits) / 2);
}

TEST_F(RowCopyTest, DistantSubarraysDoNotCopy)
{
    host_.writeRowPattern(0, 10, ~0ULL);   // Subarray 0.
    host_.writeRowPattern(0, 100, 0);      // Subarray 2.
    host_.rowCopy(0, 10, 100);
    EXPECT_EQ(host_.readRowBits(0, 100).popcount(), 0u);
}

TEST_F(RowCopyTest, AcrossSectionsDoesNotCopy)
{
    host_.writeRowPattern(0, 200, ~0ULL);  // Section 0.
    host_.writeRowPattern(0, 300, 0);      // Section 1.
    host_.rowCopy(0, 200, 300);
    EXPECT_EQ(host_.readRowBits(0, 300).popcount(), 0u);
}

TEST_F(RowCopyTest, EdgePairCopiesHalf)
{
    // O5: first and last rows of a section share the edge stripe.
    host_.writeRowPattern(0, 0, ~0ULL);
    host_.writeRowPattern(0, 255, ~0ULL);
    host_.rowCopy(0, 0, 255);
    EXPECT_EQ(host_.readRowBits(0, 255).popcount(),
              size_t(cfg_.rowBits) / 2);
}

TEST_F(RowCopyTest, SlowReactivationDoesNotCopy)
{
    // An ACT a full tRP after PRE finds precharged bitlines: no copy.
    host_.writeRowPattern(0, 10, ~0ULL);
    host_.writeRowPattern(0, 20, 0);
    bender::Program p;
    const auto &t = cfg_.timing;
    p.act(0, 10).sleepNs(t.tRasNs).pre(0).sleepNs(t.tRpNs + 5.0)
        .act(0, 20).sleepNs(t.tRasNs).pre(0).sleepNs(t.tRpNs);
    host_.run(p);
    EXPECT_EQ(host_.readRowBits(0, 20).popcount(), 0u);
}

TEST_F(RowCopyTest, AntiCellSubarraysCopyDataAsIs)
{
    // Mfr. C: true/anti interleaving makes the cross-subarray copy
    // appear non-inverted in data space (SS IV-C).
    dram::DeviceConfig cfg = testutil::tinyPlain();
    cfg.polarityPolicy = dram::CellPolarityPolicy::InterleavedPerSubarray;
    dram::Chip chip(cfg);
    bender::Host host(chip);
    // Src row 50 (subarray 1, anti) -> dst row 40 (subarray 0, true).
    host.writeRowPattern(0, 50, ~0ULL);
    host.writeRowPattern(0, 40, ~0ULL);
    host.rowCopy(0, 50, 40);
    // Copied (odd-bitline) data equals the source data: still ones.
    EXPECT_EQ(host.readRowBits(0, 40).popcount(), size_t(cfg.rowBits));
}

} // namespace
} // namespace dramscope
