/**
 * @file
 * Static-analyzer tests: rule registry, the abstract timing
 * interpreter, expected-violation annotations, and the built-in
 * program catalog's cleanliness contract.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "bender/host.h"
#include "bender/lint.h"
#include "core/programs.h"
#include "dram/chip.h"
#include "test_common.h"

namespace dramscope {
namespace {

using bender::Host;
using bender::Program;
namespace lint = bender::lint;
using lint::Rule;
using lint::Severity;

/** Slots of every diagnostic matching @p rule. */
std::vector<size_t>
slotsOf(const lint::Report &report, Rule rule)
{
    std::vector<size_t> slots;
    for (const auto &d : report.diags) {
        if (d.rule == rule)
            slots.push_back(d.slot);
    }
    return slots;
}

bool
hasRule(const lint::Report &report, Rule rule)
{
    return !slotsOf(report, rule).empty();
}

TEST(LintRuleTable, CompleteAndUnique)
{
    const auto &table = lint::ruleTable();
    ASSERT_EQ(table.size(), lint::ruleCount());
    ASSERT_GE(table.size(), 15u);
    std::set<std::string> ids;
    for (size_t i = 0; i < table.size(); ++i) {
        EXPECT_EQ(size_t(table[i].rule), i);
        EXPECT_TRUE(ids.insert(table[i].id).second)
            << "duplicate rule id " << table[i].id;
        EXPECT_STRNE(table[i].summary, "");
        EXPECT_STREQ(lint::ruleId(table[i].rule), table[i].id);
    }
}

class LintTest : public ::testing::Test
{
  protected:
    LintTest() : cfg_(testutil::tinyPlain()) {}

    lint::Report lint(const Program &p) const
    {
        return lint::lint(p, cfg_);
    }

    dram::DeviceConfig cfg_;
};

TEST_F(LintTest, HammerKernelPassesClean)
{
    const auto p = Host::makeHammerProgram(cfg_, 0, 21, 300000, 35.0);
    EXPECT_TRUE(p.expectedViolations().empty());
    const auto report = lint(p);
    EXPECT_TRUE(report.diags.empty());
    EXPECT_FALSE(report.hasErrors());
    EXPECT_EQ(report.commandCount, 2u * 300000u);
}

TEST_F(LintTest, SubTRasOpenTimeIsAnnotated)
{
    // A tAggON probe below tRAS is a deliberate out-of-spec step.
    const auto p = Host::makeHammerProgram(cfg_, 0, 21, 1000, 20.0);
    ASSERT_EQ(p.expectedViolations().size(), 1u);
    EXPECT_EQ(p.expectedViolations()[0], Rule::TRas);
    const auto report = lint(p);
    EXPECT_FALSE(report.hasErrors());
    ASSERT_TRUE(hasRule(report, Rule::TRas));
    for (const auto &d : report.diags) {
        if (d.rule == Rule::TRas) {
            EXPECT_TRUE(d.expected);
            EXPECT_EQ(d.severity, Severity::Note);
        }
    }
}

TEST_F(LintTest, RowCopyFlagsTRpAndTRcAsExpected)
{
    const auto p = Host::makeRowCopyProgram(cfg_, 0, 100, 101);
    const auto report = lint(p);
    EXPECT_FALSE(report.hasErrors());
    // The second ACT is slot 4: act, sleep, pre, sleep, act.
    EXPECT_EQ(slotsOf(report, Rule::TRp), std::vector<size_t>{4});
    EXPECT_EQ(slotsOf(report, Rule::TRc), std::vector<size_t>{4});
    for (const auto &d : report.diags) {
        EXPECT_TRUE(d.expected) << lint::ruleId(d.rule);
        EXPECT_EQ(d.severity, Severity::Note);
    }
}

TEST_F(LintTest, UnannotatedRowCopyShapeIsAnError)
{
    // The same slip without the annotation must stay an error.
    Program p;
    p.act(0, 100)
        .sleepNs(cfg_.timing.tRasNs)
        .pre(0)
        .sleepNs(1.0)
        .act(0, 101)
        .sleepNs(cfg_.timing.tRasNs)
        .pre(0);
    const auto report = lint(p);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_EQ(slotsOf(report, Rule::TRp), std::vector<size_t>{4});
}

TEST_F(LintTest, TRcdViolationReportsRuleAndSlot)
{
    Program p;
    p.act(0, 1).rd(0, 0).sleepNs(cfg_.timing.tRasNs).pre(0);
    const auto report = lint(p);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_EQ(slotsOf(report, Rule::TRcd), std::vector<size_t>{1});
}

TEST_F(LintTest, TRasViolationReportsRuleAndSlot)
{
    Program p;
    p.act(0, 1).sleepNs(10.0).pre(0);
    const auto report = lint(p);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_EQ(slotsOf(report, Rule::TRas), std::vector<size_t>{2});
}

TEST_F(LintTest, ReadOnClosedBankIsAnError)
{
    Program p;
    p.rd(0, 0);
    const auto report = lint(p);
    EXPECT_EQ(slotsOf(report, Rule::RwClosed), std::vector<size_t>{0});
}

TEST_F(LintTest, RefWithOpenRowIsAnError)
{
    Program p;
    p.act(0, 1).sleepNs(cfg_.timing.tRcdNs).ref();
    const auto report = lint(p);
    EXPECT_EQ(slotsOf(report, Rule::RefOpen), std::vector<size_t>{2});
    EXPECT_EQ(report.refCount, 1u);
}

TEST_F(LintTest, ActOnOpenBankIsAnError)
{
    Program p;
    p.act(0, 1).sleepNs(50.0).act(0, 2);
    const auto report = lint(p);
    EXPECT_EQ(slotsOf(report, Rule::ActOpen), std::vector<size_t>{2});
    // And the program never closes the row.
    EXPECT_TRUE(hasRule(report, Rule::OpenAtEnd));
}

TEST_F(LintTest, ActRateRulesFireAcrossBanks)
{
    auto cfg = cfg_;
    cfg.numBanks = 8;
    // Five back-to-back ACTs to distinct banks: each gap is one tCK
    // (< tRRD) and the fifth lands well inside the tFAW window.
    Program p;
    for (dram::BankId b = 0; b < 5; ++b)
        p.act(b, 1);
    const auto report = lint::lint(p, cfg);
    EXPECT_TRUE(hasRule(report, Rule::TRrd));
    EXPECT_EQ(slotsOf(report, Rule::TFaw), std::vector<size_t>{4});
}

TEST_F(LintTest, InSpecActSpacingPassesRateRules)
{
    auto cfg = cfg_;
    cfg.numBanks = 8;
    Program p;
    for (dram::BankId b = 0; b < 5; ++b)
        p.act(b, 1).sleepNs(7.0);  // > tRRD; 4-ACT window > tFAW.
    for (dram::BankId b = 0; b < 5; ++b) {
        p.sleepNs(cfg.timing.tRasNs).pre(b);
    }
    const auto report = lint::lint(p, cfg);
    EXPECT_FALSE(hasRule(report, Rule::TRrd));
    EXPECT_FALSE(hasRule(report, Rule::TFaw));
}

TEST_F(LintTest, CrossIterationSpacingIsChecked)
{
    // The loop tail leaves no tRP before the next iteration's ACT:
    // only visible across the loop back-edge.
    Program p;
    p.loopBegin(10)
        .act(0, 1)
        .sleepNs(cfg_.timing.tRasNs)
        .pre(0)
        .loopEnd();
    const auto report = lint(p);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_EQ(slotsOf(report, Rule::TRp), std::vector<size_t>{1});
}

TEST_F(LintTest, ZeroLoopAndDeadCodeAreWarnings)
{
    Program p;
    p.loopBegin(0).act(0, 5).pre(0).loopEnd();
    const auto report = lint(p);
    EXPECT_FALSE(report.hasErrors());
    EXPECT_EQ(slotsOf(report, Rule::ZeroLoop), std::vector<size_t>{0});
    EXPECT_EQ(slotsOf(report, Rule::DeadCode), std::vector<size_t>{1});
    EXPECT_EQ(report.commandCount, 0u);
    EXPECT_EQ(report.durationPs, 0);
}

TEST_F(LintTest, StaleExpectationIsFlagged)
{
    auto p = Host::makeHammerProgram(cfg_, 0, 21, 100, 35.0);
    p.expectViolation(Rule::TRp);  // Never fires: annotation is stale.
    const auto report = lint(p);
    EXPECT_FALSE(report.hasErrors());
    EXPECT_TRUE(hasRule(report, Rule::StaleExpectation));
}

TEST_F(LintTest, UnbalancedLoopIsReportedNotFatal)
{
    Program p;
    p.loopBegin(2).act(0, 1);
    const auto report = lint(p);
    EXPECT_TRUE(report.hasErrors());
    EXPECT_EQ(slotsOf(report, Rule::UnbalancedLoop),
              std::vector<size_t>{0});
    // The timing walk is skipped on broken structure.
    EXPECT_EQ(report.durationPs, 0);
}

TEST_F(LintTest, SymbolicClockMatchesHostClockExactly)
{
    // Awkward fractional-ns sleeps: the duration is rounded to
    // integer picoseconds once, at build time, so the linter's
    // symbolic clock and the executor's clock consume the same
    // integers and agree to the picosecond.
    Program p;
    p.loopBegin(3000).sleepNs(1.0 / 3.0).loopEnd();
    ASSERT_EQ(p.instrs()[1].ps, 333);
    const auto report = lint(p);
    EXPECT_EQ(report.durationPs, 3000 * 333);

    dram::Chip chip(cfg_);
    bender::Host host(chip);
    const auto t0 = host.now();
    host.run(p);
    EXPECT_EQ(host.now() - t0, report.durationPs / 1000);
}

TEST_F(LintTest, SymbolicClockMatchesBulkHammerPath)
{
    // The default hammer kernel is 50ns per iteration; the bulk
    // fast path and the linter must agree on the total exactly.
    const uint64_t count = 12345;
    const auto p = Host::makeHammerProgram(cfg_, 0, 21, count, 35.0);
    const auto report = lint(p);
    EXPECT_EQ(report.durationPs, int64_t(count) * 50000);

    dram::Chip chip(cfg_);
    bender::Host host(chip);
    const auto t0 = host.now();
    host.run(p);
    EXPECT_EQ(host.now() - t0, dram::NanoTime(count * 50));
}

TEST_F(LintTest, DeepNestingWalksAndCounts)
{
    Program p;
    const int depth = 10;
    for (int i = 0; i < depth; ++i)
        p.loopBegin(2);
    p.nop(1);
    for (int i = 0; i < depth; ++i)
        p.loopEnd();
    p.validate();  // Structurally fine.
    const auto report = lint(p);
    EXPECT_TRUE(report.diags.empty());
    // 2^10 expanded NOPs of one tCK each.
    EXPECT_EQ(report.durationPs, 1024 * 1250);
}

TEST_F(LintTest, RefreshBudgetEstimateForLongPrograms)
{
    // ~78ms of idle looping with no REF: past tREFW, under-refreshed.
    Program p;
    p.loopBegin(10000).sleepNs(7800.0).loopEnd();
    const auto report = lint(p);
    EXPECT_FALSE(report.hasErrors());
    ASSERT_TRUE(hasRule(report, Rule::RefreshBudget));

    // The same span with a REF per tREFI stays within budget (the
    // sleep is trimmed so the REF command's own tCK keeps the
    // iteration period under tREFI).
    Program q;
    q.loopBegin(10000).ref().sleepNs(7790.0).loopEnd();
    const auto clean = lint(q);
    EXPECT_FALSE(hasRule(clean, Rule::RefreshBudget));
    EXPECT_EQ(clean.refCount, 10000u);
}

/**
 * The catalog contract (every built-in charact/attack/RE program):
 * no unexpected violations on any preset, and exactly the annotation
 * sets the builders declare — RowCopy flags tRP + tRC, the hammer
 * family flags its deliberately over-threshold exposure bound, and
 * everything else is annotation-free.
 */
TEST(LintCatalog, AllBuiltinProgramsLintCleanOnAllPresets)
{
    auto configs = std::vector<dram::DeviceConfig>{testutil::tinyPlain()};
    for (const auto &id : dram::presetIds())
        configs.push_back(dram::makePreset(id));

    for (const auto &cfg : configs) {
        for (const auto &entry : core::builtinPrograms(cfg)) {
            const auto report = lint::lint(entry.prog, cfg);
            EXPECT_FALSE(report.hasErrors())
                << cfg.name << ": " << entry.name;
            EXPECT_FALSE(hasRule(report, Rule::StaleExpectation))
                << cfg.name << ": " << entry.name;

            std::multiset<Rule> expected(
                entry.prog.expectedViolations().begin(),
                entry.prog.expectedViolations().end());
            if (entry.name == "rowcopy") {
                EXPECT_EQ(expected,
                          (std::multiset<Rule>{Rule::TRp, Rule::TRc}))
                    << cfg.name;
            } else if (entry.name == "hammer" || entry.name == "press" ||
                       entry.name == "hammer-re") {
                EXPECT_EQ(expected,
                          (std::multiset<Rule>{Rule::ExposureBound}))
                    << cfg.name << ": " << entry.name;
            } else {
                EXPECT_TRUE(expected.empty())
                    << cfg.name << ": " << entry.name;
            }
        }
    }
}

TEST(LintCatalog, LookupByNameAndUniqueness)
{
    const auto cfg = testutil::tinyPlain();
    std::set<std::string> names;
    for (const auto &entry : core::builtinPrograms(cfg))
        EXPECT_TRUE(names.insert(entry.name).second) << entry.name;
    EXPECT_TRUE(names.count("hammer"));
    EXPECT_TRUE(names.count("rowcopy"));
    const auto one = core::builtinProgram(cfg, "rowcopy");
    EXPECT_EQ(one.name, "rowcopy");
    EXPECT_DEATH(core::builtinProgram(cfg, "no-such-program"),
                 "unknown program");
}

} // namespace
} // namespace dramscope
