/**
 * @file
 * RCD inversion, DQ twist and DIMM tests (common pitfalls 1 and 3).
 */

#include <gtest/gtest.h>

#include "mapping/dimm.h"
#include "mapping/dq_twist.h"
#include "mapping/rcd.h"
#include "test_common.h"

namespace dramscope {
namespace mapping {
namespace {

TEST(Rcd, BSideInvertsRows)
{
    Rcd rcd(10, true);
    EXPECT_EQ(rcd.chipRow(0, false), 0u);
    EXPECT_EQ(rcd.chipRow(0, true), 1023u);
    EXPECT_EQ(rcd.chipRow(5, true), 1018u);
    // Inversion is an involution.
    for (dram::RowAddr r : {0u, 5u, 512u, 1023u})
        EXPECT_EQ(rcd.chipRow(rcd.chipRow(r, true), true), r);
}

TEST(Rcd, DisabledInversionIsIdentity)
{
    Rcd rcd(10, false);
    EXPECT_EQ(rcd.chipRow(7, true), 7u);
    EXPECT_FALSE(rcd.inversionEnabled());
}

TEST(DqTwist, ChipZeroIsStraight)
{
    DqTwist t(dram::ChipWidth::X4, 0u);
    EXPECT_TRUE(t.isIdentity());
    EXPECT_EQ(t.toChip(0x12345678ULL, 32), 0x12345678ULL);
}

TEST(DqTwist, RoundtripForEveryChip)
{
    for (uint32_t c = 0; c < 16; ++c) {
        DqTwist t(dram::ChipWidth::X4, c);
        const uint64_t data = 0x9E3779B9ULL ^ (c * 0x5555ULL);
        EXPECT_EQ(t.toHost(t.toChip(data, 32), 32), data) << c;
    }
}

TEST(DqTwist, PermutesLanesWithinBeats)
{
    // Bits of beat k stay within beat k.
    DqTwist t(dram::ChipWidth::X4, 3u);
    for (uint32_t bit = 0; bit < 32; ++bit)
        EXPECT_EQ(t.chipBit(bit) / 4, bit / 4);
}

TEST(DqTwist, DifferentChipsSeeDifferentData)
{
    // Common pitfall (3): writing 0x55... does not reach every chip
    // as 0x55.
    const uint64_t host_data = 0x55555555ULL;
    bool any_different = false;
    for (uint32_t c = 1; c < 16; ++c) {
        DqTwist t(dram::ChipWidth::X4, c);
        if (t.toChip(host_data, 32) != host_data)
            any_different = true;
    }
    EXPECT_TRUE(any_different);
}

TEST(DqTwist, ExplicitPermutationValidated)
{
    DqTwist t(dram::ChipWidth::X4, std::vector<uint32_t>{1, 0, 3, 2});
    EXPECT_EQ(t.chipBit(0), 1u);
    EXPECT_EQ(t.hostBit(1), 0u);
    EXPECT_DEATH(DqTwist(dram::ChipWidth::X4,
                         std::vector<uint32_t>{0, 0, 1, 2}),
                 "permutation");
}

class DimmTest : public ::testing::Test
{
  protected:
    DimmTest() : dimm_(testutil::tinyPlain()) {}

    Dimm dimm_;
};

TEST_F(DimmTest, ChipCountFollowsWidth)
{
    EXPECT_EQ(dimm_.chipCount(), 16u);  // x4: 64-bit bus / 4.
    Dimm x8(
        []() {
            auto cfg = testutil::tinyPlain();
            cfg.width = dram::ChipWidth::X8;
            cfg.rdDataBits = 64;
            cfg.rowBits = 512;
            cfg.matWidth = 64;  // 8 MATs, groupBits = 8.
            cfg.validate();
            return cfg;
        }());
    EXPECT_EQ(x8.chipCount(), 8u);
}

TEST_F(DimmTest, BSideChipsReceiveInvertedRows)
{
    EXPECT_FALSE(dimm_.isBSide(0));
    EXPECT_TRUE(dimm_.isBSide(15));
    EXPECT_EQ(dimm_.chipRow(0, 5), 5u);
    EXPECT_EQ(dimm_.chipRow(15, 5), 1018u);
    EXPECT_EQ(dimm_.hostRowFor(15, 1018), 5u);
}

TEST_F(DimmTest, WriteReadRoundtripAcrossChips)
{
    const dram::NanoTime t0 = 1000;
    std::vector<uint64_t> data(dimm_.chipCount());
    for (size_t c = 0; c < data.size(); ++c)
        data[c] = (0xABCD1234ULL * (c + 1)) & 0xFFFFFFFFULL;

    dimm_.act(0, 40, t0);
    dimm_.writeChips(0, 3, data, t0 + 20);
    EXPECT_EQ(dimm_.readChips(0, 3, t0 + 25), data);
    dimm_.pre(0, t0 + 60);
}

TEST_F(DimmTest, NaiveHostSeesGhostRows)
{
    // Common pitfall (1): a host that ignores RCD inversion believes
    // it wrote row 5 everywhere, but B-side chips wrote row 1018.
    const dram::NanoTime t0 = 1000;
    std::vector<uint64_t> ones(dimm_.chipCount(), 0xFFFFFFFFULL);
    dimm_.act(0, 5, t0);
    dimm_.writeChips(0, 0, ones, t0 + 20);
    dimm_.pre(0, t0 + 60);

    // Chip 15 (B side), asked directly for its row 5, has nothing.
    auto &chip = dimm_.chip(15);
    chip.act(0, 5, t0 + 100);
    EXPECT_EQ(chip.read(0, 0, t0 + 120), 0u);
    chip.pre(0, t0 + 140);
    // Its row 1018 holds the data (modulo DQ twist, which preserves
    // popcount of an all-ones pattern).
    chip.act(0, 1018, t0 + 200);
    EXPECT_EQ(chip.read(0, 0, t0 + 220), 0xFFFFFFFFULL);
    chip.pre(0, t0 + 240);
}

TEST_F(DimmTest, RefreshBroadcasts)
{
    const dram::NanoTime t0 = 1000;
    dimm_.refresh(t0);
    for (uint32_t c = 0; c < dimm_.chipCount(); ++c)
        EXPECT_EQ(dimm_.chip(c).stats().refs, 1u);
}

} // namespace
} // namespace mapping
} // namespace dramscope
