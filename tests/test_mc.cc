/**
 * @file
 * Memory-controller layer tests: address decode, policy registry,
 * workload generators, trace round-trip, the lint-certification
 * contract (scheduled streams are in-spec by construction on every
 * backend), and serial==parallel equivalence of the mc sweep.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "bender/host.h"
#include "bender/lint.h"
#include "dram/chip.h"
#include "dram/hbm_stack.h"
#include "mapping/dimm.h"
#include "mc/mc.h"
#include "mc/sweep.h"
#include "mc/workload.h"
#include "test_common.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace dramscope {
namespace {

using mc::AddrDecoder;
using mc::ReqType;
using mc::Request;
using mc::RowPolicy;
using mc::SchedulerOptions;
using mc::WorkloadKind;
using mc::WorkloadOptions;

// ---------------------------------------------------------------------
// Address decode.
// ---------------------------------------------------------------------

TEST(McAddrDecoder, DecodeEncodeIsABijectionOverTheWholeSpace)
{
    const AddrDecoder dec(testutil::tinyPlain());
    EXPECT_EQ(dec.addressSpace(),
              uint64_t(dec.banks()) * dec.rows() * dec.columns());
    for (uint64_t a = 0; a < dec.addressSpace(); ++a) {
        const auto d = dec.decode(a);
        EXPECT_LT(d.bank, dec.banks());
        EXPECT_LT(d.row, dec.rows());
        EXPECT_LT(d.col, dec.columns());
        EXPECT_EQ(dec.encode(d.bank, d.row, d.col), a);
    }
}

TEST(McAddrDecoder, OutOfRangeAddressesWrap)
{
    const AddrDecoder dec(testutil::tinyPlain());
    const uint64_t space = dec.addressSpace();
    const auto lo = dec.decode(17);
    const auto hi = dec.decode(17 + 3 * space);
    EXPECT_EQ(lo.bank, hi.bank);
    EXPECT_EQ(lo.row, hi.row);
    EXPECT_EQ(lo.col, hi.col);
}

TEST(McAddrDecoder, SequentialAddressesWalkColumnsThenBanks)
{
    const AddrDecoder dec(testutil::tinyPlain());
    const auto a0 = dec.decode(0);
    const auto a1 = dec.decode(1);
    EXPECT_EQ(a0.row, a1.row);
    EXPECT_EQ(a0.bank, a1.bank);
    EXPECT_EQ(a1.col, a0.col + 1);
    const auto b = dec.decode(dec.columns());
    EXPECT_EQ(b.bank, a0.bank + 1);
    EXPECT_EQ(b.row, a0.row);
}

// ---------------------------------------------------------------------
// Registries.
// ---------------------------------------------------------------------

TEST(McPolicies, RegistryRoundTripsAndRejectsUnknownIds)
{
    EXPECT_EQ(mc::policyTable().size(), 4u);
    for (const auto &info : mc::policyTable()) {
        EXPECT_EQ(mc::policyInfo(info.policy).id, info.id);
        const auto parsed = mc::policyFromString(info.id);
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, info.policy);
    }
    EXPECT_STREQ(mc::policyId(RowPolicy::Open), "open");
    EXPECT_STREQ(mc::policyId(RowPolicy::HitCap), "cap");
    EXPECT_FALSE(mc::policyFromString("fifo").has_value());
}

TEST(McWorkloads, RegistryRoundTripsAndRejectsUnknownIds)
{
    EXPECT_EQ(mc::workloadTable().size(), 3u);
    for (const auto kind : mc::workloadTable()) {
        const auto parsed = mc::workloadFromString(mc::workloadId(kind));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, kind);
    }
    EXPECT_FALSE(mc::workloadFromString("random").has_value());
}

// ---------------------------------------------------------------------
// Workload generators.
// ---------------------------------------------------------------------

TEST(McWorkloads, GeneratorsAreSeedDeterministic)
{
    const auto cfg = testutil::tinyPlain();
    for (const auto kind : mc::workloadTable()) {
        WorkloadOptions opt;
        opt.requests = 500;
        opt.seed = 77;
        const auto a = mc::makeWorkload(kind, cfg, opt);
        const auto b = mc::makeWorkload(kind, cfg, opt);
        EXPECT_EQ(a, b) << mc::workloadId(kind);
        opt.seed = 78;
        EXPECT_NE(mc::makeWorkload(kind, cfg, opt), a)
            << mc::workloadId(kind);
    }
}

TEST(McWorkloads, ArrivalsAreMonotoneAndAddressesInRange)
{
    const auto cfg = testutil::tinyPlain();
    const AddrDecoder dec(cfg);
    for (const auto kind : mc::workloadTable()) {
        WorkloadOptions opt;
        opt.requests = 300;
        const auto reqs = mc::makeWorkload(kind, cfg, opt);
        ASSERT_EQ(reqs.size(), 300u);
        int64_t prev = 0;
        for (const auto &r : reqs) {
            EXPECT_GE(r.arrivalPs, prev);
            EXPECT_LT(r.addr, dec.addressSpace());
            prev = r.arrivalPs;
        }
    }
}

TEST(McWorkloads, ZipfianConcentratesOnHotRows)
{
    const auto cfg = testutil::tinyPlain();
    const AddrDecoder dec(cfg);
    WorkloadOptions opt;
    opt.requests = 4000;
    opt.zipfSkew = 1.5;
    const auto reqs =
        mc::makeWorkload(WorkloadKind::Zipfian, cfg, opt);
    std::map<uint64_t, uint64_t> perRow;
    for (const auto &r : reqs)
        ++perRow[dec.decode(r.addr).row];
    uint64_t hottest = 0;
    for (const auto &[row, n] : perRow)
        hottest = std::max(hottest, n);
    // With skew 1.5 the hottest row takes a large share; uniform
    // traffic over 1024 rows would put ~4 requests on each.
    EXPECT_GT(hottest, opt.requests / 20);
}

// ---------------------------------------------------------------------
// Trace round-trip.
// ---------------------------------------------------------------------

TEST(McTrace, WriteReadRoundTripsExactly)
{
    const auto cfg = testutil::tinyPlain();
    WorkloadOptions opt;
    opt.requests = 200;
    const auto reqs =
        mc::makeWorkload(WorkloadKind::Zipfian, cfg, opt);
    const std::string path = testing::TempDir() + "mc_trace_rt.jsonl";
    mc::writeTrace(path, reqs);
    EXPECT_EQ(mc::readTrace(path), reqs);
    std::remove(path.c_str());
}

TEST(McTrace, MalformedLinesAreRejectedWithTheLineNumber)
{
    const std::string path = testing::TempDir() + "mc_trace_bad.jsonl";
    {
        std::ofstream out(path, std::ios::trunc);
        out << "{\"arrival_ps\":10,\"addr\":3,\"type\":\"rd\"}\n"
            << "{\"arrival_ps\":20,\"addr\":4}\n";
    }
    try {
        mc::readTrace(path);
        FAIL() << "expected a parse error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("trace:2"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(McTrace, UnknownKeysAndBadTypesAreRejected)
{
    const std::string path = testing::TempDir() + "mc_trace_bad2.jsonl";
    {
        std::ofstream out(path, std::ios::trunc);
        out << "{\"arrival_ps\":10,\"addr\":3,\"type\":\"zz\"}\n";
    }
    EXPECT_THROW(mc::readTrace(path), std::runtime_error);
    {
        std::ofstream out(path, std::ios::trunc);
        out << "{\"arrival_ps\":10,\"addr\":3,\"type\":\"rd\","
               "\"extra\":1}\n";
    }
    EXPECT_THROW(mc::readTrace(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(McTrace, MissingFileThrows)
{
    EXPECT_THROW(mc::readTrace("/nonexistent/mc.jsonl"),
                 std::runtime_error);
}

// ---------------------------------------------------------------------
// Scheduler invariants.
// ---------------------------------------------------------------------

std::vector<Request>
mixedWorkload(const dram::DeviceConfig &cfg, size_t n, uint64_t seed)
{
    WorkloadOptions opt;
    opt.requests = n;
    opt.seed = seed;
    return mc::makeWorkload(WorkloadKind::Zipfian, cfg, opt);
}

TEST(McScheduler, ServesEveryRequestAndAccountsOutcomes)
{
    const auto cfg = testutil::tinyPlain();
    const auto reqs = mixedWorkload(cfg, 2000, 5);
    const auto res = mc::schedule(reqs, cfg, {});
    const auto &st = res.stats;
    EXPECT_EQ(st.served(), reqs.size());
    EXPECT_EQ(st.rowHits + st.rowMisses + st.rowConflicts, st.served());
    EXPECT_GE(st.acts, st.rowMisses + st.rowConflicts);
    // Every ACT lands in exactly one exposure window sample.
    uint64_t sampled = 0;
    for (const auto s : st.exposureSamples)
        sampled += s;
    EXPECT_EQ(sampled, st.acts);
    EXPECT_GE(st.maxRowActsPerRefWindow, 1u);
    // Per-bank breakdowns sum to the totals.
    uint64_t acts = 0, hits = 0;
    for (size_t b = 0; b < st.bankActs.size(); ++b) {
        acts += st.bankActs[b];
        hits += st.bankHits[b];
    }
    EXPECT_EQ(acts, st.acts);
    EXPECT_EQ(hits, st.rowHits);
    EXPECT_GT(st.spanPs, 0);
}

TEST(McScheduler, IsDeterministic)
{
    const auto cfg = testutil::tinyPlain();
    const auto reqs = mixedWorkload(cfg, 1000, 9);
    const auto a = mc::schedule(reqs, cfg, {});
    const auto b = mc::schedule(reqs, cfg, {});
    EXPECT_EQ(a.program.size(), b.program.size());
    EXPECT_EQ(a.stats.summary(), b.stats.summary());
}

TEST(McScheduler, RefreshInsertionFollowsTheIntervalKnob)
{
    const auto cfg = testutil::tinyPlain();
    const auto reqs = mixedWorkload(cfg, 1500, 3);
    SchedulerOptions off;
    off.refreshIntervalNs = 0;
    EXPECT_EQ(mc::schedule(reqs, cfg, off).stats.refs, 0u);

    SchedulerOptions dflt;  // < 0: the config's tREFI.
    const auto withRef = mc::schedule(reqs, cfg, dflt);
    EXPECT_GT(withRef.stats.refs, 0u);
    // Roughly one REF per elapsed tREFI.
    const auto expected = uint64_t(
        double(withRef.stats.spanPs) / (cfg.timing.tRefiNs * 1000.0));
    EXPECT_GE(withRef.stats.refs + 1, expected);
}

TEST(McScheduler, PolicyOrderingMatchesIntuition)
{
    const auto cfg = testutil::tinyPlain();
    WorkloadOptions wopt;
    wopt.requests = 2000;
    wopt.seed = 21;
    const auto stream =
        mc::makeWorkload(WorkloadKind::Streaming, cfg, wopt);

    const auto run = [&](RowPolicy p) {
        SchedulerOptions o;
        o.policy = p;
        return mc::schedule(stream, cfg, o).stats;
    };
    const auto open = run(RowPolicy::Open);
    const auto closed = run(RowPolicy::Closed);
    const auto timeout = run(RowPolicy::Timeout);
    const auto cap = run(RowPolicy::HitCap);

    // Streaming traffic row-buffer-hits heavily under an open policy.
    EXPECT_GT(open.rowHitRate(), 0.5);
    // A closed policy can only lose hits relative to open, and the
    // eager precharges cost extra PREs elsewhere on this traffic.
    EXPECT_LE(closed.rowHits, open.rowHits);
    EXPECT_GE(timeout.pres, open.pres);
    EXPECT_GE(cap.pres, open.pres);
    // The hit cap bounds the burst length: with cap=4, at most 4 of
    // every 5 column commands on a bank are hits.
    EXPECT_LT(cap.rowHitRate(), 0.9);

    // Pointer chasing barely hits no matter the policy.
    const auto chase = mc::schedule(
        mc::makeWorkload(WorkloadKind::PointerChase, cfg, wopt), cfg,
        {});
    EXPECT_LT(chase.stats.rowHitRate(), 0.2);
}

// ---------------------------------------------------------------------
// Lint certification: scheduled streams are in-spec by construction,
// on every device backend, and execute without device violations.
// ---------------------------------------------------------------------

void
expectLintCleanAndRuns(dram::Device &dev, RowPolicy policy,
                       size_t requests)
{
    bender::Host host(dev);
    const auto &cfg = host.config();
    const auto reqs = mixedWorkload(cfg, requests, 0xC0FFEE);
    SchedulerOptions opt;
    opt.policy = policy;
    const auto res = mc::schedule(reqs, cfg, opt);

    const auto report = bender::lint::lint(res.program, cfg);
    for (const auto &d : report.diags)
        EXPECT_TRUE(d.expected) << d.message;

    const auto before = dev.violationCount();
    const auto exec = host.run(res.program);
    EXPECT_EQ(dev.violationCount(), before);
    EXPECT_EQ(exec.reads.size(), res.stats.reads);
}

TEST(McLintCertification, TenThousandRequestsOnAChip)
{
    dram::Chip chip(testutil::tinyPlain());
    expectLintCleanAndRuns(chip, RowPolicy::Open, 10000);
}

TEST(McLintCertification, TenThousandRequestsOnADimm)
{
    mapping::Dimm dimm(testutil::tinyPlain());
    expectLintCleanAndRuns(dimm, RowPolicy::Timeout, 10000);
}

TEST(McLintCertification, TenThousandRequestsOnAnHbmChannel)
{
    dram::HbmStack stack(testutil::tinyPlain(), 2);
    expectLintCleanAndRuns(stack.channel(1), RowPolicy::HitCap, 10000);
}

TEST(McLintCertification, EveryPolicyIsCleanOnAChip)
{
    for (const auto &info : mc::policyTable()) {
        dram::Chip chip(testutil::tinyPlain());
        expectLintCleanAndRuns(chip, info.policy, 2000);
    }
}

// ---------------------------------------------------------------------
// Mitigations inside the scheduler.
// ---------------------------------------------------------------------

bool
samePrograms(const bender::Program &a, const bender::Program &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        const auto &x = a.instrs()[i];
        const auto &y = b.instrs()[i];
        if (x.op != y.op || x.bank != y.bank || x.row != y.row ||
            x.col != y.col || x.data != y.data || x.count != y.count ||
            x.ps != y.ps)
            return false;
    }
    return true;
}

TEST(McMitigation, NoneMatchesANeverFiringMitigationByteForByte)
{
    // The byte-identity contract, checked from the inside: an armed
    // mitigation whose threshold is never reached must schedule the
    // exact same program as None — every mitigation branch in the
    // scheduler is demand-invisible until a sequence fires.
    const auto cfg = testutil::tinyPlain();
    const auto reqs = mixedWorkload(cfg, 3000, 11);

    const auto none = mc::schedule(reqs, cfg, {});
    SchedulerOptions armed;
    armed.mitigation = core::MitigationKind::Graphene;
    armed.mitigationOptions.graphene.threshold = 1u << 30;
    const auto inert = mc::schedule(reqs, cfg, armed);

    EXPECT_TRUE(samePrograms(none.program, inert.program));
    EXPECT_EQ(inert.stats.mitFired, 0u);
    EXPECT_EQ(inert.stats.mitCmds, 0u);
    EXPECT_EQ(inert.stats.mitLostRowHits, 0u);
    EXPECT_EQ(none.stats.rowHits, inert.stats.rowHits);
    EXPECT_EQ(none.stats.spanPs, inert.stats.spanPs);

    // The None summary carries no mitigation fields at all.
    EXPECT_EQ(none.stats.summary().find("mit-"), std::string::npos);
    EXPECT_NE(inert.stats.summary().find("mit-fired=0"),
              std::string::npos);
}

/**
 * A hammer-shaped stream: per bank, two hot rows strictly ping-pong
 * (every access a row conflict, so FR-FCFS cannot coalesce them into
 * row hits), with every tenth access going to a 32-row warm pool.
 * Arrivals are paced at the conflict service rate, keeping the
 * backlog shallow — each request costs one ACT.  The 34-row footprint
 * fits the tracker table, so no Misra-Gries spill is possible and
 * Graphene's bound is exact: no row may collect more than `threshold`
 * ACTs inside one refresh window.
 */
std::vector<Request>
hotRowStream(const dram::DeviceConfig &cfg, size_t n)
{
    const AddrDecoder dec(cfg);
    std::vector<Request> reqs;
    reqs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        const uint64_t u = hashCombine(0xFEED, i);
        const auto bank = dram::BankId(i % dec.banks());
        const uint64_t j = i / dec.banks();
        const auto row =
            dram::RowAddr(j % 10 == 9 ? 200 + (u >> 8) % 32
                                      : 50 + j % 2);
        Request r;
        r.addr = dec.encode(bank, row, dram::ColAddr((u >> 16) % 4));
        r.type = (u >> 40) % 4 == 0 ? ReqType::Write : ReqType::Read;
        r.arrivalPs = int64_t(i) * 30000;  // One conflict per 30 ns.
        reqs.push_back(r);
    }
    return reqs;
}

void
expectGrapheneBoundsExposure(dram::Device &dev)
{
    bender::Host host(dev);
    const auto &cfg = host.config();
    const auto reqs = hotRowStream(cfg, 20000);
    const uint64_t threshold = 50;

    SchedulerOptions opt;
    // The closed policy issues one ACT per request (the open policy
    // would wait for future hits and coalesce the ping-pong), and the
    // stretched refresh window (4x tREFI) lets an unmitigated hot row
    // collect a few hundred ACTs per window — far over the bound.
    opt.policy = RowPolicy::Closed;
    opt.refreshIntervalNs = 31200;
    const auto bare = mc::schedule(reqs, cfg, opt);
    opt.mitigation = core::MitigationKind::Graphene;
    opt.mitigationOptions.graphene.threshold = threshold;
    const auto defended = mc::schedule(reqs, cfg, opt);

    // The unmitigated stream blows through the threshold; the
    // defended one is capped at it (exact: the footprint fits the
    // table, so Misra-Gries never spills).
    EXPECT_GT(bare.stats.maxRowActsPerRefWindow, threshold);
    EXPECT_LE(defended.stats.maxRowActsPerRefWindow, threshold);
    EXPECT_GT(defended.stats.mitFired, 0u);
    EXPECT_EQ(defended.stats.mitCmds, 2 * 2 * defended.stats.mitFired);

    // Injected sequences keep the program in-spec and runnable.
    const auto report = bender::lint::lint(defended.program, cfg);
    for (const auto &d : report.diags)
        EXPECT_TRUE(d.expected) << d.message;
    const auto before = dev.violationCount();
    host.run(defended.program);
    EXPECT_EQ(dev.violationCount(), before);
}

TEST(McMitigation, GrapheneBoundsExposureOnAChip)
{
    dram::Chip chip(testutil::tinyPlain());
    expectGrapheneBoundsExposure(chip);
}

TEST(McMitigation, GrapheneBoundsExposureOnADimm)
{
    mapping::Dimm dimm(testutil::tinyPlain());
    expectGrapheneBoundsExposure(dimm);
}

TEST(McMitigation, GrapheneBoundsExposureOnAnHbmChannel)
{
    dram::HbmStack stack(testutil::tinyPlain(), 2);
    expectGrapheneBoundsExposure(stack.channel(1));
}

TEST(McMitigation, EveryKindSchedulesInSpecAndAccountsItsCommands)
{
    const auto cfg = testutil::tinyPlain();
    const auto reqs = hotRowStream(cfg, 20000);
    for (const auto &info : core::mitigationTable()) {
        SchedulerOptions opt;
        opt.policy = RowPolicy::Closed;
        opt.refreshIntervalNs = 31200;
        opt.mitigation = info.kind;
        opt.mitigationOptions.graphene.threshold = 50;
        opt.mitigationOptions.raaimt = 200;
        opt.mitigationOptions.drfmInterval = 300;
        opt.mitigationOptions.rowswap.threshold = 400;
        const auto res = mc::schedule(reqs, cfg, opt);
        const auto report = bender::lint::lint(res.program, cfg);
        for (const auto &d : report.diags)
            EXPECT_TRUE(d.expected) << info.id << ": " << d.message;
        EXPECT_EQ(res.stats.served(), reqs.size()) << info.id;
        if (info.kind == core::MitigationKind::None) {
            EXPECT_EQ(res.stats.mitFired, 0u);
        } else {
            EXPECT_GT(res.stats.mitFired, 0u) << info.id;
            EXPECT_GT(res.stats.mitCmds, 0u) << info.id;
        }
    }
}

// ---------------------------------------------------------------------
// The policy x workload sweep: serial == parallel, bit for bit.
// ---------------------------------------------------------------------

TEST(McSweep, SerialAndParallelAgreeBitForBit)
{
    mc::McSweepOptions opt;
    opt.requests = 200;

    const auto runAll = [&](unsigned jobs) {
        dram::Chip chip(testutil::tinyPlain());
        bender::Host host(chip);
        obs::MetricsRegistry metrics;
        host.setMetrics(&metrics);
        core::SweepRunner runner(host, core::SweepOptions(jobs, 42));
        const auto report = mc::runMcSweep(runner, opt);
        EXPECT_TRUE(report.complete());
        return std::make_pair(report.payloads(), metrics.snapshot());
    };

    const auto serial = runAll(1);
    const auto parallel = runAll(4);
    EXPECT_EQ(serial.first, parallel.first);
    EXPECT_EQ(serial.second, parallel.second);

    // The grid covers every (workload, policy) cell, in plan order.
    ASSERT_EQ(serial.first.size(), mc::sweepPlan().size());
    EXPECT_NE(serial.first[0].find("workload=streaming policy=open"),
              std::string::npos);
}

TEST(McSweep, MitigationAxisKeepsNoneBytesAndAgreesInParallel)
{
    mc::McSweepOptions base;
    base.requests = 200;

    const auto runAll = [&](const mc::McSweepOptions &opt,
                            unsigned jobs) {
        dram::Chip chip(testutil::tinyPlain());
        bender::Host host(chip);
        core::SweepRunner runner(host, core::SweepOptions(jobs, 42));
        const auto report = mc::runMcSweep(runner, opt);
        EXPECT_TRUE(report.complete());
        return report.payloads();
    };

    mc::McSweepOptions axis = base;
    for (const auto &info : core::mitigationTable())
        if (info.kind != core::MitigationKind::None)
            axis.mitigations.push_back(info.kind);

    const auto serial = runAll(axis, 1);
    const auto parallel = runAll(axis, 4);
    EXPECT_EQ(serial, parallel);

    // The leading None block is byte-identical to the axis-free grid,
    // and every later block faces the same traffic (same block-folded
    // workload seeds), tagged with its mitigation id.
    const auto plain = runAll(base, 1);
    const size_t block = plain.size();
    ASSERT_EQ(serial.size(), block * core::mitigationTable().size());
    for (size_t i = 0; i < block; ++i)
        EXPECT_EQ(serial[i], plain[i]) << i;
    EXPECT_NE(serial[block].find(" mitigation=graphene "),
              std::string::npos)
        << serial[block];
}

} // namespace
} // namespace dramscope
