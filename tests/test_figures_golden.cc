/**
 * @file
 * Shape-regression layer for the figure pipeline on the tiny config.
 *
 * These tests pin the qualitative physics behind the paper figures —
 * the orderings and asymmetries the evaluation section reports — so a
 * future performance refactor (sweep engine, model fast paths, ...)
 * cannot silently change the figures while the unit tests stay green.
 * They intentionally re-check a few properties covered elsewhere, but
 * through the exact entry points the figure benches call, under both
 * the serial and the parallel sweep path.
 */

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "core/charact.h"
#include "dram/chip.h"
#include "dram/hbm_stack.h"
#include "mapping/dimm.h"
#include "test_common.h"

namespace dramscope {
namespace {

using core::CharactOptions;
using core::Characterization;
using dram::AibMechanism;

/** Fixture parameterized over the sweep job count: every golden shape
 *  must hold on the legacy serial path and on the parallel engine. */
class FigureGoldenTest : public ::testing::TestWithParam<unsigned>
{
  protected:
    FigureGoldenTest()
        : cfg_(testutil::tinyPlain()), chip_(cfg_), host_(chip_)
    {
        opts_.victimRows = 24;
        opts_.baseRow = 300;
        opts_.jobs = GetParam();
        charact_ = std::make_unique<Characterization>(
            host_,
            core::PhysMap::fromSwizzle(chip_.swizzle(),
                                       cfg_.columnsPerRow(),
                                       cfg_.rdDataBits),
            opts_);
    }

    dram::DeviceConfig cfg_;
    dram::Chip chip_;
    bender::Host host_;
    CharactOptions opts_;
    std::unique_ptr<Characterization> charact_;
};

TEST_P(FigureGoldenTest, Fig10EdgeSubarrayBerStaysBelowTypical)
{
    // Figure 10 / O5-O6: edge subarrays flip less than typical ones
    // (tandem wordline halves the disturbance), and the edge gap is
    // wider for (aggr 0, vic 1) than for (aggr 1, vic 0).
    const std::vector<dram::RowAddr> edge = {4, 12, 20, 28};
    const std::vector<dram::RowAddr> typical = {52, 60, 68, 76};
    const auto r = charact_->edgeVsTypical(typical, edge);
    ASSERT_GT(r.typicalAggr0Vic1, 0.0);
    ASSERT_GT(r.typicalAggr1Vic0, 0.0);
    EXPECT_LT(r.edgeAggr0Vic1, r.typicalAggr0Vic1);
    EXPECT_LT(r.edgeAggr1Vic0, r.typicalAggr1Vic0);
    EXPECT_LT(r.edgeAggr1Vic0 / r.typicalAggr1Vic0,
              r.edgeAggr0Vic1 / r.typicalAggr0Vic1);
}

TEST_P(FigureGoldenTest, Fig12AlternationPhaseFollowsPanelKnobs)
{
    // Figure 12 / O7-O8: BER alternates with physical bit index and
    // the phase follows XOR(victim data, aggressor direction).
    for (const bool data_one : {false, true}) {
        for (const bool upper : {false, true}) {
            const auto ber = charact_->berVsPhysIndex(
                AibMechanism::RowHammer, data_one, upper);
            double even = 0, odd = 0;
            for (size_t k = 0; k < ber.size(); ++k)
                ((k & 1) == 0 ? even : odd) += ber[k];
            if (data_one == upper)
                EXPECT_GT(even, 3.0 * odd)
                    << "data=" << data_one << " upper=" << upper;
            else
                EXPECT_GT(odd, 3.0 * even)
                    << "data=" << data_one << " upper=" << upper;
        }
    }
}

TEST_P(FigureGoldenTest, Fig13DischargedGateAsymmetryPresent)
{
    // Figure 13 / O9-O10: RowHammer flips discharged cells through
    // one gate type only, and charged cells through the other.
    const auto hammer = charact_->gateTypeBer(AibMechanism::RowHammer);
    ASSERT_GT(hammer.dischargedGateB, 0.0);
    EXPECT_GT(hammer.dischargedGateB, 5.0 * hammer.dischargedGateA);
    ASSERT_GT(hammer.chargedGateA, 0.0);
    EXPECT_GT(hammer.chargedGateA, 5.0 * hammer.chargedGateB);

    // RowPress never flips discharged cells and uses the opposite
    // gate phase for the charged ones (footnote 7 of the paper).
    const auto press = charact_->gateTypeBer(AibMechanism::RowPress);
    EXPECT_EQ(press.dischargedGateA, 0.0);
    EXPECT_EQ(press.dischargedGateB, 0.0);
    EXPECT_GT(press.chargedGateB, 5.0 * press.chargedGateA);
}

TEST_P(FigureGoldenTest, Fig14NeighborInfluenceOrdering)
{
    // Figure 14a / O11: opposite-valued victim neighbours raise BER,
    // distance-2 more than distance-1.
    const double d1 =
        charact_->relativeBerVictimNeighbors(false, true, false);
    const double d2 =
        charact_->relativeBerVictimNeighbors(false, false, true);
    EXPECT_GT(d1, 0.95);
    EXPECT_GT(d2, d1);

    // Figure 14b / O12: same-valued aggressor cells suppress BER.
    const double a0 =
        charact_->relativeBerAggrNeighbors(false, true, false, false);
    EXPECT_LT(a0, 0.9);
}

TEST_P(FigureGoldenTest, Fig15OppositeNeighborsLowerHcnt)
{
    // Figure 15 / O13: opposite-valued neighbours lower the first-flip
    // hammer count; distance-2 dominates distance-1.
    const double d1 = charact_->relativeHcnt(false, true, false);
    const double d2 = charact_->relativeHcnt(false, false, true);
    EXPECT_LT(d1, 1.0);
    EXPECT_LT(d2, d1);
    EXPECT_GT(d2, 0.3);
}

TEST_P(FigureGoldenTest, Fig16SolidVsStripedPatternOrdering)
{
    // Figures 16/17 / O14: relative to the solid baseline (victim
    // 0xFF, aggressor 0x00), the 2-bit complementary pattern 0x33/0xCC
    // is the worst case, beats the 1-bit stripe 0x55/0xAA, and a
    // same-polarity aggressor is strictly weaker than a complementary
    // one.
    const double solid = charact_->patternBer(0xF, 0x0);
    const double worst = charact_->patternBer(0x3, 0xC);
    const double striped = charact_->patternBer(0x5, 0xA);
    const double matching = charact_->patternBer(0x3, 0x3);
    ASSERT_GT(solid, 0.0);
    EXPECT_GT(worst / solid, 1.15);
    EXPECT_GT(worst, striped);
    EXPECT_GT(worst, matching);
}

TEST_P(FigureGoldenTest, FigurePipelineIsRunToRunDeterministic)
{
    // The same experiment on a fresh identical device reproduces the
    // exact same bits — the invariant every golden test above (and the
    // serial/parallel equivalence layer) stands on.
    const auto once = charact_->berVsPhysIndex(AibMechanism::RowHammer,
                                               true, true);
    dram::Chip chip2(cfg_);
    bender::Host host2(chip2);
    Characterization again(
        host2,
        core::PhysMap::fromSwizzle(chip2.swizzle(), cfg_.columnsPerRow(),
                                   cfg_.rdDataBits),
        opts_);
    EXPECT_EQ(once,
              again.berVsPhysIndex(AibMechanism::RowHammer, true, true));
}

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, FigureGoldenTest,
                         ::testing::Values(1u, 4u),
                         [](const auto &info) {
                             return "jobs" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Fast-forward differential layer: FastPathMode::Exact must hand every
// figure entry point *byte-identical* reports to the step-wise engine
// (FastPathMode::Off), on every backend.  Doubles are compared with ==
// deliberately — "close" is not the contract, identical bits are.
// ---------------------------------------------------------------------

using dram::FastPathMode;

/** One pass over the five figure entry points. */
struct FigureReport
{
    std::vector<double> fig12Ber;       //!< berVsPhysIndex
    core::GateTypeBer fig13Hammer;      //!< gateTypeBer(RowHammer)
    core::GateTypeBer fig13Press;       //!< gateTypeBer(RowPress)
    core::EdgeBerResult fig10;          //!< edgeVsTypical
    double fig16Solid = 0;              //!< patternBer(0xF, 0x0)
    double fig16Worst = 0;              //!< patternBer(0x3, 0xC)
    double fig15Hcnt = -1;              //!< relativeHcnt (optional)
};

/** Reduced workload: the Off arm runs every hammer slot by slot. */
CharactOptions
differentialOpts(uint32_t victim_rows)
{
    CharactOptions opts;
    opts.victimRows = victim_rows;
    opts.baseRow = 300;
    opts.hammerCount = 60000;
    opts.pressCount = 1024;
    opts.jobs = 1;
    return opts;
}

FigureReport
runFigureReport(dram::Device &dev, const core::PhysMap &map,
                FastPathMode mode, const CharactOptions &opts,
                bool include_hcnt)
{
    bender::Host host(dev);
    host.setFastPathMode(mode);
    Characterization charact(host, map, opts);
    FigureReport r;
    r.fig12Ber = charact.berVsPhysIndex(AibMechanism::RowHammer, true, true);
    r.fig13Hammer = charact.gateTypeBer(AibMechanism::RowHammer);
    r.fig13Press = charact.gateTypeBer(AibMechanism::RowPress);
    r.fig10 = charact.edgeVsTypical({52, 60, 68, 76}, {4, 12, 20, 28});
    r.fig16Solid = charact.patternBer(0xF, 0x0);
    r.fig16Worst = charact.patternBer(0x3, 0xC);
    if (include_hcnt)
        r.fig15Hcnt = charact.relativeHcnt(false, true, false);
    return r;
}

void
expectReportsIdentical(const FigureReport &fast, const FigureReport &slow)
{
    EXPECT_EQ(fast.fig12Ber, slow.fig12Ber);
    EXPECT_EQ(fast.fig13Hammer.dischargedGateA,
              slow.fig13Hammer.dischargedGateA);
    EXPECT_EQ(fast.fig13Hammer.dischargedGateB,
              slow.fig13Hammer.dischargedGateB);
    EXPECT_EQ(fast.fig13Hammer.chargedGateA, slow.fig13Hammer.chargedGateA);
    EXPECT_EQ(fast.fig13Hammer.chargedGateB, slow.fig13Hammer.chargedGateB);
    EXPECT_EQ(fast.fig13Press.dischargedGateA,
              slow.fig13Press.dischargedGateA);
    EXPECT_EQ(fast.fig13Press.dischargedGateB,
              slow.fig13Press.dischargedGateB);
    EXPECT_EQ(fast.fig13Press.chargedGateA, slow.fig13Press.chargedGateA);
    EXPECT_EQ(fast.fig13Press.chargedGateB, slow.fig13Press.chargedGateB);
    EXPECT_EQ(fast.fig10.typicalAggr0Vic1, slow.fig10.typicalAggr0Vic1);
    EXPECT_EQ(fast.fig10.edgeAggr0Vic1, slow.fig10.edgeAggr0Vic1);
    EXPECT_EQ(fast.fig10.typicalAggr1Vic0, slow.fig10.typicalAggr1Vic0);
    EXPECT_EQ(fast.fig10.edgeAggr1Vic0, slow.fig10.edgeAggr1Vic0);
    EXPECT_EQ(fast.fig16Solid, slow.fig16Solid);
    EXPECT_EQ(fast.fig16Worst, slow.fig16Worst);
    EXPECT_EQ(fast.fig15Hcnt, slow.fig15Hcnt);
}

core::PhysMap
chipPhysMap(const dram::Chip &chip)
{
    return core::PhysMap::fromSwizzle(chip.swizzle(),
                                      chip.config().columnsPerRow(),
                                      chip.config().rdDataBits);
}

TEST(FastPathDifferential, ChipFigureReportsExactMatchesOff)
{
    const auto cfg = testutil::tinyPlain();
    const auto opts = differentialOpts(8);
    dram::Chip fast_chip(cfg);
    const auto fast = runFigureReport(fast_chip, chipPhysMap(fast_chip),
                                      FastPathMode::Exact, opts, true);
    dram::Chip slow_chip(cfg);
    const auto slow = runFigureReport(slow_chip, chipPhysMap(slow_chip),
                                      FastPathMode::Off, opts, true);
    expectReportsIdentical(fast, slow);
}

TEST(FastPathDifferential, DimmFigureReportsExactMatchesOff)
{
    // Identity twist + no RCD inversion, as in the backend integration
    // suite: the rank PhysMap is the chip map tiled.
    const auto cfg = testutil::tinyPlain();
    const auto opts = differentialOpts(4);
    const auto make_report = [&](FastPathMode mode) {
        mapping::Dimm dimm(cfg, /*rcd_inversion=*/false,
                           /*identity_twist=*/true);
        const auto map = core::PhysMap::tiled(
            core::PhysMap::fromSwizzle(dimm.chip(0).swizzle(),
                                       cfg.columnsPerRow(),
                                       cfg.rdDataBits),
            dimm.chipCount());
        return runFigureReport(dimm, map, mode, opts, false);
    };
    expectReportsIdentical(make_report(FastPathMode::Exact),
                           make_report(FastPathMode::Off));
}

TEST(FastPathDifferential, DimmRelativeHcntExactMatchesOff)
{
    // The Hcnt search is the slow tail (binary search up to 2^21
    // ACTs per group, x16 chips per command on the Off arm), so it
    // gets its own test — and the smallest victim set — to keep the
    // tier timeout honest.
    const auto cfg = testutil::tinyPlain();
    const auto opts = differentialOpts(2);
    const auto hcnt = [&](FastPathMode mode) {
        mapping::Dimm dimm(cfg, /*rcd_inversion=*/false,
                           /*identity_twist=*/true);
        const auto map = core::PhysMap::tiled(
            core::PhysMap::fromSwizzle(dimm.chip(0).swizzle(),
                                       cfg.columnsPerRow(),
                                       cfg.rdDataBits),
            dimm.chipCount());
        bender::Host host(dimm);
        host.setFastPathMode(mode);
        Characterization charact(host, map, opts);
        return charact.relativeHcnt(false, true, false);
    };
    EXPECT_EQ(hcnt(FastPathMode::Exact), hcnt(FastPathMode::Off));
}

TEST(FastPathDifferential, HbmChannelFigureReportsExactMatchesOff)
{
    // A stack channel is a Chip under a stack-derived variation seed;
    // the differential must hold on that derived silicon too.
    const auto opts = differentialOpts(8);
    dram::HbmStack fast_stack(testutil::tinyPlain(), 4);
    dram::Chip fast_chip(fast_stack.channel(2).config());
    const auto fast = runFigureReport(fast_chip, chipPhysMap(fast_chip),
                                      FastPathMode::Exact, opts, true);
    dram::HbmStack slow_stack(testutil::tinyPlain(), 4);
    dram::Chip slow_chip(slow_stack.channel(2).config());
    const auto slow = runFigureReport(slow_chip, chipPhysMap(slow_chip),
                                      FastPathMode::Off, opts, true);
    expectReportsIdentical(fast, slow);
}

} // namespace
} // namespace dramscope
